// Extension (§6 "ongoing work"): online change detection.
// Quantifies the cost of the online compromises against the offline
// two-pass gold standard on the medium router:
//   * next-interval key replay (one-interval lag, misses non-returning keys)
//   * key sampling at several rates
//   * periodic online parameter re-fitting vs a fixed mis-tuned model
#include <cmath>
#include <cstdio>
#include <set>
#include <vector>

#include "core/pipeline.h"
#include "eval/trace_cache.h"
#include "support/bench_util.h"
#include "support/experiments.h"
#include "traffic/router_profiles.h"

namespace {

using namespace scd;

struct RunSummary {
  std::size_t alarms = 0;
  std::size_t keys_checked = 0;
  std::set<std::uint64_t> alarm_keys;
};

RunSummary run_pipeline(const std::vector<traffic::FlowRecord>& records,
                        core::PipelineConfig config) {
  core::ChangeDetectionPipeline pipeline(std::move(config));
  for (const auto& r : records) pipeline.add_record(r);
  pipeline.flush();
  RunSummary summary;
  for (const auto& report : pipeline.reports()) {
    if (report.start_s < 3600.0) continue;  // warm-up hour
    summary.alarms += report.alarms.size();
    summary.keys_checked += report.keys_checked;
    for (const auto& alarm : report.alarms) summary.alarm_keys.insert(alarm.key);
  }
  return summary;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension (§6)", "online detection vs offline two-pass",
      "next-interval replay and sampling retain the important alarms at a "
      "fraction of the key-tracking cost");

  const auto& records =
      eval::cached_trace(traffic::router_by_name("medium"));

  core::PipelineConfig base;
  base.interval_s = 300.0;
  base.h = 5;
  base.k = 32768;
  base.model.kind = forecast::ModelKind::kEwma;
  base.model.alpha = 0.6;
  base.threshold = 0.1;
  base.max_alarms_per_interval = 100;

  const auto offline = run_pipeline(records, base);

  auto next_interval = base;
  next_interval.replay = core::KeyReplayMode::kNextInterval;
  const auto online = run_pipeline(records, next_interval);

  std::printf("\n%-28s %10s %14s\n", "mode", "alarms", "keys checked");
  std::printf("%-28s %10zu %14zu\n", "current-interval (offline)",
              offline.alarms, offline.keys_checked);
  std::printf("%-28s %10zu %14zu\n", "next-interval (online)", online.alarms,
              online.keys_checked);

  std::size_t recovered = 0;
  for (const auto key : offline.alarm_keys) {
    if (online.alarm_keys.contains(key)) ++recovered;
  }
  bench::check(
      offline.alarm_keys.empty() ||
          static_cast<double>(recovered) /
                  static_cast<double>(offline.alarm_keys.size()) >
              0.6,
      "next-interval replay recovers most offline alarm keys",
      common::str_format("%zu of %zu", recovered, offline.alarm_keys.size()));

  std::vector<std::pair<double, double>> sample_points;
  for (const double rate : {1.0, 0.5, 0.25, 0.1}) {
    auto sampled = base;
    sampled.key_sample_rate = rate;
    const auto result = run_pipeline(records, sampled);
    std::size_t kept = 0;
    for (const auto key : offline.alarm_keys) {
      if (result.alarm_keys.contains(key)) ++kept;
    }
    const double keep_frac =
        offline.alarm_keys.empty()
            ? 1.0
            : static_cast<double>(kept) /
                  static_cast<double>(offline.alarm_keys.size());
    sample_points.emplace_back(rate, keep_frac);
    std::printf("sampling rate %.2f: keys_checked=%zu, alarm keys kept=%.2f\n",
                rate, result.keys_checked, keep_frac);
  }
  bench::print_series("sampling(rate, alarm_keys_kept)", sample_points);
  bench::check(sample_points[1].second > 0.5,
               "50% key sampling keeps the majority of alarm keys",
               common::str_format("%.2f", sample_points[1].second));

  // Online re-fitting: a mis-tuned EWMA should improve once refit kicks in.
  auto misfit = base;
  misfit.model.alpha = 0.02;
  auto refit = misfit;
  refit.refit_every = 6;
  refit.refit_window = 12;
  core::ChangeDetectionPipeline p_refit(refit);
  for (const auto& r : records) p_refit.add_record(r);
  p_refit.flush();
  std::printf("\nonline refit: alpha 0.02 -> %.3f after periodic grid search\n",
              p_refit.active_model().alpha);
  bench::check(p_refit.active_model().alpha > 0.05,
               "periodic re-fitting moves a mis-tuned model toward the data",
               common::str_format("alpha=%.3f", p_refit.active_model().alpha));
  return bench::finish();
}
