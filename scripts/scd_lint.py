#!/usr/bin/env python3
"""scd_lint — project-invariant linter for the sketch-change-detection repo.

Enforces invariants that clang-tidy cannot express because they are about
THIS codebase's contracts, not C++ in general:

  throw-not-assert   Public mutating sketch APIs that validate structure
                     (combine/add_scaled/load_registers and the sketch
                     constructors) must throw std::invalid_argument, never
                     rely on assert() alone — an unchecked mismatch is an
                     out-of-bounds access in release builds.

  kkeybits-binding   A file that hand-picks a sketch type while working with
                     traffic KeyKinds must bind the choice through
                     core/sketch_binding.h (SketchForKeyKind or a
                     kSketchCoversKeyKind static_assert) so 64-bit key kinds
                     can never silently truncate through a 32-bit family.

  metric-docs        Every `scd_*` metric name registered in src/ must be
                     documented in docs/OBSERVABILITY.md, and every
                     documented name must still exist in code.

  include-hygiene    src/ files that use a core project type must include
                     its canonical header directly instead of relying on a
                     transitive include.

  simd-isolation     Only src/simd itself may include the per-ISA kernel
                     headers (simd/kernels_scalar.h, simd/kernels_avx2.h,
                     simd/kernels_avx512.h).
                     Everyone else goes through the dispatching
                     simd/kernels.h, so ISA selection stays a single
                     process-wide decision and no caller can bypass the
                     cpuid / SCD_SIMD gate.

  mutex-wrapper      src/ code must use the annotated scd::common::Mutex /
                     MutexLock / CondVar wrappers (common/mutex.h), never
                     raw std::mutex / std::lock_guard / std::condition_
                     variable — the raw types carry no thread-safety
                     capability, so clang's -Wthread-safety cannot see
                     through them. Also pins the annotation contract on the
                     concurrency-critical types (BoundedQueue, ShardSet):
                     stripping an SCD_GUARDED_BY / SCD_REQUIRES from them
                     fails this rule even on toolchains without clang.

  mo-rationale       Every explicit relaxed/acquire/release/acq_rel/consume
                     memory order argument must carry a `// mo:` rationale
                     comment: on the same line, or above it within the same
                     contiguous block of lines (a blank line ends coverage,
                     and coverage reaches at most twenty lines down). Default
                     (seq_cst) ordering needs no comment; the weakened ones
                     are exactly where a future reader needs to know which
                     reordering was proven harmless.

  lock-order-doc     The lock-acquisition-order table in
                     docs/CONCURRENCY.md and the SCD_ACQUIRED_BEFORE
                     annotations in src/ must agree in BOTH directions:
                     every annotated edge needs a table row, and every
                     table row needs a live annotation. A stale doc about
                     lock order is worse than none.

Waivers: append `// scd-lint: allow(<rule>)` to the offending line (or the
line directly above it); `// scd-lint: allow-file(<rule>)` within the first
30 lines of a file waives the rule for the whole file.

Exit status: 0 when clean, 1 when violations were found, 2 on usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

# --------------------------------------------------------------------------
# Rule configuration
# --------------------------------------------------------------------------

# (relative file, method signature prefix) pairs whose bodies must validate
# with `throw`. The signature prefix is matched at the start of a trimmed
# line (possibly after decorators like [[nodiscard]] static).
THROW_CHECKED_METHODS = {
    "src/sketch/kary_sketch.h": [
        "BasicKarySketch(FamilyPtr",
        "void add_scaled(",
        "static BasicKarySketch combine(",
        "void load_registers(",
    ],
    "src/sketch/count_sketch.h": [
        "BasicCountSketch(FamilyPtr",
        "BasicCountMinSketch(FamilyPtr",
    ],
}

# A "hand-picked sketch" is a direct declaration/construction of a concrete
# sketch alias rather than the SketchForKeyKind mapping.
SKETCH_HAND_PICK = re.compile(
    r"\b(?:sketch::)?(?:KarySketch64|KarySketch)\s+\w+\s*[({]"
)
KEYKIND_USE = re.compile(r"\bKeyKind::")
BINDING_EVIDENCE = re.compile(
    r"core/sketch_binding\.h|SketchForKeyKind|kSketchCoversKeyKind"
)

METRIC_LITERAL = re.compile(r'"(scd_[a-z0-9_]+)"')
METRIC_DOC_ROW = re.compile(r"^\|\s*`(scd_[a-z0-9_]+)`")
METRIC_DOC_PATH = "docs/OBSERVABILITY.md"

# Canonical headers for core project types: using the type in src/ requires
# including its header directly (the type's own header is exempt).
INCLUDE_CANON = [
    (re.compile(r"\bBasicKarySketch\b|\bKarySketch64\b|\bKarySketch\b"),
     "sketch/kary_sketch.h"),
    (re.compile(r"\bBasicCount(?:Min)?Sketch\b|\bCount(?:Min)?Sketch\b"),
     "sketch/count_sketch.h"),
    (re.compile(r"\bMetricsRegistry\b"), "obs/metrics.h"),
    (re.compile(r"\bcommon::(?:Mutex|MutexLock|CondVar)\b"),
     "common/mutex.h"),
    (re.compile(r"\bBoundedQueue\b"), "ingest/bounded_queue.h"),
    (re.compile(r"\bShardSet(?:Base)?\b"), "ingest/shard_set.h"),
    (re.compile(r"\bKeyKind\b"), "traffic/key_extract.h"),
    (re.compile(r"\bFlowRecord\b"), "traffic/flow_record.h"),
    (re.compile(r"\bTabulationHashFamily\b"), "hash/tabulation_hash.h"),
    (re.compile(r"\bCwHashFamily\b"), "hash/cw_hash.h"),
    (re.compile(r"\bFamilyRegistry\b|\bSerializeError\b"),
     "sketch/serialize.h"),
    (re.compile(r"\bChangeDetectionPipeline\b|\bIntervalBatch\b"),
     "core/pipeline.h"),
    (re.compile(r"\bsimd::(?:scale|axpy|dot|sum_squares|hsum|active_isa|"
                r"isa_name|cpu_supports_avx2|IsaLevel)\b"),
     "simd/kernels.h"),
]

ALL_RULES = ("throw-not-assert", "kkeybits-binding", "metric-docs",
             "include-hygiene", "simd-isolation", "mutex-wrapper",
             "mo-rationale", "lock-order-doc")

# ---- mutex-wrapper ----
# The raw synchronization vocabulary that bypasses the annotated wrappers.
RAW_SYNC_TYPE = re.compile(
    r"\bstd\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable|"
    r"condition_variable_any|lock_guard|scoped_lock|unique_lock|"
    r"shared_lock)\b")
# The wrapper's own implementation is the one place raw types may live.
MUTEX_WRAPPER_HOME = "src/common/mutex.h"

# Thread-safety annotations that must stay on the concurrency-critical
# types. Each entry: file -> list of (anchor, regex, description). The regex
# runs on comment-stripped text; `[^;{]*?` spans a multi-line declarator
# without escaping the declaration. This keeps the compile-time contract
# checkable even on toolchains without clang's -Wthread-safety (the clang CI
# leg enforces the full analysis; this pins the named load-bearing
# annotations everywhere).
ANNOTATION_CONTRACT = {
    "src/ingest/bounded_queue.h": [
        ("items_", r"\bitems_\s+SCD_GUARDED_BY\(mutex_\)",
         "items_ must be declared SCD_GUARDED_BY(mutex_)"),
        ("closed_", r"\bclosed_\s+SCD_GUARDED_BY\(mutex_\)",
         "closed_ must be declared SCD_GUARDED_BY(mutex_)"),
    ],
    "src/ingest/shard_set.h": [
        ("epochs_closed_",
         r"\bepochs_closed_\s+SCD_GUARDED_BY\(epoch_mutex_\)",
         "epochs_closed_ must be declared SCD_GUARDED_BY(epoch_mutex_)"),
        ("epochs_merged_",
         r"\bepochs_merged_\s+SCD_GUARDED_BY\(epoch_mutex_\)",
         "epochs_merged_ must be declared SCD_GUARDED_BY(epoch_mutex_)"),
        ("merge_error_",
         r"\bmerge_error_\s+SCD_GUARDED_BY\(epoch_mutex_\)",
         "merge_error_ must be declared SCD_GUARDED_BY(epoch_mutex_)"),
        ("pool_", r"\bpool_\s+SCD_GUARDED_BY\(pool_mutex_\)",
         "pool_ must be declared SCD_GUARDED_BY(pool_mutex_)"),
        ("publish_handoff_locked",
         r"\bpublish_handoff_locked\s*\([^;{]*?"
         r"SCD_REQUIRES\(epoch_mutex_\)",
         "publish_handoff_locked must declare SCD_REQUIRES(epoch_mutex_)"),
        ("take_epoch_locked",
         r"\btake_epoch_locked\s*\([^;{]*?"
         r"SCD_REQUIRES\(epoch_mutex_\)",
         "take_epoch_locked must declare SCD_REQUIRES(epoch_mutex_)"),
    ],
    "src/ingest/parallel_pipeline.cpp": [
        ("pending_closes_",
         r"\bpending_closes_\s+SCD_GUARDED_BY\(close_mutex_\)",
         "pending_closes_ must be declared SCD_GUARDED_BY(close_mutex_)"),
    ],
}

# ---- mo-rationale ----
EXPLICIT_MEMORY_ORDER = re.compile(
    r"\bmemory_order(?:_|::\s*)(relaxed|acquire|release|acq_rel|consume)\b")
MO_COMMENT = re.compile(r"//.*\bmo:")

# ---- lock-order-doc ----
ACQUIRED_BEFORE = re.compile(
    r"\b(\w+)\s+SCD_ACQUIRED_BEFORE\(\s*(\w+)\s*\)")
ACQUIRED_AFTER = re.compile(
    r"\b(\w+)\s+SCD_ACQUIRED_AFTER\(\s*(\w+)\s*\)")
LOCK_ORDER_DOC_PATH = "docs/CONCURRENCY.md"
# Table rows: | `first` | `second` | `src/...` | rationale |
LOCK_ORDER_DOC_ROW = re.compile(
    r"^\|\s*`(\w+)`\s*\|\s*`(\w+)`\s*\|\s*`([^`]+)`\s*\|")

# The only simd header non-simd code may include; everything else under
# simd/ is an implementation detail of the dispatch.
SIMD_CANONICAL_HEADER = "simd/kernels.h"

WAIVER = re.compile(r"//\s*scd-lint:\s*allow\(([a-z-]+)\)")
FILE_WAIVER = re.compile(r"//\s*scd-lint:\s*allow-file\(([a-z-]+)\)")


class Violation:
    def __init__(self, path: str, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string literals, preserving line structure so
    line numbers computed on the result match the original file."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def waived(lines: list[str], lineno: int, rule: str) -> bool:
    """True when the 1-based line, or the line above it, carries a waiver."""
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(lines) and any(
                m.group(1) == rule for m in WAIVER.finditer(lines[idx])):
            return True
    return False


def file_waived(lines: list[str], rule: str) -> bool:
    head = lines[:30]
    return any(m.group(1) == rule
               for line in head for m in FILE_WAIVER.finditer(line))


# --------------------------------------------------------------------------
# throw-not-assert
# --------------------------------------------------------------------------

def extract_body(text: str, sig_offset: int) -> str | None:
    """Returns the brace-enclosed body following a signature starting at
    sig_offset (which must point at or before the parameter list's opening
    paren): the body is the first `{` at paren depth 0."""
    depth_paren = 0
    i = sig_offset
    n = len(text)
    while i < n:
        c = text[i]
        if c == "(":
            depth_paren += 1
        elif c == ")":
            depth_paren -= 1
        elif c == "{" and depth_paren == 0:
            start = i
            depth = 0
            while i < n:
                if text[i] == "{":
                    depth += 1
                elif text[i] == "}":
                    depth -= 1
                    if depth == 0:
                        return text[start:i + 1]
                i += 1
            return None
        elif c == ";" and depth_paren == 0:
            return None  # declaration only
        i += 1
    return None


def check_throw_not_assert(root: Path) -> list[Violation]:
    violations = []
    for rel, methods in THROW_CHECKED_METHODS.items():
        path = root / rel
        if not path.is_file():
            continue
        raw = path.read_text()
        lines = raw.splitlines()
        text = strip_comments_and_strings(raw)
        if file_waived(lines, "throw-not-assert"):
            continue
        for sig in methods:
            offset = text.find(sig)
            if offset == -1:
                violations.append(Violation(
                    rel, 1, "throw-not-assert",
                    f"expected public API '{sig}...' not found "
                    "(update THROW_CHECKED_METHODS if it was renamed)"))
                continue
            lineno = line_of(text, offset)
            if waived(lines, lineno, "throw-not-assert"):
                continue
            body = extract_body(text, offset)
            if body is None:
                continue  # declaration without body (e.g. forward decl)
            has_throw = re.search(r"\bthrow\b", body) is not None
            has_assert = re.search(r"\bassert\s*\(", body) is not None
            if not has_throw:
                what = ("validates with assert() only"
                        if has_assert else "performs no validation")
                violations.append(Violation(
                    rel, lineno, "throw-not-assert",
                    f"'{sig}...' {what}; structural misuse must throw "
                    "std::invalid_argument in all build types"))
    return violations


# --------------------------------------------------------------------------
# kkeybits-binding
# --------------------------------------------------------------------------

def check_kkeybits_binding(root: Path, files: list[Path]) -> list[Violation]:
    violations = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        if rel == "src/core/sketch_binding.h":
            continue
        raw = path.read_text()
        lines = raw.splitlines()
        if file_waived(lines, "kkeybits-binding"):
            continue
        text = strip_comments_and_strings(raw)
        if not KEYKIND_USE.search(text):
            continue
        match = SKETCH_HAND_PICK.search(text)
        if match is None:
            continue
        # Binding evidence must appear in the raw file (the include line).
        if BINDING_EVIDENCE.search(raw):
            continue
        lineno = line_of(text, match.start())
        if waived(lines, lineno, "kkeybits-binding"):
            continue
        violations.append(Violation(
            rel, lineno, "kkeybits-binding",
            "hand-picks a sketch type while using KeyKind; bind the choice "
            "through core/sketch_binding.h (SketchForKeyKind or a "
            "kSketchCoversKeyKind static_assert)"))
    return violations


# --------------------------------------------------------------------------
# metric-docs
# --------------------------------------------------------------------------

def check_metric_docs(root: Path, src_files: list[Path]) -> list[Violation]:
    violations = []
    registered: dict[str, tuple[str, int]] = {}
    for path in src_files:
        rel = path.relative_to(root).as_posix()
        raw = path.read_text()
        lines = raw.splitlines()
        for m in METRIC_LITERAL.finditer(raw):
            lineno = line_of(raw, m.start())
            if waived(lines, lineno, "metric-docs"):
                continue
            registered.setdefault(m.group(1), (rel, lineno))

    doc_path = root / METRIC_DOC_PATH
    documented: dict[str, int] = {}
    if doc_path.is_file():
        for idx, line in enumerate(doc_path.read_text().splitlines(), 1):
            m = METRIC_DOC_ROW.match(line.strip())
            if m:
                documented.setdefault(m.group(1), idx)
    elif registered:
        violations.append(Violation(
            METRIC_DOC_PATH, 1, "metric-docs",
            "metrics are registered in code but the doc file is missing"))
        return violations

    for name, (rel, lineno) in sorted(registered.items()):
        if name not in documented:
            violations.append(Violation(
                rel, lineno, "metric-docs",
                f"metric '{name}' is registered here but not documented in "
                f"{METRIC_DOC_PATH}"))
    for name, lineno in sorted(documented.items()):
        if name not in registered:
            violations.append(Violation(
                METRIC_DOC_PATH, lineno, "metric-docs",
                f"metric '{name}' is documented but no longer registered "
                "anywhere under src/"))
    return violations


# --------------------------------------------------------------------------
# include-hygiene
# --------------------------------------------------------------------------

INCLUDE_LINE = re.compile(r'^\s*#\s*include\s*"([^"]+)"', re.MULTILINE)


def check_include_hygiene(root: Path, src_files: list[Path]) -> list[Violation]:
    violations = []
    for path in src_files:
        rel = path.relative_to(root).as_posix()
        raw = path.read_text()
        lines = raw.splitlines()
        if file_waived(lines, "include-hygiene"):
            continue
        text = strip_comments_and_strings(raw)
        includes = set(INCLUDE_LINE.findall(raw))
        for pattern, header in INCLUDE_CANON:
            if rel == f"src/{header}":
                continue
            match = pattern.search(text)
            if match is None or header in includes:
                continue
            lineno = line_of(text, match.start())
            if waived(lines, lineno, "include-hygiene"):
                continue
            violations.append(Violation(
                rel, lineno, "include-hygiene",
                f"uses '{match.group(0)}' without including \"{header}\" "
                "directly (transitive-include reliance)"))
    return violations


# --------------------------------------------------------------------------
# simd-isolation
# --------------------------------------------------------------------------

def check_simd_isolation(root: Path, files: list[Path]) -> list[Violation]:
    violations = []
    for path in files:
        rel = path.relative_to(root).as_posix()
        if rel.startswith("src/simd/"):
            continue  # the kernel layer wires its own backends together
        raw = path.read_text()
        lines = raw.splitlines()
        if file_waived(lines, "simd-isolation"):
            continue
        for m in INCLUDE_LINE.finditer(raw):
            header = m.group(1)
            if not header.startswith("simd/") or header == SIMD_CANONICAL_HEADER:
                continue
            lineno = line_of(raw, m.start())
            if waived(lines, lineno, "simd-isolation"):
                continue
            violations.append(Violation(
                rel, lineno, "simd-isolation",
                f"includes per-ISA kernel header \"{header}\"; callers must "
                f"go through \"{SIMD_CANONICAL_HEADER}\" so the runtime "
                "dispatch (cpuid + SCD_SIMD) stays authoritative"))
    return violations


# --------------------------------------------------------------------------
# mutex-wrapper
# --------------------------------------------------------------------------

def check_mutex_wrapper(root: Path, src_files: list[Path]) -> list[Violation]:
    violations = []
    for path in src_files:
        rel = path.relative_to(root).as_posix()
        if rel == MUTEX_WRAPPER_HOME:
            continue
        raw = path.read_text()
        lines = raw.splitlines()
        if file_waived(lines, "mutex-wrapper"):
            continue
        text = strip_comments_and_strings(raw)
        for m in RAW_SYNC_TYPE.finditer(text):
            lineno = line_of(text, m.start())
            if waived(lines, lineno, "mutex-wrapper"):
                continue
            violations.append(Violation(
                rel, lineno, "mutex-wrapper",
                f"raw std::{m.group(1)} bypasses the annotated wrappers; "
                "use scd::common::Mutex / MutexLock / CondVar "
                "(common/mutex.h) so -Wthread-safety sees the capability"))
        contract = ANNOTATION_CONTRACT.get(rel)
        if not contract:
            continue
        for anchor, pattern, description in contract:
            if re.search(pattern, text):
                continue
            offset = text.find(anchor)
            lineno = line_of(text, offset) if offset != -1 else 1
            if waived(lines, lineno, "mutex-wrapper"):
                continue
            violations.append(Violation(
                rel, lineno, "mutex-wrapper",
                f"thread-safety annotation contract broken: {description}"))
    return violations


# --------------------------------------------------------------------------
# mo-rationale
# --------------------------------------------------------------------------

def check_mo_rationale(root: Path, src_files: list[Path]) -> list[Violation]:
    violations = []
    for path in src_files:
        rel = path.relative_to(root).as_posix()
        raw = path.read_text()
        lines = raw.splitlines()
        if file_waived(lines, "mo-rationale"):
            continue
        text = strip_comments_and_strings(raw)
        for m in EXPLICIT_MEMORY_ORDER.finditer(text):
            lineno = line_of(text, m.start())
            if waived(lines, lineno, "mo-rationale"):
                continue
            # Covered when the same line carries `// mo:`, or a line above
            # it does within the same contiguous block: walk upward through
            # non-blank lines (at most twenty), so one rationale covers an
            # adjacent cluster of orderings but never drifts across a
            # paragraph break. Comments live in `lines`, the unstripped
            # source.
            covered = False
            for idx in range(lineno - 1, max(-1, lineno - 21), -1):
                if idx < 0 or (idx != lineno - 1 and not lines[idx].strip()):
                    break
                if MO_COMMENT.search(lines[idx]):
                    covered = True
                    break
            if covered:
                continue
            violations.append(Violation(
                rel, lineno, "mo-rationale",
                f"memory_order_{m.group(1)} without a '// mo:' rationale "
                "comment (same line or the contiguous lines above); every "
                "weakened ordering must say why the reordering is safe"))
    return violations


# --------------------------------------------------------------------------
# lock-order-doc
# --------------------------------------------------------------------------

def collect_lock_order_edges(
        root: Path, src_files: list[Path]) -> list[tuple[str, str, str, int]]:
    """Returns (earlier, later, rel_file, lineno) edges from annotations."""
    edges = []
    for path in src_files:
        rel = path.relative_to(root).as_posix()
        if rel == "src/common/thread_annotations.h":
            continue  # macro definitions, not uses
        raw = path.read_text()
        lines = raw.splitlines()
        if file_waived(lines, "lock-order-doc"):
            continue
        text = strip_comments_and_strings(raw)
        for m in ACQUIRED_BEFORE.finditer(text):
            lineno = line_of(text, m.start())
            if waived(lines, lineno, "lock-order-doc"):
                continue
            edges.append((m.group(1), m.group(2), rel, lineno))
        for m in ACQUIRED_AFTER.finditer(text):
            lineno = line_of(text, m.start())
            if waived(lines, lineno, "lock-order-doc"):
                continue
            edges.append((m.group(2), m.group(1), rel, lineno))
    return edges


def check_lock_order_doc(root: Path, src_files: list[Path]) -> list[Violation]:
    violations = []
    edges = collect_lock_order_edges(root, src_files)

    doc_path = root / LOCK_ORDER_DOC_PATH
    documented: list[tuple[str, str, str, int]] = []
    if doc_path.is_file():
        for idx, line in enumerate(doc_path.read_text().splitlines(), 1):
            m = LOCK_ORDER_DOC_ROW.match(line.strip())
            if m and m.group(1) != "first":  # skip the header row
                documented.append((m.group(1), m.group(2), m.group(3), idx))
    elif edges:
        violations.append(Violation(
            LOCK_ORDER_DOC_PATH, 1, "lock-order-doc",
            "SCD_ACQUIRED_BEFORE annotations exist but the lock-order doc "
            "is missing"))
        return violations

    doc_keys = {(e, l, f) for e, l, f, _ in documented}
    code_keys = {(e, l, f) for e, l, f, _ in edges}
    for earlier, later, rel, lineno in edges:
        if (earlier, later, rel) not in doc_keys:
            violations.append(Violation(
                rel, lineno, "lock-order-doc",
                f"lock-order edge {earlier} -> {later} is annotated here "
                f"but missing from the {LOCK_ORDER_DOC_PATH} table "
                f"(expected row: | `{earlier}` | `{later}` | `{rel}` | ...)"))
    for earlier, later, rel, lineno in documented:
        if (earlier, later, rel) not in code_keys:
            violations.append(Violation(
                LOCK_ORDER_DOC_PATH, lineno, "lock-order-doc",
                f"documented lock-order edge {earlier} -> {later} "
                f"({rel}) has no matching SCD_ACQUIRED_BEFORE annotation "
                "in code; the table is stale"))
    return violations


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect(root: Path, subdirs: list[str]) -> list[Path]:
    files = []
    for sub in subdirs:
        base = root / sub
        if base.is_dir():
            files.extend(p for p in sorted(base.rglob("*"))
                         if p.suffix in (".h", ".cpp") and p.is_file())
    return files


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                        help="repository root to lint (default: repo root)")
    parser.add_argument("--rules", action="store_true",
                        help="list rule ids and exit")
    args = parser.parse_args(argv)

    if args.rules:
        for rule in ALL_RULES:
            print(rule)
        return 0

    root = args.root.resolve()
    if not root.is_dir():
        print(f"scd_lint: no such directory: {root}", file=sys.stderr)
        return 2

    src_files = collect(root, ["src"])
    binding_files = src_files + collect(root, ["examples", "bench"])

    violations: list[Violation] = []
    violations += check_throw_not_assert(root)
    violations += check_kkeybits_binding(root, binding_files)
    violations += check_metric_docs(root, src_files)
    violations += check_include_hygiene(root, src_files)
    violations += check_simd_isolation(root, binding_files)
    violations += check_mutex_wrapper(root, src_files)
    violations += check_mo_rationale(root, src_files)
    violations += check_lock_order_doc(root, src_files)

    for v in violations:
        print(v)
    if violations:
        print(f"scd_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
