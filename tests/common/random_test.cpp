#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace scd::common {
namespace {

TEST(SplitMix64, IsDeterministic) {
  std::uint64_t s1 = 42, s2 = 42;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, AdvancesState) {
  std::uint64_t s = 42;
  const std::uint64_t a = splitmix64(s);
  const std::uint64_t b = splitmix64(s);
  EXPECT_NE(a, b);
}

TEST(Mix64, DoesNotMutateAndIsPure) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DifferentSeedsDiverge) {
  Xoshiro256 a(7), b(8);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(2);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(3);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(7);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(0.1), 0.0);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  const int n = 200000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.02);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(10);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.05);
}

TEST(Rng, LognormalMedianIsExpMu) {
  Rng rng(11);
  std::vector<double> samples;
  const int n = 50001;
  samples.reserve(n);
  for (int i = 0; i < n; ++i) samples.push_back(rng.lognormal(2.0, 0.7));
  std::nth_element(samples.begin(), samples.begin() + n / 2, samples.end());
  EXPECT_NEAR(samples[n / 2], std::exp(2.0), 0.25);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(12);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / n, 200.0, 1.0);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(14);
  EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ParetoRespectsScale) {
  Rng rng(15);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(3.0, 1.5), 3.0);
}

TEST(ZipfDistribution, PmfSumsToOne) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0.0;
  for (std::size_t k = 0; k < 100; ++k) total += zipf.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfDistribution, PmfIsMonotoneDecreasing) {
  ZipfDistribution zipf(50, 1.0);
  for (std::size_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.pmf(k), zipf.pmf(k - 1) + 1e-12);
  }
}

TEST(ZipfDistribution, PmfOutOfRangeIsZero) {
  ZipfDistribution zipf(10, 1.0);
  EXPECT_EQ(zipf.pmf(10), 0.0);
  EXPECT_EQ(zipf.pmf(1000), 0.0);
}

TEST(ZipfDistribution, SampleWithinRange) {
  ZipfDistribution zipf(32, 1.2);
  Rng rng(16);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.sample(rng), 32u);
}

TEST(ZipfDistribution, EmpiricalFrequencyTracksPmf) {
  ZipfDistribution zipf(20, 1.0);
  Rng rng(17);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.pmf(k), 0.005)
        << "rank " << k;
  }
}

TEST(ZipfDistribution, SingleElementAlwaysRankZero) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(ZipfDistribution, HigherExponentIsMoreSkewed) {
  ZipfDistribution flat(100, 0.5);
  ZipfDistribution steep(100, 2.0);
  EXPECT_GT(steep.pmf(0), flat.pmf(0));
}

TEST(RngSnapshot, RestoredRngContinuesExactSequence) {
  Rng rng(0xabc);
  for (int i = 0; i < 100; ++i) (void)rng.next_u64();
  const Rng::Snapshot snap = rng.snapshot();
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(rng.next_u64());

  Rng restored(999);  // deliberately different seed; snapshot must win
  restored.restore(snap);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(restored.next_u64(), expected[i]);
  }
}

TEST(RngSnapshot, CachedNormalDeviateSurvivesRestore) {
  Rng rng(0xdef);
  // One normal() computes two deviates and caches the second; a snapshot
  // taken here must carry the cache, or the restored sequence shifts.
  (void)rng.normal();
  const Rng::Snapshot snap = rng.snapshot();
  EXPECT_TRUE(snap.has_cached_normal);
  std::vector<double> expected;
  for (int i = 0; i < 20; ++i) expected.push_back(rng.normal());

  Rng restored(1);
  restored.restore(snap);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(restored.normal(), expected[i]);
  }
}

TEST(RngSnapshot, SnapshotDoesNotPerturbSequence) {
  Rng a(0x77);
  Rng b(0x77);
  for (int i = 0; i < 10; ++i) {
    (void)a.snapshot();  // snapshotting is read-only
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

}  // namespace
}  // namespace scd::common
