// Epoch-merge stress: workers racing the merger thread across 100 epochs.
//
// The async interval close (docs/PERFORMANCE.md) lets the producer stamp
// epoch e+1's tokens while the merger is still COMBINE-merging epoch e and
// the workers are already filling pooled sketches for e+1 — three thread
// roles live on the epoch ledger at once. This test drives that overlap as
// hard as the API allows: tiny intervals so closes come fast, small chunks
// so every close splits mid-chunk, max_pending_intervals deep enough that
// the merger genuinely trails, and callbacks that record delivery order.
// Runs under the tsan preset via `ctest -L concurrency`; the assertions
// themselves re-check the ordering contract (interval-order, no gaps, no
// duplicates) that the sanitizer cannot see.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"

namespace scd::ingest {
namespace {

core::PipelineConfig stress_config() {
  core::PipelineConfig config;
  config.interval_s = 1.0;  // a close every 40 records
  config.h = 3;
  config.k = 256;
  config.model.kind = forecast::ModelKind::kEwma;
  config.threshold = 0.5;
  config.metrics = false;
  return config;
}

TEST(EpochMergeStress, HundredEpochsWorkersRacingMerger) {
  constexpr std::size_t kEpochs = 100;
  static constexpr std::uint64_t kKeysPerEpoch = 40;

  ParallelConfig parallel;
  parallel.workers = 4;
  parallel.batch_size = 8;         // every close splits pending chunks
  parallel.queue_capacity = 256;   // small enough to exercise backpressure
  parallel.max_pending_intervals = 8;  // let the producer run well ahead

  ParallelPipeline pipeline(stress_config(), parallel);

  // Delivery order as seen from the merger thread: the batch tap and the
  // close callback must interleave strictly per interval.
  std::vector<std::uint64_t> batch_order;
  std::vector<std::size_t> close_order;
  pipeline.set_interval_batch_callback(
      [&batch_order](std::uint64_t interval_index,
                     const core::IntervalBatch& batch) {
        batch_order.push_back(interval_index);
        EXPECT_EQ(batch.records, kKeysPerEpoch);
      });
  pipeline.set_interval_close_callback(
      [&close_order, &batch_order](std::size_t closed) {
        close_order.push_back(closed);
        // The tap for this interval ran before its close callback.
        EXPECT_EQ(batch_order.size(), close_order.size());
      });

  for (std::size_t epoch = 0; epoch < kEpochs; ++epoch) {
    const double start = static_cast<double>(epoch);
    for (std::uint64_t key = 0; key < kKeysPerEpoch; ++key) {
      pipeline.add(key + 1, 100.0, start + 0.5);
    }
  }
  pipeline.flush();

  ASSERT_EQ(pipeline.parallel_stats().barriers, kEpochs);
  ASSERT_EQ(pipeline.reports().size(), kEpochs);
  ASSERT_EQ(batch_order.size(), kEpochs);
  ASSERT_EQ(close_order.size(), kEpochs);
  for (std::size_t i = 0; i < kEpochs; ++i) {
    EXPECT_EQ(batch_order[i], i);          // in order, no gaps, no dups
    EXPECT_EQ(close_order[i], i + 1);
    EXPECT_EQ(pipeline.reports()[i].records, kKeysPerEpoch);
  }
  EXPECT_EQ(pipeline.stats().records, kEpochs * kKeysPerEpoch);
  EXPECT_EQ(pipeline.parallel_stats().shutdown_dropped_records, 0u);
}

TEST(EpochMergeStress, DrainMidStreamLeavesOpenIntervalIntact) {
  ParallelConfig parallel;
  parallel.workers = 2;
  parallel.batch_size = 4;
  parallel.max_pending_intervals = 4;

  ParallelPipeline pipeline(stress_config(), parallel);
  for (std::size_t epoch = 0; epoch < 10; ++epoch) {
    for (std::uint64_t key = 0; key < 20; ++key) {
      pipeline.add(key + 1, 50.0, static_cast<double>(epoch) + 0.25);
    }
    // Drain while the next interval is (soon) open: all closed epochs must
    // be merged, the open one untouched.
    if (epoch % 3 == 0) {
      pipeline.drain();
      EXPECT_EQ(pipeline.reports().size(), epoch);
    }
  }
  pipeline.flush();
  EXPECT_EQ(pipeline.reports().size(), 10u);
  EXPECT_EQ(pipeline.stats().records, 200u);
}

}  // namespace
}  // namespace scd::ingest
