// Figure 15: thresholding false positives, medium router, 300 s interval,
// ARIMA models with d=0 and d=1.
#include "support/fnfp_figure.h"

int main() {
  scd::bench::run_fnfp_figure(
      "Figure 15",
      {scd::forecast::ModelKind::kArima0, scd::forecast::ModelKind::kArima1},
      /*false_negatives=*/false);
  return scd::bench::finish();
}
