#include "traffic/packetize.h"

#include <gtest/gtest.h>

#include <numeric>

#include "traffic/synthetic.h"

namespace scd::traffic {
namespace {

FlowRecord flow(std::uint64_t t_us, std::uint32_t packets,
                std::uint64_t bytes) {
  FlowRecord r;
  r.timestamp_us = t_us;
  r.src_ip = 0x01020304;
  r.dst_ip = 0x05060708;
  r.src_port = 1111;
  r.dst_port = 80;
  r.protocol = 6;
  r.packets = packets;
  r.bytes = bytes;
  return r;
}

TEST(Packetizer, PacketCountMatchesRecord) {
  Packetizer packetizer;
  const auto packets = packetizer.packetize(
      std::vector<FlowRecord>{flow(0, 7, 7000)});
  EXPECT_EQ(packets.size(), 7u);
}

TEST(Packetizer, BytesSumExactly) {
  Packetizer packetizer;
  for (std::uint64_t bytes : {40ull, 1500ull, 7777ull, 123456ull}) {
    const auto packets = packetizer.packetize(
        std::vector<FlowRecord>{flow(0, 5, bytes)});
    std::uint64_t total = 0;
    for (const auto& p : packets) total += p.bytes;
    EXPECT_EQ(total, bytes) << bytes;
  }
}

TEST(Packetizer, ZeroPacketsTreatedAsOne) {
  Packetizer packetizer;
  const auto packets = packetizer.packetize(
      std::vector<FlowRecord>{flow(0, 0, 500)});
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].bytes, 500u);
}

TEST(Packetizer, HeaderFieldsCopied) {
  Packetizer packetizer;
  const auto packets = packetizer.packetize(
      std::vector<FlowRecord>{flow(1000, 3, 3000)});
  for (const auto& p : packets) {
    EXPECT_EQ(p.src_ip, 0x01020304u);
    EXPECT_EQ(p.dst_ip, 0x05060708u);
    EXPECT_EQ(p.dst_port, 80);
    EXPECT_EQ(p.protocol, 6);
  }
}

TEST(Packetizer, TimestampsWithinSpreadWindow) {
  PacketizerConfig config;
  config.flow_spread_s = 1.5;
  Packetizer packetizer(config);
  const auto packets = packetizer.packetize(
      std::vector<FlowRecord>{flow(1'000'000, 20, 20000)});
  for (const auto& p : packets) {
    EXPECT_GE(p.timestamp_us, 1'000'000u);
    EXPECT_LE(p.timestamp_us, 1'000'000u + 1'500'000u);
  }
}

TEST(Packetizer, OutputGloballySorted) {
  Packetizer packetizer;
  std::vector<FlowRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(flow(static_cast<std::uint64_t>(i) * 100'000, 4, 4000));
  }
  const auto packets = packetizer.packetize(records);
  for (std::size_t i = 1; i < packets.size(); ++i) {
    EXPECT_LE(packets[i - 1].timestamp_us, packets[i].timestamp_us);
  }
}

TEST(Packetizer, DeterministicPerSeed) {
  PacketizerConfig config;
  config.seed = 9;
  Packetizer p1(config), p2(config);
  const std::vector<FlowRecord> records{flow(0, 10, 9999), flow(500, 3, 300)};
  EXPECT_EQ(p1.packetize(records), p2.packetize(records));
}

TEST(Packetizer, SyntheticTraceExpansionConservesBytes) {
  SyntheticConfig config;
  config.seed = 5;
  config.duration_s = 120.0;
  config.base_rate = 30.0;
  config.num_hosts = 200;
  SyntheticTraceGenerator generator(config);
  const auto records = generator.generate();
  std::uint64_t flow_bytes = 0;
  std::uint64_t flow_packets = 0;
  for (const auto& r : records) {
    flow_bytes += r.bytes;
    flow_packets += std::max<std::uint32_t>(1, r.packets);
  }
  Packetizer packetizer;
  const auto packets = packetizer.packetize(records);
  EXPECT_EQ(packets.size(), flow_packets);
  std::uint64_t packet_bytes = 0;
  for (const auto& p : packets) packet_bytes += p.bytes;
  EXPECT_EQ(packet_bytes, flow_bytes);
}

TEST(Packetizer, StreamingFormMatchesBatchPerRecord) {
  PacketizerConfig config;
  config.seed = 11;
  Packetizer batch(config), streaming(config);
  const FlowRecord r = flow(0, 6, 6000);
  const auto expected = batch.packetize(std::vector<FlowRecord>{r});
  std::vector<PacketRecord> got;
  streaming.packetize_record(r, [&got](const PacketRecord& p) {
    got.push_back(p);
  });
  std::sort(got.begin(), got.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.timestamp_us < b.timestamp_us;
            });
  EXPECT_EQ(got, expected);
}

}  // namespace
}  // namespace scd::traffic
