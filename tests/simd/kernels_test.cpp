// Scalar-vs-SIMD equivalence property tests for the kernel layer.
//
// Every kernel is compared against the scalar reference loop over
// randomized sizes (including empty, sub-vector-width, and remainder-tail
// shapes):
//   * scale and axpy are element-wise → results must be BIT-EXACT between
//     implementations (the AVX2 lane computes exactly the scalar
//     expression for its element, FMA included);
//   * dot / sum_squares / hsum reassociate the reduction across lanes →
//     results must agree within a tolerance scaled to the condition of the
//     sum (ULP-level per accumulated term).
//
// ctest runs this binary several times: once with ambient dispatch (the
// widest ISA the CPU has), once re-registered with SCD_SIMD=scalar
// (simd.kernels_scalar_dispatch), and once with SCD_SIMD=avx512
// (simd.kernels_avx512_dispatch) — the last doubles as the clean-fallback
// test on hosts without AVX-512. The AVX2 and AVX-512 backends are
// additionally tested directly (bypassing dispatch) whenever the CPU
// supports them, so coverage does not depend on which table the
// environment selected.
#include "simd/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "simd/kernels_avx2.h"
#include "simd/kernels_avx512.h"
#include "simd/kernels_scalar.h"

namespace scd::simd {
namespace {

// Shapes chosen to hit: empty, scalar tail only, exactly one vector, the
// 16-wide unrolled body, unroll+vector+tail remainders, and the real table
// sizes (H*K for K=4096 and a full row at K=65536).
const std::vector<std::size_t> kSizes = {0,  1,  2,   3,    4,    5,    7,
                                         8,  15, 16,  17,   31,   32,   33,
                                         63, 100, 255, 4096, 20480, 65536};

std::vector<double> random_values(common::Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.uniform(-1e3, 1e3);
  return out;
}

/// Tolerance for a reassociated sum: proportional to the magnitude
/// accumulated, with generous slack (64 ULP-equivalents per term bound).
double reduction_tolerance(double magnitude) {
  return 64.0 * std::numeric_limits<double>::epsilon() * (magnitude + 1.0);
}

struct Backend {
  const char* name;
  void (*scale)(double*, std::size_t, double) noexcept;
  void (*axpy)(double*, const double*, std::size_t, double) noexcept;
  double (*dot)(const double*, const double*, std::size_t) noexcept;
  double (*sum_squares)(const double*, std::size_t) noexcept;
  double (*hsum)(const double*, std::size_t) noexcept;
};

/// The implementations under test, always judged against simd::scalar.
/// The dispatched entry points are included so the env-forced ctest rerun
/// also validates the dispatch wiring itself.
std::vector<Backend> backends_under_test() {
  std::vector<Backend> out;
  out.push_back(Backend{"dispatch", &simd::scale, &simd::axpy, &simd::dot,
                        &simd::sum_squares, &simd::hsum});
  if (avx2::supported()) {
    out.push_back(Backend{"avx2", &avx2::scale, &avx2::axpy, &avx2::dot,
                          &avx2::sum_squares, &avx2::hsum});
  }
  if (avx512::supported()) {
    out.push_back(Backend{"avx512", &avx512::scale, &avx512::axpy,
                          &avx512::dot, &avx512::sum_squares, &avx512::hsum});
  }
  return out;
}

TEST(KernelDispatch, HonorsScdSimdEnvironment) {
  const char* env = std::getenv("SCD_SIMD");
  if (env != nullptr && std::string_view(env) == "scalar") {
    EXPECT_EQ(active_isa(), IsaLevel::kScalar);
  } else if (env != nullptr && std::string_view(env) == "avx2") {
    // Forced AVX2 must either run AVX2 or fall back cleanly to scalar.
    EXPECT_EQ(active_isa(),
              cpu_supports_avx2() ? IsaLevel::kAvx2 : IsaLevel::kScalar);
  } else if (env != nullptr && std::string_view(env) == "avx512") {
    // The dispatch-fallback contract: on a host without AVX-512F the forced
    // request degrades to scalar (with a stderr note), never crashes.
    EXPECT_EQ(active_isa(),
              cpu_supports_avx512() ? IsaLevel::kAvx512 : IsaLevel::kScalar);
  } else if (env == nullptr) {
    // Auto-detection: the widest ISA the CPU has wins.
    const IsaLevel expected = cpu_supports_avx512() ? IsaLevel::kAvx512
                              : cpu_supports_avx2() ? IsaLevel::kAvx2
                                                    : IsaLevel::kScalar;
    EXPECT_EQ(active_isa(), expected);
  }
  switch (active_isa()) {
    case IsaLevel::kAvx512:
      EXPECT_STREQ(isa_name(active_isa()), "avx512");
      break;
    case IsaLevel::kAvx2:
      EXPECT_STREQ(isa_name(active_isa()), "avx2");
      break;
    case IsaLevel::kScalar:
      EXPECT_STREQ(isa_name(active_isa()), "scalar");
      break;
  }
}

TEST(KernelDispatch, DispatchedKernelsWorkUnderForcedIsa) {
  // Regardless of which table the environment picked (including the
  // fallback path for SCD_SIMD=avx512 on a non-AVX-512 host), the
  // dispatched entry points must produce correct results — "clean
  // fallback" means computing, not just not crashing.
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0, 5.0};
  simd::scale(x.data(), x.size(), 2.0);
  EXPECT_EQ(x[0], 2.0);
  EXPECT_EQ(x[4], 10.0);
  EXPECT_EQ(simd::hsum(x.data(), x.size()), 30.0);
}

TEST(KernelEquivalence, ScaleIsBitExact) {
  common::Rng rng(11);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> base = random_values(rng, n);
      const double c = rng.uniform(-3.0, 3.0);
      std::vector<double> expect = base;
      scalar::scale(expect.data(), n, c);
      std::vector<double> got = base;
      backend.scale(got.data(), n, c);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expect[i], got[i])
            << backend.name << " scale n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, AxpyIsBitExact) {
  common::Rng rng(12);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const std::vector<double> y = random_values(rng, n);
      const double c = rng.uniform(-3.0, 3.0);
      std::vector<double> expect = y;
      scalar::axpy(expect.data(), x.data(), n, c);
      std::vector<double> got = y;
      backend.axpy(got.data(), x.data(), n, c);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expect[i], got[i])
            << backend.name << " axpy n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, DotWithinReductionTolerance) {
  common::Rng rng(13);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const std::vector<double> y = random_values(rng, n);
      const double expect = scalar::dot(x.data(), y.data(), n);
      const double got = backend.dot(x.data(), y.data(), n);
      double magnitude = 0.0;
      for (std::size_t i = 0; i < n; ++i) magnitude += std::abs(x[i] * y[i]);
      ASSERT_NEAR(expect, got, reduction_tolerance(magnitude))
          << backend.name << " dot n=" << n;
    }
  }
}

TEST(KernelEquivalence, SumSquaresWithinReductionTolerance) {
  common::Rng rng(14);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const double expect = scalar::sum_squares(x.data(), n);
      const double got = backend.sum_squares(x.data(), n);
      ASSERT_NEAR(expect, got, reduction_tolerance(expect))
          << backend.name << " sum_squares n=" << n;
    }
  }
}

TEST(KernelEquivalence, HsumWithinReductionTolerance) {
  common::Rng rng(15);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const double expect = scalar::hsum(x.data(), n);
      const double got = backend.hsum(x.data(), n);
      double magnitude = 0.0;
      for (double v : x) magnitude += std::abs(v);
      ASSERT_NEAR(expect, got, reduction_tolerance(magnitude))
          << backend.name << " hsum n=" << n;
    }
  }
}

TEST(KernelEquivalence, IndexShiftMaskIsExact) {
  // Pure integer lane work — every backend must agree bit-for-bit with the
  // scalar reference for every lane shift and tail shape.
  using IndexFn = void (*)(const std::uint64_t*, std::size_t, unsigned,
                           std::uint64_t, std::uint32_t*) noexcept;
  std::vector<std::pair<const char*, IndexFn>> impls = {
      {"dispatch", &simd::index_shift_mask}};
  if (avx2::supported()) impls.emplace_back("avx2", &avx2::index_shift_mask);
  if (avx512::supported()) {
    impls.emplace_back("avx512", &avx512::index_shift_mask);
  }
  common::Rng rng(17);
  for (const auto& [name, fn] : impls) {
    for (std::size_t n : kSizes) {
      if (n > 4096) continue;  // block-sized inputs; larger adds nothing
      std::vector<std::uint64_t> packed(n);
      for (auto& v : packed) {
        v = (static_cast<std::uint64_t>(rng.next_in(0, 65535)) << 48) |
            (static_cast<std::uint64_t>(rng.next_in(0, 65535)) << 32) |
            (static_cast<std::uint64_t>(rng.next_in(0, 65535)) << 16) |
            static_cast<std::uint64_t>(rng.next_in(0, 65535));
      }
      for (unsigned lane = 0; lane < 4; ++lane) {
        for (std::uint64_t mask : {0x3FFULL, 0xFFFULL, 0xFFFFULL}) {
          std::vector<std::uint32_t> expect(n), got(n, 0xDEADBEEF);
          scalar::index_shift_mask(packed.data(), n, lane * 16, mask,
                                   expect.data());
          fn(packed.data(), n, lane * 16, mask, got.data());
          ASSERT_EQ(expect, got) << name << " n=" << n << " lane=" << lane
                                 << " mask=" << mask;
        }
      }
    }
  }
}

TEST(KernelEquivalence, ReductionsAreExactOnIntegerValues) {
  // Integer-valued registers (packet/byte counts with c = 1) stay exact
  // under any summation order while the total fits a double exactly — the
  // property the parallel-vs-serial alarm equivalence relies on.
  common::Rng rng(16);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : {31UL, 4096UL, 20480UL}) {
      std::vector<double> x(n);
      for (double& v : x) {
        v = static_cast<double>(rng.next_in(-1000, 1000));
      }
      ASSERT_EQ(scalar::hsum(x.data(), n), backend.hsum(x.data(), n))
          << backend.name << " n=" << n;
      ASSERT_EQ(scalar::sum_squares(x.data(), n),
                backend.sum_squares(x.data(), n))
          << backend.name << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace scd::simd
