// Shared experiment drivers for the §5.2 accuracy figures: top-N similarity
// (Figures 4-9) and threshold-based false negatives/positives (Figures
// 10-15). Each driver compares a sketch configuration against the per-flow
// truth on the same intervalized stream.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "eval/intervalized.h"
#include "eval/sketch_path.h"
#include "eval/truth.h"
#include "forecast/model_config.h"

namespace scd::bench {

/// Per-flow truth memoized per (stream, model) within the process.
const eval::PerFlowTruth& truth_for(const eval::IntervalizedStream& stream,
                                    const forecast::ModelConfig& model);

/// §5.1 Relative Difference: total energy from the sketch path at (H, K)
/// vs the exact per-flow total energy, as a percentage (Figures 1-3).
double energy_relative_difference(const eval::IntervalizedStream& stream,
                                  const forecast::ModelConfig& model,
                                  std::size_t h, std::size_t k,
                                  std::size_t warmup);

/// Sketch-path errors for one (H, K); not memoized (each figure sweeps its
/// own configurations).
eval::SketchPathResult sketch_errors_for(
    const eval::IntervalizedStream& stream,
    const forecast::ModelConfig& model, std::size_t h, std::size_t k);

/// Per-interval top-N similarity (per-flow top-N vs sketch top-X*N) over
/// intervals >= warmup where both sides are ready.
struct SimilaritySeries {
  std::vector<std::pair<double, double>> points;  // (interval index, value)
  double mean = 0.0;
};
SimilaritySeries topn_similarity_series(const eval::PerFlowTruth& truth,
                                        const eval::SketchPathResult& sketch,
                                        std::size_t n, double x,
                                        std::size_t warmup);

/// Mean per-interval threshold metrics for one threshold fraction.
struct ThresholdStats {
  double mean_pf_alarms = 0.0;
  double mean_sk_alarms = 0.0;
  double mean_false_negative = 0.0;
  double mean_false_positive = 0.0;
};
ThresholdStats threshold_stats(const eval::PerFlowTruth& truth,
                               const eval::SketchPathResult& sketch,
                               double threshold, std::size_t warmup);

}  // namespace scd::bench
