// Zero-copy trace ingest — mmap(2) the binary .scdt trace format.
//
// TraceReader (src/traffic/trace_io.h) pulls one 36-byte record per
// ifstream read: a syscall-amortized copy into a stack buffer, a decode,
// and then — on the parallel path — a second copy through the producer's
// chunk staging into a BoundedQueue. At multi-million-records/s that
// per-record motion, not hashing, dominates the feed side. MappedTrace
// removes it: the whole file is mapped read-only (madvise SEQUENTIAL so the
// kernel reads ahead and drops pages behind), records are decoded in place
// from the mapped bytes, and feed_trace() hands 4K-record slices straight
// to BasicKarySketch::update_batch via ChangeDetectionPipeline::
// ingest_interval — no BoundedQueue, no per-record virtual dispatch, one
// decode per record into a reusable scratch buffer.
//
// Validation mirrors src/checkpoint: every way an on-disk file can lie has
// a typed error, checked in order (open, header length, magic, version,
// body length), and a file that maps successfully is structurally sound —
// record_count() whole records are present, no trailing garbage. A
// zero-record trace (header only) is valid.
//
// feed_trace() reproduces ChangeDetectionPipeline::add_record's stream
// contract exactly — same interval grid (first record opens interval 0 at
// its timestamp), same out-of-order clamp into the open interval, quiet
// gaps closed as empty intervals — so on the same trace the reports and
// alarms are bit-identical to the per-record feed (asserted by
// tests/eval/trace_mmap_test.cpp). Out-of-order records are counted in the
// returned MmapFeedStats (the batch feed has no per-record stats channel
// into the engine), matching how ParallelPipeline folds its front-end
// counter.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>

#include "core/pipeline.h"
#include "traffic/flow_record.h"

namespace scd::eval {

/// Why mapping a trace failed. Typed like CheckpointErrorKind: callers
/// distinguish "no such file" from "this file is not a trace" from "this
/// trace was cut off mid-record".
enum class TraceMapErrorKind {
  kOpenFailed,       ///< open/fstat/mmap itself failed
  kTruncatedHeader,  ///< file ends inside the 16-byte header
  kBadMagic,         ///< leading bytes are not "SCDT"
  kBadVersion,       ///< unknown trace format version
  kTruncatedBody,    ///< file ends inside a record (short final record)
  kTrailingBytes,    ///< file longer than header's record_count implies
};

[[nodiscard]] const char* trace_map_error_kind_name(
    TraceMapErrorKind kind) noexcept;

/// Thrown by every MappedTrace validation failure path.
class TraceMapError : public std::runtime_error {
 public:
  TraceMapError(TraceMapErrorKind kind, const std::string& message);

  [[nodiscard]] TraceMapErrorKind map_kind() const noexcept { return kind_; }

 private:
  TraceMapErrorKind kind_;
};

/// RAII read-only mapping of one .scdt trace file. Move-only; the mapping
/// (and the records decoded from it) stays valid for the object's lifetime.
class MappedTrace {
 public:
  /// Opens, maps, and validates `path`. Throws TraceMapError with the
  /// specific kind on the first violation (see enum above); on throw nothing
  /// stays mapped.
  explicit MappedTrace(const std::string& path);
  ~MappedTrace();
  MappedTrace(MappedTrace&& other) noexcept;
  MappedTrace& operator=(MappedTrace&& other) noexcept;
  MappedTrace(const MappedTrace&) = delete;
  MappedTrace& operator=(const MappedTrace&) = delete;

  /// Records in the trace, from the validated header.
  [[nodiscard]] std::uint64_t record_count() const noexcept { return count_; }
  /// Total mapped bytes (header + records).
  [[nodiscard]] std::size_t size_bytes() const noexcept { return map_len_; }

  /// Decodes record `index` (< record_count()) in place from the mapped
  /// bytes. Fields are read with explicit little-endian shifts — FlowRecord
  /// has alignment padding, so the mapped bytes are never cast.
  [[nodiscard]] traffic::FlowRecord record(std::size_t index) const noexcept;

  /// Bulk decode of `out.size()` records starting at `first` into caller
  /// scratch — the slice primitive feed_trace() builds on. The range
  /// [first, first + out.size()) must lie within record_count().
  void decode(std::size_t first,
              std::span<traffic::FlowRecord> out) const noexcept;

 private:
  const std::uint8_t* map_ = nullptr;  // null only after move-out
  std::size_t map_len_ = 0;
  std::uint64_t count_ = 0;
};

/// Front-end counters for one feed_trace() run (the engine's own
/// PipelineStats track everything downstream of ingest_interval).
struct MmapFeedStats {
  std::uint64_t records = 0;
  std::uint64_t out_of_order_records = 0;
  std::size_t intervals_closed = 0;
};

struct MmapFeedOptions {
  /// Records decoded and applied per update_batch slice. 4096 matches
  /// BasicKarySketch::kUpdateBlock, so each slice is exactly one
  /// hash-batched row sweep. Must be >= 1.
  std::size_t slice_records = 4096;
};

/// Feeds the whole trace into `pipeline` via the batched interval path and
/// closes the final (possibly partial) interval, like flush(). The pipeline
/// must be freshly positioned (no interval in progress); its config supplies
/// the key/update extraction, interval grid, and sketch geometry. Throws
/// std::invalid_argument on out-of-range options.
MmapFeedStats feed_trace(const MappedTrace& trace,
                         core::ChangeDetectionPipeline& pipeline,
                         const MmapFeedOptions& options = {});

}  // namespace scd::eval
