// Seed-corpus generator for the fuzz harnesses.
//
// Usage: make_fuzz_corpus <output-dir>
//
// Writes wire/, sketch/ and checkpoint/ subdirectories, each seeded with
// valid encodings produced by the real encoders plus truncated and
// bit-flipped variants — so coverage starts inside the parsers' deep paths
// instead of dying at the magic check, and the gcc corpus-replay smoke
// exercises both accept and every typed-reject branch.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "net/wire.h"
#include "sketch/kary_sketch.h"
#include "sketch/mv_sketch.h"
#include "sketch/serialize.h"

namespace {

void write_seed(const std::filesystem::path& dir, const std::string& name,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_fuzz_corpus: write failed: %s\n",
                 (dir / name).string().c_str());
    std::exit(1);
  }
}

/// Emits `bytes` plus the standard mutations every parser must reject
/// cleanly: a truncation inside the header, a truncation inside the body,
/// and a single flipped byte (CRC violation).
void write_variants(const std::filesystem::path& dir, const std::string& stem,
                    const std::vector<std::uint8_t>& bytes) {
  write_seed(dir, stem + ".bin", bytes);
  if (bytes.size() > 4) {
    write_seed(dir, stem + "-trunc-header.bin",
               {bytes.begin(), bytes.begin() + 4});
    write_seed(dir, stem + "-trunc-body.bin",
               {bytes.begin(), bytes.end() - 1});
  }
  if (!bytes.empty()) {
    std::vector<std::uint8_t> flipped = bytes;
    flipped[flipped.size() / 2] ^= 0x40;
    write_seed(dir, stem + "-bitflip.bin", flipped);
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: make_fuzz_corpus <output-dir>\n");
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  const std::filesystem::path wire_dir = root / "wire";
  const std::filesystem::path sketch_dir = root / "sketch";
  const std::filesystem::path ckpt_dir = root / "checkpoint";
  std::filesystem::create_directories(wire_dir);
  std::filesystem::create_directories(sketch_dir);
  std::filesystem::create_directories(ckpt_dir);

  // A small but non-trivial sketch, shared by the sketch and wire seeds.
  scd::sketch::FamilyRegistry registry;
  scd::sketch::KarySketch sketch(registry.tabulation(7, 3), 64);
  for (std::uint64_t key = 1; key <= 32; ++key) {
    sketch.update(key * 2654435761u, static_cast<double>(key));
  }
  const std::vector<std::uint8_t> packet = scd::sketch::sketch_to_bytes(sketch);
  write_variants(sketch_dir, "seed-packet", packet);

  // Invertible-family packet: same header layout, different kind byte, plus
  // the trailing candidate/vote arrays — seeds the vote-state validation
  // branches (non-finite vote, out-of-domain candidate) past the magic and
  // dimension checks.
  scd::sketch::MvSketch mv_sketch(registry.tabulation(7, 3), 64);
  for (std::uint64_t key = 1; key <= 32; ++key) {
    mv_sketch.update((key * 2654435761u) & 0xffffffffu,
                     static_cast<double>(key));
  }
  write_variants(sketch_dir, "seed-mv-packet",
                 scd::sketch::mv_sketch_to_bytes(mv_sketch));

  // Wire seeds: a Hello, a Bye, and an IntervalData carrying the packet.
  scd::net::FrameHeader hello;
  hello.type = scd::net::MessageType::kHello;
  hello.node_id = 3;
  hello.config_fingerprint = 0x1122334455667788ull;
  write_variants(wire_dir, "seed-hello", scd::net::encode_frame(hello, {}));

  scd::net::FrameHeader bye;
  bye.type = scd::net::MessageType::kBye;
  bye.node_id = 3;
  write_variants(wire_dir, "seed-bye", scd::net::encode_frame(bye, {}));

  scd::net::IntervalPayload payload;
  payload.start_s = 60.0;
  payload.len_s = 60.0;
  payload.records = 32;
  payload.sketch_packet = packet;
  payload.keys = {1, 2, 3, 5, 8, 13};
  const std::vector<std::uint8_t> payload_bytes =
      scd::net::encode_interval_payload(payload);
  write_variants(wire_dir, "seed-payload", payload_bytes);

  scd::net::FrameHeader data;
  data.type = scd::net::MessageType::kIntervalData;
  data.node_id = 3;
  data.interval_index = 17;
  data.config_fingerprint = 0x1122334455667788ull;
  write_variants(wire_dir, "seed-interval",
                 scd::net::encode_frame(data, payload_bytes));

  // Checkpoint seeds: serial and parallel kinds over distinct payloads.
  write_variants(ckpt_dir, "seed-serial",
                 scd::checkpoint::encode_checkpoint_frame(
                     scd::checkpoint::PayloadKind::kSerial,
                     0xfeedface12345678ull, 42, packet));
  write_variants(ckpt_dir, "seed-parallel",
                 scd::checkpoint::encode_checkpoint_frame(
                     scd::checkpoint::PayloadKind::kParallel,
                     0xfeedface12345678ull, 43, {0x01, 0x02, 0x03}));

  std::printf("make_fuzz_corpus: seeded %s\n", root.string().c_str());
  return 0;
}
