#include "sketch/mv_sketch.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "hash/cw_hash.h"
#include "hash/tabulation_hash.h"

namespace scd::sketch {

template <hash::HashFamily16 Family>
std::vector<RecoveredHeavyKey> BasicMvSketch<Family>::recover_heavy_keys(
    double threshold_abs, std::size_t* candidates_swept) const {
  const std::size_t h = depth();
  // One sum for the whole sweep — the per-candidate verification below runs
  // the same ESTIMATE arithmetic as estimate() against this shared anchor.
  const double per_bucket = sum() / static_cast<double>(k_);
  const double denom = 1.0 - 1.0 / static_cast<double>(k_);

  std::vector<std::uint64_t> cands;
  for (std::size_t i = 0; i < h; ++i) {
    const double* const row_counters = &table_[i * k_];
    const double* const row_votes = &votes_[i * k_];
    const std::uint64_t* const row_cands = &candidates_[i * k_];
    for (std::size_t j = 0; j < k_; ++j) {
      if (row_votes[j] > 0.0 && std::abs(row_counters[j]) >= threshold_abs) {
        cands.push_back(row_cands[j]);
      }
    }
  }
  std::sort(cands.begin(), cands.end());
  cands.erase(std::unique(cands.begin(), cands.end()), cands.end());
  if (candidates_swept != nullptr) *candidates_swept = cands.size();

  std::vector<RecoveredHeavyKey> out;
  out.reserve(cands.size());
  for (const std::uint64_t key : cands) {
    const double est = estimate_with(key, per_bucket, denom);
    if (std::abs(est) >= threshold_abs) {
      out.push_back(RecoveredHeavyKey{key, est});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const RecoveredHeavyKey& a, const RecoveredHeavyKey& b) {
              const double aa = std::abs(a.value);
              const double bb = std::abs(b.value);
              if (aa != bb) return aa > bb;
              return a.key < b.key;
            });
  return out;
}

template class BasicMvSketch<hash::TabulationHashFamily>;
template class BasicMvSketch<hash::CwHashFamily>;

}  // namespace scd::sketch
