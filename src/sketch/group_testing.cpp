#include "sketch/group_testing.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "sketch/median.h"

namespace scd::sketch {

GroupTestingSketch::GroupTestingSketch(FamilyPtr family, std::size_t k)
    : family_(std::move(family)), k_(k) {
  if (family_ == nullptr) {
    throw std::invalid_argument("GroupTestingSketch: null hash family");
  }
  if (!hash::valid_bucket_count(k_) || k_ < 2) {
    throw std::invalid_argument(
        "GroupTestingSketch: k must be a power of two in [2, 65536]");
  }
  if (family_->rows() < 1 || family_->rows() > kMaxRows) {
    throw std::invalid_argument("GroupTestingSketch: rows must be in [1, 32]");
  }
  cells_.assign(family_->rows() * k_ * kCellStride, 0.0);
}

void GroupTestingSketch::update(std::uint64_t key, double u) noexcept {
  assert((key >> kKeyBits) == 0 &&
         "key exceeds the group-testing bit counters; 64-bit key kinds are "
         "not supported by this family");
  const auto key32 = static_cast<std::uint32_t>(key);
  const std::uint64_t mask = k_ - 1;
  for (std::size_t row = 0; row < depth(); ++row) {
    const std::size_t bucket = family_->hash16(row, key32) & mask;
    double* cell = &cells_[cell_index(row, bucket)];
    cell[0] += u;
    std::uint32_t bits = key32;
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(bits));
      cell[1 + b] += u;
      bits &= bits - 1;
    }
  }
}

void GroupTestingSketch::update_batch(
    std::span<const Record> records) noexcept {
  for (const Record& r : records) update(r.key, r.update);
}

double GroupTestingSketch::sum() const noexcept { return row_sum(0); }

double GroupTestingSketch::row_sum(std::size_t row) const noexcept {
  double sum = 0.0;
  for (std::size_t bucket = 0; bucket < k_; ++bucket) {
    sum += cells_[cell_index(row, bucket)];
  }
  return sum;
}

double GroupTestingSketch::estimate_with(
    std::uint64_t key, std::span<const double> row_sums) const noexcept {
  const std::uint64_t mask = k_ - 1;
  const auto kd = static_cast<double>(k_);
  std::array<double, kMaxRows> est;
  for (std::size_t row = 0; row < depth(); ++row) {
    const std::size_t bucket = family_->hash16(row, key) & mask;
    const double total = cells_[cell_index(row, bucket)];
    est[row] = (total - row_sums[row] / kd) / (1.0 - 1.0 / kd);
  }
  return median_inplace(std::span<double>(est.data(), depth()));
}

double GroupTestingSketch::estimate(std::uint64_t key) const noexcept {
  std::array<double, kMaxRows> sums;
  for (std::size_t row = 0; row < depth(); ++row) sums[row] = row_sum(row);
  return estimate_with(key, std::span<const double>(sums.data(), depth()));
}

void GroupTestingSketch::estimate_rows(std::uint64_t key,
                                       std::span<double> raw_buckets,
                                       std::span<double> row_estimates) const {
  const std::size_t h = depth();
  if (raw_buckets.size() != h || row_estimates.size() != h) {
    throw std::invalid_argument("estimate_rows: spans must have length h");
  }
  const std::uint64_t mask = k_ - 1;
  const auto kd = static_cast<double>(k_);
  for (std::size_t row = 0; row < h; ++row) {
    const std::size_t bucket = family_->hash16(row, key) & mask;
    const double total = cells_[cell_index(row, bucket)];
    raw_buckets[row] = total;
    row_estimates[row] = (total - row_sum(row) / kd) / (1.0 - 1.0 / kd);
  }
}

double GroupTestingSketch::estimate_f2() const noexcept {
  const auto kd = static_cast<double>(k_);
  std::array<double, kMaxRows> est;
  for (std::size_t row = 0; row < depth(); ++row) {
    double sq = 0.0;
    for (std::size_t bucket = 0; bucket < k_; ++bucket) {
      const double total = cells_[cell_index(row, bucket)];
      sq += total * total;
    }
    const double sum = row_sum(row);
    est[row] = (kd * sq - sum * sum) / (kd - 1.0);
  }
  return median_inplace(std::span<double>(est.data(), depth()));
}

double GroupTestingSketch::estimate_l2() const noexcept {
  return std::sqrt(std::max(estimate_f2(), 0.0));
}

std::vector<RecoveredHeavyKey> GroupTestingSketch::recover_heavy_keys(
    double threshold_abs, std::size_t* candidates_swept) const {
  const std::uint64_t mask = k_ - 1;
  std::unordered_set<std::uint32_t> candidates;
  for (std::size_t row = 0; row < depth(); ++row) {
    for (std::size_t bucket = 0; bucket < k_; ++bucket) {
      const double* cell = &cells_[cell_index(row, bucket)];
      const double total = cell[0];
      if (std::abs(total) < threshold_abs) continue;
      // Read the dominating key's bits out of the bit counters.
      std::uint32_t key = 0;
      for (unsigned b = 0; b < kKeyBits; ++b) {
        if (std::abs(cell[1 + b]) > std::abs(total) / 2.0) key |= 1u << b;
      }
      // The candidate must actually hash into this bucket in this row;
      // bit-read corruption from colliding keys fails this test.
      if ((family_->hash16(row, key) & mask) == bucket) candidates.insert(key);
    }
  }
  if (candidates_swept != nullptr) *candidates_swept = candidates.size();
  std::array<double, kMaxRows> sums;
  for (std::size_t row = 0; row < depth(); ++row) sums[row] = row_sum(row);
  const std::span<const double> sums_span(sums.data(), depth());
  std::vector<RecoveredHeavyKey> recovered;
  recovered.reserve(candidates.size());
  for (const std::uint32_t key : candidates) {
    const double value = estimate_with(key, sums_span);
    if (std::abs(value) >= threshold_abs) {
      recovered.push_back(RecoveredHeavyKey{key, value});
    }
  }
  std::sort(recovered.begin(), recovered.end(),
            [](const RecoveredHeavyKey& a, const RecoveredHeavyKey& b) {
              const double aa = std::abs(a.value);
              const double bb = std::abs(b.value);
              if (aa != bb) return aa > bb;
              return a.key < b.key;
            });
  return recovered;
}

std::vector<RecoveredKey> GroupTestingSketch::recover(
    double threshold_abs) const {
  const std::vector<RecoveredHeavyKey> wide = recover_heavy_keys(threshold_abs);
  std::vector<RecoveredKey> out;
  out.reserve(wide.size());
  for (const RecoveredHeavyKey& r : wide) {
    out.push_back(RecoveredKey{static_cast<std::uint32_t>(r.key), r.value});
  }
  return out;
}

void GroupTestingSketch::set_zero() noexcept {
  std::fill(cells_.begin(), cells_.end(), 0.0);
}

void GroupTestingSketch::scale(double c) noexcept {
  for (double& v : cells_) v *= c;
}

void GroupTestingSketch::add_scaled(const GroupTestingSketch& other,
                                    double c) {
  if (!compatible(other)) {
    throw std::invalid_argument(
        "GroupTestingSketch::add_scaled: incompatible sketches (family or "
        "width mismatch)");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += c * other.cells_[i];
  }
}

GroupTestingSketch GroupTestingSketch::combine(
    std::span<const double> coeffs,
    std::span<const GroupTestingSketch* const> sketches) {
  if (sketches.empty() || coeffs.size() != sketches.size()) {
    throw std::invalid_argument(
        "GroupTestingSketch::combine: need one coefficient per sketch and at "
        "least one sketch");
  }
  GroupTestingSketch out(sketches.front()->family_, sketches.front()->k_);
  for (std::size_t l = 0; l < sketches.size(); ++l) {
    out.add_scaled(*sketches[l], coeffs[l]);
  }
  return out;
}

void GroupTestingSketch::load_registers(std::span<const double> values) {
  if (values.size() != cells_.size()) {
    throw std::invalid_argument(
        "GroupTestingSketch::load_registers: span size does not match the "
        "cell table");
  }
  std::copy(values.begin(), values.end(), cells_.begin());
}

}  // namespace scd::sketch
