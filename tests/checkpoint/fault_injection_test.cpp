// Crash-safety under injected storage faults: partial writes, torn renames
// and silent bit rot (fault_injection.h). The invariants under test are the
// writer's headline claims — a failed write never destroys older
// checkpoints, a torn or rotten file is never loaded, and every failure
// path is a typed CheckpointError.
//
// The injector's event log is dumped to fault-injection.log in the test's
// working directory; CI uploads it as an artifact when this suite fails.
#include "checkpoint/fault_injection.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "core/pipeline.h"

namespace scd::checkpoint {
namespace {

core::PipelineConfig fault_config() {
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 3;
  config.k = 64;
  config.model.kind = forecast::ModelKind::kEwma;
  config.metrics = false;
  return config;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

/// Drives a checkpointed run whose file ops go through `injector`; returns
/// the checkpoint directory. Write failures inside the interval-close
/// callback are swallowed by design (logged + counted), so the stream
/// itself always completes.
std::filesystem::path run_with_injector(const std::string& name,
                                        ScdFaultInjector& injector) {
  const auto dir = fresh_dir(name);
  const core::PipelineConfig config = fault_config();
  core::ChangeDetectionPipeline pipeline(config);
  CheckpointWriterOptions options;
  options.directory = dir;
  options.keep = 10;
  options.metrics = false;
  options.file_ops = &injector;
  CheckpointWriter writer(options, config);
  writer.attach(pipeline);
  for (double t = 1.0; t < 65.0; t += 10.0) {
    for (std::uint64_t key = 0; key < 20; ++key) {
      pipeline.add(key, 300.0, t);
    }
  }
  pipeline.flush();
  injector.dump_log("fault-injection.log");
  return dir;
}

ScdFaultInjector::Plan partial_write_plan(std::size_t bytes,
                                          std::size_t arm_after) {
  ScdFaultInjector::Plan plan;
  plan.fail_after_bytes = bytes;
  plan.arm_after_ops = arm_after;
  return plan;
}

TEST(FaultInjection, PartialWriteLeavesOlderCheckpointsLoadable) {
  // Two good checkpoints, then every write dies after 10 bytes.
  ScdFaultInjector injector(partial_write_plan(10, 2));
  const auto dir = run_with_injector("fault_partial", injector);

  // The failed writes must not have produced .scdc files, and no temp
  // residue may survive the cleanup path.
  const auto files = list_checkpoints(dir);
  ASSERT_EQ(files.size(), 2u);
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_NE(entry.path().extension(), ".tmp") << entry.path();
  }

  core::ChangeDetectionPipeline pipeline(fault_config());
  const RecoverResult result = recover(dir, pipeline);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_EQ(result.path, files[0]);
}

TEST(FaultInjection, TornRenameIsSkippedAtRecovery) {
  // One good checkpoint, then the next rename tears at 20 bytes.
  ScdFaultInjector::Plan plan;
  plan.torn_rename_bytes = 20;
  plan.arm_after_ops = 1;
  ScdFaultInjector injector(plan);
  const auto dir = run_with_injector("fault_torn", injector);

  // The torn destination looks like a checkpoint file but is garbage;
  // recovery must skip it and land on the good one.
  core::ChangeDetectionPipeline pipeline(fault_config());
  const RecoverResult result = recover(dir, pipeline);
  EXPECT_TRUE(result.restored);
  EXPECT_GE(result.skipped, 1u);
  EXPECT_EQ(result.path.filename().string(),
            checkpoint_filename(1));  // the pre-fault checkpoint
}

TEST(FaultInjection, SilentBitRotIsCaughtByCrc) {
  // The second checkpoint completes "successfully" but one payload bit rots.
  ScdFaultInjector::Plan plan;
  plan.flip_bit = (kCheckpointHeaderBytes + 9) * 8 + 3;
  plan.arm_after_ops = 1;
  ScdFaultInjector injector(plan);
  const auto dir = run_with_injector("fault_rot", injector);

  core::ChangeDetectionPipeline pipeline(fault_config());
  const RecoverResult result = recover(dir, pipeline);
  EXPECT_TRUE(result.restored);
  EXPECT_GE(result.skipped, 1u);
}

TEST(FaultInjection, WriteFailureIsTypedWhenCalledDirectly) {
  ScdFaultInjector injector(partial_write_plan(0, 0));
  const auto dir = fresh_dir("fault_typed");
  const core::PipelineConfig config = fault_config();
  CheckpointWriterOptions options;
  options.directory = dir;
  options.metrics = false;
  options.file_ops = &injector;
  CheckpointWriter writer(options, config);
  try {
    writer.write(PayloadKind::kSerial, 1, {1, 2, 3});
    FAIL() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(e.checkpoint_kind(), CheckpointErrorKind::kWriteFailed);
    EXPECT_EQ(e.kind(), sketch::SerializeErrorKind::kWriteFailed);
  }
  EXPECT_TRUE(list_checkpoints(dir).empty());
}

TEST(FaultInjection, EventLogRecordsFaults) {
  ScdFaultInjector injector(partial_write_plan(5, 1));
  (void)run_with_injector("fault_log", injector);
  bool saw_fault = false;
  for (const std::string& event : injector.events()) {
    if (event.find("FAULT partial-write") != std::string::npos) {
      saw_fault = true;
    }
  }
  EXPECT_TRUE(saw_fault);
  EXPECT_TRUE(std::filesystem::exists("fault-injection.log"));
}

}  // namespace
}  // namespace scd::checkpoint
