// Extension (§3.3, option 4 + docs/KEY_RECOVERY.md): recovering changed
// keys directly from the sketch instead of replaying a key stream. Compares
// the three --recovery modes on the small router at 300 s / EWMA:
//   * replay        — the paper's two-pass baseline: plain k-ary sketch,
//                     collect the interval's distinct keys, then ESTIMATE
//                     each against the error sketch (pass 2),
//   * group-testing — per-bit counters, keys read from the cells (33x
//                     memory, the paper's predicted drawback),
//   * invertible    — majority-vote candidate per bucket (3x memory),
//                     single pass, recover_heavy_keys on the error sketch.
// Reports recall/precision of each single-pass mode against the replay
// baseline's flagged set (same seed, same (H, K), same threshold rule — the
// counters are identical, so the baseline is exactly what the recovery
// sweep is trying to reproduce without the second pass), recall against the
// exact per-flow truth as context, memory, and wall time (update + recover).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "core/sketch_binding.h"
#include "detect/detection.h"
#include "eval/trace_cache.h"
#include "forecast/runner.h"
#include "sketch/group_testing.h"
#include "sketch/kary_sketch.h"
#include "sketch/mv_sketch.h"
#include "support/bench_util.h"
#include "support/experiments.h"
#include "traffic/key_extract.h"
#include "traffic/router_profiles.h"

namespace {

// All three modes key on kDstIp; the hand-picked sketch types must cover
// that key domain (core/sketch_binding.h).
static_assert(scd::core::kSketchCoversKeyKind<scd::sketch::KarySketch,
                                              scd::traffic::KeyKind::kDstIp>);
static_assert(scd::core::kSketchCoversKeyKind<scd::sketch::MvSketch,
                                              scd::traffic::KeyKind::kDstIp>);
static_assert(
    scd::core::kSketchCoversKeyKind<scd::sketch::GroupTestingSketch,
                                    scd::traffic::KeyKind::kDstIp>);

constexpr std::size_t kH = 5;
constexpr std::size_t kK = 4096;
constexpr std::uint64_t kSeed = 0x6007e57;
constexpr double kThresholdFrac = 0.10;

/// One mode's accumulated run: wall time split into the streaming pass and
/// the key-identification step, plus per-interval recovered/flagged sets.
struct ModeRun {
  double update_s = 0.0;
  double recover_s = 0.0;
  std::size_t table_bytes = 0;
  // Keys identified per interval (empty set when detection did not run).
  std::vector<std::unordered_set<std::uint64_t>> keys;
  [[nodiscard]] double wall_s() const { return update_s + recover_s; }
};

struct PrecisionRecall {
  double recall = 1.0;
  double precision = 1.0;
};

/// Mean per-interval recall/precision of `got` against `want` over
/// intervals where `want` is nonempty.
PrecisionRecall score(const std::vector<std::unordered_set<std::uint64_t>>& got,
                      const std::vector<std::unordered_set<std::uint64_t>>& want) {
  double recall_sum = 0.0, precision_sum = 0.0;
  std::size_t evaluated = 0;
  for (std::size_t t = 0; t < want.size(); ++t) {
    if (want[t].empty()) continue;
    std::size_t hit = 0;
    for (const auto key : got[t]) {
      if (want[t].contains(key)) ++hit;
    }
    recall_sum +=
        static_cast<double>(hit) / static_cast<double>(want[t].size());
    precision_sum += got[t].empty() ? 1.0
                                    : static_cast<double>(hit) /
                                          static_cast<double>(got[t].size());
    ++evaluated;
  }
  if (evaluated == 0) return {};
  return {recall_sum / static_cast<double>(evaluated),
          precision_sum / static_cast<double>(evaluated)};
}

}  // namespace

int main() {
  using namespace scd;
  bench::print_header(
      "Extension: single-pass changed-key recovery",
      "replay vs group-testing vs invertible (small router, 300s, EWMA)",
      "an invertible sketch recovers the replayed changer set in one pass, "
      "cheaper in wall time than two-pass replay; group testing pays 33x "
      "memory");

  const double interval = 300.0;
  const auto& stream = bench::stream_for("small", interval);
  const auto model =
      bench::cached_grid_model("small", interval, forecast::ModelKind::kEwma);
  const std::size_t warmup = bench::warmup_intervals(interval);
  const auto& truth = bench::truth_for(stream, model);
  const std::size_t intervals = stream.num_intervals();

  // Raw per-interval record stream, bucketed exactly like IntervalizedStream
  // (absolute interval alignment). The wall-time comparison must see the
  // real update volume — many records per key — because two-pass replay's
  // key-collection cost and the invertible sketch's vote cost both scale
  // with records, and the aggregated view would hide the former.
  std::vector<std::vector<sketch::Record>> raw(intervals);
  {
    const auto& trace = eval::cached_trace(traffic::router_by_name("small"));
    const double start =
        std::floor(traffic::record_time_s(trace.front()) / interval) *
        interval;
    for (const auto& r : trace) {
      const auto t = static_cast<std::size_t>(
          (traffic::record_time_s(r) - start) / interval);
      if (t >= intervals) break;
      raw[t].push_back(
          {traffic::extract_key(r, traffic::KeyKind::kDstIp),
           traffic::extract_update(r, traffic::UpdateKind::kBytes)});
    }
  }

  // ---- replay baseline: two passes over each interval's distinct keys ----
  ModeRun replay;
  replay.keys.resize(intervals);
  {
    const auto family =
        std::make_shared<const hash::TabulationHashFamily>(kSeed, kH);
    const sketch::KarySketch prototype(family, kK);
    replay.table_bytes = prototype.table_bytes();
    forecast::ForecastRunner<sketch::KarySketch> runner(model, prototype);
    for (std::size_t t = 0; t < intervals; ++t) {
      sketch::KarySketch observed = prototype;
      std::unordered_set<std::uint64_t> interval_keys;
      common::Stopwatch sw;
      for (const auto& u : raw[t]) {
        observed.update(u.key, u.update);
        interval_keys.insert(u.key);  // pass-1 distinct-key collection
      }
      replay.update_s += sw.seconds();
      const auto step = runner.step(observed);
      if (!step.has_value() || t < warmup) continue;
      const double l2 = std::sqrt(std::max(step->error.estimate_f2(), 0.0));
      const double threshold = kThresholdFrac * l2;
      sw.reset();
      for (const auto key : interval_keys) {  // pass 2: replay ESTIMATE
        if (std::abs(step->error.estimate(key)) >= threshold) {
          replay.keys[t].insert(key);
        }
      }
      replay.recover_s += sw.seconds();
    }
  }

  // ---- invertible (majority-vote) sketch: single pass + bucket sweep ----
  ModeRun mv;
  mv.keys.resize(intervals);
  {
    const auto family =
        std::make_shared<const hash::TabulationHashFamily>(kSeed, kH);
    const sketch::MvSketch prototype(family, kK);
    mv.table_bytes = prototype.table_bytes();
    forecast::ForecastRunner<sketch::MvSketch> runner(model, prototype);
    for (std::size_t t = 0; t < intervals; ++t) {
      sketch::MvSketch observed = prototype;
      common::Stopwatch sw;
      for (const auto& u : raw[t]) observed.update(u.key, u.update);
      mv.update_s += sw.seconds();
      const auto step = runner.step(observed);
      if (!step.has_value() || t < warmup) continue;
      const double l2 = std::sqrt(std::max(step->error.estimate_f2(), 0.0));
      sw.reset();
      const auto recovered =
          step->error.recover_heavy_keys(kThresholdFrac * l2);
      mv.recover_s += sw.seconds();
      for (const auto& r : recovered) mv.keys[t].insert(r.key);
    }
  }

  // ---- group-testing sketch: single pass + per-bit readout ----
  ModeRun group;
  group.keys.resize(intervals);
  {
    const auto family =
        std::make_shared<const hash::TabulationHashFamily>(kSeed, kH);
    const sketch::GroupTestingSketch prototype(family, kK);
    group.table_bytes = prototype.table_bytes();
    forecast::ForecastRunner<sketch::GroupTestingSketch> runner(model,
                                                               prototype);
    for (std::size_t t = 0; t < intervals; ++t) {
      sketch::GroupTestingSketch observed = prototype;
      common::Stopwatch sw;
      for (const auto& u : raw[t]) observed.update(u.key, u.update);
      group.update_s += sw.seconds();
      const auto step = runner.step(observed);
      if (!step.has_value() || t < warmup) continue;
      const double l2 = std::sqrt(std::max(step->error.estimate_f2(), 0.0));
      sw.reset();
      const auto recovered =
          step->error.recover_heavy_keys(kThresholdFrac * l2);
      group.recover_s += sw.seconds();
      for (const auto& r : recovered) group.keys[t].insert(r.key);
    }
  }

  // ---- exact per-flow truth (context, not the gating baseline) ----
  std::vector<std::unordered_set<std::uint64_t>> pf_flagged(intervals);
  for (std::size_t t = warmup; t < intervals; ++t) {
    if (!truth.intervals[t].ready) continue;
    const double pf_l2 = std::sqrt(std::max(truth.intervals[t].f2, 0.0));
    for (const auto& e : detect::above_threshold(truth.intervals[t].ranked,
                                                 kThresholdFrac, pf_l2)) {
      pf_flagged[t].insert(e.key);
    }
  }

  const PrecisionRecall mv_vs_replay = score(mv.keys, replay.keys);
  const PrecisionRecall gt_vs_replay = score(group.keys, replay.keys);
  const PrecisionRecall replay_vs_truth = score(replay.keys, pf_flagged);
  const PrecisionRecall mv_vs_truth = score(mv.keys, pf_flagged);
  const PrecisionRecall gt_vs_truth = score(group.keys, pf_flagged);

  std::printf(
      "mode           wall(ms)  update(ms)  recover(ms)  memory(KiB)\n");
  const auto row = [](const char* name, const ModeRun& run) {
    std::printf("%-14s %8.1f  %10.1f  %11.1f  %11.1f\n", name,
                run.wall_s() * 1e3, run.update_s * 1e3, run.recover_s * 1e3,
                static_cast<double>(run.table_bytes) / 1024.0);
  };
  row("replay", replay);
  row("invertible", mv);
  row("group-testing", group);
  std::printf("vs replay baseline:  invertible recall=%.3f precision=%.3f | "
              "group-testing recall=%.3f precision=%.3f\n",
              mv_vs_replay.recall, mv_vs_replay.precision, gt_vs_replay.recall,
              gt_vs_replay.precision);
  std::printf("vs per-flow truth:   replay recall=%.3f | invertible "
              "recall=%.3f | group-testing recall=%.3f\n",
              replay_vs_truth.recall, mv_vs_truth.recall, gt_vs_truth.recall);

  bench::check(mv_vs_replay.recall >= 0.95 && mv_vs_replay.precision >= 0.9,
               "invertible recovery reproduces the two-pass changer set "
               "(recall >= 0.95 at precision >= 0.9)",
               common::str_format("recall=%.3f precision=%.3f",
                                  mv_vs_replay.recall,
                                  mv_vs_replay.precision));
  bench::check(mv.wall_s() < replay.wall_s(),
               "single-pass invertible recovery is cheaper in wall time than "
               "two-pass replay",
               common::str_format("%.1f ms vs %.1f ms", mv.wall_s() * 1e3,
                                  replay.wall_s() * 1e3));
  bench::check(gt_vs_replay.recall > 0.6,
               "group-testing recovery finds most replayed changers",
               common::str_format("recall=%.3f", gt_vs_replay.recall));
  bench::check(static_cast<double>(group.table_bytes) /
                       static_cast<double>(replay.table_bytes) >
                   10.0,
               "group testing pays the paper's predicted memory multiple",
               common::str_format(
                   "%.0fx vs k-ary (invertible pays %.0fx)",
                   static_cast<double>(group.table_bytes) /
                       static_cast<double>(replay.table_bytes),
                   static_cast<double>(mv.table_bytes) /
                       static_cast<double>(replay.table_bytes)));
  return bench::finish();
}
