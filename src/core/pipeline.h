// ChangeDetectionPipeline — the library's public entry point.
//
// Wires together the three modules of §2.2 over a live record stream:
//   sketch module      -> observed sketch S_o(t) per interval
//   forecasting module -> forecast sketch S_f(t) and error sketch S_e(t)
//   change detection   -> alarms for keys with |error| >= T * sqrt(F2(S_e))
//
// Key replay (the "where do keys come from" problem of §3.3) supports:
//   * kCurrentInterval — remember the interval's distinct keys and replay
//     them when the interval closes (the paper's brute-force/two-pass
//     behaviour, exact but keeps per-interval key state);
//   * kNextInterval — detect changes of interval t using the keys that
//     arrive during interval t+1 (the paper's online alternative: misses
//     only keys that never return, "often acceptable for DoS detection").
// Both modes honor key_sample_rate (§6's sampling extension).
//
// Optional online re-fitting (§6 "online change detection"): every
// refit_every intervals the model parameters are re-estimated by grid
// search over the last refit_window observed sketches.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "detect/alarm.h"
#include "detect/provenance.h"
#include "forecast/model_config.h"
#include "traffic/flow_record.h"
#include "traffic/key_extract.h"

namespace scd::core {

enum class KeyReplayMode {
  kCurrentInterval,
  kNextInterval,
};

/// How alarms are selected from the ranked forecast errors (§6: "the
/// technique can be asked to only report the top N major changes, or the
/// changes that are above a threshold").
enum class DetectionCriterion {
  kThreshold,  // |error| >= threshold * ||S_e||  (paper default)
  kTopN,       // the max_alarms_per_interval largest |error| keys
};

/// Which L2 norm anchors the threshold. kCurrentF2 is the paper's T_A.
/// kSmoothedF2 uses an EWMA of *past* intervals' F2 instead, so a massive
/// change cannot inflate its own threshold and mask itself.
enum class ThresholdBaseline {
  kCurrentF2,
  kSmoothedF2,
};

/// How the keys behind an aggregate change are identified (ROADMAP open
/// item 2; docs/KEY_RECOVERY.md):
///   * kReplay — the paper's §3.3 key replay: remember the interval's keys
///     and run each through ESTIMATE at close (exact ranking, but a second
///     pass plus O(distinct keys) state per interval);
///   * kGroupTesting — read keys out of the per-bit counters of the
///     group-testing sketch (no key state; 33x memory/UPDATE cost);
///   * kInvertible — read keys out of the majority-vote invertible sketch
///     (no key state; 3x memory, single-pass).
/// In the sketch-recovery modes the pipeline keeps no key set at all:
/// changed keys are recovered directly from the forecast-error sketch
/// S_e(t), so KeyReplayMode and key_sample_rate do not apply.
enum class RecoveryMode {
  kReplay,
  kGroupTesting,
  kInvertible,
};

struct PipelineConfig {
  double interval_s = 300.0;             // paper's default tradeoff (§4.2)
  std::size_t h = 5;                     // hash functions
  std::size_t k = 32768;                 // buckets per row
  std::uint64_t seed = 0x5eedc0de;       // hash-family seed
  traffic::KeyKind key_kind = traffic::KeyKind::kDstIp;
  traffic::UpdateKind update_kind = traffic::UpdateKind::kBytes;
  forecast::ModelConfig model{};         // defaults to EWMA(0.5)
  double threshold = 0.05;               // T in T_A = T * sqrt(ESTIMATEF2)
  DetectionCriterion criterion = DetectionCriterion::kThreshold;
  ThresholdBaseline baseline = ThresholdBaseline::kCurrentF2;
  /// EWMA weight for kSmoothedF2 (history weight = 1 - this).
  double baseline_alpha = 0.3;
  KeyReplayMode replay = KeyReplayMode::kCurrentInterval;
  double key_sample_rate = 1.0;          // fraction of keys replayed
  /// Key-identification strategy. The sketch-recovery modes require the
  /// defaults for the replay knobs they make meaningless (kCurrentInterval,
  /// key_sample_rate 1.0 — validate() rejects anything else) and
  /// kGroupTesting additionally requires a 32-bit key kind.
  RecoveryMode recovery = RecoveryMode::kReplay;
  /// §6 boundary-effect mitigation: draw each interval's length from an
  /// exponential distribution with mean interval_s (clamped to
  /// [0.25, 4] * interval_s) and normalize the observed sketch by the
  /// actual length before forecasting — possible because sketches are
  /// linear. Changes that would straddle a fixed boundary land in randomly
  /// different intervals instead of being systematically split.
  bool randomize_intervals = false;
  std::size_t max_alarms_per_interval = 1000;  // report cap (top-N style)
  /// §6 false-positive reduction: only report a key after it exceeds the
  /// threshold in this many consecutive detections (1 = no hysteresis).
  /// State kept is O(keys currently above threshold).
  std::size_t min_consecutive = 1;
  std::size_t refit_every = 0;           // 0 = no online re-fitting
  std::size_t refit_window = 24;         // history intervals for re-fitting
  /// Feed the process-wide observability instruments (src/obs): per-stage
  /// latency histograms, counters, and gauges. The per-record cost is one
  /// sampled (1/64) stopwatch read — counters are batched and flushed to
  /// the shared registry at interval close, so the registry's records
  /// counter advances at interval granularity. Set to false for
  /// micro-benchmarks that must not touch shared state.
  bool metrics = true;

  /// Throws std::invalid_argument when out of range (bad K, sample rate...).
  void validate() const;
};

/// FNV-1a over every state-determining config field (metrics excluded —
/// observability never alters state). Stamped into checkpoints so a restore
/// with a drifted config is refused, and into alarm-provenance records and
/// flight-recorder dumps so evidence is traceable to the exact configuration
/// that produced it.
[[nodiscard]] std::uint64_t config_fingerprint(
    const PipelineConfig& config) noexcept;

/// Wall-clock breakdown of one interval close, in seconds. forecast_s,
/// estimate_f2_s and key_replay_s are sub-spans of close_s; in kNextInterval
/// replay mode the detection spans are measured when the deferred detection
/// actually runs (one interval later).
struct StageTimings {
  double close_s = 0.0;        // whole close_interval (excl. deferred parts)
  double forecast_s = 0.0;     // forecasting-module step (S_f, S_e)
  double estimate_f2_s = 0.0;  // ESTIMATEF2(S_e) + threshold computation
  double key_replay_s = 0.0;   // per-key ESTIMATE + ranking + hysteresis
};

/// Lifetime counters for capacity planning and monitoring.
struct PipelineStats {
  std::uint64_t records = 0;        // items fed
  std::size_t intervals_closed = 0;
  std::size_t alarms = 0;
  std::size_t refits = 0;           // online re-fits performed
  std::size_t sketch_bytes = 0;     // register memory of one sketch (H*K*8)
  std::uint64_t keys_replayed = 0;  // candidate keys run through ESTIMATE
  /// Sketch-recovery modes only: candidate keys swept out of the error
  /// sketch's buckets (pre-verification) and keys that survived the median
  /// verification. keys_replayed stays 0 in these modes — that zero is the
  /// "no replay pass" evidence the online monitor prints.
  std::uint64_t recovery_candidates = 0;
  std::uint64_t keys_recovered = 0;
  std::uint64_t hysteresis_suppressed = 0;  // withheld by min_consecutive
  /// Records whose timestamp regressed below the stream's high-water mark.
  /// Such records are clamped into the open interval (never mis-binned into
  /// a past one) and counted here rather than rejected — one late NetFlow
  /// export must not abort a live feed.
  std::uint64_t out_of_order_records = 0;

  // Cumulative stage budget (seconds). update_seconds covers only the
  // sampled (1 in 64) add() calls that were timed; scale by
  // records / update_samples for a whole-stream estimate.
  double update_seconds = 0.0;
  std::uint64_t update_samples = 0;
  double close_seconds = 0.0;
  double forecast_seconds = 0.0;
  double estimate_f2_seconds = 0.0;
  double key_replay_seconds = 0.0;
  double refit_seconds = 0.0;
};

/// One pre-aggregated interval produced by an external ingestion front-end
/// (src/ingest): the COMBINE-merged register table of the observed sketch,
/// the distinct keys seen, and the record count. The registers must come
/// from sketches built with the pipeline's (seed, h, k) — the same hash
/// family parameters — or every downstream ESTIMATE is garbage.
struct IntervalBatch {
  double start_s = 0.0;
  double len_s = 0.0;
  std::uint64_t records = 0;
  /// Row-major register table. h x k for the replay/invertible modes'
  /// counter table; h x k x 33 cell table for kGroupTesting.
  std::vector<double> registers;
  std::vector<std::uint64_t> keys;  // distinct keys (shard-concatenated)
  /// kInvertible only: the merged sketch's per-bucket majority-vote state
  /// (h x k each). Empty in every other mode.
  std::vector<std::uint64_t> mv_candidates;
  std::vector<double> mv_votes;
};

/// Where a pipeline sits in its input stream. After a restore this tells the
/// feeding layer which records the snapshot already accounts for: skip
/// everything with time < next_interval_start_s and resume feeding from
/// there — the replayed stream then produces reports bit-identical to an
/// uninterrupted run.
struct StreamPosition {
  bool started = false;
  /// Index of the interval that will close next (0-based).
  std::size_t interval_index = 0;
  /// Start time of the first interval the snapshot does NOT cover.
  double next_interval_start_s = 0.0;
  /// Largest record timestamp seen (out-of-order high-water mark).
  double high_water_s = 0.0;
};

/// Everything the pipeline learned about one closed interval.
struct IntervalReport {
  std::size_t index = 0;
  double start_s = 0.0;
  double end_s = 0.0;
  std::uint64_t records = 0;
  /// False during model warm-up (no forecast existed for this interval).
  bool detection_ran = false;
  std::size_t keys_checked = 0;
  double estimated_error_f2 = 0.0;  // ESTIMATEF2(S_e(t))
  double alarm_threshold = 0.0;     // T_A
  std::vector<detect::Alarm> alarms;  // sorted by |error| descending
  StageTimings timings;             // where this interval's time went
};

class ChangeDetectionPipeline {
 public:
  explicit ChangeDetectionPipeline(PipelineConfig config);
  ~ChangeDetectionPipeline();
  ChangeDetectionPipeline(ChangeDetectionPipeline&&) noexcept;
  ChangeDetectionPipeline& operator=(ChangeDetectionPipeline&&) noexcept;

  /// Feeds one flow record (key/update extracted per config). Records should
  /// arrive in nondecreasing time order; a record whose timestamp regresses
  /// is clamped to the open interval's start and counted in
  /// PipelineStats::out_of_order_records instead of being rejected or
  /// silently mis-binned.
  void add_record(const traffic::FlowRecord& record);

  /// Feeds one raw (key, update) item at an absolute time — the Turnstile
  /// interface for non-NetFlow sources. Same time-order contract as
  /// add_record.
  void add(std::uint64_t key, double update, double time_s);

  /// Feeds one pre-aggregated interval (a sharded front-end's COMBINE merge,
  /// see src/ingest) and closes it immediately: the forecast/detect stages
  /// run exactly as if the batch's records had been add()ed one by one.
  /// Throws std::invalid_argument when the register table does not match the
  /// configured h*k, when len_s is not positive, when batches regress in
  /// time, or when an interval opened by add() is still in progress —
  /// mixing the two feeds within one interval is not supported.
  void ingest_interval(IntervalBatch&& batch);

  /// Closes the interval in progress (and, in kNextInterval mode, emits the
  /// final pending detection). Call once at end of stream.
  void flush();

  /// Reports for all closed intervals so far.
  [[nodiscard]] const std::vector<IntervalReport>& reports() const noexcept;

  /// Invoked synchronously as each interval report is produced.
  void set_report_callback(std::function<void(const IntervalReport&)> callback);

  /// Invoked synchronously with one provenance record per alarm, carrying
  /// the full evidence chain (observed/forecast/error estimates, per-row
  /// bucket values, threshold, config fingerprint). Installing the callback
  /// is what turns provenance capture on — without it detection skips the
  /// extra per-alarm ESTIMATE work entirely.
  void set_alarm_provenance_callback(
      std::function<void(const detect::AlarmProvenance&)> callback);

  /// Invoked at the very end of every interval close — after the report is
  /// out, the counters are advanced and any online re-fit has run — with the
  /// number of intervals closed so far. At that instant the engine is in its
  /// serial-equivalent boundary state, which is the one safe point for
  /// save_state(); checkpointing layers hook here.
  void set_interval_close_callback(std::function<void(std::size_t)> callback);

  /// Serializes the complete mutable engine state: stream position, model
  /// parameters and model state, refit history, RNG states, counters and any
  /// deferred detection. Only legal at an interval boundary (no interval in
  /// progress — i.e. from the interval-close callback, between
  /// ingest_interval calls, or before the first record); throws
  /// std::logic_error otherwise. The encoding is a versioned byte stream
  /// whose integrity is the caller's job (src/checkpoint frames it with
  /// CRCs); restore_state on a pipeline with the same config reproduces all
  /// future reports bit-identically.
  [[nodiscard]] std::vector<std::uint8_t> save_state() const;

  /// Restores a save_state() stream into this pipeline, which must have been
  /// constructed with the same configuration (sketch geometry, seed and key
  /// kinds are cross-checked). Existing reports are discarded — restore into
  /// a freshly constructed pipeline, before installing callbacks. Throws
  /// sketch::SerializeError on malformed input or config mismatch; on throw
  /// the pipeline state is unspecified and the object must be discarded.
  void restore_state(const std::vector<std::uint8_t>& bytes);

  /// Current stream position; after restore_state, tells the feeder where to
  /// resume.
  [[nodiscard]] StreamPosition position() const noexcept;

  /// Model currently in use (changes after online re-fitting).
  [[nodiscard]] const forecast::ModelConfig& active_model() const noexcept;

  /// Lifetime counters (records fed, intervals closed, alarms, re-fits,
  /// sketch memory).
  [[nodiscard]] PipelineStats stats() const noexcept;

  [[nodiscard]] const PipelineConfig& config() const noexcept;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace scd::core
