// Bounded blocking FIFO queue — the record channel of the sharded
// ingestion front-end (docs/PARALLEL_INGEST.md).
//
// Design choices:
//   * Backpressure, not drop: push() blocks while the queue is full. A
//     dropped record would silently bias every sketch register and thus
//     every ESTIMATE downstream; slowing the producer is always safer.
//   * Mutex + two condition variables rather than a lock-free ring: items
//     are whole record chunks (hundreds of records each), so the lock is
//     taken once per chunk, never per record — the lock cost is amortized
//     to well under a nanosecond per record, and the blocking semantics
//     TSan-verify trivially.
//   * close() wakes every waiter: producers fail fast, consumers drain the
//     remaining items and then observe end-of-stream (nullopt).
//
// The locking contract is machine-checked (docs/CONCURRENCY.md): mutex_
// guards items_ and closed_, every public entry point excludes it, and a
// clang -Wthread-safety build rejects any access that drops the lock.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scd::ingest {

/// Multi-producer / multi-consumer safe; the front-end uses it as MPSC
/// (the pipeline's caller thread produces, one shard worker consumes).
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks until there is space (backpressure), then moves `item` in and
  /// returns true. Returns false iff the queue was closed — including when
  /// close() arrives while this call is waiting for capacity — and in that
  /// case `item` is left UNTOUCHED so the caller can surface or count the
  /// loss. (A previous by-value signature destroyed the in-flight item on
  /// exactly that close/capacity race, losing records with no trace.)
  bool push(T& item) SCD_EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      while (items_.size() >= capacity_ && !closed_) not_full_.wait(mutex_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking variant: returns false when full or closed. Callers that
  /// fall back to push() after a failed try_push() get a backpressure count
  /// for free.
  bool try_push(T& item) SCD_EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained
  /// (then nullopt — end of stream).
  std::optional<T> pop() SCD_EXCLUDES(mutex_) {
    std::optional<T> out;
    {
      common::MutexLock lock(mutex_);
      while (items_.empty() && !closed_) not_empty_.wait(mutex_);
      if (items_.empty()) return std::nullopt;
      out.emplace(std::move(items_.front()));
      items_.pop_front();
    }
    not_full_.notify_one();
    return out;
  }

  /// Irreversible: pending pushes fail, consumers drain then see nullopt.
  void close() SCD_EXCLUDES(mutex_) {
    {
      common::MutexLock lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const SCD_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return items_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] bool closed() const SCD_EXCLUDES(mutex_) {
    common::MutexLock lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable common::Mutex mutex_;
  common::CondVar not_full_;
  common::CondVar not_empty_;
  std::deque<T> items_ SCD_GUARDED_BY(mutex_);
  bool closed_ SCD_GUARDED_BY(mutex_) = false;
};

}  // namespace scd::ingest
