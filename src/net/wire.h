// Wire protocol for the network-wide aggregation tier (docs/DISTRIBUTED.md).
//
// Every message crossing a node->aggregator connection is one length-
// prefixed, CRC-framed envelope. The header carries everything the
// aggregator needs to route and validate a contribution before touching the
// payload: the sender's node id, the interval index the payload belongs to,
// and the sender's pipeline config fingerprint (core::config_fingerprint) —
// a node built with different sketch geometry or thresholds is refused at
// the handshake, never silently COMBINEd into the global sum.
//
// Frame layout (little-endian, 56-byte header):
//   u32 magic "SCDN" | u32 version | u32 type | u32 reserved |
//   u64 node_id | u64 interval_index | u64 config_fingerprint |
//   u64 payload_len | u32 payload_crc32 | u32 header_crc32
//   payload_len bytes of payload
// header_crc32 covers the 52 bytes before it; payload_crc32 covers the
// payload. Frames arrive over TCP as an undelimited byte stream; FrameReader
// re-frames it incrementally and rejects anything malformed with a typed
// WireError, so a corrupt or hostile peer can be dropped and counted without
// ever poisoning aggregator state.
//
// The kIntervalData payload reuses the sketch export packet
// (sketch::sketch_to_bytes) verbatim: the same hardened deserialization and
// family-registry sharing that serves local collection serves the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "sketch/serialize.h"

namespace scd::net {

inline constexpr std::uint32_t kWireMagic = 0x4e444353;  // "SCDN" LE
inline constexpr std::uint32_t kWireVersion = 1;
/// Fixed envelope header size in bytes (see frame layout above).
inline constexpr std::size_t kFrameHeaderBytes = 56;
/// Default ceiling on a single frame's payload. A length-prefixed protocol
/// must bound the prefix before allocating: an H=25, K=65536 sketch packet
/// plus a million keys is ~21 MB, so 64 MiB leaves generous headroom while a
/// hostile 2^60 length is rejected instead of honoured.
inline constexpr std::size_t kDefaultMaxPayloadBytes = 64u << 20;

/// Message types of protocol version 1 (docs/DISTRIBUTED.md has the full
/// exchange). Node -> aggregator: kHello, kIntervalData, kBye. Aggregator ->
/// node: kHelloAck, kAck.
enum class MessageType : std::uint32_t {
  kHello = 1,         ///< handshake: node id + config fingerprint (no payload)
  kHelloAck = 2,      ///< interval_index = next interval expected of the node
  kIntervalData = 3,  ///< one interval's sketch contribution (IntervalPayload)
  kAck = 4,           ///< interval_index = contribution acknowledged
  kBye = 5,           ///< clean end-of-stream from the node (no payload)
};

/// True when `value` decodes to a known MessageType; the decoder checks
/// before the enum cast so an unknown type byte is a typed reject, not UB.
[[nodiscard]] bool message_type_known(std::uint32_t value) noexcept;
[[nodiscard]] const char* message_type_name(MessageType type) noexcept;

/// Why a frame or payload was rejected. The wire crosses trust boundaries,
/// so every reject path is typed: receivers distinguish a short read (wait
/// for more bytes) from a corrupt or hostile frame (drop the peer and count
/// it) from a local I/O failure.
enum class WireErrorKind {
  kTruncated,   ///< buffer ends inside the header or payload
  kBadMagic,    ///< leading bytes are not "SCDN"
  kBadVersion,  ///< unknown protocol version
  kBadType,     ///< type field is not a known MessageType
  kBadCrc,      ///< header or payload CRC32 mismatch
  kOversized,   ///< declared payload_len exceeds the receiver's ceiling
  kBadPayload,  ///< framing verified but the payload decode failed
  kIo,          ///< socket-level failure (connect/send/recv)
};

[[nodiscard]] const char* wire_error_kind_name(WireErrorKind kind) noexcept;

/// Thrown by every wire failure path. Derives from sketch::SerializeError
/// (the library's serialization error family) so existing catch sites handle
/// wire faults too; new code switches on wire_kind().
class WireError : public sketch::SerializeError {
 public:
  WireError(WireErrorKind kind, const std::string& message);

  [[nodiscard]] WireErrorKind wire_kind() const noexcept { return kind_; }

 private:
  WireErrorKind kind_;
};

struct FrameHeader {
  MessageType type = MessageType::kHello;
  std::uint64_t node_id = 0;
  std::uint64_t interval_index = 0;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t payload_len = 0;
};

struct Frame {
  FrameHeader header;
  std::vector<std::uint8_t> payload;
};

/// Frames a message: header (with CRCs and payload_len filled in) followed
/// by the payload bytes. `header.payload_len` is ignored and derived from
/// `payload`.
[[nodiscard]] std::vector<std::uint8_t> encode_frame(
    const FrameHeader& header, std::span<const std::uint8_t> payload);

/// Parses exactly one complete frame from `bytes`. Throws WireError on any
/// malformed input, including trailing bytes — use FrameReader for streams.
[[nodiscard]] Frame decode_frame(std::span<const std::uint8_t> bytes,
                                 std::size_t max_payload_bytes =
                                     kDefaultMaxPayloadBytes);

/// Incremental stream re-framer: feed() appends raw socket bytes, next()
/// yields complete frames in order (nullopt = need more bytes). The header
/// is validated as soon as its 56 bytes are buffered, so an oversized or
/// corrupt length prefix is rejected before any payload is accumulated.
/// After a throw the reader is poisoned: the stream's framing is lost and
/// the connection must be dropped.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_payload_bytes = kDefaultMaxPayloadBytes)
      : max_payload_bytes_(max_payload_bytes) {}

  void feed(std::span<const std::uint8_t> bytes);

  /// Next complete frame, or nullopt when the buffer holds only a partial
  /// frame. Throws WireError (kBadMagic/kBadVersion/kBadType/kBadCrc/
  /// kOversized) on malformed framing.
  [[nodiscard]] std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered_bytes() const noexcept {
    return buffer_.size() - consumed_;
  }

 private:
  std::size_t max_payload_bytes_;
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;
};

/// The kIntervalData payload: one node's contribution for one interval. The
/// sketch travels as a serialize.h export packet so the aggregator reuses
/// sketch_from_bytes (typed rejection, family-registry sharing) unchanged.
struct IntervalPayload {
  double start_s = 0.0;
  double len_s = 0.0;
  std::uint64_t records = 0;
  std::vector<std::uint8_t> sketch_packet;  // sketch::sketch_to_bytes output
  std::vector<std::uint64_t> keys;          // distinct keys the node saw
};

[[nodiscard]] std::vector<std::uint8_t> encode_interval_payload(
    const IntervalPayload& payload);

/// Decodes an encode_interval_payload buffer. Throws WireError(kBadPayload)
/// on truncation, non-finite times, non-positive len_s, or trailing bytes.
/// The embedded sketch packet is NOT parsed here — the aggregator hands it
/// to sketch_from_bytes, keeping sketch validation in one place.
[[nodiscard]] IntervalPayload decode_interval_payload(
    std::span<const std::uint8_t> bytes);

}  // namespace scd::net
