// Kernel and UPDATE throughput: the perf claims behind src/simd and
// BasicKarySketch::update_batch (docs/PERFORMANCE.md).
//
// Three measurements, all single-threaded:
//   1. dense kernels (scale/axpy/dot/sum_squares/hsum) in GB/s, the
//      runtime-dispatched implementation against the portable scalar
//      reference benched in the same process;
//   2. sketch UPDATE at H=5, K=4096 — per-record update() vs the
//      hash-batched update_batch() row sweep, in M updates/s. The batched
//      path must not regress anywhere and must show a clear win on AVX2
//      hosts (the win is hash prefetching + row locality + loop-structure
//      amortization, so most of it survives even under SCD_SIMD=scalar).
//      The attainable ratio is bounded by cache geometry, not code: both
//      paths pay the same ~2 tabulation-table cache misses per key (the
//      interleaved character tables are 4.25 MB at H=5, beyond most L2s),
//      and at K=4096 the whole register table is L2-resident, so the
//      per-record baseline is already miss-overlapped by out-of-order
//      execution. docs/PERFORMANCE.md works through the measured cost
//      model; the gate below asserts the batched win with margin rather
//      than a geometry-dependent ideal;
//   3. end-to-end ingestion records/s through ParallelPipeline (producer ->
//      shard queue -> update_batch worker -> async epoch merge), at W=1 and
//      W=4;
//   4. the zero-copy mmap trace feed (eval/trace_mmap.h) against the
//      queue-copy path (TraceReader -> ParallelPipeline W=1) on the same
//      on-disk trace.
//
// Results are also written as BENCH_THROUGHPUT.json (override the path with
// SCD_BENCH_JSON=...). SCD_BENCH_QUICK=1 shrinks every workload ~10x for CI
// smoke runs; the JSON records which mode produced it.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strutil.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "eval/trace_mmap.h"
#include "ingest/parallel_pipeline.h"
#include "traffic/flow_record.h"
#include "traffic/trace_io.h"
#include "simd/kernels.h"
// The one sanctioned exception to the simd-isolation rule: this bench's job
// is to measure the dispatched kernels AGAINST the scalar reference in one
// process, which requires naming the reference backend directly.
#include "simd/kernels_scalar.h"  // scd-lint: allow(simd-isolation)
#include "sketch/kary_sketch.h"
#include "support/bench_util.h"

namespace {

using scd::common::Stopwatch;

bool quick_mode() {
  const char* q = std::getenv("SCD_BENCH_QUICK");
  return q != nullptr && q[0] != '\0' && !(q[0] == '0' && q[1] == '\0');
}

struct Backend {
  const char* name;
  /// The instruction set actually behind the pointers: the runtime-dispatch
  /// decision for "dispatch", always "scalar" for the reference — so a row
  /// from an AVX-512 CI runner is distinguishable from an AVX2 laptop in
  /// committed JSON.
  const char* isa;
  void (*scale)(double*, std::size_t, double) noexcept;
  void (*axpy)(double*, const double*, std::size_t, double) noexcept;
  double (*dot)(const double*, const double*, std::size_t) noexcept;
  double (*sum_squares)(const double*, std::size_t) noexcept;
  double (*hsum)(const double*, std::size_t) noexcept;
};

volatile double g_sink = 0.0;

/// One kernel measurement: `iters` sweeps over an n-element buffer, best of
/// `reps` timings. Returns GB/s given the kernel's bytes moved per element.
struct KernelResult {
  std::string kernel;
  std::string backend;
  std::string isa;
  std::size_t n = 0;
  double gb_per_s = 0.0;
};

template <typename Body>
double best_seconds(int reps, Body&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const Stopwatch sw;
    body();
    best = std::min(best, sw.seconds());
  }
  return best;
}

std::vector<KernelResult> bench_kernels(const Backend& backend, bool quick) {
  // Elements processed per (kernel, n) measurement; sized for ~tens of ms
  // per timing in full mode so the single-shot quick run stays meaningful.
  const std::size_t target = quick ? 8u << 20 : 256u << 20;
  const int reps = quick ? 1 : 3;
  std::vector<KernelResult> out;
  scd::common::Rng rng(99);
  for (const std::size_t n : {std::size_t{4096}, std::size_t{65536}}) {
    const std::size_t iters = std::max<std::size_t>(1, target / n);
    std::vector<double> x(n);
    std::vector<double> y(n);
    for (double& v : x) v = rng.uniform(-1e3, 1e3);
    for (double& v : y) v = rng.uniform(-1e3, 1e3);
    const auto record = [&](const char* kernel, double bytes_per_elem,
                            double seconds) {
      const double gbs =
          bytes_per_elem * static_cast<double>(n) *
          static_cast<double>(iters) / seconds / 1e9;
      out.push_back(KernelResult{kernel, backend.name, backend.isa, n, gbs});
    };
    // scale: alternate c and 1/c so the buffer neither overflows nor decays.
    record("scale", 16.0, best_seconds(reps, [&] {
      for (std::size_t i = 0; i < iters; ++i) {
        backend.scale(y.data(), n, (i & 1) != 0 ? 1.0 / 1.0000001 : 1.0000001);
      }
    }));
    // axpy: alternate +c/-c to keep y bounded.
    record("axpy", 24.0, best_seconds(reps, [&] {
      for (std::size_t i = 0; i < iters; ++i) {
        backend.axpy(y.data(), x.data(), n, (i & 1) != 0 ? -0.5 : 0.5);
      }
    }));
    record("dot", 16.0, best_seconds(reps, [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < iters; ++i) {
        acc += backend.dot(x.data(), y.data(), n);
      }
      g_sink = acc;
    }));
    record("sum_squares", 8.0, best_seconds(reps, [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < iters; ++i) {
        acc += backend.sum_squares(x.data(), n);
      }
      g_sink = acc;
    }));
    record("hsum", 8.0, best_seconds(reps, [&] {
      double acc = 0.0;
      for (std::size_t i = 0; i < iters; ++i) {
        acc += backend.hsum(x.data(), n);
      }
      g_sink = acc;
    }));
  }
  return out;
}

double kernel_gbs(const std::vector<KernelResult>& rows, const char* kernel,
                  const char* backend, std::size_t n) {
  for (const KernelResult& r : rows) {
    if (r.kernel == kernel && r.backend == backend && r.n == n) {
      return r.gb_per_s;
    }
  }
  return 0.0;
}

}  // namespace

int main() {
  using namespace scd;
  const bool quick = quick_mode();
  bench::print_header(
      "kernel throughput",
      "SIMD kernel GB/s + batched-vs-per-record UPDATE + end-to-end ingest",
      "batched UPDATE beats per-record at H=5, K=4096 on vector hosts; "
      "dispatched kernels beat the scalar reference");

  const char* isa = simd::isa_name(simd::active_isa());
  std::printf("\ndispatch: %s (cpu avx2: %s, SCD_SIMD=%s, %s mode)\n", isa,
              simd::cpu_supports_avx2() ? "yes" : "no",
              std::getenv("SCD_SIMD") != nullptr ? std::getenv("SCD_SIMD")
                                                 : "unset",
              quick ? "quick" : "full");
  // Any vector backend (AVX2 or AVX-512) earns the vectorized gates below;
  // the thresholds were calibrated on AVX2 and AVX-512 only raises them.
  const bool vector_active = simd::active_isa() != simd::IsaLevel::kScalar;

  // --- 1. dense kernels ----------------------------------------------------
  const Backend dispatch{"dispatch", isa, &simd::scale, &simd::axpy,
                         &simd::dot, &simd::sum_squares, &simd::hsum};
  const Backend scalar{"scalar", "scalar", &simd::scalar::scale,
                       &simd::scalar::axpy, &simd::scalar::dot,
                       &simd::scalar::sum_squares, &simd::scalar::hsum};
  std::vector<KernelResult> kernels = bench_kernels(dispatch, quick);
  {
    std::vector<KernelResult> ref = bench_kernels(scalar, quick);
    kernels.insert(kernels.end(), ref.begin(), ref.end());
  }
  std::printf("\n%-12s %8s %12s %12s %9s\n", "kernel", "n", "dispatch",
              "scalar", "ratio");
  for (const char* kernel :
       {"scale", "axpy", "dot", "sum_squares", "hsum"}) {
    for (const std::size_t n : {std::size_t{4096}, std::size_t{65536}}) {
      const double d = kernel_gbs(kernels, kernel, "dispatch", n);
      const double s = kernel_gbs(kernels, kernel, "scalar", n);
      std::printf("%-12s %8zu %9.2f GB/s %7.2f GB/s %8.2fx\n", kernel, n, d,
                  s, s > 0.0 ? d / s : 0.0);
    }
  }

  // --- 2. per-record vs batched UPDATE at H=5, K=4096 ----------------------
  constexpr std::size_t kH = 5;
  constexpr std::size_t kK = 4096;
  const std::size_t updates = quick ? 1'000'000 : 8'000'000;
  const int reps = quick ? 1 : 3;
  std::vector<sketch::Record> records(updates);
  {
    common::Rng rng(7);
    for (auto& r : records) {
      r.key = rng.next_below(1u << 20);
      r.update = static_cast<double>(rng.next_in(1, 1500));
    }
  }
  const auto family = sketch::make_tabulation_family(11, kH);
  sketch::KarySketch per_record(family, kK);
  sketch::KarySketch batched(family, kK);
  const double per_record_s = best_seconds(reps, [&] {
    for (const sketch::Record& r : records) per_record.update(r.key, r.update);
  });
  const double batched_s = best_seconds(reps, [&] {
    batched.update_batch(std::span<const sketch::Record>(records));
  });
  // Same records applied rep-for-rep -> the two tables must be bit-equal;
  // a throughput number for a wrong answer is worthless.
  bool tables_equal = true;
  for (std::size_t i = 0; i < per_record.registers().size(); ++i) {
    if (per_record.registers()[i] != batched.registers()[i]) {
      tables_equal = false;
      break;
    }
  }
  const auto updates_d = static_cast<double>(updates);
  const double per_record_mups = updates_d / per_record_s / 1e6;
  const double batched_mups = updates_d / batched_s / 1e6;
  const double speedup = per_record_s / batched_s;
  std::printf("\n%-34s %12s %14s\n",
              common::str_format("UPDATE (H=%zu, K=%zu)", kH, kK).c_str(),
              "M updates/s", "ns/update");
  std::printf("%-34s %10.2f M/s %11.1f ns\n", "per-record update()",
              per_record_mups, per_record_s / updates_d * 1e9);
  std::printf("%-34s %10.2f M/s %11.1f ns\n", "batched update_batch()",
              batched_mups, batched_s / updates_d * 1e9);
  std::printf("%-34s %11.2fx\n", "batched speedup", speedup);

  // --- 3. end-to-end ingestion ---------------------------------------------
  const std::size_t e2e_records = quick ? 400'000 : 2'000'000;
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = kH;
  config.k = kK;
  config.threshold = 0.2;
  config.metrics = false;  // measure the data path, not the instrumentation
  const double per_interval = 500'000.0;
  const auto e2e_run = [&](std::size_t workers) {
    ingest::ParallelConfig parallel;
    parallel.workers = workers;
    common::Rng rng(13);
    std::vector<std::uint64_t> keys(e2e_records);
    std::vector<double> vals(e2e_records);
    for (std::size_t i = 0; i < e2e_records; ++i) {
      keys[i] = rng.next_below(1u << 20);
      vals[i] = static_cast<double>(rng.next_in(1, 1500));
    }
    const Stopwatch sw;
    ingest::ParallelPipeline pipeline(config, parallel);
    for (std::size_t i = 0; i < e2e_records; ++i) {
      pipeline.add(keys[i], vals[i],
                   static_cast<double>(i) / per_interval * 10.0);
    }
    pipeline.flush();
    return sw.seconds();
  };
  const double e2e_s = e2e_run(1);
  const double e2e_w4_s = e2e_run(4);
  const double e2e_mrps = static_cast<double>(e2e_records) / e2e_s / 1e6;
  const double e2e_w4_mrps = static_cast<double>(e2e_records) / e2e_w4_s / 1e6;
  std::printf("\nend-to-end (ParallelPipeline W=1): %.2f M records/s "
              "(%zu records in %.3f s)\n", e2e_mrps, e2e_records, e2e_s);
  std::printf("end-to-end (ParallelPipeline W=4): %.2f M records/s "
              "(%zu records in %.3f s)\n", e2e_w4_mrps, e2e_records, e2e_w4_s);

  // --- 4. zero-copy mmap feed vs the queue-copy path -----------------------
  // Same workload serialized as an on-disk .scdt trace, read back two ways:
  // TraceReader's per-record ifstream pull into ParallelPipeline W=1 (one
  // copy into the chunk staging, one through the BoundedQueue) versus
  // MappedTrace + feed_trace (decode in place from the mapping, 4K slices
  // straight into update_batch).
  double queue_path_s = 0.0;
  double mmap_path_s = 0.0;
  {
    common::Rng rng(17);
    std::vector<traffic::FlowRecord> flows(e2e_records);
    for (std::size_t i = 0; i < e2e_records; ++i) {
      flows[i].timestamp_us = static_cast<std::uint64_t>(
          static_cast<double>(i) / per_interval * 10.0 * 1e6);
      flows[i].dst_ip = static_cast<std::uint32_t>(rng.next_below(1u << 20));
      flows[i].bytes = static_cast<std::uint64_t>(rng.next_in(1, 1500));
    }
    const std::string trace_path =
        (std::filesystem::temp_directory_path() / "scd_bench_ingest.scdt")
            .string();
    traffic::write_trace(trace_path, flows);
    flows = {};  // the feeds below must not benefit from this copy
    queue_path_s = best_seconds(quick ? 1 : 3, [&] {
      ingest::ParallelConfig parallel;
      parallel.workers = 1;
      ingest::ParallelPipeline pipeline(config, parallel);
      traffic::TraceReader reader(trace_path);
      traffic::FlowRecord r;
      while (reader.next(r)) pipeline.add_record(r);
      pipeline.flush();
    });
    mmap_path_s = best_seconds(quick ? 1 : 3, [&] {
      core::ChangeDetectionPipeline pipeline(config);
      const eval::MappedTrace trace(trace_path);
      (void)eval::feed_trace(trace, pipeline);
    });
    std::filesystem::remove(trace_path);
  }
  const double queue_mrps =
      static_cast<double>(e2e_records) / queue_path_s / 1e6;
  const double mmap_mrps = static_cast<double>(e2e_records) / mmap_path_s / 1e6;
  const double mmap_speedup = queue_path_s / mmap_path_s;
  std::printf("trace feed, queue-copy path (TraceReader -> W=1): %.2f M "
              "records/s\n", queue_mrps);
  std::printf("trace feed, zero-copy mmap path (feed_trace):     %.2f M "
              "records/s (%.2fx)\n", mmap_mrps, mmap_speedup);

  // --- checks + JSON -------------------------------------------------------
  bench::check(tables_equal,
               "batched UPDATE produced a bit-identical register table");
  if (vector_active) {
    // Threshold rationale (docs/PERFORMANCE.md "Batched UPDATE cost model"):
    // per-record and batched UPDATE both bottom out on the same ~2
    // hash-table misses per key, so the batched advantage — prefetching
    // future keys' table lines, row-concentrated adds, amortized loop
    // structure — lands at ~1.5x on hosts whose L2 does not hold the
    // 4.25 MB character tables. 1.3x asserts that entire win with noise
    // margin; a real regression (dropping prefetch or the row sweep) lands
    // near 1.0x and fails.
    bench::check(speedup >= 1.3,
                 "batched UPDATE beats per-record at H=5, K=4096 (vector host)",
                 common::str_format("%.2fx", speedup));
    const double axpy_ratio =
        kernel_gbs(kernels, "axpy", "dispatch", 4096) /
        kernel_gbs(kernels, "axpy", "scalar", 4096);
    const double hsum_ratio =
        kernel_gbs(kernels, "hsum", "dispatch", 4096) /
        kernel_gbs(kernels, "hsum", "scalar", 4096);
    bench::check(axpy_ratio >= 1.2 && hsum_ratio >= 1.5,
                 "dispatched kernels beat the scalar reference (vector host)",
                 common::str_format("axpy %.2fx, hsum %.2fx", axpy_ratio,
                                    hsum_ratio));
  } else {
    // Scalar dispatch: hash batching + locality still help; the batched
    // path must at least never be slower than per-record.
    bench::check(speedup >= 1.0,
                 "batched UPDATE does not regress under scalar dispatch",
                 common::str_format("%.2fx", speedup));
  }
  // The zero-copy path removes the queue hop and the per-record syscall
  // amortization entirely; anywhere it fails to win, the mmap feed is
  // broken. Hard-gated only with >= 2 cores: on one core the queue path's
  // producer and worker already run serialized, so the margin shrinks to
  // scheduler noise (same auto-skip policy as bench_parallel_ingest).
  if (std::thread::hardware_concurrency() >= 2) {
    bench::check(mmap_speedup >= 1.2,
                 "mmap feed_trace beats the TraceReader+queue path",
                 common::str_format("%.2fx", mmap_speedup));
  } else {
    bench::check(mmap_speedup >= 1.0,
                 "mmap feed_trace does not lose to the TraceReader+queue "
                 "path (single-core host: margin check skipped)",
                 common::str_format("%.2fx", mmap_speedup));
  }

  const char* json_path_env = std::getenv("SCD_BENCH_JSON");
  const std::string json_path =
      json_path_env != nullptr ? json_path_env : "BENCH_THROUGHPUT.json";
  if (std::FILE* f = std::fopen(json_path.c_str(), "w")) {
    std::fprintf(f, "{\n");
    std::fprintf(f,
                 "  \"host\": {\"isa\": \"%s\", \"cpu_avx2\": %s, "
                 "\"quick\": %s},\n",
                 isa, simd::cpu_supports_avx2() ? "true" : "false",
                 quick ? "true" : "false");
    std::fprintf(f, "  \"kernels_gb_per_s\": [\n");
    for (std::size_t i = 0; i < kernels.size(); ++i) {
      const KernelResult& r = kernels[i];
      std::fprintf(f,
                   "    {\"kernel\": \"%s\", \"backend\": \"%s\", "
                   "\"isa\": \"%s\", \"n\": %zu, \"gb_per_s\": %.3f}%s\n",
                   r.kernel.c_str(), r.backend.c_str(), r.isa.c_str(), r.n,
                   r.gb_per_s, i + 1 < kernels.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"update\": {\"h\": %zu, \"k\": %zu, \"updates\": %zu,\n"
                 "    \"per_record_mups\": %.3f, \"batched_mups\": %.3f, "
                 "\"batched_speedup\": %.3f},\n",
                 kH, kK, updates, per_record_mups, batched_mups, speedup);
    std::fprintf(f,
                 "  \"end_to_end\": {\"workers\": 1, \"records\": %zu, "
                 "\"m_records_per_s\": %.3f},\n",
                 e2e_records, e2e_mrps);
    std::fprintf(f,
                 "  \"end_to_end_w4\": {\"workers\": 4, \"records\": %zu, "
                 "\"m_records_per_s\": %.3f},\n",
                 e2e_records, e2e_w4_mrps);
    std::fprintf(f,
                 "  \"mmap_ingest\": {\"records\": %zu, "
                 "\"queue_m_records_per_s\": %.3f, "
                 "\"mmap_m_records_per_s\": %.3f, \"speedup\": %.3f}\n",
                 e2e_records, queue_mrps, mmap_mrps, mmap_speedup);
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::printf("WARNING: could not write %s\n", json_path.c_str());
  }
  return bench::finish();
}
