#include "gridsearch/factorial.h"

#include <gtest/gtest.h>

#include <cmath>

namespace scd::gridsearch {
namespace {

TEST(FullFactorial, SingleFactorMainEffect) {
  const std::vector<Factor> factors{{"x", 0.0, 10.0}};
  const auto result =
      full_factorial(factors, [](const std::vector<double>& v) {
        return 3.0 * v[0] + 7.0;
      });
  ASSERT_EQ(result.effects.size(), 2u);
  EXPECT_DOUBLE_EQ(result.effect("mean").value, 3.0 * 5.0 + 7.0);
  EXPECT_DOUBLE_EQ(result.effect("x").value, 30.0);  // f(high) - f(low)
}

TEST(FullFactorial, AdditiveResponseHasNoInteraction) {
  const std::vector<Factor> factors{{"a", 0.0, 1.0}, {"b", 0.0, 1.0}};
  const auto result =
      full_factorial(factors, [](const std::vector<double>& v) {
        return 2.0 * v[0] + 5.0 * v[1];
      });
  EXPECT_DOUBLE_EQ(result.effect("a").value, 2.0);
  EXPECT_DOUBLE_EQ(result.effect("b").value, 5.0);
  EXPECT_NEAR(result.effect("a*b").value, 0.0, 1e-12);
  EXPECT_EQ(result.effect("a*b").order, 2);
}

TEST(FullFactorial, PureInteractionDetected) {
  const std::vector<Factor> factors{{"a", -1.0, 1.0}, {"b", -1.0, 1.0}};
  const auto result =
      full_factorial(factors, [](const std::vector<double>& v) {
        return v[0] * v[1];
      });
  EXPECT_NEAR(result.effect("a").value, 0.0, 1e-12);
  EXPECT_NEAR(result.effect("b").value, 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(result.effect("a*b").value, 2.0);
}

TEST(FullFactorial, ThreeFactorLabelsAndOrders) {
  const std::vector<Factor> factors{
      {"H", 1.0, 5.0}, {"K", 1024.0, 8192.0}, {"T", 60.0, 300.0}};
  const auto result = full_factorial(
      factors, [](const std::vector<double>& v) { return v[0] + v[1] + v[2]; });
  ASSERT_EQ(result.effects.size(), 8u);
  EXPECT_EQ(result.effect("H*K*T").order, 3);
  EXPECT_EQ(result.effect("H*K").order, 2);
  EXPECT_DOUBLE_EQ(result.effect("K").value, 8192.0 - 1024.0);
  EXPECT_EQ(result.runs.size(), 8u);
}

TEST(FullFactorial, RankedSortsByMagnitude) {
  const std::vector<Factor> factors{{"a", 0.0, 1.0}, {"b", 0.0, 1.0}};
  const auto result =
      full_factorial(factors, [](const std::vector<double>& v) {
        return 1.0 * v[0] + 10.0 * v[1] + 3.0 * v[0] * v[1];
      });
  const auto ranked = result.ranked();
  ASSERT_EQ(ranked.size(), 3u);
  // b: avg(10, 13) = 11.5; a: avg(1, 4) = 2.5; a*b: (4 - 1)/2 = 1.5.
  EXPECT_EQ(ranked[0].name, "b");
  EXPECT_DOUBLE_EQ(ranked[0].value, 11.5);
  EXPECT_EQ(ranked[1].name, "a");
  EXPECT_DOUBLE_EQ(ranked[1].value, 2.5);
  EXPECT_EQ(ranked[2].name, "a*b");
  EXPECT_DOUBLE_EQ(ranked[2].value, 1.5);
}

TEST(FullFactorial, ResponseCalledExactlyOncePerRun) {
  int calls = 0;
  const std::vector<Factor> factors{{"a", 0, 1}, {"b", 0, 1}, {"c", 0, 1},
                                    {"d", 0, 1}};
  (void)full_factorial(factors, [&calls](const std::vector<double>&) {
    ++calls;
    return 0.0;
  });
  EXPECT_EQ(calls, 16);
}

TEST(FullFactorial, UnknownEffectThrows) {
  const std::vector<Factor> factors{{"a", 0.0, 1.0}};
  const auto result = full_factorial(
      factors, [](const std::vector<double>& v) { return v[0]; });
  EXPECT_THROW((void)result.effect("zzz"), std::out_of_range);
}

TEST(FullFactorial, RunsInStandardOrder) {
  // run i uses factor j's high level iff bit j of i is set.
  const std::vector<Factor> factors{{"a", 0.0, 1.0}, {"b", 0.0, 2.0}};
  const auto result =
      full_factorial(factors, [](const std::vector<double>& v) {
        return v[0] + v[1];  // encodes the assignment uniquely
      });
  EXPECT_DOUBLE_EQ(result.runs[0], 0.0);  // (low, low)
  EXPECT_DOUBLE_EQ(result.runs[1], 1.0);  // (high, low)
  EXPECT_DOUBLE_EQ(result.runs[2], 2.0);  // (low, high)
  EXPECT_DOUBLE_EQ(result.runs[3], 3.0);  // (high, high)
}

}  // namespace
}  // namespace scd::gridsearch
