// Appendix A/B: Monte-Carlo measurement of the k-ary estimator guarantees.
//   Theorem 1: E[v^h_a] = v_a, Var <= F2/(K-1)
//   Theorems 2/3: the H-row median makes deviations beyond alpha*T*sqrt(F2)
//                 exponentially unlikely in H
//   Theorems 4/5: E[F2^est] = F2, Var <= 2*F2^2/(K-1)
// The paper's worked example: K=2^16, H=20, flagging at sqrt(F2)/32 neither
// misses keys above sqrt(F2)/16 nor flags keys below sqrt(F2)/64.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "sketch/kary_sketch.h"
#include "support/bench_util.h"

int main() {
  using namespace scd;
  bench::print_header("Appendix A/B", "estimator quality Monte-Carlo",
                      "unbiased ESTIMATE/ESTIMATEF2 with the stated variance "
                      "bounds; median keeps tails tiny");

  // Heavy-tailed ground truth: 5000 keys, Pareto magnitudes, random signs.
  common::Rng rng(99);
  std::vector<std::pair<std::uint64_t, double>> stream;
  double f2 = 0.0;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    const double v = rng.pareto(1.0, 1.3) * (rng.bernoulli(0.5) ? 1.0 : -1.0);
    stream.emplace_back(1000 + i, v);
    f2 += v * v;
  }
  const std::uint64_t probe = 1000;  // first key
  const double truth = stream.front().second;

  constexpr std::size_t kK = 1024;
  constexpr int kTrials = 600;
  common::RunningStats est_h1, f2_h1, est_h9, f2_h9;
  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    const auto f1 = sketch::make_cw_family(seed, 1);
    sketch::KarySketch64 s1(f1, kK);
    const auto f9 = sketch::make_cw_family(seed ^ 0xabcdef, 9);
    sketch::KarySketch64 s9(f9, kK);
    for (const auto& [key, value] : stream) {
      s1.update(key, value);
      s9.update(key, value);
    }
    est_h1.add(s1.estimate(probe));
    f2_h1.add(s1.estimate_f2());
    est_h9.add(s9.estimate(probe));
    f2_h9.add(s9.estimate_f2());
  }

  const double var_bound = f2 / (kK - 1);
  std::printf("value estimate, H=1: mean=%.4f (truth %.4f), var=%.4f "
              "(bound %.4f)\n",
              est_h1.mean(), truth, est_h1.variance(), var_bound);
  std::printf("value estimate, H=9: mean=%.4f, max|dev|=%.4f vs H=1 "
              "max|dev|=%.4f\n",
              est_h9.mean(),
              std::max(std::abs(est_h9.max() - truth),
                       std::abs(est_h9.min() - truth)),
              std::max(std::abs(est_h1.max() - truth),
                       std::abs(est_h1.min() - truth)));
  std::printf("F2 estimate, H=1: mean=%.1f (truth %.1f), var=%.3g (bound "
              "%.3g)\n",
              f2_h1.mean(), f2, f2_h1.variance(),
              2.0 * f2 * f2 / (kK - 1));

  const double sem = std::sqrt(var_bound / kTrials);
  bench::check(std::abs(est_h1.mean() - truth) < 4 * sem,
               "Theorem 1: per-row ESTIMATE is unbiased",
               common::str_format("|bias|=%.4f, 4*SEM=%.4f",
                                  std::abs(est_h1.mean() - truth), 4 * sem));
  bench::check(est_h1.variance() < 1.4 * var_bound,
               "Theorem 1: Var(v^h_a) <= F2/(K-1)",
               common::str_format("var=%.4f bound=%.4f", est_h1.variance(),
                                  var_bound));
  bench::check(std::max(std::abs(est_h9.max() - truth),
                        std::abs(est_h9.min() - truth)) <
                   std::max(std::abs(est_h1.max() - truth),
                            std::abs(est_h1.min() - truth)),
               "Theorems 2/3: H-row median shrinks extreme deviations", "");
  const double f2_sem = std::sqrt(2.0 * f2 * f2 / (kK - 1) / kTrials);
  bench::check(std::abs(f2_h1.mean() - f2) < 4 * f2_sem,
               "Theorem 4: ESTIMATEF2 is unbiased",
               common::str_format("|bias|=%.1f, 4*SEM=%.1f",
                                  std::abs(f2_h1.mean() - f2), 4 * f2_sem));
  bench::check(f2_h9.min() > 0.6 * f2 && f2_h9.max() < 1.4 * f2,
               "Theorem 5: H=9 median F2 stays within +-40% in every trial",
               common::str_format("range [%.2f, %.2f] x F2", f2_h9.min() / f2,
                                  f2_h9.max() / f2));

  // Paper's worked example at full scale (one trial, H=20, K=2^16).
  {
    const auto family = sketch::make_cw_family(7777, 20);
    sketch::KarySketch64 sketch(family, 1u << 16);
    common::Rng rng2(7);
    double example_f2 = 0.0;
    for (std::uint64_t i = 0; i < 50000; ++i) {
      const double v = rng2.uniform(0.5, 1.5);
      sketch.update(i, v);
      example_f2 += v * v;
    }
    const double norm = std::sqrt(example_f2);
    // Plant keys straddling the detection band.
    sketch.update(900001, norm / 16.0);
    sketch.update(900002, norm / 64.0);
    const double threshold = norm / 32.0;
    bench::check(std::abs(sketch.estimate(900001)) >= threshold,
                 "worked example: key with |v|=sqrt(F2)/16 is flagged at "
                 "threshold sqrt(F2)/32",
                 "");
    bench::check(std::abs(sketch.estimate(900002)) < threshold,
                 "worked example: key with |v|=sqrt(F2)/64 is not flagged",
                 "");
  }
  return bench::finish();
}
