// Small string/formatting helpers (GCC 12 lacks <format>).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scd::common {

/// printf-style formatting into a std::string.
[[nodiscard]] std::string str_format(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// "1.23K", "4.5M" style human-readable counts.
[[nodiscard]] std::string human_count(double value);

/// Dotted-quad rendering of a host-order IPv4 address.
[[nodiscard]] std::string ipv4_to_string(std::uint32_t addr);

/// Parses dotted-quad IPv4 into host order; returns false on malformed input.
[[nodiscard]] bool parse_ipv4(const std::string& text, std::uint32_t& out);

/// Splits on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string> split(const std::string& text, char delim);

}  // namespace scd::common
