// ParallelPipeline: the sharded front-end must reproduce the serial
// pipeline's alarm set exactly — same (interval, key) pairs — for any worker
// count, because sharding by key + COMBINE-merge is algebraically the same
// computation. Updates in these tests are integer-valued so the per-register
// sums are exact regardless of floating-point addition order and the
// comparison can demand bit equality, not tolerance.
//
// Runs under the tsan preset via `ctest -L concurrency`.
#include "ingest/parallel_pipeline.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"

namespace scd::ingest {
namespace {

core::PipelineConfig base_config() {
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 5;
  config.k = 4096;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.2;
  return config;
}

/// Integer-valued deterministic stream: 50 steady keys per interval plus a
/// spike on key 999 in interval 6. Works on anything with an add() method.
template <typename Pipeline>
void feed_stream(Pipeline& pipeline, std::size_t intervals) {
  for (std::size_t t = 0; t < intervals; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      const double jitter =
          static_cast<double>(common::mix64(key * 1000 + t) % 11) - 5.0;
      pipeline.add(key, 100.0 + jitter, start + 1.0);
    }
    if (t == 6) pipeline.add(999, 5000.0, start + 2.0);
  }
  pipeline.flush();
}

using AlarmSet = std::set<std::pair<std::size_t, std::uint64_t>>;

AlarmSet alarm_set(const std::vector<core::IntervalReport>& reports) {
  AlarmSet out;
  for (const auto& report : reports) {
    for (const auto& alarm : report.alarms) {
      out.emplace(report.index, alarm.key);
    }
  }
  return out;
}

TEST(ParallelPipeline, AlarmSetMatchesSerialForEveryWorkerCount) {
  core::ChangeDetectionPipeline serial(base_config());
  feed_stream(serial, 10);
  const AlarmSet expected = alarm_set(serial.reports());
  ASSERT_FALSE(expected.empty());  // the spike must be flagged

  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ParallelConfig parallel;
    parallel.workers = workers;
    parallel.batch_size = 16;  // several chunks per interval
    ParallelPipeline pipeline(base_config(), parallel);
    feed_stream(pipeline, 10);

    ASSERT_EQ(pipeline.reports().size(), serial.reports().size())
        << "workers=" << workers;
    EXPECT_EQ(alarm_set(pipeline.reports()), expected)
        << "workers=" << workers;
    // With integer updates the merged registers are bit-identical to the
    // serial sketch, so every derived quantity matches exactly.
    for (std::size_t i = 0; i < serial.reports().size(); ++i) {
      const auto& s = serial.reports()[i];
      const auto& p = pipeline.reports()[i];
      EXPECT_EQ(p.records, s.records) << "workers=" << workers << " i=" << i;
      EXPECT_EQ(p.keys_checked, s.keys_checked);
      EXPECT_DOUBLE_EQ(p.estimated_error_f2, s.estimated_error_f2);
      EXPECT_DOUBLE_EQ(p.alarm_threshold, s.alarm_threshold);
    }
    EXPECT_EQ(pipeline.stats().records, serial.stats().records);
    EXPECT_EQ(pipeline.stats().intervals_closed,
              serial.stats().intervals_closed);
    EXPECT_EQ(pipeline.parallel_stats().barriers, 10u);
  }
}

TEST(ParallelPipeline, RunsAreDeterministic) {
  const auto run = [] {
    ParallelConfig parallel;
    parallel.workers = 4;
    parallel.batch_size = 8;
    ParallelPipeline pipeline(base_config(), parallel);
    feed_stream(pipeline, 8);
    std::vector<double> f2;
    for (const auto& report : pipeline.reports()) {
      f2.push_back(report.estimated_error_f2);
    }
    return std::make_pair(alarm_set(pipeline.reports()), f2);
  };
  const auto [alarms1, f2_1] = run();
  const auto [alarms2, f2_2] = run();
  EXPECT_EQ(alarms1, alarms2);
  ASSERT_EQ(f2_1.size(), f2_2.size());
  for (std::size_t i = 0; i < f2_1.size(); ++i) {
    EXPECT_DOUBLE_EQ(f2_1[i], f2_2[i]) << i;  // fixed merge order => bit-exact
  }
}

TEST(ParallelPipeline, EmptyGapIntervalsMatchSerial) {
  core::ChangeDetectionPipeline serial(base_config());
  serial.add(1, 100.0, 5.0);
  serial.add(1, 100.0, 45.0);  // jumps over intervals 1..3
  serial.flush();

  ParallelConfig parallel;
  parallel.workers = 3;
  ParallelPipeline pipeline(base_config(), parallel);
  pipeline.add(1, 100.0, 5.0);
  pipeline.add(1, 100.0, 45.0);
  pipeline.flush();

  ASSERT_EQ(pipeline.reports().size(), serial.reports().size());
  for (std::size_t i = 0; i < serial.reports().size(); ++i) {
    EXPECT_EQ(pipeline.reports()[i].records, serial.reports()[i].records) << i;
    EXPECT_DOUBLE_EQ(pipeline.reports()[i].start_s,
                     serial.reports()[i].start_s);
  }
}

TEST(ParallelPipeline, NextIntervalReplayMatchesSerial) {
  auto config = base_config();
  config.replay = core::KeyReplayMode::kNextInterval;
  core::ChangeDetectionPipeline serial(config);
  feed_stream(serial, 10);

  ParallelConfig parallel;
  parallel.workers = 4;
  ParallelPipeline pipeline(config, parallel);
  feed_stream(pipeline, 10);

  ASSERT_EQ(pipeline.reports().size(), serial.reports().size());
  EXPECT_EQ(alarm_set(pipeline.reports()), alarm_set(serial.reports()));
}

TEST(ParallelPipeline, WideKeyKindsUseTheCarterWegmanFamily) {
  auto config = base_config();
  config.key_kind = traffic::KeyKind::kSrcDstPair;  // 64-bit keys
  core::ChangeDetectionPipeline serial(config);
  ParallelConfig parallel;
  parallel.workers = 2;
  ParallelPipeline pipeline(config, parallel);
  const std::uint64_t wide = 0xdeadbeefcafef00dULL;
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::uint64_t i = 0; i < 20; ++i) {
      serial.add(wide + i, 100.0, static_cast<double>(t) * 10.0 + 1.0);
      pipeline.add(wide + i, 100.0, static_cast<double>(t) * 10.0 + 1.0);
    }
  }
  serial.flush();
  pipeline.flush();
  ASSERT_EQ(pipeline.reports().size(), serial.reports().size());
  for (std::size_t i = 0; i < serial.reports().size(); ++i) {
    EXPECT_DOUBLE_EQ(pipeline.reports()[i].estimated_error_f2,
                     serial.reports()[i].estimated_error_f2);
  }
}

TEST(ParallelPipeline, OutOfOrderRecordsAreClampedAndCounted) {
  ParallelConfig parallel;
  parallel.workers = 2;
  ParallelPipeline pipeline(base_config(), parallel);
  pipeline.add(1, 1.0, 100.0);
  EXPECT_NO_THROW(pipeline.add(2, 1.0, 50.0));  // late record: kept, clamped
  pipeline.flush();
  EXPECT_EQ(pipeline.stats().out_of_order_records, 1u);
  EXPECT_EQ(pipeline.parallel_stats().out_of_order_records, 1u);
  // Both records landed in the single open interval.
  ASSERT_EQ(pipeline.reports().size(), 1u);
  EXPECT_EQ(pipeline.reports()[0].records, 2u);
}

TEST(ParallelPipeline, TinyQueueStillCompletesUnderBackpressure) {
  ParallelConfig parallel;
  parallel.workers = 2;
  parallel.batch_size = 4;
  parallel.queue_capacity = 4;  // one chunk in flight per shard
  ParallelPipeline pipeline(base_config(), parallel);
  feed_stream(pipeline, 6);
  EXPECT_EQ(pipeline.stats().records, 6u * 50u);
  EXPECT_EQ(pipeline.parallel_stats().barriers, 6u);
}

TEST(ParallelPipeline, RejectsNonFiniteUpdates) {
  ParallelConfig parallel;
  parallel.workers = 2;
  ParallelPipeline pipeline(base_config(), parallel);
  EXPECT_THROW(pipeline.add(1, std::nan(""), 0.0), std::invalid_argument);
}

TEST(ParallelPipeline, ConfigValidation) {
  ParallelConfig parallel;
  parallel.workers = 0;
  EXPECT_THROW(ParallelPipeline(base_config(), parallel),
               std::invalid_argument);
  parallel = ParallelConfig{};
  parallel.workers = 500;
  EXPECT_THROW(ParallelPipeline(base_config(), parallel),
               std::invalid_argument);
  parallel = ParallelConfig{};
  parallel.batch_size = 0;
  EXPECT_THROW(ParallelPipeline(base_config(), parallel),
               std::invalid_argument);
  parallel = ParallelConfig{};
  parallel.queue_capacity = 4;
  parallel.batch_size = 512;  // queue cannot hold one chunk
  EXPECT_THROW(ParallelPipeline(base_config(), parallel),
               std::invalid_argument);

  // Pipeline options that would break run-to-run determinism are rejected.
  auto config = base_config();
  config.randomize_intervals = true;
  EXPECT_THROW(ParallelPipeline(config, ParallelConfig{}),
               std::invalid_argument);
  config = base_config();
  config.key_sample_rate = 0.5;
  EXPECT_THROW(ParallelPipeline(config, ParallelConfig{}),
               std::invalid_argument);
}

TEST(ParallelPipeline, CallbackAndActiveModelForwarding) {
  ParallelConfig parallel;
  parallel.workers = 2;
  ParallelPipeline pipeline(base_config(), parallel);
  std::size_t seen = 0;
  pipeline.set_report_callback(
      [&seen](const core::IntervalReport&) { ++seen; });
  feed_stream(pipeline, 5);
  EXPECT_EQ(seen, pipeline.reports().size());
  EXPECT_EQ(pipeline.active_model().kind, forecast::ModelKind::kEwma);
  EXPECT_EQ(pipeline.config().k, 4096u);
  EXPECT_EQ(pipeline.parallel_config().workers, 2u);
}

TEST(ParallelPipeline, DestructionWithoutFlushJoinsCleanly) {
  ParallelConfig parallel;
  parallel.workers = 4;
  ParallelPipeline pipeline(base_config(), parallel);
  for (std::uint64_t key = 0; key < 100; ++key) {
    pipeline.add(key, 1.0, 1.0);
  }
  // No flush: the destructor must close the queues and join the workers.
}

}  // namespace
}  // namespace scd::ingest
