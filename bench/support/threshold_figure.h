// Shared driver for Figures 10 and 11 (thresholding on the large router,
// non-seasonal Holt-Winters): (a) mean alarm counts vs threshold for several
// sketch configurations and per-flow, (b) mean false-negative ratio vs K,
// (c) mean false-positive ratio vs K.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "detect/detection.h"
#include "support/bench_util.h"
#include "support/experiments.h"

namespace scd::bench {

inline void run_threshold_figure(const char* figure, double interval) {
  print_header(
      figure,
      common::str_format(
          "thresholding, large router, %.0fs interval, NSHW model", interval),
      "H=1 floods alarms; H=5 matches per-flow; FN/FP drop below a few "
      "percent for K>=32768");

  const auto& stream = stream_for("large", interval);
  const auto model =
      cached_grid_model("large", interval, forecast::ModelKind::kHoltWinters);
  std::printf("grid model: %s\n", model.to_string().c_str());
  const std::size_t warmup = warmup_intervals(interval);
  const auto& truth = truth_for(stream, model);
  const std::vector<double> thresholds{0.01, 0.02, 0.05, 0.07, 0.10};

  struct Config {
    std::size_t k;
    std::size_t h;
  };
  const std::vector<Config> configs{
      {8192, 1}, {8192, 5}, {32768, 5}, {65536, 5}};

  // Per-flow alarm counts (panel a reference curve).
  {
    std::vector<std::pair<double, double>> points;
    for (const double threshold : thresholds) {
      double mean = 0.0;
      std::size_t n = 0;
      for (std::size_t t = warmup; t < truth.intervals.size(); ++t) {
        if (!truth.intervals[t].ready) continue;
        const double l2 = std::sqrt(std::max(truth.intervals[t].f2, 0.0));
        mean += static_cast<double>(
            detect::above_threshold(truth.intervals[t].ranked, threshold, l2)
                .size());
        ++n;
      }
      points.emplace_back(threshold, n ? mean / static_cast<double>(n) : 0.0);
    }
    print_series("alarms_pf(threshold, mean_alarms)", points);
  }

  std::map<std::pair<std::size_t, std::size_t>, std::vector<ThresholdStats>>
      all_stats;
  for (const auto& config : configs) {
    const auto sketch = sketch_errors_for(stream, model, config.h, config.k);
    std::vector<std::pair<double, double>> alarm_points;
    auto& stats_vec = all_stats[{config.k, config.h}];
    for (const double threshold : thresholds) {
      const auto stats = threshold_stats(truth, sketch, threshold, warmup);
      stats_vec.push_back(stats);
      alarm_points.emplace_back(threshold, stats.mean_sk_alarms);
    }
    print_series(common::str_format("alarms_sk_K%zu_H%zu(threshold, mean)",
                                    config.k, config.h),
                 alarm_points);
  }

  // Panels (b) and (c): FN and FP vs K at H=5.
  for (const bool fn : {true, false}) {
    for (std::size_t ti = 0; ti < thresholds.size() - 1; ++ti) {  // 0.01..0.07
      std::vector<std::pair<double, double>> points;
      for (const std::size_t k : {8192u, 32768u, 65536u}) {
        const auto& stats = all_stats[{k, 5}][ti];
        points.emplace_back(
            static_cast<double>(k),
            fn ? stats.mean_false_negative : stats.mean_false_positive);
      }
      print_series(common::str_format("%s_T%.2f(K, ratio)",
                                      fn ? "false_negative" : "false_positive",
                                      thresholds[ti]),
                   points);
    }
  }

  // Paper claims.
  const auto& h1 = all_stats[{8192, 1}];
  const auto& h5_8k = all_stats[{8192, 5}];
  const auto& h5_32k = all_stats[{32768, 5}];
  const auto& h5_64k = all_stats[{65536, 5}];
  // Paper: "for a very low value of H (=1), the number of alarms are very
  // high. Simply increasing H to 5 suffices to dramatically reduce" them.
  // On our synthetic traces the inflation factor at 60 s intervals is
  // smaller than on the paper's real data (fewer tiny flows near the
  // threshold), so the check requires a clear (>25%) reduction rather than
  // the paper's multiples.
  check(h1[0].mean_sk_alarms > 1.25 * h5_8k[0].mean_sk_alarms,
        "H=1 over-alarms; H=5 substantially reduces alarms",
        common::str_format("H1=%.0f H5=%.0f at threshold 0.01",
                           h1[0].mean_sk_alarms, h5_8k[0].mean_sk_alarms));
  check(h5_8k.front().mean_sk_alarms > h5_8k.back().mean_sk_alarms,
        "raising the threshold significantly reduces alarms",
        common::str_format("T0.01=%.0f T0.10=%.0f",
                           h5_8k.front().mean_sk_alarms,
                           h5_8k.back().mean_sk_alarms));
  check(h5_32k[1].mean_false_negative < 0.05,
        "K=32768: false-negative ratio ~ a couple percent at threshold 0.02",
        common::str_format("FN=%.4f", h5_32k[1].mean_false_negative));
  check(h5_32k[2].mean_false_negative < 0.02,
        "K=32768: FN below 1-2% at threshold 0.05",
        common::str_format("FN=%.4f", h5_32k[2].mean_false_negative));
  check(h5_32k[1].mean_false_positive < 0.05,
        "K=32768: false-positive ratio low at threshold 0.02",
        common::str_format("FP=%.4f", h5_32k[1].mean_false_positive));
  check(h5_64k[1].mean_false_negative <= h5_8k[1].mean_false_negative + 0.01,
        "false negatives do not get worse as K grows",
        common::str_format("8K=%.4f 64K=%.4f", h5_8k[1].mean_false_negative,
                           h5_64k[1].mean_false_negative));
}

}  // namespace scd::bench
