#include "traffic/packetize.h"

#include <algorithm>
#include <cassert>

#include "traffic/flow_record.h"

namespace scd::traffic {

Packetizer::Packetizer(PacketizerConfig config)
    : config_(config), rng_(config.seed) {
  assert(config_.min_packet >= 1);
  assert(config_.max_packet >= config_.min_packet);
  assert(config_.flow_spread_s >= 0.0);
}

void Packetizer::packetize_record(
    const FlowRecord& record,
    const std::function<void(const PacketRecord&)>& sink) {
  const std::uint32_t n = std::max<std::uint32_t>(1, record.packets);
  // Draw provisional sizes, then scale so the train sums to record.bytes.
  std::vector<double> sizes(n);
  double total = 0.0;
  for (double& s : sizes) {
    s = rng_.uniform(static_cast<double>(config_.min_packet),
                     static_cast<double>(config_.max_packet));
    total += s;
  }
  const double scale =
      total > 0.0 ? static_cast<double>(record.bytes) / total : 0.0;

  std::vector<std::uint64_t> offsets(n);
  const double spread_us = config_.flow_spread_s * 1e6;
  for (auto& o : offsets) {
    o = static_cast<std::uint64_t>(rng_.next_double() * spread_us);
  }
  std::sort(offsets.begin(), offsets.end());

  std::uint64_t emitted = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    PacketRecord p;
    p.timestamp_us = record.timestamp_us + offsets[i];
    p.src_ip = record.src_ip;
    p.dst_ip = record.dst_ip;
    p.src_port = record.src_port;
    p.dst_port = record.dst_port;
    p.protocol = record.protocol;
    if (i + 1 == n) {
      // Last packet absorbs the rounding remainder so totals match exactly.
      p.bytes = static_cast<std::uint32_t>(
          record.bytes > emitted ? record.bytes - emitted : 0);
    } else {
      const auto size = static_cast<std::uint64_t>(sizes[i] * scale);
      const std::uint64_t remaining = record.bytes - emitted;
      p.bytes = static_cast<std::uint32_t>(std::min(size, remaining));
    }
    emitted += p.bytes;
    sink(p);
  }
}

std::vector<PacketRecord> Packetizer::packetize(
    std::span<const FlowRecord> records) {
  std::vector<PacketRecord> packets;
  std::uint64_t expected = 0;
  for (const FlowRecord& r : records) {
    expected += std::max<std::uint32_t>(1, r.packets);
  }
  packets.reserve(expected);
  for (const FlowRecord& r : records) {
    packetize_record(r, [&packets](const PacketRecord& p) {
      packets.push_back(p);
    });
  }
  std::sort(packets.begin(), packets.end(),
            [](const PacketRecord& a, const PacketRecord& b) {
              return a.timestamp_us < b.timestamp_us;
            });
  return packets;
}

}  // namespace scd::traffic
