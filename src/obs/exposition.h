// Machine-readable exposition of a MetricsRegistry.
//
//   to_prometheus() — Prometheus text exposition format 0.0.4: one
//     HELP/TYPE block per family, counters suffixed _total by convention of
//     the caller's metric names, histograms expanded into cumulative
//     _bucket{le=...}, _sum, and _count series.
//   to_json()       — one JSON object per family with per-instance values
//     (histograms include bucket bounds/counts and p50/p95/p99 estimates),
//     for log shippers and the tests.
//
// Both functions take a live registry; values are read atomically per field
// (standard monitoring semantics: the snapshot is not cross-metric atomic).
#pragma once

#include <functional>
#include <string>

#include "obs/metrics.h"

namespace scd::obs {

[[nodiscard]] std::string to_prometheus(const MetricsRegistry& registry);
[[nodiscard]] std::string to_json(const MetricsRegistry& registry);

/// Periodic snapshot hook for long-running processes: call tick(now) from
/// any convenient cadence point (per record, per interval report); every
/// `every_s` seconds of the supplied clock it renders the registry and
/// invokes the emit callback. The clock is caller-defined — stream time for
/// deterministic replays, wall time for live feeds.
class PeriodicSnapshot {
 public:
  enum class Format { kPrometheus, kJson };

  PeriodicSnapshot(double every_s, Format format,
                   std::function<void(const std::string&)> emit,
                   const MetricsRegistry& registry = MetricsRegistry::global());

  /// Emits at most one snapshot per call; returns true when one was emitted.
  bool tick(double now_s);

  [[nodiscard]] std::size_t snapshots_emitted() const noexcept {
    return emitted_;
  }

 private:
  double every_s_;
  Format format_;
  std::function<void(const std::string&)> emit_;
  const MetricsRegistry& registry_;
  bool armed_ = false;
  double next_due_s_ = 0.0;
  std::size_t emitted_ = 0;
};

}  // namespace scd::obs
