#include "common/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace scd::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    set_log_level(LogLevel::kInfo);
    set_log_sink(nullptr);
  }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, StreamMacroEvaluatesLazily) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  SCD_DEBUG() << expensive();  // below threshold: must not evaluate
  EXPECT_EQ(evaluations, 0);
  SCD_ERROR() << expensive();  // at threshold: evaluates once
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogLineDoesNotCrashOnEmptyAndLongMessages) {
  log_line(LogLevel::kInfo, "");
  log_line(LogLevel::kWarn, std::string(10000, 'x'));
}

TEST_F(LoggingTest, StreamComposesTypes) {
  set_log_level(LogLevel::kDebug);
  // Composition of common types must compile and not crash.
  SCD_INFO() << "value=" << 3 << " pi=" << 3.14 << " flag=" << true;
}

TEST_F(LoggingTest, SinkCapturesFormattedLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  set_log_sink([&captured](LogLevel level, const std::string& line) {
    captured.emplace_back(level, line);
  });
  SCD_WARN() << "hello sink";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0].first, LogLevel::kWarn);
  EXPECT_NE(captured[0].second.find("[WARN] hello sink"), std::string::npos);
  // Restoring the default must stop capture.
  set_log_sink(nullptr);
  SCD_WARN() << "to stderr";
  EXPECT_EQ(captured.size(), 1u);
}

TEST_F(LoggingTest, LinesCarryMonotonicTimestampAndThreadId) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);
  });
  const double before = log_monotonic_now();
  SCD_INFO() << "first";
  SCD_INFO() << "second";
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    ASSERT_EQ(line.front(), '[') << line;
    EXPECT_NE(line.find("s tid="), std::string::npos) << line;
  }
  // The printed timestamp is seconds-since-first-use and nondecreasing.
  const auto stamp_of = [](const std::string& line) {
    return std::stod(line.substr(1));
  };
  EXPECT_GE(stamp_of(lines[0]), before - 1e-3);
  EXPECT_GE(stamp_of(lines[1]), stamp_of(lines[0]) - 1e-9);
}

TEST_F(LoggingTest, DifferentThreadsGetDistinctTags) {
  std::vector<std::string> lines;
  set_log_sink([&lines](LogLevel, const std::string& line) {
    lines.push_back(line);  // sink runs under the logger mutex: safe
  });
  SCD_INFO() << "main thread";
  std::thread worker([] { SCD_INFO() << "worker thread"; });
  worker.join();
  ASSERT_EQ(lines.size(), 2u);
  const auto tag_of = [](const std::string& line) {
    const std::size_t pos = line.find("tid=");
    return line.substr(pos + 4, 4);
  };
  EXPECT_NE(tag_of(lines[0]), tag_of(lines[1]));
}

}  // namespace
}  // namespace scd::common
