// Versioned checkpoint/restore for the change-detection pipelines.
//
// A checkpoint is one file holding a pipeline's complete interval-boundary
// state (core/pipeline.h save_state(): sketches, forecast-model state,
// counters, RNG words). The file is written atomically — serialize to a
// temp file, fsync, rename into place, fsync the directory — and framed
// with CRC32s, so after a crash the directory contains only (a) complete,
// verifiable checkpoints and (b) garbage that verification rejects; never a
// file that loads but lies. recover() scans the directory newest-first,
// skips anything corrupt or truncated (with a logged reason), and restores
// the newest valid snapshot so that all post-restore reports are
// bit-identical to an uninterrupted run.
//
// File layout (little-endian):
//   u32 magic "SCDP" | u32 version | u32 payload_kind | u32 reserved |
//   u64 config_fingerprint | u64 interval_index | u64 payload_len |
//   u32 payload_crc32 | u32 header_crc32          (48-byte header)
//   payload_len bytes of pipeline state
// header_crc32 covers the 44 bytes before it; payload_crc32 covers the
// payload. A restore against a pipeline whose config_fingerprint differs —
// different sketch geometry, model, thresholds — is a typed error
// (kConfigMismatch), never a silent misload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"
#include "sketch/serialize.h"

namespace scd::checkpoint {

inline constexpr std::uint32_t kCheckpointMagic = 0x50444353;  // "SCDP" LE
inline constexpr std::uint32_t kCheckpointVersion = 1;
/// Fixed header size in bytes (see file layout above).
inline constexpr std::size_t kCheckpointHeaderBytes = 48;

/// What kind of pipeline state the payload holds. A serial engine snapshot
/// and a parallel front-end snapshot have different layouts; restoring one
/// as the other is a typed error, not a parse attempt.
enum class PayloadKind : std::uint32_t {
  kSerial = 1,
  kParallel = 2,
};

/// Why a checkpoint operation failed. Every failure path in this module is
/// typed: recovery logic distinguishes "skip this file, try an older one"
/// (corruption) from "refuse to run" (config mismatch) from "the disk is
/// failing" (write errors).
enum class CheckpointErrorKind {
  kWriteFailed,     ///< I/O failure while writing, fsyncing, or renaming
  kTruncated,       ///< file ends inside the header or payload
  kBadMagic,        ///< leading bytes are not "SCDP"
  kBadVersion,      ///< unknown checkpoint format version
  kBadCrc,          ///< header or payload CRC32 mismatch
  kConfigMismatch,  ///< fingerprint or payload kind differs from the restorer
  kBadPayload,      ///< framing verified but the pipeline rejected the state
};

[[nodiscard]] const char* checkpoint_error_kind_name(
    CheckpointErrorKind kind) noexcept;

/// Thrown by every checkpoint failure path. Derives from
/// sketch::SerializeError (the library's serialization error family) so
/// existing catch sites handle checkpoint faults too; new code switches on
/// checkpoint_kind().
class CheckpointError : public sketch::SerializeError {
 public:
  CheckpointError(CheckpointErrorKind kind, const std::string& message);

  [[nodiscard]] CheckpointErrorKind checkpoint_kind() const noexcept {
    return kind_;
  }

 private:
  CheckpointErrorKind kind_;
};

/// 64-bit FNV-1a fingerprint over every state-determining PipelineConfig
/// field — sketch geometry, seed, key/update kinds, model parameters,
/// detection thresholds, replay and refit settings. `metrics` is excluded
/// (observability does not alter results), as is any ParallelConfig (worker
/// count does not change the serial-equivalent state).
[[nodiscard]] std::uint64_t config_fingerprint(
    const core::PipelineConfig& config) noexcept;

/// The file-system primitives the writer uses, as a seam: production code
/// uses real_file_ops(); tests substitute an ScdFaultInjector
/// (fault_injection.h) to simulate partial writes, torn renames, and bit
/// rot without root or loopback devices.
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// Writes `data` to `path` (create or truncate) and flushes file contents
  /// to stable storage. Throws CheckpointError(kWriteFailed) on failure; the
  /// file may then hold any prefix of `data`.
  virtual void write_file_durable(const std::filesystem::path& path,
                                  const std::vector<std::uint8_t>& data) = 0;

  /// Atomically replaces `to` with `from`, then flushes the parent directory
  /// so the rename itself survives power loss. Throws
  /// CheckpointError(kWriteFailed) on failure.
  virtual void rename_durable(const std::filesystem::path& from,
                              const std::filesystem::path& to) = 0;

  /// Best-effort unlink (cleanup paths must not throw over an ENOENT).
  virtual void remove_file(const std::filesystem::path& path) noexcept = 0;
};

/// The process's real POSIX-backed FileOps.
[[nodiscard]] FileOps& real_file_ops() noexcept;

struct CheckpointWriterOptions {
  std::filesystem::path directory;
  /// Snapshot every N interval closes (>= 1).
  std::size_t every = 1;
  /// Complete checkpoints retained; after each successful write, older
  /// files beyond this count are pruned (>= 1).
  std::size_t keep = 2;
  /// Feed the scd_ckpt_* instruments (docs/OBSERVABILITY.md).
  bool metrics = true;
  /// File-system seam; null means real_file_ops().
  FileOps* file_ops = nullptr;
};

/// Writes atomic checkpoint files named ckpt-<interval, zero-padded>.scdc
/// into a directory, keeping the newest `keep`. One writer owns a directory;
/// concurrent writers into the same directory are not coordinated.
class CheckpointWriter {
 public:
  /// `config` is the pipeline configuration whose fingerprint every written
  /// file carries. Creates the directory if needed (throws
  /// CheckpointError(kWriteFailed) when that fails).
  CheckpointWriter(CheckpointWriterOptions options,
                   const core::PipelineConfig& config);
  /// Detaches from an attached parallel pipeline first (draining its
  /// merger), so a writer destroyed before the pipeline can never be
  /// called into from the merger thread afterwards.
  ~CheckpointWriter();
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  /// True when `intervals_closed` (from the interval-close callback) lands
  /// on the writer's cadence.
  [[nodiscard]] bool due(std::size_t intervals_closed) const noexcept;

  /// Frames `state` (a pipeline save_state() stream) and writes it
  /// atomically. Returns the final path. Throws
  /// CheckpointError(kWriteFailed) on I/O failure — the directory then still
  /// holds the previous checkpoints, never a half-written current one.
  std::filesystem::path write(PayloadKind kind, std::uint64_t interval_index,
                              const std::vector<std::uint8_t>& state);

  /// Installs an interval-close callback on `pipeline` that snapshots every
  /// `options.every` closes. Write failures inside the callback are logged
  /// and counted (scd_ckpt_write_failures_total), not thrown — a full disk
  /// must not kill a live detection stream. The writer must outlive the
  /// pipeline's use of the callback.
  void attach(core::ChangeDetectionPipeline& pipeline);
  /// The parallel overload's callback runs on the pipeline's merger
  /// thread. Either the writer outlives the pipeline, or — when destroyed
  /// first — the pipeline must still be alive so the destructor can drain
  /// and detach.
  void attach(ingest::ParallelPipeline& pipeline);

  /// Drains the attached parallel pipeline's outstanding interval merges
  /// (writing any due checkpoints) and uninstalls the callback. Called
  /// automatically by the destructor; no-op for serial attachments or when
  /// never attached.
  void detach() noexcept;

  [[nodiscard]] const CheckpointWriterOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  void prune() noexcept;

  CheckpointWriterOptions options_;
  std::uint64_t fingerprint_;
  FileOps* ops_;  // never null after construction
  ingest::ParallelPipeline* attached_ = nullptr;
};

/// Outcome of a recover() scan.
struct RecoverResult {
  /// True when a valid checkpoint was restored into the pipeline.
  bool restored = false;
  /// Path of the checkpoint used (empty when !restored).
  std::filesystem::path path;
  /// Interval index the restored snapshot was taken at.
  std::uint64_t interval_index = 0;
  /// Candidate files skipped as corrupt, truncated, or unreadable.
  std::size_t skipped = 0;
};

/// Scans `directory` newest-first and restores the newest valid checkpoint
/// into `pipeline`, which must be freshly constructed (restore precedes
/// set_report_callback — restoring replaces the pipeline wholesale, so
/// callbacks installed earlier would be lost silently).
///
/// Corrupt, truncated or unreadable files are skipped with a logged reason
/// and counted (scd_ckpt_restore_skipped_total); the state is first loaded
/// into a scratch pipeline so a failure mid-restore never leaves `pipeline`
/// half-mutated. A checkpoint whose config fingerprint or payload kind does
/// not match throws CheckpointError(kConfigMismatch): silently falling back
/// to an older file would mask an operator error. When no valid checkpoint
/// exists, returns restored = false and leaves `pipeline` untouched.
[[nodiscard]] RecoverResult recover(const std::filesystem::path& directory,
                                    core::ChangeDetectionPipeline& pipeline);
[[nodiscard]] RecoverResult recover(const std::filesystem::path& directory,
                                    ingest::ParallelPipeline& pipeline);

/// One decoded checkpoint file: the validated header fields plus the raw
/// (CRC-checked) payload bytes. The payload is still opaque here — restoring
/// it into a pipeline is recover()'s job.
struct CheckpointFrame {
  PayloadKind kind = PayloadKind::kSerial;
  std::uint64_t config_fingerprint = 0;
  std::uint64_t interval_index = 0;
  std::vector<std::uint8_t> payload;
};

/// Parses and validates a whole checkpoint file image: magic, header CRC,
/// version, payload kind, length, and payload CRC, in that order. Throws
/// CheckpointError with the specific kind on the first violation. This is
/// the exact parser recover() runs on untrusted on-disk bytes, exposed so
/// the fuzz harness (fuzz/fuzz_checkpoint.cpp) can drive it directly.
[[nodiscard]] CheckpointFrame decode_checkpoint_frame(
    const std::vector<std::uint8_t>& bytes);

/// Inverse of decode_checkpoint_frame: frames `payload` with a valid header.
/// Exposed for corpus generation and round-trip tests.
[[nodiscard]] std::vector<std::uint8_t> encode_checkpoint_frame(
    PayloadKind kind, std::uint64_t config_fingerprint,
    std::uint64_t interval_index, const std::vector<std::uint8_t>& payload);

/// Checkpoint file names for `interval_index`: "ckpt-<20-digit index>.scdc".
[[nodiscard]] std::string checkpoint_filename(std::uint64_t interval_index);

/// Lists complete checkpoint files ("ckpt-*.scdc") in `directory`, sorted
/// newest (highest NUMERIC interval) first — the index is parsed from the
/// name rather than compared lexicographically, so an unpadded "ckpt-5.scdc"
/// never outranks interval 100, and two spellings of the same interval
/// tie-break on the filename (ascending) for a total order independent of
/// directory-iteration order. Names whose index does not parse sort last.
/// Missing directory = empty list.
[[nodiscard]] std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& directory);

}  // namespace scd::checkpoint
