// CRC-32 (ISO-HDLC / zlib polynomial 0xEDB88320), table-driven.
//
// Used to frame checkpoint sections (src/checkpoint) so that a torn write,
// a truncated rename, or a flipped bit is detected before any state is
// deserialized. Not cryptographic — it guards against storage corruption,
// not an adversary.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scd::common {

/// Incremental CRC-32: feed `crc32_update(seed, ...)` chunks, starting from
/// `kCrc32Init` and finishing with `crc32_finish`. The one-shot `crc32`
/// covers the whole-buffer case.
inline constexpr std::uint32_t kCrc32Init = 0xffffffffu;

[[nodiscard]] std::uint32_t crc32_update(std::uint32_t state, const void* data,
                                         std::size_t size) noexcept;

[[nodiscard]] constexpr std::uint32_t crc32_finish(std::uint32_t state) noexcept {
  return state ^ 0xffffffffu;
}

/// CRC-32 of one contiguous buffer ("123456789" -> 0xcbf43926).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size) noexcept;

}  // namespace scd::common
