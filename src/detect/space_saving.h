// Space-Saving heavy-hitter detection (Metwally et al.) — the baseline the
// paper's §1.1 positions against: "heavy-hitters do not necessarily
// correspond to flows experiencing significant changes". This implementation
// lets the ablation bench quantify that claim: the overlap between the top-N
// heavy hitters and the top-N heavy *changers* on the same interval is low
// precisely when change detection matters (attacks against normally-cold
// keys).
//
// Weighted variant: a fixed budget of counters; an unmonitored key evicts
// the minimum counter and inherits its count as overestimation error.
// Guarantees: every key with true weight > W/capacity is monitored, and
// count - error <= true weight <= count.
#pragma once

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace scd::detect {

class SpaceSaving {
 public:
  struct Entry {
    std::uint64_t key = 0;
    double count = 0.0;  // upper bound on the key's weight
    double error = 0.0;  // overestimation inherited at adoption
  };

  /// Budget of monitored keys. Memory is O(capacity), independent of the
  /// stream.
  explicit SpaceSaving(std::size_t capacity);

  /// Adds weight (must be >= 0; heavy-hitter counting is insertion-only).
  void update(std::uint64_t key, double weight);

  /// The n largest counters, sorted by count descending.
  [[nodiscard]] std::vector<Entry> top(std::size_t n) const;

  /// Lower-bound guaranteed weight (count - error) for a key; 0 if the key
  /// is not monitored.
  [[nodiscard]] double guaranteed(std::uint64_t key) const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] double total_weight() const noexcept { return total_; }

  void clear();

 private:
  struct Slot {
    double count = 0.0;
    double error = 0.0;
    std::multimap<double, std::uint64_t>::iterator order_it;
  };

  std::size_t capacity_;
  double total_ = 0.0;
  std::unordered_map<std::uint64_t, Slot> entries_;
  // count -> key, ascending; begin() is the eviction candidate.
  std::multimap<double, std::uint64_t> order_;
};

}  // namespace scd::detect
