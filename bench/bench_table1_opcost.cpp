// Table 1: running time for 10 million hash computations and sketch
// operations (paper §5.3).
//
//   paper, 10M ops:        computer A (400 MHz)   computer B (900 MHz)
//     8x16-bit hash values         0.34 s                0.89 s
//     UPDATE  (H=5, K=2^16)        0.81 s                0.45 s
//     ESTIMATE(H=5, K=2^16)        2.69 s                1.46 s
//
// Absolute numbers on modern hardware are far smaller; the shape to
// reproduce is (a) all three operations are cheap enough for line-rate
// processing and (b) ESTIMATE costs a small multiple of UPDATE.
#include <array>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "hash/tabulation_hash.h"
#include "sketch/kary_sketch.h"
#include "support/bench_util.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Table 1", "running time of 10M hash / UPDATE / ESTIMATE operations",
      "ops are tens of ns; ESTIMATE ~ 2-3x UPDATE; hash is cheapest");

  constexpr std::size_t kOps = 10'000'000;
  constexpr std::size_t kH = 8;       // 8 packed 16-bit values per key
  constexpr std::size_t kSketchH = 5;
  constexpr std::size_t kK = 1u << 16;

  // Pre-draw keys so RNG cost is excluded, as in the paper's methodology.
  std::vector<std::uint32_t> keys(1u << 20);
  common::Rng rng(1);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_u64());

  const hash::TabulationHashFamily family(42, kH);
  volatile std::uint64_t sink = 0;

  // --- 8 x 16-bit hash values per key --------------------------------------
  common::Stopwatch sw;
  {
    std::array<std::uint16_t, kH> out{};
    for (std::size_t i = 0; i < kOps; ++i) {
      family.hash_all(keys[i & (keys.size() - 1)], out.data());
      sink = sink + out[0];
    }
  }
  const double hash_s = sw.seconds();

  // --- UPDATE (H=5, K=2^16) -------------------------------------------------
  const auto sketch_family = sketch::make_tabulation_family(43, kSketchH);
  sketch::KarySketch sketch(sketch_family, kK);
  sw.reset();
  for (std::size_t i = 0; i < kOps; ++i) {
    sketch.update(keys[i & (keys.size() - 1)], 1.0);
  }
  const double update_s = sw.seconds();

  // --- batched UPDATE (same ops via update_batch) ---------------------------
  // The same 10M (key, 1.0) updates handed over as chunks, the way the
  // sharded ingest front-end applies them (docs/PERFORMANCE.md).
  std::vector<sketch::Record> records(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    records[i] = sketch::Record{keys[i], 1.0};
  }
  sketch::KarySketch batched_sketch(sketch_family, kK);
  sw.reset();
  for (std::size_t done = 0; done < kOps; done += records.size()) {
    batched_sketch.update_batch(records);
  }
  const double batched_s = sw.seconds();

  // --- ESTIMATE (H=5, K=2^16) ------------------------------------------------
  (void)sketch.sum();  // computed once per batch, as the paper specifies
  sw.reset();
  double acc = 0.0;
  for (std::size_t i = 0; i < kOps; ++i) {
    acc += sketch.estimate(keys[i & (keys.size() - 1)]);
  }
  const double estimate_s = sw.seconds();
  sink = sink + static_cast<std::uint64_t>(acc);

  std::printf("\n%-34s %12s %14s\n", "operation (10M ops)", "this host",
              "per op");
  std::printf("%-34s %10.3f s %11.1f ns\n", "compute 8 16-bit hash values",
              hash_s, hash_s / kOps * 1e9);
  // update_batch applies whole 2^20-record chunks, so it runs the smallest
  // chunk multiple covering kOps; per-op figures use its actual op count.
  const auto batched_ops = static_cast<double>(
      ((kOps + records.size() - 1) / records.size()) * records.size());
  std::printf("%-34s %10.3f s %11.1f ns\n", "UPDATE   (H=5, K=65536)",
              update_s, update_s / kOps * 1e9);
  std::printf("%-34s %10.3f s %11.1f ns\n", "UPDATE batched (update_batch)",
              batched_s / batched_ops * kOps, batched_s / batched_ops * 1e9);
  std::printf("%-34s %10.2fx\n", "  batched speedup per UPDATE",
              (update_s / kOps) / (batched_s / batched_ops));
  std::printf("%-34s %10.3f s %11.1f ns\n", "ESTIMATE (H=5, K=65536)",
              estimate_s, estimate_s / kOps * 1e9);
  std::printf("(paper: A=0.34/0.81/2.69 s, B=0.89/0.45/1.46 s on 2003-era "
              "hardware)\n\n");

  bench::check(update_s < 10.0, "UPDATE keeps up with line rate",
               common::str_format("%.0f ns/op", update_s / kOps * 1e9));
  const double ratio = estimate_s / update_s;
  bench::check(ratio > 1.0 && ratio < 8.0,
               "ESTIMATE costs a small multiple of UPDATE (paper: ~2-3x)",
               common::str_format("ratio=%.2f", ratio));
  bench::check(hash_s < update_s,
               "hashing alone is cheaper than a full UPDATE",
               common::str_format("hash=%.2fs update=%.2fs", hash_s, update_s));
  const double batched_per_op = batched_s / batched_ops;
  bench::check(batched_per_op <= update_s / kOps,
               "batched UPDATE costs no more per op than per-record UPDATE",
               common::str_format("%.1f vs %.1f ns/op", batched_per_op * 1e9,
                                  update_s / kOps * 1e9));
  (void)sink;
  return bench::finish();
}
