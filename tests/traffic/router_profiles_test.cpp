// Router-catalog invariants: the ten profiles must keep the size spread and
// statistical properties the evaluation depends on (DESIGN.md maps them to
// the paper's ten NetFlow files). Generates the three named profiles at
// reduced duration to keep the test fast.
#include <gtest/gtest.h>

#include <unordered_set>

#include "eval/intervalized.h"
#include "traffic/router_profiles.h"
#include "traffic/synthetic.h"

namespace scd::traffic {
namespace {

TEST(RouterProfiles, SizeClassesSpanAnOrderOfMagnitude) {
  const auto& large = router_by_name("large").config;
  const auto& small = router_by_name("small").config;
  EXPECT_GE(large.base_rate / small.base_rate, 10.0);
}

TEST(RouterProfiles, SeedsAreDistinct) {
  std::unordered_set<std::uint64_t> seeds;
  for (const auto& profile : router_catalog()) {
    EXPECT_TRUE(seeds.insert(profile.config.seed).second) << profile.name;
  }
}

TEST(RouterProfiles, NamesAreDistinctAndWellFormed) {
  std::unordered_set<std::string> names;
  for (const auto& profile : router_catalog()) {
    EXPECT_TRUE(names.insert(profile.name).second);
    EXPECT_EQ(profile.name.size(), 3u);
    EXPECT_EQ(profile.name[0], 'r');
  }
}

TEST(RouterProfiles, GeneratedVolumeMatchesRateShortHorizon) {
  for (const char* name : {"large", "medium", "small"}) {
    auto config = router_by_name(name).config;
    config.duration_s = 300.0;  // shortened for test speed
    config.anomalies.clear();
    SyntheticTraceGenerator generator(config);
    const auto records = generator.generate();
    const double expected = config.base_rate * config.duration_s;
    EXPECT_GT(static_cast<double>(records.size()), 0.5 * expected) << name;
    EXPECT_LT(static_cast<double>(records.size()), 1.6 * expected) << name;
  }
}

TEST(RouterProfiles, DistinctKeysPerIntervalExceedSmallK) {
  // The H/K sweeps only show collision effects when distinct keys per
  // interval exceed the small K values (1024); verify on the medium router.
  auto config = router_by_name("medium").config;
  config.duration_s = 300.0;
  config.anomalies.clear();
  SyntheticTraceGenerator generator(config);
  const auto records = generator.generate();
  const eval::IntervalizedStream stream(records, 300.0, KeyKind::kDstIp,
                                        UpdateKind::kBytes);
  ASSERT_GE(stream.num_intervals(), 1u);
  EXPECT_GT(stream.interval(0).size(), 1024u);
}

}  // namespace
}  // namespace scd::traffic
