#include "net/socket.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <utility>

namespace scd::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  // strerror races only garble the message, never the thrown kind.
  throw WireError(
      WireErrorKind::kIo,
      what + ": " + std::strerror(errno));  // NOLINT(concurrency-mt-unsafe)
}

[[nodiscard]] in_addr resolve_host(const std::string& host) {
  in_addr addr{};
  const std::string dotted =
      (host.empty() || host == "localhost") ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, dotted.c_str(), &addr) != 1) {
    throw WireError(WireErrorKind::kIo,
                    "cannot parse host \"" + host +
                        "\" (IPv4 dotted quad or \"localhost\")");
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Socket Socket::connect_tcp(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  Socket out(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolve_host(host);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("connect " + host + ":" + std::to_string(port));
  }
  // One small frame per interval: latency over batching.
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return out;
}

void Socket::send_all(std::span<const std::uint8_t> bytes) {
  if (!valid()) {
    throw WireError(WireErrorKind::kIo, "send on a closed socket");
  }
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // process with SIGPIPE.
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::size_t Socket::recv_some(std::uint8_t* buffer, std::size_t capacity) {
  if (!valid()) {
    throw WireError(WireErrorKind::kIo, "recv on a closed socket");
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, buffer, capacity, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

void Socket::set_recv_timeout(double seconds) {
  if (!valid()) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      std::lround((seconds - std::floor(seconds)) * 1e6));
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Socket::shutdown_both() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

ListenSocket::~ListenSocket() { close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

ListenSocket ListenSocket::listen_tcp(const std::string& host,
                                      std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  ListenSocket out;
  out.fd_ = fd;
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr = resolve_host(host);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) throw_errno("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    throw_errno("getsockname");
  }
  out.port_ = ntohs(bound.sin_port);
  return out;
}

Socket ListenSocket::accept() {
  if (!valid()) {
    throw WireError(WireErrorKind::kIo, "accept on a closed socket");
  }
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw_errno("accept");
    }
    return Socket(fd);
  }
}

void ListenSocket::close() noexcept {
  if (fd_ >= 0) {
    // shutdown() first so a thread blocked in accept() wakes immediately
    // instead of waiting for a connection that will never come.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace scd::net
