// End-to-end: synthetic trace with ground-truth anomalies -> trace file ->
// pipeline -> alarms. Exercises every layer of the library together the way
// the examples and benches do.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>

#include "core/pipeline.h"
#include "eval/intervalized.h"
#include "eval/metrics.h"
#include "eval/sketch_path.h"
#include "eval/truth.h"
#include "forecast/runner.h"
#include "sketch/serialize.h"
#include "traffic/synthetic.h"
#include "traffic/trace_io.h"

namespace {

using namespace scd;

traffic::SyntheticConfig scenario_config() {
  traffic::SyntheticConfig config;
  config.seed = 21;
  config.duration_s = 3600.0;
  config.base_rate = 60.0;
  config.num_hosts = 2000;
  config.zipf_exponent = 1.05;
  traffic::AnomalySpec dos;
  dos.kind = traffic::AnomalyKind::kDosAttack;
  dos.start_s = 1800.0;
  dos.duration_s = 300.0;
  dos.magnitude = 250.0;
  dos.target_rank = 150;
  config.anomalies.push_back(dos);
  traffic::AnomalySpec crowd;
  crowd.kind = traffic::AnomalyKind::kFlashCrowd;
  crowd.start_s = 2700.0;
  crowd.duration_s = 600.0;
  crowd.magnitude = 200.0;
  crowd.target_rank = 500;
  config.anomalies.push_back(crowd);
  return config;
}

class EndToEndTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    generator_ = new traffic::SyntheticTraceGenerator(scenario_config());
    trace_ = new std::vector<traffic::FlowRecord>(generator_->generate());
  }
  static void TearDownTestSuite() {
    delete trace_;
    delete generator_;
    trace_ = nullptr;
    generator_ = nullptr;
  }

  static traffic::SyntheticTraceGenerator* generator_;
  static std::vector<traffic::FlowRecord>* trace_;
};

traffic::SyntheticTraceGenerator* EndToEndTest::generator_ = nullptr;
std::vector<traffic::FlowRecord>* EndToEndTest::trace_ = nullptr;

TEST_F(EndToEndTest, PipelineFlagsDosTargetDuringAttack) {
  core::PipelineConfig config;
  config.interval_s = 300.0;
  config.h = 5;
  config.k = 32768;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.6;
  config.threshold = 0.1;
  core::ChangeDetectionPipeline pipeline(config);
  for (const auto& r : *trace_) pipeline.add_record(r);
  pipeline.flush();

  const auto target = generator_->dst_ip_of_rank(150);
  // Attack spans 1800-2100 s -> interval index 6 (1800-2100).
  bool flagged = false;
  for (const auto& report : pipeline.reports()) {
    if (report.start_s >= 1800.0 - 1.0 && report.start_s < 2100.0) {
      for (const auto& alarm : report.alarms) {
        if (alarm.key == target && alarm.error > 0) flagged = true;
      }
    }
  }
  EXPECT_TRUE(flagged);
}

TEST_F(EndToEndTest, FlashCrowdTargetIsFlaggedOnRamp) {
  core::PipelineConfig config;
  config.interval_s = 300.0;
  config.k = 32768;
  config.model.kind = forecast::ModelKind::kHoltWinters;
  config.model.alpha = 0.6;
  config.model.beta = 0.3;
  config.threshold = 0.1;
  core::ChangeDetectionPipeline pipeline(config);
  for (const auto& r : *trace_) pipeline.add_record(r);
  pipeline.flush();

  const auto target = generator_->dst_ip_of_rank(500);
  bool flagged = false;
  for (const auto& report : pipeline.reports()) {
    if (report.start_s >= 2700.0 - 1.0 && report.start_s < 3300.0) {
      for (const auto& alarm : report.alarms) {
        if (alarm.key == target) flagged = true;
      }
    }
  }
  EXPECT_TRUE(flagged);
}

TEST_F(EndToEndTest, QuietPeriodHasFewAlarmsAtHighThreshold) {
  core::PipelineConfig config;
  config.interval_s = 300.0;
  config.k = 32768;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.6;
  config.threshold = 0.3;
  core::ChangeDetectionPipeline pipeline(config);
  for (const auto& r : *trace_) pipeline.add_record(r);
  pipeline.flush();
  std::size_t quiet_alarms = 0;
  for (const auto& report : pipeline.reports()) {
    if (report.detection_ran && report.end_s <= 1800.0) {
      quiet_alarms += report.alarms.size();
    }
  }
  EXPECT_LE(quiet_alarms, 10u);
}

TEST_F(EndToEndTest, TraceFileRoundTripFeedsPipelineIdentically) {
  const auto dir = std::filesystem::temp_directory_path() / "scd_e2e";
  std::filesystem::create_directories(dir);
  const auto path = (dir / "scenario.scdt").string();
  traffic::write_trace(path, *trace_);
  const auto reread = traffic::read_trace(path);
  std::remove(path.c_str());
  ASSERT_EQ(reread.size(), trace_->size());

  core::PipelineConfig config;
  config.interval_s = 600.0;
  config.k = 8192;
  core::ChangeDetectionPipeline p1(config), p2(config);
  for (const auto& r : *trace_) p1.add_record(r);
  for (const auto& r : reread) p2.add_record(r);
  p1.flush();
  p2.flush();
  ASSERT_EQ(p1.reports().size(), p2.reports().size());
  for (std::size_t i = 0; i < p1.reports().size(); ++i) {
    EXPECT_EQ(p1.reports()[i].alarms.size(), p2.reports()[i].alarms.size());
    EXPECT_DOUBLE_EQ(p1.reports()[i].estimated_error_f2,
                     p2.reports()[i].estimated_error_f2);
  }
}

TEST_F(EndToEndTest, OfflineEvalAgreesWithPipelineOnTopKey) {
  // The offline two-pass eval path and the online pipeline should both rank
  // the DoS target first during the attack interval.
  eval::IntervalizedStream stream(*trace_, 300.0, traffic::KeyKind::kDstIp,
                                  traffic::UpdateKind::kBytes);
  forecast::ModelConfig model;
  model.kind = forecast::ModelKind::kEwma;
  model.alpha = 0.6;
  eval::SketchPathOptions options;
  options.k = 32768;
  const auto sketch = eval::compute_sketch_errors(stream, model, options);
  const auto truth = eval::compute_perflow_truth(stream, model);
  const std::size_t t = 6;  // 1800-2100 s
  ASSERT_TRUE(sketch.intervals[t].ready);
  const auto target = generator_->dst_ip_of_rank(150);
  ASSERT_FALSE(sketch.intervals[t].ranked.empty());
  EXPECT_EQ(sketch.intervals[t].ranked[0].key, target);
  EXPECT_EQ(truth.intervals[t].ranked[0].key, target);
}

TEST_F(EndToEndTest, MultiRouterCombineSeesDistributedChange) {
  // Two vantage points over a shared host space; each carries half of a
  // surge. Serialized sketches are combined at a collector; the combined
  // error sketch must estimate the full change volume.
  traffic::SyntheticConfig base = scenario_config();
  base.anomalies.clear();
  base.host_space_seed = 31337;
  base.duration_s = 1200.0;
  base.base_rate = 40.0;
  auto c1 = base, c2 = base;
  c1.seed = 51;
  c2.seed = 52;
  traffic::SyntheticTraceGenerator g1(c1), g2(c2);
  const std::uint32_t victim = g1.dst_ip_of_rank(123);
  ASSERT_EQ(victim, g2.dst_ip_of_rank(123));

  const auto family = sketch::make_tabulation_family(9001, 5);
  auto sketch_stream = [&](const std::vector<traffic::FlowRecord>& records,
                           bool inject) {
    eval::IntervalizedStream stream(records, 300.0, traffic::KeyKind::kDstIp,
                                    traffic::UpdateKind::kBytes);
    std::vector<std::vector<std::uint8_t>> out;
    for (std::size_t t = 0; t < 4; ++t) {
      sketch::KarySketch observed(family, 8192);
      if (t < stream.num_intervals()) stream.fill_observed_sketch(t, observed);
      if (inject && t == 3) observed.update(victim, 5e6);  // half the surge
      out.push_back(sketch::sketch_to_bytes(observed));
    }
    return out;
  };
  const auto e1 = sketch_stream(g1.generate(), true);
  const auto e2 = sketch_stream(g2.generate(), true);

  sketch::FamilyRegistry registry;
  forecast::ModelConfig model;
  model.kind = forecast::ModelKind::kEwma;
  model.alpha = 0.5;
  sketch::KarySketch prototype = sketch::sketch_from_bytes(e1[0], registry);
  prototype.set_zero();
  forecast::ForecastRunner<sketch::KarySketch> runner(model, prototype);
  double final_estimate = 0.0;
  for (std::size_t t = 0; t < 4; ++t) {
    auto combined = sketch::sketch_from_bytes(e1[t], registry);
    combined.add_scaled(sketch::sketch_from_bytes(e2[t], registry), 1.0);
    if (const auto step = runner.step(combined); step.has_value() && t == 3) {
      final_estimate = step->error.estimate(victim);
    }
  }
  // Both halves of the surge must be visible in the combined error sketch.
  EXPECT_GT(final_estimate, 8e6);
}

TEST_F(EndToEndTest, SketchAccuracyHoldsOnRealisticTrace) {
  eval::IntervalizedStream stream(*trace_, 300.0, traffic::KeyKind::kDstIp,
                                  traffic::UpdateKind::kBytes);
  forecast::ModelConfig model;
  model.kind = forecast::ModelKind::kEwma;
  model.alpha = 0.6;
  const auto truth = eval::compute_perflow_truth(stream, model);
  eval::SketchPathOptions options;
  options.k = 32768;
  options.h = 5;
  const auto sketch = eval::compute_sketch_errors(stream, model, options);
  double total_similarity = 0.0;
  int n = 0;
  for (std::size_t t = 2; t < stream.num_intervals(); ++t) {
    if (!truth.intervals[t].ready) continue;
    total_similarity += eval::topn_similarity(truth.intervals[t].ranked,
                                              sketch.intervals[t].ranked, 50);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(total_similarity / n, 0.9);  // paper Fig 5: ~0.95+ at K=32K
}

}  // namespace
