// Arithmetic modulo the Mersenne prime p = 2^61 - 1, the field underlying the
// Carter-Wegman polynomial hash family (paper refs [10, 39]). Mersenne form
// lets us reduce without division.
#pragma once

#include <cstdint>

namespace scd::hash {

inline constexpr std::uint64_t kMersenne61 = (1ULL << 61) - 1;

/// Reduces any 64-bit value into [0, p). Input may be up to 2^64-1.
[[nodiscard]] constexpr std::uint64_t reduce61(std::uint64_t x) noexcept {
  x = (x & kMersenne61) + (x >> 61);
  if (x >= kMersenne61) x -= kMersenne61;
  return x;
}

/// (a + b) mod p for a, b < p.
[[nodiscard]] constexpr std::uint64_t add_mod61(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  std::uint64_t s = a + b;  // < 2^62, no overflow
  if (s >= kMersenne61) s -= kMersenne61;
  return s;
}

/// (a * b) mod p for a, b < p, via 128-bit intermediate.
[[nodiscard]] constexpr std::uint64_t mul_mod61(std::uint64_t a,
                                                std::uint64_t b) noexcept {
  const unsigned __int128 z = static_cast<unsigned __int128>(a) * b;
  const auto lo = static_cast<std::uint64_t>(z & kMersenne61);
  const auto hi = static_cast<std::uint64_t>(z >> 61);
  // lo < 2^61, hi < 2^67/2^61... hi < 2^61 as well since a,b < 2^61 implies
  // z < 2^122 so hi < 2^61. Their sum fits in 64 bits.
  return add_mod61(lo, reduce61(hi));
}

}  // namespace scd::hash
