#include "traffic/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <unordered_map>

#include "traffic/router_profiles.h"

namespace scd::traffic {
namespace {

SyntheticConfig small_config() {
  SyntheticConfig config;
  config.seed = 7;
  config.duration_s = 600.0;
  config.base_rate = 50.0;
  config.num_hosts = 500;
  config.zipf_exponent = 1.1;
  config.diurnal_amplitude = 0.2;
  return config;
}

TEST(SyntheticTrace, IsDeterministic) {
  SyntheticTraceGenerator g1(small_config()), g2(small_config());
  EXPECT_EQ(g1.generate(), g2.generate());
}

TEST(SyntheticTrace, DifferentSeedsDiffer) {
  auto config = small_config();
  SyntheticTraceGenerator g1(config);
  config.seed = 8;
  SyntheticTraceGenerator g2(config);
  EXPECT_NE(g1.generate(), g2.generate());
}

TEST(SyntheticTrace, RecordsAreTimeOrdered) {
  SyntheticTraceGenerator g(small_config());
  const auto records = g.generate();
  ASSERT_FALSE(records.empty());
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_LE(records[i - 1].timestamp_us, records[i].timestamp_us);
  }
}

TEST(SyntheticTrace, RecordCountMatchesRate) {
  SyntheticTraceGenerator g(small_config());
  const auto records = g.generate();
  // 50 rec/s * 600 s = 30000 expected (+/- diurnal and Poisson noise).
  EXPECT_GT(records.size(), 20000u);
  EXPECT_LT(records.size(), 40000u);
}

TEST(SyntheticTrace, TimestampsWithinDuration) {
  SyntheticTraceGenerator g(small_config());
  for (const auto& r : g.generate()) {
    EXPECT_LT(record_time_s(r), 601.0);
  }
}

TEST(SyntheticTrace, PopularityIsHeavyTailed) {
  SyntheticTraceGenerator g(small_config());
  const auto records = g.generate();
  std::unordered_map<std::uint32_t, std::size_t> counts;
  for (const auto& r : records) ++counts[r.dst_ip];
  // Rank-0 host must dominate: it should carry >3% of records while the
  // population has 500 hosts (uniform share would be 0.2%).
  const auto rank0 = g.dst_ip_of_rank(0);
  EXPECT_GT(static_cast<double>(counts[rank0]) /
                static_cast<double>(records.size()),
            0.03);
}

TEST(SyntheticTrace, BytesArePositiveAndSkewed) {
  SyntheticTraceGenerator g(small_config());
  std::uint64_t max_bytes = 0;
  std::uint64_t total = 0;
  std::size_t n = 0;
  for (const auto& r : g.generate()) {
    EXPECT_GE(r.bytes, 40u);
    EXPECT_GE(r.packets, 1u);
    max_bytes = std::max(max_bytes, r.bytes);
    total += r.bytes;
    ++n;
  }
  const double mean = static_cast<double>(total) / static_cast<double>(n);
  EXPECT_GT(static_cast<double>(max_bytes), 10.0 * mean);  // heavy tail
}

TEST(SyntheticTrace, DosAttackInflatesTargetDuringWindow) {
  auto config = small_config();
  AnomalySpec dos;
  dos.kind = AnomalyKind::kDosAttack;
  dos.start_s = 200.0;
  dos.duration_s = 100.0;
  dos.magnitude = 200.0;
  dos.target_rank = 50;
  config.anomalies.push_back(dos);
  SyntheticTraceGenerator g(config);
  const auto target_ip = g.dst_ip_of_rank(50);
  std::size_t in_window = 0, outside = 0;
  for (const auto& r : g.generate()) {
    if (r.dst_ip != target_ip) continue;
    const double t = record_time_s(r);
    if (t >= 200.0 && t < 300.0) {
      ++in_window;
    } else {
      ++outside;
    }
  }
  // ~200 rec/s * 100 s of attack vs background trickle over 500 s.
  EXPECT_GT(in_window, 15000u);
  EXPECT_LT(outside, in_window / 10);
}

TEST(SyntheticTrace, FlashCrowdRampsUpAndDown) {
  auto config = small_config();
  AnomalySpec crowd;
  crowd.kind = AnomalyKind::kFlashCrowd;
  crowd.start_s = 100.0;
  crowd.duration_s = 400.0;
  crowd.magnitude = 300.0;
  crowd.target_rank = 99;
  config.anomalies.push_back(crowd);
  SyntheticTraceGenerator g(config);
  const auto target_ip = g.dst_ip_of_rank(99);
  std::map<int, std::size_t> per_quarter;  // quarters of the window
  for (const auto& r : g.generate()) {
    if (r.dst_ip != target_ip) continue;
    const double t = record_time_s(r);
    if (t >= 100.0 && t < 500.0) {
      ++per_quarter[static_cast<int>((t - 100.0) / 100.0)];
    }
  }
  // Triangular envelope: middle quarters busiest.
  EXPECT_GT(per_quarter[1], per_quarter[0]);
  EXPECT_GT(per_quarter[2], per_quarter[3]);
}

TEST(SyntheticTrace, PortScanTouchesManyDestinations) {
  auto config = small_config();
  AnomalySpec scan;
  scan.kind = AnomalyKind::kPortScan;
  scan.start_s = 100.0;
  scan.duration_s = 100.0;
  scan.magnitude = 100.0;
  config.anomalies.push_back(scan);
  SyntheticTraceGenerator g(config);
  std::unordered_map<std::uint32_t, std::size_t> dsts_before, dsts_during;
  for (const auto& r : g.generate()) {
    const double t = record_time_s(r);
    if (t < 100.0) ++dsts_before[r.dst_ip];
    if (t >= 100.0 && t < 200.0) ++dsts_during[r.dst_ip];
  }
  EXPECT_GT(dsts_during.size(), dsts_before.size() + 5000);
}

TEST(SyntheticTrace, OutageSuppressesTopDestinations) {
  auto config = small_config();
  AnomalySpec outage;
  outage.kind = AnomalyKind::kOutage;
  outage.start_s = 300.0;
  outage.duration_s = 200.0;
  outage.magnitude = 0.95;
  outage.target_rank = 5;  // top-5 hosts dark
  config.anomalies.push_back(outage);
  SyntheticTraceGenerator g(config);
  std::size_t top_before = 0, top_during = 0;
  std::vector<std::uint32_t> top_ips;
  for (std::size_t rank = 0; rank < 5; ++rank) {
    top_ips.push_back(g.dst_ip_of_rank(rank));
  }
  for (const auto& r : g.generate()) {
    if (std::find(top_ips.begin(), top_ips.end(), r.dst_ip) == top_ips.end()) {
      continue;
    }
    const double t = record_time_s(r);
    if (t < 300.0) ++top_before;
    if (t >= 300.0 && t < 500.0) ++top_during;
  }
  // Before-window is 300 s, outage window is 200 s; with 95% suppression the
  // during-window count must be far below the pro-rated baseline.
  EXPECT_LT(static_cast<double>(top_during),
            0.25 * static_cast<double>(top_before) * (200.0 / 300.0));
}

TEST(SyntheticTrace, SharedHostSpaceAlignsAddresses) {
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed = 99;  // different traffic
  c1.host_space_seed = 4242;
  c2.host_space_seed = 4242;  // same address space
  SyntheticTraceGenerator g1(c1), g2(c2);
  for (std::size_t rank = 0; rank < 100; ++rank) {
    EXPECT_EQ(g1.dst_ip_of_rank(rank), g2.dst_ip_of_rank(rank));
  }
  EXPECT_NE(g1.generate(), g2.generate());  // traffic still differs
}

TEST(SyntheticTrace, HostSpaceSeedZeroFallsBackToSeed) {
  auto c1 = small_config();
  auto c2 = small_config();
  c2.seed = 99;
  SyntheticTraceGenerator g1(c1), g2(c2);
  EXPECT_NE(g1.dst_ip_of_rank(0), g2.dst_ip_of_rank(0));
}

TEST(TraceStats, SummarizesCorrectly) {
  std::vector<FlowRecord> records(3);
  records[0].timestamp_us = 0;
  records[0].bytes = 100;
  records[0].dst_ip = 1;
  records[1].timestamp_us = 1000000;
  records[1].bytes = 200;
  records[1].dst_ip = 2;
  records[2].timestamp_us = 2000000;
  records[2].bytes = 300;
  records[2].dst_ip = 1;
  const auto stats = summarize_trace(records);
  EXPECT_EQ(stats.records, 3u);
  EXPECT_EQ(stats.total_bytes, 600u);
  EXPECT_EQ(stats.distinct_dsts, 2u);
  EXPECT_DOUBLE_EQ(stats.duration_s, 2.0);
  EXPECT_FALSE(stats.to_string().empty());
}

TEST(RouterCatalog, HasTenProfilesLargestFirst) {
  const auto& catalog = router_catalog();
  ASSERT_EQ(catalog.size(), 10u);
  for (std::size_t i = 1; i < catalog.size(); ++i) {
    EXPECT_GE(catalog[i - 1].config.base_rate, catalog[i].config.base_rate);
  }
}

TEST(RouterCatalog, NamedLookupWorks) {
  EXPECT_EQ(router_by_name("large").name, "r01");
  EXPECT_EQ(router_by_name("medium").name, "r05");
  EXPECT_EQ(router_by_name("small").name, "r10");
  EXPECT_EQ(router_by_name("r03").name, "r03");
  EXPECT_THROW((void)router_by_name("bogus"), std::out_of_range);
}

TEST(RouterCatalog, EveryProfileHasPostWarmupAnomalies) {
  for (const auto& profile : router_catalog()) {
    EXPECT_FALSE(profile.config.anomalies.empty()) << profile.name;
    for (const auto& a : profile.config.anomalies) {
      EXPECT_GE(a.start_s, 3600.0) << profile.name;  // after 1 h warm-up
      EXPECT_LE(a.start_s + a.duration_s, profile.config.duration_s)
          << profile.name;
    }
  }
}

}  // namespace
}  // namespace scd::traffic
