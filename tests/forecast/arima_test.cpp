// Hand-computed validation of the ARIMA recursions (§3.2.2) on scalars.
#include "forecast/arima.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

namespace scd::forecast {
namespace {

ArimaCoeffs coeffs(int p, int d, int q, std::array<double, 2> ar = {0, 0},
                   std::array<double, 2> ma = {0, 0}) {
  ArimaCoeffs c;
  c.p = p;
  c.d = d;
  c.q = q;
  c.ar = ar;
  c.ma = ma;
  return c;
}

std::vector<std::optional<double>> drive(ArimaModel<ScalarSignal>& model,
                                         const std::vector<double>& obs) {
  std::vector<std::optional<double>> forecasts;
  for (double o : obs) {
    if (model.ready()) {
      ScalarSignal f;
      model.forecast_into(f);
      forecasts.emplace_back(f.value());
    } else {
      forecasts.emplace_back(std::nullopt);
    }
    model.observe(ScalarSignal(o));
  }
  return forecasts;
}

TEST(Arima, Ar1MatchesRecursion) {
  // AR(1), d=0: f(t) = 0.8 * Z(t-1).
  ArimaModel<ScalarSignal> model(coeffs(1, 0, 0, {0.8, 0.0}), ScalarSignal{});
  const auto f = drive(model, {10.0, 5.0, 20.0});
  EXPECT_FALSE(f[0].has_value());
  EXPECT_DOUBLE_EQ(*f[1], 8.0);
  EXPECT_DOUBLE_EQ(*f[2], 4.0);
}

TEST(Arima, Ar2MatchesRecursion) {
  // AR(2): f(t) = 0.5 Z(t-1) + 0.3 Z(t-2); needs 2 observations.
  ArimaModel<ScalarSignal> model(coeffs(2, 0, 0, {0.5, 0.3}), ScalarSignal{});
  const auto f = drive(model, {10.0, 20.0, 4.0});
  EXPECT_FALSE(f[0].has_value());
  EXPECT_FALSE(f[1].has_value());
  EXPECT_DOUBLE_EQ(*f[2], 0.5 * 20.0 + 0.3 * 10.0);
}

TEST(Arima, Ma1UsesForecastErrors) {
  // MA(1), d=0: f(t) = 0.5 * e(t-1), with e the previous forecast error.
  ArimaModel<ScalarSignal> model(coeffs(0, 0, 1, {0, 0}, {0.5, 0.0}),
                                 ScalarSignal{});
  const auto f = drive(model, {10.0, 6.0, 7.0});
  // t=1: ready (p+d=0 -> needs max(1, 0)=1... first obs): no forecast yet.
  EXPECT_FALSE(f[0].has_value());
  // First forecast uses e=0 history: f = 0.
  EXPECT_DOUBLE_EQ(*f[1], 0.0);
  // e(2) = 6 - 0 = 6; f(3) = 0.5 * 6 = 3.
  EXPECT_DOUBLE_EQ(*f[2], 3.0);
}

TEST(Arima, Arma11CombinesBoth) {
  ArimaModel<ScalarSignal> model(coeffs(1, 0, 1, {0.6, 0.0}, {0.4, 0.0}),
                                 ScalarSignal{});
  const auto f = drive(model, {10.0, 8.0, 12.0});
  // f(2) = 0.6*10 + 0.4*e(1); e(1)=0 (no prior forecast) -> 6.
  EXPECT_DOUBLE_EQ(*f[1], 6.0);
  // e(2) = 8 - 6 = 2; f(3) = 0.6*8 + 0.4*2 = 5.6.
  EXPECT_DOUBLE_EQ(*f[2], 5.6);
}

TEST(Arima, D1ForecastsDeltasAndIntegrates) {
  // ARIMA(1,1,0): Z(t) = Y(t)-Y(t-1); f_Y(t) = Y(t-1) + 0.5 * Z(t-1).
  ArimaModel<ScalarSignal> model(coeffs(1, 1, 0, {0.5, 0.0}), ScalarSignal{});
  const auto f = drive(model, {10.0, 14.0, 15.0, 20.0});
  EXPECT_FALSE(f[0].has_value());
  EXPECT_FALSE(f[1].has_value());  // needs p + d = 2 observations
  // Z(2) = 4; f_Y(3) = 14 + 0.5*4 = 16.
  EXPECT_DOUBLE_EQ(*f[2], 16.0);
  // Z(3) = 1; f_Y(4) = 15 + 0.5*1 = 15.5.
  EXPECT_DOUBLE_EQ(*f[3], 15.5);
}

TEST(Arima, D1PureDriftModelOnLinearSeries) {
  // ARIMA(1,1,0) with ar1 = 1 would be non-stationary; use 0.99 — on a pure
  // linear ramp the forecast approaches the true next value.
  ArimaModel<ScalarSignal> model(coeffs(1, 1, 0, {0.99, 0.0}), ScalarSignal{});
  const auto f = drive(model, {0.0, 3.0, 6.0, 9.0, 12.0});
  EXPECT_NEAR(*f[3], 9.0, 0.1);
  EXPECT_NEAR(*f[4], 12.0, 0.1);
}

TEST(Arima, D1ErrorsAreOnDifferencedSeries) {
  // ARIMA(0,1,1): f_Z(t) = 0.5 e(t-1); e on the Z (differenced) level.
  ArimaModel<ScalarSignal> model(coeffs(0, 1, 1, {0, 0}, {0.5, 0.0}),
                                 ScalarSignal{});
  const auto f = drive(model, {10.0, 13.0, 13.0, 13.0});
  // Ready after d=1... first Z exists after obs 2. f_Y(2)? needs p+d=1 obs.
  // After obs1: ready (1 >= 1). f_Y(2) = Y(1) + 0 = 10.
  EXPECT_DOUBLE_EQ(*f[1], 10.0);
  // Z(2) = 3, f_Z(2) was 0 -> e(2) = 3. f_Y(3) = 13 + 0.5*3 = 14.5.
  EXPECT_DOUBLE_EQ(*f[2], 14.5);
  // Z(3) = 0, f_Z(3) = 1.5 -> e(3) = -1.5. f_Y(4) = 13 + 0.5*(-1.5) = 12.25.
  EXPECT_DOUBLE_EQ(*f[3], 12.25);
}

TEST(Arima, ObservedCountTracksFeeds) {
  ArimaModel<ScalarSignal> model(coeffs(1, 0, 0, {0.5, 0.0}), ScalarSignal{});
  EXPECT_EQ(model.observed_count(), 0u);
  model.observe(ScalarSignal(1.0));
  model.observe(ScalarSignal(2.0));
  EXPECT_EQ(model.observed_count(), 2u);
}

TEST(Arima, ZeroSeriesForecastsZero) {
  ArimaModel<ScalarSignal> model(coeffs(2, 0, 2, {0.4, 0.2}, {0.3, 0.1}),
                                 ScalarSignal{});
  const auto f = drive(model, {0.0, 0.0, 0.0, 0.0, 0.0});
  for (std::size_t t = 2; t < f.size(); ++t) {
    if (f[t].has_value()) {
      EXPECT_DOUBLE_EQ(*f[t], 0.0);
    }
  }
}

}  // namespace
}  // namespace scd::forecast
