// Keyed 32-bit Feistel permutation: maps flow-population ranks to
// pseudo-random but collision-free IPv4 addresses. Injectivity matters —
// two ranks sharing an address would silently merge their time series.
#pragma once

#include <cstdint>

#include "common/random.h"

namespace scd::traffic {

/// 4-round balanced Feistel network on 16-bit halves; a permutation of the
/// full 32-bit domain for any key.
[[nodiscard]] constexpr std::uint32_t feistel32(std::uint32_t x,
                                                std::uint64_t key) noexcept {
  std::uint32_t left = x >> 16;
  std::uint32_t right = x & 0xffff;
  for (int round = 0; round < 4; ++round) {
    const std::uint64_t mixed = scd::common::mix64(
        (static_cast<std::uint64_t>(right) << 32) ^ key ^
        (static_cast<std::uint64_t>(round) << 60));
    const std::uint32_t f = static_cast<std::uint32_t>(mixed) & 0xffff;
    const std::uint32_t new_right = left ^ f;
    left = right;
    right = new_right;
  }
  return (left << 16) | right;
}

}  // namespace scd::traffic
