// Change-detection result types (§3.3).
#pragma once

#include <cstdint>
#include <vector>

namespace scd::detect {

/// A (key, forecast-error) pair; the unit the detector ranks and thresholds.
struct KeyError {
  std::uint64_t key = 0;
  double error = 0.0;
};

/// An alarm raised for interval `interval`: the key's estimated forecast
/// error exceeded the alarm threshold T_A = T * sqrt(ESTIMATEF2(S_e(t))).
struct Alarm {
  std::size_t interval = 0;
  std::uint64_t key = 0;
  double error = 0.0;          // estimated forecast error (signed)
  double threshold_abs = 0.0;  // T_A in absolute units
};

}  // namespace scd::detect
