#include "obs/pipeline_metrics.h"

#include "obs/metrics.h"

namespace scd::obs {

namespace {

Histogram& stage_histogram(MetricsRegistry& registry, const char* stage) {
  return registry.histogram(
      "scd_pipeline_stage_seconds",
      "Latency of one pipeline stage execution, in seconds (see "
      "docs/OBSERVABILITY.md for the stage-to-paper mapping)",
      Histogram::default_latency_buckets(), {{"stage", stage}});
}

}  // namespace

PipelineInstruments PipelineInstruments::create(MetricsRegistry& registry) {
  return PipelineInstruments{
      registry.counter("scd_pipeline_records_total",
                       "Flow records fed into add_record/add"),
      registry.counter("scd_pipeline_intervals_closed_total",
                       "Detection intervals closed"),
      registry.counter("scd_pipeline_detections_total",
                       "Intervals where change detection ran (post warm-up)"),
      registry.counter("scd_pipeline_alarms_total",
                       "Alarms raised, by detection criterion",
                       {{"criterion", "threshold"}}),
      registry.counter("scd_pipeline_alarms_total",
                       "Alarms raised, by detection criterion",
                       {{"criterion", "topn"}}),
      registry.counter("scd_pipeline_keys_replayed_total",
                       "Candidate keys replayed through ESTIMATE"),
      registry.counter("scd_recovery_candidates_total",
                       "Candidate keys swept out of the error sketch's "
                       "buckets before verification (sketch-recovery modes)"),
      registry.counter("scd_recovery_keys_total",
                       "Recovered keys that survived median-estimate "
                       "verification (sketch-recovery modes)"),
      registry.counter(
          "scd_pipeline_hysteresis_suppressed_total",
          "Above-threshold keys withheld by min_consecutive hysteresis"),
      registry.counter("scd_pipeline_refits_total",
                       "Online grid-search model re-fits performed"),
      registry.counter("scd_pipeline_out_of_order_total",
                       "Records whose timestamp regressed below the stream "
                       "high-water mark (clamped into the open interval)"),
      registry.gauge("scd_pipeline_replay_buffer_keys",
                     "Sampled key-set size at the last interval close"),
      registry.gauge("scd_recovery_last_keys",
                     "Verified keys recovered by the latest detection "
                     "(sketch-recovery modes)"),
      registry.gauge("scd_pipeline_sketch_bytes",
                     "Register memory of the observed sketch (H*K*8)"),
      registry.gauge("scd_pipeline_last_alarm_threshold",
                     "Absolute alarm threshold T_A of the latest detection"),
      registry.gauge("scd_pipeline_last_error_l2",
                     "Estimated L2 norm of the latest error sketch"),
      stage_histogram(registry, "sketch_update"),
      stage_histogram(registry, "interval_close"),
      stage_histogram(registry, "forecast"),
      stage_histogram(registry, "estimate_f2"),
      stage_histogram(registry, "key_replay"),
      stage_histogram(registry, "refit"),
  };
}

PipelineInstruments& PipelineInstruments::global() {
  static PipelineInstruments instruments = create(MetricsRegistry::global());
  return instruments;
}

}  // namespace scd::obs
