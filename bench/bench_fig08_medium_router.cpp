// Figure 8: the Figure 5/6 experiments repeated on the medium router
// ("all files have similar output"). EWMA, H=5.
//   (a) 300 s: mean top-N similarity vs K in {8192, 32768, 65536}
//   (b) 60 s:  top-N vs top-X*N at K=8192
#include <cstdio>
#include <map>

#include "support/bench_util.h"
#include "support/experiments.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Figure 8", "similarity metrics on the medium router (EWMA, H=5)",
      "same shape as the large router: K=32768 accurate, X=1.5 closes the "
      "K=8192 gap");

  // (a) top-N vs K at 300 s.
  {
    const double interval = 300.0;
    std::printf("\n--- (a) top-N vs K, interval=300s ---\n");
    const auto& stream = bench::stream_for("medium", interval);
    const auto model = bench::cached_grid_model(
        "medium", interval, forecast::ModelKind::kEwma);
    const std::size_t warmup = bench::warmup_intervals(interval);
    const auto& truth = bench::truth_for(stream, model);
    std::map<std::size_t, double> sim_at_k;
    for (const std::size_t k : {8192u, 32768u, 65536u}) {
      const auto sketch = bench::sketch_errors_for(stream, model, 5, k);
      std::vector<std::pair<double, double>> points;
      for (const std::size_t n : {50u, 100u, 500u, 1000u}) {
        const auto series =
            bench::topn_similarity_series(truth, sketch, n, 1.0, warmup);
        points.emplace_back(static_cast<double>(n), series.mean);
        if (n == 1000) sim_at_k[k] = series.mean;
      }
      bench::print_series(common::str_format("K=%zu(N, mean_similarity)", k),
                          points);
    }
    bench::check(sim_at_k[32768] > 0.9,
                 "medium router: K=32768 similarity >0.9 at N=1000",
                 common::str_format("%.3f", sim_at_k[32768]));
  }

  // (b) top-N vs top-X*N at 60 s, K=8192.
  {
    const double interval = 60.0;
    std::printf("\n--- (b) top-N vs top-X*N, interval=60s, K=8192 ---\n");
    const auto& stream = bench::stream_for("medium", interval);
    const auto model = bench::cached_grid_model(
        "medium", interval, forecast::ModelKind::kEwma);
    const std::size_t warmup = bench::warmup_intervals(interval);
    const auto& truth = bench::truth_for(stream, model);
    const auto sketch = bench::sketch_errors_for(stream, model, 5, 8192);
    double s1 = 0.0, s15 = 0.0;
    for (const std::size_t n : {50u, 100u, 500u}) {
      std::vector<std::pair<double, double>> points;
      for (const double x : {1.0, 1.25, 1.5, 1.75, 2.0}) {
        const auto series =
            bench::topn_similarity_series(truth, sketch, n, x, warmup);
        points.emplace_back(x, series.mean);
        if (n == 500 && x == 1.0) s1 = series.mean;
        if (n == 500 && x == 1.5) s15 = series.mean;
      }
      bench::print_series(common::str_format("N=%zu(X, mean_similarity)", n),
                          points);
    }
    bench::check(s15 >= s1 && s15 > 0.9,
                 "medium router: X=1.5 yields very high accuracy at K=8192",
                 common::str_format("X1=%.3f X1.5=%.3f", s1, s15));
  }
  return bench::finish();
}
