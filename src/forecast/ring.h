// Fixed-capacity history ring for forecasting state (past observations, past
// errors). Indexed by "ago": ago=1 is the most recent element.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace scd::forecast {

template <typename V>
class HistoryRing {
 public:
  explicit HistoryRing(std::size_t capacity) : capacity_(capacity) {
    assert(capacity_ >= 1);
    slots_.reserve(capacity_);
  }

  void push(const V& v) {
    if (slots_.size() < capacity_) {
      slots_.push_back(v);
      head_ = slots_.size() - 1;
    } else {
      head_ = (head_ + 1) % capacity_;
      slots_[head_] = v;
    }
  }

  /// Element observed `ago` steps in the past (1 = most recent).
  [[nodiscard]] const V& back(std::size_t ago) const noexcept {
    assert(ago >= 1 && ago <= slots_.size());
    const std::size_t idx = (head_ + capacity_ - (ago - 1)) % capacity_;
    return slots_[idx];
  }

  /// Empties the ring (capacity unchanged); used by state restore before
  /// re-pushing a snapshotted history.
  void clear() noexcept {
    slots_.clear();
    head_ = 0;
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }
  [[nodiscard]] bool full() const noexcept { return slots_.size() == capacity_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::vector<V> slots_;
};

}  // namespace scd::forecast
