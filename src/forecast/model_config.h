// Forecast model identification and parameters (paper §3.2).
#pragma once

#include <array>
#include <cstddef>
#include <string>

namespace scd::forecast {

/// The six univariate forecasting models of §3.2, plus seasonal
/// Holt-Winters as this library's extension (see forecast/seasonal.h).
enum class ModelKind {
  kMovingAverage,          // MA(W)
  kSShapedMA,              // SMA(W) — equal recent half, linear-decay tail
  kEwma,                   // EWMA(alpha)
  kHoltWinters,            // non-seasonal Holt-Winters (alpha, beta)
  kArima0,                 // ARIMA(p<=2, d=0, q<=2)
  kArima1,                 // ARIMA(p<=2, d=1, q<=2)
  kSeasonalHoltWinters,    // extension: additive seasonal HW (alpha, beta,
                           // gamma, period)
};

[[nodiscard]] const char* model_kind_name(ModelKind kind) noexcept;

/// The paper's six kinds in paper order (MA, SMA, EWMA, NSHW, ARIMA0,
/// ARIMA1); the seasonal extension is deliberately excluded so evaluation
/// sweeps reproduce the paper's model set.
[[nodiscard]] std::array<ModelKind, 6> all_model_kinds() noexcept;

/// ARIMA(p, d, q) coefficients. Only p, q <= 2 and d <= 1 are supported,
/// matching the paper's ARIMA0/ARIMA1 restriction. The constant term is
/// fixed at zero: a per-key constant is not representable as a single linear
/// combination of sketches.
struct ArimaCoeffs {
  int p = 1;
  int d = 0;
  int q = 0;
  std::array<double, 2> ar{0.0, 0.0};
  std::array<double, 2> ma{0.0, 0.0};
};

/// AR stationarity: roots of 1 - ar1*x - ar2*x^2 outside the unit circle.
[[nodiscard]] bool is_stationary(const ArimaCoeffs& c) noexcept;
/// MA invertibility: roots of 1 + ma1*x + ma2*x^2 outside the unit circle.
[[nodiscard]] bool is_invertible(const ArimaCoeffs& c) noexcept;

/// Full parameter set for any of the six models; the fields used depend on
/// `kind`. Produced by hand, by random sampling (Figures 1-3), or by grid
/// search (§3.4.2).
struct ModelConfig {
  ModelKind kind = ModelKind::kEwma;
  std::size_t window = 1;     // MA, SMA
  double alpha = 0.5;         // EWMA, NSHW, SHW
  double beta = 0.5;          // NSHW, SHW
  double gamma = 0.5;         // SHW (seasonal smoothing)
  std::size_t period = 24;    // SHW (season length in intervals)
  ArimaCoeffs arima{};        // ARIMA0, ARIMA1

  [[nodiscard]] std::string to_string() const;
  /// True iff the parameters are in-range for `kind` (window >= 1,
  /// alpha/beta in [0,1], ARIMA stationary + invertible).
  [[nodiscard]] bool valid() const noexcept;
};

}  // namespace scd::forecast
