#include "agg/shipper.h"

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "net/net_metrics.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "sketch/kary_sketch.h"
#include "sketch/serialize.h"
#include "traffic/key_extract.h"

namespace scd::agg {

Shipper::Shipper(ShipperConfig config) : config_(std::move(config)) {}

std::uint64_t Shipper::connect(const core::PipelineConfig& pipeline) {
  if (!traffic::key_fits_32bit(pipeline.key_kind)) {
    throw net::WireError(
        net::WireErrorKind::kBadPayload,
        "the wire format ships 32-bit tabulation sketch packets; this "
        "pipeline's key kind needs the 64-bit sketch and cannot be shipped");
  }
  pipeline_ = pipeline;
  fingerprint_ = core::config_fingerprint(pipeline_);
  family_ = registry_.tabulation(pipeline_.seed, pipeline_.h);
  sock_ = net::Socket::connect_tcp(config_.host, config_.port);
  if (config_.ack_timeout_s > 0) sock_.set_recv_timeout(config_.ack_timeout_s);
  const net::Frame reply =
      send_and_await(net::MessageType::kHello, next_to_ship_, {});
  if (reply.header.type == net::MessageType::kBye) {
    bye();
    throw net::WireError(
        net::WireErrorKind::kBadPayload,
        "aggregator refused the handshake (unknown node id " +
            std::to_string(config_.node_id) +
            " or mismatched config fingerprint)");
  }
  if (reply.header.type != net::MessageType::kHelloAck) {
    throw net::WireError(net::WireErrorKind::kBadType,
                         "expected HelloAck, got " +
                             std::string(net::message_type_name(
                                 reply.header.type)));
  }
  // The rejoin contract: the aggregator tells us where to resume. Intervals
  // below this are already integrated and will be skipped by ship().
  next_to_ship_ = reply.header.interval_index;
  return next_to_ship_;
}

bool Shipper::ship(std::uint64_t interval_index,
                   const core::IntervalBatch& batch) {
  if (interval_index < next_to_ship_) {
    ++skipped_;
    return false;
  }
  net::IntervalPayload payload;
  payload.start_s = batch.start_s;
  payload.len_s = batch.len_s;
  payload.records = batch.records;
  payload.keys = batch.keys;
  // Rebuild the interval's observed sketch around the shared family so the
  // packet carries the (kind, seed, rows) the aggregator's registry resolves
  // to the identical hash functions — the COMBINE-compatibility contract.
  sketch::KarySketch sketch(family_, pipeline_.k);
  sketch.load_registers(batch.registers);
  payload.sketch_packet = sketch::sketch_to_bytes(sketch);
  const std::vector<std::uint8_t> bytes =
      net::encode_interval_payload(payload);
  const net::Frame reply =
      send_and_await(net::MessageType::kIntervalData, interval_index, bytes);
  if (reply.header.type == net::MessageType::kBye) {
    bye();
    throw net::WireError(net::WireErrorKind::kBadPayload,
                         "aggregator refused interval " +
                             std::to_string(interval_index));
  }
  if (reply.header.type != net::MessageType::kAck ||
      reply.header.interval_index != interval_index) {
    throw net::WireError(net::WireErrorKind::kBadType,
                         "expected Ack for interval " +
                             std::to_string(interval_index));
  }
  next_to_ship_ = interval_index + 1;
  return true;
}

void Shipper::attach(ingest::ParallelPipeline& pipeline) {
  pipeline.set_interval_batch_callback(
      [this](std::uint64_t interval_index, const core::IntervalBatch& batch) {
        ship(interval_index, batch);
      });
  attached_ = &pipeline;
}

void Shipper::detach() noexcept {
  if (attached_ == nullptr) return;
  try {
    // Ship every interval already closed, then uninstall. drain() returns
    // with the merger idle and no epoch can close while this (producer)
    // thread is here, so clearing the callback cannot race a delivery.
    attached_->drain();
  } catch (...) {
    // A ship/merge failure is already parked in the pipeline and rethrows
    // from its next add()/flush(); detaching must still complete.
  }
  attached_->set_interval_batch_callback(nullptr);
  attached_ = nullptr;
}

Shipper::~Shipper() { detach(); }

void Shipper::bye() noexcept {
  if (!sock_.valid()) return;
  try {
    net::FrameHeader header;
    header.type = net::MessageType::kBye;
    header.node_id = config_.node_id;
    header.config_fingerprint = fingerprint_;
    sock_.send_all(net::encode_frame(header, {}));
  } catch (...) {
    // Best effort: the aggregator treats a vanished connection the same way.
  }
  sock_.close();
}

net::Frame Shipper::send_and_await(net::MessageType type,
                                   std::uint64_t interval_index,
                                   std::span<const std::uint8_t> payload) {
  net::FrameHeader header;
  header.type = type;
  header.node_id = config_.node_id;
  header.interval_index = interval_index;
  header.config_fingerprint = fingerprint_;
  const std::vector<std::uint8_t> bytes = net::encode_frame(header, payload);
  sock_.send_all(bytes);
#if SCD_OBS_ENABLED
  if (pipeline_.metrics) {
    net::NetInstruments::global().frames_sent.inc();
    net::NetInstruments::global().bytes_sent.inc(bytes.size());
  }
#endif
  std::uint8_t buf[4096];
  for (;;) {
    if (std::optional<net::Frame> frame = reader_.next()) {
#if SCD_OBS_ENABLED
      if (pipeline_.metrics) net::NetInstruments::global().frames_received.inc();
#endif
      return *std::move(frame);
    }
    const std::size_t n = sock_.recv_some(buf, sizeof(buf));
    if (n == 0) {
      throw net::WireError(net::WireErrorKind::kIo,
                           "aggregator closed the connection while a reply "
                           "was pending");
    }
#if SCD_OBS_ENABLED
    if (pipeline_.metrics) net::NetInstruments::global().bytes_received.inc(n);
#endif
    reader_.feed({buf, n});
  }
}

}  // namespace scd::agg
