#include "net/net_metrics.h"

#include "obs/metrics.h"

namespace scd::net {

NetInstruments NetInstruments::create(obs::MetricsRegistry& registry) {
  return NetInstruments{
      registry.counter("scd_net_frames_sent_total",
                       "Wire frames written to a socket (all message types)"),
      registry.counter(
          "scd_net_frames_received_total",
          "Complete wire frames re-framed from received byte streams"),
      registry.counter("scd_net_bytes_sent_total",
                       "Bytes sent on aggregation-tier sockets "
                       "(headers + payloads)"),
      registry.counter("scd_net_bytes_received_total",
                       "Raw bytes received on aggregation-tier sockets"),
      registry.counter("scd_net_frame_rejects_total",
                       "Frames or payloads rejected as malformed, corrupt, "
                       "oversized, or of an unknown version"),
  };
}

NetInstruments& NetInstruments::global() {
  static NetInstruments instance =
      create(obs::MetricsRegistry::global());
  return instance;
}

}  // namespace scd::net
