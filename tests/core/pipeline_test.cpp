#include "core/pipeline.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/random.h"
#include "sketch/kary_sketch.h"

namespace scd::core {
namespace {

PipelineConfig base_config() {
  PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 5;
  config.k = 4096;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.2;
  return config;
}

/// Steady background: 50 keys at constant value per interval, plus an
/// optional spike key in given intervals.
void feed_stream(ChangeDetectionPipeline& pipeline, std::size_t intervals,
                 std::uint64_t spike_key = 0, double spike_value = 0.0,
                 std::size_t spike_from = ~0u, std::size_t spike_to = 0) {
  scd::common::Rng rng(1);
  for (std::size_t t = 0; t < intervals; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      pipeline.add(key, 100.0 + rng.uniform(-5, 5), start + 1.0);
    }
    if (t >= spike_from && t <= spike_to) {
      pipeline.add(spike_key, spike_value, start + 2.0);
    }
  }
  pipeline.flush();
}

TEST(PipelineConfig, ValidateAcceptsDefaults) {
  EXPECT_NO_THROW(base_config().validate());
}

TEST(PipelineConfig, ValidateRejectsBadValues) {
  auto c = base_config();
  c.k = 1000;  // not a power of two
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.h = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.interval_s = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.key_sample_rate = 0.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.model.alpha = 5.0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = base_config();
  c.refit_every = 10;
  c.refit_window = 2;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(Pipeline, ProducesOneReportPerInterval) {
  ChangeDetectionPipeline pipeline(base_config());
  feed_stream(pipeline, 8);
  ASSERT_EQ(pipeline.reports().size(), 8u);
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_EQ(pipeline.reports()[t].index, t);
    EXPECT_EQ(pipeline.reports()[t].records, t == 0 ? 50u : 50u);
  }
}

TEST(Pipeline, WarmupIntervalHasNoDetection) {
  ChangeDetectionPipeline pipeline(base_config());
  feed_stream(pipeline, 4);
  EXPECT_FALSE(pipeline.reports()[0].detection_ran);
  EXPECT_TRUE(pipeline.reports()[1].detection_ran);
}

TEST(Pipeline, SteadyTrafficRaisesFewAlarms) {
  // An L2-relative threshold needs enough flows that the norm dwarfs any
  // single flow's noise (the paper's regime); use 500 steady keys.
  ChangeDetectionPipeline pipeline(base_config());
  scd::common::Rng rng(4);
  for (std::size_t t = 0; t < 10; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 500; ++key) {
      pipeline.add(key, 100.0 + rng.uniform(-5, 5), start + 1.0);
    }
  }
  pipeline.flush();
  std::size_t alarms = 0;
  for (const auto& r : pipeline.reports()) alarms += r.alarms.size();
  // Per-key noise errors ~ +-7 vs threshold 0.2 * L2 ~ 0.2*sqrt(500*9) ~ 13.
  EXPECT_LT(alarms, 5u);
}

TEST(Pipeline, DetectsInjectedSpike) {
  ChangeDetectionPipeline pipeline(base_config());
  // Key 999 suddenly moves 5000 bytes in interval 6.
  feed_stream(pipeline, 10, 999, 5000.0, 6, 6);
  const auto& report = pipeline.reports()[6];
  ASSERT_TRUE(report.detection_ran);
  ASSERT_FALSE(report.alarms.empty());
  EXPECT_EQ(report.alarms[0].key, 999u);
  EXPECT_GT(report.alarms[0].error, 4000.0);
  EXPECT_GT(report.alarm_threshold, 0.0);
}

TEST(Pipeline, SpikeDisappearanceAlsoAlarms) {
  // The turnstile model detects negative changes: a key that was steady and
  // vanishes must produce a large negative forecast error.
  auto config = base_config();
  ChangeDetectionPipeline pipeline(config);
  scd::common::Rng rng(2);
  for (std::size_t t = 0; t < 10; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 30; ++key) {
      pipeline.add(key, 100.0, start + 1.0);
    }
    if (t < 6) pipeline.add(777, 8000.0, start + 2.0);
    // Key 777 must still appear (tiny) so current-interval replay sees it.
    if (t >= 6) pipeline.add(777, 1.0, start + 2.0);
  }
  pipeline.flush();
  const auto& report = pipeline.reports()[6];
  ASSERT_TRUE(report.detection_ran);
  ASSERT_FALSE(report.alarms.empty());
  EXPECT_EQ(report.alarms[0].key, 777u);
  EXPECT_LT(report.alarms[0].error, -4000.0);
}

TEST(Pipeline, NextIntervalModeDetectsWithLag) {
  auto config = base_config();
  config.replay = KeyReplayMode::kNextInterval;
  ChangeDetectionPipeline pipeline(config);
  // Spike persists for two intervals so its key appears after the error
  // sketch is built.
  feed_stream(pipeline, 10, 999, 5000.0, 6, 7);
  ASSERT_EQ(pipeline.reports().size(), 10u);
  const auto& report = pipeline.reports()[6];
  ASSERT_TRUE(report.detection_ran);
  ASSERT_FALSE(report.alarms.empty());
  EXPECT_EQ(report.alarms[0].key, 999u);
}

TEST(Pipeline, EmptyGapIntervalsAreReported) {
  ChangeDetectionPipeline pipeline(base_config());
  pipeline.add(1, 100.0, 5.0);
  pipeline.add(1, 100.0, 45.0);  // jumps over intervals 1..3
  pipeline.flush();
  ASSERT_EQ(pipeline.reports().size(), 5u);
  EXPECT_EQ(pipeline.reports()[1].records, 0u);
  EXPECT_EQ(pipeline.reports()[2].records, 0u);
}

TEST(Pipeline, OutOfOrderRecordsAreClampedAndCounted) {
  // A regressing timestamp must not abort a live feed (one late NetFlow
  // export would kill the stream) nor mis-bin into a past interval: the
  // record is clamped into the open interval and counted.
  ChangeDetectionPipeline pipeline(base_config());
  pipeline.add(1, 1.0, 100.0);
  EXPECT_NO_THROW(pipeline.add(2, 1.0, 50.0));  // predates the interval start
  EXPECT_NO_THROW(pipeline.add(3, 1.0, 102.0));
  EXPECT_NO_THROW(pipeline.add(4, 1.0, 101.0));  // within the open interval
  pipeline.flush();
  EXPECT_EQ(pipeline.stats().out_of_order_records, 2u);
  ASSERT_EQ(pipeline.reports().size(), 1u);  // nothing opened a past interval
  EXPECT_EQ(pipeline.reports()[0].records, 4u);
  EXPECT_DOUBLE_EQ(pipeline.reports()[0].start_s, 100.0);
}

TEST(Pipeline, OutOfOrderClampUsesHighWaterMarkNotIntervalStart) {
  // The high-water mark spans interval closes: after time 25 advances the
  // stream into interval [20, 30), a record at time 12 is late even though
  // a fresh interval just opened.
  ChangeDetectionPipeline pipeline(base_config());
  pipeline.add(1, 1.0, 5.0);
  pipeline.add(1, 1.0, 25.0);
  pipeline.add(1, 1.0, 12.0);  // late: clamped into [20, 30), not [10, 20)
  pipeline.flush();
  EXPECT_EQ(pipeline.stats().out_of_order_records, 1u);
  ASSERT_EQ(pipeline.reports().size(), 3u);
  EXPECT_EQ(pipeline.reports()[2].records, 2u);
}

TEST(Pipeline, IngestIntervalMatchesAddPath) {
  // Feeding pre-aggregated intervals (registers + keys + count) must drive
  // the forecast/detect stages exactly as the record-by-record path: hash
  // families are deterministic in (seed, h), so an external sketch built
  // with the pipeline's parameters is register-compatible.
  const auto config = base_config();
  ChangeDetectionPipeline by_records(config);
  ChangeDetectionPipeline by_batches(config);
  const auto family = sketch::make_tabulation_family(config.seed, config.h);
  for (std::size_t t = 0; t < 8; ++t) {
    const double start = static_cast<double>(t) * config.interval_s;
    sketch::KarySketch external(family, config.k);
    IntervalBatch batch;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      const double value =
          100.0 + static_cast<double>(common::mix64(key * 100 + t) % 11);
      by_records.add(key, value, start + 1.0);
      external.update(key, value);
      batch.keys.push_back(key);
      ++batch.records;
    }
    if (t == 5) {
      by_records.add(999, 5000.0, start + 2.0);
      external.update(999, 5000.0);
      batch.keys.push_back(999);
      ++batch.records;
    }
    batch.start_s = start;
    batch.len_s = config.interval_s;
    batch.registers.assign(external.registers().begin(),
                           external.registers().end());
    by_batches.ingest_interval(std::move(batch));
  }
  by_records.flush();
  by_batches.flush();
  ASSERT_EQ(by_batches.reports().size(), by_records.reports().size());
  for (std::size_t i = 0; i < by_records.reports().size(); ++i) {
    const auto& r = by_records.reports()[i];
    const auto& b = by_batches.reports()[i];
    EXPECT_EQ(b.records, r.records) << i;
    EXPECT_EQ(b.keys_checked, r.keys_checked) << i;
    EXPECT_DOUBLE_EQ(b.estimated_error_f2, r.estimated_error_f2) << i;
    ASSERT_EQ(b.alarms.size(), r.alarms.size()) << i;
    for (std::size_t a = 0; a < r.alarms.size(); ++a) {
      EXPECT_EQ(b.alarms[a].key, r.alarms[a].key);
      EXPECT_DOUBLE_EQ(b.alarms[a].error, r.alarms[a].error);
    }
  }
  EXPECT_EQ(by_batches.stats().records, by_records.stats().records);
}

TEST(Pipeline, IngestIntervalValidatesItsBatch) {
  const auto config = base_config();
  ChangeDetectionPipeline pipeline(config);
  const auto valid = [&config] {
    IntervalBatch batch;
    batch.start_s = 0.0;
    batch.len_s = config.interval_s;
    batch.registers.assign(config.h * config.k, 0.0);
    return batch;
  };

  IntervalBatch wrong_size = valid();
  wrong_size.registers.resize(config.h * config.k - 1);
  EXPECT_THROW(pipeline.ingest_interval(std::move(wrong_size)),
               std::invalid_argument);

  IntervalBatch bad_len = valid();
  bad_len.len_s = 0.0;
  EXPECT_THROW(pipeline.ingest_interval(std::move(bad_len)),
               std::invalid_argument);

  EXPECT_NO_THROW(pipeline.ingest_interval(valid()));
  IntervalBatch regressed = valid();
  regressed.start_s = -20.0;  // before the interval just ingested
  EXPECT_THROW(pipeline.ingest_interval(std::move(regressed)),
               std::invalid_argument);

  // Mixing feeds inside one interval is not supported: an interval opened by
  // add() must be closed before a batch can be ingested.
  ChangeDetectionPipeline mixed(config);
  mixed.add(1, 1.0, 0.0);
  EXPECT_THROW(mixed.ingest_interval(valid()), std::invalid_argument);
}

TEST(Pipeline, CallbackSeesEveryReport) {
  ChangeDetectionPipeline pipeline(base_config());
  std::size_t seen = 0;
  pipeline.set_report_callback(
      [&seen](const IntervalReport& r) { seen = std::max(seen, r.index + 1); });
  feed_stream(pipeline, 5);
  EXPECT_EQ(seen, 5u);
}

TEST(Pipeline, MaxAlarmsCapRespected) {
  auto config = base_config();
  config.max_alarms_per_interval = 3;
  config.threshold = 0.0;  // flag everything
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 4);
  for (const auto& r : pipeline.reports()) {
    EXPECT_LE(r.alarms.size(), 3u);
  }
}

TEST(Pipeline, SampledReplayChecksFewerKeys) {
  auto full = base_config();
  auto sampled = base_config();
  sampled.key_sample_rate = 0.2;
  ChangeDetectionPipeline p_full(full), p_sampled(sampled);
  feed_stream(p_full, 6);
  feed_stream(p_sampled, 6);
  const auto& rf = p_full.reports()[3];
  const auto& rs = p_sampled.reports()[3];
  EXPECT_EQ(rf.keys_checked, 50u);
  EXPECT_LT(rs.keys_checked, 30u);
  EXPECT_GT(rs.keys_checked, 1u);
}

TEST(Pipeline, AddRecordUsesConfiguredExtraction) {
  auto config = base_config();
  config.key_kind = traffic::KeyKind::kDstIp;
  config.update_kind = traffic::UpdateKind::kBytes;
  ChangeDetectionPipeline pipeline(config);
  traffic::FlowRecord r;
  r.timestamp_us = 1000000;
  r.dst_ip = 42;
  r.bytes = 500;
  pipeline.add_record(r);
  pipeline.flush();
  ASSERT_EQ(pipeline.reports().size(), 1u);
  EXPECT_EQ(pipeline.reports()[0].records, 1u);
}

TEST(Pipeline, SrcDstPairKeysUseWideFamily) {
  auto config = base_config();
  config.key_kind = traffic::KeyKind::kSrcDstPair;
  ChangeDetectionPipeline pipeline(config);
  traffic::FlowRecord r;
  r.timestamp_us = 0;
  r.src_ip = 0xffffffff;
  r.dst_ip = 0xeeeeeeee;
  r.bytes = 100;
  EXPECT_NO_THROW(pipeline.add_record(r));
  pipeline.flush();
  EXPECT_EQ(pipeline.reports().size(), 1u);
}

TEST(Pipeline, OnlineRefitUpdatesModelParameters) {
  auto config = base_config();
  config.refit_every = 8;
  config.refit_window = 8;
  config.model.alpha = 0.05;  // poor fit for the jumpy series below
  ChangeDetectionPipeline pipeline(config);
  scd::common::Rng rng(3);
  // A strongly level-shifting series: best EWMA alpha is near 1.
  double level = 100.0;
  for (std::size_t t = 0; t < 20; ++t) {
    if (t % 3 == 0) level = rng.uniform(50, 5000);
    for (std::uint64_t key = 1; key <= 20; ++key) {
      pipeline.add(key, level, static_cast<double>(t) * 10.0 + 1.0);
    }
  }
  pipeline.flush();
  EXPECT_NE(pipeline.active_model().alpha, 0.05);
}

TEST(Pipeline, FlushIsIdempotent) {
  // A second flush must be a no-op: the first one already closed the open
  // interval, and no record has opened a new one since.
  ChangeDetectionPipeline pipeline(base_config());
  feed_stream(pipeline, 3);  // feed_stream already flushes
  const std::size_t n = pipeline.reports().size();
  pipeline.flush();
  EXPECT_EQ(pipeline.reports().size(), n);
}

TEST(Pipeline, RandomizedIntervalsVaryLengths) {
  auto config = base_config();
  config.randomize_intervals = true;
  ChangeDetectionPipeline pipeline(config);
  for (int i = 0; i < 400; ++i) {
    pipeline.add(1, 100.0, static_cast<double>(i));
  }
  pipeline.flush();
  const auto& reports = pipeline.reports();
  ASSERT_GE(reports.size(), 5u);
  // Lengths differ across intervals and stay within the clamp band.
  bool some_differ = false;
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const double len = reports[i].end_s - reports[i].start_s;
    EXPECT_GE(len, 0.25 * config.interval_s - 1e-9);
    EXPECT_LE(len, 4.0 * config.interval_s + 1e-9);
    if (i > 0 && std::abs(len - (reports[0].end_s - reports[0].start_s)) >
                     1e-9) {
      some_differ = true;
    }
  }
  EXPECT_TRUE(some_differ);
  // Intervals tile the timeline with no gaps.
  for (std::size_t i = 1; i < reports.size(); ++i) {
    EXPECT_DOUBLE_EQ(reports[i].start_s, reports[i - 1].end_s);
  }
}

TEST(Pipeline, RandomizedIntervalsStillDetectSpikes) {
  auto config = base_config();
  config.randomize_intervals = true;
  config.threshold = 0.3;
  ChangeDetectionPipeline pipeline(config);
  // Per-second steady stream so every random-length interval sees volume
  // proportional to its length (normalization makes them comparable).
  for (int s = 0; s < 300; ++s) {
    for (std::uint64_t key = 1; key <= 30; ++key) {
      pipeline.add(key, 10.0, static_cast<double>(s));
    }
    if (s >= 200 && s < 230) pipeline.add(999, 3000.0, s + 0.5);
  }
  pipeline.flush();
  bool flagged = false;
  for (const auto& report : pipeline.reports()) {
    for (const auto& alarm : report.alarms) {
      if (alarm.key == 999) flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(Pipeline, RandomizedIntervalsAreDeterministicPerSeed) {
  auto config = base_config();
  config.randomize_intervals = true;
  ChangeDetectionPipeline p1(config), p2(config);
  for (int i = 0; i < 200; ++i) {
    p1.add(1, 50.0, static_cast<double>(i));
    p2.add(1, 50.0, static_cast<double>(i));
  }
  p1.flush();
  p2.flush();
  ASSERT_EQ(p1.reports().size(), p2.reports().size());
  for (std::size_t i = 0; i < p1.reports().size(); ++i) {
    EXPECT_DOUBLE_EQ(p1.reports()[i].end_s, p2.reports()[i].end_s);
  }
}

TEST(Pipeline, TopNCriterionAlwaysReportsNKeys) {
  auto config = base_config();
  config.criterion = DetectionCriterion::kTopN;
  config.max_alarms_per_interval = 3;
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 6);
  for (const auto& report : pipeline.reports()) {
    if (!report.detection_ran) continue;
    EXPECT_EQ(report.alarms.size(), 3u) << report.index;
    // Alarms come ranked by |error| descending.
    for (std::size_t i = 1; i < report.alarms.size(); ++i) {
      EXPECT_GE(std::abs(report.alarms[i - 1].error),
                std::abs(report.alarms[i].error));
    }
  }
}

TEST(Pipeline, SmoothedBaselinePreventsSelfMasking) {
  // A single enormous change inflates the current interval's error L2 so
  // much that, at a high threshold T, it can fail its own T * L2 cut.
  // Anchoring the threshold to the smoothed history must flag it.
  auto current = base_config();
  current.threshold = 0.95;
  auto smoothed = current;
  smoothed.baseline = ThresholdBaseline::kSmoothedF2;

  // Two keys change at once so neither carries ~100% of the interval's L2:
  // each holds ~1/sqrt(2) ~ 0.71 of it, below the 0.95 cut.
  const auto feed = [](ChangeDetectionPipeline& pipeline) {
    scd::common::Rng rng(5);
    for (std::size_t t = 0; t < 8; ++t) {
      const double start = static_cast<double>(t) * 10.0;
      for (std::uint64_t key = 1; key <= 100; ++key) {
        pipeline.add(key, 100.0 + rng.uniform(-5, 5), start + 1.0);
      }
      if (t == 6) {
        pipeline.add(991, 60000.0, start + 2.0);
        pipeline.add(992, 60000.0, start + 2.0);
      }
    }
    pipeline.flush();
  };
  ChangeDetectionPipeline p_current(current), p_smoothed(smoothed);
  feed(p_current);
  feed(p_smoothed);
  const auto alarms_at = [](const ChangeDetectionPipeline& p, std::size_t t) {
    return p.reports()[t].alarms.size();
  };
  EXPECT_EQ(alarms_at(p_current, 6), 0u);   // self-masked
  EXPECT_GE(alarms_at(p_smoothed, 6), 2u);  // history-anchored: both flagged
}

TEST(Pipeline, BaselineAlphaValidated) {
  auto config = base_config();
  config.baseline_alpha = 0.0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.baseline_alpha = 1.5;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Pipeline, RejectsNonFiniteUpdates) {
  ChangeDetectionPipeline pipeline(base_config());
  EXPECT_THROW(pipeline.add(1, std::nan(""), 0.0), std::invalid_argument);
  EXPECT_THROW(pipeline.add(1, std::numeric_limits<double>::infinity(), 0.0),
               std::invalid_argument);
  EXPECT_NO_THROW(pipeline.add(1, -5.0, 0.0));  // negative is fine (turnstile)
}

TEST(Pipeline, HysteresisSuppressesOneShotSpikes) {
  auto config = base_config();
  config.min_consecutive = 2;
  ChangeDetectionPipeline pipeline(config);
  // Key 999 spikes once (its decaying EWMA tail then falls below the
  // threshold set by 888's larger concurrent change); key 888 spikes in two
  // consecutive intervals.
  scd::common::Rng rng(9);
  for (std::size_t t = 0; t < 10; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      pipeline.add(key, 100.0 + rng.uniform(-5, 5), start + 1.0);
    }
    if (t == 5) pipeline.add(999, 1500.0, start + 2.0);
    if (t == 6 || t == 7) pipeline.add(888, 5000.0, start + 2.0);
  }
  pipeline.flush();
  bool saw_999 = false, saw_888 = false;
  std::size_t interval_888 = 0;
  for (const auto& report : pipeline.reports()) {
    for (const auto& alarm : report.alarms) {
      if (alarm.key == 999) saw_999 = true;
      if (alarm.key == 888) {
        saw_888 = true;
        interval_888 = report.index;
      }
    }
  }
  EXPECT_FALSE(saw_999);  // single-interval spike suppressed
  EXPECT_TRUE(saw_888);   // two consecutive trips reported
  EXPECT_EQ(interval_888, 7u);
}

TEST(Pipeline, HysteresisValidation) {
  auto config = base_config();
  config.min_consecutive = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(Pipeline, StatsTrackLifetimeCounters) {
  auto config = base_config();
  config.refit_every = 4;
  config.refit_window = 4;
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 10, 999, 5000.0, 6, 6);
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.records, 10u * 50u + 1u);
  EXPECT_EQ(stats.intervals_closed, 10u);
  EXPECT_GE(stats.alarms, 1u);
  EXPECT_GE(stats.refits, 1u);  // fired at intervals 4 and 8
  EXPECT_EQ(stats.sketch_bytes, config.h * config.k * sizeof(double));
}

TEST(Pipeline, StatsStartAtZero) {
  ChangeDetectionPipeline pipeline(base_config());
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.intervals_closed, 0u);
  EXPECT_EQ(stats.alarms, 0u);
  EXPECT_EQ(stats.refits, 0u);
}

TEST(Pipeline, NextIntervalModeComposesWithTopNCriterion) {
  auto config = base_config();
  config.replay = KeyReplayMode::kNextInterval;
  config.criterion = DetectionCriterion::kTopN;
  config.max_alarms_per_interval = 2;
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 8, 999, 5000.0, 5, 7);
  bool saw_spike = false;
  for (const auto& report : pipeline.reports()) {
    if (report.detection_ran && report.keys_checked > 0) {
      EXPECT_LE(report.alarms.size(), 2u);
      EXPECT_GE(report.alarms.size(), 1u);  // top-N always reports
    }
    for (const auto& alarm : report.alarms) {
      if (alarm.key == 999) saw_spike = true;
    }
  }
  EXPECT_TRUE(saw_spike);
}

TEST(Pipeline, SmoothedBaselineComposesWithRandomizedIntervals) {
  auto config = base_config();
  config.baseline = ThresholdBaseline::kSmoothedF2;
  config.randomize_intervals = true;
  ChangeDetectionPipeline pipeline(config);
  scd::common::Rng rng(11);
  for (int s = 0; s < 200; ++s) {
    for (std::uint64_t key = 1; key <= 20; ++key) {
      pipeline.add(key, 50.0 + rng.uniform(-2, 2), static_cast<double>(s));
    }
  }
  pipeline.flush();
  EXPECT_GE(pipeline.reports().size(), 5u);  // runs without issue
}

TEST(Pipeline, ReportsCarryStageTimings) {
  ChangeDetectionPipeline pipeline(base_config());
  feed_stream(pipeline, 6);
  for (const auto& report : pipeline.reports()) {
    EXPECT_GT(report.timings.close_s, 0.0) << report.index;
    EXPECT_GE(report.timings.forecast_s, 0.0);
    EXPECT_LE(report.timings.forecast_s, report.timings.close_s);
    if (report.detection_ran) {
      EXPECT_GT(report.timings.estimate_f2_s, 0.0) << report.index;
      EXPECT_GT(report.timings.key_replay_s, 0.0) << report.index;
    } else {
      EXPECT_EQ(report.timings.key_replay_s, 0.0) << report.index;
    }
  }
}

TEST(Pipeline, StatsCarryStageBudget) {
  ChangeDetectionPipeline pipeline(base_config());
  feed_stream(pipeline, 6);
  const auto stats = pipeline.stats();
  EXPECT_GT(stats.close_seconds, 0.0);
  EXPECT_GT(stats.forecast_seconds, 0.0);
  EXPECT_GT(stats.estimate_f2_seconds, 0.0);
  EXPECT_GT(stats.key_replay_seconds, 0.0);
  EXPECT_DOUBLE_EQ(stats.refit_seconds, 0.0);  // no re-fitting configured
  // One add() in 64 is stopwatch-timed; 301 records => at least 4 samples.
  EXPECT_GE(stats.update_samples, 4u);
  EXPECT_LE(stats.update_samples, stats.records);
  EXPECT_GT(stats.update_seconds, 0.0);
  // Detection ran on every post-warm-up interval over 50 keys each.
  EXPECT_EQ(stats.keys_replayed, 5u * 50u);
}

TEST(Pipeline, MetricsDisabledSkipsTimingButKeepsCounters) {
  auto config = base_config();
  config.metrics = false;
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 4);
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.records, 4u * 50u);
  EXPECT_EQ(stats.intervals_closed, 4u);
  EXPECT_EQ(stats.update_samples, 0u);  // sampling is metrics-gated
  EXPECT_DOUBLE_EQ(stats.update_seconds, 0.0);
  EXPECT_GT(stats.close_seconds, 0.0);  // per-pipeline budget always on
}

TEST(Pipeline, StatsCountHysteresisSuppressions) {
  auto config = base_config();
  config.min_consecutive = 2;
  ChangeDetectionPipeline pipeline(config);
  // One-shot spike: flagged once, then suppressed by hysteresis.
  feed_stream(pipeline, 10, 999, 5000.0, 6, 6);
  EXPECT_GE(pipeline.stats().hysteresis_suppressed, 1u);
}

TEST(Pipeline, IntervalsClosedMatchesReportsAfterFlush) {
  // The flush() invariant: one report per closed interval, in both replay
  // modes and with a trailing double flush.
  for (const KeyReplayMode mode :
       {KeyReplayMode::kCurrentInterval, KeyReplayMode::kNextInterval}) {
    auto config = base_config();
    config.replay = mode;
    ChangeDetectionPipeline pipeline(config);
    feed_stream(pipeline, 7);
    EXPECT_EQ(pipeline.stats().intervals_closed, pipeline.reports().size());
    pipeline.flush();
    EXPECT_EQ(pipeline.stats().intervals_closed, pipeline.reports().size());
  }
}

TEST(Pipeline, RefitTimeIsAccounted) {
  auto config = base_config();
  config.refit_every = 4;
  config.refit_window = 8;
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 10);
  const auto stats = pipeline.stats();
  ASSERT_GE(stats.refits, 1u);
  EXPECT_GT(stats.refit_seconds, 0.0);
}

TEST(Pipeline, MoveSemantics) {
  ChangeDetectionPipeline a(base_config());
  a.add(1, 1.0, 0.0);
  ChangeDetectionPipeline b = std::move(a);
  b.add(1, 2.0, 1.0);
  b.flush();
  EXPECT_EQ(b.reports().size(), 1u);
}

}  // namespace
}  // namespace scd::core
