// The LinearSignal concept: the abstraction that lets every forecasting model
// be written once and instantiated both at the sketch level (the paper's
// contribution, via k-ary sketch linearity) and at the per-flow level (the
// exact baseline, via DenseVector). §3.2: "All six models can be implemented
// on top of sketches by exploiting the linearity property of sketches."
#pragma once

#include <concepts>

namespace scd::forecast {

template <typename V>
concept LinearSignal = std::copyable<V> && requires(V v, const V& cv, double c) {
  { v.set_zero() };
  { v.scale(c) };
  { v.add_scaled(cv, c) };
};

/// Scalar instantiation — a single univariate time series. Used by unit tests
/// to validate every model against hand-computed forecasts, and by the
/// per-flow engine when only one key is of interest.
class ScalarSignal {
 public:
  ScalarSignal() = default;
  explicit ScalarSignal(double v) noexcept : value_(v) {}

  void set_zero() noexcept { value_ = 0.0; }
  void scale(double c) noexcept { value_ *= c; }
  void add_scaled(const ScalarSignal& other, double c) noexcept {
    value_ += c * other.value_;
  }

  [[nodiscard]] double value() const noexcept { return value_; }
  void set_value(double v) noexcept { value_ = v; }

 private:
  double value_ = 0.0;
};

static_assert(LinearSignal<ScalarSignal>);

/// out = a - b, built from the prototype's structure.
template <LinearSignal V>
[[nodiscard]] V subtract(const V& a, const V& b) {
  V out = a;
  out.add_scaled(b, -1.0);
  return out;
}

/// Returns a zero-valued signal with the same structure as the prototype.
template <LinearSignal V>
[[nodiscard]] V zero_like(const V& prototype) {
  V out = prototype;
  out.set_zero();
  return out;
}

}  // namespace scd::forecast
