// Sketch serialization — the wire format for distributed collection.
//
// The linearity the paper exploits for forecasting is equally the basis for
// distribution: every router exports its observed sketch per interval and a
// collector COMBINEs them into a network-wide view (§1.2 "sketches can be
// combined in an arithmetical sense"). Combination requires identical hash
// functions, so the wire format carries (family kind, seed, rows) rather
// than the tables themselves; receivers rebuild or share families through a
// FamilyRegistry.
//
// Format (little-endian):
//   magic "SCDK" u32 | version u32 | family_kind u8 | seed u64 | rows u32 |
//   k u32 | registers: rows * k doubles
//
// The invertible (majority-vote) family kinds append the per-bucket vote
// state after the registers:
//   candidates: rows * k u64 | votes: rows * k doubles
// Votes must be finite and nonnegative, and candidates must fit the
// family's key domain; violations reject as kCorruptRegisters.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "sketch/kary_sketch.h"
#include "sketch/mv_sketch.h"

namespace scd::sketch {

inline constexpr std::uint32_t kSketchMagic = 0x4b444353;  // "SCDK" LE
inline constexpr std::uint32_t kSketchVersion = 1;

enum class FamilyKind : std::uint8_t {
  kTabulation = 0,
  kCarterWegman = 1,
  kMvTabulation = 2,    // invertible, 32-bit keys (MvSketch)
  kMvCarterWegman = 3,  // invertible, 64-bit keys (MvSketch64)
};

/// Why a dump was rejected. Sketch dumps cross the network from untrusted
/// exporters, so every reject path is typed: collectors can distinguish a
/// short read (retry) from a corrupt or hostile packet (drop and count).
enum class SerializeErrorKind {
  kTruncated,         ///< input ended inside the header or register payload
  kBadMagic,          ///< leading bytes are not "SCDK"
  kBadVersion,        ///< unknown format version
  kBadFamilyKind,     ///< family-kind byte is not a known FamilyKind
  kBadDimensions,     ///< rows/k outside the valid sketch envelope
  kCorruptRegisters,  ///< register/vote payload decodes to invalid values
  kFamilyMismatch,    ///< dump's family kind does not match the reader used
  kTrailingBytes,     ///< byte-buffer parse left unconsumed bytes
  kWriteFailed,       ///< output stream failed mid-write
};

/// Thrown by every (de)serialization failure path. Derives from
/// std::runtime_error so legacy catch sites keep working; new code should
/// switch on kind().
class SerializeError : public std::runtime_error {
 public:
  SerializeError(SerializeErrorKind kind, const std::string& message)
      : std::runtime_error("sketch serialization: " + message), kind_(kind) {}

  [[nodiscard]] SerializeErrorKind kind() const noexcept { return kind_; }

 private:
  SerializeErrorKind kind_;
};

/// Shares hash families across deserialized sketches so that sketches
/// arriving from different exporters with the same (kind, seed, rows) are
/// COMBINE-compatible (family identity, not just value equality).
class FamilyRegistry {
 public:
  [[nodiscard]] KarySketch::FamilyPtr tabulation(std::uint64_t seed,
                                                 std::size_t rows);
  [[nodiscard]] KarySketch64::FamilyPtr carter_wegman(std::uint64_t seed,
                                                      std::size_t rows);

 private:
  std::map<std::pair<std::uint64_t, std::size_t>, KarySketch::FamilyPtr>
      tabulation_;
  std::map<std::pair<std::uint64_t, std::size_t>, KarySketch64::FamilyPtr> cw_;
};

/// Writes a sketch. Throws SerializeError(kWriteFailed) on stream failure.
void write_sketch(std::ostream& out, const KarySketch& sketch);
void write_sketch(std::ostream& out, const KarySketch64& sketch);
void write_sketch(std::ostream& out, const MvSketch& sketch);
void write_sketch(std::ostream& out, const MvSketch64& sketch);

/// Reads a sketch previously written with write_sketch. Throws a
/// SerializeError on malformed input or a family-kind mismatch (an
/// invertible-family dump fed to a k-ary reader, or vice versa, is
/// kFamilyMismatch — the typed reject the aggregator counts and drops).
/// Trailing stream data is allowed: exporters concatenate sketches into one
/// stream.
[[nodiscard]] KarySketch read_sketch32(std::istream& in,
                                       FamilyRegistry& registry);
[[nodiscard]] KarySketch64 read_sketch64(std::istream& in,
                                         FamilyRegistry& registry);
[[nodiscard]] MvSketch read_mv_sketch32(std::istream& in,
                                        FamilyRegistry& registry);
[[nodiscard]] MvSketch64 read_mv_sketch64(std::istream& in,
                                          FamilyRegistry& registry);

/// Convenience: (de)serialize via a byte buffer (the "export packet").
/// Unlike the stream readers, the *_from_bytes parsers reject trailing
/// bytes — a packet is exactly one sketch.
[[nodiscard]] std::vector<std::uint8_t> sketch_to_bytes(const KarySketch& s);
[[nodiscard]] KarySketch sketch_from_bytes(
    const std::vector<std::uint8_t>& bytes, FamilyRegistry& registry);
[[nodiscard]] std::vector<std::uint8_t> mv_sketch_to_bytes(const MvSketch& s);
[[nodiscard]] MvSketch mv_sketch_from_bytes(
    const std::vector<std::uint8_t>& bytes, FamilyRegistry& registry);

}  // namespace scd::sketch
