// Ablation: optimized median exchange networks (paper refs [16, 37]) vs the
// generic nth_element selection, at the paper's H values {5, 9, 25}. This is
// the measurement behind §4.2's "our choices of H ... are driven by the fact
// that we can use optimized median networks".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "sketch/median.h"

namespace {

using namespace scd;

std::vector<double> make_values(std::size_t n, std::size_t copies) {
  std::vector<double> values(n * copies);
  common::Rng rng(7);
  for (auto& v : values) v = rng.normal();
  return values;
}

void BM_MedianNetwork(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = make_values(n, 4096);
  std::vector<double> buf(n);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto offset = static_cast<std::ptrdiff_t>((i++ % 4096) * n);
    const auto count = static_cast<std::ptrdiff_t>(n);
    std::copy(values.begin() + offset, values.begin() + offset + count,
              buf.begin());
    benchmark::DoNotOptimize(sketch::median_inplace(buf));
  }
}
BENCHMARK(BM_MedianNetwork)->Arg(5)->Arg(9)->Arg(25);

void BM_MedianNthElement(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto values = make_values(n, 4096);
  std::vector<double> buf(n);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto offset = static_cast<std::ptrdiff_t>((i++ % 4096) * n);
    const auto count = static_cast<std::ptrdiff_t>(n);
    std::copy(values.begin() + offset, values.begin() + offset + count,
              buf.begin());
    benchmark::DoNotOptimize(sketch::median_nth_element(buf));
  }
}
BENCHMARK(BM_MedianNthElement)->Arg(5)->Arg(9)->Arg(25);

}  // namespace

int main(int argc, char** argv) {
  std::printf("\n==== Ablation: median networks vs nth_element ====\n");
  std::printf("# exchange networks for H in {5, 9, 25} (the paper's H "
              "choices) vs generic selection\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
