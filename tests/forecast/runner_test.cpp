#include "forecast/runner.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "sketch/kary_sketch.h"

namespace scd::forecast {
namespace {

ModelConfig ewma(double alpha = 0.5) {
  ModelConfig c;
  c.kind = ModelKind::kEwma;
  c.alpha = alpha;
  return c;
}

TEST(ForecastRunner, WarmupReturnsNullopt) {
  ForecastRunner<ScalarSignal> runner(ewma(), ScalarSignal{});
  EXPECT_FALSE(runner.step(ScalarSignal(10.0)).has_value());
  EXPECT_TRUE(runner.step(ScalarSignal(20.0)).has_value());
}

TEST(ForecastRunner, ErrorPlusForecastEqualsObserved) {
  // The defining identity S_o(t) = S_f(t) + S_e(t) (up to FP rounding of
  // the subtraction/re-addition), every step.
  ForecastRunner<ScalarSignal> runner(ewma(0.3), ScalarSignal{});
  scd::common::Rng rng(1);
  for (int t = 0; t < 50; ++t) {
    const double observed = rng.uniform(0, 1000);
    const auto step = runner.step(ScalarSignal(observed));
    if (!step.has_value()) continue;
    EXPECT_NEAR(step->forecast.value() + step->error.value(), observed,
                1e-9 * observed);
  }
}

TEST(ForecastRunner, SketchIdentityHoldsRegisterwise) {
  const auto family = sketch::make_tabulation_family(3, 5);
  const sketch::KarySketch prototype(family, 256);
  ForecastRunner<sketch::KarySketch> runner(ewma(), prototype);
  scd::common::Rng rng(2);
  for (int t = 0; t < 10; ++t) {
    sketch::KarySketch observed = prototype;
    for (int i = 0; i < 50; ++i) {
      observed.update(rng.next_below(1000), rng.uniform(0, 100));
    }
    const auto step = runner.step(observed);
    if (!step.has_value()) continue;
    for (std::size_t idx = 0; idx < observed.registers().size(); ++idx) {
      EXPECT_NEAR(step->forecast.registers()[idx] + step->error.registers()[idx],
                  observed.registers()[idx], 1e-9);
    }
  }
}

TEST(ForecastRunner, RejectsInvalidConfigAtConstruction) {
  ModelConfig bad = ewma(2.0);
  EXPECT_THROW(ForecastRunner<ScalarSignal>(bad, ScalarSignal{}),
               std::invalid_argument);
}

TEST(ForecastRunner, ModelAccessorReflectsProgress) {
  ForecastRunner<ScalarSignal> runner(ewma(), ScalarSignal{});
  EXPECT_EQ(runner.model().observed_count(), 0u);
  (void)runner.step(ScalarSignal(1.0));
  EXPECT_EQ(runner.model().observed_count(), 1u);
}

}  // namespace
}  // namespace scd::forecast
