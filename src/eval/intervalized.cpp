#include "eval/intervalized.h"

#include <cassert>
#include <cmath>
#include <unordered_map>

#include "traffic/flow_record.h"
#include "traffic/key_extract.h"

namespace scd::eval {

IntervalizedStream::IntervalizedStream(
    std::span<const traffic::FlowRecord> records, double interval_s,
    traffic::KeyKind key_kind, traffic::UpdateKind update_kind)
    : interval_s_(interval_s), key_kind_(key_kind) {
  assert(interval_s_ > 0.0);
  if (records.empty()) return;
  // Buckets are aligned to absolute multiples of the interval length (the
  // way a router's export epoch works), not to the first record's offset.
  const double start =
      std::floor(traffic::record_time_s(records.front()) / interval_s_) *
      interval_s_;
  const double end = traffic::record_time_s(records.back());
  const auto n_intervals =
      static_cast<std::size_t>(std::floor((end - start) / interval_s_)) + 1;
  intervals_.resize(n_intervals);

  // Aggregate per (interval, key). Records are time-ordered, so we can keep
  // one accumulation map and flush it at interval boundaries.
  std::unordered_map<std::uint64_t, double> acc;
  std::size_t current = 0;
  const auto flush = [&] {
    auto& bucket = intervals_[current];
    bucket.reserve(acc.size());
    for (const auto& [key, value] : acc) {
      AggregatedUpdate u;
      u.key = key;
      u.dense_index = static_cast<std::uint32_t>(dictionary_.intern(key));
      u.value = value;
      bucket.push_back(u);
    }
    acc.clear();
  };
  for (const traffic::FlowRecord& r : records) {
    const auto t = static_cast<std::size_t>(
        (traffic::record_time_s(r) - start) / interval_s_);
    assert(t >= current && t < n_intervals);
    while (current < t) {
      flush();
      ++current;
    }
    acc[traffic::extract_key(r, key_kind)] +=
        traffic::extract_update(r, update_kind);
  }
  flush();
}

perflow::DenseVector IntervalizedStream::observed_dense(std::size_t t) const {
  perflow::DenseVector v(dictionary_.size());
  for (const AggregatedUpdate& u : intervals_[t]) v[u.dense_index] = u.value;
  return v;
}

std::vector<std::uint64_t> IntervalizedStream::interval_keys(
    std::size_t t) const {
  std::vector<std::uint64_t> keys;
  keys.reserve(intervals_[t].size());
  for (const AggregatedUpdate& u : intervals_[t]) keys.push_back(u.key);
  return keys;
}

}  // namespace scd::eval
