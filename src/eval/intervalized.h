// IntervalizedStream: buckets a flow trace into discrete intervals (§2.2)
// and pre-aggregates updates per (interval, key).
//
// Aggregation is lossless for everything downstream — sketch UPDATE is
// linear, so applying one aggregated update per key per interval produces
// exactly the sketch the raw stream would — and it makes the repeated
// (H, K, model) sweeps of §5 cheap. The distinct-key list per interval is
// also precisely the key set the paper's two-pass detection replays.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "perflow/dense_vector.h"
#include "perflow/key_dictionary.h"
#include "sketch/kary_sketch.h"
#include "traffic/flow_record.h"
#include "traffic/key_extract.h"

namespace scd::eval {

struct AggregatedUpdate {
  std::uint64_t key = 0;
  std::uint32_t dense_index = 0;  // index into the stream-wide dictionary
  double value = 0.0;
};

class IntervalizedStream {
 public:
  /// Records must be time-ordered (as TraceReader guarantees).
  IntervalizedStream(std::span<const traffic::FlowRecord> records,
                     double interval_s, traffic::KeyKind key_kind,
                     traffic::UpdateKind update_kind);

  [[nodiscard]] std::size_t num_intervals() const noexcept {
    return intervals_.size();
  }
  [[nodiscard]] double interval_seconds() const noexcept { return interval_s_; }

  /// Aggregated updates of interval t (one entry per distinct key).
  [[nodiscard]] std::span<const AggregatedUpdate> interval(
      std::size_t t) const noexcept {
    return intervals_[t];
  }

  /// Dictionary over every key that appears anywhere in the stream.
  [[nodiscard]] const perflow::KeyDictionary& dictionary() const noexcept {
    return dictionary_;
  }

  /// Exact observed signal o_a(t) as a dense vector over all keys.
  [[nodiscard]] perflow::DenseVector observed_dense(std::size_t t) const;

  /// Adds interval t's updates into an observed sketch.
  template <typename Family>
  void fill_observed_sketch(std::size_t t,
                            sketch::BasicKarySketch<Family>& s) const {
    for (const AggregatedUpdate& u : intervals_[t]) s.update(u.key, u.value);
  }

  /// Distinct keys of interval t — the §3.3 two-pass replay set.
  [[nodiscard]] std::vector<std::uint64_t> interval_keys(std::size_t t) const;

  [[nodiscard]] traffic::KeyKind key_kind() const noexcept { return key_kind_; }

 private:
  double interval_s_;
  traffic::KeyKind key_kind_;
  perflow::KeyDictionary dictionary_;
  std::vector<std::vector<AggregatedUpdate>> intervals_;
};

}  // namespace scd::eval
