// Parallel ingestion: the sharded multi-threaded front-end over the same
// detection pipeline as examples/quickstart.cpp.
//
// W worker threads each maintain a private k-ary sketch over their share of
// the stream (records are routed by key); at every interval boundary the
// shard sketches are COMBINE-merged — exactly, thanks to sketch linearity —
// and the merged interval flows through the ordinary forecast/detect stages.
// The alarm output is the same as the single-threaded pipeline's; only the
// per-record UPDATE work is spread across cores. Build & run:
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/parallel_ingest
#include <cstdio>

#include "common/random.h"
#include "ingest/parallel_pipeline.h"

int main() {
  using namespace scd;

  // 1. The detection configuration is untouched by parallelism: same
  //    intervals, sketch shape, forecast model, and threshold as quickstart.
  core::PipelineConfig config;
  config.interval_s = 60.0;
  config.h = 5;
  config.k = 32768;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.1;

  // 2. The parallel front-end: 4 shard workers, bounded queues (a full
  //    queue blocks the producer — backpressure, never dropped records).
  ingest::ParallelConfig parallel;
  parallel.workers = 4;
  parallel.queue_capacity = 1 << 16;  // records per shard queue
  parallel.batch_size = 512;          // records handed off per queue push

  ingest::ParallelPipeline pipeline(config, parallel);
  pipeline.set_report_callback([](const core::IntervalReport& report) {
    std::printf("interval %2zu  records=%-6llu", report.index,
                static_cast<unsigned long long>(report.records));
    if (!report.detection_ran) {
      std::printf("  (model warming up)\n");
      return;
    }
    std::printf("  alarms=%zu\n", report.alarms.size());
    for (const auto& alarm : report.alarms) {
      std::printf("    ALARM key=%llu  forecast error=%+.0f bytes\n",
                  static_cast<unsigned long long>(alarm.key), alarm.error);
    }
  });

  // 3. Same synthetic stream as quickstart: 2000 steady flows, flow 1337
  //    jumps 40x in minute 7.
  common::Rng rng(7);
  for (int minute = 0; minute < 12; ++minute) {
    const double t = minute * 60.0 + 1.0;
    for (std::uint64_t flow = 0; flow < 2000; ++flow) {
      const double bytes = 900.0 + rng.uniform(-200.0, 200.0);
      pipeline.add(flow, bytes, t);
    }
    if (minute == 7) pipeline.add(1337, 40000.0, t + 1.0);
  }
  pipeline.flush();

  // 4. Summarize, including the front-end's own counters.
  std::size_t total_alarms = 0;
  for (const auto& report : pipeline.reports()) {
    total_alarms += report.alarms.size();
  }
  const auto stats = pipeline.parallel_stats();
  std::printf("\n%zu intervals, %zu alarms, %llu records through %zu shards\n",
              pipeline.reports().size(), total_alarms,
              static_cast<unsigned long long>(stats.records),
              parallel.workers);
  std::printf("barrier merges: %zu   backpressure waits: %llu\n",
              stats.barriers,
              static_cast<unsigned long long>(stats.backpressure_waits));
  return 0;
}
