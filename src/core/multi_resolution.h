// MultiResolutionPipeline — simultaneous change detection at several
// aggregation levels of the destination hierarchy (§2.1: keys as prefixes
// achieve "higher levels of aggregation"). One record feed drives every
// level; drill_down() connects a coarse alarm to the finer-level alarms
// inside it, the workflow an operator follows from a /16 alert to the
// offending host.
#pragma once

#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "traffic/flow_record.h"
#include "traffic/key_extract.h"

namespace scd::core {

class MultiResolutionPipeline {
 public:
  /// Levels must be ordered coarse -> fine along the destination hierarchy
  /// (e.g. /16, /24, host) and share interval_s; throws
  /// std::invalid_argument otherwise.
  explicit MultiResolutionPipeline(std::vector<PipelineConfig> levels);

  void add_record(const traffic::FlowRecord& record);
  void flush();

  [[nodiscard]] std::size_t num_levels() const noexcept {
    return pipelines_.size();
  }
  [[nodiscard]] const ChangeDetectionPipeline& level(std::size_t i) const {
    return *pipelines_[i];
  }

  /// Alarms at `level + 1` (one step finer) within the same interval whose
  /// key projects onto the coarse alarm's key. Empty for the finest level.
  [[nodiscard]] std::vector<detect::Alarm> drill_down(
      std::size_t level, const detect::Alarm& alarm) const;

 private:
  std::vector<traffic::KeyKind> kinds_;
  std::vector<std::unique_ptr<ChangeDetectionPipeline>> pipelines_;
};

}  // namespace scd::core
