// Instruments for the sharded ingestion front-end (src/ingest).
//
// Same model as obs/pipeline_metrics.h: registered once per construction
// against a registry (the process-global one by default), held by stable
// reference afterwards so the worker hot paths never lock or allocate.
// Families:
//   scd_ingest_queue_records          gauge      records queued across shards
//   scd_ingest_backpressure_total     counter    pushes that had to block
//   scd_ingest_merge_seconds          histogram  COMBINE barrier-merge latency
//   scd_ingest_shard_apply_seconds    histogram  one chunk applied, {shard=i}
//   scd_ingest_batch_size             histogram  records per batched UPDATE
//   scd_ingest_batch_records_total    counter    records through update_batch
//   scd_ingest_shutdown_dropped_records_total  counter  records lost when
//                                                close() raced a blocked push
#pragma once

#include <cstddef>
#include <vector>

#include "obs/metrics.h"

namespace scd::ingest {

struct IngestInstruments {
  obs::Gauge& queue_records;
  obs::Counter& backpressure_waits;
  obs::Histogram& merge_seconds;
  /// Chunk sizes flowing through the batched-UPDATE path, in records —
  /// how much hash batching and per-row sweeping each chunk amortizes over.
  obs::Histogram& batch_size;
  /// Total records applied via BasicKarySketch::update_batch.
  obs::Counter& batch_records;
  /// Records discarded because the pipeline shut down while a full-queue
  /// push was still waiting. Always zero in a clean run; nonzero means the
  /// final interval's sketch is missing these records.
  obs::Counter& shutdown_dropped_records;
  /// One histogram per shard worker, labelled {shard="0".."W-1"}.
  std::vector<obs::Histogram*> shard_apply_seconds;

  /// Registers (or finds) the bundle for a front-end with `workers` shards.
  /// Identical (name, labels) identities across pipelines share instances.
  [[nodiscard]] static IngestInstruments create(obs::MetricsRegistry& registry,
                                                std::size_t workers);
};

}  // namespace scd::ingest
