// Extension: ground-truth ROC. The paper's "Applications" promise measured
// end to end: detection rate vs false-alarm volume as the threshold T
// sweeps, scored against the injected anomalies (something unlabeled real
// traces cannot provide). Compares EWMA against non-seasonal Holt-Winters.
#include <cstdio>

#include "eval/ground_truth.h"
#include "support/bench_util.h"
#include "traffic/synthetic.h"

namespace {

using namespace scd;

traffic::SyntheticConfig scenario() {
  traffic::SyntheticConfig config;
  config.seed = 2024;
  config.duration_s = 14400.0;
  config.base_rate = 60.0;
  config.num_hosts = 20000;
  config.zipf_exponent = 1.05;
  // Four labeled anomalies of graded difficulty.
  const struct {
    traffic::AnomalyKind kind;
    double start, dur, mag;
    std::size_t rank;
  } specs[] = {
      {traffic::AnomalyKind::kDosAttack, 4800, 300, 250, 400},
      {traffic::AnomalyKind::kDosAttack, 7200, 300, 60, 2500},   // subtle
      {traffic::AnomalyKind::kFlashCrowd, 9000, 1200, 150, 900},
      {traffic::AnomalyKind::kFlashCrowd, 12000, 900, 50, 5000},  // subtle
  };
  for (const auto& s : specs) {
    traffic::AnomalySpec a;
    a.kind = s.kind;
    a.start_s = s.start;
    a.duration_s = s.dur;
    a.magnitude = s.mag;
    a.target_rank = s.rank;
    config.anomalies.push_back(a);
  }
  return config;
}

}  // namespace

int main() {
  bench::print_header(
      "Extension: ground-truth ROC",
      "detection rate vs false alarms across thresholds (4 labeled events)",
      "monotone trade-off; moderate thresholds catch all events with few "
      "false alarms");

  traffic::SyntheticTraceGenerator generator(scenario());
  const auto records = generator.generate();
  const auto labels = eval::labeled_anomalies(generator);
  std::printf("%zu labeled anomalies over 4 h\n", labels.size());

  const std::vector<double> thresholds{0.01, 0.02, 0.05, 0.1, 0.2, 0.4};
  for (const auto kind :
       {forecast::ModelKind::kEwma, forecast::ModelKind::kHoltWinters}) {
    core::PipelineConfig base;
    base.interval_s = 300.0;
    base.h = 5;
    base.k = 32768;
    base.model.kind = kind;
    base.model.alpha = 0.6;
    base.model.beta = 0.3;
    const auto curve =
        eval::threshold_roc(records, labels, base, thresholds, 3600.0);
    std::vector<std::pair<double, double>> points;
    std::printf("\n--- model=%s ---\n", forecast::model_kind_name(kind));
    std::printf("%-10s %-16s %s\n", "threshold", "detection rate",
                "false alarms/interval");
    for (const auto& p : curve) {
      std::printf("%-10.2f %-16.2f %.2f\n", p.threshold, p.detection_rate,
                  p.false_alarms_per_interval);
      points.emplace_back(p.false_alarms_per_interval, p.detection_rate);
    }
    bench::print_series(
        common::str_format("roc_%s(fa_per_interval, detection)",
                           forecast::model_kind_name(kind)),
        points);
    // Claims: monotone false alarms; full detection at a usable threshold.
    bool monotone = true;
    for (std::size_t i = 1; i < curve.size(); ++i) {
      if (curve[i].false_alarms_per_interval >
          curve[i - 1].false_alarms_per_interval + 1e-9) {
        monotone = false;
      }
    }
    bench::check(monotone,
                 common::str_format("%s: false alarms fall as T rises",
                                    forecast::model_kind_name(kind)),
                 "");
    bool full_detection_cheap = false;
    for (const auto& p : curve) {
      if (p.detection_rate == 1.0 && p.false_alarms_per_interval < 20.0) {
        full_detection_cheap = true;
      }
    }
    bench::check(full_detection_cheap,
                 common::str_format(
                     "%s: some threshold catches all 4 events with <20 "
                     "false alarms/interval",
                     forecast::model_kind_name(kind)),
                 "");
  }
  return bench::finish();
}
