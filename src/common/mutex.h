// Annotated mutex, scoped lock, and condition variable
// (docs/CONCURRENCY.md).
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so code using them is invisible to Clang's capability
// analysis. These thin wrappers add the annotations and nothing else:
//   * Mutex      — std::mutex declared as an SCD_CAPABILITY,
//   * MutexLock  — std::lock_guard as an SCD_SCOPED_CAPABILITY,
//   * CondVar    — std::condition_variable_any waiting on a Mutex, with
//                  wait() declared SCD_REQUIRES(mu) so a wait outside the
//                  critical section is a compile error.
//
// Every mutex-owning type in src/ must use these instead of the std types
// directly; scd_lint's `mutex-wrapper` rule enforces that (waivable with
// `// scd-lint: allow(mutex-wrapper)` plus a rationale).
//
// CondVar deliberately has no predicate overload: Clang analyzes a lambda
// body as a separate unannotated function, so a `[&] { return guarded_; }`
// predicate would warn even when the wait holds the lock. Callers write
// the classic `while (!cond) cv.wait(mu);` loop instead, which the
// analysis follows naturally.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace scd::common {

/// std::mutex as a named capability. Same cost, same semantics; only the
/// compile-time contract is new.
class SCD_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCD_ACQUIRE() { mu_.lock(); }
  void unlock() SCD_RELEASE() { mu_.unlock(); }
  [[nodiscard]] bool try_lock() SCD_TRY_ACQUIRE(true) {
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;  // scd-lint: allow(mutex-wrapper) — the wrapper itself
};

/// RAII critical section over Mutex (std::lock_guard with annotations).
class SCD_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SCD_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() SCD_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable bound to Mutex. wait() requires the lock by
/// annotation, matching std::condition_variable's runtime precondition.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, blocks, and reacquires before returning.
  /// Callers loop on their predicate: `while (!cond) cv.wait(mu);`.
  void wait(Mutex& mu) SCD_REQUIRES(mu) {
    LockAdapter adapter{mu};
    cv_.wait(adapter);
  }

  /// Timed wait; returns std::cv_status::timeout when `dur` elapses first.
  template <typename Rep, typename Period>
  std::cv_status wait_for(Mutex& mu,
                          const std::chrono::duration<Rep, Period>& dur)
      SCD_REQUIRES(mu) {
    LockAdapter adapter{mu};
    return cv_.wait_for(adapter, dur);
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  // BasicLockable shim handed to condition_variable_any: its lock/unlock
  // run while the analysis believes the caller still holds `mu` (wait()'s
  // REQUIRES), so they are excluded from analysis — the runtime behavior
  // is exactly std::condition_variable's internal unlock/relock.
  struct LockAdapter {
    Mutex& mu;
    void lock() SCD_NO_THREAD_SAFETY_ANALYSIS { mu.lock(); }
    void unlock() SCD_NO_THREAD_SAFETY_ANALYSIS { mu.unlock(); }
  };

  std::condition_variable_any cv_;
};

}  // namespace scd::common
