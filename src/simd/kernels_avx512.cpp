// AVX-512F kernels. Built into every binary via per-function
// target("avx512f") attributes; only executed after a cpuid check
// (supported(), consulted once by the dispatcher in kernels.cpp).
//
// Numerical notes:
//   * scale and axpy are element-wise: lane i computes exactly what the
//     scalar reference computes for element i — a separately rounded
//     multiply then add, never an FMA. This TU is built with
//     -ffp-contract=off (see CMakeLists.txt) to stop GCC fusing the mul+add
//     intrinsic pairs and the tail loops inside these target("avx512f")
//     functions. Results are bit-identical across dispatch modes.
//   * The reductions (dot, sum_squares, hsum) keep 4 independent vector
//     accumulators (32 doubles in flight) and collapse each 8-lane register
//     through a fixed halving tree; this reassociates the sum, so they match
//     the scalar reference only to ULP-level tolerance (see
//     tests/simd/kernels_test.cpp).
#include "simd/kernels_avx512.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

// GCC's _mm512_extractf64x4_pd / cast intrinsics expand through an
// intentionally-uninitialized _mm256_undefined_pd() temporary inside
// avx512fintrin.h; at -O2 the uninitialized-use warnings fire on the
// header's own lines when those intrinsics inline here (GCC bug 105593).
// Header-internal false positive, so it is silenced for this TU only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wuninitialized"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#define SCD_AVX512_TARGET __attribute__((target("avx512f")))

namespace scd::simd::avx512 {

bool supported() noexcept { return __builtin_cpu_supports("avx512f") != 0; }

namespace {

/// Horizontal sum of one 8-lane register: halve 512→256→128→64 — a fixed
/// tree order, part of the reduction contract the tests pin down.
SCD_AVX512_TARGET inline double reduce_lanes(__m512d v) noexcept {
  const __m256d lo = _mm512_castpd512_pd256(v);
  const __m256d hi = _mm512_extractf64x4_pd(v, 1);
  const __m256d quad = _mm256_add_pd(lo, hi);
  const __m128d pair = _mm_add_pd(_mm256_castpd256_pd128(quad),
                                  _mm256_extractf128_pd(quad, 1));
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

}  // namespace

SCD_AVX512_TARGET void scale(double* x, std::size_t n, double c) noexcept {
  const __m512d vc = _mm512_set1_pd(c);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), vc));
    _mm512_storeu_pd(x + i + 8, _mm512_mul_pd(_mm512_loadu_pd(x + i + 8), vc));
    _mm512_storeu_pd(x + i + 16,
                     _mm512_mul_pd(_mm512_loadu_pd(x + i + 16), vc));
    _mm512_storeu_pd(x + i + 24,
                     _mm512_mul_pd(_mm512_loadu_pd(x + i + 24), vc));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(x + i, _mm512_mul_pd(_mm512_loadu_pd(x + i), vc));
  }
  for (; i < n; ++i) x[i] *= c;
}

SCD_AVX512_TARGET void axpy(double* y, const double* x, std::size_t n,
                            double c) noexcept {
  const __m512d vc = _mm512_set1_pd(c);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                             _mm512_mul_pd(vc, _mm512_loadu_pd(x + i))));
    _mm512_storeu_pd(
        y + i + 8, _mm512_add_pd(_mm512_loadu_pd(y + i + 8),
                                 _mm512_mul_pd(vc, _mm512_loadu_pd(x + i + 8))));
    _mm512_storeu_pd(
        y + i + 16,
        _mm512_add_pd(_mm512_loadu_pd(y + i + 16),
                      _mm512_mul_pd(vc, _mm512_loadu_pd(x + i + 16))));
    _mm512_storeu_pd(
        y + i + 24,
        _mm512_add_pd(_mm512_loadu_pd(y + i + 24),
                      _mm512_mul_pd(vc, _mm512_loadu_pd(x + i + 24))));
  }
  for (; i + 8 <= n; i += 8) {
    _mm512_storeu_pd(
        y + i, _mm512_add_pd(_mm512_loadu_pd(y + i),
                             _mm512_mul_pd(vc, _mm512_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += c * x[i];
}

SCD_AVX512_TARGET double dot(const double* x, const double* y,
                             std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd();
  __m512d acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i),
                           acc0);
    acc1 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 8),
                           _mm512_loadu_pd(y + i + 8), acc1);
    acc2 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 16),
                           _mm512_loadu_pd(y + i + 16), acc2);
    acc3 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i + 24),
                           _mm512_loadu_pd(y + i + 24), acc3);
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_fmadd_pd(_mm512_loadu_pd(x + i), _mm512_loadu_pd(y + i),
                           acc0);
  }
  const __m512d acc = _mm512_add_pd(_mm512_add_pd(acc0, acc1),
                                    _mm512_add_pd(acc2, acc3));
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

SCD_AVX512_TARGET double sum_squares(const double* x, std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd();
  __m512d acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m512d v0 = _mm512_loadu_pd(x + i);
    const __m512d v1 = _mm512_loadu_pd(x + i + 8);
    const __m512d v2 = _mm512_loadu_pd(x + i + 16);
    const __m512d v3 = _mm512_loadu_pd(x + i + 24);
    acc0 = _mm512_fmadd_pd(v0, v0, acc0);
    acc1 = _mm512_fmadd_pd(v1, v1, acc1);
    acc2 = _mm512_fmadd_pd(v2, v2, acc2);
    acc3 = _mm512_fmadd_pd(v3, v3, acc3);
  }
  for (; i + 8 <= n; i += 8) {
    const __m512d v = _mm512_loadu_pd(x + i);
    acc0 = _mm512_fmadd_pd(v, v, acc0);
  }
  const __m512d acc = _mm512_add_pd(_mm512_add_pd(acc0, acc1),
                                    _mm512_add_pd(acc2, acc3));
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += x[i] * x[i];
  return total;
}

SCD_AVX512_TARGET double hsum(const double* x, std::size_t n) noexcept {
  __m512d acc0 = _mm512_setzero_pd();
  __m512d acc1 = _mm512_setzero_pd();
  __m512d acc2 = _mm512_setzero_pd();
  __m512d acc3 = _mm512_setzero_pd();
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(x + i));
    acc1 = _mm512_add_pd(acc1, _mm512_loadu_pd(x + i + 8));
    acc2 = _mm512_add_pd(acc2, _mm512_loadu_pd(x + i + 16));
    acc3 = _mm512_add_pd(acc3, _mm512_loadu_pd(x + i + 24));
  }
  for (; i + 8 <= n; i += 8) {
    acc0 = _mm512_add_pd(acc0, _mm512_loadu_pd(x + i));
  }
  const __m512d acc = _mm512_add_pd(_mm512_add_pd(acc0, acc1),
                                    _mm512_add_pd(acc2, acc3));
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += x[i];
  return total;
}

SCD_AVX512_TARGET void index_shift_mask(const std::uint64_t* packed,
                                        std::size_t n, unsigned shift,
                                        std::uint64_t mask,
                                        std::uint32_t* out) noexcept {
  // Widened integer path for the batched-UPDATE row sweep: eight packed
  // 64-bit hash groups per register, shift + mask, then a vpmovqd
  // truncating narrow (the indices are < 2^16, so the truncation is exact).
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i vm = _mm512_set1_epi64(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_and_epi64(
        _mm512_srl_epi64(
            _mm512_loadu_si512(reinterpret_cast<const void*>(packed + i)), sh),
        vm);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i),
                        _mm512_cvtepi64_epi32(v));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>((packed[i] >> shift) & mask);
  }
}

}  // namespace scd::simd::avx512

#else  // non-x86: the AVX-512 backend is never selectable.

#include "simd/kernels_scalar.h"

namespace scd::simd::avx512 {

bool supported() noexcept { return false; }

void scale(double* x, std::size_t n, double c) noexcept {
  scalar::scale(x, n, c);
}
void axpy(double* y, const double* x, std::size_t n, double c) noexcept {
  scalar::axpy(y, x, n, c);
}
double dot(const double* x, const double* y, std::size_t n) noexcept {
  return scalar::dot(x, y, n);
}
double sum_squares(const double* x, std::size_t n) noexcept {
  return scalar::sum_squares(x, n);
}
double hsum(const double* x, std::size_t n) noexcept {
  return scalar::hsum(x, n);
}
void index_shift_mask(const std::uint64_t* packed, std::size_t n,
                      unsigned shift, std::uint64_t mask,
                      std::uint32_t* out) noexcept {
  scalar::index_shift_mask(packed, n, shift, mask, out);
}

}  // namespace scd::simd::avx512

#endif
