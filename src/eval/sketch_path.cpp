#include "eval/sketch_path.h"

#include <cmath>
#include <memory>

#include "detect/detection.h"
#include "forecast/runner.h"
#include "hash/cw_hash.h"
#include "hash/tabulation_hash.h"
#include "sketch/kary_sketch.h"

namespace scd::eval {

double SketchPathResult::total_energy(std::size_t warmup_intervals) const {
  return std::sqrt(total_f2(warmup_intervals));
}

double SketchPathResult::total_f2(std::size_t warmup_intervals) const {
  double sum = 0.0;
  for (std::size_t t = warmup_intervals; t < intervals.size(); ++t) {
    // ESTIMATEF2 is unbiased, not nonnegative; clamp per-interval terms so a
    // near-zero error signal cannot drive the total negative.
    if (intervals[t].ready) sum += std::max(intervals[t].est_f2, 0.0);
  }
  return sum;
}

namespace {

template <typename Family>
SketchPathResult run_path(const IntervalizedStream& stream,
                          const forecast::ModelConfig& config,
                          const SketchPathOptions& options) {
  using Sketch = sketch::BasicKarySketch<Family>;
  const auto family = std::make_shared<const Family>(options.seed, options.h);
  const Sketch prototype(family, options.k);
  forecast::ForecastRunner<Sketch> runner(config, prototype);

  SketchPathResult result;
  result.intervals.resize(stream.num_intervals());
  for (std::size_t t = 0; t < stream.num_intervals(); ++t) {
    Sketch observed = prototype;
    stream.fill_observed_sketch(t, observed);
    const auto step = runner.step(observed);
    SketchIntervalErrors& out = result.intervals[t];
    if (!step.has_value()) continue;
    out.ready = true;
    out.est_f2 = step->error.estimate_f2();
    if (options.collect_errors) {
      const auto updates = stream.interval(t);
      out.ranked.reserve(updates.size());
      for (const AggregatedUpdate& u : updates) {
        out.ranked.push_back({u.key, step->error.estimate(u.key)});
      }
      detect::sort_by_abs_error(out.ranked);
    }
  }
  return result;
}

}  // namespace

SketchPathResult compute_sketch_errors(const IntervalizedStream& stream,
                                       const forecast::ModelConfig& config,
                                       const SketchPathOptions& options) {
  if (traffic::key_fits_32bit(stream.key_kind())) {
    return run_path<hash::TabulationHashFamily>(stream, config, options);
  }
  return run_path<hash::CwHashFamily>(stream, config, options);
}

}  // namespace scd::eval
