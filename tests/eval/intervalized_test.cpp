#include "eval/intervalized.h"

#include <gtest/gtest.h>

#include <map>

namespace scd::eval {
namespace {

using traffic::FlowRecord;

FlowRecord record(double t_s, std::uint32_t dst, std::uint64_t bytes) {
  FlowRecord r;
  r.timestamp_us = static_cast<std::uint64_t>(t_s * 1e6);
  r.dst_ip = dst;
  r.src_ip = 1;
  r.bytes = bytes;
  r.packets = static_cast<std::uint32_t>(bytes / 100 + 1);
  return r;
}

TEST(IntervalizedStream, BucketsByTime) {
  const std::vector<FlowRecord> records{
      record(0.5, 10, 100), record(9.9, 11, 200),   // interval 0
      record(10.0, 10, 300),                        // interval 1
      record(25.0, 12, 400),                        // interval 2
  };
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  ASSERT_EQ(stream.num_intervals(), 3u);
  EXPECT_EQ(stream.interval(0).size(), 2u);
  EXPECT_EQ(stream.interval(1).size(), 1u);
  EXPECT_EQ(stream.interval(2).size(), 1u);
}

TEST(IntervalizedStream, AggregatesPerKeyWithinInterval) {
  const std::vector<FlowRecord> records{
      record(1.0, 10, 100), record(2.0, 10, 250), record(3.0, 11, 40)};
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  std::map<std::uint64_t, double> values;
  for (const auto& u : stream.interval(0)) values[u.key] = u.value;
  EXPECT_EQ(values.size(), 2u);
  EXPECT_DOUBLE_EQ(values[10], 350.0);
  EXPECT_DOUBLE_EQ(values[11], 40.0);
}

TEST(IntervalizedStream, EmptyMiddleIntervalsExist) {
  const std::vector<FlowRecord> records{record(0.0, 10, 1),
                                        record(35.0, 10, 2)};
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  ASSERT_EQ(stream.num_intervals(), 4u);
  EXPECT_TRUE(stream.interval(1).empty());
  EXPECT_TRUE(stream.interval(2).empty());
  EXPECT_EQ(stream.interval(3).size(), 1u);
}

TEST(IntervalizedStream, DictionaryCoversAllKeys) {
  const std::vector<FlowRecord> records{
      record(0.0, 10, 1), record(11.0, 20, 1), record(22.0, 30, 1)};
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  EXPECT_EQ(stream.dictionary().size(), 3u);
  EXPECT_TRUE(stream.dictionary().lookup(10).has_value());
  EXPECT_TRUE(stream.dictionary().lookup(30).has_value());
}

TEST(IntervalizedStream, ObservedDenseMatchesAggregates) {
  const std::vector<FlowRecord> records{
      record(0.0, 10, 100), record(1.0, 20, 50), record(12.0, 10, 70)};
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  const auto v0 = stream.observed_dense(0);
  const auto v1 = stream.observed_dense(1);
  EXPECT_EQ(v0.dimension(), stream.dictionary().size());
  const auto idx10 = *stream.dictionary().lookup(10);
  const auto idx20 = *stream.dictionary().lookup(20);
  EXPECT_DOUBLE_EQ(v0[idx10], 100.0);
  EXPECT_DOUBLE_EQ(v0[idx20], 50.0);
  EXPECT_DOUBLE_EQ(v1[idx10], 70.0);
  EXPECT_DOUBLE_EQ(v1[idx20], 0.0);
}

TEST(IntervalizedStream, FillObservedSketchMatchesDense) {
  const std::vector<FlowRecord> records{
      record(0.0, 10, 100), record(1.0, 20, 50), record(2.0, 10, 25)};
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  const auto family = sketch::make_tabulation_family(1, 5);
  sketch::KarySketch s(family, 4096);
  stream.fill_observed_sketch(0, s);
  EXPECT_NEAR(s.estimate(10), 125.0, 1.0);
  EXPECT_NEAR(s.estimate(20), 50.0, 1.0);
  EXPECT_DOUBLE_EQ(s.sum(), 175.0);
}

TEST(IntervalizedStream, IntervalKeysAreDistinct) {
  const std::vector<FlowRecord> records{
      record(0.0, 10, 1), record(1.0, 10, 1), record(2.0, 20, 1)};
  IntervalizedStream stream(records, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  const auto keys = stream.interval_keys(0);
  EXPECT_EQ(keys.size(), 2u);
}

TEST(IntervalizedStream, SupportsAlternativeKeysAndUpdates) {
  const std::vector<FlowRecord> records{record(0.0, 10, 100),
                                        record(1.0, 10, 100)};
  IntervalizedStream by_packets(records, 10.0, traffic::KeyKind::kDstIp,
                                traffic::UpdateKind::kPackets);
  EXPECT_DOUBLE_EQ(by_packets.interval(0)[0].value, 4.0);  // 2 x (100/100+1)
  IntervalizedStream by_records(records, 10.0, traffic::KeyKind::kSrcIp,
                                traffic::UpdateKind::kRecords);
  EXPECT_DOUBLE_EQ(by_records.interval(0)[0].value, 2.0);
  EXPECT_EQ(by_records.interval(0)[0].key, 1u);  // src_ip
}

TEST(IntervalizedStream, EmptyRecordsProduceNoIntervals) {
  IntervalizedStream stream({}, 10.0, traffic::KeyKind::kDstIp,
                            traffic::UpdateKind::kBytes);
  EXPECT_EQ(stream.num_intervals(), 0u);
  EXPECT_EQ(stream.dictionary().size(), 0u);
}

}  // namespace
}  // namespace scd::eval
