// Shard workers for parallel ingestion (docs/PARALLEL_INGEST.md).
//
// W workers each own a private k-ary sketch drawn from ONE shared hash
// family — the precondition for COMBINE (§3.1): linear combination is only
// meaningful between sketches with identical hash functions. Records are
// routed to a fixed shard by key, so
//   * each shard's registers accumulate a deterministic subsequence of the
//     stream (single producer per queue, FIFO), and
//   * the per-shard distinct-key buffers are disjoint — concatenating them
//     at the barrier reproduces the serial pipeline's key set exactly.
//
// The interval-close barrier is deterministic: the producer pushes one
// barrier token per queue after all of the interval's records; each worker,
// on seeing the token, hands off its sketch and key buffer and starts the
// next interval with fresh ones; the coordinator COMBINE-merges the W
// handoffs in shard order. Sketch linearity makes the merge exact — the
// merged table equals the serial pipeline's table up to floating-point
// addition order within each register.
//
// Locking contract (docs/CONCURRENCY.md): barrier_mutex_ guards arrived_
// and every Shard handoff slot; publish/collect go through the
// SCD_REQUIRES(barrier_mutex_) helpers so a clang -Wthread-safety build
// rejects an unlocked handoff access. The stats counters are relaxed
// atomics: written by the producer thread, readable from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "ingest/bounded_queue.h"
#include "ingest/ingest_metrics.h"
#include "obs/trace.h"
#include "sketch/kary_sketch.h"

namespace scd::ingest {

/// One (key, update) stream item. Alias of the sketch layer's batch-record
/// type so a dequeued chunk feeds BasicKarySketch::update_batch directly.
using Record = sketch::Record;

/// Producer-side batch: the queue is locked once per chunk, not per record.
using Chunk = std::vector<Record>;

struct ShardMessage {
  Chunk records;
  bool barrier = false;
};

/// Type-erased interface so ParallelPipeline can hold either family's shard
/// set behind one pointer (mirroring the core pipeline's engine dispatch).
class ShardSetBase {
 public:
  virtual ~ShardSetBase() = default;
  /// Enqueues a chunk for `shard` (blocking when the queue is full).
  virtual void submit(std::size_t shard, Chunk&& chunk) = 0;
  /// Closes the interval in progress: barrier, COMBINE-merge, key concat.
  /// All of the interval's chunks must have been submitted first.
  [[nodiscard]] virtual core::IntervalBatch barrier_merge() = 0;
  /// Closes all queues and joins the workers. Idempotent.
  virtual void stop() = 0;
  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t backpressure_waits() const noexcept = 0;
  /// Records lost because close() raced a blocked push during shutdown.
  /// Nonzero only when the pipeline is destroyed with records in flight.
  [[nodiscard]] virtual std::uint64_t dropped_records() const noexcept = 0;
};

template <typename Family>
class ShardSet final : public ShardSetBase {
 public:
  using Sketch = sketch::BasicKarySketch<Family>;

  /// `queue_chunks` is the per-shard queue capacity in chunks; `instruments`
  /// may be null (metrics disabled).
  ShardSet(std::uint64_t seed, std::size_t h, std::size_t k,
           std::size_t worker_count, std::size_t queue_chunks,
           IngestInstruments* instruments)
      : family_(std::make_shared<const Family>(seed, h)),
        k_(k),
        instruments_(instruments) {
    shards_.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(queue_chunks));
    }
    for (std::size_t i = 0; i < worker_count; ++i) {
      shards_[i]->thread = std::thread([this, i] { run_worker(i); });
    }
  }

  ~ShardSet() override { stop(); }

  void submit(std::size_t shard, Chunk&& chunk) override {
    BoundedQueue<ShardMessage>& queue = shards_[shard]->queue;
    const auto n = static_cast<double>(chunk.size());
    ShardMessage msg{std::move(chunk), false};
    if (instruments_ != nullptr) instruments_->queue_records.add(n);
    if (!queue.try_push(msg)) {
      // mo: stats counter — single producer writes, any thread may read
      // via backpressure_waits(); no ordering ties it to other state.
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_ != nullptr) instruments_->backpressure_waits.inc();
      if (!queue.push(msg)) {
        // Closed mid-shutdown. The chunk is still intact (push leaves its
        // argument alone on failure), so the loss is counted instead of
        // vanishing: every dropped record biases the interval's sketch, and
        // an operator must be able to see that the stream was cut short.
        // mo: stats counter — same single-writer/any-reader contract.
        dropped_records_.fetch_add(msg.records.size(),
                                   std::memory_order_relaxed);
        if (instruments_ != nullptr) {
          instruments_->queue_records.add(-n);
          instruments_->shutdown_dropped_records.inc(msg.records.size());
        }
      }
    }
  }

  core::IntervalBatch barrier_merge() SCD_EXCLUDES(barrier_mutex_) override {
    SCD_TRACE_SPAN("barrier_combine", "ingest");
    for (auto& shard : shards_) {
      ShardMessage barrier{{}, true};
      shard->queue.push(barrier);
    }
    common::MutexLock lock(barrier_mutex_);
    while (arrived_ != shards_.size()) barrier_cv_.wait(barrier_mutex_);
    arrived_ = 0;
    return collect_handoffs_locked();
  }

  void stop() override {
    for (auto& shard : shards_) shard->queue.close();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
  }

  [[nodiscard]] std::size_t workers() const noexcept override {
    return shards_.size();
  }
  [[nodiscard]] std::uint64_t backpressure_waits() const noexcept override {
    // mo: stats read — a point-in-time sample, no ordering required.
    return backpressure_waits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_records() const noexcept override {
    // mo: stats read — a point-in-time sample, no ordering required.
    return dropped_records_.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    explicit Shard(std::size_t queue_chunks) : queue(queue_chunks) {}
    BoundedQueue<ShardMessage> queue;
    // Handoff slot: written by the worker, read and cleared by the
    // coordinator, both under the owning ShardSet's barrier_mutex_ (a
    // nested struct cannot name the outer instance's mutex in an
    // attribute, so the SCD_REQUIRES helpers below carry the contract).
    std::optional<Sketch> handoff_sketch;
    std::vector<std::uint64_t> handoff_keys;
    std::uint64_t handoff_records = 0;
    std::thread thread;
  };

  /// Worker side of the barrier: parks the finished interval's sketch and
  /// key set in the shard's handoff slot and bumps the arrival count.
  void publish_handoff_locked(Shard& shard, Sketch&& sketch,
                              const std::unordered_set<std::uint64_t>& keys,
                              std::uint64_t records)
      SCD_REQUIRES(barrier_mutex_) {
    shard.handoff_sketch.emplace(std::move(sketch));
    shard.handoff_keys.assign(keys.begin(), keys.end());
    shard.handoff_records = records;
    ++arrived_;
  }

  /// Coordinator side: COMBINE-merges the W handoffs in shard order and
  /// concatenates the key buffers, then clears every slot for the next
  /// interval. Caller holds barrier_mutex_ and has seen all W arrivals.
  [[nodiscard]] core::IntervalBatch collect_handoffs_locked()
      SCD_REQUIRES(barrier_mutex_) {
    const common::Stopwatch merge_watch;
    // COMBINE(1, S_0, ..., 1, S_{W-1}) in shard order — fixed order keeps
    // the merged registers bit-identical run to run.
    std::vector<const Sketch*> parts;
    parts.reserve(shards_.size());
    for (auto& shard : shards_) parts.push_back(&*shard->handoff_sketch);
    const std::vector<double> coeffs(shards_.size(), 1.0);
    const Sketch merged = Sketch::combine(coeffs, parts);

    core::IntervalBatch batch;
    batch.registers.assign(merged.registers().begin(),
                           merged.registers().end());
    for (auto& shard : shards_) {
      batch.records += shard->handoff_records;
      batch.keys.insert(batch.keys.end(), shard->handoff_keys.begin(),
                        shard->handoff_keys.end());
      shard->handoff_sketch.reset();
      shard->handoff_keys.clear();
    }
    if (instruments_ != nullptr) {
      instruments_->merge_seconds.observe(merge_watch.seconds());
    }
    return batch;
  }

  void run_worker(std::size_t index) {
    Shard& shard = *shards_[index];
    // Worker-local interval state; only the barrier handoff is shared.
    Sketch sketch(family_, k_);
    std::unordered_set<std::uint64_t> keys;
    std::uint64_t records = 0;
    obs::Histogram* apply_hist =
        instruments_ != nullptr ? instruments_->shard_apply_seconds[index]
                                : nullptr;
    for (;;) {
      std::optional<ShardMessage> msg;
      {
        // The dequeue span covers queue wait: a long "ingest_dequeue" next
        // to short "shard_update_batch" spans reads as a starved worker.
        SCD_TRACE_SPAN("ingest_dequeue", "ingest");
        msg = shard.queue.pop();
      }
      if (!msg.has_value()) break;
      if (msg->barrier) {
        {
          common::MutexLock lock(barrier_mutex_);
          publish_handoff_locked(shard, std::move(sketch), keys, records);
        }
        barrier_cv_.notify_all();
        sketch = Sketch(family_, k_);
        keys.clear();
        records = 0;
        continue;
      }
      const common::Stopwatch apply_watch;
      SCD_TRACE_SPAN_ARG("shard_update_batch", "ingest", msg->records.size());
      // Batched UPDATE (docs/PERFORMANCE.md): hash-batch + per-row sweep,
      // bit-identical to per-record update() on this shard's subsequence.
      sketch.update_batch(msg->records);
      for (const Record& r : msg->records) keys.insert(r.key);
      records += msg->records.size();
      if (apply_hist != nullptr) {
        apply_hist->observe(apply_watch.seconds());
        instruments_->batch_size.observe(
            static_cast<double>(msg->records.size()));
        instruments_->batch_records.inc(msg->records.size());
        instruments_->queue_records.add(
            -static_cast<double>(msg->records.size()));
      }
    }
  }

  std::shared_ptr<const Family> family_;
  std::size_t k_;
  IngestInstruments* instruments_;
  std::vector<std::unique_ptr<Shard>> shards_;
  common::Mutex barrier_mutex_;
  common::CondVar barrier_cv_;
  std::size_t arrived_ SCD_GUARDED_BY(barrier_mutex_) = 0;
  // Stats counters: producer thread writes, stats() may be called from any
  // thread (monitoring), so plain integers here were a data race.
  std::atomic<std::uint64_t> backpressure_waits_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
};

}  // namespace scd::ingest
