#include "traffic/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/random.h"

namespace scd::traffic {
namespace {

class TraceIoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "scd_trace_test";
    std::filesystem::create_directories(dir);
    const auto path = dir / name;
    paths_.push_back(path.string());
    return path.string();
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

FlowRecord sample_record(std::uint64_t t_us) {
  FlowRecord r;
  r.timestamp_us = t_us;
  r.src_ip = 0x0a000001;
  r.dst_ip = 0xc0a80102;
  r.src_port = 12345;
  r.dst_port = 80;
  r.protocol = 6;
  r.tos = 4;
  r.flags = 0x18;
  r.packets = 10;
  r.bytes = 15000;
  return r;
}

TEST_F(TraceIoTest, RoundTripsSingleRecord) {
  const auto path = temp_path("single.scdt");
  const FlowRecord original = sample_record(123456789);
  write_trace(path, {original});
  const auto records = read_trace(path);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], original);
}

TEST_F(TraceIoTest, RoundTripsManyRandomRecords) {
  const auto path = temp_path("many.scdt");
  scd::common::Rng rng(1);
  std::vector<FlowRecord> records;
  std::uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    FlowRecord r;
    t += rng.next_below(1000);
    r.timestamp_us = t;
    r.src_ip = static_cast<std::uint32_t>(rng.next_u64());
    r.dst_ip = static_cast<std::uint32_t>(rng.next_u64());
    r.src_port = static_cast<std::uint16_t>(rng.next_u64());
    r.dst_port = static_cast<std::uint16_t>(rng.next_u64());
    r.protocol = static_cast<std::uint8_t>(rng.next_below(256));
    r.packets = static_cast<std::uint32_t>(rng.next_below(1000) + 1);
    r.bytes = rng.next_below(1000000);
    records.push_back(r);
  }
  write_trace(path, records);
  EXPECT_EQ(read_trace(path), records);
}

TEST_F(TraceIoTest, EmptyTraceRoundTrips) {
  const auto path = temp_path("empty.scdt");
  write_trace(path, {});
  EXPECT_TRUE(read_trace(path).empty());
}

TEST_F(TraceIoTest, ReaderReportsRecordCount) {
  const auto path = temp_path("count.scdt");
  write_trace(path, {sample_record(1), sample_record(2), sample_record(3)});
  TraceReader reader(path);
  EXPECT_EQ(reader.record_count(), 3u);
}

TEST_F(TraceIoTest, StreamingReadMatchesBulkRead) {
  const auto path = temp_path("stream.scdt");
  std::vector<FlowRecord> records;
  for (std::uint64_t i = 0; i < 100; ++i) records.push_back(sample_record(i));
  write_trace(path, records);
  TraceReader reader(path);
  FlowRecord r;
  std::size_t n = 0;
  while (reader.next(r)) {
    EXPECT_EQ(r, records[n]);
    ++n;
  }
  EXPECT_EQ(n, records.size());
}

TEST_F(TraceIoTest, MissingFileThrows) {
  EXPECT_THROW(TraceReader("/nonexistent/dir/file.scdt"), std::runtime_error);
}

TEST_F(TraceIoTest, BadMagicThrows) {
  const auto path = temp_path("badmagic.scdt");
  std::ofstream out(path, std::ios::binary);
  out.write("NOPE0000000000000000", 20);
  out.close();
  EXPECT_THROW({ TraceReader reader(path); }, std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedHeaderThrows) {
  const auto path = temp_path("short.scdt");
  std::ofstream out(path, std::ios::binary);
  out.write("SC", 2);
  out.close();
  EXPECT_THROW({ TraceReader reader(path); }, std::runtime_error);
}

TEST_F(TraceIoTest, TruncatedBodyStopsCleanly) {
  const auto path = temp_path("truncbody.scdt");
  write_trace(path, {sample_record(1), sample_record(2)});
  // Chop the last record in half.
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) - kTraceRecordBytes / 2);
  TraceReader reader(path);
  FlowRecord r;
  EXPECT_TRUE(reader.next(r));
  EXPECT_FALSE(reader.next(r));  // truncated record is not fabricated
}

TEST_F(TraceIoTest, WriterCountsRecords) {
  const auto path = temp_path("writer.scdt");
  TraceWriter writer(path);
  writer.append(sample_record(10));
  writer.append(sample_record(20));
  EXPECT_EQ(writer.records_written(), 2u);
  writer.finish();
}

TEST_F(TraceIoTest, UnwritableDirectoryThrows) {
  EXPECT_THROW(TraceWriter("/nonexistent/dir/out.scdt"), std::runtime_error);
}

}  // namespace
}  // namespace scd::traffic
