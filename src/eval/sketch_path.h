// Sketch-side evaluation path: builds the observed sketch per interval,
// runs the forecasting model at the sketch level, and reconstructs forecast
// errors for the interval's candidate keys via two-pass replay (§3.3).
#pragma once

#include <cstdint>
#include <vector>

#include "detect/alarm.h"
#include "eval/intervalized.h"
#include "forecast/model_config.h"

namespace scd::eval {

struct SketchPathOptions {
  std::size_t h = 5;
  std::size_t k = 32768;
  std::uint64_t seed = 0x5eedc0de;  // hash-family seed
  /// When false, only the ESTIMATEF2 series is produced (sufficient for the
  /// energy experiments and the grid-search objective).
  bool collect_errors = true;
};

struct SketchIntervalErrors {
  bool ready = false;
  /// ESTIMATEF2(S_e(t)) — the estimated second moment of the error signal.
  double est_f2 = 0.0;
  /// Candidate keys' estimated errors, sorted by |error| descending.
  std::vector<detect::KeyError> ranked;
};

struct SketchPathResult {
  std::vector<SketchIntervalErrors> intervals;

  [[nodiscard]] double total_energy(std::size_t warmup_intervals) const;
  [[nodiscard]] double total_f2(std::size_t warmup_intervals) const;
};

[[nodiscard]] SketchPathResult compute_sketch_errors(
    const IntervalizedStream& stream, const forecast::ModelConfig& config,
    const SketchPathOptions& options);

}  // namespace scd::eval
