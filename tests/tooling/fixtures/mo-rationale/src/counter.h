// Fixture: a weakened memory order with no `// mo:` rationale in its block.
#pragma once

#include <atomic>
#include <cstdint>

namespace scd {

class EventCounter {
 public:
  void record() { hits_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> hits_{0};
};

}  // namespace scd
