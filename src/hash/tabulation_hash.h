// Tabulation-based 4-universal hashing for 32-bit keys (Thorup & Zhang,
// paper ref [33]) — the scheme the paper's implementation and Table 1 use.
//
// A 32-bit key is split into two 16-bit characters x0, x1. With three
// character tables filled with independent uniform values,
//
//     h(x) = T0[x0] ^ T1[x1] ^ T2[x0 + x1]
//
// is 4-universal (the derived character x0 + x1 in [0, 2^17) is what lifts
// simple tabulation from 3- to 4-universality for two characters).
//
// Each table entry is a 64-bit word holding four independent 16-bit lanes, so
// one triple of lookups yields four independent hash functions; a family of
// H rows uses ceil(H/4) table triples. This reproduces the paper's "each hash
// computation produces 8 independent 16-bit hash values" layout (two triples).
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "hash/hash_family.h"

namespace scd::hash {

class TabulationHashFamily {
 public:
  /// Keys wider than 32 bits are outside this family's domain (the split
  /// into two 16-bit characters covers 32 bits); callers must use
  /// CwHashFamily for 64-bit key kinds.
  static constexpr unsigned kKeyBits = 32;

  /// Creates `rows` independent hash functions over 32-bit keys, with table
  /// contents derived deterministically from `seed`.
  TabulationHashFamily(std::uint64_t seed, std::size_t rows);

  /// Hashes the key with hash function `row`. Precondition: key < 2^32
  /// (use CwHashFamily for wider keys).
  [[nodiscard]] std::uint16_t hash16(std::size_t row,
                                     std::uint64_t key) const noexcept {
    assert(key <= 0xffffffffULL);
    const std::size_t group = row >> 2;
    const unsigned lane = static_cast<unsigned>(row & 3) * 16;
    return static_cast<std::uint16_t>(hash_group(group, static_cast<std::uint32_t>(key)) >> lane);
  }

  /// One packed evaluation: 4 independent 16-bit values for group `group`.
  [[nodiscard]] std::uint64_t hash_group(std::size_t group,
                                         std::uint32_t key) const noexcept {
    const Tables& t = tables_[group];
    const std::uint32_t x0 = key & 0xffff;
    const std::uint32_t x1 = key >> 16;
    return t.t0[x0] ^ t.t1[x1] ^ t.t2[x0 + x1];
  }

  /// Fills `out[0..n)` (n = rows()) with all hash values of `key` using one
  /// packed lookup per 4 rows — the paper's batched hashing pattern.
  void hash_all(std::uint32_t key, std::uint16_t* out) const noexcept {
    std::size_t row = 0;
    for (std::size_t g = 0; g < tables_.size(); ++g) {
      std::uint64_t packed = hash_group(g, key);
      for (unsigned lane = 0; lane < 4 && row < rows_; ++lane, ++row) {
        out[row] = static_cast<std::uint16_t>(packed);
        packed >>= 16;
      }
    }
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// The seed this family was constructed from (for serialization: a family
  /// is fully determined by (seed, rows)).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  struct Tables {
    std::vector<std::uint64_t> t0;  // 2^16 entries
    std::vector<std::uint64_t> t1;  // 2^16 entries
    std::vector<std::uint64_t> t2;  // 2^17 - 1 entries (index x0 + x1)
  };
  std::vector<Tables> tables_;
  std::size_t rows_;
  std::uint64_t seed_ = 0;
};

static_assert(HashFamily16<TabulationHashFamily>);

}  // namespace scd::hash
