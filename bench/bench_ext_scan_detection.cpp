// Extension: alternative key/update instantiations (§2.1 lists source IP
// keys and connection counts among the model's choices; the paper's own
// evaluation fixes key=dst, update=bytes "to keep the parameter space
// manageable").
//
// A port scanner touches thousands of destinations with 40-byte probes: by
// bytes it is negligible, and under destination keys its traffic is smeared
// across the key space. Keyed by SOURCE address with RECORD-COUNT updates,
// the scanner is a massive change. This bench runs both instantiations on
// the small router (whose profile embeds a port scan) and compares where
// the scanner ranks.
#include <cmath>
#include <cstdio>

#include "eval/intervalized.h"
#include "eval/sketch_path.h"
#include "support/bench_util.h"
#include "traffic/feistel.h"
#include "traffic/router_profiles.h"
#include "eval/trace_cache.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Extension: key/update choice",
      "port-scan detection: (dst, bytes) vs (src, record-count) keys",
      "the scanner is invisible to byte-volume detection but tops the "
      "connection-count ranking under source keys");

  const auto& profile = traffic::router_by_name("small");
  const auto& records = eval::cached_trace(profile);
  // The scanner's fixed source address (see SyntheticTraceGenerator).
  std::uint64_t scan_start = 0;
  for (const auto& anomaly : profile.config.anomalies) {
    if (anomaly.kind == traffic::AnomalyKind::kPortScan) {
      scan_start = static_cast<std::uint64_t>(anomaly.start_s);
    }
  }
  const std::uint32_t scanner =
      traffic::feistel32(0x5ca9, profile.config.seed ^ 0x5ca77e12ULL);
  const auto interval = 300.0;
  const auto scan_interval = static_cast<std::size_t>(
      static_cast<double>(scan_start) / interval);

  forecast::ModelConfig model;
  model.kind = forecast::ModelKind::kEwma;
  model.alpha = 0.6;
  eval::SketchPathOptions options;
  options.h = 5;
  options.k = 32768;

  const auto rank_of = [](const eval::SketchIntervalErrors& errors,
                          std::uint64_t key) -> std::size_t {
    for (std::size_t i = 0; i < errors.ranked.size(); ++i) {
      if (errors.ranked[i].key == key) return i + 1;
    }
    return 0;  // not present
  };
  // Share of the interval's error L2 norm carried by the top-ranked key.
  const auto top_share = [](const eval::SketchIntervalErrors& errors) {
    if (errors.ranked.empty() || errors.est_f2 <= 0.0) return 0.0;
    return std::abs(errors.ranked[0].error) / std::sqrt(errors.est_f2);
  };

  // (a) Paper-default instantiation: dst keys, byte updates. The scan's
  // volume is smeared over tens of thousands of 40-byte destinations, so
  // no single key changes appreciably.
  const eval::IntervalizedStream by_bytes(records, interval,
                                          traffic::KeyKind::kDstIp,
                                          traffic::UpdateKind::kBytes);
  const auto bytes_errors =
      eval::compute_sketch_errors(by_bytes, model, options);
  const double scan_share_bytes =
      top_share(bytes_errors.intervals[scan_interval]);
  double typical_share_bytes = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 12; t < bytes_errors.intervals.size(); ++t) {
    if (t == scan_interval || t == scan_interval + 1) continue;
    if (!bytes_errors.intervals[t].ready) continue;
    typical_share_bytes += top_share(bytes_errors.intervals[t]);
    ++counted;
  }
  typical_share_bytes /= static_cast<double>(counted);

  // (b) Scan-oriented instantiation: src keys, record-count updates — the
  // scanner's thousands of probes pile onto one key.
  const eval::IntervalizedStream by_conns(records, interval,
                                          traffic::KeyKind::kSrcIp,
                                          traffic::UpdateKind::kRecords);
  const auto conn_errors = eval::compute_sketch_errors(by_conns, model, options);
  const std::size_t rank_conns =
      rank_of(conn_errors.intervals[scan_interval], scanner);
  const double scan_share_conns =
      top_share(conn_errors.intervals[scan_interval]);

  std::printf("scan interval %zu:\n", scan_interval);
  std::printf("  (dst, bytes): top key's share of error L2 = %.2f "
              "(typical interval: %.2f) — no scan signature\n",
              scan_share_bytes, typical_share_bytes);
  std::printf("  (src, record count): scanner rank %zu, share of error L2 = "
              "%.2f\n",
              rank_conns, scan_share_conns);

  bench::check(rank_conns == 1,
               "connection-count keying ranks the scanner first",
               common::str_format("rank %zu", rank_conns));
  bench::check(scan_share_conns > 0.5,
               "the scanner dominates the (src, records) error signal",
               common::str_format("share %.2f", scan_share_conns));
  bench::check(scan_share_bytes < 3.0 * typical_share_bytes,
               "under (dst, bytes) the scan produces no dominant key",
               common::str_format("scan %.2f vs typical %.2f",
                                  scan_share_bytes, typical_share_bytes));
  return bench::finish();
}
