// ScdFaultInjector — a FileOps that fails on purpose.
//
// The checkpoint writer's crash-safety claims ("no torn checkpoint is ever
// loaded", "every failure leaves a clean older checkpoint behind") are only
// testable if the failures can be produced on demand. The injector wraps
// the real FileOps and, per an explicit Plan, simulates the three classic
// storage faults:
//   * partial write  — the temp file receives only the first N bytes and
//     the write "crashes" (throws kWriteFailed);
//   * torn rename    — the destination appears but holds a truncated copy,
//     as after power loss on a non-atomic filesystem;
//   * bit rot        — the write completes, then one bit of the final file
//     is silently flipped (the CRC must catch it at restore time).
// Every operation and injected fault is appended to an in-memory event log
// that dump_log() writes to a file — CI uploads it as the fault-injection
// artifact when the crash-recovery job fails.
#pragma once

#include <cstddef>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"

namespace scd::checkpoint {

class ScdFaultInjector final : public FileOps {
 public:
  struct Plan {
    /// Truncate the durable write after this many bytes and throw
    /// kWriteFailed (the on-disk temp file keeps the prefix).
    std::optional<std::size_t> fail_after_bytes;
    /// Replace the rename with "destination = first N bytes of source",
    /// then throw kWriteFailed — a torn rename frozen mid-crash.
    std::optional<std::size_t> torn_rename_bytes;
    /// After a fully successful write+rename, flip this bit index (counted
    /// from the start of the final file, modulo its size). No error is
    /// raised — the corruption is silent by design.
    std::optional<std::size_t> flip_bit;
    /// Number of operations OF THE FAULTED KIND (writes for
    /// fail_after_bytes; renames for torn_rename_bytes / flip_bit) to
    /// perform faithfully before the plan arms (0 = first one already
    /// faulty). Since one checkpoint is exactly one write plus one rename,
    /// this is "write n good checkpoints, then break the n+1th".
    std::size_t arm_after_ops = 0;
  };

  explicit ScdFaultInjector(Plan plan);

  void write_file_durable(const std::filesystem::path& path,
                          const std::vector<std::uint8_t>& data) override;
  void rename_durable(const std::filesystem::path& from,
                      const std::filesystem::path& to) override;
  void remove_file(const std::filesystem::path& path) noexcept override;

  /// One line per operation or injected fault, in order.
  [[nodiscard]] const std::vector<std::string>& events() const noexcept {
    return events_;
  }

  /// Writes the event log to `path` (plain text, one event per line); used
  /// by tests to leave a post-mortem artifact for CI.
  void dump_log(const std::filesystem::path& path) const;

 private:
  [[nodiscard]] bool armed() noexcept;  // counts one op, then evaluates

  Plan plan_;
  FileOps& real_;
  std::size_t ops_seen_ = 0;
  std::vector<std::string> events_;
};

}  // namespace scd::checkpoint
