// Observability overhead: add_record throughput with the metrics layer
// enabled vs disabled at runtime (PipelineConfig::metrics), and with span
// tracing enabled on top (TraceController::global().set_enabled(true)).
//
// The instrumented hot path adds one relaxed atomic increment per record
// plus a sampled (1 in 64) stopwatch read around the sketch UPDATE, so the
// acceptance bar is <5% throughput regression. Tracing adds one relaxed
// load per span site when disabled and two clock reads + one ring store per
// *interval-level* span when enabled — nothing per record — so the traced
// configuration carries a tighter <1% bar relative to metrics-enabled. A
// separate binary, bench_obs_overhead_compiledout, measures the same loop
// against a core library built with -DSCD_OBS_ENABLED=0 (instrumentation
// and span macros removed by the preprocessor) for the true zero-cost
// floor.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "obs/trace.h"
#include "support/bench_util.h"

namespace {

using namespace scd;

core::PipelineConfig bench_config(bool metrics) {
  core::PipelineConfig config;
  // Long intervals keep the loop add-dominated: the per-record cost under
  // test is UPDATE + instrumentation, not interval-close work.
  config.interval_s = 1000.0;
  config.h = 5;
  config.k = 4096;
  config.threshold = 0.1;
  config.metrics = metrics;
  return config;
}

/// Feeds kRecords pre-drawn keys through a fresh pipeline; returns seconds.
double run_once(bool metrics, bool traced,
                const std::vector<std::uint32_t>& keys) {
  obs::TraceController::global().set_enabled(traced);
  core::ChangeDetectionPipeline pipeline(bench_config(metrics));
  const common::Stopwatch sw;
  double t = 0.0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    // Four intervals over the run: enough closes to exercise the whole
    // path without letting close costs dominate.
    t += 4000.0 / static_cast<double>(keys.size());
    pipeline.add(keys[i], 100.0, t);
  }
  const double elapsed = sw.seconds();
  pipeline.flush();
  obs::TraceController::global().set_enabled(false);
  return elapsed;
}

}  // namespace

int main() {
  using namespace scd;
  bench::print_header(
      "obs overhead", "add_record throughput, metrics on vs off",
      "runtime-enabled instrumentation costs <5% of add throughput");

  constexpr std::size_t kRecords = 4'000'000;
  std::vector<std::uint32_t> keys(kRecords);
  common::Rng rng(7);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_u64() >> 40);

  // Interleave repetitions (off, on, traced, off, on, traced, ...) and keep
  // the best of each so frequency scaling and cache warm-up bias no side.
  constexpr int kReps = 5;
  double best_off = 1e30;
  double best_on = 1e30;
  double best_traced = 1e30;
  (void)run_once(false, false, keys);  // warm-up, not measured
  for (int rep = 0; rep < kReps; ++rep) {
    best_off = std::min(best_off, run_once(false, false, keys));
    best_on = std::min(best_on, run_once(true, false, keys));
    best_traced = std::min(best_traced, run_once(true, true, keys));
  }

  const double rate_off = static_cast<double>(kRecords) / best_off;
  const double rate_on = static_cast<double>(kRecords) / best_on;
  const double rate_traced = static_cast<double>(kRecords) / best_traced;
  const double overhead = (best_on - best_off) / best_off;
  const double trace_overhead = (best_traced - best_on) / best_on;

  std::printf("\n%-28s %14s %14s\n", "configuration", "records/s",
              "ns/record");
  std::printf("%-28s %14.3e %14.1f\n", "metrics disabled (runtime)", rate_off,
              best_off / kRecords * 1e9);
  std::printf("%-28s %14.3e %14.1f\n", "metrics enabled", rate_on,
              best_on / kRecords * 1e9);
  std::printf("%-28s %14.3e %14.1f\n", "metrics + tracing enabled",
              rate_traced, best_traced / kRecords * 1e9);
  std::printf("metrics overhead: %+.2f%%   tracing overhead: %+.2f%%\n",
              overhead * 100.0, trace_overhead * 100.0);

  bench::check(overhead < 0.05,
               "metrics-enabled add throughput within 5% of disabled",
               common::str_format("overhead %+.2f%%", overhead * 100.0));
  bench::check(trace_overhead < 0.01,
               "tracing-enabled add throughput within 1% of metrics-only",
               common::str_format("overhead %+.2f%%", trace_overhead * 100.0));
  return bench::finish();
}
