#include "checkpoint/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "checkpoint/checkpoint_metrics.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"
#include "obs/metrics.h"
#include "sketch/serialize.h"

namespace scd::checkpoint {

const char* checkpoint_error_kind_name(CheckpointErrorKind kind) noexcept {
  switch (kind) {
    case CheckpointErrorKind::kWriteFailed:
      return "write-failed";
    case CheckpointErrorKind::kTruncated:
      return "truncated";
    case CheckpointErrorKind::kBadMagic:
      return "bad-magic";
    case CheckpointErrorKind::kBadVersion:
      return "bad-version";
    case CheckpointErrorKind::kBadCrc:
      return "bad-crc";
    case CheckpointErrorKind::kConfigMismatch:
      return "config-mismatch";
    case CheckpointErrorKind::kBadPayload:
      return "bad-payload";
  }
  return "unknown";
}

namespace {

/// Maps each checkpoint failure onto the closest base SerializeErrorKind so
/// legacy catch sites switching on kind() stay meaningful.
[[nodiscard]] sketch::SerializeErrorKind base_kind(
    CheckpointErrorKind kind) noexcept {
  switch (kind) {
    case CheckpointErrorKind::kWriteFailed:
      return sketch::SerializeErrorKind::kWriteFailed;
    case CheckpointErrorKind::kTruncated:
      return sketch::SerializeErrorKind::kTruncated;
    case CheckpointErrorKind::kBadMagic:
      return sketch::SerializeErrorKind::kBadMagic;
    case CheckpointErrorKind::kBadVersion:
      return sketch::SerializeErrorKind::kBadVersion;
    case CheckpointErrorKind::kBadCrc:
      return sketch::SerializeErrorKind::kCorruptRegisters;
    case CheckpointErrorKind::kConfigMismatch:
      return sketch::SerializeErrorKind::kFamilyMismatch;
    case CheckpointErrorKind::kBadPayload:
      return sketch::SerializeErrorKind::kCorruptRegisters;
  }
  return sketch::SerializeErrorKind::kCorruptRegisters;
}

}  // namespace

CheckpointError::CheckpointError(CheckpointErrorKind kind,
                                 const std::string& message)
    : sketch::SerializeError(
          base_kind(kind), std::string("checkpoint [") +
                               checkpoint_error_kind_name(kind) + "] " +
                               message),
      kind_(kind) {}

namespace {

// ---------------------------------------------------------------------------
// Config fingerprint

class Fnv1a64 {
 public:
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {
      hash_ ^= (v >> (8 * i)) & 0xffu;
      hash_ *= 0x100000001b3ULL;
    }
  }
  void f64(double v) noexcept { u64(std::bit_cast<std::uint64_t>(v)); }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

std::uint64_t config_fingerprint(const core::PipelineConfig& config) noexcept {
  Fnv1a64 fp;
  fp.f64(config.interval_s);
  fp.u64(config.h);
  fp.u64(config.k);
  fp.u64(config.seed);
  fp.u64(static_cast<std::uint64_t>(config.key_kind));
  fp.u64(static_cast<std::uint64_t>(config.update_kind));
  fp.u64(static_cast<std::uint64_t>(config.model.kind));
  fp.u64(config.model.window);
  fp.f64(config.model.alpha);
  fp.f64(config.model.beta);
  fp.f64(config.model.gamma);
  fp.u64(config.model.period);
  fp.u64(static_cast<std::uint64_t>(config.model.arima.p));
  fp.u64(static_cast<std::uint64_t>(config.model.arima.d));
  fp.u64(static_cast<std::uint64_t>(config.model.arima.q));
  for (const double c : config.model.arima.ar) fp.f64(c);
  for (const double c : config.model.arima.ma) fp.f64(c);
  fp.f64(config.threshold);
  fp.u64(static_cast<std::uint64_t>(config.criterion));
  fp.u64(static_cast<std::uint64_t>(config.baseline));
  fp.f64(config.baseline_alpha);
  fp.u64(static_cast<std::uint64_t>(config.replay));
  fp.f64(config.key_sample_rate);
  fp.u64(config.randomize_intervals ? 1 : 0);
  fp.u64(config.max_alarms_per_interval);
  fp.u64(config.min_consecutive);
  fp.u64(config.refit_every);
  fp.u64(config.refit_window);
  // config.metrics deliberately excluded: observability never alters state.
  return fp.value();
}

// ---------------------------------------------------------------------------
// Real file ops

namespace {

class PosixFileOps final : public FileOps {
 public:
  void write_file_durable(const std::filesystem::path& path,
                          const std::vector<std::uint8_t>& data) override {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "open " + path.string() + ": " +
                                std::strerror(errno));
    }
    std::size_t written = 0;
    while (written < data.size()) {
      const ::ssize_t n =
          ::write(fd, data.data() + written, data.size() - written);
      if (n < 0) {
        if (errno == EINTR) continue;
        const std::string detail = std::strerror(errno);
        ::close(fd);
        throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                              "write " + path.string() + ": " + detail);
      }
      written += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
      const std::string detail = std::strerror(errno);
      ::close(fd);
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "fsync " + path.string() + ": " + detail);
    }
    if (::close(fd) != 0) {
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "close " + path.string() + ": " +
                                std::strerror(errno));
    }
  }

  void rename_durable(const std::filesystem::path& from,
                      const std::filesystem::path& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "rename " + from.string() + " -> " + to.string() +
                                ": " + std::strerror(errno));
    }
    // fsync the containing directory so the rename itself is durable.
    const std::filesystem::path dir = to.parent_path();
    const int fd =
        ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "open dir " + dir.string() + ": " +
                                std::strerror(errno));
    }
    if (::fsync(fd) != 0) {
      const std::string detail = std::strerror(errno);
      ::close(fd);
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "fsync dir " + dir.string() + ": " + detail);
    }
    ::close(fd);
  }

  void remove_file(const std::filesystem::path& path) noexcept override {
    std::error_code ec;
    std::filesystem::remove(path, ec);
  }
};

// ---------------------------------------------------------------------------
// Frame encode/parse

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

struct ParsedCheckpoint {
  PayloadKind kind = PayloadKind::kSerial;
  std::uint64_t fingerprint = 0;
  std::uint64_t interval_index = 0;
  std::vector<std::uint8_t> payload;
};

[[nodiscard]] std::vector<std::uint8_t> frame_checkpoint(
    PayloadKind kind, std::uint64_t fingerprint, std::uint64_t interval_index,
    const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kCheckpointHeaderBytes + payload.size());
  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, static_cast<std::uint32_t>(kind));
  put_u32(out, 0);  // reserved
  put_u64(out, fingerprint);
  put_u64(out, interval_index);
  put_u64(out, payload.size());
  put_u32(out, common::crc32(payload.data(), payload.size()));
  put_u32(out, common::crc32(out.data(), out.size()));  // header CRC
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

[[nodiscard]] ParsedCheckpoint parse_checkpoint(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kCheckpointHeaderBytes) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "file ends inside the " +
                              std::to_string(kCheckpointHeaderBytes) +
                              "-byte header (" + std::to_string(bytes.size()) +
                              " bytes)");
  }
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kCheckpointMagic) {
    throw CheckpointError(CheckpointErrorKind::kBadMagic,
                          "leading bytes are not \"SCDP\"");
  }
  const std::uint32_t header_crc = get_u32(p + 44);
  if (common::crc32(p, 44) != header_crc) {
    throw CheckpointError(CheckpointErrorKind::kBadCrc,
                          "header CRC32 mismatch");
  }
  const std::uint32_t version = get_u32(p + 4);
  if (version != kCheckpointVersion) {
    throw CheckpointError(CheckpointErrorKind::kBadVersion,
                          "version " + std::to_string(version) +
                              " is not the supported version " +
                              std::to_string(kCheckpointVersion));
  }
  const std::uint32_t kind = get_u32(p + 8);
  if (kind != static_cast<std::uint32_t>(PayloadKind::kSerial) &&
      kind != static_cast<std::uint32_t>(PayloadKind::kParallel)) {
    throw CheckpointError(CheckpointErrorKind::kBadPayload,
                          "unknown payload kind " + std::to_string(kind));
  }
  ParsedCheckpoint parsed;
  parsed.kind = static_cast<PayloadKind>(kind);
  parsed.fingerprint = get_u64(p + 16);
  parsed.interval_index = get_u64(p + 24);
  const std::uint64_t payload_len = get_u64(p + 32);
  const std::uint64_t body = bytes.size() - kCheckpointHeaderBytes;
  if (body < payload_len) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "payload holds " + std::to_string(body) + " of " +
                              std::to_string(payload_len) + " bytes");
  }
  if (body > payload_len) {
    throw CheckpointError(CheckpointErrorKind::kBadPayload,
                          std::to_string(body - payload_len) +
                              " trailing bytes after the payload");
  }
  const std::uint32_t payload_crc = get_u32(p + 40);
  if (common::crc32(p + kCheckpointHeaderBytes,
                    static_cast<std::size_t>(payload_len)) != payload_crc) {
    throw CheckpointError(CheckpointErrorKind::kBadCrc,
                          "payload CRC32 mismatch");
  }
  parsed.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                            kCheckpointHeaderBytes),
                        bytes.end());
  return parsed;
}

[[nodiscard]] std::vector<std::uint8_t> read_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "cannot open " + path.string());
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

constexpr const char* kCheckpointPrefix = "ckpt-";
constexpr const char* kCheckpointSuffix = ".scdc";
constexpr const char* kTempSuffix = ".tmp";

}  // namespace

FileOps& real_file_ops() noexcept {
  static PosixFileOps ops;
  return ops;
}

std::string checkpoint_filename(std::uint64_t interval_index) {
  std::string digits = std::to_string(interval_index);
  digits.insert(0, 20 - std::min<std::size_t>(20, digits.size()), '0');
  return kCheckpointPrefix + digits + kCheckpointSuffix;
}

std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& directory) {
  std::vector<std::filesystem::path> out;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kCheckpointPrefix) &&
        name.ends_with(kCheckpointSuffix)) {
      out.push_back(entry.path());
    }
  }
  // Zero-padded decimal index: lexicographic filename order IS interval
  // order. Newest first.
  std::sort(out.begin(), out.end(),
            [](const std::filesystem::path& a, const std::filesystem::path& b) {
              return a.filename().string() > b.filename().string();
            });
  return out;
}

// ---------------------------------------------------------------------------
// CheckpointWriter

CheckpointWriter::CheckpointWriter(CheckpointWriterOptions options,
                                   const core::PipelineConfig& config)
    : options_(std::move(options)),
      fingerprint_(config_fingerprint(config)),
      ops_(options_.file_ops != nullptr ? options_.file_ops
                                        : &real_file_ops()) {
  if (options_.every < 1 || options_.keep < 1) {
    throw std::invalid_argument(
        "CheckpointWriter: every and keep must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                          "create directory " + options_.directory.string() +
                              ": " + ec.message());
  }
}

bool CheckpointWriter::due(std::size_t intervals_closed) const noexcept {
  return intervals_closed > 0 && intervals_closed % options_.every == 0;
}

std::filesystem::path CheckpointWriter::write(
    PayloadKind kind, std::uint64_t interval_index,
    const std::vector<std::uint8_t>& state) {
  const common::Stopwatch watch;
#if SCD_OBS_ENABLED
  CheckpointInstruments* obs =
      options_.metrics ? &CheckpointInstruments::global() : nullptr;
#endif
  const std::filesystem::path final_path =
      options_.directory / checkpoint_filename(interval_index);
  const std::filesystem::path temp_path =
      final_path.string() + kTempSuffix;
  const std::vector<std::uint8_t> framed =
      frame_checkpoint(kind, fingerprint_, interval_index, state);
  try {
    ops_->write_file_durable(temp_path, framed);
    ops_->rename_durable(temp_path, final_path);
  } catch (...) {
    // Leave no temp file behind; the previous checkpoints are untouched.
    ops_->remove_file(temp_path);
#if SCD_OBS_ENABLED
    if (obs != nullptr) obs->write_failures.inc();
#endif
    throw;
  }
  prune();
#if SCD_OBS_ENABLED
  if (obs != nullptr) {
    obs->snapshots.inc();
    obs->snapshot_bytes.inc(framed.size());
    obs->last_snapshot_bytes.set(static_cast<double>(framed.size()));
    obs->snapshot_seconds.observe(watch.seconds());
  }
#endif
  return final_path;
}

void CheckpointWriter::attach(core::ChangeDetectionPipeline& pipeline) {
  core::ChangeDetectionPipeline* p = &pipeline;
  pipeline.set_interval_close_callback([this, p](std::size_t closed) {
    if (!due(closed)) return;
    try {
      (void)write(PayloadKind::kSerial, p->position().interval_index,
                  p->save_state());
    } catch (const std::exception& e) {
      SCD_WARN() << "checkpoint write failed (stream continues): "
                 << e.what();
    }
  });
}

void CheckpointWriter::attach(ingest::ParallelPipeline& pipeline) {
  ingest::ParallelPipeline* p = &pipeline;
  pipeline.set_interval_close_callback([this, p](std::size_t closed) {
    if (!due(closed)) return;
    try {
      (void)write(PayloadKind::kParallel, p->position().interval_index,
                  p->save_state());
    } catch (const std::exception& e) {
      SCD_WARN() << "checkpoint write failed (stream continues): "
                 << e.what();
    }
  });
}

void CheckpointWriter::prune() noexcept {
  try {
    const std::vector<std::filesystem::path> existing =
        list_checkpoints(options_.directory);
    for (std::size_t i = options_.keep; i < existing.size(); ++i) {
      ops_->remove_file(existing[i]);
    }
    // Stray temp files are always garbage from an interrupted writer.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.directory, ec)) {
      if (entry.path().extension() == kTempSuffix) {
        ops_->remove_file(entry.path());
      }
    }
  } catch (...) {
    // Retention is best-effort; an unreadable directory entry must not fail
    // a successful snapshot.
  }
}

// ---------------------------------------------------------------------------
// recover()

namespace {

/// Shared scan loop: `try_restore(payload)` builds a scratch pipeline,
/// restores into it and swaps it into place, throwing on rejection.
template <typename TryRestore>
RecoverResult recover_scan(const std::filesystem::path& directory,
                           PayloadKind expected_kind,
                           std::uint64_t expected_fingerprint, bool metrics,
                           TryRestore&& try_restore) {
  RecoverResult result;
#if SCD_OBS_ENABLED
  CheckpointInstruments* obs =
      metrics ? &CheckpointInstruments::global() : nullptr;
#else
  (void)metrics;
#endif
  for (const std::filesystem::path& path : list_checkpoints(directory)) {
    try {
      const ParsedCheckpoint parsed = parse_checkpoint(read_file(path));
      if (parsed.fingerprint != expected_fingerprint) {
        throw CheckpointError(
            CheckpointErrorKind::kConfigMismatch,
            path.string() +
                " was written by a pipeline with a different configuration "
                "(fingerprint mismatch); refusing to restore");
      }
      if (parsed.kind != expected_kind) {
        throw CheckpointError(
            CheckpointErrorKind::kConfigMismatch,
            path.string() + " holds a " +
                (parsed.kind == PayloadKind::kSerial ? "serial" : "parallel") +
                " snapshot but a " +
                (expected_kind == PayloadKind::kSerial ? "serial"
                                                       : "parallel") +
                " pipeline is restoring");
      }
      try_restore(parsed.payload);
      result.restored = true;
      result.path = path;
      result.interval_index = parsed.interval_index;
#if SCD_OBS_ENABLED
      if (obs != nullptr) obs->restores.inc();
#endif
      return result;
    } catch (const CheckpointError& e) {
      if (e.checkpoint_kind() == CheckpointErrorKind::kConfigMismatch) throw;
      SCD_WARN() << "recover: skipping " << path.string() << ": " << e.what();
    } catch (const sketch::SerializeError& e) {
      // Framing verified but the engine rejected the payload — version
      // drift or a corruption the CRC missed. An older checkpoint may
      // still be good.
      SCD_WARN() << "recover: skipping " << path.string() << ": " << e.what();
    }
    ++result.skipped;
#if SCD_OBS_ENABLED
    if (obs != nullptr) obs->restore_skipped.inc();
#endif
  }
  return result;
}

}  // namespace

RecoverResult recover(const std::filesystem::path& directory,
                      core::ChangeDetectionPipeline& pipeline) {
  const core::PipelineConfig& config = pipeline.config();
  return recover_scan(
      directory, PayloadKind::kSerial, config_fingerprint(config),
      config.metrics, [&](const std::vector<std::uint8_t>& payload) {
        // Restore into a scratch pipeline first: a mid-restore throw must
        // not leave the caller's pipeline half-mutated.
        core::ChangeDetectionPipeline scratch(config);
        scratch.restore_state(payload);
        pipeline = std::move(scratch);
      });
}

RecoverResult recover(const std::filesystem::path& directory,
                      ingest::ParallelPipeline& pipeline) {
  const core::PipelineConfig& config = pipeline.config();
  const ingest::ParallelConfig parallel = pipeline.parallel_config();
  return recover_scan(
      directory, PayloadKind::kParallel, config_fingerprint(config),
      config.metrics, [&](const std::vector<std::uint8_t>& payload) {
        ingest::ParallelPipeline scratch(config, parallel);
        scratch.restore_state(payload);
        pipeline = std::move(scratch);
      });
}

}  // namespace scd::checkpoint
