// Aggregator daemon: the collector side of the network-wide aggregation
// tier (docs/DISTRIBUTED.md).
//
// Listens for node connections, COMBINEs each interval's per-node sketches
// into the global view once every expected node has contributed (or the
// straggler timeout forces the interval closed), and runs the ordinary
// forecast/detect stages on the combined sketch — alarms printed here are
// network-wide changes no single vantage point may be able to see. Pair it
// with examples/agg_node.cpp:
//
//   ./build/examples/aggregator --port 7337 --nodes 1,2,3 &
//   ./build/examples/agg_node --port 7337 --node-id 1 &
//   ./build/examples/agg_node --port 7337 --node-id 2 &
//   ./build/examples/agg_node --port 7337 --node-id 3
//
// The daemon runs until stdin reaches EOF (or --run-for seconds elapse),
// then force-closes anything still pending, flushes, and prints a summary.
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "agg/agg_server.h"
#include "common/flags.h"
#include "common/strutil.h"

namespace {

/// The demo pipeline configuration, shared verbatim with agg_node.cpp: the
/// handshake refuses nodes whose config fingerprint differs, so both
/// binaries must build the exact same PipelineConfig.
scd::core::PipelineConfig demo_config(double interval_s) {
  scd::core::PipelineConfig config;
  config.interval_s = interval_s;
  config.h = 5;
  config.k = 32768;
  config.model.kind = scd::forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.1;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scd;

  common::FlagParser flags;
  flags.add_flag("host", "listen address", "127.0.0.1");
  flags.add_flag("port", "listen port (0 = ephemeral, printed at startup)",
                 "7337");
  flags.add_flag("nodes", "comma-separated expected node ids", "1,2,3");
  flags.add_flag("interval", "interval length in seconds (must match nodes)",
                 "60");
  flags.add_flag("straggler-timeout",
                 "seconds to wait for missing nodes before force-closing an "
                 "interval (0 = wait forever)", "30");
  flags.add_flag("run-for", "exit after N seconds (0 = run until stdin EOF)",
                 "0");
  const bool parsed = flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.help("aggregator [flags]").c_str());
    return 0;
  }
  if (!parsed || !flags.positional().empty()) {
    std::fprintf(stderr, "%s%s\n", flags.error().c_str(),
                 flags.help("aggregator [flags]").c_str());
    return 2;
  }

  agg::AggregatorConfig agg_config;
  agg_config.pipeline =
      demo_config(flags.get_double("interval").value_or(60.0));
  for (const std::string& token : common::split(flags.get("nodes"), ',')) {
    if (token.empty()) continue;
    agg_config.nodes.push_back(std::stoull(token));
  }

  agg::AggServerConfig server_config;
  server_config.host = flags.get("host");
  server_config.port =
      static_cast<std::uint16_t>(flags.get_int("port").value_or(7337));
  server_config.straggler_timeout_s =
      flags.get_double("straggler-timeout").value_or(30.0);

  agg::AggServer server(std::move(agg_config), server_config);
  server.with_core([](agg::Aggregator& core) {
    core.set_report_callback([](const core::IntervalReport& report) {
      std::printf("global interval %2zu  records=%-8llu", report.index,
                  static_cast<unsigned long long>(report.records));
      if (!report.detection_ran) {
        std::printf("  (model warming up)\n");
        return;
      }
      std::printf("  alarms=%zu\n", report.alarms.size());
      for (const auto& alarm : report.alarms) {
        std::printf("    ALARM key=%llu  forecast error=%+.0f\n",
                    static_cast<unsigned long long>(alarm.key), alarm.error);
      }
      std::fflush(stdout);
    });
  });
  server.start();
  std::fprintf(stderr, "aggregator listening on %s:%hu (%zu nodes expected)\n",
               server_config.host.c_str(), server.port(),
               common::split(flags.get("nodes"), ',').size());

  const double run_for = flags.get_double("run-for").value_or(0.0);
  if (run_for > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(run_for));
  } else {
    // Run until the operator (or the driving script) closes stdin.
    for (int c = std::getchar(); c != EOF; c = std::getchar()) {
    }
  }

  // End of run: force-close whatever is still waiting on stragglers, flush
  // the global detection stages, and summarize.
  server.with_core([](agg::Aggregator& core) {
    while (const auto oldest = core.oldest_pending()) {
      core.close_stragglers(*oldest);
    }
    core.flush();
    const agg::AggregatorStats& stats = core.stats();
    std::size_t total_alarms = 0;
    for (const auto& report : core.reports()) {
      total_alarms += report.alarms.size();
    }
    std::printf(
        "\n%zu global intervals, %zu alarms\n"
        "contributions=%llu duplicates=%llu stale=%llu straggler_closes=%llu\n",
        core.reports().size(), total_alarms,
        static_cast<unsigned long long>(stats.contributions),
        static_cast<unsigned long long>(stats.duplicates),
        static_cast<unsigned long long>(stats.stale_drops),
        static_cast<unsigned long long>(stats.straggler_closes));
  });
  server.stop();
  return 0;
}
