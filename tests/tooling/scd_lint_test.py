#!/usr/bin/env python3
"""Fixture tests for scripts/scd_lint.py.

Each fixture under tests/tooling/fixtures/ is a miniature repo root with one
seeded violation (or, for `clean`, waived would-be violations). The tests
assert that each rule fires exactly on its seed — right rule, right file,
right count — and nowhere else, then that the real repository lints clean.

Run directly or via ctest (registered as tooling.scd_lint).
"""

import io
import contextlib
import shutil
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
FIXTURES = Path(__file__).resolve().parent / "fixtures"

sys.path.insert(0, str(REPO_ROOT / "scripts"))
import scd_lint  # noqa: E402


def run_lint(root: Path):
    """Runs the linter against `root`, returning (exit_code, output_lines)."""
    buf = io.StringIO()
    with contextlib.redirect_stdout(buf), contextlib.redirect_stderr(buf):
        code = scd_lint.main(["--root", str(root)])
    lines = [l for l in buf.getvalue().splitlines() if l.strip()]
    return code, lines


class FixtureTest(unittest.TestCase):
    def assert_single_violation(self, fixture: str, rule: str, path: str):
        code, lines = run_lint(FIXTURES / fixture)
        self.assertEqual(code, 1, f"{fixture}: expected exit 1, got {code}: {lines}")
        findings = [l for l in lines if not l.startswith("scd_lint:")]
        self.assertEqual(
            len(findings), 1,
            f"{fixture}: expected exactly one finding, got: {findings}")
        self.assertIn(f"[{rule}]", findings[0])
        self.assertTrue(
            findings[0].startswith(f"{path}:"),
            f"{fixture}: finding anchored to wrong file: {findings[0]}")

    def test_throw_not_assert_fires_on_assert_only_api(self):
        self.assert_single_violation(
            "throw-not-assert", "throw-not-assert", "src/sketch/kary_sketch.h")

    def test_kkeybits_binding_fires_on_unbound_hand_pick(self):
        self.assert_single_violation(
            "kkeybits-binding", "kkeybits-binding", "src/detector.cpp")

    def test_metric_docs_fires_on_undocumented_metric(self):
        self.assert_single_violation(
            "metric-docs-undocumented", "metric-docs",
            "src/obs/widget_metrics.cpp")

    def test_metric_docs_fires_on_stale_doc_row(self):
        self.assert_single_violation(
            "metric-docs-stale", "metric-docs", "docs/OBSERVABILITY.md")

    def test_include_hygiene_fires_on_transitive_include(self):
        self.assert_single_violation(
            "include-hygiene", "include-hygiene", "src/ingest/loader.cpp")

    def test_simd_isolation_fires_on_per_isa_include(self):
        self.assert_single_violation(
            "simd-isolation", "simd-isolation", "src/ingest/fast_path.cpp")

    def test_simd_isolation_fires_on_avx512_include(self):
        self.assert_single_violation(
            "simd-isolation-avx512", "simd-isolation",
            "src/detect/wide_sweep.cpp")

    def test_mutex_wrapper_fires_on_raw_std_mutex(self):
        self.assert_single_violation(
            "mutex-wrapper", "mutex-wrapper", "src/worker.cpp")

    def test_mo_rationale_fires_on_uncommented_order(self):
        self.assert_single_violation(
            "mo-rationale", "mo-rationale", "src/counter.h")

    def test_lock_order_doc_fires_on_undocumented_edge(self):
        self.assert_single_violation(
            "lock-order-doc-undocumented", "lock-order-doc", "src/state.h")

    def test_lock_order_doc_fires_on_stale_row(self):
        self.assert_single_violation(
            "lock-order-doc-stale", "lock-order-doc", "docs/CONCURRENCY.md")

    def test_waivers_silence_every_rule(self):
        code, lines = run_lint(FIXTURES / "clean")
        self.assertEqual(code, 0, f"clean fixture not clean: {lines}")
        self.assertEqual(lines, [])

    def test_rules_listing_matches_contract(self):
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            code = scd_lint.main(["--rules"])
        self.assertEqual(code, 0)
        self.assertEqual(
            buf.getvalue().split(),
            ["throw-not-assert", "kkeybits-binding", "metric-docs",
             "include-hygiene", "simd-isolation", "mutex-wrapper",
             "mo-rationale", "lock-order-doc"])

    def test_missing_root_is_a_usage_error(self):
        code, _ = run_lint(REPO_ROOT / "tests" / "tooling" / "no-such-dir")
        self.assertEqual(code, 2)

    def test_real_repository_lints_clean(self):
        code, lines = run_lint(REPO_ROOT)
        self.assertEqual(code, 0, f"repository has lint debt: {lines}")


class AnnotationContractTest(unittest.TestCase):
    """Live demonstration: stripping any single load-bearing thread-safety
    annotation from the REAL BoundedQueue / ShardSet headers must fail the
    lint (and therefore scripts/check.sh), even without clang."""

    def lint_with_stripped(self, rel: str, annotation: str | None):
        """Copies the real `rel` into a scratch repo root with the first
        occurrence of `annotation` removed (None = copy untouched), then
        lints that root."""
        source = (REPO_ROOT / rel).read_text()
        if annotation is not None:
            self.assertIn(annotation, source,
                          f"{rel} no longer carries {annotation}; update "
                          "ANNOTATION_CONTRACT and this test together")
            source = source.replace(annotation, "", 1)
        with tempfile.TemporaryDirectory() as tmp:
            target = Path(tmp) / rel
            target.parent.mkdir(parents=True)
            target.write_text(source)
            # shard_set.h declares a lock-order edge (epoch_mutex_ before
            # pool_mutex_); give the scratch root a doc table covering
            # exactly the edges the copy carries so `lock-order-doc` stays
            # out of these mutex-wrapper assertions.
            rows = [
                f"| `{m.group(1)}` | `{m.group(2)}` | `{rel}` | scratch |"
                for m in scd_lint.ACQUIRED_BEFORE.finditer(source)
            ]
            if rows:
                doc = Path(tmp) / scd_lint.LOCK_ORDER_DOC_PATH
                doc.parent.mkdir(parents=True)
                doc.write_text("\n".join(rows) + "\n")
            return run_lint(Path(tmp))

    def assert_contract_break(self, rel: str, annotation: str):
        code, lines = self.lint_with_stripped(rel, annotation)
        self.assertEqual(code, 1, f"stripping {annotation} from {rel} "
                         f"went unnoticed: {lines}")
        findings = [l for l in lines if "[mutex-wrapper]" in l]
        self.assertTrue(
            any("annotation contract broken" in l for l in findings),
            f"expected an annotation-contract finding, got: {lines}")

    def test_unstripped_copies_lint_clean(self):
        # Control: the same scratch-copy machinery with nothing stripped
        # produces no findings, so the assertions below isolate the strip.
        for rel in ("src/ingest/bounded_queue.h", "src/ingest/shard_set.h"):
            code, lines = self.lint_with_stripped(rel, None)
            self.assertEqual(code, 0, f"{rel} scratch copy not clean: {lines}")

    def test_stripping_guarded_by_from_bounded_queue_fails(self):
        self.assert_contract_break(
            "src/ingest/bounded_queue.h", " SCD_GUARDED_BY(mutex_)")

    def test_stripping_guarded_by_from_shard_set_fails(self):
        self.assert_contract_break(
            "src/ingest/shard_set.h", " SCD_GUARDED_BY(epoch_mutex_)")

    def test_stripping_pool_guard_from_shard_set_fails(self):
        self.assert_contract_break(
            "src/ingest/shard_set.h", " SCD_GUARDED_BY(pool_mutex_)")

    def test_stripping_requires_from_shard_set_fails(self):
        # The leading newline+indent pins the match to the declaration,
        # not the prose mention of the macro in the header comment.
        self.assert_contract_break(
            "src/ingest/shard_set.h", "\n      SCD_REQUIRES(epoch_mutex_)")


if __name__ == "__main__":
    unittest.main(verbosity=2)
