// MvShardProperty: the invertible sketch's recovery output is bit-identical
// between a serial update pass and the W=4 sharded COMBINE-merge, and under
// every SCD_SIMD dispatch decision (ctest reruns this suite with
// SCD_SIMD=scalar / avx2 / avx512 pinned).
//
// Why bit-identity is demandable (docs/KEY_RECOVERY.md): updates are
// integer-valued (< 2^53, exact in doubles) so the merged counters equal
// the serial counters exactly, and every heavy key carries overwhelming
// majority mass in its buckets, so its candidacy survives any update
// order or shard merge order. Vote *counts* are order-dependent and are
// deliberately not compared; candidate identity and the recovered
// (key, value) list are the invariant surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"
#include "ingest/shard_set.h"
#include "sketch/mv_sketch.h"

namespace scd::ingest {
namespace {

constexpr std::uint64_t kSeed = 0x5eed;
constexpr std::size_t kH = 5;
constexpr std::size_t kK = 1024;
constexpr std::size_t kWorkers = 4;

/// Integer-valued stream: light background (weight 1) plus heavy keys with
/// overwhelming per-bucket majority (weight 1e6).
std::vector<Record> make_records() {
  std::vector<Record> records;
  common::Rng rng(77);
  for (int i = 0; i < 20000; ++i) {
    records.push_back({rng.next_below(1u << 24), 1.0});
  }
  for (std::uint64_t heavy = 1; heavy <= 8; ++heavy) {
    records.push_back({heavy * 1000003, 1.0e6});
  }
  return records;
}

TEST(MvShardProperty, ShardedMergeRecoversBitIdenticalToSerial) {
  const auto records = make_records();

  // Serial reference: one sketch, records in stream order.
  const auto serial_family =
      std::make_shared<const hash::TabulationHashFamily>(kSeed, kH);
  sketch::MvSketch serial(serial_family, kK);
  serial.update_batch(records);
  const auto serial_recovered = serial.recover_heavy_keys(1000.0);
  ASSERT_EQ(serial_recovered.size(), 8u);

  // Sharded: route by the pipeline's key->shard function, barrier-merge,
  // rebuild a sketch from the published batch (registers + vote state).
  ShardSet<sketch::MvSketch> shards(kSeed, kH, kK, kWorkers,
                                    /*queue_chunks=*/64, nullptr);
  std::vector<Chunk> chunks(kWorkers);
  for (const Record& r : records) {
    chunks[common::mix64(r.key) % kWorkers].push_back(r);
  }
  for (std::size_t w = 0; w < kWorkers; ++w) {
    shards.submit(w, std::move(chunks[w]));
  }
  const core::IntervalBatch batch = shards.barrier_merge();
  shards.stop();

  ASSERT_EQ(batch.registers.size(), kH * kK);
  ASSERT_EQ(batch.mv_candidates.size(), kH * kK);
  ASSERT_EQ(batch.mv_votes.size(), kH * kK);
  // Recovery sketches collect no replay keys — that is the point.
  EXPECT_TRUE(batch.keys.empty());

  // Integer updates: the merged counter table is exactly the serial one.
  const auto serial_regs = serial.registers();
  for (std::size_t i = 0; i < serial_regs.size(); ++i) {
    ASSERT_EQ(batch.registers[i], serial_regs[i]) << "register " << i;
  }

  sketch::MvSketch merged(
      std::make_shared<const hash::TabulationHashFamily>(kSeed, kH), kK);
  merged.load_registers(batch.registers);
  merged.load_aux(batch.mv_candidates, batch.mv_votes);
  const auto sharded_recovered = merged.recover_heavy_keys(1000.0);

  ASSERT_EQ(sharded_recovered.size(), serial_recovered.size());
  for (std::size_t i = 0; i < serial_recovered.size(); ++i) {
    EXPECT_EQ(sharded_recovered[i].key, serial_recovered[i].key);
    EXPECT_EQ(sharded_recovered[i].value, serial_recovered[i].value);
  }
}

TEST(MvShardProperty, RepeatedShardedRunsAreBitIdentical) {
  const auto records = make_records();
  std::vector<std::vector<sketch::RecoveredHeavyKey>> runs;
  for (int round = 0; round < 3; ++round) {
    ShardSet<sketch::MvSketch> shards(kSeed, kH, kK, kWorkers, 64, nullptr);
    std::vector<Chunk> chunks(kWorkers);
    for (const Record& r : records) {
      chunks[common::mix64(r.key) % kWorkers].push_back(r);
    }
    for (std::size_t w = 0; w < kWorkers; ++w) {
      shards.submit(w, std::move(chunks[w]));
    }
    const core::IntervalBatch batch = shards.barrier_merge();
    shards.stop();
    sketch::MvSketch merged(
        std::make_shared<const hash::TabulationHashFamily>(kSeed, kH), kK);
    merged.load_registers(batch.registers);
    merged.load_aux(batch.mv_candidates, batch.mv_votes);
    runs.push_back(merged.recover_heavy_keys(1000.0));
  }
  for (std::size_t round = 1; round < runs.size(); ++round) {
    ASSERT_EQ(runs[round].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[round][i].key, runs[0][i].key);
      EXPECT_EQ(runs[round][i].value, runs[0][i].value);
    }
  }
}

TEST(MvShardProperty, ParallelPipelineInvertibleMatchesSerial) {
  // End-to-end: the W=4 parallel front-end in invertible mode must emit the
  // serial pipeline's alarm set exactly, with zero keys replayed on either
  // side (the vote state rides through IntervalBatch::mv_candidates).
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = kH;
  config.k = 4096;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.2;
  config.recovery = core::RecoveryMode::kInvertible;

  core::ChangeDetectionPipeline serial(config);
  ParallelConfig parallel;
  parallel.workers = kWorkers;
  ParallelPipeline sharded(config, parallel);

  const auto feed = [](auto& pipeline) {
    for (std::size_t t = 0; t < 10; ++t) {
      const double start = static_cast<double>(t) * 10.0;
      for (std::uint64_t key = 1; key <= 50; ++key) {
        const double jitter =
            static_cast<double>(common::mix64(key * 1000 + t) % 11) - 5.0;
        pipeline.add(key, 100.0 + jitter, start + 1.0);
      }
      if (t == 6) pipeline.add(999, 5000.0, start + 2.0);
    }
    pipeline.flush();
  };
  feed(serial);
  feed(sharded);

  const auto alarm_set = [](const std::vector<core::IntervalReport>& reports) {
    std::set<std::pair<std::size_t, std::uint64_t>> out;
    for (const auto& report : reports) {
      for (const auto& alarm : report.alarms) {
        out.emplace(report.index, alarm.key);
      }
    }
    return out;
  };
  ASSERT_EQ(serial.reports().size(), sharded.reports().size());
  EXPECT_EQ(alarm_set(serial.reports()), alarm_set(sharded.reports()));
  EXPECT_TRUE(alarm_set(serial.reports()).contains({6, 999}));
  EXPECT_EQ(serial.stats().keys_replayed, 0u);
  EXPECT_EQ(sharded.stats().keys_replayed, 0u);
  for (std::size_t i = 0; i < serial.reports().size(); ++i) {
    EXPECT_EQ(serial.reports()[i].estimated_error_f2,
              sharded.reports()[i].estimated_error_f2)
        << "interval " << i;
  }
}

}  // namespace
}  // namespace scd::ingest
