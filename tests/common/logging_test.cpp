#include "common/logging.h"

#include <gtest/gtest.h>

namespace scd::common {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { set_log_level(LogLevel::kInfo); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LoggingTest, StreamMacroEvaluatesLazily) {
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  const auto expensive = [&evaluations] {
    ++evaluations;
    return 42;
  };
  SCD_DEBUG() << expensive();  // below threshold: must not evaluate
  EXPECT_EQ(evaluations, 0);
  SCD_ERROR() << expensive();  // at threshold: evaluates once
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, LogLineDoesNotCrashOnEmptyAndLongMessages) {
  log_line(LogLevel::kInfo, "");
  log_line(LogLevel::kWarn, std::string(10000, 'x'));
}

TEST_F(LoggingTest, StreamComposesTypes) {
  set_log_level(LogLevel::kDebug);
  // Composition of common types must compile and not crash.
  SCD_INFO() << "value=" << 3 << " pi=" << 3.14 << " flag=" << true;
}

}  // namespace
}  // namespace scd::common
