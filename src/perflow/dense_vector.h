// DenseVector: the exact per-flow signal space.
//
// One component per distinct key (indexed via KeyDictionary). Running the
// forecasting models over DenseVector applies each (shared-parameter) linear
// model to every flow's univariate series simultaneously — this *is* the
// paper's per-flow analysis, and it is the accuracy baseline for every
// figure in §5.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

#include "forecast/linear_space.h"
#include "simd/kernels.h"

namespace scd::perflow {

class DenseVector {
 public:
  DenseVector() = default;
  explicit DenseVector(std::size_t dimension) : values_(dimension, 0.0) {}

  void set_zero() noexcept {
    std::fill(values_.begin(), values_.end(), 0.0);
  }

  void scale(double c) noexcept {
    simd::scale(values_.data(), values_.size(), c);
  }

  void add_scaled(const DenseVector& other, double c) noexcept {
    assert(values_.size() == other.values_.size());
    simd::axpy(values_.data(), other.values_.data(), values_.size(), c);
  }

  [[nodiscard]] double& operator[](std::size_t i) noexcept { return values_[i]; }
  [[nodiscard]] double operator[](std::size_t i) const noexcept {
    return values_[i];
  }

  [[nodiscard]] std::size_t dimension() const noexcept { return values_.size(); }
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Exact second moment F2 = sum_i v_i^2.
  [[nodiscard]] double f2() const noexcept {
    return simd::sum_squares(values_.data(), values_.size());
  }

 private:
  std::vector<double> values_;
};

static_assert(scd::forecast::LinearSignal<DenseVector>);

}  // namespace scd::perflow
