// Compile-time binding of traffic key kinds to sketch types.
//
// The tabulation fast path hashes 32-bit keys only; a 64-bit key kind
// (kSrcDstPair) fed through KarySketch would be truncated and two distinct
// keys would silently collide. The pipeline dispatches at runtime via
// traffic::key_fits_32bit; this header gives compile-time callers (tools
// that instantiate sketches directly for a fixed key kind) the same
// guarantee as a type-level mapping plus a static_assert-able predicate.
#pragma once

#include <type_traits>

#include "sketch/group_testing.h"
#include "sketch/kary_sketch.h"
#include "sketch/mv_sketch.h"
#include "traffic/key_extract.h"

namespace scd::core {

/// The sketch type that covers `Kind`'s key domain without truncation.
template <traffic::KeyKind Kind>
using SketchForKeyKind =
    std::conditional_t<traffic::key_fits_32bit(Kind), sketch::KarySketch,
                       sketch::KarySketch64>;

/// The invertible (majority-vote) sketch covering `Kind`'s key domain.
/// Mirrors SketchForKeyKind for callers selecting RecoveryMode::kInvertible
/// at compile time.
template <traffic::KeyKind Kind>
using MvSketchForKeyKind =
    std::conditional_t<traffic::key_fits_32bit(Kind), sketch::MvSketch,
                       sketch::MvSketch64>;

/// True when `SketchT`'s hash family hashes every key `Kind` can produce.
/// static_assert this wherever a sketch type is chosen by hand.
template <typename SketchT, traffic::KeyKind Kind>
inline constexpr bool kSketchCoversKeyKind =
    SketchT::kKeyBits >= (traffic::key_fits_32bit(Kind) ? 32u : 64u);

static_assert(kSketchCoversKeyKind<sketch::KarySketch,
                                   traffic::KeyKind::kDstIp>);
static_assert(kSketchCoversKeyKind<sketch::KarySketch64,
                                   traffic::KeyKind::kSrcDstPair>);
static_assert(!kSketchCoversKeyKind<sketch::KarySketch,
                                    traffic::KeyKind::kSrcDstPair>,
              "64-bit key kinds must bind to KarySketch64");
static_assert(kSketchCoversKeyKind<sketch::MvSketch,
                                   traffic::KeyKind::kDstIp>);
static_assert(kSketchCoversKeyKind<sketch::MvSketch64,
                                   traffic::KeyKind::kSrcDstPair>);
static_assert(!kSketchCoversKeyKind<sketch::MvSketch,
                                    traffic::KeyKind::kSrcDstPair>,
              "64-bit key kinds must bind to MvSketch64");
static_assert(kSketchCoversKeyKind<sketch::GroupTestingSketch,
                                   traffic::KeyKind::kDstIp>);
static_assert(!kSketchCoversKeyKind<sketch::GroupTestingSketch,
                                    traffic::KeyKind::kSrcDstPair>,
              "group-testing recovery hashes 32-bit keys only");

}  // namespace scd::core
