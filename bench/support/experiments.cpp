#include "support/experiments.h"

#include <cmath>
#include <map>
#include <memory>
#include <sstream>

#include "eval/metrics.h"

namespace scd::bench {

namespace {
std::string model_key(const forecast::ModelConfig& model) {
  return model.to_string();
}
}  // namespace

const eval::PerFlowTruth& truth_for(const eval::IntervalizedStream& stream,
                                    const forecast::ModelConfig& model) {
  static std::map<std::pair<const eval::IntervalizedStream*, std::string>,
                  std::unique_ptr<eval::PerFlowTruth>>
      cache;
  const auto key = std::make_pair(&stream, model_key(model));
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache
             .emplace(key, std::make_unique<eval::PerFlowTruth>(
                               eval::compute_perflow_truth(stream, model)))
             .first;
  }
  return *it->second;
}

double energy_relative_difference(const eval::IntervalizedStream& stream,
                                  const forecast::ModelConfig& model,
                                  std::size_t h, std::size_t k,
                                  std::size_t warmup) {
  // Energy-only truth (no per-key error ranking), memoized separately from
  // the full truth since Figures 1-3 sweep hundreds of parameterizations.
  static std::map<std::pair<const eval::IntervalizedStream*, std::string>,
                  double>
      energy_cache;
  const auto key = std::make_pair(&stream, model_key(model) + "#" +
                                               std::to_string(warmup));
  auto it = energy_cache.find(key);
  if (it == energy_cache.end()) {
    const auto truth = eval::compute_perflow_truth(stream, model, false);
    it = energy_cache.emplace(key, truth.total_energy(warmup)).first;
  }
  eval::SketchPathOptions options;
  options.h = h;
  options.k = k;
  options.collect_errors = false;
  const auto sketch = eval::compute_sketch_errors(stream, model, options);
  return eval::relative_difference_pct(sketch.total_energy(warmup), it->second);
}

eval::SketchPathResult sketch_errors_for(const eval::IntervalizedStream& stream,
                                         const forecast::ModelConfig& model,
                                         std::size_t h, std::size_t k) {
  eval::SketchPathOptions options;
  options.h = h;
  options.k = k;
  return eval::compute_sketch_errors(stream, model, options);
}

SimilaritySeries topn_similarity_series(const eval::PerFlowTruth& truth,
                                        const eval::SketchPathResult& sketch,
                                        std::size_t n, double x,
                                        std::size_t warmup) {
  SimilaritySeries series;
  double sum = 0.0;
  for (std::size_t t = warmup; t < truth.intervals.size(); ++t) {
    if (!truth.intervals[t].ready || !sketch.intervals[t].ready) continue;
    const double similarity = eval::topn_similarity(
        truth.intervals[t].ranked, sketch.intervals[t].ranked, n, x);
    series.points.emplace_back(static_cast<double>(t), similarity);
    sum += similarity;
  }
  series.mean =
      series.points.empty() ? 0.0 : sum / static_cast<double>(series.points.size());
  return series;
}

ThresholdStats threshold_stats(const eval::PerFlowTruth& truth,
                               const eval::SketchPathResult& sketch,
                               double threshold, std::size_t warmup) {
  ThresholdStats stats;
  std::size_t n = 0;
  for (std::size_t t = warmup; t < truth.intervals.size(); ++t) {
    if (!truth.intervals[t].ready || !sketch.intervals[t].ready) continue;
    const double pf_l2 = std::sqrt(std::max(truth.intervals[t].f2, 0.0));
    const double sk_l2 =
        std::sqrt(std::max(sketch.intervals[t].est_f2, 0.0));
    const auto counts =
        eval::threshold_counts(truth.intervals[t].ranked, pf_l2,
                               sketch.intervals[t].ranked, sk_l2, threshold);
    stats.mean_pf_alarms += static_cast<double>(counts.perflow_alarms);
    stats.mean_sk_alarms += static_cast<double>(counts.sketch_alarms);
    stats.mean_false_negative += counts.false_negative_ratio();
    stats.mean_false_positive += counts.false_positive_ratio();
    ++n;
  }
  if (n > 0) {
    const auto dn = static_cast<double>(n);
    stats.mean_pf_alarms /= dn;
    stats.mean_sk_alarms /= dn;
    stats.mean_false_negative /= dn;
    stats.mean_false_positive /= dn;
  }
  return stats;
}

}  // namespace scd::bench
