#include "sketch/group_testing.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "forecast/linear_space.h"
#include "forecast/runner.h"

namespace scd::sketch {
namespace {

GroupTestingSketch::FamilyPtr family_for(std::uint64_t seed, std::size_t rows) {
  return std::make_shared<const hash::TabulationHashFamily>(seed, rows);
}

TEST(GroupTestingSketch, EstimateMatchesKaryBehaviour) {
  GroupTestingSketch s(family_for(1, 5), 4096);
  s.update(100, 500.0);
  s.update(200, -120.0);
  EXPECT_NEAR(s.estimate(100), 500.0, 5.0);
  EXPECT_NEAR(s.estimate(200), -120.0, 5.0);
  EXPECT_NEAR(s.estimate(300), 0.0, 5.0);
  EXPECT_NEAR(s.estimate_f2(), 500.0 * 500.0 + 120.0 * 120.0, 5000.0);
}

TEST(GroupTestingSketch, RecoversSinglePlantedKey) {
  GroupTestingSketch s(family_for(2, 5), 1024);
  const std::uint32_t planted = 0xc0a80a01;  // 192.168.10.1
  s.update(planted, 10000.0);
  const auto recovered = s.recover(5000.0);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].key, planted);
  EXPECT_NEAR(recovered[0].value, 10000.0, 100.0);
}

TEST(GroupTestingSketch, RecoversNegativeChanges) {
  GroupTestingSketch s(family_for(3, 5), 1024);
  const std::uint32_t planted = 12345678;
  s.update(planted, -8000.0);  // a disappearance in an error sketch
  const auto recovered = s.recover(4000.0);
  ASSERT_EQ(recovered.size(), 1u);
  EXPECT_EQ(recovered[0].key, planted);
  EXPECT_LT(recovered[0].value, -7000.0);
}

TEST(GroupTestingSketch, RecoversMultipleHeavyKeysAmongNoise) {
  GroupTestingSketch s(family_for(4, 5), 4096);
  scd::common::Rng rng(1);
  // Background: 3000 small signed updates.
  for (int i = 0; i < 3000; ++i) {
    s.update(static_cast<std::uint32_t>(rng.next_u64()), rng.uniform(-3, 3));
  }
  const std::vector<std::pair<std::uint32_t, double>> heavy{
      {0x0a000001, 9000.0}, {0xac100005, -7000.0}, {0xc0000201, 5000.0}};
  for (const auto& [key, value] : heavy) s.update(key, value);
  const auto recovered = s.recover(2500.0);
  ASSERT_GE(recovered.size(), 3u);
  // The three planted keys must be the top three by |value|.
  EXPECT_EQ(recovered[0].key, heavy[0].first);
  EXPECT_EQ(recovered[1].key, heavy[1].first);
  EXPECT_EQ(recovered[2].key, heavy[2].first);
}

TEST(GroupTestingSketch, NoFalseKeysOnQuietSketch) {
  GroupTestingSketch s(family_for(5, 5), 1024);
  scd::common::Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    s.update(static_cast<std::uint32_t>(rng.next_u64()), rng.uniform(-1, 1));
  }
  // Threshold far above the background level.
  EXPECT_TRUE(s.recover(500.0).empty());
}

TEST(GroupTestingSketch, KeyBitsExtremesRoundTrip) {
  for (const std::uint32_t key : {0u, 0xffffffffu, 0x80000001u, 0x55555555u}) {
    GroupTestingSketch s(family_for(6, 5), 1024);
    s.update(key, 1000.0);
    const auto recovered = s.recover(500.0);
    ASSERT_EQ(recovered.size(), 1u) << key;
    EXPECT_EQ(recovered[0].key, key);
  }
}

TEST(GroupTestingSketch, IsALinearSignal) {
  static_assert(scd::forecast::LinearSignal<GroupTestingSketch>);
  const auto family = family_for(7, 5);
  GroupTestingSketch a(family, 512), b(family, 512);
  a.update(42, 100.0);
  b.update(42, 60.0);
  b.update(43, 10.0);
  a.add_scaled(b, -1.0);  // a - b
  EXPECT_NEAR(a.estimate(42), 40.0, 2.0);
  EXPECT_NEAR(a.estimate(43), -10.0, 2.0);
  a.scale(2.0);
  EXPECT_NEAR(a.estimate(42), 80.0, 4.0);
  a.set_zero();
  EXPECT_NEAR(a.estimate(42), 0.0, 1e-9);
}

TEST(GroupTestingSketch, ForecastErrorRecoveryEndToEnd) {
  // The paper's §3.3 "no key stream" mode: run EWMA over group-testing
  // sketches and recover the changed key straight from the error sketch.
  const auto family = family_for(8, 5);
  const GroupTestingSketch prototype(family, 2048);
  scd::forecast::ModelConfig config;
  config.kind = scd::forecast::ModelKind::kEwma;
  config.alpha = 0.5;
  scd::forecast::ForecastRunner<GroupTestingSketch> runner(config, prototype);
  scd::common::Rng rng(3);
  const std::uint32_t attacker_target = 0x0a0b0c0d;
  for (int t = 0; t < 8; ++t) {
    GroupTestingSketch observed = prototype;
    for (std::uint32_t key = 1; key <= 500; ++key) {
      observed.update(key, 100.0 + rng.uniform(-5, 5));
    }
    if (t == 6) observed.update(attacker_target, 50000.0);
    const auto step = runner.step(observed);
    if (t == 6) {
      ASSERT_TRUE(step.has_value());
      const double l2 = std::sqrt(std::max(step->error.estimate_f2(), 0.0));
      const auto recovered = step->error.recover(0.5 * l2);
      ASSERT_FALSE(recovered.empty());
      EXPECT_EQ(recovered[0].key, attacker_target);
      EXPECT_NEAR(recovered[0].value, 50000.0, 2500.0);
    }
  }
}

TEST(GroupTestingSketch, MemoryIs33xKarySketch) {
  GroupTestingSketch s(family_for(9, 5), 1024);
  EXPECT_EQ(s.table_bytes(), 5u * 1024u * 33u * sizeof(double));
}

}  // namespace
}  // namespace scd::sketch
