// BoundedQueue: FIFO semantics, capacity/backpressure, close protocol, and
// multi-threaded stress (the suite runs under the tsan preset via
// `ctest -L concurrency`).
#include "ingest/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace scd::ingest {
namespace {

TEST(BoundedQueue, PreservesFifoOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) {
    int item = i;
    EXPECT_TRUE(q.push(item));
  }
  for (int i = 0; i < 5; ++i) {
    const auto item = q.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(BoundedQueue, ZeroCapacityClampsToOne) {
  BoundedQueue<int> q(0);
  EXPECT_EQ(q.capacity(), 1u);
  int v = 7;
  EXPECT_TRUE(q.try_push(v));
  int w = 8;
  EXPECT_FALSE(q.try_push(w));  // full
  EXPECT_EQ(w, 8);              // failed try_push must not consume the item
}

TEST(BoundedQueue, TryPushFailsWhenFullOrClosed) {
  BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(a));
  EXPECT_TRUE(q.try_push(b));
  EXPECT_FALSE(q.try_push(c));
  q.close();
  (void)q.pop();
  int d = 4;
  EXPECT_FALSE(q.try_push(d));  // closed, even though space exists
}

TEST(BoundedQueue, CloseDrainsThenSignalsEndOfStream) {
  BoundedQueue<int> q(4);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.push(a));
  EXPECT_TRUE(q.push(b));
  q.close();
  EXPECT_FALSE(q.push(c));  // push after close fails
  EXPECT_EQ(c, 3);          // ... and must not consume the item
  EXPECT_EQ(q.pop(), 1);    // items queued before close still drain
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), std::nullopt);
  EXPECT_EQ(q.pop(), std::nullopt);  // stays terminal
}

TEST(BoundedQueue, FullPushBlocksUntilConsumerMakesSpace) {
  BoundedQueue<int> q(1);
  int first = 1;
  ASSERT_TRUE(q.push(first));
  std::atomic<bool> second_accepted{false};
  std::thread producer([&] {
    int second = 2;
    EXPECT_TRUE(q.push(second));  // blocks until the main thread pops
    second_accepted.store(true);
  });
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);  // blocks until the producer lands item 2
  producer.join();
  EXPECT_TRUE(second_accepted.load());
}

TEST(BoundedQueue, CloseWakesBlockedProducer) {
  BoundedQueue<int> q(1);
  int first = 1;
  ASSERT_TRUE(q.push(first));
  std::thread producer([&] {
    int second = 2;
    EXPECT_FALSE(q.push(second));  // blocked on full, then woken by close
    EXPECT_EQ(second, 2);          // the item survives the failed push
  });
  // Give the producer a moment to reach the wait before closing.
  std::this_thread::yield();
  q.close();
  producer.join();
}

// Regression: push() used to take its argument by value, so when close()
// raced a capacity wait the in-flight item was destroyed with no way for
// the caller to notice WHAT was lost. The reference signature must leave
// the item untouched on every failure path.
TEST(BoundedQueue, FailedPushLeavesItemIntactForTheCaller) {
  BoundedQueue<std::vector<int>> q(1);
  std::vector<int> first{1, 2, 3};
  ASSERT_TRUE(q.push(first));  // fills the queue (and moves `first` out)
  std::vector<int> blocked{4, 5, 6};
  std::thread producer([&] {
    // Blocks on the full queue; close() below wakes it with failure. The
    // chunk must still hold its records so the producer can count them.
    EXPECT_FALSE(q.push(blocked));
  });
  // Whether close() lands before or during the producer's wait, the failed
  // push must preserve the item — give the producer a moment to block.
  std::this_thread::yield();
  q.close();
  producer.join();
  EXPECT_EQ(blocked, (std::vector<int>{4, 5, 6}));

  // The fast-fail path (already closed, no wait) must preserve it too.
  EXPECT_FALSE(q.push(blocked));
  EXPECT_EQ(blocked, (std::vector<int>{4, 5, 6}));
}

TEST(BoundedQueue, MultiProducerStressDeliversEveryItemOnce) {
  // The front-end's actual shape is one producer per queue; this stress runs
  // several to exercise the mutex/condvar protocol harder under TSan.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  BoundedQueue<std::uint64_t> q(16);  // small capacity forces contention
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        std::uint64_t item = static_cast<std::uint64_t>(p) * kPerProducer +
                             static_cast<std::uint64_t>(i);
        ASSERT_TRUE(q.push(item));
      }
    });
  }
  std::uint64_t sum = 0;
  std::uint64_t count = 0;
  std::thread consumer([&] {
    while (const auto item = q.pop()) {
      sum += *item;
      ++count;
    }
  });
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  const std::uint64_t n = kProducers * kPerProducer;
  EXPECT_EQ(count, n);
  EXPECT_EQ(sum, n * (n - 1) / 2);  // each value delivered exactly once
}

}  // namespace
}  // namespace scd::ingest
