// Fixture companion: the code registers one metric; the doc table lists a
// second, stale one — that doc row is the seeded violation.
namespace scd::obs {

void register_widget_metrics(int& registry) {
  (void)registry;
  const char* name = "scd_widget_frobnications_total";
  (void)name;
}

}  // namespace scd::obs
