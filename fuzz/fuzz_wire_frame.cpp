// Fuzz target: the wire framing layer (net/wire.h).
//
// Drives FrameReader across a data-dependent split point (partial headers
// and payloads must resume correctly), then the one-shot decode_frame and
// decode_interval_payload parsers over the whole input. The only legal
// rejection is net::WireError; a poisoned reader stops parsing, matching
// the server's drop-the-connection contract (agg/agg_server.cpp).
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "net/wire.h"

#include "fuzz_driver.h"

namespace {

// Bounded so a hostile length prefix cannot make the harness itself
// allocate gigabytes; the server configures the same cap via
// AggServerConfig::max_payload_bytes.
constexpr std::size_t kMaxPayloadBytes = 1 << 20;

void drain(scd::net::FrameReader& reader) {
  while (reader.next().has_value()) {
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);

  try {
    scd::net::FrameReader reader(kMaxPayloadBytes);
    const std::size_t split = size == 0 ? 0 : data[0] % size;
    reader.feed(bytes.first(split));
    drain(reader);
    reader.feed(bytes.subspan(split));
    drain(reader);
  } catch (const scd::net::WireError&) {
    // Typed rejection: the contract. The reader is poisoned; stop.
  }

  try {
    (void)scd::net::decode_frame(bytes, kMaxPayloadBytes);
  } catch (const scd::net::WireError&) {
  }

  try {
    (void)scd::net::decode_interval_payload(bytes);
  } catch (const scd::net::WireError&) {
  }

  return 0;
}
