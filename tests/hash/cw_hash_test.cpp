#include "hash/cw_hash.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "hash/mersenne61.h"

namespace scd::hash {
namespace {

TEST(Mersenne61, Reduce61Correct) {
  EXPECT_EQ(reduce61(0), 0u);
  EXPECT_EQ(reduce61(kMersenne61), 0u);
  EXPECT_EQ(reduce61(kMersenne61 - 1), kMersenne61 - 1);
  EXPECT_EQ(reduce61(kMersenne61 + 5), 5u);
  // Exhaustive-style check against __int128 modulo on assorted values.
  for (std::uint64_t x : {1ULL, 0xffffffffffffffffULL, (1ULL << 62) + 17,
                          (1ULL << 61) + (1ULL << 13), 0x123456789abcdefULL}) {
    EXPECT_EQ(reduce61(x), x % kMersenne61) << x;
  }
}

TEST(Mersenne61, AddModCorrect) {
  const std::uint64_t a = kMersenne61 - 3;
  EXPECT_EQ(add_mod61(a, 2), kMersenne61 - 1);
  EXPECT_EQ(add_mod61(a, 3), 0u);
  EXPECT_EQ(add_mod61(a, 7), 4u);
}

TEST(Mersenne61, MulModMatchesInt128) {
  std::uint64_t state = 99;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = scd::common::splitmix64(state) % kMersenne61;
    const std::uint64_t b = scd::common::splitmix64(state) % kMersenne61;
    const auto expected = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % kMersenne61);
    EXPECT_EQ(mul_mod61(a, b), expected);
  }
}

TEST(CwHashFamily, DeterministicPerSeed) {
  CwHashFamily a(42, 5), b(42, 5);
  for (std::uint64_t key = 0; key < 100; ++key) {
    for (std::size_t row = 0; row < 5; ++row) {
      EXPECT_EQ(a.hash16(row, key), b.hash16(row, key));
    }
  }
}

TEST(CwHashFamily, DifferentSeedsDiffer) {
  CwHashFamily a(1, 1), b(2, 1);
  int equal = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (a.hash16(0, key) == b.hash16(0, key)) ++equal;
  }
  EXPECT_LT(equal, 10);  // ~1000/65536 expected
}

TEST(CwHashFamily, RowsAreIndependentFunctions) {
  CwHashFamily f(7, 4);
  int equal = 0;
  for (std::uint64_t key = 0; key < 1000; ++key) {
    if (f.hash16(0, key) == f.hash16(1, key)) ++equal;
  }
  EXPECT_LT(equal, 10);
}

TEST(CwHashFamily, Eval61WithinField) {
  CwHashFamily f(11, 3);
  for (std::uint64_t key = 0; key < 5000; key += 37) {
    for (std::size_t row = 0; row < 3; ++row) {
      EXPECT_LT(f.eval61(row, key), kMersenne61);
    }
  }
}

TEST(CwHashFamily, Handles64BitKeys) {
  CwHashFamily f(13, 2);
  // Full-width keys must hash without overflow and be deterministic.
  const std::uint64_t huge = 0xfedcba9876543210ULL;
  EXPECT_EQ(f.hash16(0, huge), f.hash16(0, huge));
  EXPECT_EQ(f.eval61(1, huge), f.eval61(1, huge));
}

TEST(CwHashFamily, RowsAccessorMatchesConstruction) {
  EXPECT_EQ(CwHashFamily(1, 1).rows(), 1u);
  EXPECT_EQ(CwHashFamily(1, 25).rows(), 25u);
}

}  // namespace
}  // namespace scd::hash
