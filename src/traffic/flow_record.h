// FlowRecord: the NetFlow-style input tuple of the data stream (§2.1's
// Turnstile-model items are derived from these via a KeyExtractor and an
// update value). Fixed-layout POD so the binary trace format is trivial.
#pragma once

#include <cstdint>

namespace scd::traffic {

struct FlowRecord {
  std::uint64_t timestamp_us = 0;  // record start time, microseconds
  std::uint32_t src_ip = 0;        // host byte order
  std::uint32_t dst_ip = 0;        // host byte order
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;       // IPPROTO_TCP by default
  std::uint8_t tos = 0;
  std::uint16_t flags = 0;
  std::uint32_t packets = 1;
  std::uint64_t bytes = 0;

  friend bool operator==(const FlowRecord&, const FlowRecord&) = default;
};

/// Seconds (floating) since trace start for a record.
[[nodiscard]] inline double record_time_s(const FlowRecord& r) noexcept {
  return static_cast<double>(r.timestamp_us) * 1e-6;
}

}  // namespace scd::traffic
