#include "sketch/group_testing.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <unordered_set>

#include "sketch/median.h"

namespace scd::sketch {

GroupTestingSketch::GroupTestingSketch(FamilyPtr family, std::size_t k)
    : family_(std::move(family)),
      k_(k),
      cells_(family_->rows() * k * kCellStride, 0.0) {
  assert(family_ != nullptr);
  assert(hash::valid_bucket_count(k_) && k_ >= 2);
  assert(family_->rows() >= 1 && family_->rows() <= kMaxRows);
}

void GroupTestingSketch::update(std::uint32_t key, double u) noexcept {
  const std::uint64_t mask = k_ - 1;
  for (std::size_t row = 0; row < depth(); ++row) {
    const std::size_t bucket = family_->hash16(row, key) & mask;
    double* cell = &cells_[cell_index(row, bucket)];
    cell[0] += u;
    std::uint32_t bits = key;
    while (bits != 0) {
      const unsigned b = static_cast<unsigned>(__builtin_ctz(bits));
      cell[1 + b] += u;
      bits &= bits - 1;
    }
  }
}

double GroupTestingSketch::row_sum(std::size_t row) const noexcept {
  double sum = 0.0;
  for (std::size_t bucket = 0; bucket < k_; ++bucket) {
    sum += cells_[cell_index(row, bucket)];
  }
  return sum;
}

double GroupTestingSketch::estimate(std::uint32_t key) const noexcept {
  const std::uint64_t mask = k_ - 1;
  const auto kd = static_cast<double>(k_);
  std::array<double, kMaxRows> est;
  for (std::size_t row = 0; row < depth(); ++row) {
    const std::size_t bucket = family_->hash16(row, key) & mask;
    const double total = cells_[cell_index(row, bucket)];
    est[row] = (total - row_sum(row) / kd) / (1.0 - 1.0 / kd);
  }
  return median_inplace(std::span<double>(est.data(), depth()));
}

double GroupTestingSketch::estimate_f2() const noexcept {
  const auto kd = static_cast<double>(k_);
  std::array<double, kMaxRows> est;
  for (std::size_t row = 0; row < depth(); ++row) {
    double sq = 0.0;
    for (std::size_t bucket = 0; bucket < k_; ++bucket) {
      const double total = cells_[cell_index(row, bucket)];
      sq += total * total;
    }
    const double sum = row_sum(row);
    est[row] = (kd * sq - sum * sum) / (kd - 1.0);
  }
  return median_inplace(std::span<double>(est.data(), depth()));
}

std::vector<RecoveredKey> GroupTestingSketch::recover(
    double threshold_abs) const {
  const std::uint64_t mask = k_ - 1;
  std::unordered_set<std::uint32_t> candidates;
  for (std::size_t row = 0; row < depth(); ++row) {
    for (std::size_t bucket = 0; bucket < k_; ++bucket) {
      const double* cell = &cells_[cell_index(row, bucket)];
      const double total = cell[0];
      if (std::abs(total) < threshold_abs) continue;
      // Read the dominating key's bits out of the bit counters.
      std::uint32_t key = 0;
      for (unsigned b = 0; b < kKeyBits; ++b) {
        if (std::abs(cell[1 + b]) > std::abs(total) / 2.0) key |= 1u << b;
      }
      // The candidate must actually hash into this bucket in this row;
      // bit-read corruption from colliding keys fails this test.
      if ((family_->hash16(row, key) & mask) == bucket) candidates.insert(key);
    }
  }
  std::vector<RecoveredKey> recovered;
  for (const std::uint32_t key : candidates) {
    const double value = estimate(key);
    if (std::abs(value) >= threshold_abs) recovered.push_back({key, value});
  }
  std::sort(recovered.begin(), recovered.end(),
            [](const RecoveredKey& a, const RecoveredKey& b) {
              if (std::abs(a.value) != std::abs(b.value)) {
                return std::abs(a.value) > std::abs(b.value);
              }
              return a.key < b.key;
            });
  return recovered;
}

void GroupTestingSketch::set_zero() noexcept {
  std::fill(cells_.begin(), cells_.end(), 0.0);
}

void GroupTestingSketch::scale(double c) noexcept {
  for (double& v : cells_) v *= c;
}

void GroupTestingSketch::add_scaled(const GroupTestingSketch& other,
                                    double c) noexcept {
  assert(family_ == other.family_ && k_ == other.k_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += c * other.cells_[i];
  }
}

}  // namespace scd::sketch
