#include "detect/provenance.h"

#include <cmath>

#include "common/strutil.h"

namespace scd::detect {

namespace {

void append_double(std::string& out, double v) {
  if (std::isfinite(v)) {
    out += common::str_format("%.17g", v);
  } else {
    out += "null";  // JSON has no NaN/Inf
  }
}

void append_array(std::string& out, const char* name,
                  const std::vector<double>& values) {
  out += ",\"";
  out += name;
  out += "\":[";
  bool first = true;
  for (const double v : values) {
    if (!first) out += ",";
    first = false;
    append_double(out, v);
  }
  out += "]";
}

}  // namespace

std::string to_json(const AlarmProvenance& provenance) {
  std::string out = common::str_format(
      "{\"schema\":\"scd-provenance-v1\",\"interval\":%llu,\"key\":%llu",
      static_cast<unsigned long long>(provenance.interval),
      static_cast<unsigned long long>(provenance.key));
  const struct {
    const char* name;
    double value;
  } fields[] = {
      {"observed", provenance.observed},
      {"forecast", provenance.forecast},
      {"error", provenance.error},
      {"threshold", provenance.threshold},
      {"threshold_abs", provenance.threshold_abs},
      {"error_f2", provenance.error_f2},
  };
  for (const auto& field : fields) {
    out += ",\"";
    out += field.name;
    out += "\":";
    append_double(out, field.value);
  }
  append_array(out, "row_error_buckets", provenance.row_error_buckets);
  append_array(out, "row_error_estimates", provenance.row_error_estimates);
  append_array(out, "row_forecast_estimates",
               provenance.row_forecast_estimates);
  out += common::str_format(
      ",\"config_fingerprint\":\"0x%016llx\",\"model\":\"%s\"}",
      static_cast<unsigned long long>(provenance.config_fingerprint),
      provenance.model.c_str());
  return out;
}

}  // namespace scd::detect
