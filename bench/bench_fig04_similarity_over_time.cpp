// Figure 4: overall top-N similarity between sketch and per-flow rankings
// over time. Large router, H=5, K=32768, grid-searched EWMA, N in
// {50, 100, 500, 1000}; (a) 300 s intervals, (b) 60 s intervals.
//
// Paper shape: similarity is remarkably consistent across time and stays
// around 0.95 even for N=1000.
#include <algorithm>
#include <cstdio>

#include "support/bench_util.h"
#include "support/experiments.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Figure 4", "top-N similarity over time (large router, H=5, K=32768)",
      "similarity ~0.95 even for N=1000, stable across intervals");

  for (const double interval : {300.0, 60.0}) {
    std::printf("\n--- interval=%.0fs ---\n", interval);
    const auto& stream = bench::stream_for("large", interval);
    const auto model = bench::cached_grid_model(
        "large", interval, forecast::ModelKind::kEwma);
    const std::size_t warmup = bench::warmup_intervals(interval);
    const auto& truth = bench::truth_for(stream, model);
    const auto sketch = bench::sketch_errors_for(stream, model, 5, 32768);
    for (const std::size_t n : {50u, 100u, 500u, 1000u}) {
      const auto series =
          bench::topn_similarity_series(truth, sketch, n, 1.0, warmup);
      bench::print_series(
          common::str_format("N=%zu(interval, similarity)", n), series.points);
      double min_sim = 1.0;
      for (const auto& [t, s] : series.points) min_sim = std::min(min_sim, s);
      bench::check(
          series.mean > 0.9,
          common::str_format("interval=%.0fs N=%zu mean similarity ~0.95",
                             interval, n),
          common::str_format("mean=%.3f min=%.3f", series.mean, min_sim));
      // The worst interval coincides with the injected port scan, which
      // floods the candidate set with one-packet keys whose errors are all
      // alike — ranking ties depress the overlap there. The paper's real
      // traces show the same consistency claim without that stress.
      std::size_t low = 0;
      for (const auto& [t, s] : series.points) {
        if (s < 0.9) ++low;
      }
      bench::check(
          min_sim > 0.55 && low <= series.points.size() / 5,
          common::str_format("interval=%.0fs N=%zu similarity stable over time",
                             interval, n),
          common::str_format("min=%.3f, %zu/%zu intervals below 0.9", min_sim,
                             low, series.points.size()));
    }
  }
  return bench::finish();
}
