// Streaming statistics and empirical distribution helpers used by the
// evaluation harness and the property tests.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

namespace scd::common {

/// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Empirical CDF over a batch of samples. Built once, then queried; the
/// figure harnesses use it to print the CDF curves of Figures 1-3.
class EmpiricalCdf {
 public:
  EmpiricalCdf() = default;
  explicit EmpiricalCdf(std::vector<double> samples);

  void add(double x);
  /// Sorts the sample buffer; called automatically by queries.
  void finalize();

  /// Fraction of samples <= x.
  [[nodiscard]] double at(double x);
  /// q-quantile for q in [0, 1] (linear interpolation between order stats).
  [[nodiscard]] double quantile(double q);

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] const std::vector<double>& samples() const noexcept { return samples_; }

  /// Evenly spaced (x, cdf(x)) points across [min, max] for plotting/printing.
  [[nodiscard]] std::vector<std::pair<double, double>> curve(std::size_t points);

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Exact q-quantile of a sample vector (copies and selects).
[[nodiscard]] double quantile(std::vector<double> samples, double q);

}  // namespace scd::common
