// Fatal-signal flight-recorder dump (own binary: the child must be forked
// before gtest or the recorder has spawned any thread in the parent-side
// image; the recorder's worker thread is created after the fork, child-side
// only — same rationale as checkpoint/crash_recovery_test.cpp).
//
// The child arms the recorder, records a few intervals, then takes a real
// SIGSEGV. The installed handler writes the pre-rendered dump with only
// async-signal-safe calls and re-raises; the parent then validates
// flightrec-fatal.json and that the child died by the original signal.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/flight_recorder.h"
#include "obs/trace.h"

namespace scd::obs {
namespace {

[[noreturn]] void run_child_and_crash(const std::filesystem::path& dir) {
  TraceController::global().set_enabled(true);
  FlightRecorder::Options options;
  options.directory = dir;
  options.metrics = false;
  options.dump_on_alarm = false;
  FlightRecorder recorder(options);
  recorder.set_config_fingerprint(0xfeedface12345678ULL);
  FlightRecorder::set_global(&recorder);
  FlightRecorder::install_fatal_signal_handlers();

  // Provenance first: every observe_interval schedules a fatal-dump refresh
  // that renders the state as of (at least) its call, so the refresh forced
  // by the last interval is guaranteed to cover everything recorded here.
  recorder.observe_provenance(R"({"schema":"scd-provenance-v1","crash":1})");
  for (std::uint64_t i = 0; i < 5; ++i) {
    SCD_TRACE_SPAN("child_interval", "test");
    FlightIntervalSummary summary;
    summary.index = i;
    summary.start_s = i * 60;
    summary.end_s = (i + 1) * 60;
    summary.records = 100 * (i + 1);
    summary.detection_ran = true;
    recorder.observe_interval(summary);
  }
  // Wait until the worker has actually rendered the prepared dump.
  recorder.flush();

  ::raise(SIGSEGV);  // handler writes flightrec-fatal.json, then re-raises
  ::_exit(97);       // unreachable: the re-raise must kill us
}

TEST(FlightRecorderFatal, SignalHandlerWritesPreparedDump) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "flightrec_fatal";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) run_child_and_crash(dir);

  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status)) << "child did not die by signal";
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  const std::filesystem::path fatal = dir / "flightrec-fatal.json";
  ASSERT_TRUE(std::filesystem::exists(fatal));
  std::ifstream in(fatal);
  std::ostringstream body_stream;
  body_stream << in.rdbuf();
  const std::string body = body_stream.str();
  EXPECT_NE(body.find("\"schema\":\"scd-flightrec-v1\""), std::string::npos);
  EXPECT_NE(body.find("\"reason\":\"fatal-signal\""), std::string::npos);
  EXPECT_NE(body.find("\"config_fingerprint\":\"0xfeedface12345678\""),
            std::string::npos);
  // The last observed interval and the provenance record made it in.
  EXPECT_NE(body.find("\"index\":4"), std::string::npos);
  EXPECT_NE(body.find("\"crash\":1"), std::string::npos);
  EXPECT_NE(body.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(body.find("child_interval"), std::string::npos);
}

}  // namespace
}  // namespace scd::obs
