// CSV flow import — the bridge from real exporter output (e.g. nfdump -o csv
// or SiLK rwcut) into the library's FlowRecord stream.
//
// Expected columns (header optional, '#' comments ignored):
//   time,src_ip,dst_ip,src_port,dst_port,protocol,packets,bytes
// where `time` is seconds (integer or fractional, absolute or relative) and
// addresses are dotted-quad. Records are sorted by time after parsing, so
// unordered exports are accepted.
#pragma once

#include <istream>
#include <string>
#include <vector>

#include "traffic/flow_record.h"

namespace scd::traffic {

/// Parses one CSV line. Returns false and fills `error` on malformed input.
[[nodiscard]] bool parse_flow_csv_line(const std::string& line,
                                       FlowRecord& out, std::string& error);

/// Reads a whole CSV stream; skips a leading header row (detected by a
/// non-numeric first field), blank lines and '#' comments. Throws
/// std::runtime_error naming the line number on malformed rows.
[[nodiscard]] std::vector<FlowRecord> read_flow_csv(std::istream& in);

/// Convenience file-path overload.
[[nodiscard]] std::vector<FlowRecord> read_flow_csv_file(
    const std::string& path);

}  // namespace scd::traffic
