// MappedTrace corpus + zero-copy feed equivalence.
//
// Corpus half (corrupt-checkpoint style): every way an on-disk .scdt file
// can lie — truncated header, foreign magic, future version, a short final
// record, trailing garbage — must surface as the matching typed
// TraceMapError, and a zero-record file (header only) must map cleanly.
//
// Feed half: feed_trace() batches 4K-record slices through update_batch and
// ingest_interval, so its reports must be bit-identical to the per-record
// add_record() feed on the same trace — including interval gaps, slice
// boundaries that straddle interval boundaries, and out-of-order clamping.
#include "eval/trace_mmap.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"
#include "traffic/flow_record.h"
#include "traffic/trace_io.h"

namespace scd::eval {
namespace {

std::string fresh_path(const std::string& name) {
  const std::filesystem::path path =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove(path);
  return path.string();
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

traffic::FlowRecord make_record(double time_s, std::uint32_t dst_ip,
                                std::uint64_t bytes) {
  traffic::FlowRecord r;
  r.timestamp_us = static_cast<std::uint64_t>(time_s * 1e6);
  r.src_ip = 0x0a000001;
  r.dst_ip = dst_ip;
  r.bytes = bytes;
  return r;
}

/// Deterministic multi-interval stream: 40 steady keys per 10 s interval
/// with integer-jittered byte counts, a spike on key 999 in interval 6, and
/// a quiet gap (no records) in interval 3 so empty-interval closing is on
/// the path. Integer updates keep every register sum exact, so the
/// comparisons below can demand bit equality.
std::vector<traffic::FlowRecord> corpus_records() {
  std::vector<traffic::FlowRecord> records;
  for (std::size_t t = 0; t < 10; ++t) {
    if (t == 3) continue;  // gap interval
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint32_t key = 1; key <= 40; ++key) {
      const auto jitter = static_cast<std::uint64_t>(
          common::mix64(key * 1000 + t) % 11);
      records.push_back(make_record(start + 1.0, key, 300 + jitter));
    }
    if (t == 6) records.push_back(make_record(start + 2.0, 999, 40000));
  }
  return records;
}

core::PipelineConfig corpus_config() {
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 5;
  config.k = 4096;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.2;
  config.metrics = false;
  return config;
}

std::string corpus_trace() {
  const std::string path = fresh_path("mmap_corpus.scdt");
  traffic::write_trace(path, corpus_records());
  return path;
}

using AlarmSet = std::set<std::pair<std::size_t, std::uint64_t>>;

AlarmSet alarm_set(const std::vector<core::IntervalReport>& reports) {
  AlarmSet out;
  for (const auto& report : reports) {
    for (const auto& alarm : report.alarms) out.emplace(report.index, alarm.key);
  }
  return out;
}

void expect_map_error(const std::string& path, TraceMapErrorKind kind,
                      const std::string& label) {
  SCOPED_TRACE(label);
  try {
    MappedTrace trace(path);
    FAIL() << "mapped successfully; expected "
           << trace_map_error_kind_name(kind);
  } catch (const TraceMapError& error) {
    EXPECT_EQ(error.map_kind(), kind) << error.what();
  }
}

TEST(MappedTrace, RoundTripMatchesTraceReader) {
  const std::string path = corpus_trace();
  const std::vector<traffic::FlowRecord> expected = traffic::read_trace(path);
  const MappedTrace trace(path);
  ASSERT_EQ(trace.record_count(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(trace.record(i), expected[i]) << "record " << i;
  }
  // Bulk decode straddling an arbitrary offset agrees with per-record.
  std::vector<traffic::FlowRecord> slice(7);
  trace.decode(5, slice);
  for (std::size_t i = 0; i < slice.size(); ++i) {
    EXPECT_EQ(slice[i], expected[5 + i]);
  }
}

TEST(MappedTrace, ZeroRecordFileIsValid) {
  const std::string path = fresh_path("mmap_empty.scdt");
  traffic::write_trace(path, {});
  const MappedTrace trace(path);
  EXPECT_EQ(trace.record_count(), 0u);
  EXPECT_EQ(trace.size_bytes(), 16u);

  core::ChangeDetectionPipeline pipeline(corpus_config());
  const MmapFeedStats stats = feed_trace(trace, pipeline);
  EXPECT_EQ(stats.records, 0u);
  EXPECT_EQ(stats.intervals_closed, 0u);
  EXPECT_TRUE(pipeline.reports().empty());
}

TEST(MappedTrace, MissingFileIsOpenFailed) {
  expect_map_error(fresh_path("mmap_missing.scdt"),
                   TraceMapErrorKind::kOpenFailed, "missing file");
}

TEST(MappedTrace, TruncatedHeaderIsTyped) {
  const std::string path = corpus_trace();
  const std::vector<std::uint8_t> pristine = read_file(path);
  for (const std::size_t len : {std::size_t{0}, std::size_t{8},
                                std::size_t{15}}) {
    write_file(path, {pristine.begin(), pristine.begin() +
                                            static_cast<std::ptrdiff_t>(len)});
    expect_map_error(path, TraceMapErrorKind::kTruncatedHeader,
                     "header cut at byte " + std::to_string(len));
  }
}

TEST(MappedTrace, BadMagicIsTyped) {
  const std::string path = corpus_trace();
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[0] ^= 0xff;
  write_file(path, bytes);
  expect_map_error(path, TraceMapErrorKind::kBadMagic, "flipped magic");
}

TEST(MappedTrace, BadVersionIsTyped) {
  const std::string path = corpus_trace();
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes[4] = 0x7f;  // version field, little-endian low byte
  write_file(path, bytes);
  expect_map_error(path, TraceMapErrorKind::kBadVersion, "future version");
}

TEST(MappedTrace, ShortFinalRecordIsTyped) {
  const std::string path = corpus_trace();
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.pop_back();  // cut the last record one byte short
  write_file(path, bytes);
  expect_map_error(path, TraceMapErrorKind::kTruncatedBody,
                   "short final record");
  // Losing a whole record is the same lie: the header still promises it.
  bytes.resize(bytes.size() + 1 - traffic::kTraceRecordBytes);
  write_file(path, bytes);
  expect_map_error(path, TraceMapErrorKind::kTruncatedBody,
                   "missing final record");
}

TEST(MappedTrace, TrailingBytesAreTyped) {
  const std::string path = corpus_trace();
  std::vector<std::uint8_t> bytes = read_file(path);
  bytes.push_back(0xab);
  write_file(path, bytes);
  expect_map_error(path, TraceMapErrorKind::kTrailingBytes,
                   "trailing garbage");
}

TEST(MappedTrace, FeedRejectsZeroSliceRecords) {
  const std::string path = fresh_path("mmap_opts.scdt");
  traffic::write_trace(path, {});
  const MappedTrace trace(path);
  core::ChangeDetectionPipeline pipeline(corpus_config());
  MmapFeedOptions options;
  options.slice_records = 0;
  EXPECT_THROW(feed_trace(trace, pipeline, options), std::invalid_argument);
}

TEST(MappedTrace, FeedMatchesPerRecordFeedBitExactly) {
  const std::string path = corpus_trace();

  core::ChangeDetectionPipeline serial(corpus_config());
  for (const traffic::FlowRecord& r : traffic::read_trace(path)) {
    serial.add_record(r);
  }
  serial.flush();
  const AlarmSet expected = alarm_set(serial.reports());
  ASSERT_FALSE(expected.empty());  // the spike must be flagged

  // A slice far smaller than an interval forces both flavors of split:
  // several slices per interval AND interval boundaries inside a slice.
  for (const std::size_t slice : {std::size_t{64}, std::size_t{4096}}) {
    const MappedTrace trace(path);
    core::ChangeDetectionPipeline pipeline(corpus_config());
    MmapFeedOptions options;
    options.slice_records = slice;
    const MmapFeedStats stats = feed_trace(trace, pipeline, options);

    EXPECT_EQ(stats.records, trace.record_count()) << "slice=" << slice;
    EXPECT_EQ(stats.out_of_order_records, 0u);
    EXPECT_EQ(stats.intervals_closed, serial.reports().size());
    ASSERT_EQ(pipeline.reports().size(), serial.reports().size());
    EXPECT_EQ(alarm_set(pipeline.reports()), expected) << "slice=" << slice;
    for (std::size_t i = 0; i < serial.reports().size(); ++i) {
      const auto& s = serial.reports()[i];
      const auto& p = pipeline.reports()[i];
      EXPECT_EQ(p.records, s.records) << "slice=" << slice << " i=" << i;
      EXPECT_EQ(p.keys_checked, s.keys_checked);
      EXPECT_DOUBLE_EQ(p.estimated_error_f2, s.estimated_error_f2);
      EXPECT_DOUBLE_EQ(p.alarm_threshold, s.alarm_threshold);
    }
    EXPECT_EQ(pipeline.stats().records, serial.stats().records);
    EXPECT_EQ(pipeline.stats().intervals_closed,
              serial.stats().intervals_closed);
  }
}

TEST(MappedTrace, FeedClampsAndCountsOutOfOrderRecords) {
  // Patch one mid-stream timestamp backwards (byte surgery — TraceWriter
  // enforces ordering, the reader must tolerate what routers actually emit).
  const std::string path = corpus_trace();
  std::vector<std::uint8_t> bytes = read_file(path);
  const std::size_t offset = 16 + 50 * traffic::kTraceRecordBytes;
  for (std::size_t i = 0; i < 8; ++i) bytes[offset + i] = 0;  // t = 0 us
  write_file(path, bytes);

  core::ChangeDetectionPipeline serial(corpus_config());
  for (const traffic::FlowRecord& r : traffic::read_trace(path)) {
    serial.add_record(r);
  }
  serial.flush();
  ASSERT_EQ(serial.stats().out_of_order_records, 1u);

  const MappedTrace trace(path);
  core::ChangeDetectionPipeline pipeline(corpus_config());
  const MmapFeedStats stats = feed_trace(trace, pipeline);
  EXPECT_EQ(stats.out_of_order_records, 1u);
  ASSERT_EQ(pipeline.reports().size(), serial.reports().size());
  EXPECT_EQ(alarm_set(pipeline.reports()), alarm_set(serial.reports()));
  for (std::size_t i = 0; i < serial.reports().size(); ++i) {
    EXPECT_EQ(pipeline.reports()[i].records, serial.reports()[i].records);
    EXPECT_DOUBLE_EQ(pipeline.reports()[i].estimated_error_f2,
                     serial.reports()[i].estimated_error_f2);
  }
}

}  // namespace
}  // namespace scd::eval
