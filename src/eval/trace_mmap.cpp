#include "eval/trace_mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "hash/cw_hash.h"
#include "hash/tabulation_hash.h"
#include "sketch/kary_sketch.h"
#include "traffic/flow_record.h"
#include "traffic/key_extract.h"
#include "traffic/trace_io.h"

namespace scd::eval {

namespace {

constexpr std::size_t kTraceHeaderBytes = 16;

template <typename T>
T get_le(const std::uint8_t* p) noexcept {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value = static_cast<T>(value | (static_cast<T>(p[i]) << (8 * i)));
  }
  return value;
}

}  // namespace

const char* trace_map_error_kind_name(TraceMapErrorKind kind) noexcept {
  switch (kind) {
    case TraceMapErrorKind::kOpenFailed: return "open-failed";
    case TraceMapErrorKind::kTruncatedHeader: return "truncated-header";
    case TraceMapErrorKind::kBadMagic: return "bad-magic";
    case TraceMapErrorKind::kBadVersion: return "bad-version";
    case TraceMapErrorKind::kTruncatedBody: return "truncated-body";
    case TraceMapErrorKind::kTrailingBytes: return "trailing-bytes";
  }
  return "unknown";
}

TraceMapError::TraceMapError(TraceMapErrorKind kind,
                             const std::string& message)
    : std::runtime_error(std::string(trace_map_error_kind_name(kind)) + ": " +
                         message),
      kind_(kind) {}

MappedTrace::MappedTrace(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(hicpp-vararg)
  if (fd < 0) {
    throw TraceMapError(TraceMapErrorKind::kOpenFailed,
                        "cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw TraceMapError(TraceMapErrorKind::kOpenFailed,
                        "cannot stat " + path + ": " + std::strerror(err));
  }
  const auto file_len = static_cast<std::size_t>(st.st_size);
  if (file_len < kTraceHeaderBytes) {
    ::close(fd);
    throw TraceMapError(
        TraceMapErrorKind::kTruncatedHeader,
        path + " ends inside the 16-byte trace header (" +
            std::to_string(file_len) + " bytes)");
  }
  void* map = ::mmap(nullptr, file_len, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (map == MAP_FAILED) {
    throw TraceMapError(TraceMapErrorKind::kOpenFailed,
                        "cannot mmap " + path + ": " + std::strerror(errno));
  }
  // Advisory only: tells the kernel to read ahead aggressively and drop
  // pages behind the sweep. A failure changes nothing observable.
  (void)::madvise(map, file_len, MADV_SEQUENTIAL);
  map_ = static_cast<const std::uint8_t*>(map);
  map_len_ = file_len;

  // Validate in the checkpoint parser's order: magic before version before
  // lengths, so each error names the first thing actually wrong.
  const std::uint32_t magic = get_le<std::uint32_t>(map_);
  const std::uint32_t version = get_le<std::uint32_t>(map_ + 4);
  count_ = get_le<std::uint64_t>(map_ + 8);
  const auto fail = [this, &path](TraceMapErrorKind kind,
                                  const std::string& message) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
    map_ = nullptr;
    throw TraceMapError(kind, path + ": " + message);
  };
  if (magic != traffic::kTraceMagic) {
    fail(TraceMapErrorKind::kBadMagic, "not an SCDT trace file");
  }
  if (version != traffic::kTraceVersion) {
    fail(TraceMapErrorKind::kBadVersion,
         "trace format version " + std::to_string(version) +
             " (this build reads version " +
             std::to_string(traffic::kTraceVersion) + ")");
  }
  const std::size_t expected =
      kTraceHeaderBytes + static_cast<std::size_t>(count_) *
                              traffic::kTraceRecordBytes;
  if (file_len < expected) {
    const std::size_t whole =
        (file_len - kTraceHeaderBytes) / traffic::kTraceRecordBytes;
    fail(TraceMapErrorKind::kTruncatedBody,
         "header promises " + std::to_string(count_) + " records but only " +
             std::to_string(whole) + " whole records are present");
  }
  if (file_len > expected) {
    fail(TraceMapErrorKind::kTrailingBytes,
         std::to_string(file_len - expected) +
             " bytes of trailing garbage after the last record");
  }
}

MappedTrace::~MappedTrace() {
  if (map_ != nullptr) {
    ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
  }
}

MappedTrace::MappedTrace(MappedTrace&& other) noexcept
    : map_(std::exchange(other.map_, nullptr)),
      map_len_(std::exchange(other.map_len_, 0)),
      count_(std::exchange(other.count_, 0)) {}

MappedTrace& MappedTrace::operator=(MappedTrace&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(const_cast<std::uint8_t*>(map_), map_len_);
    map_ = std::exchange(other.map_, nullptr);
    map_len_ = std::exchange(other.map_len_, 0);
    count_ = std::exchange(other.count_, 0);
  }
  return *this;
}

traffic::FlowRecord MappedTrace::record(std::size_t index) const noexcept {
  const std::uint8_t* p =
      map_ + kTraceHeaderBytes + index * traffic::kTraceRecordBytes;
  traffic::FlowRecord r;
  r.timestamp_us = get_le<std::uint64_t>(p);
  r.src_ip = get_le<std::uint32_t>(p + 8);
  r.dst_ip = get_le<std::uint32_t>(p + 12);
  r.src_port = get_le<std::uint16_t>(p + 16);
  r.dst_port = get_le<std::uint16_t>(p + 18);
  r.protocol = p[20];
  r.tos = p[21];
  r.flags = get_le<std::uint16_t>(p + 22);
  r.packets = get_le<std::uint32_t>(p + 24);
  r.bytes = get_le<std::uint64_t>(p + 28);
  return r;
}

void MappedTrace::decode(std::size_t first,
                         std::span<traffic::FlowRecord> out) const noexcept {
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = record(first + i);
}

namespace {

/// The slice feed, templated on the hash family exactly like ShardSet: the
/// 32-bit tabulation fast path for IP-derived keys, the CW family for
/// 64-bit address pairs.
template <typename Family>
MmapFeedStats feed_impl(const MappedTrace& trace,
                        core::ChangeDetectionPipeline& pipeline,
                        const MmapFeedOptions& options) {
  using Sketch = sketch::BasicKarySketch<Family>;
  const core::PipelineConfig& config = pipeline.config();
  Sketch sketch(std::make_shared<const Family>(config.seed, config.h),
                config.k);
  std::unordered_set<std::uint64_t> keys;
  MmapFeedStats stats;

  // Mirrors ChangeDetectionPipeline::add's stream position: first record
  // opens interval 0 at its timestamp, regressing records are clamped into
  // the open interval, gaps close empty intervals.
  bool started = false;
  double current_start = 0.0;
  double last_time = 0.0;
  std::uint64_t records_in_interval = 0;

  const auto close_interval = [&] {
    core::IntervalBatch batch;
    batch.start_s = current_start;
    batch.len_s = config.interval_s;
    batch.records = records_in_interval;
    batch.registers.assign(sketch.registers().begin(),
                           sketch.registers().end());
    batch.keys.assign(keys.begin(), keys.end());
    pipeline.ingest_interval(std::move(batch));
    sketch.set_zero();
    keys.clear();
    records_in_interval = 0;
    current_start += config.interval_s;
    ++stats.intervals_closed;
  };

  std::vector<traffic::FlowRecord> raw(options.slice_records);
  std::vector<sketch::Record> staged(options.slice_records);
  const auto apply = [&](std::size_t begin, std::size_t end) {
    if (begin == end) return;
    for (std::size_t i = begin; i < end; ++i) keys.insert(staged[i].key);
    sketch.update_batch(
        std::span<const sketch::Record>(staged.data() + begin, end - begin));
    records_in_interval += end - begin;
    stats.records += end - begin;
  };

  const std::uint64_t total = trace.record_count();
  for (std::uint64_t base = 0; base < total; base += options.slice_records) {
    const auto n = static_cast<std::size_t>(
        std::min<std::uint64_t>(options.slice_records, total - base));
    trace.decode(static_cast<std::size_t>(base), {raw.data(), n});
    std::size_t segment = 0;  // first staged record not yet applied
    for (std::size_t i = 0; i < n; ++i) {
      double t = traffic::record_time_s(raw[i]);
      if (!started) {
        started = true;
        current_start = t;
        last_time = t;
      }
      if (t < last_time) {
        ++stats.out_of_order_records;
        if (t < current_start) t = current_start;
      } else {
        last_time = t;
      }
      if (t >= current_start + config.interval_s) {
        // Boundary inside the slice: flush the staged prefix into the open
        // interval, then close up to the record's interval (closing empty
        // intervals across any quiet gap).
        apply(segment, i);
        segment = i;
        while (t >= current_start + config.interval_s) close_interval();
      }
      staged[i] = {traffic::extract_key(raw[i], config.key_kind),
                   traffic::extract_update(raw[i], config.update_kind)};
    }
    apply(segment, n);
  }
  // End of stream: close the interval in progress, like flush().
  if (started) close_interval();
  return stats;
}

}  // namespace

MmapFeedStats feed_trace(const MappedTrace& trace,
                         core::ChangeDetectionPipeline& pipeline,
                         const MmapFeedOptions& options) {
  if (options.slice_records < 1) {
    throw std::invalid_argument(
        "feed_trace: slice_records must be at least 1");
  }
  if (traffic::key_fits_32bit(pipeline.config().key_kind)) {
    return feed_impl<hash::TabulationHashFamily>(trace, pipeline, options);
  }
  return feed_impl<hash::CwHashFamily>(trace, pipeline, options);
}

}  // namespace scd::eval
