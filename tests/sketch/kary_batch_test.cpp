// update_batch must be BIT-IDENTICAL to per-record update(): the batched
// path reorders work across rows (hash-batch, then one row sweep at a time)
// but applies each register's updates in record order, so every register
// sees the same sequence of floating-point additions as the scalar path.
// Property-tested over randomized H/K/batch shapes for both hash families
// (tabulation fast path and the generic hash16 fallback), batches spanning
// multiple internal blocks, and duplicate keys within one block.
#include "sketch/kary_sketch.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"

namespace scd::sketch {
namespace {

template <typename Sketch, typename FamilyPtr>
void expect_batch_matches_serial(const FamilyPtr& family, std::size_t k,
                                 std::span<const Record> records,
                                 const char* what) {
  Sketch serial(family, k);
  for (const Record& r : records) serial.update(r.key, r.update);
  Sketch batched(family, k);
  batched.update_batch(records);
  const auto lhs = serial.registers();
  const auto rhs = batched.registers();
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    ASSERT_EQ(lhs[i], rhs[i]) << what << ": register " << i << " diverged";
  }
  EXPECT_EQ(serial.sum(), batched.sum()) << what;
}

std::vector<Record> random_records(common::Rng& rng, std::size_t n,
                                   std::uint64_t key_space, bool integer) {
  std::vector<Record> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double u = integer ? static_cast<double>(rng.next_in(1, 1500))
                             : rng.uniform(-100.0, 100.0);
    out.push_back(Record{rng.next_below(key_space), u});
  }
  return out;
}

TEST(KaryBatchUpdate, MatchesSerialOverRandomShapes) {
  common::Rng rng(71);
  // H x K x batch-size sweep, crossing the internal kUpdateBlock boundary
  // (4096) and the 4-row tabulation group boundary.
  for (const std::size_t h : {1UL, 3UL, 4UL, 5UL, 8UL, 9UL}) {
    for (const std::size_t k : {2UL, 64UL, 4096UL}) {
      for (const std::size_t n : {0UL, 1UL, 17UL, 300UL, 4096UL, 5000UL}) {
        const auto family =
            make_tabulation_family(1000 + h * 10 + k, h);
        const auto records = random_records(rng, n, 1ULL << 32, false);
        expect_batch_matches_serial<KarySketch>(
            family, k, records,
            ("tabulation h=" + std::to_string(h) + " k=" + std::to_string(k) +
             " n=" + std::to_string(n))
                .c_str());
      }
    }
  }
}

TEST(KaryBatchUpdate, MatchesSerialForCwFamily64BitKeys) {
  common::Rng rng(72);
  for (const std::size_t h : {1UL, 5UL, 6UL}) {
    const auto family = make_cw_family(900 + h, h);
    const auto records = random_records(rng, 700, ~0ULL, false);
    expect_batch_matches_serial<KarySketch64>(
        family, 1024, records, ("cw h=" + std::to_string(h)).c_str());
  }
}

TEST(KaryBatchUpdate, DuplicateKeysAccumulateInRecordOrder) {
  // Repeated keys in one block stress the same-register ordering contract;
  // non-commutative magnitudes (alternating large/small) would expose any
  // reordering as a bit difference.
  const auto family = make_tabulation_family(7, 5);
  std::vector<Record> records;
  for (std::size_t i = 0; i < 600; ++i) {
    records.push_back(Record{i % 7, (i % 2 == 0) ? 1e16 : 1.0});
  }
  expect_batch_matches_serial<KarySketch>(family, 256,
                                          std::span<const Record>(records),
                                          "duplicate keys");
}

TEST(KaryBatchUpdate, IntegerUpdatesStayExact) {
  // The parallel-vs-serial alarm equivalence relies on integer updates
  // surviving any shard/batch decomposition bit-exactly.
  common::Rng rng(73);
  const auto family = make_tabulation_family(8, 5);
  const auto records = random_records(rng, 5000, 1ULL << 20, true);
  expect_batch_matches_serial<KarySketch>(
      family, 4096, std::span<const Record>(records), "integer updates");
}

TEST(KaryBatchUpdate, EmptyBatchKeepsSumCacheIntact) {
  const auto family = make_tabulation_family(9, 5);
  KarySketch s(family, 64);
  s.update(1, 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 2.0);
  s.update_batch({});
  EXPECT_DOUBLE_EQ(s.sum(), 2.0);
}

TEST(KaryBatchUpdate, EstimatesAgreeAfterBatch) {
  common::Rng rng(74);
  const auto family = make_tabulation_family(10, 5);
  const auto records = random_records(rng, 2048, 1ULL << 16, false);
  KarySketch serial(family, 512);
  for (const Record& r : records) serial.update(r.key, r.update);
  KarySketch batched(family, 512);
  batched.update_batch(records);
  for (std::uint64_t key = 0; key < 100; ++key) {
    EXPECT_EQ(serial.estimate(key), batched.estimate(key));
  }
  EXPECT_EQ(serial.estimate_f2(), batched.estimate_f2());
}

}  // namespace
}  // namespace scd::sketch
