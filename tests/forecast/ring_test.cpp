#include "forecast/ring.h"

#include <gtest/gtest.h>

namespace scd::forecast {
namespace {

TEST(HistoryRing, FillsUpToCapacity) {
  HistoryRing<int> ring(3);
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_FALSE(ring.full());
  ring.push(1);
  ring.push(2);
  EXPECT_EQ(ring.size(), 2u);
  ring.push(3);
  EXPECT_TRUE(ring.full());
  EXPECT_EQ(ring.capacity(), 3u);
}

TEST(HistoryRing, BackIndexesFromMostRecent) {
  HistoryRing<int> ring(3);
  ring.push(10);
  ring.push(20);
  ring.push(30);
  EXPECT_EQ(ring.back(1), 30);
  EXPECT_EQ(ring.back(2), 20);
  EXPECT_EQ(ring.back(3), 10);
}

TEST(HistoryRing, EvictsOldestWhenFull) {
  HistoryRing<int> ring(3);
  for (int i = 1; i <= 10; ++i) ring.push(i);
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.back(1), 10);
  EXPECT_EQ(ring.back(2), 9);
  EXPECT_EQ(ring.back(3), 8);
}

TEST(HistoryRing, PartialFillIndexing) {
  HistoryRing<int> ring(5);
  ring.push(100);
  EXPECT_EQ(ring.back(1), 100);
  ring.push(200);
  EXPECT_EQ(ring.back(1), 200);
  EXPECT_EQ(ring.back(2), 100);
}

TEST(HistoryRing, CapacityOne) {
  HistoryRing<int> ring(1);
  ring.push(1);
  ring.push(2);
  ring.push(3);
  EXPECT_EQ(ring.size(), 1u);
  EXPECT_EQ(ring.back(1), 3);
}

TEST(HistoryRing, WorksWithNonTrivialTypes) {
  HistoryRing<std::vector<double>> ring(2);
  ring.push({1.0, 2.0});
  ring.push({3.0});
  ring.push({4.0, 5.0, 6.0});
  EXPECT_EQ(ring.back(1).size(), 3u);
  EXPECT_EQ(ring.back(2).size(), 1u);
}

}  // namespace
}  // namespace scd::forecast
