// Accuracy metrics of §5: relative difference of total energy (Figures 1-3),
// top-N similarity and top-N vs top-X*N (Figures 4-9), and thresholding
// false-negative/false-positive ratios (Figures 10-15).
#pragma once

#include <cstddef>
#include <span>

#include "detect/alarm.h"

namespace scd::eval {

/// (sketch - perflow) / perflow, in percent (§5.1's Relative Difference).
[[nodiscard]] double relative_difference_pct(double sketch_energy,
                                             double perflow_energy) noexcept;

/// |top-N(per-flow) ∩ top-(X*N)(sketch)| / N. Both lists must be sorted by
/// |error| descending; X = 1 gives the plain top-N similarity of §5.2.1.
[[nodiscard]] double topn_similarity(
    std::span<const detect::KeyError> perflow_ranked,
    std::span<const detect::KeyError> sketch_ranked, std::size_t n,
    double x = 1.0);

struct ThresholdCounts {
  std::size_t perflow_alarms = 0;  // N_pf(phi)
  std::size_t sketch_alarms = 0;   // N_sk(phi)
  std::size_t common = 0;          // N_AB(phi)

  /// (N_pf - N_AB) / N_pf; 0 when N_pf = 0.
  [[nodiscard]] double false_negative_ratio() const noexcept;
  /// (N_sk - N_AB) / N_sk; 0 when N_sk = 0.
  [[nodiscard]] double false_positive_ratio() const noexcept;
};

/// Applies the |error| >= fraction * L2 criterion to both ranked lists and
/// counts the overlap (§5.2.2). L2 norms are supplied separately: exact for
/// per-flow, sqrt(ESTIMATEF2) for the sketch.
[[nodiscard]] ThresholdCounts threshold_counts(
    std::span<const detect::KeyError> perflow_ranked, double perflow_l2,
    std::span<const detect::KeyError> sketch_ranked, double sketch_l2,
    double fraction);

}  // namespace scd::eval
