#include "common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace scd::common {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

EmpiricalCdf::EmpiricalCdf(std::vector<double> samples)
    : samples_(std::move(samples)) {}

void EmpiricalCdf::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void EmpiricalCdf::finalize() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double EmpiricalCdf::at(double x) {
  finalize();
  if (samples_.empty()) return 0.0;
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

double EmpiricalCdf::quantile(double q) {
  finalize();
  assert(!samples_.empty());
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.size() == 1) return samples_.front();
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

std::vector<std::pair<double, double>> EmpiricalCdf::curve(std::size_t points) {
  finalize();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  const double lo = samples_.front();
  const double hi = samples_.back();
  if (points == 1 || hi == lo) {
    out.emplace_back(lo, at(lo));
    return out;
  }
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

double quantile(std::vector<double> samples, double q) {
  EmpiricalCdf cdf(std::move(samples));
  return cdf.quantile(q);
}

}  // namespace scd::common
