#include "forecast/seasonal.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <optional>
#include <vector>

#include "forecast/model_factory.h"
#include "forecast/smoothing.h"

namespace scd::forecast {
namespace {

std::vector<std::optional<double>> drive(ForecastModel<ScalarSignal>& model,
                                         const std::vector<double>& obs) {
  std::vector<std::optional<double>> forecasts;
  for (double o : obs) {
    if (model.ready()) {
      ScalarSignal f;
      model.forecast_into(f);
      forecasts.emplace_back(f.value());
    } else {
      forecasts.emplace_back(std::nullopt);
    }
    model.observe(ScalarSignal(o));
  }
  return forecasts;
}

TEST(SeasonalHoltWinters, NotReadyUntilOneFullPeriod) {
  SeasonalHoltWintersModel<ScalarSignal> model(0.5, 0.5, 0.5, 4,
                                               ScalarSignal{});
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(model.ready());
    model.observe(ScalarSignal(static_cast<double>(i)));
  }
  model.observe(ScalarSignal(3.0));
  EXPECT_TRUE(model.ready());
}

TEST(SeasonalHoltWinters, PerfectlyPeriodicSeriesForecastExactly) {
  // A pure period-4 pattern with no trend: after initialization the
  // forecast must match the upcoming observation exactly.
  const std::vector<double> pattern{10.0, 50.0, 30.0, 20.0};
  std::vector<double> obs;
  for (int rep = 0; rep < 5; ++rep) {
    obs.insert(obs.end(), pattern.begin(), pattern.end());
  }
  SeasonalHoltWintersModel<ScalarSignal> model(0.3, 0.2, 0.4, 4,
                                               ScalarSignal{});
  const auto f = drive(model, obs);
  for (std::size_t t = 4; t < obs.size(); ++t) {
    ASSERT_TRUE(f[t].has_value()) << t;
    EXPECT_NEAR(*f[t], obs[t], 1e-9) << t;
  }
}

TEST(SeasonalHoltWinters, BeatsNonSeasonalOnCyclicTraffic) {
  // Sinusoidal daily cycle: the seasonal model's residual energy must be
  // well below non-seasonal Holt-Winters'.
  std::vector<double> obs;
  const std::size_t period = 12;
  for (int t = 0; t < 96; ++t) {
    obs.push_back(1000.0 +
                  600.0 * std::sin(2.0 * std::numbers::pi * t / period));
  }
  SeasonalHoltWintersModel<ScalarSignal> seasonal(0.3, 0.1, 0.3, period,
                                                  ScalarSignal{});
  HoltWintersModel<ScalarSignal> plain(0.5, 0.3, ScalarSignal{});
  double seasonal_energy = 0.0, plain_energy = 0.0;
  const auto fs = drive(seasonal, obs);
  const auto fp = drive(plain, obs);
  for (std::size_t t = 2 * period; t < obs.size(); ++t) {
    if (fs[t]) seasonal_energy += (obs[t] - *fs[t]) * (obs[t] - *fs[t]);
    if (fp[t]) plain_energy += (obs[t] - *fp[t]) * (obs[t] - *fp[t]);
  }
  EXPECT_LT(seasonal_energy, 0.25 * plain_energy);
}

TEST(SeasonalHoltWinters, TrendPlusSeasonTracked) {
  // Linear growth + period-3 season. gamma=0 keeps the initial seasonal
  // profile; the model should track the compound series closely.
  const std::vector<double> season{0.0, 30.0, -30.0};
  std::vector<double> obs;
  for (int t = 0; t < 30; ++t) {
    obs.push_back(100.0 + 5.0 * t + season[static_cast<std::size_t>(t) % 3]);
  }
  SeasonalHoltWintersModel<ScalarSignal> model(0.5, 0.5, 0.0, 3,
                                               ScalarSignal{});
  const auto f = drive(model, obs);
  for (std::size_t t = 12; t < obs.size(); ++t) {
    ASSERT_TRUE(f[t].has_value());
    EXPECT_NEAR(*f[t], obs[t], 10.0) << t;
  }
}

TEST(SeasonalHoltWinters, FactoryBuildsIt) {
  ModelConfig config;
  config.kind = ModelKind::kSeasonalHoltWinters;
  config.alpha = 0.4;
  config.beta = 0.2;
  config.gamma = 0.3;
  config.period = 6;
  const auto model = make_model<ScalarSignal>(config, ScalarSignal{});
  ASSERT_NE(model, nullptr);
  EXPECT_FALSE(model->ready());
  EXPECT_NE(config.to_string().find("SHW"), std::string::npos);
}

TEST(SeasonalHoltWinters, ConfigValidation) {
  ModelConfig config;
  config.kind = ModelKind::kSeasonalHoltWinters;
  config.period = 1;  // too short
  EXPECT_FALSE(config.valid());
  config.period = 2;
  EXPECT_TRUE(config.valid());
  config.gamma = 1.5;
  EXPECT_FALSE(config.valid());
}

TEST(SeasonalHoltWinters, PaperModelListUnchanged) {
  // The extension must not leak into the paper's model sweep.
  for (const auto kind : all_model_kinds()) {
    EXPECT_NE(kind, ModelKind::kSeasonalHoltWinters);
  }
}

}  // namespace
}  // namespace scd::forecast
