// The hashing interface consumed by the sketch library.
//
// A HashFamily16 provides `rows()` independent 4-universal hash functions,
// each mapping a 64-bit key to a 16-bit value. Sketches derive a bucket in
// [K] (K a power of two, K <= 2^16) by masking the low bits, which preserves
// (approximate) 4-universality. Independence across rows comes from
// independent seeding.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>

namespace scd::hash {

template <typename F>
concept HashFamily16 = requires(const F f, std::size_t row, std::uint64_t key) {
  { f.hash16(row, key) } noexcept -> std::same_as<std::uint16_t>;
  { f.rows() } noexcept -> std::same_as<std::size_t>;
};

/// Returns true iff k is a power of two in [1, 2^16] — the bucket counts the
/// sketch library accepts.
[[nodiscard]] constexpr bool valid_bucket_count(std::size_t k) noexcept {
  return k >= 1 && k <= (1u << 16) && (k & (k - 1)) == 0;
}

}  // namespace scd::hash
