// Scalar-vs-SIMD equivalence property tests for the kernel layer.
//
// Every kernel is compared against the scalar reference loop over
// randomized sizes (including empty, sub-vector-width, and remainder-tail
// shapes):
//   * scale and axpy are element-wise → results must be BIT-EXACT between
//     implementations (the AVX2 lane computes exactly the scalar
//     expression for its element, FMA included);
//   * dot / sum_squares / hsum reassociate the reduction across lanes →
//     results must agree within a tolerance scaled to the condition of the
//     sum (ULP-level per accumulated term).
//
// ctest runs this binary twice: once with ambient dispatch (AVX2 where the
// CPU has it) and once re-registered with SCD_SIMD=scalar
// (simd.kernels_scalar_dispatch), so both dispatch decisions are exercised
// on one host. The AVX2 backend is additionally tested directly (bypassing
// dispatch) whenever the CPU supports it, so coverage does not depend on
// which table the environment selected.
#include "simd/kernels.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "simd/kernels_avx2.h"
#include "simd/kernels_scalar.h"

namespace scd::simd {
namespace {

// Shapes chosen to hit: empty, scalar tail only, exactly one vector, the
// 16-wide unrolled body, unroll+vector+tail remainders, and the real table
// sizes (H*K for K=4096 and a full row at K=65536).
const std::vector<std::size_t> kSizes = {0,  1,  2,   3,    4,    5,    7,
                                         8,  15, 16,  17,   31,   32,   33,
                                         63, 100, 255, 4096, 20480, 65536};

std::vector<double> random_values(common::Rng& rng, std::size_t n) {
  std::vector<double> out(n);
  for (double& v : out) v = rng.uniform(-1e3, 1e3);
  return out;
}

/// Tolerance for a reassociated sum: proportional to the magnitude
/// accumulated, with generous slack (64 ULP-equivalents per term bound).
double reduction_tolerance(double magnitude) {
  return 64.0 * std::numeric_limits<double>::epsilon() * (magnitude + 1.0);
}

struct Backend {
  const char* name;
  void (*scale)(double*, std::size_t, double) noexcept;
  void (*axpy)(double*, const double*, std::size_t, double) noexcept;
  double (*dot)(const double*, const double*, std::size_t) noexcept;
  double (*sum_squares)(const double*, std::size_t) noexcept;
  double (*hsum)(const double*, std::size_t) noexcept;
};

/// The implementations under test, always judged against simd::scalar.
/// The dispatched entry points are included so the env-forced ctest rerun
/// also validates the dispatch wiring itself.
std::vector<Backend> backends_under_test() {
  std::vector<Backend> out;
  out.push_back(Backend{"dispatch", &simd::scale, &simd::axpy, &simd::dot,
                        &simd::sum_squares, &simd::hsum});
  if (avx2::supported()) {
    out.push_back(Backend{"avx2", &avx2::scale, &avx2::axpy, &avx2::dot,
                          &avx2::sum_squares, &avx2::hsum});
  }
  return out;
}

TEST(KernelDispatch, HonorsScdSimdEnvironment) {
  const char* env = std::getenv("SCD_SIMD");
  if (env != nullptr && std::string_view(env) == "scalar") {
    EXPECT_EQ(active_isa(), IsaLevel::kScalar);
  } else if (env == nullptr) {
    // Auto-detection: AVX2 iff the CPU has it.
    EXPECT_EQ(active_isa(),
              cpu_supports_avx2() ? IsaLevel::kAvx2 : IsaLevel::kScalar);
  }
  EXPECT_STREQ(isa_name(active_isa()),
               active_isa() == IsaLevel::kAvx2 ? "avx2" : "scalar");
}

TEST(KernelEquivalence, ScaleIsBitExact) {
  common::Rng rng(11);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> base = random_values(rng, n);
      const double c = rng.uniform(-3.0, 3.0);
      std::vector<double> expect = base;
      scalar::scale(expect.data(), n, c);
      std::vector<double> got = base;
      backend.scale(got.data(), n, c);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expect[i], got[i])
            << backend.name << " scale n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, AxpyIsBitExact) {
  common::Rng rng(12);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const std::vector<double> y = random_values(rng, n);
      const double c = rng.uniform(-3.0, 3.0);
      std::vector<double> expect = y;
      scalar::axpy(expect.data(), x.data(), n, c);
      std::vector<double> got = y;
      backend.axpy(got.data(), x.data(), n, c);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(expect[i], got[i])
            << backend.name << " axpy n=" << n << " i=" << i;
      }
    }
  }
}

TEST(KernelEquivalence, DotWithinReductionTolerance) {
  common::Rng rng(13);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const std::vector<double> y = random_values(rng, n);
      const double expect = scalar::dot(x.data(), y.data(), n);
      const double got = backend.dot(x.data(), y.data(), n);
      double magnitude = 0.0;
      for (std::size_t i = 0; i < n; ++i) magnitude += std::abs(x[i] * y[i]);
      ASSERT_NEAR(expect, got, reduction_tolerance(magnitude))
          << backend.name << " dot n=" << n;
    }
  }
}

TEST(KernelEquivalence, SumSquaresWithinReductionTolerance) {
  common::Rng rng(14);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const double expect = scalar::sum_squares(x.data(), n);
      const double got = backend.sum_squares(x.data(), n);
      ASSERT_NEAR(expect, got, reduction_tolerance(expect))
          << backend.name << " sum_squares n=" << n;
    }
  }
}

TEST(KernelEquivalence, HsumWithinReductionTolerance) {
  common::Rng rng(15);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : kSizes) {
      const std::vector<double> x = random_values(rng, n);
      const double expect = scalar::hsum(x.data(), n);
      const double got = backend.hsum(x.data(), n);
      double magnitude = 0.0;
      for (double v : x) magnitude += std::abs(v);
      ASSERT_NEAR(expect, got, reduction_tolerance(magnitude))
          << backend.name << " hsum n=" << n;
    }
  }
}

TEST(KernelEquivalence, ReductionsAreExactOnIntegerValues) {
  // Integer-valued registers (packet/byte counts with c = 1) stay exact
  // under any summation order while the total fits a double exactly — the
  // property the parallel-vs-serial alarm equivalence relies on.
  common::Rng rng(16);
  for (const Backend& backend : backends_under_test()) {
    for (std::size_t n : {31UL, 4096UL, 20480UL}) {
      std::vector<double> x(n);
      for (double& v : x) {
        v = static_cast<double>(rng.next_in(-1000, 1000));
      }
      ASSERT_EQ(scalar::hsum(x.data(), n), backend.hsum(x.data(), n))
          << backend.name << " n=" << n;
      ASSERT_EQ(scalar::sum_squares(x.data(), n),
                backend.sum_squares(x.data(), n))
          << backend.name << " n=" << n;
    }
  }
}

}  // namespace
}  // namespace scd::simd
