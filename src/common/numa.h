// Optional NUMA-aware placement (docs/PERFORMANCE.md "Zero-copy ingest").
//
// On multi-socket hosts, a shard worker whose queue pages and sketch live on
// the remote node pays ~2x memory latency on every row sweep. When libnuma
// is available at build time (CMake defines SCD_HAVE_NUMA) these helpers
// spread shard workers round-robin across nodes and set the calling
// thread's memory-allocation preference to its node, so each worker's
// pooled sketches and queue chunks are first-touched locally. Without
// libnuma — or on single-node hosts — every call degrades to a no-op and
// ingestion behaves exactly as before; callers must treat placement as
// best-effort and never depend on it for correctness.
#pragma once

#include <cstddef>

namespace scd::common {

/// True when the binary was built against libnuma AND the running host
/// exposes more than one NUMA node. False means every other call here is a
/// no-op.
[[nodiscard]] bool numa_available() noexcept;

/// Number of NUMA nodes the policy spreads over (1 when unavailable).
[[nodiscard]] std::size_t numa_node_count() noexcept;

/// Best-effort: binds the calling thread's CPU affinity and memory
/// preference to node `index % numa_node_count()`. Returns true only when a
/// real binding was applied. Safe to call from any thread, any number of
/// times; never throws, never fails the caller.
bool numa_bind_index(std::size_t index) noexcept;

}  // namespace scd::common
