// The catalog of ten synthetic "routers" standing in for the paper's ten
// backbone NetFlow files (§4.1: 861K to 60M records across routers). Record
// counts are scaled down ~20x so the full evaluation suite runs in minutes;
// the spread (15x between small and large), popularity skew, and anomaly mix
// mirror the paper's setup. The named profiles "large", "medium", "small"
// correspond to the three representative files §5 reports on.
#pragma once

#include <string>
#include <vector>

#include "traffic/synthetic.h"

namespace scd::traffic {

struct RouterProfile {
  std::string name;        // "r01".."r10"
  std::string size_class;  // "large", "medium", "small", or ""
  SyntheticConfig config;
};

/// All ten router profiles, largest first.
[[nodiscard]] const std::vector<RouterProfile>& router_catalog();

/// Lookup by name ("r03") or size class ("large", "medium", "small").
/// Throws std::out_of_range for unknown names.
[[nodiscard]] const RouterProfile& router_by_name(const std::string& name);

}  // namespace scd::traffic
