// Fixture seed: reaches a per-ISA kernel backend directly instead of going
// through the dispatching simd/kernels.h — the simd-isolation rule must
// fire on the include line below.
#include "simd/kernels_avx2.h"

namespace fixture {

double f2_of(const double* values, unsigned long n) {
  return scd::simd::avx2::sum_squares(values, n);
}

}  // namespace fixture
