# Example executables. Declared from the top level (not via
# add_subdirectory) so ${CMAKE_BINARY_DIR}/examples holds only binaries.
function(scd_add_example name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/examples/${name}.cpp)
  target_link_libraries(${name} PRIVATE
    scd_agg scd_net scd_checkpoint scd_ingest scd_core scd_eval
    scd_gridsearch scd_detect scd_perflow scd_forecast scd_sketch scd_hash
    scd_traffic scd_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/examples)
endfunction()

scd_add_example(agg_node)
scd_add_example(aggregator)
scd_add_example(quickstart)
scd_add_example(compare_models)
scd_add_example(prefix_drilldown)
scd_add_example(detect_cli)
scd_add_example(dos_detection)
scd_add_example(flash_crowd)
scd_add_example(multi_router)
scd_add_example(online_monitor)
scd_add_example(parallel_ingest)
scd_add_example(trace_inspect)
