// Parallel-ingestion scaling curve: add() throughput of the sharded
// front-end (src/ingest) at W = 1..8 workers against the single-threaded
// ChangeDetectionPipeline baseline, same stream and configuration.
//
// The claim to reproduce is architectural, not from the paper: sketch
// UPDATE dominates per-record cost (Table 1), UPDATEs to private shard
// sketches are embarrassingly parallel, and COMBINE makes the merge exact —
// so add-throughput should scale with workers until the producer thread
// (shard routing + chunk handoff) or the core count saturates. On a
// single-core host every W collapses to time-sliced serial execution and
// the speedup column reads ~1x or below; the curve is only meaningful when
// hardware_concurrency comfortably exceeds W.
#include <cstdio>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/strutil.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"
#include "support/bench_util.h"

namespace {

scd::core::PipelineConfig pipeline_config() {
  scd::core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 5;
  config.k = 32768;
  config.threshold = 0.2;
  config.metrics = false;  // measure the data path, not the instrumentation
  return config;
}

struct Stream {
  std::vector<std::uint64_t> keys;
  std::vector<double> updates;
};

/// Pre-drawn stream so RNG cost is excluded (the Table 1 methodology). A
/// burst on one key past the halfway mark guarantees real alarms, so the
/// serial-vs-parallel parity check compares non-empty alarm sets.
Stream make_stream(std::size_t records) {
  Stream s;
  s.keys.reserve(records);
  s.updates.reserve(records);
  scd::common::Rng rng(42);
  const std::size_t burst_begin = records / 2;
  const std::size_t burst_end = burst_begin + 2000;
  for (std::size_t i = 0; i < records; ++i) {
    if (i >= burst_begin && i < burst_end) {
      s.keys.push_back(123456);
      s.updates.push_back(50000.0);
      continue;
    }
    s.keys.push_back(rng.next_below(1u << 20));
    s.updates.push_back(static_cast<double>(rng.next_in(1, 1500)));
  }
  return s;
}

}  // namespace

int main() {
  using namespace scd;
  bench::print_header(
      "parallel ingest", "sharded add() throughput, W = 1..8 workers",
      "COMBINE-merged sharding scales UPDATE throughput with cores "
      "(>= 2.5x at W=4 on >= 4 free cores); alarm output stays identical");

  constexpr std::size_t kRecords = 4'000'000;
  constexpr double kIntervalRecords = 500'000.0;  // records per 10 s interval
  const Stream stream = make_stream(kRecords);
  const auto time_of = [&](std::size_t i) {
    return static_cast<double>(i) / kIntervalRecords * 10.0;
  };

  // --- serial baseline -----------------------------------------------------
  common::Stopwatch sw;
  std::size_t serial_alarms = 0;
  {
    core::ChangeDetectionPipeline pipeline(pipeline_config());
    for (std::size_t i = 0; i < kRecords; ++i) {
      pipeline.add(stream.keys[i], stream.updates[i], time_of(i));
    }
    pipeline.flush();
    for (const auto& r : pipeline.reports()) serial_alarms += r.alarms.size();
  }
  const double serial_s = sw.seconds();
  const double serial_mrps = kRecords / serial_s / 1e6;

  std::printf("\nhardware_concurrency: %u\n",
              std::thread::hardware_concurrency());
  std::printf("%-28s %10s %12s %9s %8s\n", "configuration", "time", "records/s",
              "speedup", "alarms");
  std::printf("%-28s %8.3f s %9.2f M/s %8s %8zu\n", "serial baseline",
              serial_s, serial_mrps, "1.00x", serial_alarms);

  std::vector<std::pair<double, double>> curve;
  double w4_speedup = 0.0;
  bool alarms_match = true;
  for (const std::size_t workers : {1u, 2u, 4u, 8u}) {
    ingest::ParallelConfig parallel;
    parallel.workers = workers;
    sw.reset();
    std::size_t alarms = 0;
    {
      ingest::ParallelPipeline pipeline(pipeline_config(), parallel);
      for (std::size_t i = 0; i < kRecords; ++i) {
        pipeline.add(stream.keys[i], stream.updates[i], time_of(i));
      }
      pipeline.flush();
      for (const auto& r : pipeline.reports()) alarms += r.alarms.size();
    }
    const double elapsed = sw.seconds();
    const double speedup = serial_s / elapsed;
    if (workers == 4) w4_speedup = speedup;
    if (alarms != serial_alarms) alarms_match = false;
    curve.emplace_back(static_cast<double>(workers), speedup);
    std::printf("%-28s %8.3f s %9.2f M/s %7.2fx %8zu\n",
                common::str_format("parallel W=%zu", workers).c_str(), elapsed,
                kRecords / elapsed / 1e6, speedup, alarms);
  }
  bench::print_series("speedup_vs_workers", curve);

  bench::check(alarms_match,
               "parallel alarm count equals serial at every worker count");
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 5) {  // 4 workers + the producer thread need their own cores
    bench::check(w4_speedup >= 2.5,
                 "W=4 reaches >= 2.5x serial add-throughput",
                 common::str_format("%.2fx on %u cores", w4_speedup, cores));
  } else {
    std::printf("CHECK skipped: W=4 speedup target needs >= 5 cores, host "
                "has %u (measured %.2fx)\n", cores, w4_speedup);
  }
  return bench::finish();
}
