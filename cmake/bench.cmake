# Benchmark / figure-reproduction binaries. Declared from the top level so
# ${CMAKE_BINARY_DIR}/bench contains only the binaries and the canonical
# runner `for b in build/bench/*; do $b; done` works cleanly.

add_library(scd_bench_support STATIC
  ${CMAKE_SOURCE_DIR}/bench/support/bench_util.cpp
  ${CMAKE_SOURCE_DIR}/bench/support/experiments.cpp
)
target_include_directories(scd_bench_support PUBLIC ${CMAKE_SOURCE_DIR}/bench)
target_link_libraries(scd_bench_support PUBLIC
  scd_ingest scd_core scd_eval scd_gridsearch scd_detect scd_perflow
  scd_forecast scd_sketch scd_hash scd_traffic scd_common)

function(scd_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE scd_bench_support benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

scd_add_bench(bench_table1_opcost)
scd_add_bench(bench_kernel_throughput)
scd_add_bench(bench_fig01_relative_difference_cdf)
scd_add_bench(bench_fig02_vary_h)
scd_add_bench(bench_fig03_vary_k)
scd_add_bench(bench_gridsearch_vs_random)
scd_add_bench(bench_fig04_similarity_over_time)
scd_add_bench(bench_fig05_similarity_vs_k)
scd_add_bench(bench_fig06_topxn)
scd_add_bench(bench_fig07_vary_h_topn)
scd_add_bench(bench_fig08_medium_router)
scd_add_bench(bench_fig09_arima_similarity)
scd_add_bench(bench_fig10_threshold_60s)
scd_add_bench(bench_fig11_threshold_300s)
scd_add_bench(bench_fig12_fn_ewma_nshw)
scd_add_bench(bench_fig13_fn_arima)
scd_add_bench(bench_fig14_fp_ewma_nshw)
scd_add_bench(bench_fig15_fp_arima)
scd_add_bench(bench_appendix_estimator_quality)
scd_add_bench(bench_ablation_aggregate_vs_sketch)
scd_add_bench(bench_ablation_hash)
scd_add_bench(bench_ablation_interval_size)
scd_add_bench(bench_ablation_heavy_hitters)
scd_add_bench(bench_ablation_median)
scd_add_bench(bench_ablation_sketch_type)
scd_add_bench(bench_ext_factorial_design)
scd_add_bench(bench_ext_key_recovery)
scd_add_bench(bench_ext_seasonal_model)
scd_add_bench(bench_ext_online_detection)
scd_add_bench(bench_ext_packet_stream)
scd_add_bench(bench_ext_roc)
scd_add_bench(bench_ext_scan_detection)
scd_add_bench(bench_obs_overhead)
scd_add_bench(bench_parallel_ingest)

# The compiled-out overhead baseline: rebuild the core pipeline translation
# units with SCD_OBS_ENABLED=0 so instrumentation vanishes from the binary,
# then link the bench against that library INSTEAD of scd_core (linking both
# would collide on the pipeline symbols, so no scd_bench_support either).
add_library(scd_core_noobs STATIC
  ${CMAKE_SOURCE_DIR}/src/core/multi_resolution.cpp
  ${CMAKE_SOURCE_DIR}/src/core/pipeline.cpp
)
target_compile_definitions(scd_core_noobs PRIVATE SCD_OBS_ENABLED=0)
target_link_libraries(scd_core_noobs PUBLIC
  scd_detect scd_forecast scd_gridsearch scd_sketch scd_traffic scd_obs
  scd_common)

add_executable(bench_obs_overhead_compiledout
  ${CMAKE_SOURCE_DIR}/bench/bench_obs_overhead_compiledout.cpp)
# The bench TU itself also compiles with obs off so its static_assert can
# prove the span macros followed SCD_OBS_ENABLED out of the build.
target_compile_definitions(bench_obs_overhead_compiledout
  PRIVATE SCD_OBS_ENABLED=0)
target_link_libraries(bench_obs_overhead_compiledout PRIVATE scd_core_noobs)
set_target_properties(bench_obs_overhead_compiledout PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
