// Flash crowd vs DoS: comparing forecast models on a gradual surge.
//
// A flash crowd ramps up over 20 minutes instead of switching on instantly.
// A trend-aware model (non-seasonal Holt-Winters) absorbs the ramp into its
// trend component and keeps flagging only the *onset*, while trendless EWMA
// keeps alarming through the whole surge. This example quantifies that
// difference — the kind of triage §1.3 motivates ("an anomaly can be a
// benign surge ... or an attack").
//
//   ./build/examples/flash_crowd
#include <cstdio>
#include <vector>

#include "common/strutil.h"
#include "core/pipeline.h"
#include "traffic/synthetic.h"

namespace {

scd::traffic::SyntheticConfig scenario() {
  scd::traffic::SyntheticConfig config;
  config.seed = 99;
  config.duration_s = 7200.0;  // 2 hours
  config.base_rate = 80.0;
  config.num_hosts = 10000;
  config.zipf_exponent = 1.05;
  scd::traffic::AnomalySpec crowd;
  crowd.kind = scd::traffic::AnomalyKind::kFlashCrowd;
  crowd.start_s = 4200.0;
  crowd.duration_s = 2400.0;  // 20 min up, 20 min down
  crowd.magnitude = 400.0;
  crowd.target_rank = 3000;  // a previously-cold destination
  config.anomalies.push_back(crowd);
  return config;
}

struct RunResult {
  std::vector<double> target_errors;  // per interval, 0 when not flagged
  std::size_t intervals = 0;
};

RunResult run_with_model(const std::vector<scd::traffic::FlowRecord>& records,
                         std::uint32_t target,
                         const scd::forecast::ModelConfig& model) {
  scd::core::PipelineConfig config;
  config.interval_s = 300.0;
  config.h = 5;
  config.k = 32768;
  config.model = model;
  config.threshold = 0.15;
  scd::core::ChangeDetectionPipeline pipeline(config);
  for (const auto& r : records) pipeline.add_record(r);
  pipeline.flush();
  RunResult result;
  result.intervals = pipeline.reports().size();
  result.target_errors.assign(result.intervals, 0.0);
  for (const auto& report : pipeline.reports()) {
    for (const auto& alarm : report.alarms) {
      if (alarm.key == target) result.target_errors[report.index] = alarm.error;
    }
  }
  return result;
}

}  // namespace

int main() {
  using namespace scd;
  const auto config = scenario();
  traffic::SyntheticTraceGenerator generator(config);
  std::printf("generating 2 h trace with a flash crowd (ramp 4200-6600 s)...\n");
  const auto records = generator.generate();
  const auto target = generator.dst_ip_of_rank(3000);
  std::printf("crowd destination: %s\n\n",
              common::ipv4_to_string(target).c_str());

  forecast::ModelConfig ewma;
  ewma.kind = forecast::ModelKind::kEwma;
  ewma.alpha = 0.5;
  forecast::ModelConfig nshw;
  nshw.kind = forecast::ModelKind::kHoltWinters;
  nshw.alpha = 0.5;
  nshw.beta = 0.6;

  const auto r_ewma = run_with_model(records, target, ewma);
  const auto r_nshw = run_with_model(records, target, nshw);

  std::printf("%-12s %-22s %-22s\n", "interval", "EWMA error on target",
              "NSHW error on target");
  std::size_t ewma_flags = 0, nshw_flags = 0;
  for (std::size_t t = 0; t < r_ewma.intervals; ++t) {
    const double te = r_ewma.target_errors[t];
    const double th = r_nshw.target_errors[t];
    if (te != 0.0) ++ewma_flags;
    if (th != 0.0) ++nshw_flags;
    if (te == 0.0 && th == 0.0) continue;
    std::printf("%4zu (%4.0fs) %-22s %-22s\n", t,
                static_cast<double>(t) * 300.0,
                te ? common::str_format("%+.2f MB", te / 1e6).c_str() : "-",
                th ? common::str_format("%+.2f MB", th / 1e6).c_str() : "-");
  }
  std::printf(
      "\nintervals flagged on the crowd destination: EWMA=%zu  NSHW=%zu\n",
      ewma_flags, nshw_flags);
  std::printf(
      "a trend-aware model flags the onset, then tracks the ramp; a\n"
      "trendless model keeps re-alarming while the surge grows.\n");
  return 0;
}
