// Integration: a short pipeline run must surface through the Prometheus
// text exposition — the text parses, the expected metric families are
// declared, histogram series are internally consistent, and counters move
// by at least what the run fed in (the registry is process-wide, so other
// tests in this binary may have moved them too; deltas are lower bounds).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"
#include "obs/exposition.h"
#include "obs/metrics.h"

namespace {

using namespace scd;

struct ParsedExposition {
  std::map<std::string, std::string> family_type;  // name -> counter/gauge/...
  std::map<std::string, std::string> family_help;
  // Full series name (with labels) -> value text.
  std::map<std::string, std::string> samples;
  std::vector<std::string> errors;
};

/// Strict-enough parser for the text exposition format: every line must be
/// a HELP/TYPE comment or a "name[{labels}] value" sample whose family was
/// declared first.
ParsedExposition parse_prometheus(const std::string& text) {
  ParsedExposition out;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      out.errors.push_back("blank line");
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0 || line.rfind("# TYPE ", 0) == 0) {
      const bool is_type = line.rfind("# TYPE ", 0) == 0;
      const std::string rest = line.substr(7);
      const std::size_t space = rest.find(' ');
      if (space == std::string::npos || space == 0) {
        out.errors.push_back("malformed comment: " + line);
        continue;
      }
      const std::string name = rest.substr(0, space);
      if (is_type) {
        out.family_type[name] = rest.substr(space + 1);
      } else {
        out.family_help[name] = rest.substr(space + 1);
      }
      continue;
    }
    if (line[0] == '#') {
      out.errors.push_back("unknown comment: " + line);
      continue;
    }
    // Sample line. Split off the value at the last space (label values are
    // quoted, so a last-space split is safe for our exporter).
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 || space + 1 >= line.size()) {
      out.errors.push_back("malformed sample: " + line);
      continue;
    }
    const std::string series = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    out.samples[series] = value;
    // The series must belong to a declared family: its name up to '{' (and
    // for histograms, minus the _bucket/_sum/_count suffix).
    std::string name = series.substr(0, series.find('{'));
    if (out.family_type.count(name) == 0) {
      for (const char* suffix : {"_bucket", "_sum", "_count"}) {
        const std::string s(suffix);
        if (name.size() > s.size() &&
            name.compare(name.size() - s.size(), s.size(), s) == 0) {
          const std::string base = name.substr(0, name.size() - s.size());
          if (out.family_type.count(base) != 0) name = base;
        }
      }
    }
    if (out.family_type.count(name) == 0) {
      out.errors.push_back("sample without TYPE declaration: " + line);
    }
  }
  return out;
}

std::uint64_t counter_value(const ParsedExposition& parsed,
                            const std::string& series) {
  const auto it = parsed.samples.find(series);
  if (it == parsed.samples.end()) return 0;
  return std::stoull(it->second);
}

TEST(ObsPipelineIntegration, ExpositionRoundTripsThroughAShortRun) {
  const auto before =
      parse_prometheus(obs::to_prometheus(obs::MetricsRegistry::global()));

  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 3;
  config.k = 1024;
  config.threshold = 0.2;
  config.min_consecutive = 1;
  core::ChangeDetectionPipeline pipeline(config);
  const std::uint64_t kRecords = 6 * 40 + 1;
  for (std::size_t t = 0; t < 6; ++t) {
    for (std::uint64_t key = 1; key <= 40; ++key) {
      pipeline.add(key, 100.0, static_cast<double>(t) * 10.0 + 1.0);
    }
  }
  pipeline.add(41, 100.0, 3.0);  // late record: clamped, counted
  pipeline.flush();

  const std::string text = obs::to_prometheus(obs::MetricsRegistry::global());
  const ParsedExposition after = parse_prometheus(text);
  EXPECT_TRUE(after.errors.empty())
      << "first parse error: " << after.errors.front();

  // The advertised metric families exist with the right types.
  const std::map<std::string, std::string> expected_types = {
      {"scd_pipeline_records_total", "counter"},
      {"scd_pipeline_intervals_closed_total", "counter"},
      {"scd_pipeline_detections_total", "counter"},
      {"scd_pipeline_alarms_total", "counter"},
      {"scd_pipeline_keys_replayed_total", "counter"},
      {"scd_pipeline_hysteresis_suppressed_total", "counter"},
      {"scd_pipeline_refits_total", "counter"},
      {"scd_pipeline_out_of_order_total", "counter"},
      {"scd_pipeline_replay_buffer_keys", "gauge"},
      {"scd_pipeline_sketch_bytes", "gauge"},
      {"scd_pipeline_last_alarm_threshold", "gauge"},
      {"scd_pipeline_last_error_l2", "gauge"},
      {"scd_pipeline_stage_seconds", "histogram"},
  };
  for (const auto& [name, type] : expected_types) {
    ASSERT_EQ(after.family_type.count(name), 1u) << name;
    EXPECT_EQ(after.family_type.at(name), type) << name;
    EXPECT_EQ(after.family_help.count(name), 1u) << name;
  }

  // Counters moved by at least what this run contributed.
  const auto delta = [&before, &after](const std::string& series) {
    return counter_value(after, series) - counter_value(before, series);
  };
  EXPECT_GE(delta("scd_pipeline_records_total"), kRecords);
  EXPECT_GE(delta("scd_pipeline_intervals_closed_total"), 6u);
  EXPECT_GE(delta("scd_pipeline_detections_total"), 5u);  // 6 minus warm-up
  EXPECT_GE(delta("scd_pipeline_keys_replayed_total"), 5u * 40u);
  EXPECT_GE(delta("scd_pipeline_out_of_order_total"), 1u);

  // The per-pipeline stats agree with what the run fed.
  const auto stats = pipeline.stats();
  EXPECT_EQ(stats.records, kRecords);
  EXPECT_EQ(stats.out_of_order_records, 1u);
  EXPECT_EQ(stats.keys_replayed, 5u * 40u + 1u);  // post warm-up + late key
  EXPECT_EQ(stats.sketch_bytes, config.h * config.k * sizeof(double));

  // Histogram series are internally consistent per stage: cumulative
  // buckets are non-decreasing and the +Inf bucket equals _count.
  for (const char* stage :
       {"sketch_update", "interval_close", "forecast", "estimate_f2"}) {
    const std::string label = std::string("stage=\"") + stage + "\"";
    // Collect (le, cumulative) pairs and order them numerically — series
    // names sort lexicographically, which scrambles the bounds.
    std::vector<std::pair<double, std::uint64_t>> buckets;
    for (const auto& [series, value] : after.samples) {
      if (series.rfind("scd_pipeline_stage_seconds_bucket{", 0) != 0) continue;
      if (series.find(label) == std::string::npos) continue;
      const std::size_t le_pos = series.find("le=\"");
      ASSERT_NE(le_pos, std::string::npos) << series;
      const std::string le =
          series.substr(le_pos + 4, series.find('"', le_pos + 4) - le_pos - 4);
      const double bound = le == "+Inf"
                               ? std::numeric_limits<double>::infinity()
                               : std::stod(le);
      buckets.emplace_back(bound, std::stoull(value));
    }
    std::sort(buckets.begin(), buckets.end());
    ASSERT_FALSE(buckets.empty()) << stage;
    for (std::size_t i = 1; i < buckets.size(); ++i) {
      EXPECT_GE(buckets[i].second, buckets[i - 1].second)
          << stage << " le=" << buckets[i].first;
    }
    const std::string inf_series =
        "scd_pipeline_stage_seconds_bucket{" + label + ",le=\"+Inf\"}";
    const std::string count_series =
        "scd_pipeline_stage_seconds_count{" + label + "}";
    ASSERT_EQ(after.samples.count(inf_series), 1u) << inf_series;
    ASSERT_EQ(after.samples.count(count_series), 1u) << count_series;
    EXPECT_EQ(after.samples.at(inf_series), after.samples.at(count_series))
        << stage;
    EXPECT_GT(std::stoull(after.samples.at(count_series)), 0u) << stage;
  }

  // And the JSON exporter renders the same registry without blowing up.
  const std::string json = obs::to_json(obs::MetricsRegistry::global());
  EXPECT_NE(json.find("scd_pipeline_stage_seconds"), std::string::npos);
}

TEST(ObsPipelineIntegration, MetricsDisabledPipelineLeavesRegistryUntouched) {
  const auto before =
      parse_prometheus(obs::to_prometheus(obs::MetricsRegistry::global()));
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 3;
  config.k = 1024;
  config.metrics = false;
  core::ChangeDetectionPipeline pipeline(config);
  for (std::uint64_t key = 1; key <= 100; ++key) {
    pipeline.add(key, 50.0, 1.0);
  }
  pipeline.flush();
  const auto after =
      parse_prometheus(obs::to_prometheus(obs::MetricsRegistry::global()));
  EXPECT_EQ(counter_value(before, "scd_pipeline_records_total"),
            counter_value(after, "scd_pipeline_records_total"));
  // Per-pipeline lifetime stats still work without the global registry.
  EXPECT_EQ(pipeline.stats().records, 100u);
  EXPECT_EQ(pipeline.stats().intervals_closed, 1u);
}

TEST(ObsPipelineIntegration, ParallelIngestSurfacesItsOwnFamilies) {
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 3;
  config.k = 1024;
  ingest::ParallelConfig parallel;
  parallel.workers = 2;
  parallel.batch_size = 8;
  ingest::ParallelPipeline pipeline(config, parallel);
  for (std::size_t t = 0; t < 4; ++t) {
    for (std::uint64_t key = 1; key <= 40; ++key) {
      pipeline.add(key, 100.0, static_cast<double>(t) * 10.0 + 1.0);
    }
  }
  pipeline.flush();

  const auto parsed =
      parse_prometheus(obs::to_prometheus(obs::MetricsRegistry::global()));
  EXPECT_TRUE(parsed.errors.empty());
  const std::map<std::string, std::string> expected_types = {
      {"scd_ingest_queue_records", "gauge"},
      {"scd_ingest_backpressure_total", "counter"},
      {"scd_ingest_merge_seconds", "histogram"},
      {"scd_ingest_shard_apply_seconds", "histogram"},
  };
  for (const auto& [name, type] : expected_types) {
    ASSERT_EQ(parsed.family_type.count(name), 1u) << name;
    EXPECT_EQ(parsed.family_type.at(name), type) << name;
  }
  // One apply histogram per shard, and every applied chunk was drained from
  // the queue gauge (it must read 0 after flush).
  for (const char* shard : {"0", "1"}) {
    const std::string series = std::string(
        "scd_ingest_shard_apply_seconds_count{shard=\"") + shard + "\"}";
    ASSERT_EQ(parsed.samples.count(series), 1u) << series;
    EXPECT_GT(std::stoull(parsed.samples.at(series)), 0u) << series;
  }
  const auto queue = parsed.samples.find("scd_ingest_queue_records");
  ASSERT_NE(queue, parsed.samples.end());
  EXPECT_DOUBLE_EQ(std::stod(queue->second), 0.0);
  // A barrier merge ran once per interval close.
  const auto merges = parsed.samples.find("scd_ingest_merge_seconds_count");
  ASSERT_NE(merges, parsed.samples.end());
  EXPECT_GE(std::stoull(merges->second), 4u);
}

}  // namespace
