// Statistical universality checks applied uniformly to both hash families
// via typed tests. These are the properties the k-ary sketch analysis
// (Appendix A/B) actually relies on: near-uniform marginals and pairwise
// collision probability ~ 1/K across independently seeded functions.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdint>

#include "common/random.h"
#include "hash/cw_hash.h"
#include "hash/hash_family.h"
#include "hash/tabulation_hash.h"

namespace scd::hash {
namespace {

template <typename Family>
class UniversalityTest : public ::testing::Test {};

using Families = ::testing::Types<CwHashFamily, TabulationHashFamily>;
TYPED_TEST_SUITE(UniversalityTest, Families);

TYPED_TEST(UniversalityTest, MarginalIsNearUniform) {
  TypeParam f(4242, 1);
  constexpr int kBuckets = 256;
  std::array<int, kBuckets> counts{};
  const int n = 256000;
  std::uint64_t state = 7;
  for (int i = 0; i < n; ++i) {
    const auto key =
        static_cast<std::uint32_t>(scd::common::splitmix64(state));
    ++counts[f.hash16(0, key) % kBuckets];
  }
  // Chi-square with 255 dof: mean 255, stddev ~22.6; 400 is a ~6-sigma bound.
  const double expected = static_cast<double>(n) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 400.0);
}

TYPED_TEST(UniversalityTest, PairwiseCollisionRateMatchesK) {
  // Pr[h(a) = h(b)] over random distinct pairs must be ~ 1/K (= 1/16 via
  // masking). 4 families x 20000 pairs: expected 5000, stddev ~68; accept
  // within ~6 sigma.
  int collisions = 0;
  std::uint64_t state = 11;
  for (int seed = 1; seed <= 4; ++seed) {
    TypeParam f(static_cast<std::uint64_t>(seed) * std::uint64_t{2654435761} + 1,
                1);
    for (int i = 0; i < 20000; ++i) {
      const auto a = static_cast<std::uint32_t>(scd::common::splitmix64(state));
      auto b = static_cast<std::uint32_t>(scd::common::splitmix64(state));
      if (b == a) ++b;
      if ((f.hash16(0, a) & 15) == (f.hash16(0, b) & 15)) ++collisions;
    }
  }
  EXPECT_GT(collisions, 5000 - 410);
  EXPECT_LT(collisions, 5000 + 410);
}

TYPED_TEST(UniversalityTest, FourKeyJointCollisionsAreRare) {
  // 4-universality is a statement over the RANDOM function: for four fixed
  // distinct keys, the four hash values are jointly uniform, so
  // Pr[all four equal mod 4] = (1/4)^3 = 1/64. (Within a single fixed CW
  // polynomial, consecutive keys are algebraically coupled — the third
  // finite difference of a cubic is constant — so the sampling must be over
  // seeds, not over key tuples.) 3000 seeds -> expected ~47; accept [20, 85].
  int all_equal = 0;
  for (int seed = 1; seed <= 3000; ++seed) {
    TypeParam f(static_cast<std::uint64_t>(seed) * std::uint64_t{0x9e3779b9} + 3,
                1);
    const auto h0 = f.hash16(0, 111) & 3;
    const auto h1 = f.hash16(0, 222) & 3;
    const auto h2 = f.hash16(0, 333) & 3;
    const auto h3 = f.hash16(0, 444) & 3;
    if (h0 == h1 && h1 == h2 && h2 == h3) ++all_equal;
  }
  EXPECT_GE(all_equal, 20);
  EXPECT_LE(all_equal, 85);
}

TYPED_TEST(UniversalityTest, BucketMaskingPreservesUniformity) {
  TypeParam f(777, 1);
  for (std::size_t k : {2u, 64u, 1024u}) {
    ASSERT_TRUE(valid_bucket_count(k));
    std::vector<int> counts(k, 0);
    const int n = static_cast<int>(k) * 500;
    std::uint64_t state = 13;
    for (int i = 0; i < n; ++i) {
      const auto key =
          static_cast<std::uint32_t>(scd::common::splitmix64(state));
      ++counts[f.hash16(0, key) & (k - 1)];
    }
    for (int c : counts) {
      EXPECT_GT(c, 350) << "k=" << k;
      EXPECT_LT(c, 680) << "k=" << k;
    }
  }
}

TYPED_TEST(UniversalityTest, AvalancheOnSingleBitFlips) {
  // Flipping any single key bit should flip each output bit with probability
  // ~1/2. We aggregate over key bits and samples and require the mean flip
  // rate per output bit position to stay in [0.40, 0.60].
  TypeParam f(1337, 1);
  std::uint64_t state = 51;
  constexpr int kSamples = 3000;
  std::array<int, 16> flips{};
  int trials = 0;
  for (int s = 0; s < kSamples; ++s) {
    const auto key =
        static_cast<std::uint32_t>(scd::common::splitmix64(state));
    const std::uint16_t base = f.hash16(0, key);
    const unsigned bit = static_cast<unsigned>(s) % 32u;
    const std::uint16_t flipped = f.hash16(0, key ^ (1u << bit));
    const std::uint16_t diff = base ^ flipped;
    for (unsigned out = 0; out < 16; ++out) {
      if ((diff >> out) & 1) ++flips[out];
    }
    ++trials;
  }
  for (unsigned out = 0; out < 16; ++out) {
    const double rate = static_cast<double>(flips[out]) / trials;
    EXPECT_GT(rate, 0.40) << "output bit " << out;
    EXPECT_LT(rate, 0.60) << "output bit " << out;
  }
}

TEST(ValidBucketCount, AcceptsPowersOfTwoUpTo64K) {
  for (std::size_t k = 1; k <= (1u << 16); k <<= 1) {
    EXPECT_TRUE(valid_bucket_count(k)) << k;
  }
  EXPECT_FALSE(valid_bucket_count(0));
  EXPECT_FALSE(valid_bucket_count(3));
  EXPECT_FALSE(valid_bucket_count(1000));
  EXPECT_FALSE(valid_bucket_count(1u << 17));
}

}  // namespace
}  // namespace scd::hash
