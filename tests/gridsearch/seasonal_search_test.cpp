// Grid search over the seasonal Holt-Winters extension.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "common/random.h"

#include "forecast/runner.h"
#include "gridsearch/grid_search.h"

namespace scd::gridsearch {
namespace {

using forecast::ModelConfig;
using forecast::ModelKind;

TEST(SeasonalGridSearch, SearchesThreeDimensions) {
  const auto objective = [](const ModelConfig& c) {
    return (c.alpha - 0.3) * (c.alpha - 0.3) + (c.beta - 0.6) * (c.beta - 0.6) +
           (c.gamma - 0.9) * (c.gamma - 0.9);
  };
  GridSearchOptions options;
  options.season_period = 12;
  const auto result =
      grid_search(ModelKind::kSeasonalHoltWinters, objective, options);
  EXPECT_NEAR(result.best.alpha, 0.3, 0.03);
  EXPECT_NEAR(result.best.beta, 0.6, 0.03);
  EXPECT_NEAR(result.best.gamma, 0.9, 0.03);
  EXPECT_EQ(result.best.period, 12u);
  EXPECT_TRUE(result.best.valid());
}

TEST(SeasonalGridSearch, FindsParamsThatBeatNonSeasonalSearch) {
  // Cyclic scalar series with mild noise: searched SHW must leave far less
  // residual energy than searched (season-blind) non-seasonal Holt-Winters.
  std::vector<double> series;
  const std::size_t period = 8;
  std::uint64_t state = 3;
  for (int t = 0; t < 80; ++t) {
    const double noise =
        (static_cast<double>(scd::common::splitmix64(state) >> 11) *
             0x1.0p-53 -
         0.5) *
        4.0;
    series.push_back(100.0 +
                     50.0 * std::sin(2.0 * std::numbers::pi * t / period) +
                     noise);
  }
  const auto energy_of = [&series](const ModelConfig& c) {
    forecast::ForecastRunner<forecast::ScalarSignal> runner(
        c, forecast::ScalarSignal{});
    double energy = 0.0;
    for (double o : series) {
      if (const auto step = runner.step(forecast::ScalarSignal(o))) {
        energy += step->error.value() * step->error.value();
      }
    }
    return energy;
  };
  GridSearchOptions options;
  options.season_period = period;
  const auto seasonal =
      grid_search(ModelKind::kSeasonalHoltWinters, energy_of, options);
  const auto plain = grid_search(ModelKind::kHoltWinters, energy_of, options);
  EXPECT_LT(seasonal.best_objective, 0.2 * plain.best_objective);
}

}  // namespace
}  // namespace scd::gridsearch
