// Majority-vote invertible sketch — k-ary-compatible change detection with
// single-pass heavy-key recovery (ROADMAP open item 2; per "A Fast and
// Compact Invertible Sketch for Network-Wide Heavy Flow Detection",
// arXiv 1910.10441).
//
// Each (row, bucket) cell carries the usual k-ary counter PLUS a candidate
// key and a vote count maintained by weighted Boyer-Moore majority voting:
//
//   UPDATE(S, a, u):  T[i][h_i(a)] += u, then vote with weight |u| —
//                     same candidate: vote += |u|; different candidate:
//                     vote -= |u|, adopting `a` when the vote crosses zero.
//
// The counter table is exactly the k-ary table (same ESTIMATE /
// ESTIMATEF2 / COMBINE arithmetic, same hash family contract), so the
// forecasting models run on this sketch unchanged and the error sketch
// S_e(t) = S_o(t) - S_f(t) keeps per-bucket candidates. Any key holding a
// strict majority of a bucket's total absolute update mass is that bucket's
// final candidate regardless of arrival or merge order — which is what
// makes recover_heavy_keys() a replay-free read-out: sweep the buckets
// whose |counter| clears the threshold, collect their candidates, and
// verify each against the median ESTIMATE.
//
// Linear-space operations extend to the vote state deterministically:
// scale(c) multiplies votes by |c| (candidates unchanged), and
// add_scaled(other, c) merges each bucket's (candidate, vote) pair with the
// weighted majority rule using weight |c| * other.vote. Votes are
// order-sensitive in general, but candidate identity for strict-majority
// keys is not — see docs/KEY_RECOVERY.md for the exact invariant the
// serial-vs-sharded property test relies on.
//
// Structural misuse (null family, bad shape, mismatched spans, combining
// incompatible sketches) throws std::invalid_argument in all build types,
// matching BasicKarySketch's contract.
#pragma once

#include <algorithm>
#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "hash/cw_hash.h"
#include "hash/hash_family.h"
#include "hash/tabulation_hash.h"
#include "sketch/kary_sketch.h"
#include "sketch/median.h"
#include "simd/kernels.h"

namespace scd::sketch {

/// One key read out of an invertible sketch: the candidate and its verified
/// median estimate. 64-bit key so both key domains share the result type.
struct RecoveredHeavyKey {
  std::uint64_t key = 0;
  double value = 0.0;
};

template <hash::HashFamily16 Family>
class BasicMvSketch {
 public:
  using FamilyPtr = std::shared_ptr<const Family>;
  using FamilyType = Family;

  /// Widest key (in bits) the hash family evaluates without truncation.
  static constexpr unsigned kKeyBits = Family::kKeyBits;

  /// K must be a power of two in [2, 2^16]; the family supplies H = rows().
  /// Throws std::invalid_argument on a null family or out-of-range shape.
  BasicMvSketch(FamilyPtr family, std::size_t k)
      : family_(std::move(family)), k_(k) {
    if (family_ == nullptr) {
      throw std::invalid_argument("BasicMvSketch: null hash family");
    }
    if (!hash::valid_bucket_count(k_) || k_ < 2) {
      throw std::invalid_argument(
          "BasicMvSketch: k must be a power of two in [2, 65536]");
    }
    if (family_->rows() < 1 || family_->rows() > kMaxRows) {
      throw std::invalid_argument("BasicMvSketch: rows must be in [1, 32]");
    }
    const std::size_t cells = family_->rows() * k_;
    table_.assign(cells, 0.0);
    candidates_.assign(cells, 0);
    votes_.assign(cells, 0.0);
  }

  [[nodiscard]] std::size_t depth() const noexcept { return family_->rows(); }
  [[nodiscard]] std::size_t width() const noexcept { return k_; }
  [[nodiscard]] const FamilyPtr& family() const noexcept { return family_; }

  /// UPDATE — adds u to the key's register in every row and votes on the
  /// bucket's candidate with weight |u|. `key` must fit the family's key
  /// domain (kKeyBits); checked in debug builds.
  void update(std::uint64_t key, double u) noexcept {
    assert_key_in_domain(key);
    const std::size_t h = depth();
    const std::uint64_t mask = k_ - 1;
    const double w = std::abs(u);
    if constexpr (requires(const Family f, std::uint32_t k32, std::uint16_t* o) {
                    f.hash_all(k32, o);
                  }) {
      std::array<std::uint16_t, kMaxRows> hv;
      family_->hash_all(static_cast<std::uint32_t>(key), hv.data());
      for (std::size_t i = 0; i < h; ++i) {
        const std::size_t idx = i * k_ + (hv[i] & mask);
        table_[idx] += u;
        vote(idx, key, w);
      }
    } else {
      for (std::size_t i = 0; i < h; ++i) {
        const std::size_t idx = i * k_ + (family_->hash16(i, key) & mask);
        table_[idx] += u;
        vote(idx, key, w);
      }
    }
  }

  /// Batched UPDATE, bit-identical to calling update() record by record.
  /// The vote state forces per-record sequential application (a bucket's
  /// candidate depends on every prior update that hashed into it), so unlike
  /// BasicKarySketch there is no row-sweep rearrangement to exploit — this
  /// is the documented UPDATE-cost trade-off of the invertible family.
  void update_batch(std::span<const Record> records) noexcept {
    for (const Record& r : records) update(r.key, r.update);
  }

  /// Total update mass sum(S) = sum_j T[0][j]; identical across rows for any
  /// sketch built by UPDATE/COMBINE. Recomputed per call (no cache — the
  /// recovery sweep computes it once and reuses it internally).
  [[nodiscard]] double sum() const noexcept {
    return simd::hsum(table_.data(), k_);
  }

  /// ESTIMATE — identical arithmetic to BasicKarySketch::estimate.
  [[nodiscard]] double estimate(std::uint64_t key) const noexcept {
    const double per_bucket = sum() / static_cast<double>(k_);
    const double denom = 1.0 - 1.0 / static_cast<double>(k_);
    return estimate_with(key, per_bucket, denom);
  }

  /// Per-row evidence behind estimate(key), for alarm provenance; both spans
  /// must have length depth(). Matches BasicKarySketch::estimate_rows.
  void estimate_rows(std::uint64_t key, std::span<double> raw_buckets,
                     std::span<double> row_estimates) const {
    assert_key_in_domain(key);
    const std::size_t h = depth();
    if (raw_buckets.size() != h || row_estimates.size() != h) {
      throw std::invalid_argument("estimate_rows: spans must have length h");
    }
    const std::uint64_t mask = k_ - 1;
    const double per_bucket = sum() / static_cast<double>(k_);
    const double denom = 1.0 - 1.0 / static_cast<double>(k_);
    for (std::size_t i = 0; i < h; ++i) {
      const double bucket = table_[i * k_ + (family_->hash16(i, key) & mask)];
      raw_buckets[i] = bucket;
      row_estimates[i] = (bucket - per_bucket) / denom;
    }
  }

  /// ESTIMATEF2 — identical arithmetic to BasicKarySketch::estimate_f2.
  [[nodiscard]] double estimate_f2() const noexcept {
    const std::size_t h = depth();
    const auto kd = static_cast<double>(k_);
    const double s = sum();
    std::array<double, kMaxRows> est;
    for (std::size_t i = 0; i < h; ++i) {
      const double sq = simd::sum_squares(&table_[i * k_], k_);
      est[i] = (kd * sq - s * s) / (kd - 1.0);
    }
    return median_inplace(std::span<double>(est.data(), h));
  }

  [[nodiscard]] double estimate_l2() const noexcept {
    return std::sqrt(std::max(estimate_f2(), 0.0));
  }

  /// Single-pass heavy-key read-out: sweeps every (row, bucket) whose
  /// |counter| >= threshold_abs, collects the bucket's candidate (buckets
  /// that never received an update carry no candidate), deduplicates, and
  /// verifies each candidate's median ESTIMATE against the same threshold.
  /// Results are sorted by |value| descending (ties by key ascending), ready
  /// for detect::top_n / detect::above_threshold. With threshold_abs == 0
  /// every voted bucket contributes its candidate — the top-N mode.
  /// `candidates_swept`, when non-null, receives the pre-verification
  /// candidate count (the scd_recovery_candidates_total increment).
  [[nodiscard]] std::vector<RecoveredHeavyKey> recover_heavy_keys(
      double threshold_abs, std::size_t* candidates_swept = nullptr) const;

  // ---- Linear-space operations (COMBINE) ------------------------------
  // BasicMvSketch is a LinearSignal: the counters combine exactly like the
  // k-ary table, and the vote state follows with the weighted-majority
  // merge rule so the combined sketch remains invertible.

  void set_zero() noexcept {
    std::fill(table_.begin(), table_.end(), 0.0);
    std::fill(candidates_.begin(), candidates_.end(), 0);
    std::fill(votes_.begin(), votes_.end(), 0.0);
  }

  /// Counters scale linearly; votes scale by |c| (a vote is an absolute
  /// mass), candidates are unchanged. scale(0) clears every vote, which
  /// resets each bucket to the "no candidate" state.
  void scale(double c) noexcept {
    simd::scale(table_.data(), table_.size(), c);
    const double w = std::abs(c);
    for (double& v : votes_) v *= w;
  }

  /// *this += c * other. Counters combine entry-wise; each bucket's
  /// candidate pair merges by majority vote with weight |c| * other.vote.
  /// Throws std::invalid_argument unless the two sketches share the same
  /// family and width.
  void add_scaled(const BasicMvSketch& other, double c) {
    if (!compatible(other)) {
      throw std::invalid_argument(
          "BasicMvSketch::add_scaled: incompatible sketches (family or "
          "width mismatch)");
    }
    simd::axpy(table_.data(), other.table_.data(), table_.size(), c);
    const double w = std::abs(c);
    for (std::size_t idx = 0; idx < votes_.size(); ++idx) {
      vote(idx, other.candidates_[idx], w * other.votes_[idx]);
    }
  }

  [[nodiscard]] bool compatible(const BasicMvSketch& other) const noexcept {
    return family_ == other.family_ && k_ == other.k_;
  }

  /// COMBINE(c_1, S_1, ..., c_l, S_l). Throws std::invalid_argument when
  /// empty, when coeffs and sketches differ in length, or when any sketch is
  /// incompatible with the first. Applied in argument order, which is what
  /// makes the shard merge deterministic.
  [[nodiscard]] static BasicMvSketch combine(
      std::span<const double> coeffs,
      std::span<const BasicMvSketch* const> sketches) {
    if (sketches.empty() || coeffs.size() != sketches.size()) {
      throw std::invalid_argument(
          "BasicMvSketch::combine: need one coefficient per sketch and at "
          "least one sketch");
    }
    BasicMvSketch out(sketches.front()->family_, sketches.front()->k_);
    for (std::size_t l = 0; l < sketches.size(); ++l) {
      out.add_scaled(*sketches[l], coeffs[l]);
    }
    return out;
  }

  /// Replaces the counter table wholesale (deserialization, shard merge).
  /// Throws std::invalid_argument on a wrong-sized span. The vote state is
  /// untouched — pair with load_aux() when restoring a full snapshot.
  void load_registers(std::span<const double> values) {
    if (values.size() != table_.size()) {
      throw std::invalid_argument(
          "BasicMvSketch::load_registers: span size does not match the "
          "register table");
    }
    std::copy(values.begin(), values.end(), table_.begin());
  }

  /// Replaces the candidate/vote state wholesale. Both spans must have
  /// H * K entries; throws std::invalid_argument otherwise. Content
  /// validation (finite, nonnegative votes) is the serializer's job — this
  /// is the same division of labour as load_registers.
  void load_aux(std::span<const std::uint64_t> cand,
                std::span<const double> vote_counts) {
    if (cand.size() != candidates_.size() ||
        vote_counts.size() != votes_.size()) {
      throw std::invalid_argument(
          "BasicMvSketch::load_aux: span sizes do not match the table");
    }
    std::copy(cand.begin(), cand.end(), candidates_.begin());
    std::copy(vote_counts.begin(), vote_counts.end(), votes_.begin());
  }

  /// Raw state access for tests and serialization.
  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    return {&table_[i * k_], k_};
  }
  [[nodiscard]] std::span<const double> registers() const noexcept {
    return table_;
  }
  [[nodiscard]] std::span<const std::uint64_t> candidates() const noexcept {
    return candidates_;
  }
  [[nodiscard]] std::span<const double> votes() const noexcept {
    return votes_;
  }

  /// Memory footprint of counters + candidates + votes in bytes (excludes
  /// the shared hash family) — 3x the plain k-ary table, vs 33x for the
  /// group-testing sketch.
  [[nodiscard]] std::size_t table_bytes() const noexcept {
    return table_.size() * sizeof(double) +
           candidates_.size() * sizeof(std::uint64_t) +
           votes_.size() * sizeof(double);
  }

 private:
  /// Weighted Boyer-Moore step on one bucket: weight w of evidence for
  /// `key`. A zero vote count means "no candidate"; the stored candidate is
  /// then stale and must not be read (recover_heavy_keys skips it).
  void vote(std::size_t idx, std::uint64_t key, double w) noexcept {
    if (w == 0.0) return;
    if (votes_[idx] == 0.0) {
      candidates_[idx] = key;
      votes_[idx] = w;
    } else if (candidates_[idx] == key) {
      votes_[idx] += w;
    } else if (votes_[idx] >= w) {
      votes_[idx] -= w;
    } else {
      votes_[idx] = w - votes_[idx];
      candidates_[idx] = key;
    }
  }

  [[nodiscard]] double estimate_with(std::uint64_t key, double per_bucket,
                                     double denom) const noexcept {
    assert_key_in_domain(key);
    const std::size_t h = depth();
    const std::uint64_t mask = k_ - 1;
    std::array<double, kMaxRows> est;
    if constexpr (requires(const Family f, std::uint32_t k32, std::uint16_t* o) {
                    f.hash_all(k32, o);
                  }) {
      std::array<std::uint16_t, kMaxRows> hv;
      family_->hash_all(static_cast<std::uint32_t>(key), hv.data());
      for (std::size_t i = 0; i < h; ++i) {
        est[i] = (table_[i * k_ + (hv[i] & mask)] - per_bucket) / denom;
      }
    } else {
      for (std::size_t i = 0; i < h; ++i) {
        est[i] =
            (table_[i * k_ + (family_->hash16(i, key) & mask)] - per_bucket) /
            denom;
      }
    }
    return median_inplace(std::span<double>(est.data(), h));
  }

  /// Debug-mode guard for the key-domain constraint (see BasicKarySketch).
  static void assert_key_in_domain(
      [[maybe_unused]] std::uint64_t key) noexcept {
    if constexpr (kKeyBits < 64) {
      assert((key >> kKeyBits) == 0 &&
             "key exceeds the hash family's domain; use MvSketch64");
    }
  }

  FamilyPtr family_;
  std::size_t k_;
  std::vector<double> table_;                 // row-major H x K counters
  std::vector<std::uint64_t> candidates_;     // per-bucket majority candidate
  std::vector<double> votes_;                 // per-bucket vote count (>= 0)
};

/// Invertible sketch over 32-bit keys (tabulation hashing — the paper's
/// destination-IP configuration, now replay-free).
using MvSketch = BasicMvSketch<hash::TabulationHashFamily>;

/// Invertible sketch over arbitrary 64-bit keys (Carter-Wegman family).
using MvSketch64 = BasicMvSketch<hash::CwHashFamily>;

// The recovery sweep and the two family instantiations live in
// mv_sketch.cpp; every other member is defined inline above.
extern template class BasicMvSketch<hash::TabulationHashFamily>;
extern template class BasicMvSketch<hash::CwHashFamily>;

}  // namespace scd::sketch
