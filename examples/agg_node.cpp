// Node daemon: one vantage point of the aggregation tier
// (docs/DISTRIBUTED.md). Pairs with examples/aggregator.cpp — see the usage
// sketch there.
//
// Runs the sharded parallel front-end over a synthetic traffic stream and
// ships every interval's COMBINE-merged sketch to the aggregator before the
// serial stages consume it. All nodes anchor their interval grid at the
// same epoch (t = 0), which is what makes their sketches combinable: the
// aggregator refuses contributions framed on a different grid.
//
// Crash/rejoin demo: run with --checkpoint-dir and --crash-after N to make
// the node die hard (no flush, no goodbye) right after shipping interval N,
// then run again with --restore added. The restored node replays its input
// from the snapshot, learns from the HelloAck which intervals the
// aggregator already integrated, skips them, and the global view comes out
// identical to an uninterrupted run — no interval double-counted or lost.
//
// Each node's traffic: 2000 shared flows with per-node jitter, plus a
// minute-7 surge on flow 1337 that is deliberately small at every single
// node — only the aggregate crosses the detection threshold, the
// "distributed attack" the tier exists to catch.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>

#include "agg/shipper.h"
#include "checkpoint/checkpoint.h"
#include "common/flags.h"
#include "common/random.h"
#include "ingest/parallel_pipeline.h"

namespace {

/// Must match examples/aggregator.cpp exactly (fingerprint handshake).
scd::core::PipelineConfig demo_config(double interval_s) {
  scd::core::PipelineConfig config;
  config.interval_s = interval_s;
  config.h = 5;
  config.k = 32768;
  config.model.kind = scd::forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.1;
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scd;

  common::FlagParser flags;
  flags.add_flag("host", "aggregator address", "127.0.0.1");
  flags.add_flag("port", "aggregator port", "7337");
  flags.add_flag("node-id", "this node's id (must be in the aggregator's "
                 "expected set)", "1");
  flags.add_flag("interval", "interval length in seconds (must match the "
                 "aggregator)", "60");
  flags.add_flag("minutes", "minutes of synthetic traffic to stream", "12");
  flags.add_flag("checkpoint-dir",
                 "directory for atomic state snapshots (docs/CHECKPOINT.md)",
                 "");
  flags.add_flag("checkpoint-every", "snapshot every N interval barriers",
                 "1");
  flags.add_flag("restore",
                 "resume from the newest valid checkpoint in "
                 "--checkpoint-dir before streaming", "");
  flags.add_flag("crash-after",
                 "die hard (exit 3, no flush) right after the serial stages "
                 "consume interval N — crash/rejoin demos", "");
  const bool parsed = flags.parse(argc, argv);
  if (flags.help_requested()) {
    std::printf("%s", flags.help("agg_node [flags]").c_str());
    return 0;
  }
  if (!parsed || !flags.positional().empty()) {
    std::fprintf(stderr, "%s%s\n", flags.error().c_str(),
                 flags.help("agg_node [flags]").c_str());
    return 2;
  }
  const std::string checkpoint_dir = flags.get("checkpoint-dir");
  if (flags.get_bool("restore") && checkpoint_dir.empty()) {
    std::fprintf(stderr, "--restore requires --checkpoint-dir\n");
    return 2;
  }
  const auto node_id =
      static_cast<std::uint64_t>(flags.get_int("node-id").value_or(1));
  const double interval_s = flags.get_double("interval").value_or(60.0);
  const int minutes = static_cast<int>(flags.get_int("minutes").value_or(12));
  const std::optional<std::int64_t> crash_after = flags.get_int("crash-after");

  const core::PipelineConfig config = demo_config(interval_s);
  ingest::ParallelConfig parallel;
  parallel.workers = 2;
  ingest::ParallelPipeline pipeline(config, parallel);

  // Restore precedes everything: recover() replaces the pipeline state
  // wholesale, and start_at is only legal on a stream that has not started.
  double resume_before_s = 0.0;
  if (flags.get_bool("restore")) {
    const checkpoint::RecoverResult recovered =
        checkpoint::recover(checkpoint_dir, pipeline);
    if (recovered.restored) {
      resume_before_s = pipeline.position().next_interval_start_s;
      std::fprintf(stderr, "node %llu: restored %s; resuming at t >= %.0f s\n",
                   static_cast<unsigned long long>(node_id),
                   recovered.path.string().c_str(), resume_before_s);
    } else {
      std::fprintf(stderr, "node %llu: no valid checkpoint; starting fresh\n",
                   static_cast<unsigned long long>(node_id));
    }
  }
  if (!pipeline.position().started) {
    pipeline.start_at(0.0);  // the shared epoch — all nodes, same grid
  }

  // Handshake, then hook the shipper into the interval-close barrier. The
  // HelloAck tells a rejoining node where the aggregator's watermark is.
  agg::ShipperConfig ship_config;
  ship_config.host = flags.get("host");
  ship_config.port =
      static_cast<std::uint16_t>(flags.get_int("port").value_or(7337));
  ship_config.node_id = node_id;
  agg::Shipper shipper(ship_config);
  const std::uint64_t next_expected = shipper.connect(config);
  std::fprintf(stderr, "node %llu: connected; aggregator expects interval "
               "%llu next\n",
               static_cast<unsigned long long>(node_id),
               static_cast<unsigned long long>(next_expected));
  shipper.attach(pipeline);

  std::optional<checkpoint::CheckpointWriter> writer;
  if (!checkpoint_dir.empty()) {
    checkpoint::CheckpointWriterOptions options;
    options.directory = checkpoint_dir;
    options.every = static_cast<std::size_t>(
        flags.get_int("checkpoint-every").value_or(1));
    writer.emplace(options, config);
    writer->attach(pipeline);
  }

  // The report callback fires after the interval was shipped and acked but
  // BEFORE the checkpoint callback runs — crashing here is the widest
  // recovery window: the snapshot lags the ack, so the rejoin re-ships (or
  // skips) the tail and the aggregator's dedup keeps the sum exact.
  pipeline.set_report_callback(
      [&](const core::IntervalReport& report) {
        std::fprintf(stderr, "node %llu: interval %zu shipped (%llu records)\n",
                     static_cast<unsigned long long>(node_id), report.index,
                     static_cast<unsigned long long>(report.records));
        if (crash_after && report.index ==
                               static_cast<std::size_t>(*crash_after)) {
          std::fprintf(stderr, "node %llu: simulated crash after interval "
                       "%zu\n",
                       static_cast<unsigned long long>(node_id), report.index);
          std::_Exit(3);  // no flush, no bye, no destructors — a real crash
        }
      });

  // Deterministic replayable stream: the Rng restarts from the same seed on
  // every (re)run; records the snapshot already covers are skipped.
  common::Rng rng(1000 + node_id);
  for (int minute = 0; minute < minutes; ++minute) {
    for (std::uint64_t flow = 0; flow < 2000; ++flow) {
      const double t = minute * interval_s + 1.0;
      const double bytes = std::floor(900.0 + rng.uniform(-200.0, 200.0));
      if (t < resume_before_s) continue;
      pipeline.add(flow, bytes, t);
    }
    const double t_surge = minute * interval_s + 2.0;
    if (minute == 7 && t_surge >= resume_before_s) {
      // Small at this node, large in the aggregate.
      pipeline.add(1337, 3000.0, t_surge);
    }
  }
  pipeline.flush();
  shipper.bye();

  const auto stats = pipeline.parallel_stats();
  std::fprintf(stderr,
               "node %llu: done — %llu records, %zu intervals, %llu skipped "
               "re-ships\n",
               static_cast<unsigned long long>(node_id),
               static_cast<unsigned long long>(stats.records), stats.barriers,
               static_cast<unsigned long long>(shipper.skipped()));
  return 0;
}
