#!/usr/bin/env python3
"""Render a markdown delta table between two bench_kernel_throughput JSONs.

Usage:
    perf_delta.py [--no-gate] BASELINE.json CURRENT.json

Prints a GitHub-flavoured markdown table comparing the current run against
the committed baseline (BENCH_THROUGHPUT.json), then gates: the script
exits nonzero when a kernel's GB/s or the batched-UPDATE speedup ratio
(batched_mups / per_record_mups) regresses more than 25% below the
baseline. Those two are ratios of co-located measurements, so shared-runner
noise largely cancels — a 25% drop is a real codegen or kernel regression.
The absolute end-to-end and mmap rows stay informational only (they swing
with runner load); a >20% drop there gets a loud callout but never fails.

--no-gate restores the pure-summary behaviour (always exit 0) for the
$GITHUB_STEP_SUMMARY rendering step. Missing files or rows degrade to a
note instead of an error and never gate.
"""
from __future__ import annotations

import json
import sys

# Kernel GB/s or the batched-UPDATE ratio more than this fraction below the
# baseline fails the perf gate.
GATE_REGRESSION_FRACTION = 0.25


def load(path: str) -> dict | None:
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"> perf delta unavailable: cannot read `{path}`: {exc}")
        return None


def fmt_delta(base: float, cur: float) -> str:
    if base <= 0:
        return "n/a"
    pct = 100.0 * (cur - base) / base
    return f"{pct:+.1f}%"


def kernel_rows(base: dict, cur: dict) -> list[str]:
    baseline = {
        (r["kernel"], r["backend"], r["n"]): r["gb_per_s"]
        for r in base.get("kernels_gb_per_s", [])
    }
    rows = []
    for r in cur.get("kernels_gb_per_s", []):
        key = (r["kernel"], r["backend"], r["n"])
        b = baseline.get(key)
        if b is None:
            continue
        rows.append(
            f"| {r['kernel']} | {r['backend']} | {r['n']} "
            f"| {b:.2f} | {r['gb_per_s']:.2f} "
            f"| {fmt_delta(b, r['gb_per_s'])} |"
        )
    return rows


SCALAR_METRICS = [
    ("update", "per_record_mups", "UPDATE (Mupd/s)"),
    ("update", "batched_mups", "batched UPDATE (Mupd/s)"),
    ("end_to_end", "m_records_per_s", "end-to-end W=1 (Mrec/s)"),
    ("end_to_end_w4", "m_records_per_s", "end-to-end W=4 (Mrec/s)"),
    ("mmap_ingest", "mmap_m_records_per_s", "mmap feed (Mrec/s)"),
]

# End-to-end records/s is the headline number of docs/PERFORMANCE.md; a drop
# past this fraction gets a loud callout on the step summary (still never a
# build failure — shared-runner absolute numbers stay advisory).
E2E_REGRESSION_FRACTION = 0.20


def scalar_rows(base: dict, cur: dict) -> list[str]:
    rows = []
    for section, field, label in SCALAR_METRICS:
        b = base.get(section, {}).get(field)
        c = cur.get(section, {}).get(field)
        if b is None or c is None:
            continue
        rows.append(
            f"| {label} | — | — | {b:.3f} | {c:.3f} | {fmt_delta(b, c)} |"
        )
    return rows


def e2e_regressions(base: dict, cur: dict) -> list[str]:
    """Returns loud-warning lines for end-to-end throughput drops > 20%."""
    warnings = []
    for section, field, label in SCALAR_METRICS:
        if not section.startswith(("end_to_end", "mmap_ingest")):
            continue
        b = base.get(section, {}).get(field)
        c = cur.get(section, {}).get(field)
        if b is None or c is None or b <= 0:
            continue
        if (b - c) / b > E2E_REGRESSION_FRACTION:
            warnings.append(
                f"> ## :rotating_light: {label} regressed {fmt_delta(b, c)} "
                f"({b:.3f} -> {c:.3f})\n"
                "> More than 20% below the committed baseline. Shared-runner "
                "noise can do this, but so can a real ingest regression — "
                "re-run locally in full mode before merging. (Informational: "
                "this does not gate the build.)"
            )
    return warnings


def batched_ratio(run: dict) -> float | None:
    """batched_mups / per_record_mups — the batching speedup this host sees."""
    update = run.get("update", {})
    per_record = update.get("per_record_mups")
    batched = update.get("batched_mups")
    if per_record is None or batched is None or per_record <= 0:
        return None
    return batched / per_record


def gate_failures(base: dict, cur: dict) -> list[str]:
    """Gating regressions: kernel GB/s and the batched-UPDATE ratio."""
    failures = []
    baseline = {
        (r["kernel"], r["backend"], r["n"]): r["gb_per_s"]
        for r in base.get("kernels_gb_per_s", [])
    }
    for r in cur.get("kernels_gb_per_s", []):
        key = (r["kernel"], r["backend"], r["n"])
        b = baseline.get(key)
        c = r["gb_per_s"]
        if b is None or b <= 0:
            continue
        if (b - c) / b > GATE_REGRESSION_FRACTION:
            failures.append(
                f"kernel {r['kernel']}/{r['backend']} n={r['n']}: "
                f"{b:.2f} -> {c:.2f} GB/s ({fmt_delta(b, c)})"
            )
    b_ratio = batched_ratio(base)
    c_ratio = batched_ratio(cur)
    if b_ratio is not None and c_ratio is not None:
        if (b_ratio - c_ratio) / b_ratio > GATE_REGRESSION_FRACTION:
            failures.append(
                f"batched-UPDATE ratio: {b_ratio:.2f}x -> {c_ratio:.2f}x "
                f"({fmt_delta(b_ratio, c_ratio)})"
            )
    return failures


def main(argv: list[str]) -> int:
    args = [a for a in argv[1:] if a != "--no-gate"]
    gate = "--no-gate" not in argv[1:]
    if len(args) != 2:
        print("usage: perf_delta.py [--no-gate] BASELINE.json CURRENT.json")
        return 0
    base = load(args[0])
    cur = load(args[1])
    if base is None or cur is None:
        return 0

    print("### Throughput vs committed baseline")
    print()
    base_quick = base.get("host", {}).get("quick", False)
    cur_quick = cur.get("host", {}).get("quick", False)
    if cur_quick and not base_quick:
        print(
            "> Current run is quick mode on shared CI hardware; the "
            "baseline is a full run (docs/PERFORMANCE.md). Absolute deltas "
            "are informational; only kernel GB/s and the batched-UPDATE "
            "ratio gate."
        )
        print()
    print("| benchmark | backend | n | baseline | current | delta |")
    print("|---|---|---|---|---|---|")
    rows = kernel_rows(base, cur) + scalar_rows(base, cur)
    for row in rows:
        print(row)
    if not rows:
        print("| _no comparable rows_ | | | | | |")
    warnings = e2e_regressions(base, cur)
    if warnings:
        print()
        for warning in warnings:
            print(warning)
    if not gate:
        return 0
    failures = gate_failures(base, cur)
    if failures:
        print()
        print(
            f"PERF GATE: {len(failures)} regression(s) more than "
            f"{GATE_REGRESSION_FRACTION:.0%} below baseline:"
        )
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
