// Shard workers for parallel ingestion (docs/PARALLEL_INGEST.md).
//
// W workers each own a private k-ary sketch drawn from ONE shared hash
// family — the precondition for COMBINE (§3.1): linear combination is only
// meaningful between sketches with identical hash functions. Records are
// routed to a fixed shard by key, so
//   * each shard's registers accumulate a deterministic subsequence of the
//     stream (single producer per queue, FIFO), and
//   * the per-shard distinct-key buffers are disjoint — concatenating them
//     at the epoch boundary reproduces the serial pipeline's key set exactly.
//
// Interval close is epoch-based and asynchronous (docs/PERFORMANCE.md): the
// producer stamps one epoch-tagged token per queue after the interval's
// records and returns immediately; each worker, on seeing the token,
// publishes its finished sketch and key buffer for that epoch and starts
// the next epoch on a fresh sketch drawn from a shared pool (the merger
// recycles consumed sketches back, so steady state is double-buffered with
// no allocation). A dedicated merger thread waits until all W shards have
// published epoch e, COMBINE-merges the handoffs in shard order, and hands
// the merged IntervalBatch to the owner's callback — epochs are merged and
// delivered strictly in order, off the ingest hot path. Workers therefore
// never stall at an interval boundary; the only producer-side wait is the
// max_outstanding backpressure cap. Sketch linearity makes the merge exact
// — the merged table equals the serial pipeline's table up to
// floating-point addition order within each register, and the fixed shard
// order keeps it bit-identical run to run.
//
// The synchronous barrier_merge() remains for single-epoch callers (tests,
// tools): it closes one epoch and performs the merge inline on the calling
// thread. The two modes share the publish/collect protocol.
//
// Locking contract (docs/CONCURRENCY.md): epoch_mutex_ guards the per-shard
// publish deques and the epoch counters; publish/collect go through the
// SCD_REQUIRES(epoch_mutex_) helpers so a clang -Wthread-safety build
// rejects an unlocked handoff access. pool_mutex_ guards the recycled
// sketch pool and is ordered after epoch_mutex_ (never the reverse). The
// stats counters are relaxed atomics: written by the producer thread,
// readable from any thread.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/numa.h"
#include "common/thread_annotations.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "ingest/bounded_queue.h"
#include "ingest/ingest_metrics.h"
#include "obs/trace.h"
#include "sketch/kary_sketch.h"

namespace scd::ingest {

/// One (key, update) stream item. Alias of the sketch layer's batch-record
/// type so a dequeued chunk feeds BasicKarySketch::update_batch directly.
using Record = sketch::Record;

/// Producer-side batch: the queue is locked once per chunk, not per record.
using Chunk = std::vector<Record>;

struct ShardMessage {
  Chunk records;
  bool barrier = false;
  /// Epoch being closed; meaningful only on barrier tokens. The producer
  /// stamps tokens with consecutive epochs, so each worker's published
  /// handoffs are in epoch order by construction.
  std::uint64_t epoch = 0;
};

/// Type-erased interface so ParallelPipeline can hold either family's shard
/// set behind one pointer (mirroring the core pipeline's engine dispatch).
class ShardSetBase {
 public:
  /// Merged-epoch delivery: (epoch, batch), invoked on the merger thread in
  /// strict epoch order.
  using MergedBatchCallback =
      std::function<void(std::uint64_t, core::IntervalBatch&&)>;

  virtual ~ShardSetBase() = default;
  /// Enqueues a chunk for `shard` (blocking when the queue is full).
  virtual void submit(std::size_t shard, Chunk&& chunk) = 0;
  /// Closes the interval in progress synchronously: barrier, COMBINE-merge,
  /// key concat on the calling thread. All of the interval's chunks must
  /// have been submitted first. Mutually exclusive with the async epoch
  /// mode below.
  [[nodiscard]] virtual core::IntervalBatch barrier_merge() = 0;
  /// Arms asynchronous epoch merging: spawns the merger thread, which
  /// invokes `on_merged` once per closed epoch, in epoch order. At most
  /// `max_outstanding` epochs may be closed-but-unmerged before
  /// close_epoch() blocks (backpressure bound on pooled-sketch memory).
  /// Call once, before any record is submitted.
  virtual void begin_async(MergedBatchCallback on_merged,
                           std::size_t max_outstanding) = 0;
  /// Closes the current epoch without waiting for the merge: stamps one
  /// epoch-tagged token per shard queue and returns. Rethrows a pending
  /// merger failure (a callback throw) on the calling thread.
  virtual void close_epoch() = 0;
  /// Blocks until every closed epoch has been merged and delivered.
  /// Rethrows a pending merger failure.
  virtual void drain() = 0;
  /// Closes all queues and joins the workers (and merger). Idempotent.
  /// Closed-but-unmerged epochs are discarded, like in-flight records.
  virtual void stop() = 0;
  [[nodiscard]] virtual std::size_t workers() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t backpressure_waits() const noexcept = 0;
  /// Records lost because close() raced a blocked push during shutdown.
  /// Nonzero only when the pipeline is destroyed with records in flight.
  [[nodiscard]] virtual std::uint64_t dropped_records() const noexcept = 0;
};

/// Templated on the sketch type (not the hash family) so the parallel path
/// covers every engine the core pipeline can run: plain k-ary (either
/// family), the invertible majority-vote sketch, and group testing. Sketches
/// that recover keys from their own state (`recover_heavy_keys`) skip the
/// per-shard distinct-key buffers entirely — that is the single-pass win —
/// and vote-carrying sketches publish their merged candidate/vote arrays
/// through IntervalBatch::mv_candidates / mv_votes.
template <typename SketchT>
class ShardSet final : public ShardSetBase {
 public:
  using Sketch = SketchT;
  using Family = typename SketchT::FamilyType;

  /// The sketch can enumerate heavy keys from its own state, so workers do
  /// not need to collect the interval's distinct keys for replay.
  static constexpr bool kRecovers =
      requires(const SketchT& s) { s.recover_heavy_keys(0.0); };
  /// The sketch carries majority-vote candidate/vote arrays that must ride
  /// along with the merged registers.
  static constexpr bool kHasVoteState =
      requires(const SketchT& s) { s.candidates(); };

  /// `queue_chunks` is the per-shard queue capacity in chunks; `instruments`
  /// may be null (metrics disabled).
  ShardSet(std::uint64_t seed, std::size_t h, std::size_t k,
           std::size_t worker_count, std::size_t queue_chunks,
           IngestInstruments* instruments)
      : family_(std::make_shared<const Family>(seed, h)),
        k_(k),
        instruments_(instruments) {
    shards_.reserve(worker_count);
    for (std::size_t i = 0; i < worker_count; ++i) {
      shards_.push_back(std::make_unique<Shard>(queue_chunks));
    }
    for (std::size_t i = 0; i < worker_count; ++i) {
      shards_[i]->thread = std::thread([this, i] { run_worker(i); });
    }
  }

  ~ShardSet() override { stop(); }

  void submit(std::size_t shard, Chunk&& chunk) override {
    BoundedQueue<ShardMessage>& queue = shards_[shard]->queue;
    const auto n = static_cast<double>(chunk.size());
    ShardMessage msg{std::move(chunk), false, 0};
    if (instruments_ != nullptr) instruments_->queue_records.add(n);
    if (!queue.try_push(msg)) {
      // mo: stats counter — single producer writes, any thread may read
      // via backpressure_waits(); no ordering ties it to other state.
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      if (instruments_ != nullptr) instruments_->backpressure_waits.inc();
      if (!queue.push(msg)) {
        // Closed mid-shutdown. The chunk is still intact (push leaves its
        // argument alone on failure), so the loss is counted instead of
        // vanishing: every dropped record biases the interval's sketch, and
        // an operator must be able to see that the stream was cut short.
        // mo: stats counter — same single-writer/any-reader contract.
        dropped_records_.fetch_add(msg.records.size(),
                                   std::memory_order_relaxed);
        if (instruments_ != nullptr) {
          instruments_->queue_records.add(-n);
          instruments_->shutdown_dropped_records.inc(msg.records.size());
        }
      }
    }
  }

  core::IntervalBatch barrier_merge() SCD_EXCLUDES(epoch_mutex_) override {
    const std::uint64_t epoch = stamp_epoch_tokens();
    std::vector<EpochHandoff> handoffs;
    {
      common::MutexLock lock(epoch_mutex_);
      while (!epoch_ready_locked()) epoch_cv_.wait(epoch_mutex_);
      handoffs = take_epoch_locked();
      ++epochs_merged_;
    }
    (void)epoch;
    return merge_epoch(std::move(handoffs));
  }

  void begin_async(MergedBatchCallback on_merged,
                   std::size_t max_outstanding) override {
    on_merged_ = std::move(on_merged);
    max_outstanding_ = max_outstanding;
    merger_ = std::thread([this] { run_merger(); });
  }

  void close_epoch() SCD_EXCLUDES(epoch_mutex_) override {
    {
      common::MutexLock lock(epoch_mutex_);
      rethrow_merge_error_locked();
      // Backpressure: bound the closed-but-unmerged window so pooled-sketch
      // memory stays at max_outstanding_ + 1 sketch sets per shard.
      while (epochs_closed_ - epochs_merged_ >= max_outstanding_ &&
             merge_error_ == nullptr) {
        epoch_cv_.wait(epoch_mutex_);
      }
      rethrow_merge_error_locked();
    }
    (void)stamp_epoch_tokens();
  }

  void drain() SCD_EXCLUDES(epoch_mutex_) override {
    common::MutexLock lock(epoch_mutex_);
    while (epochs_merged_ < epochs_closed_ && merge_error_ == nullptr) {
      epoch_cv_.wait(epoch_mutex_);
    }
    rethrow_merge_error_locked();
  }

  void stop() SCD_EXCLUDES(epoch_mutex_) override {
    // Order matters: close the queues and join the workers FIRST, so every
    // epoch token already in flight is consumed and its handoff published
    // (close() lets consumers drain remaining items). Only then tell the
    // merger to finish — it merges and delivers every fully-published
    // epoch before exiting, preserving the synchronous-close guarantee
    // that a closed interval is never silently lost: an unflushed
    // destructor drops only records of the still-open interval.
    for (auto& shard : shards_) shard->queue.close();
    for (auto& shard : shards_) {
      if (shard->thread.joinable()) shard->thread.join();
    }
    {
      common::MutexLock lock(epoch_mutex_);
      stopping_ = true;
    }
    epoch_cv_.notify_all();
    if (merger_.joinable()) merger_.join();
  }

  [[nodiscard]] std::size_t workers() const noexcept override {
    return shards_.size();
  }
  [[nodiscard]] std::uint64_t backpressure_waits() const noexcept override {
    // mo: stats read — a point-in-time sample, no ordering required.
    return backpressure_waits_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t dropped_records() const noexcept override {
    // mo: stats read — a point-in-time sample, no ordering required.
    return dropped_records_.load(std::memory_order_relaxed);
  }

 private:
  /// One finished epoch from one shard: the worker's parked sketch, the
  /// interval's distinct keys, and the record count.
  struct EpochHandoff {
    std::uint64_t epoch = 0;
    std::optional<Sketch> sketch;
    std::vector<std::uint64_t> keys;
    std::uint64_t records = 0;
  };

  struct Shard {
    explicit Shard(std::size_t queue_chunks) : queue(queue_chunks) {}
    BoundedQueue<ShardMessage> queue;
    // Published epochs, oldest first: appended by the worker, drained in
    // epoch order by the merger (or a barrier_merge caller), both under
    // the owning ShardSet's epoch_mutex_ (a nested struct cannot name the
    // outer instance's mutex in an attribute, so the SCD_REQUIRES helpers
    // below carry the contract).
    std::deque<EpochHandoff> published;
    std::thread thread;
  };

  /// Stamps one epoch-tagged barrier token per shard queue and advances the
  /// closed-epoch counter. Producer thread only.
  std::uint64_t stamp_epoch_tokens() SCD_EXCLUDES(epoch_mutex_) {
    std::uint64_t epoch = 0;
    {
      common::MutexLock lock(epoch_mutex_);
      epoch = epochs_closed_++;
    }
    for (auto& shard : shards_) {
      ShardMessage token{{}, true, epoch};
      shard->queue.push(token);
    }
    return epoch;
  }

  /// Worker side of the epoch close: parks the finished interval's sketch
  /// and key set at the back of the shard's publish deque.
  void publish_handoff_locked(Shard& shard, EpochHandoff&& handoff)
      SCD_REQUIRES(epoch_mutex_) {
    shard.published.push_back(std::move(handoff));
  }

  /// True when every shard has published its oldest outstanding epoch.
  [[nodiscard]] bool epoch_ready_locked() const SCD_REQUIRES(epoch_mutex_) {
    for (const auto& shard : shards_) {
      if (shard->published.empty()) return false;
    }
    return true;
  }

  /// Pops the oldest published epoch from every shard, in shard order.
  /// Caller holds epoch_mutex_ and has seen epoch_ready_locked().
  [[nodiscard]] std::vector<EpochHandoff> take_epoch_locked()
      SCD_REQUIRES(epoch_mutex_) {
    std::vector<EpochHandoff> handoffs;
    handoffs.reserve(shards_.size());
    for (auto& shard : shards_) {
      handoffs.push_back(std::move(shard->published.front()));
      shard->published.pop_front();
    }
    return handoffs;
  }

  void rethrow_merge_error_locked() SCD_REQUIRES(epoch_mutex_) {
    if (merge_error_ != nullptr) std::rethrow_exception(merge_error_);
  }

  /// COMBINE-merges one epoch's W handoffs in shard order and concatenates
  /// the key buffers; recycles the consumed sketches into the pool. Runs
  /// with no lock held — the handoffs were moved out under epoch_mutex_.
  [[nodiscard]] core::IntervalBatch merge_epoch(
      std::vector<EpochHandoff> handoffs) SCD_EXCLUDES(epoch_mutex_) {
    SCD_TRACE_SPAN("barrier_combine", "ingest");
    const common::Stopwatch merge_watch;
    // COMBINE(1, S_0, ..., 1, S_{W-1}) in shard order — fixed order keeps
    // the merged registers bit-identical run to run.
    std::vector<const Sketch*> parts;
    parts.reserve(handoffs.size());
    for (auto& handoff : handoffs) parts.push_back(&*handoff.sketch);
    const std::vector<double> coeffs(handoffs.size(), 1.0);
    const Sketch merged = Sketch::combine(coeffs, parts);

    core::IntervalBatch batch;
    batch.registers.assign(merged.registers().begin(),
                           merged.registers().end());
    if constexpr (kHasVoteState) {
      batch.mv_candidates.assign(merged.candidates().begin(),
                                 merged.candidates().end());
      batch.mv_votes.assign(merged.votes().begin(), merged.votes().end());
    }
    for (auto& handoff : handoffs) {
      batch.records += handoff.records;
      batch.keys.insert(batch.keys.end(), handoff.keys.begin(),
                        handoff.keys.end());
    }
    recycle_sketches(std::move(handoffs));
    if (instruments_ != nullptr) {
      instruments_->merge_seconds.observe(merge_watch.seconds());
    }
    return batch;
  }

  /// Returns consumed handoff sketches to the pool, zeroed, so workers
  /// start their next epoch without allocating a fresh table.
  void recycle_sketches(std::vector<EpochHandoff> handoffs)
      SCD_EXCLUDES(pool_mutex_) {
    common::MutexLock lock(pool_mutex_);
    for (auto& handoff : handoffs) {
      handoff.sketch->set_zero();
      pool_.push_back(std::move(*handoff.sketch));
    }
  }

  /// A zeroed sketch for the worker's next epoch: pooled when available
  /// (steady state — the merger recycles one per shard per epoch),
  /// freshly allocated otherwise (first epochs only).
  [[nodiscard]] Sketch pooled_sketch() SCD_EXCLUDES(pool_mutex_) {
    {
      common::MutexLock lock(pool_mutex_);
      if (!pool_.empty()) {
        Sketch sketch = std::move(pool_.back());
        pool_.pop_back();
        return sketch;
      }
    }
    return Sketch(family_, k_);
  }

  /// Merger thread: merges published epochs strictly in order and delivers
  /// each batch to on_merged_. A callback throw is parked in merge_error_
  /// and rethrown on the producer thread (close_epoch/drain); the merger
  /// stops — the stream is failed, exactly like a synchronous close throw.
  void run_merger() {
    for (;;) {
      std::vector<EpochHandoff> handoffs;
      {
        common::MutexLock lock(epoch_mutex_);
        while (!epoch_ready_locked() && !stopping_) {
          epoch_cv_.wait(epoch_mutex_);
        }
        // Drain-on-stop: ready epochs are still merged and delivered after
        // stopping_ is set (the workers were joined first, so every closed
        // epoch is fully published by now); exit only when none remain.
        if (!epoch_ready_locked()) return;
        handoffs = take_epoch_locked();
      }
      const std::uint64_t epoch = handoffs.front().epoch;
      try {
        core::IntervalBatch batch = merge_epoch(std::move(handoffs));
        on_merged_(epoch, std::move(batch));
      } catch (...) {
        common::MutexLock lock(epoch_mutex_);
        merge_error_ = std::current_exception();
        epoch_cv_.notify_all();
        return;
      }
      {
        common::MutexLock lock(epoch_mutex_);
        ++epochs_merged_;
      }
      epoch_cv_.notify_all();
    }
  }

  void run_worker(std::size_t index) {
    // Best-effort NUMA placement (common/numa.h): pin this worker to a node
    // round-robin BEFORE allocating its sketch, so the table and every
    // pooled sketch it later first-touches land on local memory. A no-op
    // without libnuma or on single-node hosts.
    common::numa_bind_index(index);
    Shard& shard = *shards_[index];
    // Worker-local interval state; only the epoch handoff is shared.
    Sketch sketch(family_, k_);
    std::unordered_set<std::uint64_t> keys;
    std::uint64_t records = 0;
    obs::Histogram* apply_hist =
        instruments_ != nullptr ? instruments_->shard_apply_seconds[index]
                                : nullptr;
    for (;;) {
      std::optional<ShardMessage> msg;
      {
        // The dequeue span covers queue wait: a long "ingest_dequeue" next
        // to short "shard_update_batch" spans reads as a starved worker.
        SCD_TRACE_SPAN("ingest_dequeue", "ingest");
        msg = shard.queue.pop();
      }
      if (!msg.has_value()) break;
      if (msg->barrier) {
        EpochHandoff handoff;
        handoff.epoch = msg->epoch;
        handoff.sketch.emplace(std::move(sketch));
        if constexpr (!kRecovers) {
          handoff.keys.assign(keys.begin(), keys.end());
        }
        handoff.records = records;
        {
          common::MutexLock lock(epoch_mutex_);
          publish_handoff_locked(shard, std::move(handoff));
        }
        epoch_cv_.notify_all();
        // The worker starts the next epoch immediately — no wait for the
        // merge. The pooled sketch is the async scheme's double buffer.
        sketch = pooled_sketch();
        keys.clear();
        records = 0;
        continue;
      }
      const common::Stopwatch apply_watch;
      SCD_TRACE_SPAN_ARG("shard_update_batch", "ingest", msg->records.size());
      // Batched UPDATE (docs/PERFORMANCE.md): hash-batch + per-row sweep,
      // bit-identical to per-record update() on this shard's subsequence.
      sketch.update_batch(msg->records);
      if constexpr (!kRecovers) {
        for (const Record& r : msg->records) keys.insert(r.key);
      }
      records += msg->records.size();
      if (apply_hist != nullptr) {
        apply_hist->observe(apply_watch.seconds());
        instruments_->batch_size.observe(
            static_cast<double>(msg->records.size()));
        instruments_->batch_records.inc(msg->records.size());
        instruments_->queue_records.add(
            -static_cast<double>(msg->records.size()));
      }
    }
  }

  std::shared_ptr<const Family> family_;
  std::size_t k_;
  IngestInstruments* instruments_;
  std::vector<std::unique_ptr<Shard>> shards_;
  // Epoch protocol state. epoch_mutex_ is ordered before pool_mutex_
  // (docs/CONCURRENCY.md lock-order table); in practice neither path nests
  // them today, but the declared order is the one any future nesting must
  // follow.
  common::Mutex epoch_mutex_ SCD_ACQUIRED_BEFORE(pool_mutex_);
  common::CondVar epoch_cv_;
  std::uint64_t epochs_closed_ SCD_GUARDED_BY(epoch_mutex_) = 0;
  std::uint64_t epochs_merged_ SCD_GUARDED_BY(epoch_mutex_) = 0;
  bool stopping_ SCD_GUARDED_BY(epoch_mutex_) = false;
  std::exception_ptr merge_error_ SCD_GUARDED_BY(epoch_mutex_);
  // Recycled zeroed sketches (double buffering): merger refills, workers
  // draw at each epoch boundary.
  common::Mutex pool_mutex_;
  std::vector<Sketch> pool_ SCD_GUARDED_BY(pool_mutex_);
  // Async-mode configuration: written once by begin_async before any epoch
  // closes, read by the producer and merger afterwards.
  MergedBatchCallback on_merged_;
  std::size_t max_outstanding_ = 1;
  std::thread merger_;
  // Stats counters: producer thread writes, stats() may be called from any
  // thread (monitoring), so plain integers here were a data race.
  std::atomic<std::uint64_t> backpressure_waits_{0};
  std::atomic<std::uint64_t> dropped_records_{0};
};

}  // namespace scd::ingest
