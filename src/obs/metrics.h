// Process-wide metrics substrate for the change-detection pipeline.
//
// Three primitives, modeled on the Prometheus data model:
//   Counter   — monotonically increasing u64 (records fed, alarms raised)
//   Gauge     — instantaneous double (replay-buffer occupancy, sketch bytes)
//   Histogram — fixed-bucket latency distribution with cumulative bucket
//               counts, sum, and count (per-stage timings)
//
// Design constraints (the pipeline's hot path calls these per record):
//   * All mutation is lock-free: relaxed atomic fetch_add for counters and
//     histogram buckets, a CAS loop for double accumulation. Reads taken
//     for exposition are racy-but-coherent per field, which is the standard
//     contract for monitoring data.
//   * Metrics are pre-registered: registration (the only locking, allocating
//     path) happens once at startup / pipeline construction; afterwards the
//     caller holds a stable reference and add_record never allocates.
//   * Instances are identified by (name, labels). Registering the same
//     identity twice returns the same instance; the same name with different
//     labels joins the same family (one HELP/TYPE block, many samples).
//
// Compile-time kill switch: building with -DSCD_OBS_ENABLED=0 turns the
// SCD_OBS_* convenience macros into no-ops so instrumented code compiles
// away entirely (see bench_obs_overhead for the measured difference).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#ifndef SCD_OBS_ENABLED
#define SCD_OBS_ENABLED 1
#endif

#if SCD_OBS_ENABLED
#define SCD_OBS_ONLY(...) __VA_ARGS__
#else
#define SCD_OBS_ONLY(...)
#endif

namespace scd::obs {

enum class MetricType { kCounter, kGauge, kHistogram };

/// Sorted (key, value) pairs identifying one instance within a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    // mo: independent monotone counter — no other state is published with
    // it, so relaxed increments are exact and exposition reads coherent.
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    // mo: monitoring read — a point-in-time sample, no ordering required.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  // mo: last-writer-wins sample of an independent scalar; nothing is
  // ordered against it.
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept {
    // mo: CAS loop only needs atomicity of the read-modify-write itself;
    // the gauge value carries no happens-before obligations.
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    // mo: monitoring read — a point-in-time sample, no ordering required.
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> value_{0.0};
};

class Histogram {
 public:
  /// Default buckets for stage latencies: 100 ns .. 10 s, roughly 1-2.5-5
  /// per decade. Covers a sampled 30 ns sketch UPDATE through a multi-second
  /// grid-search re-fit.
  [[nodiscard]] static std::vector<double> default_latency_buckets();

  void observe(double v) noexcept {
    // Upper bounds are sorted; linear scan beats binary search for the
    // small fixed bucket counts used here and is branch-predictor friendly
    // (stage latencies cluster in one or two buckets).
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    // mo: bucket/count/sum are each exact under relaxed increments; a
    // scrape may see them mid-update (count ahead of sum), which is the
    // accepted monitoring contract — no cross-field ordering is promised.
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    double cur = sum_.load(std::memory_order_relaxed);
    while (!sum_.compare_exchange_weak(cur, cur + v,
                                       std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] std::uint64_t count() const noexcept {
    // mo: monitoring read — a point-in-time sample, no ordering required.
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    // mo: monitoring read — a point-in-time sample, no ordering required.
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Upper bucket bounds (exclusive of the implicit +Inf bucket).
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Non-cumulative count of observations in bucket i; index bounds().size()
  /// is the +Inf overflow bucket.
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    // mo: monitoring read — a point-in-time sample, no ordering required.
    return buckets_[i].load(std::memory_order_relaxed);
  }

  /// Estimates the q-quantile (q in [0, 1]) by linear interpolation inside
  /// the bucket containing the target rank — the same estimate
  /// histogram_quantile() computes server-side in Prometheus. Observations
  /// in the +Inf bucket clamp to the largest finite bound. Returns 0 when
  /// empty.
  [[nodiscard]] double quantile(double q) const noexcept;

 private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;  // strictly increasing upper bounds
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds+1 (+Inf)
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One registered instance: its identifying labels plus exactly one of the
/// three metric pointers (matching the family's type).
struct MetricInstance {
  Labels labels;
  const Counter* counter = nullptr;
  const Gauge* gauge = nullptr;
  const Histogram* histogram = nullptr;
};

/// One metric family: every instance sharing a name, help text, and type.
struct FamilyView {
  std::string name;
  std::string help;
  MetricType type;
  std::vector<MetricInstance> instances;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the pipeline instruments register against.
  [[nodiscard]] static MetricsRegistry& global();

  /// Registration: finds or creates the (name, labels) instance. Throws
  /// std::invalid_argument on an invalid metric name ([a-zA-Z_:][a-zA-Z0-9_:]*)
  /// or when `name` is already registered with a different type. Returned
  /// references stay valid for the registry's lifetime.
  Counter& counter(const std::string& name, const std::string& help,
                   Labels labels = {}) SCD_EXCLUDES(mutex_);
  Gauge& gauge(const std::string& name, const std::string& help,
               Labels labels = {}) SCD_EXCLUDES(mutex_);
  /// `bounds` must be strictly increasing; pass
  /// Histogram::default_latency_buckets() for stage timings. Bounds must
  /// match any prior registration of the same family.
  Histogram& histogram(const std::string& name, const std::string& help,
                       std::vector<double> bounds, Labels labels = {})
      SCD_EXCLUDES(mutex_);

  /// Stable snapshot of the family structure, sorted by name (instances in
  /// registration order). Values are read live through the pointers.
  [[nodiscard]] std::vector<FamilyView> families() const
      SCD_EXCLUDES(mutex_);

  [[nodiscard]] std::size_t family_count() const SCD_EXCLUDES(mutex_);

 private:
  struct Family;
  Family& find_or_create_locked(const std::string& name,
                                const std::string& help, MetricType type)
      SCD_REQUIRES(mutex_);

  // Guards the family/instance structure, not the metric values (those are
  // lock-free atomics mutated through stable references).
  mutable common::Mutex mutex_;
  std::vector<std::unique_ptr<Family>> families_ SCD_GUARDED_BY(mutex_);
};

}  // namespace scd::obs
