#include "eval/tsv_export.h"

#include <cassert>
#include <cstdlib>
#include <stdexcept>

#include "common/strutil.h"

namespace scd::eval {

TsvWriter::TsvWriter(const std::string& path,
                     const std::vector<std::string>& columns)
    : out_(path, std::ios::trunc), columns_(columns.size()) {
  if (!out_) throw std::runtime_error("TsvWriter: cannot open " + path);
  out_ << "#";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    out_ << (i == 0 ? "" : "\t") << columns[i];
  }
  out_ << "\n";
}

void TsvWriter::row(const std::vector<double>& values) {
  assert(values.size() == columns_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << (i == 0 ? "" : "\t") << scd::common::str_format("%g", values[i]);
  }
  out_ << "\n";
  ++rows_;
}

void TsvWriter::row(const std::vector<std::string>& values) {
  assert(values.size() == columns_);
  for (std::size_t i = 0; i < values.size(); ++i) {
    out_ << (i == 0 ? "" : "\t") << values[i];
  }
  out_ << "\n";
  ++rows_;
}

const std::string& tsv_export_dir() {
  static const std::string dir = [] {
    // Once-init read; nothing in the process calls setenv.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    const char* env = std::getenv("SCD_OUT_DIR");
    return env != nullptr ? std::string(env) : std::string();
  }();
  return dir;
}

}  // namespace scd::eval
