// Clang thread-safety annotation macros (docs/CONCURRENCY.md).
//
// These wrap Clang's capability-analysis attributes so that every locking
// invariant in the tree is written down where the compiler can check it:
// which mutex guards which field, which private helper requires which lock,
// and which locks may nest inside which. Under clang with -Wthread-safety
// (the `thread-safety` preset / check.sh stage) a missing or violated
// annotation is a hard error; under gcc and other compilers every macro
// expands to nothing, so the annotated code stays portable.
//
// Naming follows the upstream attribute names with an SCD_ prefix — the
// same convention abseil and the Clang documentation use — so the mapping
// from macro to attribute is one-to-one and greppable.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define SCD_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SCD_THREAD_ANNOTATION(x)  // no-op off clang
#endif

/// Declares a type to be a capability ("mutex", "role", ...). Holding an
/// instance is what SCD_REQUIRES / SCD_GUARDED_BY talk about.
#define SCD_CAPABILITY(x) SCD_THREAD_ANNOTATION(capability(x))

/// Declares an RAII type whose lifetime equals a capability hold
/// (MutexLock). The analysis treats construction as acquire and
/// destruction as release.
#define SCD_SCOPED_CAPABILITY SCD_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be read or written while holding `x`.
#define SCD_GUARDED_BY(x) SCD_THREAD_ANNOTATION(guarded_by(x))

/// Pointer field whose *pointee* may only be touched while holding `x`.
#define SCD_PT_GUARDED_BY(x) SCD_THREAD_ANNOTATION(pt_guarded_by(x))

/// Caller must hold the capability on entry and still holds it on exit —
/// the contract of every private `*_locked()` helper.
#define SCD_REQUIRES(...) \
  SCD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Function acquires the capability and does not release it before return.
#define SCD_ACQUIRE(...) SCD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases a capability the caller held on entry.
#define SCD_RELEASE(...) SCD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns `b`.
#define SCD_TRY_ACQUIRE(b, ...) \
  SCD_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Caller must NOT hold the capability: the function takes it itself.
/// Stamped on public entry points of lock-owning types so self-deadlock
/// through re-entry is a compile error instead of a hang.
#define SCD_EXCLUDES(...) SCD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Lock-order edges: this capability is always taken before / after the
/// listed ones. The lint rule `lock-order-doc` cross-checks every
/// SCD_ACQUIRED_BEFORE edge against the table in docs/CONCURRENCY.md.
#define SCD_ACQUIRED_BEFORE(...) \
  SCD_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define SCD_ACQUIRED_AFTER(...) \
  SCD_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Function returns a reference to the given capability (used by
/// accessor methods that expose an owned Mutex).
#define SCD_RETURN_CAPABILITY(x) SCD_THREAD_ANNOTATION(lock_returned(x))

/// Runtime assertion that the capability is held (no acquire emitted).
#define SCD_ASSERT_CAPABILITY(x) SCD_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch for code the analysis cannot model (the CondVar wait
/// adapter, seqlock readers). Every use needs a rationale comment and an
/// entry in the docs/CONCURRENCY.md waiver registry.
#define SCD_NO_THREAD_SAFETY_ANALYSIS \
  SCD_THREAD_ANNOTATION(no_thread_safety_analysis)
