// Fuzz target: the sketch export-packet parsers (sketch/serialize.h).
//
// sketch_from_bytes runs on every interval contribution the aggregator
// accepts from the network, so it must reject arbitrary bytes with a typed
// SerializeError and nothing else. The invertible-family parser
// (mv_sketch_from_bytes) shares the header and register layout but carries
// the per-bucket vote state, so the same input is fed to both readers —
// each must either accept its own family kind or reject with a typed error
// (a cross-family packet is kFamilyMismatch, never a mis-parse). Accepted
// inputs are round-tripped: re-encoding a parsed sketch must succeed and
// re-parse cleanly.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sketch/serialize.h"

#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  // Fresh registry per input: the registry caches hash families keyed by
  // attacker-chosen (seed, rows), so a shared one would grow without bound
  // across runs and turn into a leak report.
  scd::sketch::FamilyRegistry registry;
  try {
    const scd::sketch::KarySketch parsed =
        scd::sketch::sketch_from_bytes(bytes, registry);
    const std::vector<std::uint8_t> reencoded =
        scd::sketch::sketch_to_bytes(parsed);
    (void)scd::sketch::sketch_from_bytes(reencoded, registry);
  } catch (const scd::sketch::SerializeError&) {
    // Typed rejection: the contract.
  }
  try {
    const scd::sketch::MvSketch parsed =
        scd::sketch::mv_sketch_from_bytes(bytes, registry);
    const std::vector<std::uint8_t> reencoded =
        scd::sketch::mv_sketch_to_bytes(parsed);
    (void)scd::sketch::mv_sketch_from_bytes(reencoded, registry);
  } catch (const scd::sketch::SerializeError&) {
    // Typed rejection: the contract.
  }
  return 0;
}
