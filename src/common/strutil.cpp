#include "common/strutil.h"

#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace scd::common {

std::string str_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string human_count(double value) {
  const char* suffix = "";
  double scaled = value;
  if (value >= 1e9) {
    scaled = value / 1e9;
    suffix = "G";
  } else if (value >= 1e6) {
    scaled = value / 1e6;
    suffix = "M";
  } else if (value >= 1e3) {
    scaled = value / 1e3;
    suffix = "K";
  }
  return str_format("%.2f%s", scaled, suffix);
}

std::string ipv4_to_string(std::uint32_t addr) {
  return str_format("%u.%u.%u.%u", (addr >> 24) & 0xff, (addr >> 16) & 0xff,
                    (addr >> 8) & 0xff, addr & 0xff);
}

bool parse_ipv4(const std::string& text, std::uint32_t& out) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  char trailing = '\0';
  const int matched =
      std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &trailing);
  if (matched != 4 || a > 255 || b > 255 || c > 255 || d > 255) return false;
  out = (a << 24) | (b << 16) | (c << 8) | d;
  return true;
}

std::vector<std::string> split(const std::string& text, char delim) {
  std::vector<std::string> parts;
  std::string item;
  std::istringstream stream(text);
  while (std::getline(stream, item, delim)) parts.push_back(item);
  if (!text.empty() && text.back() == delim) parts.emplace_back();
  if (text.empty()) parts.emplace_back();
  return parts;
}

}  // namespace scd::common
