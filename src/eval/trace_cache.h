// On-disk + in-process cache of synthetic router traces, so the fifteen-odd
// bench binaries don't each regenerate the same multi-million-record files.
// Traces are stored under $SCD_TRACE_DIR (default "./traces") in the binary
// trace format, keyed by profile name, and validated by record count.
#pragma once

#include <string>
#include <vector>

#include "traffic/flow_record.h"
#include "traffic/router_profiles.h"

namespace scd::eval {

/// Returns the trace for a router profile, generating and persisting it on
/// first use. The reference stays valid for the process lifetime.
[[nodiscard]] const std::vector<traffic::FlowRecord>& cached_trace(
    const traffic::RouterProfile& profile);

/// Directory used for persisted traces.
[[nodiscard]] std::string trace_cache_dir();

}  // namespace scd::eval
