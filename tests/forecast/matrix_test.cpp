// Compatibility matrix: every forecast model must behave identically across
// every LinearSignal instantiation the library ships — scalar, dense vector,
// 32-bit k-ary sketch, 64-bit k-ary sketch, and the group-testing sketch.
// The invariants checked per (model, space):
//   * ready() flips at the same observation count as on scalars,
//   * an all-zero series forecasts (near) zero,
//   * a constant series is eventually forecast (near) exactly,
//   * forecasts are reproducible for identical inputs.
#include <gtest/gtest.h>

#include <cmath>

#include "forecast/model_factory.h"
#include "perflow/dense_vector.h"
#include "sketch/group_testing.h"
#include "sketch/kary_sketch.h"

namespace scd::forecast {
namespace {

struct MatrixCase {
  ModelConfig config;
  /// Steady-state forecast for a constant-100 series. 100 for every model
  /// that can represent a level; the zero-mean ARMA(1,1) without constant
  /// settles at (0.5*100 + 0.3*100) / (1 + 0.3) = 80/1.3.
  double const_forecast = 100.0;
};

std::vector<MatrixCase> all_cases() {
  std::vector<MatrixCase> cases;
  MatrixCase m;
  m.config.kind = ModelKind::kMovingAverage;
  m.config.window = 3;
  cases.push_back(m);
  m.config.kind = ModelKind::kSShapedMA;
  m.config.window = 4;
  cases.push_back(m);
  m.config.kind = ModelKind::kEwma;
  m.config.alpha = 0.5;
  cases.push_back(m);
  m.config.kind = ModelKind::kHoltWinters;
  m.config.alpha = 0.5;
  m.config.beta = 0.3;
  cases.push_back(m);
  m.config.kind = ModelKind::kArima0;
  m.config.arima = {.p = 1, .d = 0, .q = 1, .ar = {0.5, 0.0}, .ma = {0.3, 0.0}};
  m.const_forecast = 80.0 / 1.3;
  cases.push_back(m);
  m = MatrixCase{};
  m.config.kind = ModelKind::kArima1;
  m.config.arima = {.p = 1, .d = 1, .q = 0, .ar = {0.5, 0.0}, .ma = {0.0, 0.0}};
  cases.push_back(m);
  m = MatrixCase{};
  m.config.kind = ModelKind::kSeasonalHoltWinters;
  m.config.alpha = 0.4;
  m.config.beta = 0.2;
  m.config.gamma = 0.3;
  m.config.period = 4;
  cases.push_back(m);
  return cases;
}

/// Drives `model` with `count` observations of `signal`, returning the
/// estimate of key 7 in the final forecast (via the space's probe).
template <typename V, typename Probe, typename MakeObs>
void run_matrix_case(const MatrixCase& mcase, const V& prototype,
                     const MakeObs& make_obs, const Probe& probe) {
  const ModelConfig& config = mcase.config;
  SCOPED_TRACE(config.to_string());
  // (1) ready() count matches the scalar reference.
  const auto scalar = make_model<ScalarSignal>(config, ScalarSignal{});
  const auto model = make_model<V>(config, prototype);
  for (int t = 0; t < 12; ++t) {
    ASSERT_EQ(model->ready(), scalar->ready()) << "t=" << t;
    model->observe(make_obs(100.0));
    scalar->observe(ScalarSignal(100.0));
  }
  ASSERT_TRUE(model->ready());

  // (2) constant series: forecast ~ the constant.
  V forecast = prototype;
  model->forecast_into(forecast);
  EXPECT_NEAR(probe(forecast), mcase.const_forecast, 2.0);

  // (3) zero series forecasts ~ zero.
  const auto zero_model = make_model<V>(config, prototype);
  for (int t = 0; t < 12; ++t) zero_model->observe(make_obs(0.0));
  V zero_forecast = prototype;
  zero_model->forecast_into(zero_forecast);
  EXPECT_NEAR(probe(zero_forecast), 0.0, 1.0);

  // (4) reproducibility.
  const auto again = make_model<V>(config, prototype);
  for (int t = 0; t < 12; ++t) again->observe(make_obs(100.0));
  V forecast2 = prototype;
  again->forecast_into(forecast2);
  EXPECT_DOUBLE_EQ(probe(forecast), probe(forecast2));
}

TEST(ModelSpaceMatrix, DenseVector) {
  for (const auto& mcase : all_cases()) {
    const perflow::DenseVector prototype(16);
    run_matrix_case(
        mcase, prototype,
        [](double v) {
          perflow::DenseVector obs(16);
          obs[7] = v;
          return obs;
        },
        [](const perflow::DenseVector& f) { return f[7]; });
  }
}

TEST(ModelSpaceMatrix, KarySketch32) {
  for (const auto& mcase : all_cases()) {
    const auto family = sketch::make_tabulation_family(1, 5);
    const sketch::KarySketch prototype(family, 1024);
    run_matrix_case(
        mcase, prototype,
        [&family](double v) {
          sketch::KarySketch obs(family, 1024);
          obs.update(7, v);
          return obs;
        },
        [](const sketch::KarySketch& f) { return f.estimate(7); });
  }
}

TEST(ModelSpaceMatrix, KarySketch64) {
  for (const auto& mcase : all_cases()) {
    const auto family = sketch::make_cw_family(2, 5);
    const sketch::KarySketch64 prototype(family, 1024);
    const std::uint64_t wide_key = 0xabcdef0123456789ULL;
    run_matrix_case(
        mcase, prototype,
        [&family, wide_key](double v) {
          sketch::KarySketch64 obs(family, 1024);
          obs.update(wide_key, v);
          return obs;
        },
        [wide_key](const sketch::KarySketch64& f) {
          return f.estimate(wide_key);
        });
  }
}

TEST(ModelSpaceMatrix, GroupTestingSketch) {
  for (const auto& mcase : all_cases()) {
    const auto family =
        std::make_shared<const hash::TabulationHashFamily>(3, 5);
    const sketch::GroupTestingSketch prototype(family, 512);
    run_matrix_case(
        mcase, prototype,
        [&family](double v) {
          sketch::GroupTestingSketch obs(family, 512);
          obs.update(7, v);
          return obs;
        },
        [](const sketch::GroupTestingSketch& f) { return f.estimate(7); });
  }
}

}  // namespace
}  // namespace scd::forecast
