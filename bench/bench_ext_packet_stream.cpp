// Extension: per-packet operation. The paper's Turnstile model admits
// packet-sized updates ("the update can be the size of a packet", §2.1), and
// Table 1 argues the sketch keeps up with line rate. Here we expand the
// small router's flow records into individual packets, drive the pipeline
// once per packet, and verify that (a) throughput is line-rate-plausible
// and (b) detection output is equivalent to the flow-record feed — it must
// be, because sketch UPDATE is linear in the updates.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

#include "common/timer.h"
#include "core/pipeline.h"
#include "eval/trace_cache.h"
#include "support/bench_util.h"
#include "traffic/packetize.h"
#include "traffic/router_profiles.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Extension: packet-level stream",
      "pipeline fed per packet vs per flow record (small router)",
      "identical alarms (linearity) at packet rates well above commodity "
      "line rate");

  const auto& records = eval::cached_trace(traffic::router_by_name("small"));
  // Zero time-spread: packets inherit their record's timestamp, so the
  // per-interval aggregates are mathematically identical and the comparison
  // isolates linearity (a nonzero spread would shuffle bytes across
  // interval boundaries and test packetization jitter, not the sketch).
  traffic::PacketizerConfig pconfig;
  pconfig.flow_spread_s = 0.0;
  traffic::Packetizer packetizer(pconfig);
  common::Stopwatch expand_sw;
  const auto packets = packetizer.packetize(records);
  std::printf("expanded %zu flow records into %zu packets (%.1fs)\n",
              records.size(), packets.size(), expand_sw.seconds());

  core::PipelineConfig config;
  config.interval_s = 300.0;
  config.h = 5;
  config.k = 32768;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.6;
  config.threshold = 0.1;

  // Flow-record feed.
  core::ChangeDetectionPipeline by_flow(config);
  for (const auto& r : records) by_flow.add_record(r);
  by_flow.flush();

  // Packet feed: same keys, updates are per-packet byte counts.
  core::ChangeDetectionPipeline by_packet(config);
  common::Stopwatch sw;
  for (const auto& p : packets) {
    by_packet.add(p.dst_ip, static_cast<double>(p.bytes),
                  static_cast<double>(p.timestamp_us) * 1e-6);
  }
  by_packet.flush();
  const double seconds = sw.seconds();
  const double mpps = static_cast<double>(packets.size()) / seconds / 1e6;
  std::printf("packet feed: %.2f Mpkt/s sustained (%.0f ns/packet) on one "
              "core\n",
              mpps, seconds / static_cast<double>(packets.size()) * 1e9);

  // Compare alarm key sets per interval — with zero spread they must match.
  const std::size_t n = std::min(by_flow.reports().size(),
                                 by_packet.reports().size());
  std::size_t intervals_compared = 0, intervals_equal = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const auto& a = by_flow.reports()[t];
    const auto& b = by_packet.reports()[t];
    if (!a.detection_ran || !b.detection_ran) continue;
    std::set<std::uint64_t> ka, kb;
    for (const auto& alarm : a.alarms) ka.insert(alarm.key);
    for (const auto& alarm : b.alarms) kb.insert(alarm.key);
    ++intervals_compared;
    if (ka == kb) ++intervals_equal;
  }
  std::printf("alarm key sets identical in %zu of %zu intervals\n",
              intervals_equal, intervals_compared);

  bench::check(mpps > 1.0, "sustains > 1 Mpkt/s on one core",
               common::str_format("%.2f Mpkt/s", mpps));
  bench::check(intervals_equal == intervals_compared,
               "packet feed reproduces the flow feed's alarms (linearity)",
               common::str_format("%zu/%zu intervals identical",
                                  intervals_equal, intervals_compared));
  return bench::finish();
}
