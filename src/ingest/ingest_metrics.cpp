#include "ingest/ingest_metrics.h"

#include <string>

#include "obs/metrics.h"

namespace scd::ingest {

IngestInstruments IngestInstruments::create(obs::MetricsRegistry& registry,
                                            std::size_t workers) {
  IngestInstruments out{
      registry.gauge("scd_ingest_queue_records",
                     "Records currently buffered in shard queues (all shards)"),
      registry.counter("scd_ingest_backpressure_total",
                       "Chunk submissions that blocked on a full shard queue"),
      registry.histogram("scd_ingest_merge_seconds",
                         "Latency of one interval-close barrier: drain, "
                         "COMBINE-merge of shard sketches, key concatenation",
                         obs::Histogram::default_latency_buckets()),
      registry.histogram(
          "scd_ingest_batch_size",
          "Records per chunk applied through the batched sketch UPDATE path",
          {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0}),
      registry.counter(
          "scd_ingest_batch_records_total",
          "Records applied via BasicKarySketch::update_batch on shard workers"),
      registry.counter(
          "scd_ingest_shutdown_dropped_records_total",
          "Records discarded because queue close() raced a blocked push "
          "during shutdown (the final interval is short these records)"),
      {}};
  out.shard_apply_seconds.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    out.shard_apply_seconds.push_back(&registry.histogram(
        "scd_ingest_shard_apply_seconds",
        "Latency of one record chunk applied to a shard's private sketch",
        obs::Histogram::default_latency_buckets(),
        {{"shard", std::to_string(i)}}));
  }
  return out;
}

}  // namespace scd::ingest
