#include "core/pipeline.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <deque>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "detect/detection.h"
#include "forecast/runner.h"
#include "gridsearch/grid_search.h"
#include "hash/cw_hash.h"
#include "hash/tabulation_hash.h"
#include "sketch/kary_sketch.h"

namespace scd::core {

void PipelineConfig::validate() const {
  if (!(interval_s > 0.0)) {
    throw std::invalid_argument("PipelineConfig: interval_s must be > 0");
  }
  if (!hash::valid_bucket_count(k) || k < 2) {
    throw std::invalid_argument(
        "PipelineConfig: k must be a power of two in [2, 65536]");
  }
  if (h < 1 || h > sketch::kMaxRows) {
    throw std::invalid_argument("PipelineConfig: h must be in [1, 32]");
  }
  if (!(key_sample_rate > 0.0) || key_sample_rate > 1.0) {
    throw std::invalid_argument(
        "PipelineConfig: key_sample_rate must be in (0, 1]");
  }
  if (!(threshold >= 0.0)) {
    throw std::invalid_argument("PipelineConfig: threshold must be >= 0");
  }
  if (!(baseline_alpha > 0.0) || baseline_alpha > 1.0) {
    throw std::invalid_argument(
        "PipelineConfig: baseline_alpha must be in (0, 1]");
  }
  if (!model.valid()) {
    throw std::invalid_argument("PipelineConfig: invalid forecast model: " +
                                model.to_string());
  }
  if (min_consecutive < 1) {
    throw std::invalid_argument("PipelineConfig: min_consecutive must be >= 1");
  }
  if (refit_every > 0 && refit_window < 4) {
    throw std::invalid_argument(
        "PipelineConfig: refit_window must be >= 4 when re-fitting");
  }
}

namespace {

class EngineBase {
 public:
  virtual ~EngineBase() = default;
  virtual void add(std::uint64_t key, double update, double time_s) = 0;
  virtual void flush() = 0;
  [[nodiscard]] virtual const forecast::ModelConfig& active_model()
      const noexcept = 0;
  [[nodiscard]] virtual PipelineStats stats() const noexcept = 0;
};

template <typename Family>
class Engine final : public EngineBase {
 public:
  using Sketch = sketch::BasicKarySketch<Family>;
  using Emit = std::function<void(IntervalReport&&)>;

  Engine(const PipelineConfig& config, Emit emit)
      : config_(config),
        emit_(std::move(emit)),
        family_(std::make_shared<const Family>(config.seed, config.h)),
        observed_(family_, config.k),
        active_model_(config.model),
        sample_rng_(config.seed ^ 0x5a5a5a5a5a5a5a5aULL),
        interval_rng_(config.seed ^ 0x1234abcd5678ef90ULL),
        current_len_(config.interval_s) {
    if (config_.randomize_intervals) current_len_ = draw_interval_length();
    rebuild_runner();
  }

  void add(std::uint64_t key, double update, double time_s) override {
    if (!started_) {
      started_ = true;
      current_start_ = time_s;
    }
    if (time_s < current_start_) {
      throw std::invalid_argument(
          "ChangeDetectionPipeline: records must be time-ordered");
    }
    if (!std::isfinite(update)) {
      throw std::invalid_argument(
          "ChangeDetectionPipeline: update must be finite");
    }
    while (time_s >= current_start_ + current_len_) close_interval();
    observed_.update(key, update);
    ++records_in_interval_;
    ++stats_.records;
    if (config_.key_sample_rate >= 1.0 ||
        sample_rng_.bernoulli(config_.key_sample_rate)) {
      keys_.insert(key);
    }
  }

  void flush() override {
    if (!started_) return;
    close_interval();
    if (pending_.has_value()) {
      // kNextInterval: the last error sketch never sees future keys; emit an
      // empty-detection report so the interval is still accounted for.
      emit_pending({});
    }
  }

  [[nodiscard]] const forecast::ModelConfig& active_model()
      const noexcept override {
    return active_model_;
  }

  [[nodiscard]] PipelineStats stats() const noexcept override {
    PipelineStats s = stats_;
    s.sketch_bytes = observed_.table_bytes();
    return s;
  }

 private:
  struct Pending {
    Sketch error;
    double est_f2;
    IntervalReport report;  // partially filled
  };

  void rebuild_runner() {
    const Sketch prototype(family_, config_.k);
    runner_ = std::make_unique<forecast::ForecastRunner<Sketch>>(active_model_,
                                                                 prototype);
  }

  [[nodiscard]] double draw_interval_length() noexcept {
    const double len = interval_rng_.exponential(1.0 / config_.interval_s);
    return std::clamp(len, 0.25 * config_.interval_s,
                      4.0 * config_.interval_s);
  }

  void close_interval() {
    IntervalReport report;
    report.index = interval_index_;
    report.start_s = current_start_;
    report.end_s = current_start_ + current_len_;
    report.records = records_in_interval_;

    if (config_.randomize_intervals) {
      // Normalize to per-nominal-interval volume so intervals of different
      // lengths are comparable (§6; sketch linearity makes this a scale).
      observed_.scale(config_.interval_s / current_len_);
    }

    if (config_.refit_every > 0) {
      history_.push_back(observed_);
      if (history_.size() > config_.refit_window) history_.pop_front();
    }

    const auto step = runner_->step(observed_);

    if (config_.replay == KeyReplayMode::kNextInterval) {
      // This interval's keys detect the *previous* interval's changes.
      if (pending_.has_value()) {
        emit_pending(std::vector<std::uint64_t>(keys_.begin(), keys_.end()));
      }
      if (step.has_value()) {
        Pending p{std::move(step->error), 0.0, std::move(report)};
        p.est_f2 = p.error.estimate_f2();
        p.report.detection_ran = true;
        pending_.emplace(std::move(p));
      } else {
        emit_(std::move(report));
      }
    } else {
      if (step.has_value()) {
        report.detection_ran = true;
        const double est_f2 = step->error.estimate_f2();
        fill_detection(step->error, est_f2,
                       std::vector<std::uint64_t>(keys_.begin(), keys_.end()),
                       report);
      }
      emit_(std::move(report));
    }

    observed_.set_zero();
    keys_.clear();
    records_in_interval_ = 0;
    ++stats_.intervals_closed;
    current_start_ += current_len_;
    if (config_.randomize_intervals) current_len_ = draw_interval_length();
    ++interval_index_;

    maybe_refit();
  }

  void emit_pending(const std::vector<std::uint64_t>& keys) {
    Pending p = std::move(*pending_);
    pending_.reset();
    fill_detection(p.error, p.est_f2, keys, p.report);
    emit_(std::move(p.report));
  }

  void fill_detection(const Sketch& error, double est_f2,
                      const std::vector<std::uint64_t>& keys,
                      IntervalReport& report) {
    report.keys_checked = keys.size();
    report.estimated_error_f2 = est_f2;
    // Threshold anchor: this interval's F2, or the smoothed history (which
    // a large in-progress change cannot inflate).
    double anchor_f2 = std::max(est_f2, 0.0);
    if (config_.baseline == ThresholdBaseline::kSmoothedF2) {
      if (have_smoothed_f2_) anchor_f2 = smoothed_f2_;
      smoothed_f2_ = have_smoothed_f2_
                         ? config_.baseline_alpha * std::max(est_f2, 0.0) +
                               (1.0 - config_.baseline_alpha) * smoothed_f2_
                         : std::max(est_f2, 0.0);
      have_smoothed_f2_ = true;
    }
    const double l2 = std::sqrt(anchor_f2);
    report.alarm_threshold = config_.threshold * l2;
    if (l2 <= 0.0) return;  // degenerate error signal: nothing to flag
    auto ranked = detect::rank_by_abs_error(
        keys, [&error](std::uint64_t key) { return error.estimate(key); });
    auto flagged =
        config_.criterion == DetectionCriterion::kTopN
            ? detect::top_n(ranked, config_.max_alarms_per_interval)
            : detect::above_threshold(ranked, config_.threshold, l2);
    // Hysteresis (§6): require min_consecutive consecutive trips per key.
    std::vector<detect::KeyError> persistent;
    if (config_.min_consecutive > 1) {
      std::unordered_map<std::uint64_t, std::size_t> streaks;
      streaks.reserve(flagged.size() * 2);
      for (const detect::KeyError& e : flagged) {
        const auto it = alarm_streaks_.find(e.key);
        const std::size_t streak = 1 + (it != alarm_streaks_.end() ? it->second : 0);
        streaks.emplace(e.key, streak);
        if (streak >= config_.min_consecutive) persistent.push_back(e);
      }
      alarm_streaks_ = std::move(streaks);  // keys not flagged reset to 0
      flagged = persistent;
    }
    const auto capped =
        flagged.subspan(0, std::min(flagged.size(),
                                    config_.max_alarms_per_interval));
    report.alarms = detect::make_alarms(capped, report.index,
                                        report.alarm_threshold);
    stats_.alarms += report.alarms.size();
  }

  void maybe_refit() {
    if (config_.refit_every == 0 || interval_index_ == 0) return;
    if (interval_index_ % config_.refit_every != 0) return;
    if (history_.size() < 4) return;  // not enough signal to fit
    const Sketch prototype(family_, config_.k);
    const gridsearch::Objective objective =
        [this, &prototype](const forecast::ModelConfig& candidate) {
          forecast::ForecastRunner<Sketch> trial(candidate, prototype);
          double total = 0.0;
          for (const Sketch& obs : history_) {
            if (const auto step = trial.step(obs); step.has_value()) {
              total += std::max(step->error.estimate_f2(), 0.0);
            }
          }
          return total;
        };
    gridsearch::GridSearchOptions options;
    options.max_window = std::max<std::size_t>(2, history_.size() / 2);
    const auto result =
        gridsearch::grid_search(active_model_.kind, objective, options);
    active_model_ = result.best;
    ++stats_.refits;
    // Swap in the re-fitted model, warmed with the retained history.
    rebuild_runner();
    for (const Sketch& obs : history_) (void)runner_->step(obs);
  }

  PipelineConfig config_;
  Emit emit_;
  std::shared_ptr<const Family> family_;
  Sketch observed_;
  std::unique_ptr<forecast::ForecastRunner<Sketch>> runner_;
  forecast::ModelConfig active_model_;
  common::Rng sample_rng_;
  common::Rng interval_rng_;
  double current_len_;
  bool started_ = false;
  double current_start_ = 0.0;
  std::size_t interval_index_ = 0;
  std::uint64_t records_in_interval_ = 0;
  std::unordered_set<std::uint64_t> keys_;
  std::unordered_map<std::uint64_t, std::size_t> alarm_streaks_;
  double smoothed_f2_ = 0.0;
  bool have_smoothed_f2_ = false;
  std::optional<Pending> pending_;
  std::deque<Sketch> history_;
  PipelineStats stats_;
};

}  // namespace

class ChangeDetectionPipeline::Impl {
 public:
  explicit Impl(PipelineConfig config) : config_(std::move(config)) {
    config_.validate();
    const auto emit = [this](IntervalReport&& report) {
      if (callback_) callback_(report);
      reports_.push_back(std::move(report));
    };
    if (traffic::key_fits_32bit(config_.key_kind)) {
      engine_ = std::make_unique<Engine<hash::TabulationHashFamily>>(config_,
                                                                     emit);
    } else {
      engine_ = std::make_unique<Engine<hash::CwHashFamily>>(config_, emit);
    }
  }

  PipelineConfig config_;
  std::unique_ptr<EngineBase> engine_;
  std::vector<IntervalReport> reports_;
  std::function<void(const IntervalReport&)> callback_;
};

ChangeDetectionPipeline::ChangeDetectionPipeline(PipelineConfig config)
    : impl_(std::make_unique<Impl>(std::move(config))) {}

ChangeDetectionPipeline::~ChangeDetectionPipeline() = default;
ChangeDetectionPipeline::ChangeDetectionPipeline(
    ChangeDetectionPipeline&&) noexcept = default;
ChangeDetectionPipeline& ChangeDetectionPipeline::operator=(
    ChangeDetectionPipeline&&) noexcept = default;

void ChangeDetectionPipeline::add_record(const traffic::FlowRecord& record) {
  add(traffic::extract_key(record, impl_->config_.key_kind),
      traffic::extract_update(record, impl_->config_.update_kind),
      traffic::record_time_s(record));
}

void ChangeDetectionPipeline::add(std::uint64_t key, double update,
                                  double time_s) {
  impl_->engine_->add(key, update, time_s);
}

void ChangeDetectionPipeline::flush() { impl_->engine_->flush(); }

const std::vector<IntervalReport>& ChangeDetectionPipeline::reports()
    const noexcept {
  return impl_->reports_;
}

void ChangeDetectionPipeline::set_report_callback(
    std::function<void(const IntervalReport&)> callback) {
  impl_->callback_ = std::move(callback);
}

const forecast::ModelConfig& ChangeDetectionPipeline::active_model()
    const noexcept {
  return impl_->engine_->active_model();
}

PipelineStats ChangeDetectionPipeline::stats() const noexcept {
  return impl_->engine_->stats();
}

const PipelineConfig& ChangeDetectionPipeline::config() const noexcept {
  return impl_->config_;
}

}  // namespace scd::core
