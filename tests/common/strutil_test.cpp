#include "common/strutil.h"

#include <gtest/gtest.h>

namespace scd::common {
namespace {

TEST(StrFormat, BasicFormatting) {
  EXPECT_EQ(str_format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(str_format("%.2f", 3.14159), "3.14");
  EXPECT_EQ(str_format("empty"), "empty");
}

TEST(StrFormat, LongOutput) {
  const std::string long_arg(5000, 'a');
  const std::string out = str_format("[%s]", long_arg.c_str());
  EXPECT_EQ(out.size(), 5002u);
  EXPECT_EQ(out.front(), '[');
  EXPECT_EQ(out.back(), ']');
}

TEST(HumanCount, ScalesSuffixes) {
  EXPECT_EQ(human_count(12), "12.00");
  EXPECT_EQ(human_count(1200), "1.20K");
  EXPECT_EQ(human_count(3400000), "3.40M");
  EXPECT_EQ(human_count(5.6e9), "5.60G");
}

TEST(Ipv4ToString, FormatsOctets) {
  EXPECT_EQ(ipv4_to_string(0), "0.0.0.0");
  EXPECT_EQ(ipv4_to_string(0xffffffff), "255.255.255.255");
  EXPECT_EQ(ipv4_to_string(0x0a000001), "10.0.0.1");
  EXPECT_EQ(ipv4_to_string(0xc0a80164), "192.168.1.100");
}

TEST(ParseIpv4, RoundTrips) {
  for (std::uint32_t addr : {0u, 0xffffffffu, 0x0a000001u, 0xc0a80164u}) {
    std::uint32_t parsed = 0;
    ASSERT_TRUE(parse_ipv4(ipv4_to_string(addr), parsed));
    EXPECT_EQ(parsed, addr);
  }
}

TEST(ParseIpv4, RejectsMalformed) {
  std::uint32_t out = 0;
  EXPECT_FALSE(parse_ipv4("", out));
  EXPECT_FALSE(parse_ipv4("1.2.3", out));
  EXPECT_FALSE(parse_ipv4("1.2.3.4.5", out));
  EXPECT_FALSE(parse_ipv4("256.0.0.1", out));
  EXPECT_FALSE(parse_ipv4("a.b.c.d", out));
  EXPECT_FALSE(parse_ipv4("1.2.3.4x", out));
}

TEST(Split, BasicAndEdgeCases) {
  EXPECT_EQ(split("a,b,c", ',').size(), 3u);
  EXPECT_EQ(split("a,b,c", ',')[1], "b");
  EXPECT_EQ(split("", ',').size(), 1u);
  const auto trailing = split("a,", ',');
  ASSERT_EQ(trailing.size(), 2u);
  EXPECT_EQ(trailing[1], "");
  const auto empties = split(",,", ',');
  EXPECT_EQ(empties.size(), 3u);
}

}  // namespace
}  // namespace scd::common
