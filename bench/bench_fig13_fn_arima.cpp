// Figure 13: thresholding false negatives, medium router, 300 s interval,
// ARIMA models with d=0 and d=1.
#include "support/fnfp_figure.h"

int main() {
  scd::bench::run_fnfp_figure(
      "Figure 13",
      {scd::forecast::ModelKind::kArima0, scd::forecast::ModelKind::kArima1},
      /*false_negatives=*/true);
  return scd::bench::finish();
}
