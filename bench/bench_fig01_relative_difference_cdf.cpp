// Figure 1: empirical CDF of the Relative Difference between sketch-based
// and per-flow total energy, for all six forecast models with randomly
// chosen parameters. Paper setup: 10 router files, interval = 300 s, H = 1,
// K = 1024.
//
// Paper shape: across all models the CDF mass concentrates near 0%; only
// NSHW has a small tail beyond 1.5%, worst case ~3.5%.
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "support/bench_util.h"
#include "support/experiments.h"
#include "traffic/router_profiles.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Figure 1",
      "CDF of relative difference, all models, interval=300s, H=1, K=1024",
      "mass near 0%; worst-case within a few percent even with random "
      "parameters");

  constexpr std::size_t kH = 1;
  constexpr std::size_t kK = 1024;
  constexpr double kInterval = 300.0;
  constexpr std::size_t kRandomPerModel = 8;
  const std::size_t warmup = bench::warmup_intervals(kInterval);

  double worst_abs = 0.0;
  double worst_abs_non_nshw = 0.0;
  for (const auto kind : forecast::all_model_kinds()) {
    common::EmpiricalCdf cdf;
    for (const auto& profile : traffic::router_catalog()) {
      const auto& stream = bench::stream_for(profile.name, kInterval);
      const auto configs =
          bench::random_model_configs(kind, kRandomPerModel, 1001, 10);
      for (const auto& config : configs) {
        const double rel =
            bench::energy_relative_difference(stream, config, kH, kK, warmup);
        cdf.add(rel);
        worst_abs = std::max(worst_abs, std::abs(rel));
        if (kind != forecast::ModelKind::kHoltWinters) {
          worst_abs_non_nshw = std::max(worst_abs_non_nshw, std::abs(rel));
        }
      }
    }
    std::vector<std::pair<double, double>> points;
    for (double q : {0.05, 0.25, 0.5, 0.75, 0.95, 1.0}) {
      points.emplace_back(cdf.quantile(q), q);
    }
    bench::print_series(
        common::str_format("cdf_%s(reldiff%%, cdf)",
                           forecast::model_kind_name(kind)),
        points);
    const double q90_abs =
        std::max(std::abs(cdf.quantile(0.05)), std::abs(cdf.quantile(0.95)));
    bench::check(
        q90_abs < 5.0,
        common::str_format("%s: 90%% of relative differences within 5%%",
                           forecast::model_kind_name(kind)),
        common::str_format("q05=%.3f%% q95=%.3f%%", cdf.quantile(0.05),
                           cdf.quantile(0.95)));
  }
  bench::check(worst_abs < 20.0,
               "worst-case relative difference bounded (paper: ~3.5%)",
               common::str_format("worst=%.2f%%", worst_abs));
  bench::check(worst_abs_non_nshw <= worst_abs,
               "heaviest tail belongs to a smoothing-with-trend model",
               common::str_format("non-NSHW worst=%.2f%%", worst_abs_non_nshw));
  return bench::finish();
}
