#include "sketch/median.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"

namespace scd::sketch {
namespace {

double reference_median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  if (n % 2 == 1) return v[n / 2];
  return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

TEST(Median, TrivialSizes) {
  std::vector<double> one{3.0};
  EXPECT_EQ(median_inplace(one), 3.0);
  std::vector<double> two{1.0, 5.0};
  EXPECT_EQ(median_inplace(two), 3.0);
  std::vector<double> none;
  EXPECT_EQ(median_inplace(none), 0.0);
}

// Parameterized differential sweep: every network size (and the fallback
// sizes) against the sort-based reference, across many random inputs.
class MedianSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MedianSweep, MatchesSortedReferenceOnRandomInput) {
  const std::size_t n = GetParam();
  scd::common::Rng rng(1000 + n);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.uniform(-1e6, 1e6);
    const double expected = reference_median(v);
    std::vector<double> buf = v;
    EXPECT_DOUBLE_EQ(median_inplace(buf), expected) << "n=" << n;
    std::vector<double> buf2 = v;
    EXPECT_DOUBLE_EQ(median_nth_element(buf2), expected) << "n=" << n;
  }
}

TEST_P(MedianSweep, MatchesReferenceOnDuplicateHeavyInput) {
  const std::size_t n = GetParam();
  scd::common::Rng rng(2000 + n);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<double> v(n);
    for (double& x : v) x = static_cast<double>(rng.next_in(0, 3));
    const double expected = reference_median(v);
    std::vector<double> buf = v;
    EXPECT_DOUBLE_EQ(median_inplace(buf), expected) << "n=" << n;
  }
}

TEST_P(MedianSweep, SortedAndReversedInput) {
  const std::size_t n = GetParam();
  std::vector<double> asc(n);
  for (std::size_t i = 0; i < n; ++i) asc[i] = static_cast<double>(i);
  std::vector<double> desc(asc.rbegin(), asc.rend());
  const double expected = reference_median(asc);
  std::vector<double> b1 = asc, b2 = desc;
  EXPECT_DOUBLE_EQ(median_inplace(b1), expected);
  EXPECT_DOUBLE_EQ(median_inplace(b2), expected);
}

INSTANTIATE_TEST_SUITE_P(AllSizes, MedianSweep,
                         ::testing::Values(2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13,
                                           15, 17, 21, 25, 31));

TEST(Median, NetworksHandleNegativeValues) {
  std::vector<double> v{-5.0, -1.0, -3.0, -2.0, -4.0};
  EXPECT_EQ(median_inplace(v), -3.0);
}

TEST(Median, EvenSizesAverageTheCentralPair) {
  // Even n (possible when a sketch is configured with even H) must return
  // the mean of the two central order statistics on both the network/fallback
  // dispatch and the explicit nth_element path.
  std::vector<double> two{10.0, 20.0};
  EXPECT_DOUBLE_EQ(median_inplace(two), 15.0);
  std::vector<double> four{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median_inplace(four), 2.5);
  std::vector<double> four_nth{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median_nth_element(four_nth), 2.5);
  std::vector<double> six{6.0, 1.0, 5.0, 2.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(median_inplace(six), 3.5);
  std::vector<double> six_nth{6.0, 1.0, 5.0, 2.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(median_nth_element(six_nth), 3.5);
}

TEST(Median, NthElementPathAgreesWithNetworksOnEverySize) {
  // Differential check across 1..32 with duplicates mixed in — covers the
  // even sizes the parameterized sweep samples plus every odd network size.
  scd::common::Rng rng(7);
  for (std::size_t n = 1; n <= 32; ++n) {
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<double> v(n);
      for (double& x : v) x = static_cast<double>(rng.next_in(-8, 8));
      std::vector<double> a = v, b = v;
      EXPECT_DOUBLE_EQ(median_inplace(a), median_nth_element(b)) << "n=" << n;
    }
  }
}

TEST(Median, PaperSizesUseNetworks) {
  // Sanity check on exactly the H values the paper selects (1, 5, 9, 25).
  scd::common::Rng rng(3);
  for (std::size_t n : {1u, 5u, 9u, 25u}) {
    std::vector<double> v(n);
    for (double& x : v) x = rng.normal();
    std::vector<double> buf = v;
    EXPECT_DOUBLE_EQ(median_inplace(buf), reference_median(v));
  }
}

}  // namespace
}  // namespace scd::sketch
