#include "eval/stage_budget.h"

#include <cstdio>
#include <string>

namespace scd::eval {

namespace {

std::string row(const char* stage, double total_s, double unit_s,
                const char* unit_name, double share) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "  %-14s %10.4f s  %10.3f us/%-8s %5.1f%%\n",
                stage, total_s, unit_s * 1e6, unit_name, share * 100.0);
  return buf;
}

}  // namespace

std::string format_stage_budget(const core::PipelineStats& stats) {
  // update_seconds covers only the sampled add() calls; scale up to the
  // whole stream for the budget view.
  const double update_est =
      stats.update_samples == 0
          ? 0.0
          : stats.update_seconds *
                (static_cast<double>(stats.records) /
                 static_cast<double>(stats.update_samples));
  const double accounted =
      update_est + stats.close_seconds + stats.refit_seconds;
  if (accounted <= 0.0) {
    return "stage budget: no timing data (pipeline ran with metrics "
           "disabled or saw no records)\n";
  }
  const double per_interval =
      stats.intervals_closed == 0 ? 0.0
                                  : 1.0 / static_cast<double>(
                                              stats.intervals_closed);
  std::string out = "stage budget (accounted pipeline time):\n";
  out += row("sketch_update*", update_est,
             stats.records == 0 ? 0.0
                                : update_est / static_cast<double>(
                                                   stats.records),
             "record", update_est / accounted);
  out += row("interval_close", stats.close_seconds,
             stats.close_seconds * per_interval, "interval",
             stats.close_seconds / accounted);
  out += row("  forecast", stats.forecast_seconds,
             stats.forecast_seconds * per_interval, "interval",
             stats.forecast_seconds / accounted);
  out += row("  estimate_f2", stats.estimate_f2_seconds,
             stats.estimate_f2_seconds * per_interval, "interval",
             stats.estimate_f2_seconds / accounted);
  out += row("  key_replay", stats.key_replay_seconds,
             stats.keys_replayed == 0
                 ? 0.0
                 : stats.key_replay_seconds /
                       static_cast<double>(stats.keys_replayed),
             "key", stats.key_replay_seconds / accounted);
  out += row("refit", stats.refit_seconds,
             stats.refits == 0
                 ? 0.0
                 : stats.refit_seconds / static_cast<double>(stats.refits),
             "refit", stats.refit_seconds / accounted);
  char tail[160];
  std::snprintf(tail, sizeof(tail),
                "  * extrapolated from %llu sampled updates of %llu records\n",
                static_cast<unsigned long long>(stats.update_samples),
                static_cast<unsigned long long>(stats.records));
  out += tail;
  return out;
}

}  // namespace scd::eval
