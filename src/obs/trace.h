// Structured span tracing for the change-detection pipeline.
//
// Complements the metrics layer (obs/metrics.h): metrics answer "how much /
// how fast" in aggregate, spans answer "what happened inside interval 4812"
// — one timestamped (name, category, start, duration) event per pipeline
// stage execution, exportable as Chrome trace-event JSON that loads directly
// in Perfetto / chrome://tracing.
//
// Design constraints:
//   * Span emission sits on the interval-close path of every shard worker,
//     so recording is lock-free: each thread owns a private ring buffer
//     (single writer), and every slot carries a seqlock-style sequence word
//     so a concurrent snapshot reader can detect and discard in-flight or
//     overwritten slots — no torn spans, ever. Slot payloads are relaxed
//     atomic words, so the protocol is data-race-free under TSan, not just
//     "benign-race" correct.
//   * The rings are bounded: when a ring wraps, the oldest spans are
//     overwritten and counted (`dropped() = emitted - capacity`), which
//     makes drop accounting deterministic for a quiesced ring.
//   * Disabled tracing costs one relaxed atomic load per span site (the
//     controller's enabled flag); timestamps are only taken when enabled.
//   * Compile-time kill switch: SCD_TRACE_ENABLED follows SCD_OBS_ENABLED by
//     default, so a -DSCD_OBS_ENABLED=0 build (scd_core_noobs) compiles the
//     span macros away entirely.
//
// SpanContext is the wire-serializable trace identity (24 bytes, explicit
// little-endian): the planned distributed aggregation tier (ROADMAP open
// item 1) forwards it across nodes so per-interval causality survives the
// hop; in-process tracing does not need it yet.
//
// Span names and categories must be string literals (or otherwise have
// static storage duration): the ring stores the pointers, not copies.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

#ifndef SCD_TRACE_ENABLED
#define SCD_TRACE_ENABLED SCD_OBS_ENABLED
#endif

namespace scd::obs {

/// Wire-serializable trace identity for one span: which trace it belongs to,
/// its own id, and its parent's id (0 = root). Encoded little-endian so a
/// context produced on one host parses identically on any other.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;

  static constexpr std::size_t kWireBytes = 24;

  void encode(std::array<std::uint8_t, kWireBytes>& out) const noexcept;
  [[nodiscard]] static SpanContext decode(
      const std::array<std::uint8_t, kWireBytes>& in) noexcept;

  [[nodiscard]] bool operator==(const SpanContext&) const noexcept = default;
};

/// One recorded event. `start_ns`/`dur_ns` are nanoseconds on the process
/// monotonic clock (trace_now_ns); `arg` is a free-form per-span payload
/// (batch size, interval index, ...).
struct TraceEvent {
  const char* name = nullptr;      // static-duration string
  const char* category = nullptr;  // static-duration string
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint64_t arg = 0;
  std::uint32_t tid = 0;      // ring id assigned at registration
  std::uint8_t phase = 0;     // 0 = complete span ("X"), 1 = instant ("i")
};

/// Nanoseconds since the process trace epoch (monotonic; steady_clock).
[[nodiscard]] std::uint64_t trace_now_ns() noexcept;

/// Single-writer bounded span ring with seqlock slots. The owning thread
/// calls emit(); any thread may snapshot concurrently and will observe only
/// fully written slots.
class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 8). `tid` is the
  /// identity stamped on every event (Chrome "tid").
  TraceRing(std::size_t capacity, std::uint32_t tid);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Records one event. Writer-thread only.
  void emit(const char* name, const char* category, std::uint64_t start_ns,
            std::uint64_t dur_ns, std::uint64_t arg,
            std::uint8_t phase) noexcept;

  /// Total events ever emitted (monotonic).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    // mo: pairs with emit()'s release store on head_ — a reader that sees
    // head == h also sees the h slots published before it.
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to ring wrap: emitted() minus what the ring can retain.
  /// Deterministic once the writer has quiesced.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    const std::uint64_t e = emitted();
    return e > capacity_ ? e - capacity_ : 0;
  }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint32_t tid() const noexcept { return tid_; }

  /// Appends every retained, consistently-read event to `out` in emission
  /// order; slots concurrently being rewritten are skipped. Returns the
  /// number of events appended.
  std::size_t snapshot_into(std::vector<TraceEvent>& out) const;

 private:
  // Payload is stored as relaxed atomic words bracketed by the slot's
  // sequence: odd while the writer is inside, 2*(generation+1) when slot
  // holds that generation's complete payload.
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, 6> word{};
  };

  std::size_t capacity_;  // power of two
  std::uint64_t mask_;
  std::uint32_t tid_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};  // events emitted
};

/// Registry of per-thread rings plus the runtime on/off switch. One global
/// instance serves the whole process (the CLIs flip it on for --trace-out);
/// tests construct private controllers.
class TraceController {
 public:
  /// `registry` receives the scd_trace_* counters on snapshot (null = no
  /// metric sync; the global controller uses MetricsRegistry::global()).
  explicit TraceController(MetricsRegistry* registry = nullptr);

  TraceController(const TraceController&) = delete;
  TraceController& operator=(const TraceController&) = delete;

  [[nodiscard]] static TraceController& global();

  void set_enabled(bool enabled) noexcept {
    // mo: independent on/off flag — span sites may observe the flip late
    // by design; no other state is published through it.
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    // mo: hot-path probe of the independent on/off flag (see set_enabled).
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Capacity (events) for rings registered from now on; existing rings keep
  /// theirs. Default 8192 per thread.
  void set_ring_capacity(std::size_t capacity) SCD_EXCLUDES(mutex_);

  /// The calling thread's ring, registered on first use. Rings outlive their
  /// threads (the controller keeps them) so a post-join snapshot still sees
  /// every worker's spans.
  [[nodiscard]] TraceRing& ring_for_current_thread() SCD_EXCLUDES(mutex_);

  struct Snapshot {
    std::vector<TraceEvent> events;  // emission order per tid
    std::uint64_t emitted = 0;       // across all rings, lifetime
    std::uint64_t dropped = 0;       // lost to ring wrap, lifetime
  };

  /// Collects every ring's retained events plus lifetime counters, and (when
  /// a registry was supplied) syncs the scd_trace_* metrics by delta.
  [[nodiscard]] Snapshot snapshot() SCD_EXCLUDES(mutex_);

  /// Fresh process-unique trace id (never 0) for SpanContext propagation.
  [[nodiscard]] std::uint64_t new_trace_id() noexcept {
    // mo: uniqueness needs only the atomic increment, not ordering.
    return next_trace_id_.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  struct TraceInstruments {
    Counter& spans;
    Counter& dropped;
    Gauge& rings;
  };

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_trace_id_{1};
  const std::uint64_t epoch_;  // invalidates thread-local ring caches
  MetricsRegistry* registry_;

  common::Mutex mutex_;  // guards registration/metric sync, never emit()
  std::vector<std::unique_ptr<TraceRing>> rings_ SCD_GUARDED_BY(mutex_);
  std::size_t ring_capacity_ SCD_GUARDED_BY(mutex_) = 8192;
  std::unique_ptr<TraceInstruments> instruments_;  // written in ctor only
  std::uint64_t synced_spans_ SCD_GUARDED_BY(mutex_) = 0;
  std::uint64_t synced_dropped_ SCD_GUARDED_BY(mutex_) = 0;
};

/// RAII complete-span recorder. Construction samples the clock only when the
/// controller is enabled; destruction emits the span into the calling
/// thread's ring.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category,
            std::uint64_t arg = 0) noexcept
      : TraceSpan(TraceController::global(), name, category, arg) {}

  TraceSpan(TraceController& controller, const char* name,
            const char* category, std::uint64_t arg = 0) noexcept {
    if (!controller.enabled()) return;
    ring_ = &controller.ring_for_current_thread();
    name_ = name;
    category_ = category;
    arg_ = arg;
    start_ns_ = trace_now_ns();
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Replaces the span's argument (for counts only known at scope end).
  void set_arg(std::uint64_t arg) noexcept { arg_ = arg; }

  ~TraceSpan() {
    if (ring_ == nullptr) return;
    ring_->emit(name_, category_, start_ns_, trace_now_ns() - start_ns_, arg_,
                0);
  }

 private:
  TraceRing* ring_ = nullptr;  // null = tracing was disabled at entry
  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_ns_ = 0;
  std::uint64_t arg_ = 0;
};

/// Records a zero-duration instant event on the global controller.
void trace_instant(const char* name, const char* category,
                   std::uint64_t arg = 0) noexcept;

/// Renders a snapshot as Chrome trace-event JSON ("traceEvents" array of
/// "X"/"i" phase events, microsecond timestamps) — loadable in Perfetto and
/// chrome://tracing, and validated by scripts/trace_check.py.
[[nodiscard]] std::string to_chrome_trace(
    const TraceController::Snapshot& snapshot);

}  // namespace scd::obs

#if SCD_TRACE_ENABLED
#define SCD_TRACE_CONCAT_IMPL(a, b) a##b
#define SCD_TRACE_CONCAT(a, b) SCD_TRACE_CONCAT_IMPL(a, b)
/// Traces the enclosing scope as a complete span on the global controller.
#define SCD_TRACE_SPAN(name, category)                               \
  ::scd::obs::TraceSpan SCD_TRACE_CONCAT(scd_trace_span_, __LINE__)( \
      (name), (category))
#define SCD_TRACE_SPAN_ARG(name, category, arg)                      \
  ::scd::obs::TraceSpan SCD_TRACE_CONCAT(scd_trace_span_, __LINE__)( \
      (name), (category), static_cast<std::uint64_t>(arg))
#define SCD_TRACE_INSTANT(name, category, arg) \
  ::scd::obs::trace_instant((name), (category), static_cast<std::uint64_t>(arg))
#else
#define SCD_TRACE_SPAN(name, category) \
  do {                                 \
  } while (false)
#define SCD_TRACE_SPAN_ARG(name, category, arg) \
  do {                                          \
  } while (false)
#define SCD_TRACE_INSTANT(name, category, arg) \
  do {                                         \
  } while (false)
#endif
