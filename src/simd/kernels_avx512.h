// AVX-512F kernel implementations — per-ISA backend of simd/kernels.h.
//
// Do not include this header outside src/simd and the test tree: callers go
// through simd/kernels.h (scd_lint `simd-isolation`). The functions are
// compiled with GCC/Clang `target("avx512f")` attributes in
// kernels_avx512.cpp, so the translation unit needs no global -mavx512f flag
// and the rest of the binary stays runnable on any x86-64. Calling any kernel
// here when supported() is false is undefined (illegal instruction) — only
// the dispatcher in kernels.cpp and the equivalence tests may call them, and
// both check supported() first.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scd::simd::avx512 {

/// True when this build has AVX-512 implementations and the running CPU
/// executes AVX-512F. Always false on non-x86 targets.
[[nodiscard]] bool supported() noexcept;

void scale(double* x, std::size_t n, double c) noexcept;
void axpy(double* y, const double* x, std::size_t n, double c) noexcept;
[[nodiscard]] double dot(const double* x, const double* y,
                         std::size_t n) noexcept;
[[nodiscard]] double sum_squares(const double* x, std::size_t n) noexcept;
[[nodiscard]] double hsum(const double* x, std::size_t n) noexcept;
void index_shift_mask(const std::uint64_t* packed, std::size_t n,
                      unsigned shift, std::uint64_t mask,
                      std::uint32_t* out) noexcept;

}  // namespace scd::simd::avx512
