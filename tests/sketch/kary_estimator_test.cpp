// Monte-Carlo validation of the Appendix A/B estimator guarantees:
// per-row ESTIMATE is unbiased with Var <= F2/(K-1); ESTIMATEF2 is unbiased
// with Var <= 2*F2^2/(K-1); the median over H rows makes large deviations
// rare. Uses the CW family (cheap per-seed construction).
#include <gtest/gtest.h>

#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/stats.h"
#include "sketch/kary_sketch.h"

namespace scd::sketch {
namespace {

struct Stream {
  std::vector<std::pair<std::uint64_t, double>> updates;
  std::unordered_map<std::uint64_t, double> truth;
  double f2 = 0.0;
};

Stream make_stream(std::size_t n_keys, std::uint64_t seed) {
  Stream s;
  scd::common::Rng rng(seed);
  for (std::size_t i = 0; i < n_keys; ++i) {
    const std::uint64_t key = 100 + i;
    // Heavy-tailed values: a few large keys dominate F2, like traffic.
    const double value = rng.pareto(1.0, 1.2) * (rng.bernoulli(0.5) ? 1 : -1);
    s.updates.emplace_back(key, value);
    s.truth[key] += value;
  }
  for (const auto& [k, v] : s.truth) s.f2 += v * v;
  return s;
}

class EstimatorMonteCarlo : public ::testing::Test {
 protected:
  static constexpr std::size_t kK = 256;
  static constexpr int kSeeds = 400;

  // Runs the stream through `kSeeds` independently seeded sketches and
  // collects per-seed estimates for `target` plus F2 estimates.
  void run(std::size_t h, std::uint64_t target,
           scd::common::RunningStats& value_stats,
           scd::common::RunningStats& f2_stats) {
    for (int seed = 1; seed <= kSeeds; ++seed) {
      const auto family = make_cw_family(static_cast<std::uint64_t>(seed), h);
      KarySketch64 sketch(family, kK);
      for (const auto& [k, v] : stream_.updates) sketch.update(k, v);
      value_stats.add(sketch.estimate(target));
      f2_stats.add(sketch.estimate_f2());
    }
  }

  Stream stream_ = make_stream(3000, 42);
};

TEST_F(EstimatorMonteCarlo, SingleRowEstimateIsUnbiased) {
  const std::uint64_t target = 100;  // known key
  const double truth = stream_.truth.at(target);
  scd::common::RunningStats values, f2s;
  run(/*h=*/1, target, values, f2s);
  // Theorem 1: E[v^h_a] = v_a. Standard error of the mean is
  // sqrt(Var/kSeeds) <= sqrt(F2/(K-1)/400); accept 4 standard errors.
  const double sem = std::sqrt(stream_.f2 / (kK - 1) / kSeeds);
  EXPECT_NEAR(values.mean(), truth, 4.0 * sem);
}

TEST_F(EstimatorMonteCarlo, SingleRowVarianceWithinTheorem1Bound) {
  const std::uint64_t target = 100;
  scd::common::RunningStats values, f2s;
  run(/*h=*/1, target, values, f2s);
  // Var(v^h_a) <= F2/(K-1); allow 35% slack for sampling noise of the
  // empirical variance itself.
  EXPECT_LT(values.variance(), 1.35 * stream_.f2 / (kK - 1));
}

TEST_F(EstimatorMonteCarlo, SingleRowF2IsUnbiased) {
  scd::common::RunningStats values, f2s;
  run(/*h=*/1, 100, values, f2s);
  // Theorem 4: E[F2^h] = F2, Var <= 2*F2^2/(K-1). SEM accordingly.
  const double sem = std::sqrt(2.0 * stream_.f2 * stream_.f2 / (kK - 1) / kSeeds);
  EXPECT_NEAR(f2s.mean(), stream_.f2, 4.0 * sem);
  EXPECT_LT(f2s.variance(), 2.7 * stream_.f2 * stream_.f2 / (kK - 1));
}

TEST_F(EstimatorMonteCarlo, MedianOverRowsShrinksSpread) {
  // The H-row median trades a little bias for a big reduction in the
  // frequency of extreme estimates (Theorems 2/3): the absolute deviation
  // spread at H=5 must be clearly smaller than at H=1.
  const std::uint64_t target = 100;
  const double truth = stream_.truth.at(target);
  scd::common::RunningStats h1, h5, f2_unused1, f2_unused2;
  run(/*h=*/1, target, h1, f2_unused1);
  run(/*h=*/5, target, h5, f2_unused2);
  auto spread = [truth](const scd::common::RunningStats& s) {
    return std::max(std::abs(s.max() - truth), std::abs(s.min() - truth));
  };
  EXPECT_LT(spread(h5), spread(h1));
}

TEST_F(EstimatorMonteCarlo, MedianF2StaysNearTruth) {
  scd::common::RunningStats values, f2s;
  run(/*h=*/9, 100, values, f2s);
  // With H=9 and K=256, every single estimate should land within ~50% of F2
  // (Theorem 5 makes the failure probability tiny).
  EXPECT_GT(f2s.min(), 0.5 * stream_.f2);
  EXPECT_LT(f2s.max(), 1.5 * stream_.f2);
}

TEST_F(EstimatorMonteCarlo, AbsentKeyEstimatesNearZero) {
  scd::common::RunningStats values, f2s;
  run(/*h=*/5, /*target=*/999999, values, f2s);  // never updated
  const double sigma = std::sqrt(stream_.f2 / (kK - 1));
  EXPECT_NEAR(values.mean(), 0.0, sigma);
  EXPECT_LT(std::abs(values.max()), 5.0 * sigma);
}

TEST(EstimatorTailBound, LargeKeysAreDetectedSmallKeysAreNot) {
  // Theorem 2/3 paraphrased at working scale: with K=65536 and H=20,
  // flagging keys with |estimate| >= sqrt(F2)/32 catches every key with
  // |v_a| >= sqrt(F2)/16 and flags no key with |v_a| <= sqrt(F2)/64.
  const std::size_t k = 65536;
  const auto family = make_cw_family(7, 20);
  KarySketch64 sketch(family, k);
  scd::common::Rng rng(8);
  double f2 = 0.0;
  // Background: 20000 small keys.
  for (std::uint64_t i = 0; i < 20000; ++i) {
    const double v = rng.uniform(0.5, 1.5);
    sketch.update(1000000 + i, v);
    f2 += v * v;
  }
  // One hot key at ~ sqrt(F2)/10 of the final norm.
  const double hot = std::sqrt(f2) / 9.0;
  sketch.update(55, hot);
  f2 += hot * hot;
  const double norm = std::sqrt(f2);
  EXPECT_GE(std::abs(sketch.estimate(55)), norm / 32.0);
  for (std::uint64_t i = 0; i < 100; ++i) {
    EXPECT_LT(std::abs(sketch.estimate(1000000 + i)), norm / 32.0);
  }
}

}  // namespace
}  // namespace scd::sketch
