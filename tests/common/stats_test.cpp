#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/random.h"

namespace scd::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.sum(), 5.0);
}

TEST(RunningStats, MatchesNaiveComputation) {
  Rng rng(1);
  std::vector<double> xs;
  RunningStats s;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-9);
  EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-9);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng(2);
  RunningStats all, left, right;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.normal();
    all.add(x);
    (i < 200 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, b;
  a.add(1.0);
  a.add(2.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_EQ(b.mean(), mean);
}

TEST(EmpiricalCdf, AtBoundaries) {
  EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(cdf.at(0.5), 0.0);
  EXPECT_EQ(cdf.at(1.0), 0.25);
  EXPECT_EQ(cdf.at(2.5), 0.5);
  EXPECT_EQ(cdf.at(4.0), 1.0);
  EXPECT_EQ(cdf.at(100.0), 1.0);
}

TEST(EmpiricalCdf, QuantileInterpolates) {
  EmpiricalCdf cdf({0.0, 10.0});
  EXPECT_NEAR(cdf.quantile(0.0), 0.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(0.5), 5.0, 1e-12);
  EXPECT_NEAR(cdf.quantile(1.0), 10.0, 1e-12);
}

TEST(EmpiricalCdf, QuantileSingleSample) {
  EmpiricalCdf cdf({7.0});
  EXPECT_EQ(cdf.quantile(0.0), 7.0);
  EXPECT_EQ(cdf.quantile(1.0), 7.0);
}

TEST(EmpiricalCdf, AddThenQuery) {
  EmpiricalCdf cdf;
  for (int i = 10; i >= 1; --i) cdf.add(static_cast<double>(i));
  EXPECT_EQ(cdf.size(), 10u);
  EXPECT_NEAR(cdf.at(5.0), 0.5, 1e-12);
}

TEST(EmpiricalCdf, CurveIsMonotone) {
  Rng rng(3);
  EmpiricalCdf cdf;
  for (int i = 0; i < 1000; ++i) cdf.add(rng.normal());
  const auto curve = cdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i - 1].first, curve[i].first);
    EXPECT_LE(curve[i - 1].second, curve[i].second);
  }
  EXPECT_EQ(curve.back().second, 1.0);
}

TEST(EmpiricalCdf, CurveDegenerateInput) {
  EmpiricalCdf cdf({2.0, 2.0, 2.0});
  const auto curve = cdf.curve(10);
  ASSERT_EQ(curve.size(), 1u);
  EXPECT_EQ(curve[0].first, 2.0);
  EXPECT_EQ(curve[0].second, 1.0);
}

TEST(QuantileFreeFunction, MedianOfOddCount) {
  EXPECT_EQ(quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(EmpiricalCdf, NormalQuantilesSane) {
  Rng rng(4);
  EmpiricalCdf cdf;
  for (int i = 0; i < 100000; ++i) cdf.add(rng.normal());
  EXPECT_NEAR(cdf.quantile(0.5), 0.0, 0.02);
  EXPECT_NEAR(cdf.quantile(0.8413), 1.0, 0.03);  // +1 sigma
  EXPECT_NEAR(cdf.quantile(0.1587), -1.0, 0.03);
}

}  // namespace
}  // namespace scd::common
