// Key/update extraction: instantiates the Turnstile model (§2.1) from flow
// records. The paper's experiments use (key = destination IP, update =
// bytes); alternative keys are provided for the other aggregation levels the
// paper discusses (source IP, address pairs, prefixes).
#pragma once

#include <cstdint>

#include "traffic/flow_record.h"

namespace scd::traffic {

enum class KeyKind {
  kDstIp,        // paper default
  kSrcIp,
  kSrcDstPair,   // 64-bit (src << 32) | dst
  kDstIpPrefix24,
  kDstIpPrefix16,
};

enum class UpdateKind {
  kBytes,  // paper default
  kPackets,
  kRecords,  // +1 per record (connection counting)
};

[[nodiscard]] constexpr std::uint64_t extract_key(const FlowRecord& r,
                                                  KeyKind kind) noexcept {
  switch (kind) {
    case KeyKind::kDstIp: return r.dst_ip;
    case KeyKind::kSrcIp: return r.src_ip;
    case KeyKind::kSrcDstPair:
      return (static_cast<std::uint64_t>(r.src_ip) << 32) | r.dst_ip;
    case KeyKind::kDstIpPrefix24: return r.dst_ip & 0xffffff00u;
    case KeyKind::kDstIpPrefix16: return r.dst_ip & 0xffff0000u;
  }
  return r.dst_ip;
}

[[nodiscard]] constexpr double extract_update(const FlowRecord& r,
                                              UpdateKind kind) noexcept {
  switch (kind) {
    case UpdateKind::kBytes: return static_cast<double>(r.bytes);
    case UpdateKind::kPackets: return static_cast<double>(r.packets);
    case UpdateKind::kRecords: return 1.0;
  }
  return static_cast<double>(r.bytes);
}

/// True when the key domain fits in 32 bits (allows the tabulation-hash fast
/// path; kSrcDstPair requires the 64-bit CW family).
[[nodiscard]] constexpr bool key_fits_32bit(KeyKind kind) noexcept {
  return kind != KeyKind::kSrcDstPair;
}

/// True when `coarse` is an aggregation of `fine` along the destination-IP
/// hierarchy (host ⊂ /24 ⊂ /16) — the §2.1 multi-level-aggregation chain.
[[nodiscard]] constexpr bool aggregates(KeyKind coarse, KeyKind fine) noexcept {
  if (coarse == KeyKind::kDstIpPrefix16) {
    return fine == KeyKind::kDstIpPrefix24 || fine == KeyKind::kDstIp;
  }
  if (coarse == KeyKind::kDstIpPrefix24) return fine == KeyKind::kDstIp;
  return false;
}

/// Projects a fine-level key up to a coarse aggregation level.
/// Precondition: aggregates(coarse, fine).
[[nodiscard]] constexpr std::uint64_t project_key(std::uint64_t fine_key,
                                                  KeyKind coarse) noexcept {
  switch (coarse) {
    case KeyKind::kDstIpPrefix24: return fine_key & 0xffffff00u;
    case KeyKind::kDstIpPrefix16: return fine_key & 0xffff0000u;
    default: return fine_key;
  }
}

}  // namespace scd::traffic
