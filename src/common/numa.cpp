#include "common/numa.h"

#if SCD_HAVE_NUMA
#include <numa.h>
#endif

namespace scd::common {

#if SCD_HAVE_NUMA

bool numa_available() noexcept {
  static const bool available = [] {
    return ::numa_available() >= 0 && ::numa_max_node() >= 1;
  }();
  return available;
}

std::size_t numa_node_count() noexcept {
  if (!numa_available()) return 1;
  return static_cast<std::size_t>(::numa_max_node()) + 1;
}

bool numa_bind_index(std::size_t index) noexcept {
  if (!numa_available()) return false;
  const int node = static_cast<int>(index % numa_node_count());
  if (::numa_run_on_node(node) != 0) return false;
  ::numa_set_preferred(node);
  return true;
}

#else  // !SCD_HAVE_NUMA — the degraded single-node behavior.

bool numa_available() noexcept { return false; }

std::size_t numa_node_count() noexcept { return 1; }

bool numa_bind_index(std::size_t /*index*/) noexcept { return false; }

#endif

}  // namespace scd::common
