#include "eval/ground_truth.h"

#include <algorithm>

#include "core/pipeline.h"
#include "traffic/flow_record.h"

namespace scd::eval {

std::vector<LabeledAnomaly> labeled_anomalies(
    const traffic::SyntheticTraceGenerator& generator) {
  std::vector<LabeledAnomaly> labels;
  for (const auto& spec : generator.config().anomalies) {
    if (spec.kind != traffic::AnomalyKind::kDosAttack &&
        spec.kind != traffic::AnomalyKind::kFlashCrowd) {
      continue;  // no single target key to label
    }
    LabeledAnomaly label;
    label.target_key = generator.dst_ip_of_rank(spec.target_rank);
    label.start_s = spec.start_s;
    label.end_s = spec.start_s + spec.duration_s;
    labels.push_back(label);
  }
  return labels;
}

namespace {

/// True when the alarm matches a label: right key, and the interval overlaps
/// the anomaly window extended by one interval (the recovery change).
bool matches_label(const core::IntervalReport& report,
                   const detect::Alarm& alarm, const LabeledAnomaly& label,
                   double interval_s) {
  if (alarm.key != label.target_key) return false;
  return report.start_s < label.end_s + interval_s &&
         report.end_s > label.start_s;
}

}  // namespace

std::vector<RocPoint> threshold_roc(
    const std::vector<traffic::FlowRecord>& records,
    const std::vector<LabeledAnomaly>& labels, core::PipelineConfig base,
    const std::vector<double>& thresholds, double warmup_s) {
  std::vector<RocPoint> curve;
  curve.reserve(thresholds.size());
  for (const double threshold : thresholds) {
    core::PipelineConfig config = base;
    config.threshold = threshold;
    core::ChangeDetectionPipeline pipeline(config);
    for (const auto& r : records) pipeline.add_record(r);
    pipeline.flush();

    std::vector<bool> detected(labels.size(), false);
    std::size_t false_alarms = 0;
    std::size_t intervals = 0;
    for (const auto& report : pipeline.reports()) {
      if (!report.detection_ran || report.start_s < warmup_s) continue;
      ++intervals;
      for (const auto& alarm : report.alarms) {
        bool matched = false;
        for (std::size_t i = 0; i < labels.size(); ++i) {
          if (matches_label(report, alarm, labels[i], config.interval_s)) {
            detected[i] = true;
            matched = true;
          }
        }
        if (!matched) ++false_alarms;
      }
    }
    RocPoint point;
    point.threshold = threshold;
    point.detection_rate =
        labels.empty()
            ? 1.0
            : static_cast<double>(std::count(detected.begin(), detected.end(),
                                             true)) /
                  static_cast<double>(labels.size());
    point.false_alarms_per_interval =
        intervals == 0 ? 0.0
                       : static_cast<double>(false_alarms) /
                             static_cast<double>(intervals);
    curve.push_back(point);
  }
  return curve;
}

}  // namespace scd::eval
