// The checkpoint subsystem's central promise, exercised as a property:
//
//   For every checkpoint cadence k and every crash point, killing the run
//   and restoring from the newest checkpoint yields an alarm/report stream
//   bit-identical to the uninterrupted run from the restore point onward.
//
// Verified for the serial pipeline and the W=4 sharded front-end, over a
// deterministic synthetic stream with spikes (so real alarms, thresholds
// and forecast state are part of the comparison, not just counters). The
// whole suite is rerun with SCD_SIMD=scalar by the ctest harness, so both
// dispatch decisions must reproduce their own runs exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "common/random.h"
#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"

namespace scd::checkpoint {
namespace {

struct Item {
  std::uint64_t key;
  double update;
  double time_s;
};

/// 12 intervals of 10 s, 60 keys with per-key deterministic noise, spikes
/// on keys 7 and 21 in intervals 5 and 9.
std::vector<Item> make_stream() {
  std::vector<Item> items;
  common::Rng rng(0xfeedface);
  for (int interval = 0; interval < 12; ++interval) {
    const double base = interval * 10.0;
    for (int rep = 0; rep < 3; ++rep) {
      for (std::uint64_t key = 0; key < 60; ++key) {
        items.push_back({key, 200.0 + rng.uniform(-50.0, 50.0),
                         base + 1.0 + rep * 3.0});
      }
    }
    if (interval == 5) items.push_back({7, 90000.0, base + 8.0});
    if (interval == 9) items.push_back({21, 90000.0, base + 8.5});
  }
  return items;
}

core::PipelineConfig property_config() {
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 4;
  config.k = 256;
  config.seed = 0x5eed;
  config.threshold = 0.2;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.6;
  config.metrics = false;
  return config;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

void expect_reports_bit_identical(
    const std::vector<core::IntervalReport>& resumed,
    const std::vector<core::IntervalReport>& reference,
    const std::string& label) {
  ASSERT_FALSE(resumed.empty()) << label;
  for (const core::IntervalReport& report : resumed) {
    ASSERT_LT(report.index, reference.size()) << label;
    const core::IntervalReport& expected = reference[report.index];
    SCOPED_TRACE(label + " interval " + std::to_string(report.index));
    ASSERT_EQ(report.index, expected.index);
    EXPECT_EQ(report.start_s, expected.start_s);
    EXPECT_EQ(report.end_s, expected.end_s);
    EXPECT_EQ(report.records, expected.records);
    EXPECT_EQ(report.detection_ran, expected.detection_ran);
    EXPECT_EQ(report.keys_checked, expected.keys_checked);
    // Bit-identical, not approximately equal: the doubles must match.
    EXPECT_EQ(report.estimated_error_f2, expected.estimated_error_f2);
    EXPECT_EQ(report.alarm_threshold, expected.alarm_threshold);
    ASSERT_EQ(report.alarms.size(), expected.alarms.size());
    for (std::size_t i = 0; i < report.alarms.size(); ++i) {
      EXPECT_EQ(report.alarms[i].key, expected.alarms[i].key);
      EXPECT_EQ(report.alarms[i].error, expected.alarms[i].error);
      EXPECT_EQ(report.alarms[i].threshold_abs,
                expected.alarms[i].threshold_abs);
    }
  }
}

/// The reference stream has spikes; make sure the property is not vacuous.
void expect_some_alarms(const std::vector<core::IntervalReport>& reports) {
  std::size_t alarms = 0;
  for (const auto& r : reports) alarms += r.alarms.size();
  ASSERT_GT(alarms, 0u) << "stream produced no alarms; property is vacuous";
}

TEST(CheckpointProperty, SerialKillRestoreBitIdentical) {
  const std::vector<Item> stream = make_stream();
  const core::PipelineConfig config = property_config();

  core::ChangeDetectionPipeline reference(config);
  for (const Item& item : stream) {
    reference.add(item.key, item.update, item.time_s);
  }
  reference.flush();
  expect_some_alarms(reference.reports());

  for (const std::size_t every : {1u, 2u, 3u}) {
    for (const double crash_s : {34.0, 67.0, 95.0, 118.0}) {
      const auto dir =
          fresh_dir("prop_serial_" + std::to_string(every) + "_" +
                    std::to_string(static_cast<int>(crash_s)));
      {
        core::ChangeDetectionPipeline pipeline(config);
        CheckpointWriterOptions options;
        options.directory = dir;
        options.every = every;
        options.metrics = false;
        CheckpointWriter writer(options, config);
        writer.attach(pipeline);
        for (const Item& item : stream) {
          if (item.time_s >= crash_s) break;
          pipeline.add(item.key, item.update, item.time_s);
        }
        // Killed here: no flush, no final checkpoint.
      }
      ASSERT_FALSE(list_checkpoints(dir).empty());

      core::ChangeDetectionPipeline resumed(config);
      const RecoverResult result = recover(dir, resumed);
      ASSERT_TRUE(result.restored);
      const double resume_s = resumed.position().next_interval_start_s;
      for (const Item& item : stream) {
        if (item.time_s < resume_s) continue;
        resumed.add(item.key, item.update, item.time_s);
      }
      resumed.flush();
      expect_reports_bit_identical(
          resumed.reports(), reference.reports(),
          "serial every=" + std::to_string(every) +
              " crash=" + std::to_string(crash_s));
    }
  }
}

TEST(CheckpointProperty, ShardedKillRestoreBitIdentical) {
  const std::vector<Item> stream = make_stream();
  const core::PipelineConfig config = property_config();
  ingest::ParallelConfig parallel;
  parallel.workers = 4;
  parallel.batch_size = 64;

  // Reference: an uninterrupted run of the SAME front-end. Sharded merges
  // sum shard-partial registers, so sharded-vs-serial holds to a few ULP
  // (see tests/ingest/parallel_pipeline_test.cpp), while sharded runs with
  // the same worker count are bit-exact among themselves — and that is the
  // bar a restore must clear.
  ingest::ParallelPipeline reference(config, parallel);
  for (const Item& item : stream) {
    reference.add(item.key, item.update, item.time_s);
  }
  reference.flush();
  expect_some_alarms(reference.reports());

  for (const std::size_t every : {1u, 2u}) {
    for (const double crash_s : {47.0, 98.0}) {
      const auto dir =
          fresh_dir("prop_shard_" + std::to_string(every) + "_" +
                    std::to_string(static_cast<int>(crash_s)));
      {
        ingest::ParallelPipeline pipeline(config, parallel);
        CheckpointWriterOptions options;
        options.directory = dir;
        options.every = every;
        options.metrics = false;
        CheckpointWriter writer(options, config);
        writer.attach(pipeline);
        for (const Item& item : stream) {
          if (item.time_s >= crash_s) break;
          pipeline.add(item.key, item.update, item.time_s);
        }
        // Killed here (worker threads wound down by the destructor; the
        // un-checkpointed tail is lost, as after SIGKILL).
      }
      ASSERT_FALSE(list_checkpoints(dir).empty());

      ingest::ParallelPipeline resumed(config, parallel);
      const RecoverResult result = recover(dir, resumed);
      ASSERT_TRUE(result.restored);
      const double resume_s = resumed.position().next_interval_start_s;
      for (const Item& item : stream) {
        if (item.time_s < resume_s) continue;
        resumed.add(item.key, item.update, item.time_s);
      }
      resumed.flush();
      expect_reports_bit_identical(
          resumed.reports(), reference.reports(),
          "sharded every=" + std::to_string(every) +
              " crash=" + std::to_string(crash_s));
    }
  }
}

/// Restoring a serial snapshot into the sharded front-end and vice versa is
/// rejected, but serial state restored serially after being written by the
/// parallel writer's cadence still matches — cross-checked above. Here:
/// checkpoint-every-k writes exactly floor(intervals / k) files (retention
/// aside), i.e. cadence is honored.
TEST(CheckpointProperty, CadenceWritesExpectedCheckpoints) {
  const std::vector<Item> stream = make_stream();
  const core::PipelineConfig config = property_config();
  for (const std::size_t every : {1u, 3u, 5u}) {
    const auto dir = fresh_dir("prop_cadence_" + std::to_string(every));
    std::size_t closes = 0;
    core::ChangeDetectionPipeline pipeline(config);
    CheckpointWriterOptions options;
    options.directory = dir;
    options.every = every;
    options.keep = 1000;  // retention off for this count
    options.metrics = false;
    CheckpointWriter writer(options, config);
    writer.attach(pipeline);
    pipeline.set_report_callback(
        [&closes](const core::IntervalReport&) { ++closes; });
    for (const Item& item : stream) {
      pipeline.add(item.key, item.update, item.time_s);
    }
    pipeline.flush();
    EXPECT_EQ(list_checkpoints(dir).size(), closes / every)
        << "every=" << every;
  }
}

}  // namespace
}  // namespace scd::checkpoint
