// Figure 12: thresholding false negatives, medium router, 300 s interval,
// EWMA and non-seasonal Holt-Winters models.
#include "support/fnfp_figure.h"

int main() {
  scd::bench::run_fnfp_figure(
      "Figure 12",
      {scd::forecast::ModelKind::kEwma, scd::forecast::ModelKind::kHoltWinters},
      /*false_negatives=*/true);
  return scd::bench::finish();
}
