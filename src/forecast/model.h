// Abstract forecasting model over an arbitrary linear signal space.
//
// Protocol per time interval t (paper §2.2):
//   1. if ready(), call forecast_into(f)   -> S_f(t)
//   2. call observe(o)                     -> feeds S_o(t) into the state
// The caller computes the error signal S_e(t) = S_o(t) - S_f(t).
//
// ready() is false while the model is still warming up (e.g. NSHW needs two
// observations to initialize its trend component).
#pragma once

#include <cstddef>

#include "forecast/linear_space.h"
#include "forecast/state_io.h"

namespace scd::forecast {

template <LinearSignal V>
class ForecastModel {
 public:
  virtual ~ForecastModel() = default;

  /// True when enough history exists to produce a forecast for the next
  /// interval.
  [[nodiscard]] virtual bool ready() const noexcept = 0;

  /// Writes the forecast for the next interval. Precondition: ready().
  virtual void forecast_into(V& out) const = 0;

  /// Feeds the observed signal for the interval the last forecast covered.
  virtual void observe(const V& observed) = 0;

  /// Number of observe() calls so far.
  [[nodiscard]] virtual std::size_t observed_count() const noexcept = 0;

  /// Checkpoint support: writes the model's complete mutable state (counters
  /// and stored signals) in a fixed order. Configuration parameters are NOT
  /// written — a restored model is first rebuilt from its ModelConfig, then
  /// fed the snapshot. After restore_state consumes a matching save_state
  /// stream, all future forecasts are bit-identical to the source model's.
  virtual void save_state(StateWriter<V>& out) const = 0;
  virtual void restore_state(StateReader<V>& in) = 0;
};

}  // namespace scd::forecast
