#include "detect/space_saving.h"

#include <algorithm>
#include <cassert>

namespace scd::detect {

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(capacity) {
  assert(capacity_ >= 1);
  entries_.reserve(capacity_);
}

void SpaceSaving::update(std::uint64_t key, double weight) {
  assert(weight >= 0.0);
  total_ += weight;
  if (const auto it = entries_.find(key); it != entries_.end()) {
    Slot& slot = it->second;
    order_.erase(slot.order_it);
    slot.count += weight;
    slot.order_it = order_.emplace(slot.count, key);
    return;
  }
  if (entries_.size() < capacity_) {
    Slot slot;
    slot.count = weight;
    slot.error = 0.0;
    slot.order_it = order_.emplace(weight, key);
    entries_.emplace(key, slot);
    return;
  }
  // Evict the minimum counter; the newcomer inherits its count as error.
  const auto min_it = order_.begin();
  const double min_count = min_it->first;
  const std::uint64_t evicted = min_it->second;
  order_.erase(min_it);
  entries_.erase(evicted);
  Slot slot;
  slot.count = min_count + weight;
  slot.error = min_count;
  slot.order_it = order_.emplace(slot.count, key);
  entries_.emplace(key, slot);
}

std::vector<SpaceSaving::Entry> SpaceSaving::top(std::size_t n) const {
  std::vector<Entry> result;
  result.reserve(std::min(n, entries_.size()));
  for (auto it = order_.rbegin(); it != order_.rend() && result.size() < n;
       ++it) {
    const Slot& slot = entries_.at(it->second);
    result.push_back({it->second, slot.count, slot.error});
  }
  return result;
}

double SpaceSaving::guaranteed(std::uint64_t key) const {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return 0.0;
  return it->second.count - it->second.error;
}

void SpaceSaving::clear() {
  entries_.clear();
  order_.clear();
  total_ = 0.0;
}

}  // namespace scd::detect
