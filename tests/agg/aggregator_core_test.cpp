// Transport-free aggregation-core tests: the dedup/stale/straggler/ordering
// matrix, and the two headline correctness claims of docs/DISTRIBUTED.md —
// (1) the global view is bit-identical to a single pipeline fed the merged
// intervals, and (2) an anomaly spread thinly across many routers is
// invisible at every single vantage point but alarms in the aggregate.
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "agg/aggregator.h"
#include "common/random.h"
#include "core/pipeline.h"
#include "net/wire.h"
#include "sketch/kary_sketch.h"
#include "sketch/serialize.h"

namespace scd::agg {
namespace {

core::PipelineConfig small_config() {
  core::PipelineConfig config;
  config.interval_s = 60.0;
  config.h = 5;
  config.k = 1024;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.5;
  config.metrics = false;  // keep unit tests off the global registry
  return config;
}

AggregatorConfig three_nodes() {
  AggregatorConfig config;
  config.pipeline = small_config();
  config.nodes = {1, 2, 3};
  return config;
}

/// One node's contribution for one interval: a handful of keys in a band
/// derived from the node id, so contributions are distinguishable.
net::IntervalPayload node_payload(const core::PipelineConfig& config,
                                  std::uint64_t node, std::uint64_t interval) {
  const auto family = sketch::make_tabulation_family(config.seed, config.h);
  sketch::KarySketch sketch(family, config.k);
  net::IntervalPayload payload;
  payload.start_s = static_cast<double>(interval) * config.interval_s;
  payload.len_s = config.interval_s;
  for (std::uint64_t j = 0; j < 10; ++j) {
    const std::uint64_t key = 1000 * node + j;
    sketch.update(key, 100.0);
    payload.keys.push_back(key);
    ++payload.records;
  }
  payload.sketch_packet = sketch::sketch_to_bytes(sketch);
  return payload;
}

TEST(AggregatorConfigTest, ValidationRejectsUnusableSetups) {
  {
    AggregatorConfig c = three_nodes();
    c.nodes.clear();
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    AggregatorConfig c = three_nodes();
    c.nodes = {1, 2, 1};
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    AggregatorConfig c = three_nodes();
    c.pipeline.key_kind = traffic::KeyKind::kSrcDstPair;  // 64-bit keys
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    AggregatorConfig c = three_nodes();
    c.pipeline.randomize_intervals = true;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  {
    AggregatorConfig c = three_nodes();
    c.pipeline.key_sample_rate = 0.5;
    EXPECT_THROW(c.validate(), std::invalid_argument);
  }
  EXPECT_NO_THROW(three_nodes().validate());
}

TEST(AggregatorCore, ClosesOnTheFullBarrierOnly) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  EXPECT_EQ(agg.submit(1, 0, node_payload(config, 1, 0)).intervals_closed, 0u);
  EXPECT_EQ(agg.submit(2, 0, node_payload(config, 2, 0)).intervals_closed, 0u);
  ASSERT_TRUE(agg.oldest_pending().has_value());
  EXPECT_EQ(*agg.oldest_pending(), 0u);

  const SubmitResult last = agg.submit(3, 0, node_payload(config, 3, 0));
  EXPECT_EQ(last.outcome, SubmitOutcome::kAccepted);
  EXPECT_EQ(last.intervals_closed, 1u);
  EXPECT_FALSE(agg.oldest_pending().has_value());
  EXPECT_EQ(agg.next_to_close(), 1u);

  ASSERT_EQ(agg.reports().size(), 1u);
  EXPECT_EQ(agg.reports()[0].records, 30u);  // 10 records from each node
  for (std::uint64_t node : {1u, 2u, 3u}) {
    EXPECT_EQ(agg.next_expected(node), 1u);
  }
}

TEST(AggregatorCore, InterleavedArrivalStillClosesInIndexOrder) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  // Nodes 1 and 2 race two intervals ahead of node 3: contributions to
  // interval 1 arrive while interval 0's barrier is still open. Nothing may
  // close until the oldest interval completes, and the closes come strictly
  // in index order as node 3 catches up.
  EXPECT_EQ(agg.submit(1, 0, node_payload(config, 1, 0)).intervals_closed, 0u);
  EXPECT_EQ(agg.submit(2, 0, node_payload(config, 2, 0)).intervals_closed, 0u);
  EXPECT_EQ(agg.submit(1, 1, node_payload(config, 1, 1)).intervals_closed, 0u);
  EXPECT_EQ(agg.submit(2, 1, node_payload(config, 2, 1)).intervals_closed, 0u);
  EXPECT_EQ(agg.next_to_close(), 0u);

  EXPECT_EQ(agg.submit(3, 0, node_payload(config, 3, 0)).intervals_closed, 1u);
  EXPECT_EQ(agg.submit(3, 1, node_payload(config, 3, 1)).intervals_closed, 1u);

  ASSERT_EQ(agg.reports().size(), 2u);
  EXPECT_EQ(agg.reports()[0].index, 0u);
  EXPECT_EQ(agg.reports()[0].start_s, 0.0);
  EXPECT_EQ(agg.reports()[1].index, 1u);
  EXPECT_EQ(agg.reports()[1].start_s, 60.0);
}

TEST(AggregatorCore, SkippingAheadAdvancesTheNodeWatermark) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  // A node shipping interval 1 declares everything below it covered: its
  // own later interval-0 contribution is the rejoin-overlap duplicate, not
  // a fresh contribution (nodes ship in order; going backwards only happens
  // when a restored node replays already-integrated intervals).
  EXPECT_EQ(agg.submit(1, 1, node_payload(config, 1, 1)).outcome,
            SubmitOutcome::kAccepted);
  EXPECT_EQ(agg.next_expected(1), 2u);
  EXPECT_EQ(agg.submit(1, 0, node_payload(config, 1, 0)).outcome,
            SubmitOutcome::kDuplicate);
  EXPECT_EQ(agg.stats().duplicates, 1u);
}

TEST(AggregatorCore, DuplicatesAreAbsorbedNotRecombined) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  ASSERT_EQ(agg.submit(1, 0, node_payload(config, 1, 0)).outcome,
            SubmitOutcome::kAccepted);
  // Re-ship before the barrier closes (watermark dedup).
  EXPECT_EQ(agg.submit(1, 0, node_payload(config, 1, 0)).outcome,
            SubmitOutcome::kDuplicate);
  agg.submit(2, 0, node_payload(config, 2, 0));
  agg.submit(3, 0, node_payload(config, 3, 0));
  // Re-ship after the close (still the node's watermark, not stale: the
  // node DID contribute, so its re-ship is the rejoin overlap).
  EXPECT_EQ(agg.submit(1, 0, node_payload(config, 1, 0)).outcome,
            SubmitOutcome::kDuplicate);

  EXPECT_EQ(agg.stats().contributions, 3u);
  EXPECT_EQ(agg.stats().duplicates, 2u);
  ASSERT_EQ(agg.reports().size(), 1u);
  EXPECT_EQ(agg.reports()[0].records, 30u);  // duplicates added nothing
  EXPECT_EQ(agg.next_expected(1), 1u);
}

TEST(AggregatorCore, StragglerForceCloseAndStaleDrop) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  agg.submit(1, 0, node_payload(config, 1, 0));
  agg.submit(2, 0, node_payload(config, 2, 0));
  EXPECT_EQ(agg.close_stragglers(0), 1u);  // node 3 missing

  EXPECT_EQ(agg.stats().straggler_closes, 1u);
  EXPECT_EQ(agg.stats().missing_contributions, 1u);
  ASSERT_EQ(agg.reports().size(), 1u);
  EXPECT_EQ(agg.reports()[0].records, 20u);

  // Node 3's late contribution: acked-but-dropped, and its watermark moves
  // past the closed interval so it ships interval 1 next.
  const SubmitResult late = agg.submit(3, 0, node_payload(config, 3, 0));
  EXPECT_EQ(late.outcome, SubmitOutcome::kStale);
  EXPECT_EQ(agg.stats().stale_drops, 1u);
  EXPECT_EQ(agg.next_expected(3), 1u);
  EXPECT_EQ(agg.reports()[0].records, 20u);  // unchanged — never retro-merged
}

TEST(AggregatorCore, EmptyIntervalsCloseToUnblockLaterOnes) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  // Nothing pending at all: force-closing has nothing to anchor a clock to
  // and must be a no-op rather than inventing intervals forever.
  EXPECT_EQ(agg.close_stragglers(5), 0u);

  // One node contributes interval 1 only. Forcing through 1 closes interval
  // 0 as empty (start derived back from the pending interval's grid) and
  // interval 1 as a straggler close.
  agg.submit(1, 1, node_payload(config, 1, 1));
  EXPECT_EQ(agg.close_stragglers(1), 2u);
  EXPECT_EQ(agg.stats().empty_intervals, 1u);
  EXPECT_EQ(agg.stats().straggler_closes, 2u);
  ASSERT_EQ(agg.reports().size(), 2u);
  EXPECT_EQ(agg.reports()[0].start_s, 0.0);
  EXPECT_EQ(agg.reports()[0].records, 0u);
  EXPECT_EQ(agg.reports()[1].start_s, 60.0);
  EXPECT_EQ(agg.reports()[1].records, 10u);
}

TEST(AggregatorCore, RejectsUnknownNodesAndIncompatibleContributions) {
  Aggregator agg(three_nodes());
  const auto& config = agg.config().pipeline;

  EXPECT_EQ(agg.submit(99, 0, node_payload(config, 99, 0)).outcome,
            SubmitOutcome::kUnknownNode);
  EXPECT_EQ(agg.stats().unknown_node_drops, 1u);

  // Wrong hash-family seed: COMBINE would be meaningless.
  core::PipelineConfig wrong_seed = config;
  wrong_seed.seed ^= 1;
  EXPECT_THROW(agg.submit(1, 0, node_payload(wrong_seed, 1, 0)),
               std::invalid_argument);
  // Wrong width.
  core::PipelineConfig wrong_k = config;
  wrong_k.k = 512;
  EXPECT_THROW(agg.submit(1, 0, node_payload(wrong_k, 1, 0)),
               std::invalid_argument);
  // Same interval framed on a shifted grid.
  agg.submit(1, 0, node_payload(config, 1, 0));
  net::IntervalPayload shifted = node_payload(config, 2, 0);
  shifted.start_s += 5.0;
  EXPECT_THROW(agg.submit(2, 0, shifted), std::invalid_argument);
  // A garbage sketch packet never touches aggregation state.
  net::IntervalPayload garbage = node_payload(config, 2, 0);
  garbage.sketch_packet[0] ^= 0xff;
  EXPECT_THROW(agg.submit(2, 0, garbage), sketch::SerializeError);
  EXPECT_EQ(agg.stats().contributions, 1u);
}

// ---------------------------------------------------------------------------
// The headline claims, on a 10-router simulation.
// ---------------------------------------------------------------------------

constexpr std::size_t kRouters = 10;
constexpr std::size_t kIntervals = 8;
constexpr std::size_t kAnomalyInterval = 5;
constexpr std::uint64_t kAnomalyKey = 4242;
// Per-router extra mass at the anomaly interval. Sized to sit well below
// one router's alarm threshold (noise across 300 flows puts sqrt(F2) near
// 230, so T=0.5 thresholds near 115) while the 10-router aggregate signal
// of 600 clears the aggregate threshold (~sqrt(10) * 115) by ~60%.
constexpr double kPerRouterBump = 60.0;

struct RouterTraffic {
  std::vector<net::IntervalPayload> intervals;  // one payload per interval
};

/// Deterministic per-router traffic: 300 steady flows with +/-20% jitter,
/// plus the shared anomaly key at baseline mass; at kAnomalyInterval every
/// router's anomaly-key mass rises by kPerRouterBump — a distributed attack
/// no single vantage point can see.
std::vector<RouterTraffic> make_router_traffic(
    const core::PipelineConfig& config) {
  const auto family = sketch::make_tabulation_family(config.seed, config.h);
  std::vector<RouterTraffic> routers(kRouters);
  for (std::size_t r = 0; r < kRouters; ++r) {
    common::Rng rng(0xbeef + r);
    for (std::size_t t = 0; t < kIntervals; ++t) {
      sketch::KarySketch sketch(family, config.k);
      net::IntervalPayload payload;
      payload.start_s = static_cast<double>(t) * config.interval_s;
      payload.len_s = config.interval_s;
      for (std::uint64_t j = 0; j < 300; ++j) {
        const std::uint64_t key = 100000 * (r + 1) + j;
        // Integer masses keep double addition exact (the bit-identical
        // claim needs commutative sums).
        const double mass = std::floor(rng.uniform(80.0, 120.0));
        sketch.update(key, mass);
        payload.keys.push_back(key);
        ++payload.records;
      }
      const double anomaly_mass =
          100.0 + (t == kAnomalyInterval ? kPerRouterBump : 0.0);
      sketch.update(kAnomalyKey, anomaly_mass);
      payload.keys.push_back(kAnomalyKey);
      ++payload.records;
      payload.sketch_packet = sketch::sketch_to_bytes(sketch);
      routers[r].intervals.push_back(std::move(payload));
    }
  }
  return routers;
}

/// The merged interval a single pipeline would see: registers summed and
/// keys concatenated in ascending node-id order — the aggregator's own
/// deterministic COMBINE order.
core::IntervalBatch merged_batch(const core::PipelineConfig& config,
                                 const std::vector<RouterTraffic>& routers,
                                 std::size_t t) {
  sketch::FamilyRegistry registry;
  core::IntervalBatch batch;
  batch.start_s = routers[0].intervals[t].start_s;
  batch.len_s = routers[0].intervals[t].len_s;
  batch.registers.assign(config.h * config.k, 0.0);
  for (const RouterTraffic& router : routers) {
    const net::IntervalPayload& payload = router.intervals[t];
    const sketch::KarySketch sketch =
        sketch::sketch_from_bytes(payload.sketch_packet, registry);
    const auto regs = sketch.registers();
    for (std::size_t i = 0; i < regs.size(); ++i) batch.registers[i] += regs[i];
    batch.records += payload.records;
    batch.keys.insert(batch.keys.end(), payload.keys.begin(),
                      payload.keys.end());
  }
  return batch;
}

TEST(AggregatorCore, GlobalViewIsBitIdenticalToSingleMergedPipeline) {
  AggregatorConfig agg_config = three_nodes();
  agg_config.nodes.clear();
  for (std::size_t r = 0; r < kRouters; ++r) {
    agg_config.nodes.push_back(10 + r);
  }
  const auto routers = make_router_traffic(agg_config.pipeline);

  Aggregator agg(agg_config);
  // Arrival order is adversarial on purpose: reverse node order, and each
  // interval's parts interleaved with the next interval's.
  for (std::size_t t = 0; t < kIntervals; ++t) {
    for (std::size_t r = kRouters; r-- > 0;) {
      const SubmitResult result =
          agg.submit(10 + r, t, routers[r].intervals[t]);
      ASSERT_EQ(result.outcome, SubmitOutcome::kAccepted);
    }
  }
  agg.flush();

  core::ChangeDetectionPipeline reference(agg_config.pipeline);
  for (std::size_t t = 0; t < kIntervals; ++t) {
    reference.ingest_interval(merged_batch(agg_config.pipeline, routers, t));
  }
  reference.flush();

  const auto& got = agg.reports();
  const auto& want = reference.reports();
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t t = 0; t < want.size(); ++t) {
    SCOPED_TRACE(t);
    EXPECT_EQ(got[t].index, want[t].index);
    EXPECT_EQ(got[t].start_s, want[t].start_s);
    EXPECT_EQ(got[t].end_s, want[t].end_s);
    EXPECT_EQ(got[t].records, want[t].records);
    EXPECT_EQ(got[t].detection_ran, want[t].detection_ran);
    // Bit-identical, not approximately equal: identical integer-valued
    // register sums through identical code.
    EXPECT_EQ(got[t].estimated_error_f2, want[t].estimated_error_f2);
    EXPECT_EQ(got[t].alarm_threshold, want[t].alarm_threshold);
    ASSERT_EQ(got[t].alarms.size(), want[t].alarms.size());
    for (std::size_t a = 0; a < want[t].alarms.size(); ++a) {
      EXPECT_EQ(got[t].alarms[a].key, want[t].alarms[a].key);
      EXPECT_EQ(got[t].alarms[a].error, want[t].alarms[a].error);
    }
  }
}

TEST(AggregatorCore, DistributedAnomalyIsOnlyVisibleInTheAggregate) {
  AggregatorConfig agg_config;
  agg_config.pipeline = small_config();
  for (std::size_t r = 0; r < kRouters; ++r) {
    agg_config.nodes.push_back(10 + r);
  }
  const auto routers = make_router_traffic(agg_config.pipeline);

  // Every single router, alone: no alarm for the anomaly key, ever — its
  // per-router bump hides inside the local noise floor.
  sketch::FamilyRegistry registry;
  for (std::size_t r = 0; r < kRouters; ++r) {
    core::ChangeDetectionPipeline local(agg_config.pipeline);
    for (std::size_t t = 0; t < kIntervals; ++t) {
      const net::IntervalPayload& payload = routers[r].intervals[t];
      core::IntervalBatch batch;
      batch.start_s = payload.start_s;
      batch.len_s = payload.len_s;
      batch.records = payload.records;
      batch.keys = payload.keys;
      const sketch::KarySketch sketch =
          sketch::sketch_from_bytes(payload.sketch_packet, registry);
      batch.registers.assign(sketch.registers().begin(),
                             sketch.registers().end());
      local.ingest_interval(std::move(batch));
    }
    local.flush();
    for (const auto& report : local.reports()) {
      for (const auto& alarm : report.alarms) {
        EXPECT_NE(alarm.key, kAnomalyKey)
            << "router " << r << " alarmed alone at interval " << report.index;
      }
    }
  }

  // The aggregate: the anomaly interval alarms on exactly the anomaly key.
  Aggregator agg(agg_config);
  for (std::size_t t = 0; t < kIntervals; ++t) {
    for (std::size_t r = 0; r < kRouters; ++r) {
      agg.submit(10 + r, t, routers[r].intervals[t]);
    }
  }
  agg.flush();
  ASSERT_EQ(agg.reports().size(), kIntervals);
  const auto& anomaly_report = agg.reports()[kAnomalyInterval];
  bool found = false;
  for (const auto& alarm : anomaly_report.alarms) {
    found = found || alarm.key == kAnomalyKey;
  }
  EXPECT_TRUE(found) << "aggregate view missed the distributed anomaly";
  // And the quiet intervals stay quiet globally too.
  for (std::size_t t = 2; t < kIntervals; ++t) {
    if (t == kAnomalyInterval || t == kAnomalyInterval + 1) continue;
    EXPECT_TRUE(agg.reports()[t].alarms.empty()) << "interval " << t;
  }
}

}  // namespace
}  // namespace scd::agg
