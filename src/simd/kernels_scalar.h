// Portable scalar reference kernels — the ground truth the equivalence
// tests compare every other implementation against, and the dispatch target
// on hosts (or under SCD_SIMD=scalar) where AVX2 is unavailable.
//
// Do not include this header outside src/simd and the test tree: callers go
// through simd/kernels.h (scd_lint `simd-isolation`). The loops are written
// one-element-at-a-time on purpose — sequential order IS the reference
// semantics the reductions are specified against.
#pragma once

#include <cstddef>
#include <cstdint>

namespace scd::simd::scalar {

inline void scale(double* x, std::size_t n, double c) noexcept {
  for (std::size_t i = 0; i < n; ++i) x[i] *= c;
}

inline void axpy(double* y, const double* x, std::size_t n,
                 double c) noexcept {
  for (std::size_t i = 0; i < n; ++i) y[i] += c * x[i];
}

[[nodiscard]] inline double dot(const double* x, const double* y,
                                std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

[[nodiscard]] inline double sum_squares(const double* x,
                                        std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

[[nodiscard]] inline double hsum(const double* x, std::size_t n) noexcept {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += x[i];
  return acc;
}

inline void index_shift_mask(const std::uint64_t* packed, std::size_t n,
                             unsigned shift, std::uint64_t mask,
                             std::uint32_t* out) noexcept {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>((packed[i] >> shift) & mask);
  }
}

}  // namespace scd::simd::scalar
