#include "eval/tsv_export.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace scd::eval {
namespace {

std::string temp_path(const std::string& name) {
  const auto dir = std::filesystem::temp_directory_path() / "scd_tsv";
  std::filesystem::create_directories(dir);
  return (dir / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(TsvWriter, WritesHeaderAndRows) {
  const auto path = temp_path("basic.tsv");
  {
    TsvWriter writer(path, {"x", "y"});
    writer.row(std::vector<double>{1.0, 2.5});
    writer.row(std::vector<double>{3.0, -4.0});
    EXPECT_EQ(writer.rows_written(), 2u);
  }
  EXPECT_EQ(slurp(path), "#x\ty\n1\t2.5\n3\t-4\n");
  std::remove(path.c_str());
}

TEST(TsvWriter, StringRows) {
  const auto path = temp_path("strings.tsv");
  {
    TsvWriter writer(path, {"name", "value"});
    writer.row(std::vector<std::string>{"alpha", "0.5"});
  }
  EXPECT_EQ(slurp(path), "#name\tvalue\nalpha\t0.5\n");
  std::remove(path.c_str());
}

TEST(TsvWriter, UnwritablePathThrows) {
  EXPECT_THROW(TsvWriter("/no/such/dir/out.tsv", {"x"}), std::runtime_error);
}

TEST(TsvExportDir, ReflectsEnvironmentOncePerProcess) {
  // The value is latched at first call; we can only assert it is stable.
  const std::string& first = tsv_export_dir();
  EXPECT_EQ(&first, &tsv_export_dir());
}

}  // namespace
}  // namespace scd::eval
