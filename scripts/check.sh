#!/usr/bin/env bash
# Repo-wide static-analysis gate.
#
# Runs, in order:
#   1. clang-format --dry-run over tracked C++ sources   (skipped if absent)
#   2. scripts/scd_lint.py project-invariant linter      (always)
#   3. -Werror build via the `ci` preset                 (always)
#   4. clang-tidy build via the `tidy` preset            (skipped if absent)
#
# Steps whose tool is missing are reported as SKIP and do not fail the gate;
# everything that can run must pass. Exit 0 iff no runnable step failed.
#
# Usage: scripts/check.sh [--no-build] [--no-tidy]
#   --no-build  skip the -Werror compile (for quick pre-commit lint runs)
#   --no-tidy   skip clang-tidy even when installed

set -u

cd "$(dirname "$0")/.."

RUN_BUILD=1
RUN_TIDY=1
for arg in "$@"; do
  case "$arg" in
    --no-build) RUN_BUILD=0 ;;
    --no-tidy) RUN_TIDY=0 ;;
    *) echo "check.sh: unknown option '$arg'" >&2; exit 2 ;;
  esac
done

FAILED=0
step() { printf '\n== %s ==\n' "$1"; }
pass() { printf -- '-- PASS: %s\n' "$1"; }
fail() { printf -- '-- FAIL: %s\n' "$1"; FAILED=1; }
skip() { printf -- '-- SKIP: %s (%s)\n' "$1" "$2"; }

# 1. Formatting ---------------------------------------------------------------
step "clang-format"
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t cxx_files < <(git ls-files '*.cpp' '*.h')
  if clang-format --dry-run --Werror "${cxx_files[@]}"; then
    pass "clang-format (${#cxx_files[@]} files)"
  else
    fail "clang-format"
  fi
else
  skip "clang-format" "not installed on this host"
fi

# 2. Project linter -----------------------------------------------------------
step "scd_lint"
if python3 scripts/scd_lint.py; then
  pass "scd_lint"
else
  fail "scd_lint"
fi

# 3. -Werror build ------------------------------------------------------------
step "-Werror build (ci preset)"
if [ "$RUN_BUILD" -eq 1 ]; then
  if command -v ninja >/dev/null 2>&1; then
    if cmake --preset ci >build-ci-configure.log 2>&1 &&
       cmake --build --preset ci -j "$(nproc)" >build-ci-build.log 2>&1; then
      pass "-Werror build"
      rm -f build-ci-configure.log build-ci-build.log
    else
      fail "-Werror build (see build-ci-configure.log / build-ci-build.log)"
      tail -n 40 build-ci-build.log 2>/dev/null || tail -n 40 build-ci-configure.log
    fi
  else
    # Fall back to the default generator so hosts without ninja still gate.
    if cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCD_WERROR=ON \
         >build-ci-configure.log 2>&1 &&
       cmake --build build-ci -j "$(nproc)" >build-ci-build.log 2>&1; then
      pass "-Werror build (makefiles fallback)"
      rm -f build-ci-configure.log build-ci-build.log
    else
      fail "-Werror build (see build-ci-configure.log / build-ci-build.log)"
      tail -n 40 build-ci-build.log 2>/dev/null || tail -n 40 build-ci-configure.log
    fi
  fi
else
  skip "-Werror build" "--no-build"
fi

# 4. clang-tidy ---------------------------------------------------------------
step "clang-tidy (tidy preset)"
if [ "$RUN_TIDY" -eq 0 ]; then
  skip "clang-tidy" "--no-tidy"
elif command -v clang-tidy >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
  if cmake --preset tidy >build-tidy-configure.log 2>&1 &&
     cmake --build --preset tidy -j "$(nproc)" >build-tidy-build.log 2>&1; then
    pass "clang-tidy"
    rm -f build-tidy-configure.log build-tidy-build.log
  else
    fail "clang-tidy (see build-tidy-configure.log / build-tidy-build.log)"
    tail -n 40 build-tidy-build.log 2>/dev/null || tail -n 40 build-tidy-configure.log
  fi
else
  skip "clang-tidy" "clang-tidy/clang++ not installed on this host"
fi

printf '\n'
if [ "$FAILED" -ne 0 ]; then
  echo "check.sh: FAILED"
  exit 1
fi
echo "check.sh: OK"
