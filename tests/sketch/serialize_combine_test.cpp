// Distributed COMBINE correctness (ISSUE 7): N "node" sketches exported as
// wire packets and rebuilt by a collector through one FamilyRegistry must
// combine into a view bit-identical to combining the originals in-process.
// This is the exactness claim behind the aggregation tier: for integer
// update values, register sums are exact in double arithmetic, so shipping
// sketches over the network loses nothing.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "sketch/kary_sketch.h"
#include "sketch/serialize.h"

namespace scd::sketch {
namespace {

constexpr std::uint64_t kSeed = 0xd15717b07edull;
constexpr std::size_t kRows = 5;
constexpr std::size_t kWidth = 1024;
constexpr std::size_t kNodes = 4;

// Per-node traffic: disjoint-ish key ranges with one key (77) shared by all
// nodes so the combined estimate must aggregate cross-node mass. Integer
// update values keep double addition exact, hence the bit-identical claim.
std::vector<KarySketch> make_node_sketches(const KarySketch::FamilyPtr& fam) {
  std::vector<KarySketch> nodes;
  for (std::size_t n = 0; n < kNodes; ++n) {
    KarySketch s(fam, kWidth);
    for (std::uint64_t key = 0; key < 200; ++key) {
      s.update(1000 * n + key, static_cast<double>(3 * key + n + 1));
    }
    s.update(77, 4096.0 * static_cast<double>(n + 1));
    nodes.push_back(std::move(s));
  }
  return nodes;
}

KarySketch combine_all(const std::vector<KarySketch>& sketches) {
  std::vector<const KarySketch*> ptrs;
  for (const auto& s : sketches) ptrs.push_back(&s);
  const std::vector<double> coeffs(sketches.size(), 1.0);
  return KarySketch::combine(coeffs, ptrs);
}

TEST(SerializeCombine, DeserializedSketchesCombineBitIdentically) {
  const auto family = make_tabulation_family(kSeed, kRows);
  const std::vector<KarySketch> originals = make_node_sketches(family);

  // Ship each node's sketch as an export packet and rebuild on the
  // "collector" side with a registry of its own — the collector never sees
  // the producers' family object, only (kind, seed, rows) on the wire.
  FamilyRegistry registry;
  std::vector<KarySketch> received;
  for (const auto& s : originals) {
    received.push_back(sketch_from_bytes(sketch_to_bytes(s), registry));
  }

  // All packets carried the same (seed, rows), so the registry must hand
  // every deserialized sketch the SAME family instance: that identity is
  // what makes them COMBINE-compatible with each other.
  for (std::size_t n = 1; n < received.size(); ++n) {
    EXPECT_EQ(received[n].family(), received[0].family());
    EXPECT_TRUE(received[n].compatible(received[0]));
  }

  const KarySketch combined_originals = combine_all(originals);
  const KarySketch combined_received = combine_all(received);

  // Registers first — the strongest form of the claim, implying every
  // estimate agrees too.
  const auto regs_a = combined_originals.registers();
  const auto regs_b = combined_received.registers();
  ASSERT_EQ(regs_a.size(), regs_b.size());
  for (std::size_t i = 0; i < regs_a.size(); ++i) {
    EXPECT_EQ(regs_a[i], regs_b[i]) << "register " << i;
  }

  // And the user-visible queries, bit-for-bit (EXPECT_EQ on doubles is
  // deliberate: identical inputs through identical code must not drift).
  for (const std::uint64_t key : {0ull, 77ull, 199ull, 1042ull, 3150ull}) {
    EXPECT_EQ(combined_originals.estimate(key), combined_received.estimate(key))
        << "key " << key;
  }
  EXPECT_EQ(combined_originals.estimate_f2(), combined_received.estimate_f2());
  EXPECT_EQ(combined_originals.sum(), combined_received.sum());

  // The shared key's combined mass is the cross-node total; sanity-check
  // against the closed form so a vacuous all-zero comparison can't pass.
  const double shared_mass = 4096.0 * (1 + 2 + 3 + 4);
  EXPECT_NEAR(combined_received.estimate(77), shared_mass,
              0.02 * shared_mass);
}

TEST(SerializeCombine, MixedOriginalAndDeserializedViaSharedRegistry) {
  // A collector that also ingests locally: its own sketch comes from the
  // registry too, so local and remote sketches stay COMBINE-compatible.
  FamilyRegistry registry;
  const auto family = registry.tabulation(kSeed, kRows);
  std::vector<KarySketch> nodes = make_node_sketches(family);

  KarySketch remote = sketch_from_bytes(sketch_to_bytes(nodes[0]), registry);
  EXPECT_EQ(remote.family(), family);  // same instance, not a rebuild

  KarySketch merged(family, kWidth);
  merged.add_scaled(remote, 1.0);
  for (std::size_t n = 1; n < nodes.size(); ++n) {
    merged.add_scaled(nodes[n], 1.0);
  }
  const KarySketch reference = combine_all(nodes);
  const auto regs_a = reference.registers();
  const auto regs_b = merged.registers();
  ASSERT_EQ(regs_a.size(), regs_b.size());
  for (std::size_t i = 0; i < regs_a.size(); ++i) {
    EXPECT_EQ(regs_a[i], regs_b[i]) << "register " << i;
  }
}

}  // namespace
}  // namespace scd::sketch
