#include "common/flags.h"

#include <cstdlib>

#include "common/strutil.h"

namespace scd::common {

void FlagParser::add_flag(const std::string& name, const std::string& help,
                          const std::string& default_value) {
  flags_[name] = Flag{help, default_value, false};
}

bool FlagParser::parse(int argc, const char* const* argv) {
  // Scan for --help/-h up front, BEFORE flag validation can bail out: a
  // user typing "prog --bogus --help" wants the usage text, so callers
  // branch on help_requested() first regardless of parse()'s result.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") help_requested_ = true;
  }
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") continue;
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool have_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      have_value = true;
    }
    const auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag: --" + name;
      return false;
    }
    if (!have_value) {
      // Accept "--flag value" unless the next token is another flag (then
      // treat as a boolean set to "true").
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
    it->second.set = true;
  }
  return true;
}

std::string FlagParser::get(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() ? it->second.value : std::string{};
}

bool FlagParser::has(const std::string& name) const {
  const auto it = flags_.find(name);
  return it != flags_.end() && it->second.set;
}

std::optional<double> FlagParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  if (v.empty()) return std::nullopt;
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

std::optional<std::int64_t> FlagParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  if (v.empty()) return std::nullopt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return std::nullopt;
  return parsed;
}

bool FlagParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string FlagParser::help(const std::string& usage) const {
  std::string out = "usage: " + usage + "\n\nflags:\n";
  for (const auto& [name, flag] : flags_) {
    out += str_format("  --%-18s %s", name.c_str(), flag.help.c_str());
    if (!flag.value.empty() && !flag.set) {
      out += str_format(" (default: %s)", flag.value.c_str());
    }
    out += "\n";
  }
  return out;
}

}  // namespace scd::common
