#include "agg/agg_server.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "agg/agg_metrics.h"
#include "agg/agg_server_state.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/net_metrics.h"
#include "net/socket.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace scd::agg {

class AggServer::Impl {
 public:
  Impl(AggregatorConfig aggregator_config, AggServerConfig server_config)
      : state_(std::move(aggregator_config)),
        config_(std::move(server_config)) {
    const common::MutexLock lock(state_.core_mutex);
    // Cached at construction (the fingerprint is immutable for the core's
    // lifetime): reader threads compare it on every frame, and reading it
    // through the core would touch guarded state without the lock — the
    // annotation-surfaced bug this cache fixes.
    fingerprint_ = state_.core.config_fingerprint();
#if SCD_OBS_ENABLED
    if (state_.core.config().pipeline.metrics) {
      agg_metrics_ = &AggInstruments::global();
      net_metrics_ = &net::NetInstruments::global();
    }
#endif
  }

  ~Impl() { stop(); }

  void start() {
    if (running_.exchange(true)) return;
    listener_ = net::ListenSocket::listen_tcp(config_.host, config_.port);
    accept_thread_ = std::thread([this] { accept_loop(); });
    if (config_.straggler_timeout_s > 0) {
      timer_thread_ = std::thread([this] { timer_loop(); });
    }
  }

  void stop() SCD_EXCLUDES(state_.core_mutex, state_.conns_mutex) {
    if (!running_.exchange(false)) {
      return;
    }
    listener_.close();  // wakes the blocked accept()
    {
      const common::MutexLock lock(state_.conns_mutex);
      // shutdown (not close): the reader threads still own the fds and wake
      // with EOF; close happens in each reader's epilogue.
      for (auto& conn : state_.conns) conn->sock.shutdown_both();
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    if (timer_thread_.joinable()) timer_thread_.join();
    std::vector<std::shared_ptr<AggConn>> conns;
    {
      const common::MutexLock lock(state_.conns_mutex);
      conns.swap(state_.conns);
    }
    for (auto& conn : conns) {
      if (conn->thread.joinable()) conn->thread.join();
    }
  }

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }

  void with_core(const std::function<void(Aggregator&)>& fn)
      SCD_EXCLUDES(state_.core_mutex) {
    const common::MutexLock lock(state_.core_mutex);
    fn(state_.core);
  }

  [[nodiscard]] std::size_t connections() const noexcept {
    // mo: gauge mirror for tests — a point-in-time sample.
    return live_connections_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop() SCD_EXCLUDES(state_.conns_mutex) {
    // mo: shutdown flag — stop() closes the listener after the store, so a
    // stale read at worst costs one extra accept() that fails immediately.
    while (running_.load(std::memory_order_relaxed)) {
      net::Socket sock;
      try {
        sock = listener_.accept();
      } catch (const net::WireError&) {
        break;  // listener closed: shutdown
      }
      auto conn = std::make_shared<AggConn>();
      conn->sock = std::move(sock);
      {
        const common::MutexLock lock(state_.conns_mutex);
        // mo: recheck under the lock so a connection accepted while stop()
        // runs is closed here instead of leaking past the join loop.
        if (!running_.load(std::memory_order_relaxed)) {
          conn->sock.close();
          break;
        }
        conn->thread = std::thread([this, conn] { serve(conn); });
        state_.conns.push_back(conn);
      }
    }
  }

  void send_frame(AggConn& conn, net::MessageType type, std::uint64_t node_id,
                  std::uint64_t interval_index) {
    net::FrameHeader header;
    header.type = type;
    header.node_id = node_id;
    header.interval_index = interval_index;
    header.config_fingerprint = fingerprint_;
    const std::vector<std::uint8_t> bytes = net::encode_frame(header, {});
    conn.sock.send_all(bytes);
    if (net_metrics_) {
      net_metrics_->frames_sent.inc();
      net_metrics_->bytes_sent.inc(bytes.size());
    }
  }

  /// Returns false when the connection should end (clean Bye or a protocol
  /// violation). Throws on socket failure or malformed frames; the caller's
  /// catch drops the connection and counts the reject.
  bool handle_frame(AggConn& conn, const net::Frame& frame,
                    std::optional<std::uint64_t>& node_id)
      SCD_EXCLUDES(state_.core_mutex) {
    const net::FrameHeader& h = frame.header;
    switch (h.type) {
      case net::MessageType::kHello: {
        if (node_id) {
          // A second Hello on an established connection is a protocol
          // violation. Accepting it used to re-increment the
          // live-connection count, permanently inflating the gauge (one
          // decrement per connection at epilogue).
          throw net::WireError(net::WireErrorKind::kBadPayload,
                               "duplicate Hello on one connection");
        }
        bool known = true;
        std::uint64_t next = 0;
        bool rejoin = false;
        const bool fingerprint_ok = h.config_fingerprint == fingerprint_;
        {
          const common::MutexLock lock(state_.core_mutex);
          try {
            next = state_.core.next_expected(h.node_id);
          } catch (const std::invalid_argument&) {
            known = false;
          }
          // Mark the node seen only when this Hello is actually accepted: a
          // refused handshake (drifted fingerprint) must not make the
          // node's eventual first real session count as a rejoin.
          if (known && fingerprint_ok) {
            rejoin = !state_.seen_nodes.insert(h.node_id).second;
          }
        }
        if (!known || !fingerprint_ok) {
          // Refuse before any payload flows: an unknown node or one built
          // with different sketch geometry must never reach COMBINE.
          if (agg_metrics_) agg_metrics_->rejects.inc();
          send_frame(conn, net::MessageType::kBye, h.node_id, 0);
          return false;
        }
        node_id = h.node_id;
        // mo: gauge bookkeeping — the fetch_add is the atomic truth, the
        // derived value only feeds a metric sample.
        const std::size_t live =
            live_connections_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (agg_metrics_) {
          agg_metrics_->nodes_connected.set(static_cast<double>(live));
          if (rejoin) agg_metrics_->rejoins.inc();
        }
        // The ack's interval_index is the rejoin protocol: "ship from here".
        send_frame(conn, net::MessageType::kHelloAck, h.node_id, next);
        return true;
      }
      case net::MessageType::kIntervalData: {
        if (!node_id || h.node_id != *node_id ||
            h.config_fingerprint != fingerprint_) {
          throw net::WireError(
              net::WireErrorKind::kBadPayload,
              "interval data before Hello, for a different node id, or with "
              "a drifted config fingerprint");
        }
        const net::IntervalPayload payload =
            net::decode_interval_payload(frame.payload);
        SubmitResult result;
        {
          const common::MutexLock lock(state_.core_mutex);
          result = state_.core.submit(h.node_id, h.interval_index, payload);
        }
        if (result.outcome == SubmitOutcome::kUnknownNode) {
          send_frame(conn, net::MessageType::kBye, h.node_id, 0);
          return false;
        }
        // Duplicates and stale contributions are acked too: the node must
        // advance past them, and dedup already made them harmless.
        send_frame(conn, net::MessageType::kAck, h.node_id, h.interval_index);
        return true;
      }
      case net::MessageType::kBye:
        return false;
      case net::MessageType::kHelloAck:
      case net::MessageType::kAck:
        throw net::WireError(net::WireErrorKind::kBadPayload,
                             "aggregator received a server->node message "
                             "type from a node");
    }
    return false;
  }

  void serve(const std::shared_ptr<AggConn>& conn) {
    net::FrameReader reader(config_.max_payload_bytes);
    std::vector<std::uint8_t> buf(64 * 1024);
    std::optional<std::uint64_t> node_id;
    try {
      bool open = true;
      while (open) {
        const std::size_t n = conn->sock.recv_some(buf.data(), buf.size());
        if (n == 0) break;  // EOF: node closed (or stop() shut us down)
        if (net_metrics_) net_metrics_->bytes_received.inc(n);
        reader.feed({buf.data(), n});
        while (open) {
          std::optional<net::Frame> frame = reader.next();
          if (!frame) break;
          if (net_metrics_) net_metrics_->frames_received.inc();
          open = handle_frame(*conn, *frame, node_id);
        }
      }
    } catch (const std::exception&) {
      // Malformed framing, hostile payload, or the peer vanished mid-frame:
      // drop the connection and count it. The core was never touched with
      // anything unvalidated, so no aggregation state needs repair.
      if (agg_metrics_) agg_metrics_->rejects.inc();
      if (net_metrics_) net_metrics_->frame_rejects.inc();
    }
    conn->sock.close();
    if (node_id) {
      // mo: gauge bookkeeping, matching the fetch_add in handle_frame.
      const std::size_t live =
          live_connections_.fetch_sub(1, std::memory_order_relaxed) - 1;
      if (agg_metrics_) {
        agg_metrics_->nodes_connected.set(static_cast<double>(live));
      }
    }
  }

  void timer_loop() SCD_EXCLUDES(state_.core_mutex) {
    using Clock = std::chrono::steady_clock;
    bool watching = false;
    std::uint64_t watched_interval = 0;
    Clock::time_point since{};
    const auto timeout = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(config_.straggler_timeout_s));
    // mo: shutdown flag — the 50 ms poll bounds how stale a read can be.
    while (running_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      const common::MutexLock lock(state_.core_mutex);
      const std::optional<std::uint64_t> oldest = state_.core.oldest_pending();
      if (!oldest) {
        watching = false;
        continue;
      }
      if (!watching || watched_interval != *oldest) {
        // A new oldest interval: restart its grace period.
        watching = true;
        watched_interval = *oldest;
        since = Clock::now();
        continue;
      }
      if (Clock::now() - since >= timeout) {
        state_.core.close_stragglers(watched_interval);
        watching = false;
      }
    }
  }

  AggServerState state_;
  AggServerConfig config_;
  std::uint64_t fingerprint_ = 0;  // written in ctor only, immutable after
  net::ListenSocket listener_;
  std::thread accept_thread_;
  std::thread timer_thread_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> live_connections_{0};
  AggInstruments* agg_metrics_ = nullptr;
  net::NetInstruments* net_metrics_ = nullptr;
};

AggServer::AggServer(AggregatorConfig aggregator_config,
                     AggServerConfig server_config)
    : impl_(std::make_unique<Impl>(std::move(aggregator_config),
                                   std::move(server_config))) {}

AggServer::~AggServer() = default;

void AggServer::start() { impl_->start(); }
void AggServer::stop() { impl_->stop(); }

std::uint16_t AggServer::port() const noexcept { return impl_->port(); }

void AggServer::with_core(const std::function<void(Aggregator&)>& fn) {
  impl_->with_core(fn);
}

std::size_t AggServer::connections() const noexcept {
  return impl_->connections();
}

}  // namespace scd::agg
