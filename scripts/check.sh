#!/usr/bin/env bash
# Repo-wide static-analysis gate.
#
# Runs, in order:
#   1. clang-format --dry-run over tracked C++ sources   (skipped if absent)
#   2. scripts/scd_lint.py project-invariant linter      (always)
#   3. -Werror build via the `ci` preset                 (always)
#   4. clang thread-safety analysis (`thread-safety`     (skipped if clang
#      preset, -Werror=thread-safety)                     absent)
#   5. clang-tidy build via the `tidy` preset            (skipped if absent)
#
# Steps whose tool is missing are reported as SKIP and do not fail the gate;
# everything that can run must pass. Exit 0 iff no runnable step failed.
#
# Usage: scripts/check.sh [--no-build] [--no-tidy] [--no-thread-safety]
#   --no-build          skip the -Werror compile (for quick pre-commit runs)
#   --no-tidy           skip clang-tidy even when installed
#   --no-thread-safety  skip the thread-safety build even when clang exists

set -u

cd "$(dirname "$0")/.."

RUN_BUILD=1
RUN_TIDY=1
RUN_TSAFETY=1
for arg in "$@"; do
  case "$arg" in
    --no-build) RUN_BUILD=0 ;;
    --no-tidy) RUN_TIDY=0 ;;
    --no-thread-safety) RUN_TSAFETY=0 ;;
    *) echo "check.sh: unknown option '$arg'" >&2; exit 2 ;;
  esac
done

FAILED=0
step() { printf '\n== %s ==\n' "$1"; }
pass() { printf -- '-- PASS: %s\n' "$1"; }
fail() { printf -- '-- FAIL: %s\n' "$1"; FAILED=1; }
skip() { printf -- '-- SKIP: %s (%s)\n' "$1" "$2"; }

# 1. Formatting ---------------------------------------------------------------
step "clang-format"
if command -v clang-format >/dev/null 2>&1; then
  mapfile -t cxx_files < <(git ls-files '*.cpp' '*.h')
  if clang-format --dry-run --Werror "${cxx_files[@]}"; then
    pass "clang-format (${#cxx_files[@]} files)"
  else
    fail "clang-format"
  fi
else
  skip "clang-format" "not installed on this host"
fi

# 2. Project linter -----------------------------------------------------------
step "scd_lint"
if python3 scripts/scd_lint.py; then
  pass "scd_lint"
else
  fail "scd_lint"
fi

# 3. -Werror build ------------------------------------------------------------
step "-Werror build (ci preset)"
if [ "$RUN_BUILD" -eq 1 ]; then
  if command -v ninja >/dev/null 2>&1; then
    if cmake --preset ci >build-ci-configure.log 2>&1 &&
       cmake --build --preset ci -j "$(nproc)" >build-ci-build.log 2>&1; then
      pass "-Werror build"
      rm -f build-ci-configure.log build-ci-build.log
    else
      fail "-Werror build (see build-ci-configure.log / build-ci-build.log)"
      tail -n 40 build-ci-build.log 2>/dev/null || tail -n 40 build-ci-configure.log
    fi
  else
    # Fall back to the default generator so hosts without ninja still gate.
    if cmake -B build-ci -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo -DSCD_WERROR=ON \
         >build-ci-configure.log 2>&1 &&
       cmake --build build-ci -j "$(nproc)" >build-ci-build.log 2>&1; then
      pass "-Werror build (makefiles fallback)"
      rm -f build-ci-configure.log build-ci-build.log
    else
      fail "-Werror build (see build-ci-configure.log / build-ci-build.log)"
      tail -n 40 build-ci-build.log 2>/dev/null || tail -n 40 build-ci-configure.log
    fi
  fi
else
  skip "-Werror build" "--no-build"
fi

# 4. clang thread-safety analysis ---------------------------------------------
# The compile-time concurrency contract (docs/CONCURRENCY.md): the SCD_*
# annotations only do their job under clang's -Wthread-safety, so this stage
# needs clang++ even when the rest of the gate runs under gcc. The lint's
# mutex-wrapper rule keeps the load-bearing annotations pinned on hosts that
# skip here; CI always has clang and never skips.
step "thread-safety (clang -Werror=thread-safety)"
if [ "$RUN_TSAFETY" -eq 0 ]; then
  skip "thread-safety" "--no-thread-safety"
elif command -v clang++ >/dev/null 2>&1; then
  if command -v ninja >/dev/null 2>&1; then
    if cmake --preset thread-safety >build-tsafety-configure.log 2>&1 &&
       cmake --build --preset thread-safety -j "$(nproc)" \
         >build-tsafety-build.log 2>&1; then
      pass "thread-safety"
      rm -f build-tsafety-configure.log build-tsafety-build.log
    else
      fail "thread-safety (see build-tsafety-configure.log / build-tsafety-build.log)"
      tail -n 40 build-tsafety-build.log 2>/dev/null || tail -n 40 build-tsafety-configure.log
    fi
  else
    if cmake -B build-tsafety -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
         -DCMAKE_CXX_COMPILER=clang++ -DSCD_THREAD_SAFETY=ON \
         >build-tsafety-configure.log 2>&1 &&
       cmake --build build-tsafety -j "$(nproc)" >build-tsafety-build.log 2>&1; then
      pass "thread-safety (makefiles fallback)"
      rm -f build-tsafety-configure.log build-tsafety-build.log
    else
      fail "thread-safety (see build-tsafety-configure.log / build-tsafety-build.log)"
      tail -n 40 build-tsafety-build.log 2>/dev/null || tail -n 40 build-tsafety-configure.log
    fi
  fi
else
  skip "thread-safety" "clang++ not installed on this host"
fi

# 5. clang-tidy ---------------------------------------------------------------
step "clang-tidy (tidy preset)"
if [ "$RUN_TIDY" -eq 0 ]; then
  skip "clang-tidy" "--no-tidy"
elif command -v clang-tidy >/dev/null 2>&1 && command -v clang++ >/dev/null 2>&1; then
  if cmake --preset tidy >build-tidy-configure.log 2>&1 &&
     cmake --build --preset tidy -j "$(nproc)" >build-tidy-build.log 2>&1; then
    pass "clang-tidy"
    rm -f build-tidy-configure.log build-tidy-build.log
  else
    fail "clang-tidy (see build-tidy-configure.log / build-tidy-build.log)"
    tail -n 40 build-tidy-build.log 2>/dev/null || tail -n 40 build-tidy-configure.log
  fi
else
  skip "clang-tidy" "clang-tidy/clang++ not installed on this host"
fi

printf '\n'
if [ "$FAILED" -ne 0 ]; then
  echo "check.sh: FAILED"
  exit 1
fi
echo "check.sh: OK"
