// Multi-router aggregation — the payoff of sketch linearity (§1.2: "sketches
// can be combined in an arithmetical sense").
//
// Three edge routers carry ECMP-split traffic toward the same host space. A
// distributed DoS sends one third of its volume through each router, so no
// single vantage point sees a dominant change. Each router exports its
// per-interval observed sketch (serialized, exactly as it would cross the
// wire); a central collector deserializes, COMBINEs them into a
// network-wide sketch stream, and runs change detection on the combined
// view — where the attack is unmistakable.
//
//   ./build/examples/multi_router
#include <cstdio>
#include <vector>

#include "common/strutil.h"
#include "core/sketch_binding.h"
#include "detect/detection.h"
#include "eval/intervalized.h"
#include "forecast/runner.h"
#include "sketch/serialize.h"
#include "traffic/synthetic.h"

namespace {

using namespace scd;

constexpr double kIntervalS = 300.0;
constexpr std::size_t kH = 5;
constexpr std::size_t kK = 32768;
constexpr std::uint64_t kSharedHashSeed = 424242;  // all exporters agree
constexpr std::uint64_t kHostSpace = 777;
constexpr std::size_t kVictimRank = 400;

traffic::SyntheticConfig router_config(std::uint64_t seed) {
  traffic::SyntheticConfig config;
  config.seed = seed;
  config.host_space_seed = kHostSpace;  // same destinations on every path
  config.duration_s = 7200.0;
  config.base_rate = 70.0;
  config.num_hosts = 20000;
  config.zipf_exponent = 1.05;
  traffic::AnomalySpec dos;  // one third of the attack on each router
  dos.kind = traffic::AnomalyKind::kDosAttack;
  dos.start_s = 4500.0;
  dos.duration_s = 600.0;
  dos.magnitude = 16.0;  // per-path share: small against local noise
  dos.target_rank = kVictimRank;
  config.anomalies.push_back(dos);
  return config;
}

// Exporters key on destination IP; the 32-bit tabulation sketch covers that
// key domain (a 64-bit key kind here would silently truncate).
static_assert(core::kSketchCoversKeyKind<sketch::KarySketch,
                                         traffic::KeyKind::kDstIp>);

/// One router's exporter: observed sketch per interval, serialized.
std::vector<std::vector<std::uint8_t>> export_sketches(
    const traffic::SyntheticConfig& config, std::size_t num_intervals) {
  traffic::SyntheticTraceGenerator generator(config);
  const auto records = generator.generate();
  const eval::IntervalizedStream stream(records, kIntervalS,
                                        traffic::KeyKind::kDstIp,
                                        traffic::UpdateKind::kBytes);
  const auto family = sketch::make_tabulation_family(kSharedHashSeed, kH);
  std::vector<std::vector<std::uint8_t>> packets;
  for (std::size_t t = 0; t < num_intervals; ++t) {
    sketch::KarySketch observed(family, kK);
    if (t < stream.num_intervals()) stream.fill_observed_sketch(t, observed);
    packets.push_back(sketch::sketch_to_bytes(observed));
  }
  return packets;
}

/// Rank (1-based) of `key` among the per-interval forecast errors estimated
/// from an error sketch, probing a fixed candidate population.
std::size_t rank_of_key(const sketch::KarySketch& error_sketch,
                        std::uint32_t key,
                        const std::vector<std::uint64_t>& candidates) {
  const auto ranked = detect::rank_by_abs_error(
      candidates,
      [&error_sketch](std::uint64_t k) { return error_sketch.estimate(k); });
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].key == key) return i + 1;
  }
  return ranked.size() + 1;
}

}  // namespace

int main() {
  constexpr std::size_t kIntervals = 24;  // 2 h at 5 min
  const std::vector<std::uint64_t> router_seeds{11, 22, 33};

  std::printf("exporting per-interval sketches from 3 routers "
              "(H=%zu, K=%zu, shared hash seed)...\n", kH, kK);
  std::vector<std::vector<std::vector<std::uint8_t>>> exports;
  for (const auto seed : router_seeds) {
    exports.push_back(export_sketches(router_config(seed), kIntervals));
  }
  const std::size_t packet_bytes = exports[0][0].size();
  std::printf("export packet: %.1f KB per router per interval\n",
              static_cast<double>(packet_bytes) / 1024.0);

  // The collector: deserialize, COMBINE, forecast, detect.
  sketch::FamilyRegistry registry;
  traffic::SyntheticTraceGenerator reference(router_config(router_seeds[0]));
  const std::uint32_t victim = reference.dst_ip_of_rank(kVictimRank);
  // Candidate population for ranking (in production this is the key replay
  // stream; here we probe the shared host space).
  std::vector<std::uint64_t> candidates;
  for (std::size_t rank = 0; rank < 20000; ++rank) {
    candidates.push_back(reference.dst_ip_of_rank(rank));
  }

  forecast::ModelConfig model;
  model.kind = forecast::ModelKind::kEwma;
  model.alpha = 0.6;

  // One runner per single-router view plus one for the combined view.
  std::vector<std::unique_ptr<forecast::ForecastRunner<sketch::KarySketch>>>
      runners;
  sketch::KarySketch prototype =
      sketch::sketch_from_bytes(exports[0][0], registry);
  prototype.set_zero();
  for (std::size_t i = 0; i < router_seeds.size() + 1; ++i) {
    runners.push_back(
        std::make_unique<forecast::ForecastRunner<sketch::KarySketch>>(
            model, prototype));
  }

  std::printf("\n%-10s %-28s %s\n", "interval",
              "victim error rank per router", "rank in combined view");
  for (std::size_t t = 0; t < kIntervals; ++t) {
    sketch::KarySketch combined = prototype;
    std::string per_router;
    bool all_ready = true;
    for (std::size_t r = 0; r < router_seeds.size(); ++r) {
      sketch::KarySketch observed =
          sketch::sketch_from_bytes(exports[r][t], registry);
      combined.add_scaled(observed, 1.0);  // COMBINE(1, S1, 1, S2, 1, S3)
      const auto step = runners[r]->step(observed);
      if (step.has_value() && t >= 15 && t <= 17) {
        per_router += common::str_format(
            "#%-5zu", rank_of_key(step->error, victim, candidates));
      } else if (!step.has_value()) {
        all_ready = false;
      }
    }
    const auto combined_step = runners.back()->step(combined);
    if (combined_step.has_value() && all_ready && t >= 15 && t <= 17) {
      std::printf("%-10zu %-28s #%zu\n", t, per_router.c_str(),
                  rank_of_key(combined_step->error, victim, candidates));
    }
  }
  std::printf("\n(attack spans intervals 15-16; per-router shares are diluted"
              "\n by local noise, the combined sketch ranks the victim at or"
              "\n near the top — without any router exporting raw records)\n");
  return 0;
}
