#include "gridsearch/grid_search.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <limits>
#include <vector>

namespace scd::gridsearch {

using scd::forecast::ModelConfig;
using scd::forecast::ModelKind;

namespace {

struct Range {
  double lo;
  double hi;
};

/// Builds a ModelConfig from a point in coefficient space; returns false if
/// the point is invalid (e.g. non-stationary ARIMA).
using PointBuilder =
    std::function<bool(const std::vector<double>&, ModelConfig&)>;

/// Evaluates every point of the Cartesian grid over `ranges` with
/// `divisions` points per dimension, tracking the best (valid) point.
void sweep_grid(const std::vector<Range>& ranges, int divisions,
                const PointBuilder& builder, const Objective& objective,
                std::vector<double>& point, std::size_t dim,
                std::vector<double>& best_point, double& best_value,
                bool& found, std::size_t& evaluations) {
  if (dim == ranges.size()) {
    ModelConfig config;
    if (!builder(point, config)) return;
    const double value = objective(config);
    ++evaluations;
    if (!found || value < best_value) {
      found = true;
      best_value = value;
      best_point = point;
    }
    return;
  }
  const Range& r = ranges[dim];
  for (int i = 0; i < divisions; ++i) {
    point[dim] =
        divisions == 1
            ? 0.5 * (r.lo + r.hi)
            : r.lo + (r.hi - r.lo) * static_cast<double>(i) /
                         static_cast<double>(divisions - 1);
    sweep_grid(ranges, divisions, builder, objective, point, dim + 1,
               best_point, best_value, found, evaluations);
  }
}

/// Multi-pass refinement: after each pass, each dimension's range shrinks to
/// +/- one grid step around the best point (clipped to the outer bounds),
/// mirroring the paper's [a0 - 0.1, a0 + 0.1] second pass.
bool refine_search(std::vector<Range> ranges, const std::vector<Range>& bounds,
                   int divisions, int passes, const PointBuilder& builder,
                   const Objective& objective, std::vector<double>& best_point,
                   double& best_value, std::size_t& evaluations) {
  bool found = false;
  std::vector<double> point(ranges.size(), 0.0);
  for (int pass = 0; pass < passes; ++pass) {
    bool pass_found = false;
    double pass_best = std::numeric_limits<double>::infinity();
    std::vector<double> pass_point(ranges.size(), 0.0);
    sweep_grid(ranges, divisions, builder, objective, point, 0, pass_point,
               pass_best, pass_found, evaluations);
    if (!pass_found) return found;
    if (!found || pass_best < best_value) {
      found = true;
      best_value = pass_best;
      best_point = pass_point;
    }
    // Narrow every dimension around this pass's best point.
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      const double step =
          divisions > 1 ? (ranges[d].hi - ranges[d].lo) /
                              static_cast<double>(divisions - 1)
                        : (ranges[d].hi - ranges[d].lo);
      ranges[d].lo = std::max(bounds[d].lo, pass_point[d] - step);
      ranges[d].hi = std::min(bounds[d].hi, pass_point[d] + step);
    }
  }
  return found;
}

GridSearchResult search_window_model(ModelKind kind, const Objective& objective,
                                     const GridSearchOptions& options) {
  GridSearchResult result;
  result.best_objective = std::numeric_limits<double>::infinity();
  for (std::size_t w = 1; w <= options.max_window; ++w) {
    ModelConfig config;
    config.kind = kind;
    config.window = w;
    const double value = objective(config);
    ++result.evaluations;
    if (value < result.best_objective) {
      result.best_objective = value;
      result.best = config;
    }
  }
  return result;
}

GridSearchResult search_smoothing_model(ModelKind kind,
                                        const Objective& objective,
                                        const GridSearchOptions& options) {
  std::size_t dims = 1;
  if (kind == ModelKind::kHoltWinters) dims = 2;
  if (kind == ModelKind::kSeasonalHoltWinters) dims = 3;
  const std::vector<Range> bounds(dims, Range{0.0, 1.0});
  const PointBuilder builder = [kind, &options](const std::vector<double>& p,
                                                ModelConfig& config) {
    config.kind = kind;
    config.alpha = p[0];
    if (p.size() > 1) config.beta = p[1];
    if (p.size() > 2) {
      config.gamma = p[2];
      config.period = options.season_period;
    }
    return config.valid();
  };
  GridSearchResult result;
  std::vector<double> best_point;
  double best_value = std::numeric_limits<double>::infinity();
  const bool found =
      refine_search(bounds, bounds, options.smoothing_divisions, options.passes,
                    builder, objective, best_point, best_value,
                    result.evaluations);
  assert(found);
  (void)found;
  ModelConfig config;
  builder(best_point, config);
  result.best = config;
  result.best_objective = best_value;
  return result;
}

GridSearchResult search_arima_model(ModelKind kind, const Objective& objective,
                                    const GridSearchOptions& options) {
  const int d = kind == ModelKind::kArima1 ? 1 : 0;
  // Every order with p, q <= 2 and at least one coefficient.
  constexpr std::array<std::pair<int, int>, 8> kOrders{
      {{1, 0}, {0, 1}, {1, 1}, {2, 0}, {0, 2}, {2, 1}, {1, 2}, {2, 2}}};
  GridSearchResult result;
  result.best_objective = std::numeric_limits<double>::infinity();
  bool any = false;
  for (const auto& [p, q] : kOrders) {
    const std::size_t dims = static_cast<std::size_t>(p + q);
    const std::vector<Range> bounds(dims, Range{-2.0, 2.0});
    const PointBuilder builder = [kind, d, p = p, q = q](
                                     const std::vector<double>& point,
                                     ModelConfig& config) {
      config.kind = kind;
      config.arima.p = p;
      config.arima.d = d;
      config.arima.q = q;
      const auto pu = static_cast<std::size_t>(p);
      const auto qu = static_cast<std::size_t>(q);
      for (std::size_t j = 0; j < pu; ++j) config.arima.ar[j] = point[j];
      for (std::size_t i = 0; i < qu; ++i) config.arima.ma[i] = point[pu + i];
      return config.valid();
    };
    std::vector<double> best_point;
    double best_value = std::numeric_limits<double>::infinity();
    if (refine_search(bounds, bounds, options.arima_divisions, options.passes,
                      builder, objective, best_point, best_value,
                      result.evaluations)) {
      if (!any || best_value < result.best_objective) {
        any = true;
        result.best_objective = best_value;
        ModelConfig config;
        builder(best_point, config);
        result.best = config;
      }
    }
  }
  assert(any);
  return result;
}

}  // namespace

GridSearchResult grid_search(ModelKind kind, const Objective& objective,
                             const GridSearchOptions& options) {
  switch (kind) {
    case ModelKind::kMovingAverage:
    case ModelKind::kSShapedMA:
      return search_window_model(kind, objective, options);
    case ModelKind::kEwma:
    case ModelKind::kHoltWinters:
    case ModelKind::kSeasonalHoltWinters:
      return search_smoothing_model(kind, objective, options);
    case ModelKind::kArima0:
    case ModelKind::kArima1:
      return search_arima_model(kind, objective, options);
  }
  return {};
}

}  // namespace scd::gridsearch
