// ParallelPipeline — sharded multi-threaded ingestion in front of the
// unchanged forecast/detect stages (docs/PARALLEL_INGEST.md).
//
// The paper's COMBINE operation (§3.1) makes the observed sketch S_o(t)
// shardable: W workers update private sketches drawn from one shared hash
// family, and at each interval boundary the per-shard sketches are merged
// with an exact linear combination. The serial ChangeDetectionPipeline then
// consumes the merged interval via ingest_interval(), so forecasting,
// thresholding, key replay, hysteresis and online re-fitting all run
// unmodified — the parallel front-end only parallelizes UPDATE, the per-
// record hot path that dominates at line rate.
//
// Interval close is asynchronous (docs/PERFORMANCE.md): closing an interval
// stamps an epoch token through the shard queues and returns; workers
// publish their finished sketches and immediately start the next epoch on a
// pooled sketch, and a dedicated merger thread COMBINE-merges each epoch
// and drives the serial stages — so the producer and the workers never
// stall on the merge. All interval-granularity callbacks (report, alarm
// provenance, interval batch, interval close) therefore run on the merger
// thread, strictly in interval order, never concurrently with each other.
// At most ParallelConfig::max_pending_intervals closed intervals may be
// outstanding before the producer blocks (bounded memory).
//
// Determinism: records are routed to shards by key, each shard queue is
// FIFO with a single producer, the merge folds shards in index order, and
// epochs are merged in order. On the same input the alarm set
// (interval, key) equals the serial pipeline's; register values agree up to
// floating-point addition order within each register (bit-exact when
// updates are integer-valued).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/pipeline.h"
#include "traffic/flow_record.h"

namespace scd::ingest {

struct ParallelConfig {
  /// Shard workers. One queue, one private sketch and one key buffer each.
  /// More workers than physical cores just adds merge and memory cost.
  std::size_t workers = 4;
  /// Per-shard queue capacity in RECORDS. Full queue = producer blocks
  /// (backpressure, never drop).
  std::size_t queue_capacity = 1 << 16;
  /// Records per producer-side chunk. The queue lock is taken once per
  /// chunk, so the per-record overhead is ~lock_cost / batch_size.
  std::size_t batch_size = 512;
  /// Upper bound on intervals that are closed but not yet merged and
  /// ingested. Closing one more blocks the producer until the merger
  /// catches up — the backpressure that bounds pooled-sketch memory at
  /// (max_pending_intervals + 1) sketch sets. 1 ≈ the old synchronous
  /// barrier; 2 (default) double-buffers a full interval of merge latency.
  std::size_t max_pending_intervals = 2;

  /// Throws std::invalid_argument when out of range or when the pipeline
  /// config is incompatible with deterministic parallel ingestion
  /// (randomize_intervals, key_sample_rate < 1).
  void validate(const core::PipelineConfig& pipeline) const;
};

/// Front-end counters, complementing the core PipelineStats.
struct ParallelStats {
  std::uint64_t records = 0;             // records accepted by add()
  std::uint64_t out_of_order_records = 0;
  std::uint64_t backpressure_waits = 0;  // chunk pushes that blocked
  std::size_t barriers = 0;              // interval-close merges
  /// Records lost because shutdown closed a shard queue while a push was
  /// blocked on capacity. Zero in any run that flush()es before destruction.
  std::uint64_t shutdown_dropped_records = 0;
};

class ParallelPipeline {
 public:
  /// Spawns the worker threads immediately. The single-threaded
  /// ChangeDetectionPipeline remains the default everywhere; this wrapper is
  /// opt-in for multi-core ingestion.
  ParallelPipeline(core::PipelineConfig config, ParallelConfig parallel);
  ~ParallelPipeline();
  ParallelPipeline(ParallelPipeline&&) noexcept;
  ParallelPipeline& operator=(ParallelPipeline&&) noexcept;

  /// Same contract as ChangeDetectionPipeline::add — including the
  /// out-of-order clamp — but the sketch UPDATE happens on a shard worker.
  void add(std::uint64_t key, double update, double time_s);
  void add_record(const traffic::FlowRecord& record);

  /// Anchors the interval grid at `time_s` before any record arrives. By
  /// default the first record's timestamp opens interval 0, which is right
  /// for a single vantage point but wrong for the aggregation tier: every
  /// node must cut intervals on the SAME boundaries or their sketches are
  /// not COMBINE-compatible (docs/DISTRIBUTED.md). Records earlier than the
  /// anchor are clamped like any out-of-order record; a quiet node closes
  /// leading empty intervals as time advances. Throws std::logic_error once
  /// the stream has started.
  void start_at(double time_s);

  /// Closes the interval in progress, waits for every outstanding epoch to
  /// be merged and ingested, and flushes the serial stages. Call once at
  /// end of stream. Also the synchronization point for the accessors below:
  /// reports()/stats()/position()/save_state() are safe after flush() (or
  /// from inside an interval callback), not concurrently with merging.
  void flush();

  /// Blocks until every interval closed so far has been merged, ingested,
  /// and had its callbacks run, WITHOUT closing the open interval. After
  /// drain() the merger is idle, so replacing or detaching callbacks is
  /// safe; Shipper and CheckpointWriter drain-and-detach automatically in
  /// their destructors. Rethrows a pending merge/callback failure.
  void drain();

  [[nodiscard]] const std::vector<core::IntervalReport>& reports()
      const noexcept;
  void set_report_callback(
      std::function<void(const core::IntervalReport&)> callback);

  /// Forwards to the serial engine's alarm-provenance hook: one record per
  /// alarm with the full evidence chain (see core pipeline docs). Runs on
  /// the merger thread while the interval's merge is consumed.
  void set_alarm_provenance_callback(
      std::function<void(const detect::AlarmProvenance&)> callback);

  /// Invoked for every closed interval with the 0-based interval index and
  /// the COMBINE-merged batch (registers, distinct keys, record count),
  /// BEFORE the serial stages consume it. This is the export tap of the
  /// aggregation tier: a node-side shipper serializes the batch and ships
  /// it, and because shipping completes before the serial ingest and the
  /// checkpoint callback run, a crash can only ever lose work the
  /// aggregator will see again on replay (dedup by (node, interval) makes
  /// the re-ship harmless — docs/DISTRIBUTED.md). Runs on the merger
  /// thread, in interval order; a throw from the callback fails the stream
  /// (rethrown from the next add()/flush()).
  void set_interval_batch_callback(
      std::function<void(std::uint64_t, const core::IntervalBatch&)> callback);

  /// Invoked once per closed interval, after the merged batch has been
  /// ingested by the serial stages — the point where the pipeline state
  /// visible to save_state() is serial-equivalent for that interval.
  /// Checkpointing layers hook here; the argument is the number of
  /// intervals closed so far. Runs on the merger thread, in interval order.
  /// Distinct from the serial engine's own interval-close callback, which
  /// would fire before the front-end position advanced.
  void set_interval_close_callback(std::function<void(std::size_t)> callback);

  /// Serializes front-end position and counters plus the full serial-engine
  /// snapshot. Only legal at an interval boundary: from the interval-close
  /// callback (where it captures exactly the just-ingested interval's
  /// position, even though the producer may already be filling later
  /// epochs), after flush(), or before the first record. Throws
  /// std::logic_error when records have been accepted since the last close
  /// or closed intervals are still being merged. Worker count and queue
  /// sizing are NOT part of the state — a snapshot restores into a
  /// ParallelPipeline with any ParallelConfig, or even into a plain serial
  /// feed of the same PipelineConfig.
  [[nodiscard]] std::vector<std::uint8_t> save_state() const;

  /// Restores a save_state() stream. Same contract as
  /// ChangeDetectionPipeline::restore_state: the pipeline must be freshly
  /// constructed with the same PipelineConfig, callbacks are installed
  /// after; throws sketch::SerializeError on malformed input or config
  /// mismatch.
  void restore_state(const std::vector<std::uint8_t>& bytes);

  /// Current stream position; after restore_state, tells the feeder where
  /// to resume.
  [[nodiscard]] core::StreamPosition position() const noexcept;

  /// Core counters (records, alarms, ...) with out_of_order_records folded
  /// in from the front-end.
  [[nodiscard]] core::PipelineStats stats() const noexcept;
  [[nodiscard]] ParallelStats parallel_stats() const noexcept;

  [[nodiscard]] const core::PipelineConfig& config() const noexcept;
  [[nodiscard]] const ParallelConfig& parallel_config() const noexcept;
  [[nodiscard]] const forecast::ModelConfig& active_model() const noexcept;

 private:
  class Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace scd::ingest
