// Multi-pass grid search for forecast-model parameters (§3.4.2, §4.2).
//
// The objective is supplied by the caller — in the paper (and in our eval
// drivers) it is the estimated total energy of the forecast-error sketches,
// sum_t ESTIMATEF2(S_e(t)), computed with H=1, K=8192. The search:
//   * integral windows (MA, SMA): exhaustive sweep of W in [1, max_window];
//   * continuous parameters (EWMA, NSHW): `passes` passes, each dividing the
//     current range into `smoothing_divisions` parts and re-centering on the
//     best point (paper: 10 parts, 2 passes);
//   * ARIMA: the same per-coefficient refinement with `arima_divisions`
//     parts (paper: 7, to bound the larger search space), over every order
//     (p, q) with p, q <= 2, p + q >= 1, skipping coefficient points that
//     violate stationarity/invertibility.
#pragma once

#include <cstddef>
#include <functional>

#include "forecast/model_config.h"

namespace scd::gridsearch {

struct GridSearchOptions {
  int passes = 2;
  int smoothing_divisions = 10;
  int arima_divisions = 7;
  /// Maximum MA/SMA window; paper uses 10 for 300 s intervals, 12 for 60 s.
  std::size_t max_window = 10;
  /// Season length (intervals) used when searching the seasonal
  /// Holt-Winters extension; the period itself is not searched.
  std::size_t season_period = 24;
};

/// Maps a candidate parameterization to its objective value (lower = better).
using Objective = std::function<double(const scd::forecast::ModelConfig&)>;

struct GridSearchResult {
  scd::forecast::ModelConfig best;
  double best_objective = 0.0;
  std::size_t evaluations = 0;
};

/// Finds the parameterization of `kind` minimizing `objective`.
[[nodiscard]] GridSearchResult grid_search(scd::forecast::ModelKind kind,
                                           const Objective& objective,
                                           const GridSearchOptions& options = {});

}  // namespace scd::gridsearch
