// Extension (§3.3, option 4): recovering changed keys directly from a
// group-testing sketch instead of replaying a key stream. Measures, against
// the two-pass k-ary baseline on the small router:
//   * recall of the top per-flow changers,
//   * precision of the recovered set,
//   * the cost multiple (update throughput and memory), which the paper
//     predicted would be the scheme's drawback.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>
#include <vector>

#include "common/timer.h"
#include "detect/detection.h"
#include "forecast/runner.h"
#include "sketch/group_testing.h"
#include "support/bench_util.h"
#include "support/experiments.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Extension: sketch-only key recovery",
      "group-testing sketch vs two-pass replay (small router, 300s, EWMA)",
      "recovers the large changers with high precision at ~33x update cost");

  const double interval = 300.0;
  const auto& stream = bench::stream_for("small", interval);
  const auto model =
      bench::cached_grid_model("small", interval, forecast::ModelKind::kEwma);
  const std::size_t warmup = bench::warmup_intervals(interval);
  const auto& truth = bench::truth_for(stream, model);

  constexpr std::size_t kH = 5;
  constexpr std::size_t kK = 4096;
  const auto family =
      std::make_shared<const hash::TabulationHashFamily>(0x6007e57, kH);
  const sketch::GroupTestingSketch prototype(family, kK);
  forecast::ForecastRunner<sketch::GroupTestingSketch> runner(model, prototype);

  double recall_sum = 0.0, precision_sum = 0.0;
  std::size_t evaluated = 0;
  for (std::size_t t = 0; t < stream.num_intervals(); ++t) {
    sketch::GroupTestingSketch observed = prototype;
    for (const auto& u : stream.interval(t)) {
      observed.update(static_cast<std::uint32_t>(u.key), u.value);
    }
    const auto step = runner.step(observed);
    if (!step.has_value() || t < warmup || !truth.intervals[t].ready) continue;
    const double l2 = std::sqrt(std::max(step->error.estimate_f2(), 0.0));
    const double threshold = 0.10 * l2;
    const auto recovered = step->error.recover(threshold);
    std::unordered_set<std::uint64_t> recovered_keys;
    for (const auto& r : recovered) recovered_keys.insert(r.key);
    // Ground truth: per-flow changers above the same absolute threshold,
    // using the exact per-flow L2.
    const double pf_l2 = std::sqrt(std::max(truth.intervals[t].f2, 0.0));
    const auto flagged = detect::above_threshold(truth.intervals[t].ranked,
                                                 0.10, pf_l2);
    if (flagged.empty()) continue;
    std::size_t hit = 0;
    for (const auto& e : flagged) {
      if (recovered_keys.contains(e.key)) ++hit;
    }
    recall_sum += static_cast<double>(hit) / static_cast<double>(flagged.size());
    std::unordered_set<std::uint64_t> flagged_keys;
    for (const auto& e : flagged) flagged_keys.insert(e.key);
    std::size_t correct = 0;
    for (const auto key : recovered_keys) {
      if (flagged_keys.contains(key)) ++correct;
    }
    precision_sum += recovered_keys.empty()
                         ? 1.0
                         : static_cast<double>(correct) /
                               static_cast<double>(recovered_keys.size());
    ++evaluated;
  }
  const double recall = recall_sum / static_cast<double>(evaluated);
  const double precision = precision_sum / static_cast<double>(evaluated);
  std::printf("intervals evaluated: %zu\n", evaluated);
  std::printf("recall of per-flow changers (T=0.10): %.3f\n", recall);
  std::printf("precision of recovered keys:          %.3f\n", precision);

  // Cost comparison: UPDATE throughput, group-testing vs plain k-ary.
  const auto kary_family = sketch::make_tabulation_family(0x6007e57, kH);
  sketch::KarySketch kary(kary_family, kK);
  sketch::GroupTestingSketch group(family, kK);
  constexpr int kOps = 1'000'000;
  common::Stopwatch sw;
  for (int i = 0; i < kOps; ++i) kary.update(static_cast<std::uint32_t>(i), 1.0);
  const double kary_s = sw.seconds();
  sw.reset();
  for (int i = 0; i < kOps; ++i) {
    group.update(static_cast<std::uint32_t>(i), 1.0);
  }
  const double group_s = sw.seconds();
  std::printf("UPDATE cost: k-ary %.0f ns/op, group-testing %.0f ns/op "
              "(%.1fx); memory %.1fx\n",
              kary_s / kOps * 1e9, group_s / kOps * 1e9, group_s / kary_s,
              static_cast<double>(group.table_bytes()) /
                  static_cast<double>(kary.table_bytes()));

  bench::check(recall > 0.6,
               "sketch-only recovery finds most significant changers",
               common::str_format("recall=%.3f", recall));
  bench::check(precision > 0.6, "recovered keys are mostly real changers",
               common::str_format("precision=%.3f", precision));
  bench::check(group_s / kary_s > 2.0,
               "key recovery costs a significant update-time multiple "
               "(the paper's predicted drawback)",
               common::str_format("%.1fx", group_s / kary_s));
  return bench::finish();
}
