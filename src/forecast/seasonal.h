// Seasonal Holt-Winters (additive) — an extension beyond the paper's six
// models. The paper's NSHW reference [9] (Brutlag) actually runs the
// seasonal variant for daily/weekly network cycles; like every model here it
// is a fixed linear combination of past observations, so it runs on sketches
// unchanged.
//
//   level(t)  = alpha * (o_t - season(t - m)) + (1-alpha) * (level + trend)
//   trend(t)  = beta * (level(t) - level(t-1)) + (1-beta) * trend(t-1)
//   season(t) = gamma * (o_t - level(t)) + (1-gamma) * season(t - m)
//   forecast(t+1) = level(t) + trend(t) + season(t + 1 - m)
//
// Initialization: the first m observations seed the level (their mean) and
// the seasonal profile (deviation of each from the mean); trend starts at
// zero. The model is ready after m observations.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "forecast/linear_space.h"
#include "forecast/model.h"
#include "forecast/ring.h"

namespace scd::forecast {

template <LinearSignal V>
class SeasonalHoltWintersModel final : public ForecastModel<V> {
 public:
  SeasonalHoltWintersModel(double alpha, double beta, double gamma,
                           std::size_t period, const V& prototype)
      : alpha_(alpha),
        beta_(beta),
        gamma_(gamma),
        period_(period),
        level_(zero_like(prototype)),
        trend_(zero_like(prototype)),
        seasons_(period),
        warmup_(period) {
    assert(alpha_ >= 0.0 && alpha_ <= 1.0);
    assert(beta_ >= 0.0 && beta_ <= 1.0);
    assert(gamma_ >= 0.0 && gamma_ <= 1.0);
    assert(period_ >= 2);
  }

  [[nodiscard]] bool ready() const noexcept override {
    return count_ >= period_;
  }

  void forecast_into(V& out) const override {
    assert(ready());
    out = level_;
    out.add_scaled(trend_, 1.0);
    // season(t+1-m): the oldest live seasonal slot.
    out.add_scaled(seasons_.back(period_), 1.0);
  }

  void observe(const V& observed) override {
    if (count_ < period_) {
      warmup_.push(observed);
      ++count_;
      if (count_ == period_) initialize();
      return;
    }
    // Standard additive recurrences; season(t-m) is the oldest slot.
    const V& old_season = seasons_.back(period_);
    V prev_forecast_base = level_;          // level(t-1) + trend(t-1)
    prev_forecast_base.add_scaled(trend_, 1.0);
    V prev_level = level_;

    level_ = observed;                       // alpha*(o - season(t-m)) + ...
    level_.add_scaled(old_season, -1.0);
    level_.scale(alpha_);
    level_.add_scaled(prev_forecast_base, 1.0 - alpha_);

    V delta = subtract(level_, prev_level);
    trend_.scale(1.0 - beta_);
    trend_.add_scaled(delta, beta_);

    V new_season = subtract(observed, level_);
    new_season.scale(gamma_);
    new_season.add_scaled(old_season, 1.0 - gamma_);
    seasons_.push(new_season);
    ++count_;
  }

  [[nodiscard]] std::size_t observed_count() const noexcept override {
    return count_;
  }

  void save_state(StateWriter<V>& out) const override {
    out.write_u64(count_);
    out.write_signal(level_);
    out.write_signal(trend_);
    save_ring(out, seasons_);
    save_ring(out, warmup_);
  }
  void restore_state(StateReader<V>& in) override {
    count_ = in.read_u64();
    in.read_signal(level_);
    in.read_signal(trend_);
    load_ring(in, seasons_, zero_like(level_));
    load_ring(in, warmup_, zero_like(level_));
  }

 private:
  void initialize() {
    // level = mean of the first m observations; season_i = o_i - level.
    V mean = zero_like(level_);
    const double w = 1.0 / static_cast<double>(period_);
    for (std::size_t ago = 1; ago <= period_; ++ago) {
      mean.add_scaled(warmup_.back(ago), w);
    }
    level_ = mean;
    trend_.set_zero();
    for (std::size_t ago = period_; ago >= 1; --ago) {  // oldest first
      seasons_.push(subtract(warmup_.back(ago), mean));
    }
  }

  double alpha_;
  double beta_;
  double gamma_;
  std::size_t period_;
  V level_;
  V trend_;
  HistoryRing<V> seasons_;
  HistoryRing<V> warmup_;
  std::size_t count_ = 0;
};

}  // namespace scd::forecast
