#include "traffic/csv_import.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <stdexcept>

#include "common/strutil.h"
#include "traffic/flow_record.h"

namespace scd::traffic {

namespace {

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') return false;
  out = v;
  return true;
}

std::string strip(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

bool parse_flow_csv_line(const std::string& line, FlowRecord& out,
                         std::string& error) {
  const auto fields = scd::common::split(line, ',');
  if (fields.size() != 8) {
    error = scd::common::str_format("expected 8 fields, got %zu",
                                    fields.size());
    return false;
  }
  double time_s = 0.0;
  if (!parse_double(strip(fields[0]), time_s) || time_s < 0.0) {
    error = "bad time: " + fields[0];
    return false;
  }
  FlowRecord r;
  r.timestamp_us = static_cast<std::uint64_t>(time_s * 1e6);
  if (!scd::common::parse_ipv4(strip(fields[1]), r.src_ip)) {
    error = "bad src_ip: " + fields[1];
    return false;
  }
  if (!scd::common::parse_ipv4(strip(fields[2]), r.dst_ip)) {
    error = "bad dst_ip: " + fields[2];
    return false;
  }
  std::uint64_t sport = 0, dport = 0, proto = 0, packets = 0, bytes = 0;
  if (!parse_u64(strip(fields[3]), sport) || sport > 65535) {
    error = "bad src_port: " + fields[3];
    return false;
  }
  if (!parse_u64(strip(fields[4]), dport) || dport > 65535) {
    error = "bad dst_port: " + fields[4];
    return false;
  }
  if (!parse_u64(strip(fields[5]), proto) || proto > 255) {
    error = "bad protocol: " + fields[5];
    return false;
  }
  if (!parse_u64(strip(fields[6]), packets) || packets == 0 ||
      packets > 0xffffffffULL) {
    error = "bad packets: " + fields[6];
    return false;
  }
  if (!parse_u64(strip(fields[7]), bytes)) {
    error = "bad bytes: " + fields[7];
    return false;
  }
  r.src_port = static_cast<std::uint16_t>(sport);
  r.dst_port = static_cast<std::uint16_t>(dport);
  r.protocol = static_cast<std::uint8_t>(proto);
  r.packets = static_cast<std::uint32_t>(packets);
  r.bytes = bytes;
  out = r;
  return true;
}

std::vector<FlowRecord> read_flow_csv(std::istream& in) {
  std::vector<FlowRecord> records;
  std::string line;
  std::size_t line_number = 0;
  bool first_data_line = true;
  while (std::getline(in, line)) {
    ++line_number;
    const std::string trimmed = strip(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    FlowRecord record;
    std::string error;
    if (!parse_flow_csv_line(trimmed, record, error)) {
      if (first_data_line) {
        // Tolerate a header row ("time,src_ip,...").
        first_data_line = false;
        continue;
      }
      throw std::runtime_error(scd::common::str_format(
          "csv line %zu: %s", line_number, error.c_str()));
    }
    first_data_line = false;
    records.push_back(record);
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const FlowRecord& a, const FlowRecord& b) {
                     return a.timestamp_us < b.timestamp_us;
                   });
  return records;
}

std::vector<FlowRecord> read_flow_csv_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open csv file: " + path);
  return read_flow_csv(in);
}

}  // namespace scd::traffic
