#include "sketch/serialize.h"

#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "hash/cw_hash.h"
#include "hash/tabulation_hash.h"
#include "sketch/kary_sketch.h"

namespace scd::sketch {

namespace {

template <typename T>
void put(std::ostream& out, T value) {
  // Little-endian byte-by-byte so the format is host-independent.
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.put(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

template <typename T>
T get(std::istream& in) {
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int byte = in.get();
    if (byte == std::char_traits<char>::eof()) {
      throw SerializeError(SerializeErrorKind::kTruncated, "truncated input");
    }
    value = static_cast<T>(value |
                           (static_cast<T>(static_cast<unsigned char>(byte))
                            << (8 * i)));
  }
  return value;
}

void put_double(std::ostream& out, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof(bits));
  put(out, bits);
}

double get_double(std::istream& in) {
  const std::uint64_t bits = get<std::uint64_t>(in);
  double d = 0.0;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

template <typename Sketch>
void write_impl(std::ostream& out, const Sketch& sketch, FamilyKind kind) {
  put(out, kSketchMagic);
  put(out, kSketchVersion);
  put(out, static_cast<std::uint8_t>(kind));
  put(out, sketch.family()->seed());
  put(out, static_cast<std::uint32_t>(sketch.depth()));
  put(out, static_cast<std::uint32_t>(sketch.width()));
  for (const double v : sketch.registers()) put_double(out, v);
  // Invertible family kinds carry the vote state after the registers.
  if constexpr (requires { sketch.candidates(); }) {
    for (const std::uint64_t c : sketch.candidates()) put(out, c);
    for (const double v : sketch.votes()) put_double(out, v);
  }
  if (!out) {
    throw SerializeError(SerializeErrorKind::kWriteFailed, "write failed");
  }
}

struct Header {
  FamilyKind kind;
  std::uint64_t seed;
  std::size_t rows;
  std::size_t k;
};

Header read_header(std::istream& in) {
  if (get<std::uint32_t>(in) != kSketchMagic) {
    throw SerializeError(SerializeErrorKind::kBadMagic, "bad magic");
  }
  if (get<std::uint32_t>(in) != kSketchVersion) {
    throw SerializeError(SerializeErrorKind::kBadVersion,
                         "unsupported version");
  }
  Header h{};
  // Validate the raw byte before casting into the enum: a cast to FamilyKind
  // from an out-of-range value is unspecified for comparison purposes.
  const auto kind_byte = get<std::uint8_t>(in);
  if (kind_byte > static_cast<std::uint8_t>(FamilyKind::kMvCarterWegman)) {
    throw SerializeError(SerializeErrorKind::kBadFamilyKind,
                         "unknown family kind");
  }
  h.kind = static_cast<FamilyKind>(kind_byte);
  h.seed = get<std::uint64_t>(in);
  h.rows = get<std::uint32_t>(in);
  h.k = get<std::uint32_t>(in);
  if (!hash::valid_bucket_count(h.k) || h.k < 2 || h.rows < 1 ||
      h.rows > kMaxRows) {
    throw SerializeError(SerializeErrorKind::kBadDimensions,
                         "invalid dimensions");
  }
  return h;
}

template <typename Sketch>
Sketch read_body(std::istream& in, const Header& header,
                 typename Sketch::FamilyPtr family) {
  Sketch sketch(std::move(family), header.k);
  std::vector<double> registers(header.rows * header.k);
  for (double& v : registers) {
    v = get_double(in);
    if (!std::isfinite(v)) {
      // A register can never legitimately be NaN/Inf: UPDATE adds finite
      // deltas. Reject rather than let the poison spread through COMBINE.
      throw SerializeError(SerializeErrorKind::kCorruptRegisters,
                           "non-finite register value");
    }
  }
  sketch.load_registers(registers);
  // Invertible family kinds: candidates + votes follow the registers.
  if constexpr (requires { sketch.candidates(); }) {
    const std::size_t cells = header.rows * header.k;
    std::vector<std::uint64_t> candidates(cells);
    for (std::uint64_t& c : candidates) {
      c = get<std::uint64_t>(in);
      if constexpr (Sketch::kKeyBits < 64) {
        if ((c >> Sketch::kKeyBits) != 0) {
          throw SerializeError(SerializeErrorKind::kCorruptRegisters,
                               "candidate key exceeds the family key domain");
        }
      }
    }
    std::vector<double> votes(cells);
    for (double& v : votes) {
      v = get_double(in);
      // A vote is an accumulated absolute mass: finite and nonnegative by
      // construction. Anything else is corruption or a hostile packet.
      if (!std::isfinite(v) || v < 0.0) {
        throw SerializeError(SerializeErrorKind::kCorruptRegisters,
                             "invalid vote value");
      }
    }
    sketch.load_aux(candidates, votes);
  }
  return sketch;
}

}  // namespace

KarySketch::FamilyPtr FamilyRegistry::tabulation(std::uint64_t seed,
                                                 std::size_t rows) {
  auto& slot = tabulation_[{seed, rows}];
  if (!slot) {
    slot = std::make_shared<hash::TabulationHashFamily>(seed, rows);
  }
  return slot;
}

KarySketch64::FamilyPtr FamilyRegistry::carter_wegman(std::uint64_t seed,
                                                      std::size_t rows) {
  auto& slot = cw_[{seed, rows}];
  if (!slot) {
    slot = std::make_shared<hash::CwHashFamily>(seed, rows);
  }
  return slot;
}

void write_sketch(std::ostream& out, const KarySketch& sketch) {
  write_impl(out, sketch, FamilyKind::kTabulation);
}

void write_sketch(std::ostream& out, const KarySketch64& sketch) {
  write_impl(out, sketch, FamilyKind::kCarterWegman);
}

void write_sketch(std::ostream& out, const MvSketch& sketch) {
  write_impl(out, sketch, FamilyKind::kMvTabulation);
}

void write_sketch(std::ostream& out, const MvSketch64& sketch) {
  write_impl(out, sketch, FamilyKind::kMvCarterWegman);
}

KarySketch read_sketch32(std::istream& in, FamilyRegistry& registry) {
  const Header header = read_header(in);
  if (header.kind != FamilyKind::kTabulation) {
    throw SerializeError(SerializeErrorKind::kFamilyMismatch,
                         "expected tabulation family");
  }
  return read_body<KarySketch>(in, header,
                               registry.tabulation(header.seed, header.rows));
}

KarySketch64 read_sketch64(std::istream& in, FamilyRegistry& registry) {
  const Header header = read_header(in);
  if (header.kind != FamilyKind::kCarterWegman) {
    throw SerializeError(SerializeErrorKind::kFamilyMismatch,
                         "expected Carter-Wegman family");
  }
  return read_body<KarySketch64>(
      in, header, registry.carter_wegman(header.seed, header.rows));
}

MvSketch read_mv_sketch32(std::istream& in, FamilyRegistry& registry) {
  const Header header = read_header(in);
  if (header.kind != FamilyKind::kMvTabulation) {
    throw SerializeError(SerializeErrorKind::kFamilyMismatch,
                         "expected invertible tabulation family");
  }
  return read_body<MvSketch>(in, header,
                             registry.tabulation(header.seed, header.rows));
}

MvSketch64 read_mv_sketch64(std::istream& in, FamilyRegistry& registry) {
  const Header header = read_header(in);
  if (header.kind != FamilyKind::kMvCarterWegman) {
    throw SerializeError(SerializeErrorKind::kFamilyMismatch,
                         "expected invertible Carter-Wegman family");
  }
  return read_body<MvSketch64>(
      in, header, registry.carter_wegman(header.seed, header.rows));
}

std::vector<std::uint8_t> sketch_to_bytes(const KarySketch& sketch) {
  std::ostringstream out(std::ios::binary);
  write_sketch(out, sketch);
  const std::string str = out.str();
  return {str.begin(), str.end()};
}

KarySketch sketch_from_bytes(const std::vector<std::uint8_t>& bytes,
                             FamilyRegistry& registry) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()),
                        std::ios::binary);
  KarySketch sketch = read_sketch32(in, registry);
  if (in.peek() != std::char_traits<char>::eof()) {
    throw SerializeError(SerializeErrorKind::kTrailingBytes,
                         "trailing bytes after sketch payload");
  }
  return sketch;
}

std::vector<std::uint8_t> mv_sketch_to_bytes(const MvSketch& sketch) {
  std::ostringstream out(std::ios::binary);
  write_sketch(out, sketch);
  const std::string str = out.str();
  return {str.begin(), str.end()};
}

MvSketch mv_sketch_from_bytes(const std::vector<std::uint8_t>& bytes,
                              FamilyRegistry& registry) {
  std::istringstream in(std::string(bytes.begin(), bytes.end()),
                        std::ios::binary);
  MvSketch sketch = read_mv_sketch32(in, registry);
  if (in.peek() != std::char_traits<char>::eof()) {
    throw SerializeError(SerializeErrorKind::kTrailingBytes,
                         "trailing bytes after sketch payload");
  }
  return sketch;
}

}  // namespace scd::sketch
