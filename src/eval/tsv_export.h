// TSV export of experiment series — lets the bench binaries drop
// plot-ready files next to their stdout output. Files are only written when
// enabled (the benches key off $SCD_OUT_DIR), so normal runs stay clean.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace scd::eval {

class TsvWriter {
 public:
  /// Opens (truncates) path and writes a '#'-prefixed header row. Throws
  /// std::runtime_error if the file cannot be created.
  TsvWriter(const std::string& path, const std::vector<std::string>& columns);

  /// Appends one row; must match the header's column count (asserted).
  void row(const std::vector<double>& values);
  void row(const std::vector<std::string>& values);

  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

 private:
  std::ofstream out_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

/// Directory for exported series; empty when export is disabled. Reads
/// $SCD_OUT_DIR once per process.
[[nodiscard]] const std::string& tsv_export_dir();

}  // namespace scd::eval
