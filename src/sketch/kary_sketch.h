// k-ary sketch (paper §3.1) — the paper's core data structure.
//
// An H x K table of double registers; row i is paired with an independent
// 4-universal hash function h_i. The four operations of §3.1 are provided:
//
//   UPDATE(S, a, u):    T[i][h_i(a)] += u for all rows
//   ESTIMATE(S, a):     median_i (T[i][h_i(a)] - sum/K) / (1 - 1/K)
//   ESTIMATEF2(S):      median_i K/(K-1) * sum_j T[i][j]^2 - sum^2/(K-1)
//   COMBINE(c_l, S_l):  entry-wise linear combination
//
// Per-row estimates are unbiased with variance <= F2/(K-1) (Appendix A/B);
// the median across rows makes the probability of an extreme estimate
// exponentially small in H.
//
// The hash family is shared (by shared_ptr) among all sketches that must be
// COMBINEd — linear combination is only meaningful between sketches drawn
// with identical hash functions, and sharing also keeps the tabulation
// tables' memory cost amortized across the whole forecasting pipeline.
//
// Key-domain constraint: a family declares the key width it hashes faithfully
// (Family::kKeyBits). TabulationHashFamily covers 32-bit keys only; feeding it
// a wider key would silently truncate and collide two distinct keys. Use
// KarySketch64 (Carter-Wegman) for 64-bit key kinds — the pipeline's
// key_fits_32bit dispatch and core/sketch_binding.h's compile-time mapping
// both enforce this binding; debug builds additionally assert it per call.
//
// Structural misuse (mismatched register spans in load_registers, combining
// sketches of different family or width) throws std::invalid_argument in all
// build types — these paths are cold, and an unchecked mismatch is an
// out-of-bounds write in release builds.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "hash/cw_hash.h"
#include "hash/hash_family.h"
#include "hash/tabulation_hash.h"
#include "sketch/median.h"
#include "simd/kernels.h"

namespace scd::sketch {

inline constexpr std::size_t kMaxRows = 32;  // paper uses H <= 25

/// One (key, update) stream item — the unit of batched UPDATE. Shared with
/// the ingest front-end (ingest::Record is an alias) so shard workers can
/// hand whole dequeued chunks to update_batch without copying.
struct Record {
  std::uint64_t key = 0;
  double update = 0.0;
};

template <hash::HashFamily16 Family>
class BasicKarySketch {
 public:
  using FamilyPtr = std::shared_ptr<const Family>;
  using FamilyType = Family;

  /// Widest key (in bits) the hash family evaluates without truncation.
  static constexpr unsigned kKeyBits = Family::kKeyBits;

  /// K must be a power of two in [2, 2^16]; the family supplies H = rows().
  /// Throws std::invalid_argument on a null family or out-of-range shape.
  BasicKarySketch(FamilyPtr family, std::size_t k)
      : family_(std::move(family)), k_(k) {
    if (family_ == nullptr) {
      throw std::invalid_argument("BasicKarySketch: null hash family");
    }
    if (!hash::valid_bucket_count(k_) || k_ < 2) {
      throw std::invalid_argument(
          "BasicKarySketch: k must be a power of two in [2, 65536]");
    }
    if (family_->rows() < 1 || family_->rows() > kMaxRows) {
      throw std::invalid_argument("BasicKarySketch: rows must be in [1, 32]");
    }
    table_.assign(family_->rows() * k_, 0.0);
  }

  // The sum cache is atomic (see sum()), which deletes the implicit
  // copy/move members; these restore them. The table/family copies are
  // plain; only the cache fields need explicit atomic loads. Copying
  // concurrently with reads is safe; copying concurrently with mutation is
  // a race on table_ itself and was never supported.
  BasicKarySketch(const BasicKarySketch& other)
      : family_(other.family_), k_(other.k_), table_(other.table_) {
    copy_sum_cache(other);
  }
  BasicKarySketch& operator=(const BasicKarySketch& other) {
    if (this != &other) {
      family_ = other.family_;
      k_ = other.k_;
      table_ = other.table_;
      copy_sum_cache(other);
    }
    return *this;
  }
  BasicKarySketch(BasicKarySketch&& other) noexcept
      : family_(std::move(other.family_)),
        k_(other.k_),
        table_(std::move(other.table_)) {
    copy_sum_cache(other);
  }
  BasicKarySketch& operator=(BasicKarySketch&& other) noexcept {
    if (this != &other) {
      family_ = std::move(other.family_);
      k_ = other.k_;
      table_ = std::move(other.table_);
      copy_sum_cache(other);
    }
    return *this;
  }
  ~BasicKarySketch() = default;

  [[nodiscard]] std::size_t depth() const noexcept { return family_->rows(); }
  [[nodiscard]] std::size_t width() const noexcept { return k_; }
  [[nodiscard]] const FamilyPtr& family() const noexcept { return family_; }

  /// Records hashed (and applied) per block inside update_batch. The block
  /// must comfortably exceed the cache lines in one row (K/8: 512 lines at
  /// K=4096) — each row sweep pulls the row into L1 once, so the larger the
  /// block, the more scattered adds amortize that fill; at 4096 records the
  /// sweep revisits each line ~8x at K=4096. The per-block hash scratch
  /// (kUpdateBlock x ceil(H/4) packed u64) lives in thread-local storage.
  static constexpr std::size_t kUpdateBlock = 4096;
  /// How many records ahead of the applying index the target register is
  /// software-prefetched within a row sweep.
  static constexpr std::size_t kPrefetchLead = 16;

  /// UPDATE — adds u to the key's register in every row. `key` must fit the
  /// family's key domain (kKeyBits); checked in debug builds.
  void update(std::uint64_t key, double u) noexcept {
    assert_key_in_domain(key);
    const std::size_t h = depth();
    const std::uint64_t mask = k_ - 1;
    if constexpr (requires(const Family f, std::uint32_t k32, std::uint16_t* o) {
                    f.hash_all(k32, o);
                  }) {
      // Batched path (tabulation): one packed lookup per 4 rows.
      std::array<std::uint16_t, kMaxRows> hv;
      family_->hash_all(static_cast<std::uint32_t>(key), hv.data());
      for (std::size_t i = 0; i < h; ++i) table_[i * k_ + (hv[i] & mask)] += u;
    } else {
      for (std::size_t i = 0; i < h; ++i) {
        table_[i * k_ + (family_->hash16(i, key) & mask)] += u;
      }
    }
    // mo: mutation invalidates the cache; mutators are single-threaded by
    // contract, so no ordering against the table writes is needed.
    sum_valid_.store(false, std::memory_order_relaxed);
  }

  /// Batched UPDATE: applies every record of the chunk, bit-identically to
  /// calling update() record by record (each register receives its updates
  /// in record order). Processes kUpdateBlock records at a time in two
  /// passes — hash-batch all keys of the block first (one packed tabulation
  /// lookup per 4 rows per key), then sweep the table one ROW at a time
  /// applying the block's scattered adds with a short software prefetch
  /// lead. The row sweep is the point: the per-record path touches H rows
  /// spread over the whole H x K x 8 B table per record, while the sweep
  /// concentrates kUpdateBlock scattered adds on one row, filling each of
  /// the row's K/8 cache lines into L1 once per ~(kUpdateBlock * 8 / K)
  /// adds. Grows a thread-local hash scratch on first use (an allocation
  /// failure there terminates, as this path is noexcept).
  void update_batch(std::span<const Record> records) noexcept {
    const std::size_t h = depth();
    const std::uint64_t mask = k_ - 1;
    // Software-prefetch the sweep's target registers only when the row is
    // bigger than the block covers: then nearly every add lands on a cold
    // line and the lookahead hides the fetch. For smaller K each line is
    // revisited ~(kUpdateBlock * 8 / K) times per block and the redundant
    // prefetches measurably slow the sweep (bench_kernel_throughput).
    const bool prefetch_rows = k_ >= 8 * kUpdateBlock;
    const Family& family = *family_;
    for (std::size_t base = 0; base < records.size(); base += kUpdateBlock) {
      const std::size_t n = std::min(kUpdateBlock, records.size() - base);
      const Record* block = records.data() + base;
      if constexpr (requires(const Family f, std::uint32_t k32) {
                      { f.hash_group(std::size_t{0}, k32) };
                    }) {
        // Tabulation fast path: per key, one packed 64-bit lookup per group
        // of 4 rows, stored group-major as-is; the row sweep shifts its own
        // 16-bit lane out. Thread-local so the worst-case scratch
        // (kUpdateBlock x 8 groups x 8 B) never touches the worker stacks.
        const std::size_t groups = (h + 3) / 4;
        thread_local std::vector<std::uint64_t> gv_storage;
        if (gv_storage.size() < groups * kUpdateBlock) {
          gv_storage.resize(groups * kUpdateBlock);
        }
        std::uint64_t* const gv = gv_storage.data();
        thread_local std::vector<std::uint32_t> idx_storage;
        if (idx_storage.size() < kUpdateBlock) {
          idx_storage.resize(kUpdateBlock);
        }
        std::uint32_t* const idx = idx_storage.data();
        for (std::size_t j = 0; j < n; ++j) {
          assert_key_in_domain(block[j].key);
          // Hash-table lookups are the batched path's dominant cost (the
          // character tables are MBs, far beyond L1); prefetching a fixed
          // lead of keys ahead keeps several misses in flight.
          if constexpr (requires(const Family f, std::uint32_t k32) {
                          f.prefetch(k32);
                        }) {
            if (j + kPrefetchLead < n) {
              family.prefetch(
                  static_cast<std::uint32_t>(block[j + kPrefetchLead].key));
            }
          }
          const auto key32 = static_cast<std::uint32_t>(block[j].key);
          for (std::size_t g = 0; g < groups; ++g) {
            gv[g * kUpdateBlock + j] = family.hash_group(g, key32);
          }
        }
        for (std::size_t i = 0; i < h; ++i) {
          double* const row = &table_[i * k_];
          const std::uint64_t* const rg = &gv[(i / 4) * kUpdateBlock];
          const unsigned shift = static_cast<unsigned>((i % 4) * 16);
          if (prefetch_rows) {
            // Widened integer pre-pass (simd::index_shift_mask): extract the
            // whole block's bucket indices with vector shifts/masks, then run
            // the add sweep over the narrow u32 stream. On the large-K rows
            // this path serves, the sweep is miss-bound, so decoupling the
            // index arithmetic keeps the prefetch address one load (not a
            // shift+mask chain) ahead of the add. Adds stay in record order:
            // bit-identical to the per-record path.
            simd::index_shift_mask(rg, n, shift, mask, idx);
            for (std::size_t j = 0; j < n; ++j) {
              if (j + kPrefetchLead < n) {
                __builtin_prefetch(&row[idx[j + kPrefetchLead]], 1);
              }
              row[idx[j]] += block[j].update;
            }
          } else {
            for (std::size_t j = 0; j < n; ++j) {
              row[(rg[j] >> shift) & mask] += block[j].update;
            }
          }
        }
      } else {
        thread_local std::vector<std::uint16_t> hv_storage;
        if (hv_storage.size() < h * kUpdateBlock) {
          hv_storage.resize(h * kUpdateBlock);
        }
        std::uint16_t* const hv = hv_storage.data();
        for (std::size_t j = 0; j < n; ++j) assert_key_in_domain(block[j].key);
        for (std::size_t i = 0; i < h; ++i) {
          for (std::size_t j = 0; j < n; ++j) {
            hv[i * kUpdateBlock + j] = family.hash16(i, block[j].key);
          }
        }
        for (std::size_t i = 0; i < h; ++i) {
          double* const row = &table_[i * k_];
          const std::uint16_t* const rhv = &hv[i * kUpdateBlock];
          if (prefetch_rows) {
            for (std::size_t j = 0; j < n; ++j) {
              if (j + kPrefetchLead < n) {
                __builtin_prefetch(&row[rhv[j + kPrefetchLead] & mask], 1);
              }
              row[rhv[j] & mask] += block[j].update;
            }
          } else {
            for (std::size_t j = 0; j < n; ++j) {
              row[rhv[j] & mask] += block[j].update;
            }
          }
        }
      }
    }
    if (!records.empty()) {
      // mo: cache invalidation on the single-mutator path (see update()).
      sum_valid_.store(false, std::memory_order_relaxed);
    }
  }

  /// Total update mass sum(S) = sum_j T[0][j]; identical across rows for any
  /// sketch built by UPDATE/COMBINE. Cached until the next mutation. The
  /// cache mirrors the paper's "compute sum once before ESTIMATE calls".
  ///
  /// Thread safety: concurrent sum()/estimate() calls on a frozen sketch
  /// (e.g. parallel ESTIMATE over a forecast-error sketch) are safe — the
  /// lazy cache is double-checked through atomics, and racing fills compute
  /// the same value from the same frozen table. Mutation concurrent with
  /// any read remains a race on the table itself, as before.
  [[nodiscard]] double sum() const noexcept {
    // mo: double-checked cache (waiver, docs/CONCURRENCY.md) — the
    // release store on sum_valid_ publishes cached_sum_; the acquire load
    // here pairs with it, so a reader that sees valid==true also sees the
    // matching cached value. Racing fillers write the same value computed
    // from the same frozen table.
    if (!sum_valid_.load(std::memory_order_acquire)) {
      const double s = simd::hsum(table_.data(), k_);
      cached_sum_.store(s, std::memory_order_relaxed);
      sum_valid_.store(true, std::memory_order_release);
      return s;
    }
    // mo: value was published by the release/acquire pair above.
    return cached_sum_.load(std::memory_order_relaxed);
  }

  /// ESTIMATE — reconstructs v_a from the sketch. Same key-domain
  /// constraint as update().
  [[nodiscard]] double estimate(std::uint64_t key) const noexcept {
    assert_key_in_domain(key);
    const std::size_t h = depth();
    const std::uint64_t mask = k_ - 1;
    const double per_bucket = sum() / static_cast<double>(k_);
    const double denom = 1.0 - 1.0 / static_cast<double>(k_);
    std::array<double, kMaxRows> est;
    if constexpr (requires(const Family f, std::uint32_t k32, std::uint16_t* o) {
                    f.hash_all(k32, o);
                  }) {
      std::array<std::uint16_t, kMaxRows> hv;
      family_->hash_all(static_cast<std::uint32_t>(key), hv.data());
      for (std::size_t i = 0; i < h; ++i) {
        est[i] = (table_[i * k_ + (hv[i] & mask)] - per_bucket) / denom;
      }
    } else {
      for (std::size_t i = 0; i < h; ++i) {
        est[i] =
            (table_[i * k_ + (family_->hash16(i, key) & mask)] - per_bucket) /
            denom;
      }
    }
    return median_inplace(std::span<double>(est.data(), h));
  }

  /// Per-row evidence behind estimate(key), for alarm provenance: fills
  /// `raw_buckets[i]` with the bucket value T[i][h_i(key)] and
  /// `row_estimates[i]` with the unbiased per-row estimate
  /// (T[i][h_i(key)] - sum/K) / (1 - 1/K). The median of `row_estimates`
  /// equals estimate(key) exactly. Both spans must have length depth().
  void estimate_rows(std::uint64_t key, std::span<double> raw_buckets,
                     std::span<double> row_estimates) const {
    assert_key_in_domain(key);
    const std::size_t h = depth();
    if (raw_buckets.size() != h || row_estimates.size() != h) {
      throw std::invalid_argument("estimate_rows: spans must have length h");
    }
    const std::uint64_t mask = k_ - 1;
    const double per_bucket = sum() / static_cast<double>(k_);
    const double denom = 1.0 - 1.0 / static_cast<double>(k_);
    for (std::size_t i = 0; i < h; ++i) {
      const double bucket =
          table_[i * k_ + (family_->hash16(i, key) & mask)];
      raw_buckets[i] = bucket;
      row_estimates[i] = (bucket - per_bucket) / denom;
    }
  }

  /// ESTIMATEF2 — estimates the second moment F2 = sum_a v_a^2.
  [[nodiscard]] double estimate_f2() const noexcept {
    const std::size_t h = depth();
    const auto kd = static_cast<double>(k_);
    const double s = sum();
    std::array<double, kMaxRows> est;
    for (std::size_t i = 0; i < h; ++i) {
      const double sq = simd::sum_squares(&table_[i * k_], k_);
      est[i] = (kd * sq - s * s) / (kd - 1.0);
    }
    return median_inplace(std::span<double>(est.data(), h));
  }

  /// Estimated L2 norm sqrt(max(F2^est, 0)); F2^est can be slightly negative
  /// for near-empty sketches because it is an unbiased (not nonnegative)
  /// estimator.
  [[nodiscard]] double estimate_l2() const noexcept {
    return std::sqrt(std::max(estimate_f2(), 0.0));
  }

  // ---- Linear-space operations (COMBINE) ------------------------------
  // These make BasicKarySketch a LinearSignal so that every forecasting
  // model in src/forecast runs unchanged at the sketch level.

  void set_zero() noexcept {
    std::fill(table_.begin(), table_.end(), 0.0);
    // mo: release publishes the zero cache exactly like sum()'s fill path.
    cached_sum_.store(0.0, std::memory_order_relaxed);
    sum_valid_.store(true, std::memory_order_release);
  }

  void scale(double c) noexcept {
    simd::scale(table_.data(), table_.size(), c);
    // mo: single-mutator path — scaling the cached sum in place keeps the
    // cache coherent without republishing (validity flag is unchanged).
    cached_sum_.store(cached_sum_.load(std::memory_order_relaxed) * c,
                      std::memory_order_relaxed);
  }

  /// *this += c * other. Throws std::invalid_argument unless the two
  /// sketches share the same family and width — combining incompatible
  /// sketches is meaningless and, unchecked, an out-of-bounds read/write.
  void add_scaled(const BasicKarySketch& other, double c) {
    if (!compatible(other)) {
      throw std::invalid_argument(
          "BasicKarySketch::add_scaled: incompatible sketches (family or "
          "width mismatch)");
    }
    simd::axpy(table_.data(), other.table_.data(), table_.size(), c);
    // mo: cache invalidation on the single-mutator path (see update()).
    sum_valid_.store(false, std::memory_order_relaxed);
  }

  [[nodiscard]] bool compatible(const BasicKarySketch& other) const noexcept {
    return family_ == other.family_ && k_ == other.k_;
  }

  /// COMBINE(c_1, S_1, ..., c_l, S_l) as a free-standing construction.
  /// Throws std::invalid_argument when empty, when coeffs and sketches
  /// differ in length, or when any sketch is incompatible with the first.
  [[nodiscard]] static BasicKarySketch combine(
      std::span<const double> coeffs,
      std::span<const BasicKarySketch* const> sketches) {
    if (sketches.empty() || coeffs.size() != sketches.size()) {
      throw std::invalid_argument(
          "BasicKarySketch::combine: need one coefficient per sketch and at "
          "least one sketch");
    }
    BasicKarySketch out(sketches.front()->family_, sketches.front()->k_);
    for (std::size_t l = 0; l < sketches.size(); ++l) {
      out.add_scaled(*sketches[l], coeffs[l]);
    }
    return out;
  }

  /// Replaces the register table wholesale (deserialization, shard merge).
  /// The data must have been produced by a sketch with the same family and
  /// width; throws std::invalid_argument on a wrong-sized span (unchecked,
  /// that is a heap overflow in release builds).
  void load_registers(std::span<const double> values) {
    if (values.size() != table_.size()) {
      throw std::invalid_argument(
          "BasicKarySketch::load_registers: span size does not match the "
          "register table");
    }
    std::copy(values.begin(), values.end(), table_.begin());
    // mo: cache invalidation on the single-mutator path (see update()).
    sum_valid_.store(false, std::memory_order_relaxed);
  }

  /// Raw register access for tests and serialization.
  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    return {&table_[i * k_], k_};
  }
  [[nodiscard]] std::span<const double> registers() const noexcept {
    return table_;
  }

  /// Memory footprint of the register table in bytes (excludes the shared
  /// hash family).
  [[nodiscard]] std::size_t table_bytes() const noexcept {
    return table_.size() * sizeof(double);
  }

 private:
  /// Debug-mode guard for the key-domain constraint: the tabulation fast
  /// path truncates keys to 32 bits, so a 64-bit key kind bound to
  /// KarySketch (rather than KarySketch64) would collide distinct keys
  /// silently. Release builds rely on the compile-time binding in
  /// core/sketch_binding.h and the pipeline's key_fits_32bit dispatch.
  static void assert_key_in_domain([[maybe_unused]] std::uint64_t key) noexcept {
    if constexpr (kKeyBits < 64) {
      assert((key >> kKeyBits) == 0 &&
             "key exceeds the hash family's domain; use KarySketch64");
    }
  }

  /// Transfers the source's sum cache, tolerating a concurrent reader
  /// filling the source cache mid-copy: read the valid flag first (acquire
  /// pairs with the release store in sum()), and only trust cached_sum_
  /// when the flag was already set.
  void copy_sum_cache(const BasicKarySketch& other) noexcept {
    // mo: acquire pairs with sum()'s release on the source — only when the
    // flag was already set is the relaxed cached_sum_ read known complete.
    const bool valid = other.sum_valid_.load(std::memory_order_acquire);
    // mo: destination is under construction (no concurrent readers yet).
    cached_sum_.store(
        valid ? other.cached_sum_.load(std::memory_order_relaxed) : 0.0,
        std::memory_order_relaxed);
    sum_valid_.store(valid, std::memory_order_relaxed);
  }

  FamilyPtr family_;
  std::size_t k_;
  std::vector<double> table_;  // row-major H x K
  // Lazy sum cache, shared by concurrent const readers (see sum()).
  mutable std::atomic<double> cached_sum_{0.0};
  mutable std::atomic<bool> sum_valid_{true};
};

/// Default k-ary sketch: tabulation hashing, 32-bit keys (the paper's
/// configuration — destination IP keys).
using KarySketch = BasicKarySketch<hash::TabulationHashFamily>;

/// k-ary sketch over arbitrary 64-bit keys (e.g. src^dst pairs) using the
/// Carter-Wegman polynomial family.
using KarySketch64 = BasicKarySketch<hash::CwHashFamily>;

/// Convenience: builds a shared tabulation family for H rows.
[[nodiscard]] inline KarySketch::FamilyPtr make_tabulation_family(
    std::uint64_t seed, std::size_t rows) {
  return std::make_shared<hash::TabulationHashFamily>(seed, rows);
}

[[nodiscard]] inline KarySketch64::FamilyPtr make_cw_family(std::uint64_t seed,
                                                            std::size_t rows) {
  return std::make_shared<hash::CwHashFamily>(seed, rows);
}

}  // namespace scd::sketch
