// Hand-computed validation of the §3.2.1 smoothing models on scalar signals.
#include "forecast/smoothing.h"

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "forecast/model_factory.h"

namespace scd::forecast {
namespace {

/// Feeds observations; returns the forecast the model produced *for each
/// observation* (nullopt while not ready).
template <typename Model>
std::vector<std::optional<double>> drive(Model& model,
                                         const std::vector<double>& obs) {
  std::vector<std::optional<double>> forecasts;
  for (double o : obs) {
    if (model.ready()) {
      ScalarSignal f;
      model.forecast_into(f);
      forecasts.emplace_back(f.value());
    } else {
      forecasts.emplace_back(std::nullopt);
    }
    model.observe(ScalarSignal(o));
  }
  return forecasts;
}

TEST(MovingAverage, AveragesLastWObservations) {
  MovingAverageModel<ScalarSignal> model(3, ScalarSignal{});
  const auto f = drive(model, {3.0, 6.0, 9.0, 12.0, 15.0});
  EXPECT_FALSE(f[0].has_value());
  EXPECT_DOUBLE_EQ(*f[1], 3.0);              // truncated window: {3}
  EXPECT_DOUBLE_EQ(*f[2], 4.5);              // {3, 6}
  EXPECT_DOUBLE_EQ(*f[3], 6.0);              // {3, 6, 9}
  EXPECT_DOUBLE_EQ(*f[4], 9.0);              // {6, 9, 12}
}

TEST(MovingAverage, WindowOneEqualsLastValue) {
  MovingAverageModel<ScalarSignal> model(1, ScalarSignal{});
  const auto f = drive(model, {5.0, 7.0, 2.0});
  EXPECT_DOUBLE_EQ(*f[1], 5.0);
  EXPECT_DOUBLE_EQ(*f[2], 7.0);
}

TEST(MovingAverage, ConstantSeriesForecastsConstant) {
  MovingAverageModel<ScalarSignal> model(5, ScalarSignal{});
  const auto f = drive(model, {4.0, 4.0, 4.0, 4.0, 4.0, 4.0});
  for (std::size_t i = 1; i < f.size(); ++i) EXPECT_DOUBLE_EQ(*f[i], 4.0);
}

TEST(SShapedMA, WeightsFavorRecentHalf) {
  // W = 4, m = ceil(4/2) = 2: weights (ago=1..4) = 1, 1, 2/3, 1/3.
  SShapedMaModel<ScalarSignal> model(4, ScalarSignal{});
  const auto f = drive(model, {1.0, 2.0, 3.0, 4.0, 0.0});
  // After observing 1,2,3,4 (ago1=4, ago2=3, ago3=2, ago4=1):
  // (1*4 + 1*3 + (2/3)*2 + (1/3)*1) / (1 + 1 + 2/3 + 1/3)
  const double expected = (4.0 + 3.0 + 2.0 * 2.0 / 3.0 + 1.0 / 3.0) / 3.0;
  EXPECT_NEAR(*f[4], expected, 1e-12);
}

TEST(SShapedMA, WindowOneDegeneratesToLastValue) {
  SShapedMaModel<ScalarSignal> model(1, ScalarSignal{});
  const auto f = drive(model, {5.0, 9.0});
  EXPECT_DOUBLE_EQ(*f[1], 5.0);
}

TEST(SShapedMA, TruncatedWindowNormalizesWeights) {
  SShapedMaModel<ScalarSignal> model(6, ScalarSignal{});
  const auto f = drive(model, {10.0, 20.0});
  EXPECT_DOUBLE_EQ(*f[1], 10.0);  // single sample: weight cancels
}

TEST(SShapedMA, MoreReactiveThanPlainMAOnRamp) {
  MovingAverageModel<ScalarSignal> ma(6, ScalarSignal{});
  SShapedMaModel<ScalarSignal> sma(6, ScalarSignal{});
  const std::vector<double> ramp{1, 2, 3, 4, 5, 6, 7};
  const auto fma = drive(ma, ramp);
  const auto fsma = drive(sma, ramp);
  // On an increasing series, recency-weighted SMA forecasts higher.
  EXPECT_GT(*fsma[6], *fma[6]);
}

TEST(Ewma, MatchesRecurrence) {
  const double alpha = 0.3;
  EwmaModel<ScalarSignal> model(alpha, ScalarSignal{});
  const std::vector<double> obs{10.0, 20.0, 5.0, 8.0};
  const auto f = drive(model, obs);
  EXPECT_FALSE(f[0].has_value());
  EXPECT_DOUBLE_EQ(*f[1], 10.0);  // S_f(2) = S_o(1)
  double expected = 10.0;
  expected = alpha * 20.0 + (1 - alpha) * expected;
  EXPECT_DOUBLE_EQ(*f[2], expected);
  expected = alpha * 5.0 + (1 - alpha) * expected;
  EXPECT_DOUBLE_EQ(*f[3], expected);
}

TEST(Ewma, AlphaOneTracksLastObservation) {
  EwmaModel<ScalarSignal> model(1.0, ScalarSignal{});
  const auto f = drive(model, {1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(*f[1], 1.0);
  EXPECT_DOUBLE_EQ(*f[2], 2.0);
}

TEST(Ewma, AlphaZeroFreezesFirstValue) {
  EwmaModel<ScalarSignal> model(0.0, ScalarSignal{});
  const auto f = drive(model, {7.0, 100.0, -3.0});
  EXPECT_DOUBLE_EQ(*f[1], 7.0);
  EXPECT_DOUBLE_EQ(*f[2], 7.0);
}

TEST(HoltWinters, NotReadyUntilTwoObservations) {
  HoltWintersModel<ScalarSignal> model(0.5, 0.5, ScalarSignal{});
  EXPECT_FALSE(model.ready());
  model.observe(ScalarSignal(1.0));
  EXPECT_FALSE(model.ready());
  model.observe(ScalarSignal(2.0));
  EXPECT_TRUE(model.ready());
}

TEST(HoltWinters, FirstForecastFollowsPaperInit) {
  // With S_s(2) = o1 and S_t(2) = o2 - o1, the §3.2.1 recurrences give
  // S_f(3) = o2 + (o2 - o1) regardless of alpha/beta (derivation in
  // smoothing.h comments).
  for (double alpha : {0.2, 0.5, 0.9}) {
    for (double beta : {0.1, 0.7}) {
      HoltWintersModel<ScalarSignal> model(alpha, beta, ScalarSignal{});
      model.observe(ScalarSignal(10.0));
      model.observe(ScalarSignal(14.0));
      ScalarSignal f;
      model.forecast_into(f);
      EXPECT_NEAR(f.value(), 14.0 + 4.0, 1e-12)
          << "alpha=" << alpha << " beta=" << beta;
    }
  }
}

TEST(HoltWinters, TracksLinearTrendExactly) {
  // A pure linear series is forecast perfectly by NSHW from t=3 onward.
  HoltWintersModel<ScalarSignal> model(0.5, 0.5, ScalarSignal{});
  const std::vector<double> obs{10, 13, 16, 19, 22, 25};
  const auto f = drive(model, obs);
  for (std::size_t t = 2; t < obs.size(); ++t) {
    ASSERT_TRUE(f[t].has_value());
    EXPECT_NEAR(*f[t], obs[t], 1e-9) << "t=" << t;
  }
}

TEST(HoltWinters, BetaZeroFreezesInitialTrend) {
  HoltWintersModel<ScalarSignal> model(1.0, 0.0, ScalarSignal{});
  // alpha=1: smoothing = last obs; beta=0: trend stays o2 - o1 = 5.
  const auto f = drive(model, {0.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(*f[2], 10.0);  // 5 + 5
  EXPECT_DOUBLE_EQ(*f[3], 10.0);  // still trending by +5
}

TEST(ModelFactory, BuildsEveryKind) {
  const ScalarSignal prototype;
  for (ModelKind kind : all_model_kinds()) {
    ModelConfig config;
    config.kind = kind;
    config.window = 3;
    config.alpha = 0.5;
    config.beta = 0.5;
    config.arima.p = 1;
    config.arima.q = 1;
    config.arima.d = kind == ModelKind::kArima1 ? 1 : 0;
    config.arima.ar = {0.5, 0.0};
    config.arima.ma = {0.2, 0.0};
    const auto model = make_model<ScalarSignal>(config, prototype);
    ASSERT_NE(model, nullptr) << model_kind_name(kind);
    EXPECT_EQ(model->observed_count(), 0u);
  }
}

TEST(ModelFactory, RejectsInvalidConfig) {
  ModelConfig config;
  config.kind = ModelKind::kEwma;
  config.alpha = 2.0;
  EXPECT_THROW(make_model<ScalarSignal>(config, ScalarSignal{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace scd::forecast
