// Cross-thread ShardSet stats regression (docs/CONCURRENCY.md): the
// backpressure/dropped counters are written by the producer thread and read
// by monitoring from arbitrary threads, so they must be atomics — plain
// integers here were a data race, invisible functionally but flagged by the
// annotation pass and by TSan. This test hammers the stats getters from a
// monitor thread while the producer saturates a one-chunk queue; it runs
// under the `concurrency` label so the tsan preset validates it.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "hash/tabulation_hash.h"
#include "ingest/shard_set.h"
#include "sketch/kary_sketch.h"

namespace scd::ingest {
namespace {

TEST(ShardStatsRace, StatsReadableFromMonitorThreadDuringIngest) {
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kChunks = 200;
  constexpr std::size_t kChunkRecords = 512;
  // One-chunk queues: the producer outruns the workers and takes the
  // blocking-push path, so backpressure_waits_ is actually being written
  // while the monitor reads it.
  ShardSet<sketch::KarySketch> shards(
      /*seed=*/0x5eed, /*h=*/5, /*k=*/1024, kWorkers, /*queue_chunks=*/1,
      /*instruments=*/nullptr);

  std::atomic<bool> done{false};
  std::uint64_t last_waits = 0;
  std::thread monitor([&] {
    while (!done.load(std::memory_order_acquire)) {
      last_waits = shards.backpressure_waits();
      EXPECT_EQ(shards.dropped_records(), 0u);
    }
  });

  for (std::size_t c = 0; c < kChunks; ++c) {
    for (std::size_t shard = 0; shard < kWorkers; ++shard) {
      Chunk chunk(kChunkRecords);
      for (std::size_t i = 0; i < kChunkRecords; ++i) {
        chunk[i] = {c * kChunkRecords + i, 1.0};
      }
      shards.submit(shard, std::move(chunk));
    }
  }
  const core::IntervalBatch batch = shards.barrier_merge();
  done.store(true, std::memory_order_release);
  monitor.join();
  shards.stop();

  // Nothing was dropped or double-counted while the monitor was reading.
  EXPECT_EQ(batch.records, kWorkers * kChunks * kChunkRecords);
  EXPECT_EQ(shards.dropped_records(), 0u);
  EXPECT_GE(shards.backpressure_waits(), last_waits);
}

}  // namespace
}  // namespace scd::ingest
