#include "eval/trace_cache.h"

#include <cstdlib>
#include <filesystem>
#include <map>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "traffic/flow_record.h"
#include "traffic/synthetic.h"
#include "traffic/trace_io.h"

namespace scd::eval {

namespace {

common::Mutex g_cache_mutex;
// Keyed by profile name. std::map node stability means the returned
// references stay valid (and, once inserted, immutable) after the lock is
// released — callers only ever read a completed entry.
std::map<std::string, std::vector<traffic::FlowRecord>> g_memory_cache
    SCD_GUARDED_BY(g_cache_mutex);

/// Cache miss path: load from disk or regenerate, then insert. The lock is
/// held across generation — concurrent first requests for the same profile
/// must not both generate and race the insert.
const std::vector<traffic::FlowRecord>& load_or_generate_locked(
    const traffic::RouterProfile& profile) SCD_REQUIRES(g_cache_mutex) {
  const std::filesystem::path dir = trace_cache_dir();
  const std::filesystem::path path = dir / (profile.name + ".scdt");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  if (std::filesystem::exists(path)) {
    try {
      auto records = traffic::read_trace(path.string());
      SCD_INFO() << "trace cache: loaded " << profile.name << " ("
                 << records.size() << " records) from " << path.string();
      return g_memory_cache.emplace(profile.name, std::move(records))
          .first->second;
    } catch (const std::exception& e) {
      SCD_WARN() << "trace cache: rereading " << path.string()
                 << " failed (" << e.what() << "); regenerating";
    }
  }

  traffic::SyntheticTraceGenerator generator(profile.config);
  auto records = generator.generate();
  SCD_INFO() << "trace cache: generated " << profile.name << " ("
             << records.size() << " records)";
  try {
    traffic::write_trace(path.string(), records);
  } catch (const std::exception& e) {
    SCD_WARN() << "trace cache: persisting " << path.string() << " failed ("
               << e.what() << "); continuing in-memory";
  }
  return g_memory_cache.emplace(profile.name, std::move(records))
      .first->second;
}

}  // namespace

std::string trace_cache_dir() {
  // getenv without concurrent setenv anywhere in the process is safe.
  // NOLINTNEXTLINE(concurrency-mt-unsafe)
  if (const char* dir = std::getenv("SCD_TRACE_DIR")) return dir;
  return "traces";
}

const std::vector<traffic::FlowRecord>& cached_trace(
    const traffic::RouterProfile& profile) {
  const common::MutexLock lock(g_cache_mutex);
  if (const auto it = g_memory_cache.find(profile.name);
      it != g_memory_cache.end()) {
    return it->second;
  }
  return load_or_generate_locked(profile);
}

}  // namespace scd::eval
