#include "forecast/model_config.h"

#include <cmath>

#include "common/strutil.h"

namespace scd::forecast {

const char* model_kind_name(ModelKind kind) noexcept {
  switch (kind) {
    case ModelKind::kMovingAverage: return "MA";
    case ModelKind::kSShapedMA: return "SMA";
    case ModelKind::kEwma: return "EWMA";
    case ModelKind::kHoltWinters: return "NSHW";
    case ModelKind::kArima0: return "ARIMA0";
    case ModelKind::kArima1: return "ARIMA1";
    case ModelKind::kSeasonalHoltWinters: return "SHW";
  }
  return "?";
}

std::array<ModelKind, 6> all_model_kinds() noexcept {
  return {ModelKind::kMovingAverage, ModelKind::kSShapedMA, ModelKind::kEwma,
          ModelKind::kHoltWinters, ModelKind::kArima0, ModelKind::kArima1};
}

namespace {
/// Roots of 1 - c1*x - c2*x^2 lie outside the unit circle iff
/// c1 + c2 < 1, c2 - c1 < 1 and |c2| < 1 (the AR(2) stationarity triangle);
/// degenerates to |c1| < 1 when c2 == 0.
bool triangle_condition(double c1, double c2) noexcept {
  if (c2 == 0.0) return std::abs(c1) < 1.0;
  return (c1 + c2 < 1.0) && (c2 - c1 < 1.0) && (std::abs(c2) < 1.0);
}
}  // namespace

bool is_stationary(const ArimaCoeffs& c) noexcept {
  const double ar1 = c.p >= 1 ? c.ar[0] : 0.0;
  const double ar2 = c.p >= 2 ? c.ar[1] : 0.0;
  return triangle_condition(ar1, ar2);
}

bool is_invertible(const ArimaCoeffs& c) noexcept {
  // 1 + ma1*x + ma2*x^2 has roots outside the unit circle iff the same
  // triangle holds for (-ma1, -ma2).
  const double ma1 = c.q >= 1 ? c.ma[0] : 0.0;
  const double ma2 = c.q >= 2 ? c.ma[1] : 0.0;
  return triangle_condition(-ma1, -ma2);
}

std::string ModelConfig::to_string() const {
  using scd::common::str_format;
  switch (kind) {
    case ModelKind::kMovingAverage:
      return str_format("MA(W=%zu)", window);
    case ModelKind::kSShapedMA:
      return str_format("SMA(W=%zu)", window);
    case ModelKind::kEwma:
      return str_format("EWMA(alpha=%.4f)", alpha);
    case ModelKind::kHoltWinters:
      return str_format("NSHW(alpha=%.4f, beta=%.4f)", alpha, beta);
    case ModelKind::kArima0:
    case ModelKind::kArima1:
      return str_format("ARIMA(p=%d,d=%d,q=%d; ar=[%.3f,%.3f], ma=[%.3f,%.3f])",
                        arima.p, arima.d, arima.q, arima.ar[0], arima.ar[1],
                        arima.ma[0], arima.ma[1]);
    case ModelKind::kSeasonalHoltWinters:
      return str_format("SHW(alpha=%.4f, beta=%.4f, gamma=%.4f, m=%zu)", alpha,
                        beta, gamma, period);
  }
  return "?";
}

bool ModelConfig::valid() const noexcept {
  switch (kind) {
    case ModelKind::kMovingAverage:
    case ModelKind::kSShapedMA:
      return window >= 1;
    case ModelKind::kEwma:
      return alpha >= 0.0 && alpha <= 1.0;
    case ModelKind::kHoltWinters:
      return alpha >= 0.0 && alpha <= 1.0 && beta >= 0.0 && beta <= 1.0;
    case ModelKind::kArima0:
    case ModelKind::kArima1: {
      const bool order_ok = arima.p >= 0 && arima.p <= 2 && arima.q >= 0 &&
                            arima.q <= 2 && arima.d >= 0 && arima.d <= 1 &&
                            (arima.p + arima.q) >= 1 &&
                            arima.d == (kind == ModelKind::kArima1 ? 1 : 0);
      return order_ok && is_stationary(arima) && is_invertible(arima);
    }
    case ModelKind::kSeasonalHoltWinters:
      return alpha >= 0.0 && alpha <= 1.0 && beta >= 0.0 && beta <= 1.0 &&
             gamma >= 0.0 && gamma <= 1.0 && period >= 2;
  }
  return false;
}

}  // namespace scd::forecast
