// Ablation: interval size (§4.2). "A long interval would result in delays
// ... A short interval requires us to update the sketch-based forecasting
// data structures more frequently. We choose 5 minutes as a reasonable
// tradeoff between the responsiveness and the computational overhead."
//
// For interval sizes 60-600 s we measure, on one trace with a labeled DoS:
//   * detection delay (time from attack onset to the first alarm on the
//     target),
//   * forecasting work (number of interval closes, i.e. sketch-level model
//     updates, per hour),
//   * false alarms per hour at a fixed threshold.
#include <cstdio>
#include <vector>

#include "core/pipeline.h"
#include "support/bench_util.h"
#include "traffic/synthetic.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Ablation: interval size",
      "detection delay vs forecasting overhead across interval sizes",
      "short intervals detect sooner but close many more intervals; 300 s "
      "is the paper's balance point");

  traffic::SyntheticConfig config;
  config.seed = 424;
  config.duration_s = 10800.0;
  config.base_rate = 80.0;
  config.num_hosts = 15000;
  traffic::AnomalySpec dos;
  dos.kind = traffic::AnomalyKind::kDosAttack;
  dos.start_s = 7205.0;  // just after a 5-minute boundary
  dos.duration_s = 900.0;
  dos.magnitude = 300.0;
  dos.target_rank = 700;
  config.anomalies.push_back(dos);
  traffic::SyntheticTraceGenerator generator(config);
  const auto records = generator.generate();
  const auto target = generator.dst_ip_of_rank(700);

  std::printf("%-10s %-16s %-18s %s\n", "interval", "detect delay (s)",
              "closes per hour", "false alarms/hour");
  std::vector<std::pair<double, double>> delay_series;
  double delay_60 = -1.0, delay_600 = -1.0;
  for (const double interval : {60.0, 120.0, 300.0, 600.0}) {
    core::PipelineConfig pc;
    pc.interval_s = interval;
    pc.h = 5;
    pc.k = 32768;
    pc.model.kind = forecast::ModelKind::kEwma;
    pc.model.alpha = 0.6;
    pc.threshold = 0.15;
    core::ChangeDetectionPipeline pipeline(pc);
    for (const auto& r : records) pipeline.add_record(r);
    pipeline.flush();

    double detect_delay = -1.0;
    std::size_t false_alarms = 0;
    double evaluated_hours = 0.0;
    for (const auto& report : pipeline.reports()) {
      if (!report.detection_ran || report.start_s < 3600.0) continue;
      evaluated_hours += interval / 3600.0;
      for (const auto& alarm : report.alarms) {
        if (alarm.key == target && alarm.error > 0) {
          if (detect_delay < 0) detect_delay = report.end_s - dos.start_s;
        } else if (report.end_s <= dos.start_s ||
                   report.start_s >= dos.start_s + dos.duration_s + interval) {
          ++false_alarms;
        }
      }
    }
    const double closes_per_hour = 3600.0 / interval;
    std::printf("%-10.0f %-16.0f %-18.0f %.1f\n", interval, detect_delay,
                closes_per_hour,
                static_cast<double>(false_alarms) / evaluated_hours);
    delay_series.emplace_back(interval, detect_delay);
    if (interval == 60.0) delay_60 = detect_delay;
    if (interval == 600.0) delay_600 = detect_delay;
  }
  bench::print_series("detect_delay(interval_s, delay_s)", delay_series);

  bench::check(delay_60 >= 0 && delay_600 >= 0,
               "the attack is detected at every interval size", "");
  bench::check(delay_60 < delay_600,
               "short intervals detect sooner (the §4.2 responsiveness side)",
               common::str_format("60s: %.0fs vs 600s: %.0fs", delay_60,
                                  delay_600));
  bench::check(delay_600 <= 2.0 * 600.0,
               "even long intervals detect within ~2 intervals",
               common::str_format("%.0fs", delay_600));
  return bench::finish();
}
