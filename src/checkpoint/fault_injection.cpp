#include "checkpoint/fault_injection.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <ios>
#include <iterator>
#include <utility>

#include "checkpoint/checkpoint.h"

namespace scd::checkpoint {

namespace {

/// Plain (deliberately non-durable) prefix write — the injector simulates a
/// crash, so nothing it leaves behind should be fsynced.
void write_prefix(const std::filesystem::path& path,
                  const std::uint8_t* data, std::size_t size) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (size > 0) {
    out.write(reinterpret_cast<const char*>(data),
              static_cast<std::streamsize>(size));
  }
}

[[nodiscard]] std::vector<std::uint8_t> read_all(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

}  // namespace

ScdFaultInjector::ScdFaultInjector(Plan plan)
    : plan_(plan), real_(real_file_ops()) {}

bool ScdFaultInjector::armed() noexcept {
  const bool hit = ops_seen_ >= plan_.arm_after_ops;
  ++ops_seen_;
  return hit;
}

void ScdFaultInjector::write_file_durable(
    const std::filesystem::path& path, const std::vector<std::uint8_t>& data) {
  if (plan_.fail_after_bytes.has_value() && armed()) {
    const std::size_t kept = std::min(*plan_.fail_after_bytes, data.size());
    write_prefix(path, data.data(), kept);
    events_.push_back("FAULT partial-write " + path.string() + ": kept " +
                      std::to_string(kept) + " of " +
                      std::to_string(data.size()) + " bytes, then failed");
    throw CheckpointError(
        CheckpointErrorKind::kWriteFailed,
        "injected write failure after " + std::to_string(kept) + " bytes");
  }
  real_.write_file_durable(path, data);
  events_.push_back("write " + path.string() + " (" +
                    std::to_string(data.size()) + " bytes)");
}

void ScdFaultInjector::rename_durable(const std::filesystem::path& from,
                                      const std::filesystem::path& to) {
  const bool rename_fault =
      plan_.torn_rename_bytes.has_value() || plan_.flip_bit.has_value();
  if (rename_fault && armed()) {
    if (plan_.torn_rename_bytes.has_value()) {
      const std::vector<std::uint8_t> source = read_all(from);
      const std::size_t kept = std::min(*plan_.torn_rename_bytes,
                                        source.size());
      write_prefix(to, source.data(), kept);
      events_.push_back("FAULT torn-rename " + to.string() + ": destination "
                        "holds " + std::to_string(kept) + " of " +
                        std::to_string(source.size()) + " bytes");
      throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                            "injected torn rename: destination truncated to " +
                                std::to_string(kept) + " bytes");
    }
    // Bit rot: the rename itself succeeds, then the final file silently
    // loses one bit. No error escapes — the CRC has to find it later.
    real_.rename_durable(from, to);
    std::vector<std::uint8_t> bytes = read_all(to);
    if (!bytes.empty()) {
      const std::size_t bit = *plan_.flip_bit % (bytes.size() * 8);
      bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
      write_prefix(to, bytes.data(), bytes.size());
      events_.push_back("FAULT bit-flip " + to.string() + ": flipped bit " +
                        std::to_string(bit));
    }
    return;
  }
  real_.rename_durable(from, to);
  events_.push_back("rename " + from.string() + " -> " + to.string());
}

void ScdFaultInjector::remove_file(
    const std::filesystem::path& path) noexcept {
  real_.remove_file(path);
  try {
    events_.push_back("remove " + path.string());
  } catch (...) {
    // An event-log allocation failure must not escape a noexcept cleanup.
  }
}

void ScdFaultInjector::dump_log(const std::filesystem::path& path) const {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& event : events_) out << event << '\n';
}

}  // namespace scd::checkpoint
