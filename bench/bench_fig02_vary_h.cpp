// Figure 2: effect of the number of hash functions H on the relative
// difference, with randomly chosen model parameters.
//   (a) EWMA at K=1024, (b) ARIMA0 at K=8192, H in {1, 5, 9, 25}.
//
// Paper shape: no need to increase H beyond 5 — the H=5/9/25 CDFs are
// essentially on top of each other and tight around 0%.
#include <cmath>
#include <cstdio>

#include "common/stats.h"
#include "support/bench_util.h"
#include "support/experiments.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Figure 2", "relative difference vs H (random params, 300s interval)",
      "H beyond 5 gives no meaningful accuracy improvement");

  constexpr double kInterval = 300.0;
  const std::size_t warmup = bench::warmup_intervals(kInterval);
  const std::vector<std::string> routers{"large", "medium", "small"};
  const std::vector<std::size_t> hs{1, 5, 9, 25};

  struct Panel {
    forecast::ModelKind kind;
    std::size_t k;
  };
  const std::vector<Panel> panels{{forecast::ModelKind::kEwma, 1024},
                                  {forecast::ModelKind::kArima0, 8192}};

  for (const auto& panel : panels) {
    std::printf("\n--- model=%s K=%zu ---\n",
                forecast::model_kind_name(panel.kind), panel.k);
    double spread_h1 = 0.0, spread_h5 = 0.0, spread_h25 = 0.0;
    for (const std::size_t h : hs) {
      common::EmpiricalCdf cdf;
      for (const auto& router : routers) {
        const auto& stream = bench::stream_for(router, kInterval);
        for (const auto& config :
             bench::random_model_configs(panel.kind, 6, 2002, 10)) {
          cdf.add(bench::energy_relative_difference(stream, config, h, panel.k,
                                                    warmup));
        }
      }
      std::vector<std::pair<double, double>> points;
      for (double q : {0.05, 0.5, 0.95}) {
        points.emplace_back(cdf.quantile(q), q);
      }
      bench::print_series(common::str_format("H=%zu(reldiff%%, cdf)", h),
                          points);
      const double spread =
          std::max(std::abs(cdf.quantile(0.05)), std::abs(cdf.quantile(0.95)));
      if (h == 1) spread_h1 = spread;
      if (h == 5) spread_h5 = spread;
      if (h == 25) spread_h25 = spread;
    }
    bench::check(
        spread_h5 <= spread_h1 * 1.5 + 0.1,
        common::str_format("%s: H=5 at least as tight as H=1",
                           forecast::model_kind_name(panel.kind)),
        common::str_format("spread(H=1)=%.3f%% spread(H=5)=%.3f%%", spread_h1,
                           spread_h5));
    bench::check(
        std::abs(spread_h25 - spread_h5) < std::max(0.5, spread_h5),
        common::str_format("%s: H=25 adds nothing over H=5 (paper claim)",
                           forecast::model_kind_name(panel.kind)),
        common::str_format("spread(H=5)=%.3f%% spread(H=25)=%.3f%%", spread_h5,
                           spread_h25));
  }
  return bench::finish();
}
