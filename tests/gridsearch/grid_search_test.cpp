#include "gridsearch/grid_search.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/random.h"
#include "forecast/linear_space.h"
#include "forecast/runner.h"

namespace scd::gridsearch {
namespace {

using scd::forecast::ModelConfig;
using scd::forecast::ModelKind;

TEST(GridSearch, EwmaFindsQuadraticMinimum) {
  // Objective with a known interior minimum at alpha = 0.37.
  const auto objective = [](const ModelConfig& c) {
    return (c.alpha - 0.37) * (c.alpha - 0.37);
  };
  const auto result = grid_search(ModelKind::kEwma, objective);
  // Two passes with 10 divisions reach ~0.01 resolution around the optimum.
  EXPECT_NEAR(result.best.alpha, 0.37, 0.02);
  EXPECT_EQ(result.best.kind, ModelKind::kEwma);
  EXPECT_GT(result.evaluations, 10u);
}

TEST(GridSearch, SecondPassRefinesBeyondFirstPassGrid) {
  const auto objective = [](const ModelConfig& c) {
    return std::abs(c.alpha - 0.4321);
  };
  GridSearchOptions one_pass;
  one_pass.passes = 1;
  const auto coarse = grid_search(ModelKind::kEwma, objective, one_pass);
  const auto fine = grid_search(ModelKind::kEwma, objective);
  EXPECT_LE(fine.best_objective, coarse.best_objective);
  EXPECT_NEAR(fine.best.alpha, 0.4321, 0.02);
}

TEST(GridSearch, HoltWintersSearchesBothDimensions) {
  const auto objective = [](const ModelConfig& c) {
    return (c.alpha - 0.8) * (c.alpha - 0.8) + (c.beta - 0.2) * (c.beta - 0.2);
  };
  const auto result = grid_search(ModelKind::kHoltWinters, objective);
  EXPECT_NEAR(result.best.alpha, 0.8, 0.03);
  EXPECT_NEAR(result.best.beta, 0.2, 0.03);
}

TEST(GridSearch, WindowModelsSweepIntegers) {
  const auto objective = [](const ModelConfig& c) {
    return std::abs(static_cast<double>(c.window) - 7.0);
  };
  GridSearchOptions options;
  options.max_window = 12;
  for (ModelKind kind : {ModelKind::kMovingAverage, ModelKind::kSShapedMA}) {
    const auto result = grid_search(kind, objective, options);
    EXPECT_EQ(result.best.window, 7u);
    EXPECT_EQ(result.evaluations, 12u);
  }
}

TEST(GridSearch, WindowRespectsMaxWindow) {
  const auto objective = [](const ModelConfig& c) {
    return -static_cast<double>(c.window);  // bigger is better
  };
  GridSearchOptions options;
  options.max_window = 5;
  const auto result =
      grid_search(ModelKind::kMovingAverage, objective, options);
  EXPECT_EQ(result.best.window, 5u);
}

TEST(GridSearch, ArimaOnlyEvaluatesValidConfigs) {
  std::size_t invalid_seen = 0;
  const auto objective = [&invalid_seen](const ModelConfig& c) {
    if (!c.valid()) ++invalid_seen;
    return (c.arima.ar[0] - 0.5) * (c.arima.ar[0] - 0.5);
  };
  const auto result = grid_search(ModelKind::kArima0, objective);
  EXPECT_EQ(invalid_seen, 0u);
  EXPECT_TRUE(result.best.valid());
  EXPECT_EQ(result.best.arima.d, 0);
}

TEST(GridSearch, Arima1ProducesD1Configs) {
  const auto objective = [](const ModelConfig& c) {
    return std::abs(c.arima.ar[0]) + std::abs(c.arima.ma[0]);
  };
  const auto result = grid_search(ModelKind::kArima1, objective);
  EXPECT_EQ(result.best.arima.d, 1);
  EXPECT_TRUE(result.best.valid());
}

TEST(GridSearch, ArimaRecoversAr1Coefficient) {
  // Synthetic AR(1) scalar series with coefficient 0.7: the grid search,
  // minimizing the true residual energy, should land near 0.7.
  std::vector<double> series;
  double z = 1.0;
  std::uint64_t state = 5;  // deterministic pseudo-noise source
  for (int t = 0; t < 300; ++t) {
    const double noise =
        (static_cast<double>(scd::common::splitmix64(state) >> 11) * 0x1.0p-53 -
         0.5);
    z = 0.7 * z + noise;
    series.push_back(z);
  }
  const auto objective = [&series](const ModelConfig& c) {
    forecast::ForecastRunner<forecast::ScalarSignal> runner(
        c, forecast::ScalarSignal{});
    double energy = 0.0;
    for (double o : series) {
      if (const auto step = runner.step(forecast::ScalarSignal(o))) {
        energy += step->error.value() * step->error.value();
      }
    }
    return energy;
  };
  const auto result = grid_search(ModelKind::kArima0, objective);
  // The best model should explain the series far better than a naive one.
  ModelConfig naive;
  naive.kind = ModelKind::kArima0;
  naive.arima = {.p = 1, .d = 0, .q = 0, .ar = {0.0, 0.0}, .ma = {0.0, 0.0}};
  EXPECT_LT(result.best_objective, objective(naive));
}

TEST(GridSearch, DeterministicAcrossRuns) {
  const auto objective = [](const ModelConfig& c) {
    return std::abs(c.alpha - 0.123);
  };
  const auto r1 = grid_search(ModelKind::kEwma, objective);
  const auto r2 = grid_search(ModelKind::kEwma, objective);
  EXPECT_EQ(r1.best.alpha, r2.best.alpha);
  EXPECT_EQ(r1.evaluations, r2.evaluations);
}

}  // namespace
}  // namespace scd::gridsearch
