#include "eval/trace_cache.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "traffic/synthetic.h"

namespace scd::eval {
namespace {

// The cache directory is read from $SCD_TRACE_DIR per call, so tests can
// redirect it; the in-process memo is keyed by profile name, so each test
// uses a unique name.
class TraceCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "scd_cache_test").string();
    std::filesystem::create_directories(dir_);
    ASSERT_EQ(setenv("SCD_TRACE_DIR", dir_.c_str(), 1), 0);
  }
  void TearDown() override {
    unsetenv("SCD_TRACE_DIR");
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }

  traffic::RouterProfile tiny_profile(const std::string& name) {
    traffic::RouterProfile profile;
    profile.name = name;
    profile.config.seed = 77;
    profile.config.duration_s = 30.0;
    profile.config.base_rate = 20.0;
    profile.config.num_hosts = 100;
    return profile;
  }

  std::string dir_;
};

TEST_F(TraceCacheTest, GeneratesAndPersists) {
  const auto profile = tiny_profile("cache_t1");
  const auto& records = cached_trace(profile);
  EXPECT_GT(records.size(), 100u);
  EXPECT_TRUE(std::filesystem::exists(dir_ + "/cache_t1.scdt"));
}

TEST_F(TraceCacheTest, SecondCallReturnsSameObject) {
  const auto profile = tiny_profile("cache_t2");
  const auto& first = cached_trace(profile);
  const auto& second = cached_trace(profile);
  EXPECT_EQ(&first, &second);  // in-process memoization
}

TEST_F(TraceCacheTest, CorruptedFileIsRegenerated) {
  const auto profile = tiny_profile("cache_t3");
  // Pre-place a corrupt file where the cache would read it.
  {
    std::ofstream out(dir_ + "/cache_t3.scdt", std::ios::binary);
    out << "garbage";
  }
  const auto& records = cached_trace(profile);
  EXPECT_GT(records.size(), 100u);  // regenerated despite the bad file
}

TEST_F(TraceCacheTest, DirOverrideIsHonored) {
  EXPECT_EQ(trace_cache_dir(), dir_);
}

}  // namespace
}  // namespace scd::eval
