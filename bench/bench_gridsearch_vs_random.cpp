// §5.1 grid-search validation (the experiment described in the text after
// Figure 3): for each (model, router, interval), compare the per-flow total
// energy obtained with the grid-searched parameters against the per-flow
// energies of randomly chosen parameters.
//
// Paper claims: (i) grid search is never worse than any random
// parameterization; (ii) in at least 20% of cases the random parameters are
// at least twice as bad.
#include <cstdio>
#include <vector>

#include "eval/truth.h"
#include "support/bench_util.h"
#include "support/experiments.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Grid search vs random (§5.1)",
      "per-flow total energy: grid-searched vs random parameters",
      "grid never worse than random; >=20% of random cases are >=2x worse");

  const std::vector<std::string> routers{"large", "medium", "small"};
  const std::vector<double> intervals{300.0, 60.0};
  constexpr std::size_t kRandomCount = 8;

  std::size_t comparisons = 0;
  std::size_t grid_worse = 0;
  std::size_t random_twice_as_bad = 0;

  for (const double interval : intervals) {
    const std::size_t warmup = bench::warmup_intervals(interval);
    for (const auto& router : routers) {
      const auto& stream = bench::stream_for(router, interval);
      for (const auto kind : forecast::all_model_kinds()) {
        const auto grid_config =
            bench::cached_grid_model(router, interval, kind);
        const double grid_energy =
            eval::compute_perflow_truth(stream, grid_config, false)
                .total_energy(warmup);
        std::printf("%-6s %4.0fs %-7s grid %-38s energy=%.4g\n",
                    router.c_str(), interval,
                    forecast::model_kind_name(kind),
                    grid_config.to_string().c_str(), grid_energy);
        const auto randoms = bench::random_model_configs(
            kind, kRandomCount, 4004, interval <= 60.0 ? 12 : 10);
        for (const auto& config : randoms) {
          const double random_energy =
              eval::compute_perflow_truth(stream, config, false)
                  .total_energy(warmup);
          ++comparisons;
          if (grid_energy > random_energy * 1.001) ++grid_worse;
          if (random_energy >= 2.0 * grid_energy) ++random_twice_as_bad;
        }
      }
    }
  }

  const double twice_frac =
      static_cast<double>(random_twice_as_bad) / static_cast<double>(comparisons);
  std::printf("\ncomparisons=%zu grid_worse=%zu random>=2x-worse=%zu (%.0f%%)\n",
              comparisons, grid_worse, random_twice_as_bad, 100.0 * twice_frac);
  bench::check(grid_worse == 0,
               "grid search never worse than random parameters",
               common::str_format("%zu violations of %zu", grid_worse,
                                  comparisons));
  bench::check(twice_frac >= 0.10,
               "a sizable fraction of random params are >=2x worse "
               "(paper: >=20% of cases)",
               common::str_format("%.0f%%", 100.0 * twice_frac));
  return bench::finish();
}
