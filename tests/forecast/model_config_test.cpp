#include "forecast/model_config.h"

#include <gtest/gtest.h>

namespace scd::forecast {
namespace {

TEST(ModelKind, NamesMatchPaper) {
  EXPECT_STREQ(model_kind_name(ModelKind::kMovingAverage), "MA");
  EXPECT_STREQ(model_kind_name(ModelKind::kSShapedMA), "SMA");
  EXPECT_STREQ(model_kind_name(ModelKind::kEwma), "EWMA");
  EXPECT_STREQ(model_kind_name(ModelKind::kHoltWinters), "NSHW");
  EXPECT_STREQ(model_kind_name(ModelKind::kArima0), "ARIMA0");
  EXPECT_STREQ(model_kind_name(ModelKind::kArima1), "ARIMA1");
}

TEST(ModelKind, AllKindsListsSix) {
  const auto kinds = all_model_kinds();
  EXPECT_EQ(kinds.size(), 6u);
  EXPECT_EQ(kinds.front(), ModelKind::kMovingAverage);
  EXPECT_EQ(kinds.back(), ModelKind::kArima1);
}

TEST(Stationarity, Ar1Triangle) {
  ArimaCoeffs c;
  c.p = 1;
  c.q = 0;
  c.ar = {0.9, 0.0};
  EXPECT_TRUE(is_stationary(c));
  c.ar = {-0.9, 0.0};
  EXPECT_TRUE(is_stationary(c));
  c.ar = {1.0, 0.0};
  EXPECT_FALSE(is_stationary(c));
  c.ar = {-1.2, 0.0};
  EXPECT_FALSE(is_stationary(c));
}

TEST(Stationarity, Ar2Triangle) {
  ArimaCoeffs c;
  c.p = 2;
  c.q = 0;
  // Inside the triangle.
  c.ar = {0.5, 0.3};
  EXPECT_TRUE(is_stationary(c));
  c.ar = {1.2, -0.4};
  EXPECT_TRUE(is_stationary(c));
  // Violations of each edge.
  c.ar = {0.8, 0.3};  // ar1 + ar2 >= 1
  EXPECT_FALSE(is_stationary(c));
  c.ar = {-0.5, 0.6};  // ar2 - ar1 >= 1
  EXPECT_FALSE(is_stationary(c));
  c.ar = {0.0, -1.1};  // |ar2| >= 1
  EXPECT_FALSE(is_stationary(c));
}

TEST(Invertibility, MirrorsStationarityTriangle) {
  ArimaCoeffs c;
  c.p = 0;
  c.q = 2;
  c.ma = {0.5, 0.3};
  EXPECT_TRUE(is_invertible(c));
  c.ma = {2.0, 0.0};
  EXPECT_FALSE(is_invertible(c));
  c.ma = {0.0, 1.1};
  EXPECT_FALSE(is_invertible(c));
}

TEST(ModelConfig, WindowModelsRequirePositiveWindow) {
  ModelConfig config;
  config.kind = ModelKind::kMovingAverage;
  config.window = 0;
  EXPECT_FALSE(config.valid());
  config.window = 1;
  EXPECT_TRUE(config.valid());
  config.kind = ModelKind::kSShapedMA;
  config.window = 12;
  EXPECT_TRUE(config.valid());
}

TEST(ModelConfig, EwmaAlphaRange) {
  ModelConfig config;
  config.kind = ModelKind::kEwma;
  config.alpha = -0.1;
  EXPECT_FALSE(config.valid());
  config.alpha = 0.0;
  EXPECT_TRUE(config.valid());
  config.alpha = 1.0;
  EXPECT_TRUE(config.valid());
  config.alpha = 1.1;
  EXPECT_FALSE(config.valid());
}

TEST(ModelConfig, HoltWintersNeedsBothParams) {
  ModelConfig config;
  config.kind = ModelKind::kHoltWinters;
  config.alpha = 0.5;
  config.beta = 1.5;
  EXPECT_FALSE(config.valid());
  config.beta = 0.5;
  EXPECT_TRUE(config.valid());
}

TEST(ModelConfig, ArimaOrderMustMatchKind) {
  ModelConfig config;
  config.kind = ModelKind::kArima0;
  config.arima.p = 1;
  config.arima.d = 0;
  config.arima.q = 0;
  config.arima.ar = {0.5, 0.0};
  EXPECT_TRUE(config.valid());
  config.arima.d = 1;  // ARIMA0 must have d = 0
  EXPECT_FALSE(config.valid());
  config.kind = ModelKind::kArima1;
  EXPECT_TRUE(config.valid());
}

TEST(ModelConfig, ArimaRejectsEmptyAndOversizedOrders) {
  ModelConfig config;
  config.kind = ModelKind::kArima0;
  config.arima.p = 0;
  config.arima.q = 0;
  EXPECT_FALSE(config.valid());  // p + q >= 1
  config.arima.p = 3;
  config.arima.q = 0;
  EXPECT_FALSE(config.valid());  // p <= 2
}

TEST(ModelConfig, ArimaValidityChecksCoefficients) {
  ModelConfig config;
  config.kind = ModelKind::kArima0;
  config.arima.p = 2;
  config.arima.q = 1;
  config.arima.ar = {0.5, 0.2};
  config.arima.ma = {0.3, 0.0};
  EXPECT_TRUE(config.valid());
  config.arima.ar = {1.5, 0.7};  // non-stationary
  EXPECT_FALSE(config.valid());
}

TEST(ModelConfig, ToStringMentionsKindAndParams) {
  ModelConfig config;
  config.kind = ModelKind::kEwma;
  config.alpha = 0.25;
  EXPECT_NE(config.to_string().find("EWMA"), std::string::npos);
  EXPECT_NE(config.to_string().find("0.25"), std::string::npos);
}

}  // namespace
}  // namespace scd::forecast
