#include "gridsearch/factorial.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace scd::gridsearch {

std::vector<Effect> FactorialResult::ranked() const {
  std::vector<Effect> sorted(effects.begin() + 1, effects.end());
  std::sort(sorted.begin(), sorted.end(), [](const Effect& a, const Effect& b) {
    return std::abs(a.value) > std::abs(b.value);
  });
  return sorted;
}

const Effect& FactorialResult::effect(const std::string& name) const {
  for (const Effect& e : effects) {
    if (e.name == name) return e;
  }
  throw std::out_of_range("no such effect: " + name);
}

FactorialResult full_factorial(const std::vector<Factor>& factors,
                               const Response& response) {
  const std::size_t k = factors.size();
  assert(k >= 1 && k <= 16);
  const std::size_t n = 1u << k;

  FactorialResult result;
  result.runs.resize(n);
  std::vector<double> levels(k);
  for (std::size_t run = 0; run < n; ++run) {
    for (std::size_t j = 0; j < k; ++j) {
      levels[j] = (run >> j) & 1 ? factors[j].high : factors[j].low;
    }
    result.runs[run] = response(levels);
  }

  // Yates' algorithm: k passes of pairwise (sum, difference) over the runs
  // in standard order; entry i then holds 2^(k-1) * effect_i (and entry 0
  // holds 2^k * mean).
  std::vector<double> work = result.runs;
  std::vector<double> next(n);
  for (std::size_t pass = 0; pass < k; ++pass) {
    for (std::size_t i = 0; i < n / 2; ++i) {
      next[i] = work[2 * i] + work[2 * i + 1];
      next[n / 2 + i] = work[2 * i + 1] - work[2 * i];
    }
    work.swap(next);
  }

  result.effects.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Effect& e = result.effects[i];
    if (i == 0) {
      e.name = "mean";
      e.order = 0;
      e.value = work[0] / static_cast<double>(n);
      continue;
    }
    std::string name;
    int order = 0;
    for (std::size_t j = 0; j < k; ++j) {
      if ((i >> j) & 1) {
        if (!name.empty()) name += "*";
        name += factors[j].name;
        ++order;
      }
    }
    e.name = name;
    e.order = order;
    e.value = work[i] / static_cast<double>(n / 2);
  }
  return result;
}

}  // namespace scd::gridsearch
