// End-to-end aggregation-tier tests over real loopback sockets: three node
// pipelines ship interval sketches to an AggServer, and the global view
// must equal a single pipeline fed the merged trace bit-for-bit. The second
// test kills one node mid-run and rejoins it from its checkpoint — the
// ship -> ack -> ingest -> checkpoint ordering plus the aggregator's
// (node, interval) dedup must yield the exact same global COMBINE with no
// interval double-counted or lost (ISSUE 7 acceptance).
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "agg/agg_server.h"
#include "agg/shipper.h"
#include "checkpoint/checkpoint.h"
#include "common/random.h"
#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"

namespace scd::agg {
namespace {

constexpr std::uint64_t kNodes[] = {1, 2, 3};
constexpr int kMinutes = 6;
constexpr double kNoLimit = 1e18;

core::PipelineConfig node_config() {
  core::PipelineConfig config;
  config.interval_s = 60.0;
  config.h = 5;
  config.k = 1024;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.2;
  config.metrics = false;
  return config;
}

AggregatorConfig agg_config() {
  AggregatorConfig config;
  config.pipeline = node_config();
  config.nodes.assign(std::begin(kNodes), std::end(kNodes));
  return config;
}

struct TimedRecord {
  double time_s = 0.0;
  std::uint64_t key = 0;
  double mass = 0.0;
};

/// One node's deterministic 6-minute stream: 50 private flows with jittered
/// integer masses, plus the shared key 777 whose mass jumps in minute 4 at
/// EVERY node — the change the global view must alarm on.
std::vector<TimedRecord> node_stream(std::uint64_t node) {
  common::Rng rng(0x5eed0 + node);
  std::vector<TimedRecord> records;
  for (int minute = 0; minute < kMinutes; ++minute) {
    const double base = minute * 60.0;
    records.push_back({base + 0.5, 777,
                       500.0 + (minute == 4 ? 900.0 : 0.0)});
    for (std::uint64_t j = 0; j < 50; ++j) {
      records.push_back({base + 1.0 + static_cast<double>(j),
                         node * 100000 + j,
                         std::floor(rng.uniform(400.0, 600.0))});
    }
  }
  return records;
}

/// Feeds a node pipeline the records in [resume_before_s, stop_before_s).
/// The stream is regenerated from scratch each call (checkpoint replay
/// semantics: same seed, skip what the snapshot already consumed).
void feed(ingest::ParallelPipeline& pipeline, std::uint64_t node,
          double resume_before_s, double stop_before_s) {
  for (const TimedRecord& r : node_stream(node)) {
    if (r.time_s < resume_before_s || r.time_s >= stop_before_s) continue;
    pipeline.add(r.key, r.mass, r.time_s);
  }
}

ingest::ParallelConfig parallel_config() {
  ingest::ParallelConfig parallel;
  parallel.workers = 2;
  parallel.queue_capacity = 1 << 12;
  parallel.batch_size = 64;
  return parallel;
}

/// A full uninterrupted node run against the server: anchor the shared
/// interval grid, handshake, stream, flush, bye.
void run_node(std::uint16_t port, std::uint64_t node) {
  ingest::ParallelPipeline pipeline(node_config(), parallel_config());
  pipeline.start_at(0.0);
  ShipperConfig ship_config;
  ship_config.port = port;
  ship_config.node_id = node;
  Shipper shipper(ship_config);
  ASSERT_EQ(shipper.connect(node_config()), 0u);
  shipper.attach(pipeline);
  feed(pipeline, node, 0.0, kNoLimit);
  pipeline.flush();
  shipper.bye();
  EXPECT_EQ(shipper.next_to_ship(), static_cast<std::uint64_t>(kMinutes));
}

/// (key, error) alarms of one report keyed for order-independent comparison
/// (alarm ranking sorts by |error|, where exact ties have no defined order).
std::map<std::uint64_t, double> alarm_map(const core::IntervalReport& report) {
  std::map<std::uint64_t, double> alarms;
  for (const auto& alarm : report.alarms) alarms[alarm.key] = alarm.error;
  return alarms;
}

void expect_reports_bit_identical(
    const std::vector<core::IntervalReport>& got,
    const std::vector<core::IntervalReport>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t t = 0; t < want.size(); ++t) {
    SCOPED_TRACE(t);
    EXPECT_EQ(got[t].start_s, want[t].start_s);
    EXPECT_EQ(got[t].end_s, want[t].end_s);
    EXPECT_EQ(got[t].records, want[t].records);
    EXPECT_EQ(got[t].detection_ran, want[t].detection_ran);
    EXPECT_EQ(got[t].estimated_error_f2, want[t].estimated_error_f2);
    EXPECT_EQ(got[t].alarm_threshold, want[t].alarm_threshold);
    EXPECT_EQ(alarm_map(got[t]), alarm_map(want[t]));
  }
}

TEST(LoopbackDistributed, ThreeNodesMatchSingleMergedRunBitForBit) {
  AggServerConfig server_config;
  server_config.straggler_timeout_s = 0.0;  // barrier only, no clock policy
  AggServer server(agg_config(), server_config);
  server.start();

  // Three live nodes, concurrently, over real sockets.
  std::vector<std::thread> nodes;
  for (const std::uint64_t node : kNodes) {
    nodes.emplace_back([&server, node] { run_node(server.port(), node); });
  }
  for (auto& t : nodes) t.join();

  std::vector<core::IntervalReport> global;
  AggregatorStats stats;
  server.with_core([&](Aggregator& core) {
    core.flush();
    global = core.reports();
    stats = core.stats();
  });
  server.stop();

  EXPECT_EQ(stats.contributions, 3u * kMinutes);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.straggler_closes, 0u);
  EXPECT_EQ(stats.intervals_combined, static_cast<std::uint64_t>(kMinutes));

  // Reference: ONE pipeline fed the merged trace in time order, on the same
  // epoch-anchored grid. Integer masses make every register sum exact, so
  // "equal" here means bit-identical, not approximately.
  std::vector<TimedRecord> merged;
  for (const std::uint64_t node : kNodes) {
    const auto stream = node_stream(node);
    merged.insert(merged.end(), stream.begin(), stream.end());
  }
  std::stable_sort(merged.begin(), merged.end(),
                   [](const TimedRecord& a, const TimedRecord& b) {
                     return a.time_s < b.time_s;
                   });
  ingest::ParallelConfig serial;
  serial.workers = 1;
  ingest::ParallelPipeline reference(node_config(), serial);
  reference.start_at(0.0);
  for (const TimedRecord& r : merged) reference.add(r.key, r.mass, r.time_s);
  reference.flush();

  expect_reports_bit_identical(global, reference.reports());

  // The distributed change is in the global view.
  bool alarmed = false;
  for (const auto& alarm : global[4].alarms) alarmed |= alarm.key == 777;
  EXPECT_TRUE(alarmed) << "minute-4 jump on the shared key did not alarm";
}

TEST(LoopbackDistributed, KilledNodeRejoinsFromCheckpointWithoutDoubleCount) {
  // Reference run: all three nodes uninterrupted.
  std::vector<core::IntervalReport> want;
  {
    AggServerConfig server_config;
    server_config.straggler_timeout_s = 0.0;
    AggServer server(agg_config(), server_config);
    server.start();
    for (const std::uint64_t node : kNodes) run_node(server.port(), node);
    server.with_core([&](Aggregator& core) {
      core.flush();
      want = core.reports();
    });
    server.stop();
  }

  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / "scd_loopback_rejoin";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  AggServerConfig server_config;
  server_config.straggler_timeout_s = 0.0;
  AggServer server(agg_config(), server_config);
  server.start();

  // Nodes 1 and 2 complete their whole stream first; their parts for the
  // later intervals wait at the barrier for node 3.
  run_node(server.port(), 1);
  run_node(server.port(), 2);

  // Node 3, incarnation one: checkpoints every 2 barriers, ships intervals
  // 0..2, then dies without flush or bye — wherever it was, the aggregator
  // has acked through interval 2 and the newest snapshot covers only 0..1.
  {
    ingest::ParallelPipeline pipeline(node_config(), parallel_config());
    pipeline.start_at(0.0);
    ShipperConfig ship_config;
    ship_config.port = server.port();
    ship_config.node_id = 3;
    Shipper shipper(ship_config);
    ASSERT_EQ(shipper.connect(node_config()), 0u);
    shipper.attach(pipeline);
    checkpoint::CheckpointWriterOptions options;
    options.directory = dir.string();
    options.every = 2;
    checkpoint::CheckpointWriter writer(options, node_config());
    writer.attach(pipeline);
    // Stop just past the first minute-3 record: it closes (and ships)
    // interval 2, then sits in the open interval 3 and dies with the node.
    feed(pipeline, 3, 0.0, 181.0);
    // No flush, no bye: the destructor is the crash.
  }
  server.with_core([&](Aggregator& core) {
    EXPECT_EQ(core.next_expected(3), 3u);
    EXPECT_EQ(core.next_to_close(), 3u);  // intervals 0..2 closed globally
  });

  // Incarnation two: restore the newest snapshot, reconnect, replay the
  // stream from where the snapshot stops. The rebuilt interval 2 is below
  // the aggregator's watermark for node 3 — the shipper learns that from
  // the HelloAck and never even re-sends it.
  {
    ingest::ParallelPipeline pipeline(node_config(), parallel_config());
    const checkpoint::RecoverResult recovered =
        checkpoint::recover(dir.string(), pipeline);
    ASSERT_TRUE(recovered.restored);
    const double resume = pipeline.position().next_interval_start_s;
    EXPECT_EQ(resume, 120.0);  // snapshot covers intervals 0..1
    ShipperConfig ship_config;
    ship_config.port = server.port();
    ship_config.node_id = 3;
    Shipper shipper(ship_config);
    ASSERT_EQ(shipper.connect(node_config()), 3u);
    shipper.attach(pipeline);
    feed(pipeline, 3, resume, kNoLimit);
    pipeline.flush();
    shipper.bye();
    EXPECT_EQ(shipper.skipped(), 1u);  // interval 2: rebuilt, not re-shipped
    EXPECT_EQ(shipper.next_to_ship(), static_cast<std::uint64_t>(kMinutes));
  }

  std::vector<core::IntervalReport> got;
  AggregatorStats stats;
  server.with_core([&](Aggregator& core) {
    core.flush();
    got = core.reports();
    stats = core.stats();
  });
  server.stop();

  // No double count, no loss: every (node, interval) integrated exactly
  // once, and the global reports match the uninterrupted run bit-for-bit.
  EXPECT_EQ(stats.contributions, 3u * kMinutes);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.stale_drops, 0u);
  EXPECT_EQ(stats.straggler_closes, 0u);
  expect_reports_bit_identical(got, want);
}

}  // namespace
}  // namespace scd::agg
