// Tabulation-based 4-universal hashing for 32-bit keys (Thorup & Zhang,
// paper ref [33]) — the scheme the paper's implementation and Table 1 use.
//
// A 32-bit key is split into two 16-bit characters x0, x1. With three
// character tables filled with independent uniform values,
//
//     h(x) = T0[x0] ^ T1[x1] ^ T2[x0 + x1]
//
// is 4-universal (the derived character x0 + x1 in [0, 2^17) is what lifts
// simple tabulation from 3- to 4-universality for two characters).
//
// Each table entry is a 64-bit word holding four independent 16-bit lanes, so
// one triple of lookups yields four independent hash functions; a family of
// H rows uses ceil(H/4) table triples. This reproduces the paper's "each hash
// computation produces 8 independent 16-bit hash values" layout (two triples).
//
// Storage is GROUP-INTERLEAVED: for each character value x, every group's
// entry sits consecutively (t0_[x * groups + g]), so evaluating all H rows
// of one key touches one cache line per character table instead of one per
// (table, group). The tables are hundreds of KiB per group — far beyond L2
// for random keys, so those line fills dominate hash cost and interleaving
// nearly halves it at the common two-group H in [5, 8]. The interleaving is
// pure layout: entry values, and therefore all hash outputs for a given
// (seed, rows), are identical to the naive per-group layout.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <vector>

#include "hash/hash_family.h"

namespace scd::hash {

class TabulationHashFamily {
 public:
  /// Keys wider than 32 bits are outside this family's domain (the split
  /// into two 16-bit characters covers 32 bits); callers must use
  /// CwHashFamily for 64-bit key kinds.
  static constexpr unsigned kKeyBits = 32;

  /// Creates `rows` independent hash functions over 32-bit keys, with table
  /// contents derived deterministically from `seed`.
  TabulationHashFamily(std::uint64_t seed, std::size_t rows);

  /// Hashes the key with hash function `row`. Precondition: key < 2^32
  /// (use CwHashFamily for wider keys).
  [[nodiscard]] std::uint16_t hash16(std::size_t row,
                                     std::uint64_t key) const noexcept {
    assert(key <= 0xffffffffULL);
    const std::size_t group = row >> 2;
    const unsigned lane = static_cast<unsigned>(row & 3) * 16;
    return static_cast<std::uint16_t>(hash_group(group, static_cast<std::uint32_t>(key)) >> lane);
  }

  /// One packed evaluation: 4 independent 16-bit values for group `group`.
  [[nodiscard]] std::uint64_t hash_group(std::size_t group,
                                         std::uint32_t key) const noexcept {
    const std::uint32_t x0 = key & 0xffff;
    const std::uint32_t x1 = key >> 16;
    return t0_[x0 * groups_ + group] ^ t1_[x1 * groups_ + group] ^
           t2_[(x0 + x1) * groups_ + group];
  }

  /// Fills `out[0..n)` (n = rows()) with all hash values of `key` using one
  /// packed lookup per 4 rows — the paper's batched hashing pattern.
  void hash_all(std::uint32_t key, std::uint16_t* out) const noexcept {
    const std::uint32_t x0 = key & 0xffff;
    const std::uint32_t x1 = key >> 16;
    const std::uint64_t* a = &t0_[x0 * groups_];
    const std::uint64_t* b = &t1_[x1 * groups_];
    const std::uint64_t* c = &t2_[(x0 + x1) * groups_];
    std::size_t row = 0;
    for (std::size_t g = 0; g < groups_; ++g) {
      std::uint64_t packed = a[g] ^ b[g] ^ c[g];
      for (unsigned lane = 0; lane < 4 && row < rows_; ++lane, ++row) {
        out[row] = static_cast<std::uint16_t>(packed);
        packed >>= 16;
      }
    }
  }

  /// Prefetches the table cache lines `hash_group`/`hash_all` for `key`
  /// will touch (the interleaved layout puts every group's entry on the
  /// prefetched line). Batched callers issue this a few keys ahead so the
  /// lookups' cache misses overlap instead of serializing.
  void prefetch(std::uint32_t key) const noexcept {
    const std::uint32_t x0 = key & 0xffff;
    const std::uint32_t x1 = key >> 16;
    __builtin_prefetch(&t0_[x0 * groups_], 0);
    __builtin_prefetch(&t1_[x1 * groups_], 0);
    __builtin_prefetch(&t2_[(x0 + x1) * groups_], 0);
  }

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }

  /// The seed this family was constructed from (for serialization: a family
  /// is fully determined by (seed, rows)).
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  // Group-interleaved character tables (see file comment): entry for
  // character value x and group g lives at [x * groups_ + g].
  std::vector<std::uint64_t> t0_;  // 2^16 x groups entries
  std::vector<std::uint64_t> t1_;  // 2^16 x groups entries
  std::vector<std::uint64_t> t2_;  // (2^17 - 1) x groups (index x0 + x1)
  std::size_t groups_;
  std::size_t rows_;
  std::uint64_t seed_ = 0;
};

static_assert(HashFamily16<TabulationHashFamily>);

}  // namespace scd::hash
