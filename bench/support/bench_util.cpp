#include "support/bench_util.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>

#include "common/logging.h"
#include "common/random.h"
#include "common/strutil.h"
#include "eval/sketch_path.h"
#include "eval/trace_cache.h"
#include "eval/tsv_export.h"
#include "gridsearch/grid_search.h"
#include "traffic/key_extract.h"
#include "traffic/router_profiles.h"

namespace scd::bench {

namespace {
int g_failed_checks = 0;
std::string g_artifact_slug;

std::string slugify(const std::string& text) {
  std::string slug;
  for (const char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(std::tolower(c)));
    } else if (!slug.empty() && slug.back() != '_') {
      slug.push_back('_');
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}
}  // namespace

void print_header(const std::string& artifact, const std::string& title,
                  const std::string& paper_claim) {
  g_artifact_slug = slugify(artifact);
  std::printf("\n==== %s: %s ====\n", artifact.c_str(), title.c_str());
  std::printf("# paper shape: %s\n", paper_claim.c_str());
}

void print_series(const std::string& name,
                  const std::vector<std::pair<double, double>>& points) {
  for (const auto& [x, y] : points) {
    std::printf("%s\t%g\t%g\n", name.c_str(), x, y);
  }
  // Optional plot-ready export: one TSV per series under $SCD_OUT_DIR.
  const std::string& dir = eval::tsv_export_dir();
  if (dir.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  try {
    eval::TsvWriter writer(
        dir + "/" + g_artifact_slug + "_" + slugify(name) + ".tsv",
        {"x", "y"});
    for (const auto& [x, y] : points) writer.row(std::vector<double>{x, y});
  } catch (const std::exception& e) {
    SCD_WARN() << "tsv export failed: " << e.what();
  }
}

bool check(bool ok, const std::string& claim, const std::string& details) {
  if (!ok) ++g_failed_checks;
  std::printf("CHECK %s: %s%s%s\n", claim.c_str(), ok ? "PASS" : "FAIL",
              details.empty() ? "" : " — ", details.c_str());
  return ok;
}

int finish() {
  if (g_failed_checks > 0) {
    std::printf("\n%d check(s) FAILED\n", g_failed_checks);
    return 1;
  }
  std::printf("\nall checks passed\n");
  return 0;
}

const eval::IntervalizedStream& stream_for(const std::string& router,
                                           double interval_s) {
  static std::map<std::pair<std::string, double>,
                  std::unique_ptr<eval::IntervalizedStream>>
      cache;
  const auto key = std::make_pair(router, interval_s);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const auto& trace = eval::cached_trace(traffic::router_by_name(router));
    it = cache
             .emplace(key, std::make_unique<eval::IntervalizedStream>(
                               trace, interval_s, traffic::KeyKind::kDstIp,
                               traffic::UpdateKind::kBytes))
             .first;
  }
  return *it->second;
}

std::size_t warmup_intervals(double interval_s) {
  return static_cast<std::size_t>(3600.0 / interval_s);
}

double estimated_total_energy_objective(const eval::IntervalizedStream& stream,
                                        const forecast::ModelConfig& config,
                                        std::size_t warmup) {
  eval::SketchPathOptions options;
  options.h = 1;          // paper §4.2: grid search runs at H=1, K=8192
  options.k = 8192;
  options.collect_errors = false;
  const auto result = eval::compute_sketch_errors(stream, config, options);
  return result.total_f2(warmup);
}

namespace {

std::string params_path(const std::string& router, double interval_s,
                        forecast::ModelKind kind) {
  return eval::trace_cache_dir() +
         common::str_format("/params_%s_%d_%s.cfg", router.c_str(),
                            static_cast<int>(interval_s),
                            forecast::model_kind_name(kind));
}

bool load_config(const std::string& path, forecast::ModelKind kind,
                 forecast::ModelConfig& out) {
  std::ifstream in(path);
  if (!in) return false;
  int kind_int = 0;
  forecast::ModelConfig c;
  in >> kind_int >> c.window >> c.alpha >> c.beta >> c.gamma >> c.period >>
      c.arima.p >> c.arima.d >> c.arima.q >> c.arima.ar[0] >> c.arima.ar[1] >>
      c.arima.ma[0] >> c.arima.ma[1];
  if (!in || kind_int != static_cast<int>(kind)) return false;
  c.kind = kind;
  if (!c.valid()) return false;
  out = c;
  return true;
}

void save_config(const std::string& path, const forecast::ModelConfig& c) {
  std::ofstream out(path);
  out << static_cast<int>(c.kind) << ' ' << c.window << ' ' << c.alpha << ' '
      << c.beta << ' ' << c.gamma << ' ' << c.period << ' ' << c.arima.p << ' '
      << c.arima.d << ' ' << c.arima.q << ' ' << c.arima.ar[0] << ' '
      << c.arima.ar[1] << ' ' << c.arima.ma[0] << ' ' << c.arima.ma[1] << '\n';
}

}  // namespace

forecast::ModelConfig cached_grid_model(const std::string& router,
                                        double interval_s,
                                        forecast::ModelKind kind) {
  const std::string path = params_path(router, interval_s, kind);
  forecast::ModelConfig config;
  if (load_config(path, kind, config)) return config;

  const auto& stream = stream_for(router, interval_s);
  const std::size_t warmup = warmup_intervals(interval_s);
  gridsearch::GridSearchOptions options;
  options.max_window = interval_s <= 60.0 ? 12 : 10;  // paper §4.2
  const auto result = gridsearch::grid_search(
      kind,
      [&stream, warmup](const forecast::ModelConfig& candidate) {
        return estimated_total_energy_objective(stream, candidate, warmup);
      },
      options);
  std::error_code ec;
  std::filesystem::create_directories(eval::trace_cache_dir(), ec);
  save_config(path, result.best);
  return result.best;
}

std::vector<forecast::ModelConfig> random_model_configs(
    forecast::ModelKind kind, std::size_t count, std::uint64_t seed,
    std::size_t max_window) {
  using forecast::ModelKind;
  common::Rng rng(seed ^ (static_cast<std::uint64_t>(kind) << 32));
  std::vector<forecast::ModelConfig> configs;
  configs.reserve(count);
  while (configs.size() < count) {
    forecast::ModelConfig c;
    c.kind = kind;
    switch (kind) {
      case ModelKind::kMovingAverage:
      case ModelKind::kSShapedMA:
        c.window = static_cast<std::size_t>(
            rng.next_in(1, static_cast<std::int64_t>(max_window)));
        break;
      case ModelKind::kEwma:
        c.alpha = rng.uniform(0.05, 1.0);
        break;
      case ModelKind::kHoltWinters:
        c.alpha = rng.uniform(0.05, 1.0);
        c.beta = rng.uniform(0.0, 1.0);
        break;
      case ModelKind::kArima0:
      case ModelKind::kArima1: {
        static constexpr std::array<std::pair<int, int>, 4> kOrders{
            {{1, 0}, {0, 1}, {1, 1}, {2, 1}}};
        const auto [p, q] = kOrders[rng.next_below(kOrders.size())];
        c.arima.p = p;
        c.arima.q = q;
        c.arima.d = kind == ModelKind::kArima1 ? 1 : 0;
        for (std::size_t j = 0; j < static_cast<std::size_t>(p); ++j) {
          c.arima.ar[j] = rng.uniform(-2.0, 2.0);
        }
        for (std::size_t i = 0; i < static_cast<std::size_t>(q); ++i) {
          c.arima.ma[i] = rng.uniform(-2.0, 2.0);
        }
        break;
      }
      case ModelKind::kSeasonalHoltWinters:
        c.alpha = rng.uniform(0.05, 1.0);
        c.beta = rng.uniform(0.0, 1.0);
        c.gamma = rng.uniform(0.0, 1.0);
        break;
    }
    if (c.valid()) configs.push_back(c);
  }
  return configs;
}

}  // namespace scd::bench
