// Entry-point glue shared by the fuzz harnesses (fuzz_*.cpp).
//
// Each harness defines one LLVMFuzzerTestOneInput and builds in two modes:
//
//   * SCD_FUZZ_LIBFUZZER (clang, -fsanitize=fuzzer): libFuzzer provides
//     main() and drives the callback with coverage-guided mutations. The
//     CI fuzz-smoke job runs this for 60 s per target.
//   * otherwise (any compiler, including gcc): this header provides a
//     main() that replays every file / directory argument through the
//     callback once — the deterministic corpus-replay smoke registered in
//     ctest, so the parsers stay exercised on toolchains without libFuzzer.
//
// Contract under test, both modes: hostile bytes may only be rejected via
// the module's typed error (WireError / SerializeError / CheckpointError).
// Any other escape — a different exception, a sanitizer report, a crash —
// is a finding.
#pragma once

#include <cstddef>
#include <cstdint>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

#ifndef SCD_FUZZ_LIBFUZZER

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

namespace scd_fuzz {

inline int replay_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "fuzz: cannot open %s\n", path.string().c_str());
    return 1;
  }
  std::vector<char> raw{std::istreambuf_iterator<char>(in),
                        std::istreambuf_iterator<char>()};
  (void)LLVMFuzzerTestOneInput(
      reinterpret_cast<const std::uint8_t*>(raw.data()), raw.size());
  return 0;
}

}  // namespace scd_fuzz

int main(int argc, char** argv) {
  int replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    if (std::filesystem::is_directory(arg)) {
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (!entry.is_regular_file()) continue;
        if (scd_fuzz::replay_file(entry.path()) != 0) return 1;
        ++replayed;
      }
    } else {
      if (scd_fuzz::replay_file(arg) != 0) return 1;
      ++replayed;
    }
  }
  std::fprintf(stderr, "fuzz: replayed %d input(s) without a crash\n",
               replayed);
  return 0;
}

#endif  // !SCD_FUZZ_LIBFUZZER
