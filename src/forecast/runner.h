// ForecastRunner: the per-interval driver loop shared by the sketch path and
// the per-flow path. Feeds observations to a model and hands back the error
// signal S_e(t) = S_o(t) - S_f(t) once the model is warmed up (§2.2).
#pragma once

#include <memory>
#include <optional>
#include <utility>

#include "forecast/linear_space.h"
#include "forecast/model.h"
#include "forecast/model_config.h"
#include "forecast/model_factory.h"

namespace scd::forecast {

template <LinearSignal V>
class ForecastRunner {
 public:
  ForecastRunner(const ModelConfig& config, const V& prototype)
      : model_(make_model<V>(config, prototype)),
        scratch_(zero_like(prototype)) {}

  /// Result of one interval: the forecast and the error, absent during model
  /// warm-up.
  struct Step {
    V forecast;
    V error;
  };

  /// Processes one interval's observed signal. Returns the forecast/error
  /// pair for this interval, or nullopt while warming up.
  [[nodiscard]] std::optional<Step> step(const V& observed) {
    std::optional<Step> result;
    if (model_->ready()) {
      model_->forecast_into(scratch_);
      Step s{scratch_, subtract(observed, scratch_)};
      result.emplace(std::move(s));
    }
    model_->observe(observed);
    return result;
  }

  [[nodiscard]] const ForecastModel<V>& model() const noexcept { return *model_; }

  /// Checkpoint passthrough: the runner itself is stateless beyond the model
  /// (scratch_ is overwritten before every read).
  void save_state(StateWriter<V>& out) const { model_->save_state(out); }
  void restore_state(StateReader<V>& in) { model_->restore_state(in); }

 private:
  std::unique_ptr<ForecastModel<V>> model_;
  V scratch_;
};

}  // namespace scd::forecast
