// AVX2+FMA kernels. Built into every binary via per-function
// target("avx2,fma") attributes; only executed after a cpuid check
// (supported(), consulted once by the dispatcher in kernels.cpp).
//
// Numerical notes:
//   * scale and axpy are element-wise: lane i computes exactly what the
//     scalar reference computes for element i — a separately rounded
//     multiply then add, never an FMA. The scalar reference cannot contract
//     (base x86-64 has no FMA instruction), so the vector path must not
//     either; this TU is built with -ffp-contract=off (see CMakeLists.txt)
//     to stop GCC fusing the mul+add intrinsic pairs and the tail loops
//     inside these target("avx2,fma") functions. Results are bit-identical
//     across dispatch modes.
//   * The reductions (dot, sum_squares, hsum) keep 4 independent vector
//     accumulators (16 doubles in flight) to break the add latency chain;
//     this reassociates the sum, so they match the scalar reference only to
//     ULP-level tolerance (see tests/simd/kernels_test.cpp).
#include "simd/kernels_avx2.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#define SCD_AVX2_TARGET __attribute__((target("avx2,fma")))

namespace scd::simd::avx2 {

bool supported() noexcept {
  return __builtin_cpu_supports("avx2") != 0 &&
         __builtin_cpu_supports("fma") != 0;
}

namespace {

/// Horizontal sum of one 4-lane register: (v0+v2) + (v1+v3) — a fixed
/// tree order, part of the reduction contract the tests pin down.
SCD_AVX2_TARGET inline double reduce_lanes(__m256d v) noexcept {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(pair, pair);
  return _mm_cvtsd_f64(_mm_add_sd(pair, swapped));
}

}  // namespace

SCD_AVX2_TARGET void scale(double* x, std::size_t n, double c) noexcept {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), vc));
    _mm256_storeu_pd(x + i + 4, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), vc));
    _mm256_storeu_pd(x + i + 8, _mm256_mul_pd(_mm256_loadu_pd(x + i + 8), vc));
    _mm256_storeu_pd(x + i + 12,
                     _mm256_mul_pd(_mm256_loadu_pd(x + i + 12), vc));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), vc));
  }
  for (; i < n; ++i) x[i] *= c;
}

SCD_AVX2_TARGET void axpy(double* y, const double* x, std::size_t n,
                          double c) noexcept {
  const __m256d vc = _mm256_set1_pd(c);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(vc, _mm256_loadu_pd(x + i))));
    _mm256_storeu_pd(
        y + i + 4, _mm256_add_pd(_mm256_loadu_pd(y + i + 4),
                                 _mm256_mul_pd(vc, _mm256_loadu_pd(x + i + 4))));
    _mm256_storeu_pd(
        y + i + 8, _mm256_add_pd(_mm256_loadu_pd(y + i + 8),
                                 _mm256_mul_pd(vc, _mm256_loadu_pd(x + i + 8))));
    _mm256_storeu_pd(
        y + i + 12,
        _mm256_add_pd(_mm256_loadu_pd(y + i + 12),
                      _mm256_mul_pd(vc, _mm256_loadu_pd(x + i + 12))));
  }
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_add_pd(_mm256_loadu_pd(y + i),
                             _mm256_mul_pd(vc, _mm256_loadu_pd(x + i))));
  }
  for (; i < n; ++i) y[i] += c * x[i];
}

SCD_AVX2_TARGET double dot(const double* x, const double* y,
                           std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 4),
                           _mm256_loadu_pd(y + i + 4), acc1);
    acc2 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 8),
                           _mm256_loadu_pd(y + i + 8), acc2);
    acc3 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i + 12),
                           _mm256_loadu_pd(y + i + 12), acc3);
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i),
                           acc0);
  }
  __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                              _mm256_add_pd(acc2, acc3));
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += x[i] * y[i];
  return total;
}

SCD_AVX2_TARGET double sum_squares(const double* x, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m256d v0 = _mm256_loadu_pd(x + i);
    const __m256d v1 = _mm256_loadu_pd(x + i + 4);
    const __m256d v2 = _mm256_loadu_pd(x + i + 8);
    const __m256d v3 = _mm256_loadu_pd(x + i + 12);
    acc0 = _mm256_fmadd_pd(v0, v0, acc0);
    acc1 = _mm256_fmadd_pd(v1, v1, acc1);
    acc2 = _mm256_fmadd_pd(v2, v2, acc2);
    acc3 = _mm256_fmadd_pd(v3, v3, acc3);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    acc0 = _mm256_fmadd_pd(v, v, acc0);
  }
  __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                              _mm256_add_pd(acc2, acc3));
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += x[i] * x[i];
  return total;
}

SCD_AVX2_TARGET double hsum(const double* x, std::size_t n) noexcept {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m256d acc2 = _mm256_setzero_pd();
  __m256d acc3 = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(x + i + 4));
    acc2 = _mm256_add_pd(acc2, _mm256_loadu_pd(x + i + 8));
    acc3 = _mm256_add_pd(acc3, _mm256_loadu_pd(x + i + 12));
  }
  for (; i + 4 <= n; i += 4) {
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(x + i));
  }
  __m256d acc = _mm256_add_pd(_mm256_add_pd(acc0, acc1),
                              _mm256_add_pd(acc2, acc3));
  double total = reduce_lanes(acc);
  for (; i < n; ++i) total += x[i];
  return total;
}

SCD_AVX2_TARGET void index_shift_mask(const std::uint64_t* packed,
                                      std::size_t n, unsigned shift,
                                      std::uint64_t mask,
                                      std::uint32_t* out) noexcept {
  // Widened integer path for the batched-UPDATE row sweep: four packed
  // 64-bit hash groups are shifted and masked per register. The extracted
  // indices are < 2^16 (mask is K-1, K <= 65536), so each survives in the
  // low dword of its 64-bit lane; the permute gathers those even dwords
  // into the low 128 bits for a narrow store.
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i vm = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i pick = _mm256_setr_epi32(0, 2, 4, 6, 0, 2, 4, 6);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_and_si256(
        _mm256_srl_epi64(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(packed + i)),
            sh),
        vm);
    const __m256i g = _mm256_permutevar8x32_epi32(v, pick);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i),
                     _mm256_castsi256_si128(g));
  }
  for (; i < n; ++i) {
    out[i] = static_cast<std::uint32_t>((packed[i] >> shift) & mask);
  }
}

}  // namespace scd::simd::avx2

#else  // non-x86: the AVX2 backend is never selectable.

#include "simd/kernels_scalar.h"

namespace scd::simd::avx2 {

bool supported() noexcept { return false; }

void scale(double* x, std::size_t n, double c) noexcept {
  scalar::scale(x, n, c);
}
void axpy(double* y, const double* x, std::size_t n, double c) noexcept {
  scalar::axpy(y, x, n, c);
}
double dot(const double* x, const double* y, std::size_t n) noexcept {
  return scalar::dot(x, y, n);
}
double sum_squares(const double* x, std::size_t n) noexcept {
  return scalar::sum_squares(x, n);
}
double hsum(const double* x, std::size_t n) noexcept {
  return scalar::hsum(x, n);
}
void index_shift_mask(const std::uint64_t* packed, std::size_t n,
                      unsigned shift, std::uint64_t mask,
                      std::uint32_t* out) noexcept {
  scalar::index_shift_mask(packed, n, shift, mask, out);
}

}  // namespace scd::simd::avx2

#endif
