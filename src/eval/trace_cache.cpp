#include "eval/trace_cache.h"

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "traffic/flow_record.h"
#include "traffic/synthetic.h"
#include "traffic/trace_io.h"

namespace scd::eval {

std::string trace_cache_dir() {
  if (const char* dir = std::getenv("SCD_TRACE_DIR")) return dir;
  return "traces";
}

const std::vector<traffic::FlowRecord>& cached_trace(
    const traffic::RouterProfile& profile) {
  static std::mutex mutex;
  static std::map<std::string, std::vector<traffic::FlowRecord>> memory_cache;

  const std::lock_guard<std::mutex> lock(mutex);
  if (const auto it = memory_cache.find(profile.name); it != memory_cache.end()) {
    return it->second;
  }

  const std::filesystem::path dir = trace_cache_dir();
  const std::filesystem::path path = dir / (profile.name + ".scdt");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);

  if (std::filesystem::exists(path)) {
    try {
      auto records = traffic::read_trace(path.string());
      SCD_INFO() << "trace cache: loaded " << profile.name << " ("
                 << records.size() << " records) from " << path.string();
      return memory_cache.emplace(profile.name, std::move(records))
          .first->second;
    } catch (const std::exception& e) {
      SCD_WARN() << "trace cache: rereading " << path.string()
                 << " failed (" << e.what() << "); regenerating";
    }
  }

  traffic::SyntheticTraceGenerator generator(profile.config);
  auto records = generator.generate();
  SCD_INFO() << "trace cache: generated " << profile.name << " ("
             << records.size() << " records)";
  try {
    traffic::write_trace(path.string(), records);
  } catch (const std::exception& e) {
    SCD_WARN() << "trace cache: persisting " << path.string() << " failed ("
               << e.what() << "); continuing in-memory";
  }
  return memory_cache.emplace(profile.name, std::move(records)).first->second;
}

}  // namespace scd::eval
