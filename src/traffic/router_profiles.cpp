#include "traffic/router_profiles.h"

#include <stdexcept>

namespace scd::traffic {

namespace {

RouterProfile make_profile(std::string name, std::string size_class,
                           std::uint64_t seed, double base_rate,
                           std::size_t hosts, double zipf,
                           std::vector<AnomalySpec> anomalies) {
  RouterProfile p;
  p.name = std::move(name);
  p.size_class = std::move(size_class);
  p.config.seed = seed;
  p.config.duration_s = 14400.0;  // 4 hours, as in the paper
  p.config.base_rate = base_rate;
  p.config.num_hosts = hosts;
  p.config.zipf_exponent = zipf;
  p.config.diurnal_amplitude = 0.35;
  p.config.diurnal_period_s = 28800.0;
  p.config.diurnal_phase = static_cast<double>(seed % 7) * 0.7;
  p.config.anomalies = std::move(anomalies);
  return p;
}

AnomalySpec anomaly(AnomalyKind kind, double start_s, double duration_s,
                    double magnitude, std::size_t target_rank) {
  AnomalySpec a;
  a.kind = kind;
  a.start_s = start_s;
  a.duration_s = duration_s;
  a.magnitude = magnitude;
  a.target_rank = target_rank;
  return a;
}

std::vector<RouterProfile> build_catalog() {
  using K = AnomalyKind;
  std::vector<RouterProfile> catalog;
  // All anomalies start after the 1-hour model warm-up the paper uses.
  catalog.push_back(make_profile(
      "r01", "large", 101, 210.0, 60000, 1.05,
      {anomaly(K::kDosAttack, 5400, 600, 400.0, 120),
       anomaly(K::kFlashCrowd, 8000, 1200, 300.0, 2500),
       anomaly(K::kPortScan, 11000, 300, 200.0, 0),
       anomaly(K::kOutage, 12800, 600, 0.8, 20)}));
  catalog.push_back(make_profile(
      "r02", "", 102, 150.0, 45000, 1.10,
      {anomaly(K::kDosAttack, 6200, 400, 250.0, 300),
       anomaly(K::kOutage, 10500, 500, 0.7, 12)}));
  catalog.push_back(make_profile(
      "r03", "", 103, 110.0, 38000, 0.95,
      {anomaly(K::kFlashCrowd, 7200, 1500, 180.0, 1200),
       anomaly(K::kPortScan, 12000, 400, 120.0, 0)}));
  catalog.push_back(make_profile(
      "r04", "", 104, 80.0, 30000, 1.00,
      {anomaly(K::kDosAttack, 9000, 300, 200.0, 700),
       anomaly(K::kFlashCrowd, 11500, 900, 100.0, 60)}));
  catalog.push_back(make_profile(
      "r05", "medium", 105, 55.0, 22000, 1.05,
      {anomaly(K::kDosAttack, 6000, 300, 150.0, 200),
       anomaly(K::kFlashCrowd, 9000, 900, 120.0, 900),
       anomaly(K::kOutage, 12000, 400, 0.7, 10)}));
  catalog.push_back(make_profile(
      "r06", "", 106, 40.0, 18000, 1.15,
      {anomaly(K::kPortScan, 7800, 600, 80.0, 0),
       anomaly(K::kDosAttack, 11000, 400, 110.0, 90)}));
  catalog.push_back(make_profile(
      "r07", "", 107, 30.0, 15000, 0.90,
      {anomaly(K::kFlashCrowd, 8400, 1200, 70.0, 400)}));
  catalog.push_back(make_profile(
      "r08", "", 108, 22.0, 12000, 1.00,
      {anomaly(K::kDosAttack, 7000, 500, 80.0, 150),
       anomaly(K::kOutage, 11800, 600, 0.75, 8)}));
  catalog.push_back(make_profile(
      "r09", "", 109, 17.0, 10000, 1.10,
      {anomaly(K::kFlashCrowd, 9600, 800, 50.0, 250)}));
  catalog.push_back(make_profile(
      "r10", "small", 110, 14.0, 8000, 1.05,
      {anomaly(K::kDosAttack, 7000, 300, 60.0, 50),
       anomaly(K::kPortScan, 10000, 600, 40.0, 0)}));
  return catalog;
}

}  // namespace

const std::vector<RouterProfile>& router_catalog() {
  static const std::vector<RouterProfile> catalog = build_catalog();
  return catalog;
}

const RouterProfile& router_by_name(const std::string& name) {
  for (const RouterProfile& p : router_catalog()) {
    if (p.name == name || p.size_class == name) return p;
  }
  throw std::out_of_range("unknown router profile: " + name);
}

}  // namespace scd::traffic
