#include "checkpoint/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <iterator>
#include <limits>
#include <optional>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "checkpoint/checkpoint_metrics.h"
#include "common/atomic_file.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/pipeline.h"
#include "ingest/parallel_pipeline.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sketch/serialize.h"

namespace scd::checkpoint {

const char* checkpoint_error_kind_name(CheckpointErrorKind kind) noexcept {
  switch (kind) {
    case CheckpointErrorKind::kWriteFailed:
      return "write-failed";
    case CheckpointErrorKind::kTruncated:
      return "truncated";
    case CheckpointErrorKind::kBadMagic:
      return "bad-magic";
    case CheckpointErrorKind::kBadVersion:
      return "bad-version";
    case CheckpointErrorKind::kBadCrc:
      return "bad-crc";
    case CheckpointErrorKind::kConfigMismatch:
      return "config-mismatch";
    case CheckpointErrorKind::kBadPayload:
      return "bad-payload";
  }
  return "unknown";
}

namespace {

/// Maps each checkpoint failure onto the closest base SerializeErrorKind so
/// legacy catch sites switching on kind() stay meaningful.
[[nodiscard]] sketch::SerializeErrorKind base_kind(
    CheckpointErrorKind kind) noexcept {
  switch (kind) {
    case CheckpointErrorKind::kWriteFailed:
      return sketch::SerializeErrorKind::kWriteFailed;
    case CheckpointErrorKind::kTruncated:
      return sketch::SerializeErrorKind::kTruncated;
    case CheckpointErrorKind::kBadMagic:
      return sketch::SerializeErrorKind::kBadMagic;
    case CheckpointErrorKind::kBadVersion:
      return sketch::SerializeErrorKind::kBadVersion;
    case CheckpointErrorKind::kBadCrc:
      return sketch::SerializeErrorKind::kCorruptRegisters;
    case CheckpointErrorKind::kConfigMismatch:
      return sketch::SerializeErrorKind::kFamilyMismatch;
    case CheckpointErrorKind::kBadPayload:
      return sketch::SerializeErrorKind::kCorruptRegisters;
  }
  return sketch::SerializeErrorKind::kCorruptRegisters;
}

}  // namespace

CheckpointError::CheckpointError(CheckpointErrorKind kind,
                                 const std::string& message)
    : sketch::SerializeError(
          base_kind(kind), std::string("checkpoint [") +
                               checkpoint_error_kind_name(kind) + "] " +
                               message),
      kind_(kind) {}

std::uint64_t config_fingerprint(const core::PipelineConfig& config) noexcept {
  // The fingerprint moved to core so provenance records and flight-recorder
  // dumps share it; this alias keeps existing checkpoint call sites working.
  return core::config_fingerprint(config);
}

// ---------------------------------------------------------------------------
// Real file ops

namespace {

/// Delegates to the shared common/atomic_file.h primitives (the same recipe
/// now also backs flight-recorder dumps), translating their (bool, message)
/// reporting into CheckpointError. Message formats are unchanged:
/// "<op> <path>: <strerror>".
class PosixFileOps final : public FileOps {
 public:
  void write_file_durable(const std::filesystem::path& path,
                          const std::vector<std::uint8_t>& data) override {
    std::string error;
    if (!common::write_file_durable(path, data.data(), data.size(), error)) {
      throw CheckpointError(CheckpointErrorKind::kWriteFailed, error);
    }
  }

  void rename_durable(const std::filesystem::path& from,
                      const std::filesystem::path& to) override {
    std::string error;
    if (!common::rename_durable(from, to, error)) {
      throw CheckpointError(CheckpointErrorKind::kWriteFailed, error);
    }
  }

  void remove_file(const std::filesystem::path& path) noexcept override {
    common::remove_file_quiet(path);
  }
};

// ---------------------------------------------------------------------------
// Frame encode/parse

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

[[nodiscard]] std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

[[nodiscard]] std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_checkpoint_frame(
    PayloadKind kind, std::uint64_t config_fingerprint,
    std::uint64_t interval_index, const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kCheckpointHeaderBytes + payload.size());
  put_u32(out, kCheckpointMagic);
  put_u32(out, kCheckpointVersion);
  put_u32(out, static_cast<std::uint32_t>(kind));
  put_u32(out, 0);  // reserved
  put_u64(out, config_fingerprint);
  put_u64(out, interval_index);
  put_u64(out, payload.size());
  put_u32(out, common::crc32(payload.data(), payload.size()));
  put_u32(out, common::crc32(out.data(), out.size()));  // header CRC
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

CheckpointFrame decode_checkpoint_frame(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kCheckpointHeaderBytes) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "file ends inside the " +
                              std::to_string(kCheckpointHeaderBytes) +
                              "-byte header (" + std::to_string(bytes.size()) +
                              " bytes)");
  }
  const std::uint8_t* p = bytes.data();
  if (get_u32(p) != kCheckpointMagic) {
    throw CheckpointError(CheckpointErrorKind::kBadMagic,
                          "leading bytes are not \"SCDP\"");
  }
  const std::uint32_t header_crc = get_u32(p + 44);
  if (common::crc32(p, 44) != header_crc) {
    throw CheckpointError(CheckpointErrorKind::kBadCrc,
                          "header CRC32 mismatch");
  }
  const std::uint32_t version = get_u32(p + 4);
  if (version != kCheckpointVersion) {
    throw CheckpointError(CheckpointErrorKind::kBadVersion,
                          "version " + std::to_string(version) +
                              " is not the supported version " +
                              std::to_string(kCheckpointVersion));
  }
  const std::uint32_t kind = get_u32(p + 8);
  if (kind != static_cast<std::uint32_t>(PayloadKind::kSerial) &&
      kind != static_cast<std::uint32_t>(PayloadKind::kParallel)) {
    throw CheckpointError(CheckpointErrorKind::kBadPayload,
                          "unknown payload kind " + std::to_string(kind));
  }
  CheckpointFrame parsed;
  parsed.kind = static_cast<PayloadKind>(kind);
  parsed.config_fingerprint = get_u64(p + 16);
  parsed.interval_index = get_u64(p + 24);
  const std::uint64_t payload_len = get_u64(p + 32);
  const std::uint64_t body = bytes.size() - kCheckpointHeaderBytes;
  if (body < payload_len) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "payload holds " + std::to_string(body) + " of " +
                              std::to_string(payload_len) + " bytes");
  }
  if (body > payload_len) {
    throw CheckpointError(CheckpointErrorKind::kBadPayload,
                          std::to_string(body - payload_len) +
                              " trailing bytes after the payload");
  }
  const std::uint32_t payload_crc = get_u32(p + 40);
  if (common::crc32(p + kCheckpointHeaderBytes,
                    static_cast<std::size_t>(payload_len)) != payload_crc) {
    throw CheckpointError(CheckpointErrorKind::kBadCrc,
                          "payload CRC32 mismatch");
  }
  parsed.payload.assign(bytes.begin() + static_cast<std::ptrdiff_t>(
                                            kCheckpointHeaderBytes),
                        bytes.end());
  return parsed;
}

namespace {

[[nodiscard]] std::vector<std::uint8_t> read_file(
    const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw CheckpointError(CheckpointErrorKind::kTruncated,
                          "cannot open " + path.string());
  }
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

constexpr const char* kCheckpointPrefix = "ckpt-";
constexpr const char* kCheckpointSuffix = ".scdc";
constexpr const char* kTempSuffix = ".tmp";

}  // namespace

FileOps& real_file_ops() noexcept {
  static PosixFileOps ops;
  return ops;
}

std::string checkpoint_filename(std::uint64_t interval_index) {
  std::string digits = std::to_string(interval_index);
  digits.insert(0, 20 - std::min<std::size_t>(20, digits.size()), '0');
  return kCheckpointPrefix + digits + kCheckpointSuffix;
}

namespace {

/// The interval index encoded in a checkpoint filename, or nullopt when the
/// part between prefix and suffix is not a pure decimal number (hand-renamed
/// files, foreign tools). Writer-produced names are 20-digit zero-padded,
/// but the listing must not ASSUME that: "ckpt-5.scdc" sorted
/// lexicographically lands above "ckpt-00000000000000000100.scdc", which
/// once made recovery order depend on how a file had been (re)named.
[[nodiscard]] std::optional<std::uint64_t> parse_checkpoint_interval(
    const std::string& name) {
  const std::size_t prefix_len = std::string(kCheckpointPrefix).size();
  const std::size_t suffix_len = std::string(kCheckpointSuffix).size();
  if (name.size() <= prefix_len + suffix_len) return std::nullopt;
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty() ||
      digits.find_first_not_of("0123456789") != std::string::npos) {
    return std::nullopt;
  }
  // 20 decimal digits can exceed 2^64 - 1; reject overflow instead of
  // wrapping into a bogus (and possibly "newest") index.
  std::uint64_t value = 0;
  for (const char c : digits) {
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (value > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;
    }
    value = value * 10 + digit;
  }
  return value;
}

}  // namespace

std::vector<std::filesystem::path> list_checkpoints(
    const std::filesystem::path& directory) {
  struct Candidate {
    std::filesystem::path path;
    std::string name;
    std::optional<std::uint64_t> interval;
  };
  std::vector<Candidate> found;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(directory, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with(kCheckpointPrefix) &&
        name.ends_with(kCheckpointSuffix)) {
      found.push_back({entry.path(), name, parse_checkpoint_interval(name)});
    }
  }
  // Newest (highest NUMERIC interval) first; names that do not parse sort
  // last. Two files claiming the same interval (e.g. a padded and an
  // unpadded spelling) tie-break on the filename, ascending — a total order
  // independent of directory-iteration order, so recover() probes the same
  // file first on every filesystem.
  std::sort(found.begin(), found.end(),
            [](const Candidate& a, const Candidate& b) {
              const bool a_valid = a.interval.has_value();
              const bool b_valid = b.interval.has_value();
              if (a_valid != b_valid) return a_valid;
              if (a_valid && *a.interval != *b.interval) {
                return *a.interval > *b.interval;
              }
              return a.name < b.name;
            });
  std::vector<std::filesystem::path> out;
  out.reserve(found.size());
  for (Candidate& candidate : found) out.push_back(std::move(candidate.path));
  return out;
}

// ---------------------------------------------------------------------------
// CheckpointWriter

CheckpointWriter::CheckpointWriter(CheckpointWriterOptions options,
                                   const core::PipelineConfig& config)
    : options_(std::move(options)),
      fingerprint_(checkpoint::config_fingerprint(config)),
      ops_(options_.file_ops != nullptr ? options_.file_ops
                                        : &real_file_ops()) {
  if (options_.every < 1 || options_.keep < 1) {
    throw std::invalid_argument(
        "CheckpointWriter: every and keep must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(options_.directory, ec);
  if (ec) {
    throw CheckpointError(CheckpointErrorKind::kWriteFailed,
                          "create directory " + options_.directory.string() +
                              ": " + ec.message());
  }
}

bool CheckpointWriter::due(std::size_t intervals_closed) const noexcept {
  return intervals_closed > 0 && intervals_closed % options_.every == 0;
}

std::filesystem::path CheckpointWriter::write(
    PayloadKind kind, std::uint64_t interval_index,
    const std::vector<std::uint8_t>& state) {
  SCD_TRACE_SPAN_ARG("checkpoint_write", "checkpoint", interval_index);
  const common::Stopwatch watch;
#if SCD_OBS_ENABLED
  CheckpointInstruments* obs =
      options_.metrics ? &CheckpointInstruments::global() : nullptr;
#endif
  const std::filesystem::path final_path =
      options_.directory / checkpoint_filename(interval_index);
  const std::filesystem::path temp_path =
      final_path.string() + kTempSuffix;
  const std::vector<std::uint8_t> framed =
      encode_checkpoint_frame(kind, fingerprint_, interval_index, state);
  try {
    ops_->write_file_durable(temp_path, framed);
    ops_->rename_durable(temp_path, final_path);
  } catch (const std::exception& e) {
    // Leave no temp file behind; the previous checkpoints are untouched.
    ops_->remove_file(temp_path);
#if SCD_OBS_ENABLED
    if (obs != nullptr) obs->write_failures.inc();
#endif
    // A failing checkpoint is exactly when the recent past matters: capture
    // it before rethrowing (the dump itself runs on the recorder's thread).
    obs::FlightRecorder::notify_checkpoint_error("checkpoint write",
                                                 e.what());
    throw;
  } catch (...) {
    ops_->remove_file(temp_path);
#if SCD_OBS_ENABLED
    if (obs != nullptr) obs->write_failures.inc();
#endif
    throw;
  }
  prune();
#if SCD_OBS_ENABLED
  if (obs != nullptr) {
    obs->snapshots.inc();
    obs->snapshot_bytes.inc(framed.size());
    obs->last_snapshot_bytes.set(static_cast<double>(framed.size()));
    obs->snapshot_seconds.observe(watch.seconds());
  }
#endif
  return final_path;
}

void CheckpointWriter::attach(core::ChangeDetectionPipeline& pipeline) {
  core::ChangeDetectionPipeline* p = &pipeline;
  pipeline.set_interval_close_callback([this, p](std::size_t closed) {
    if (!due(closed)) return;
    try {
      (void)write(PayloadKind::kSerial, p->position().interval_index,
                  p->save_state());
    } catch (const std::exception& e) {
      SCD_WARN() << "checkpoint write failed (stream continues): "
                 << e.what();
    }
  });
}

void CheckpointWriter::detach() noexcept {
  if (attached_ == nullptr) return;
  try {
    // Write any still-due snapshot, then uninstall. drain() returns with
    // the merger idle and no epoch can close while this (producer) thread
    // is here, so clearing the callback cannot race a delivery.
    attached_->drain();
  } catch (...) {
    // A merge failure is already parked in the pipeline and rethrows from
    // its next add()/flush(); detaching must still complete.
  }
  attached_->set_interval_close_callback(nullptr);
  attached_ = nullptr;
}

CheckpointWriter::~CheckpointWriter() { detach(); }

void CheckpointWriter::attach(ingest::ParallelPipeline& pipeline) {
  attached_ = &pipeline;
  ingest::ParallelPipeline* p = &pipeline;
  pipeline.set_interval_close_callback([this, p](std::size_t closed) {
    if (!due(closed)) return;
    try {
      (void)write(PayloadKind::kParallel, p->position().interval_index,
                  p->save_state());
    } catch (const std::exception& e) {
      SCD_WARN() << "checkpoint write failed (stream continues): "
                 << e.what();
    }
  });
}

void CheckpointWriter::prune() noexcept {
  try {
    const std::vector<std::filesystem::path> existing =
        list_checkpoints(options_.directory);
    for (std::size_t i = options_.keep; i < existing.size(); ++i) {
      ops_->remove_file(existing[i]);
    }
    // Stray temp files are always garbage from an interrupted writer.
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(options_.directory, ec)) {
      if (entry.path().extension() == kTempSuffix) {
        ops_->remove_file(entry.path());
      }
    }
  } catch (...) {
    // Retention is best-effort; an unreadable directory entry must not fail
    // a successful snapshot.
  }
}

// ---------------------------------------------------------------------------
// recover()

namespace {

/// Shared scan loop: `try_restore(payload)` builds a scratch pipeline,
/// restores into it and swaps it into place, throwing on rejection.
template <typename TryRestore>
RecoverResult recover_scan(const std::filesystem::path& directory,
                           PayloadKind expected_kind,
                           std::uint64_t expected_fingerprint, bool metrics,
                           TryRestore&& try_restore) {
  RecoverResult result;
#if SCD_OBS_ENABLED
  CheckpointInstruments* obs =
      metrics ? &CheckpointInstruments::global() : nullptr;
#else
  (void)metrics;
#endif
  for (const std::filesystem::path& path : list_checkpoints(directory)) {
    try {
      const CheckpointFrame parsed = decode_checkpoint_frame(read_file(path));
      if (parsed.config_fingerprint != expected_fingerprint) {
        throw CheckpointError(
            CheckpointErrorKind::kConfigMismatch,
            path.string() +
                " was written by a pipeline with a different configuration "
                "(fingerprint mismatch); refusing to restore");
      }
      if (parsed.kind != expected_kind) {
        throw CheckpointError(
            CheckpointErrorKind::kConfigMismatch,
            path.string() + " holds a " +
                (parsed.kind == PayloadKind::kSerial ? "serial" : "parallel") +
                " snapshot but a " +
                (expected_kind == PayloadKind::kSerial ? "serial"
                                                       : "parallel") +
                " pipeline is restoring");
      }
      try_restore(parsed.payload);
      result.restored = true;
      result.path = path;
      result.interval_index = parsed.interval_index;
#if SCD_OBS_ENABLED
      if (obs != nullptr) obs->restores.inc();
#endif
      return result;
    } catch (const CheckpointError& e) {
      if (e.checkpoint_kind() == CheckpointErrorKind::kConfigMismatch) throw;
      SCD_WARN() << "recover: skipping " << path.string() << ": " << e.what();
    } catch (const sketch::SerializeError& e) {
      // Framing verified but the engine rejected the payload — version
      // drift or a corruption the CRC missed. An older checkpoint may
      // still be good.
      SCD_WARN() << "recover: skipping " << path.string() << ": " << e.what();
    }
    ++result.skipped;
#if SCD_OBS_ENABLED
    if (obs != nullptr) obs->restore_skipped.inc();
#endif
  }
  return result;
}

}  // namespace

RecoverResult recover(const std::filesystem::path& directory,
                      core::ChangeDetectionPipeline& pipeline) {
  const core::PipelineConfig& config = pipeline.config();
  return recover_scan(
      directory, PayloadKind::kSerial, checkpoint::config_fingerprint(config),
      config.metrics, [&](const std::vector<std::uint8_t>& payload) {
        // Restore into a scratch pipeline first: a mid-restore throw must
        // not leave the caller's pipeline half-mutated.
        core::ChangeDetectionPipeline scratch(config);
        scratch.restore_state(payload);
        pipeline = std::move(scratch);
      });
}

RecoverResult recover(const std::filesystem::path& directory,
                      ingest::ParallelPipeline& pipeline) {
  const core::PipelineConfig& config = pipeline.config();
  const ingest::ParallelConfig parallel = pipeline.parallel_config();
  return recover_scan(
      directory, PayloadKind::kParallel, checkpoint::config_fingerprint(config),
      config.metrics, [&](const std::vector<std::uint8_t>& payload) {
        ingest::ParallelPipeline scratch(config, parallel);
        scratch.restore_state(payload);
        pipeline = std::move(scratch);
      });
}

}  // namespace scd::checkpoint
