#include "perflow/key_dictionary.h"

namespace scd::perflow {

std::size_t KeyDictionary::intern(std::uint64_t key) {
  const auto [it, inserted] = index_.try_emplace(key, keys_.size());
  if (inserted) keys_.push_back(key);
  return it->second;
}

std::optional<std::size_t> KeyDictionary::lookup(std::uint64_t key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void KeyDictionary::reserve(std::size_t n) {
  index_.reserve(n);
  keys_.reserve(n);
}

}  // namespace scd::perflow
