// Ablation: tabulation hashing (paper's fast path, ref [33]) vs the
// Carter-Wegman degree-3 polynomial over 2^61-1 (the portable reference).
// Both are 4-universal; this quantifies the speed difference that justifies
// the paper's choice of tabulation for 32-bit keys.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "hash/cw_hash.h"
#include "hash/tabulation_hash.h"

namespace {

using namespace scd;

std::vector<std::uint32_t> make_keys() {
  std::vector<std::uint32_t> keys(1u << 16);
  common::Rng rng(5);
  for (auto& k : keys) k = static_cast<std::uint32_t>(rng.next_u64());
  return keys;
}

void BM_TabulationHash16(benchmark::State& state) {
  const hash::TabulationHashFamily family(1, 5);
  const auto keys = make_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.hash16(i % 5, keys[i & 0xffff]));
    ++i;
  }
}
BENCHMARK(BM_TabulationHash16);

void BM_TabulationHashAll8(benchmark::State& state) {
  const hash::TabulationHashFamily family(1, 8);
  const auto keys = make_keys();
  std::uint16_t out[8];
  std::size_t i = 0;
  for (auto _ : state) {
    family.hash_all(keys[i & 0xffff], out);
    benchmark::DoNotOptimize(out[0]);
    ++i;
  }
}
BENCHMARK(BM_TabulationHashAll8);

void BM_CwHash16(benchmark::State& state) {
  const hash::CwHashFamily family(1, 5);
  const auto keys = make_keys();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.hash16(i % 5, keys[i & 0xffff]));
    ++i;
  }
}
BENCHMARK(BM_CwHash16);

void BM_CwHash16WideKeys(benchmark::State& state) {
  const hash::CwHashFamily family(1, 5);
  common::Rng rng(6);
  std::vector<std::uint64_t> keys(1u << 16);
  for (auto& k : keys) k = rng.next_u64();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(family.hash16(i % 5, keys[i & 0xffff]));
    ++i;
  }
}
BENCHMARK(BM_CwHash16WideKeys);

}  // namespace

int main(int argc, char** argv) {
  std::printf("\n==== Ablation: hash family throughput ====\n");
  std::printf("# tabulation (3 table lookups) vs CW polynomial (3 mulmods); "
              "both 4-universal\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
