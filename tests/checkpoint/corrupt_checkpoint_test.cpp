// Corrupt-checkpoint corpus: every class of on-disk damage — truncation at
// each section boundary, flipped bits in header and payload, a stale
// version field, foreign magic, trailing garbage — must surface as a typed
// skip (never a misload), and recover() must fall back to the newest older
// checkpoint that still verifies.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "checkpoint/checkpoint.h"
#include "common/crc32.h"
#include "common/logging.h"
#include "core/pipeline.h"

namespace scd::checkpoint {
namespace {

core::PipelineConfig corpus_config() {
  core::PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 3;
  config.k = 64;
  config.model.kind = forecast::ModelKind::kEwma;
  config.metrics = false;
  return config;
}

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  return dir;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::filesystem::path& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Captures SCD_WARN lines so the skip *reason* is assertable.
class LogCapture {
 public:
  LogCapture() {
    common::set_log_sink([this](common::LogLevel, const std::string& line) {
      lines_.push_back(line);
    });
  }
  ~LogCapture() { common::set_log_sink(nullptr); }

  [[nodiscard]] bool contains(const std::string& needle) const {
    for (const std::string& line : lines_) {
      if (line.find(needle) != std::string::npos) return true;
    }
    return false;
  }

 private:
  std::vector<std::string> lines_;
};

/// A directory with two valid checkpoints; tests corrupt the newer one and
/// expect recovery from the older.
struct Corpus {
  std::filesystem::path dir;
  std::filesystem::path newest;
  std::filesystem::path older;
  std::vector<std::uint8_t> pristine;  // newest file's original bytes

  explicit Corpus(const std::string& name) : dir(fresh_dir(name)) {
    const core::PipelineConfig config = corpus_config();
    core::ChangeDetectionPipeline pipeline(config);
    CheckpointWriterOptions options;
    options.directory = dir;
    options.keep = 10;
    options.metrics = false;
    CheckpointWriter writer(options, config);
    writer.attach(pipeline);
    for (double t = 1.0; t < 65.0; t += 10.0) {
      for (std::uint64_t key = 0; key < 20; ++key) {
        pipeline.add(key, 300.0, t);
      }
    }
    const auto files = list_checkpoints(dir);
    EXPECT_GE(files.size(), 2u);
    newest = files[0];
    older = files[1];
    pristine = read_file(newest);
    EXPECT_GE(pristine.size(), kCheckpointHeaderBytes);
  }
};

/// Corrupts `corpus.newest`, runs recover(), and expects the older file to
/// be restored with exactly one skip whose logged reason mentions `reason`.
void expect_skip_to_previous(const Corpus& corpus, const std::string& label,
                             const std::string& reason) {
  SCOPED_TRACE(label);
  LogCapture capture;
  core::ChangeDetectionPipeline pipeline(corpus_config());
  const RecoverResult result = recover(corpus.dir, pipeline);
  EXPECT_TRUE(result.restored);
  EXPECT_EQ(result.path, corpus.older);
  EXPECT_EQ(result.skipped, 1u);
  EXPECT_TRUE(capture.contains(reason))
      << "no skip logged with reason \"" << reason << "\"";
}

TEST(CorruptCheckpoint, TruncationAtEverySectionBoundary) {
  Corpus corpus("corrupt_trunc");
  // Section boundaries of the 48-byte header (magic, version, kind,
  // reserved, fingerprint, interval, payload_len, payload CRC, header CRC),
  // plus mid-payload and one-byte-short-of-complete.
  const std::size_t boundaries[] = {
      0, 1, 4, 8, 12, 16, 24, 32, 40, 44, 47, 48,
      kCheckpointHeaderBytes + (corpus.pristine.size() - 48) / 2,
      corpus.pristine.size() - 1};
  for (const std::size_t cut : boundaries) {
    std::vector<std::uint8_t> bytes = corpus.pristine;
    bytes.resize(cut);
    write_file(corpus.newest, bytes);
    expect_skip_to_previous(corpus, "truncated to " + std::to_string(cut),
                            "[truncated]");
  }
}

TEST(CorruptCheckpoint, BitFlipsAreCaughtByCrcs) {
  Corpus corpus("corrupt_flip");
  // One flip in each header field and several spread through the payload.
  const std::size_t size = corpus.pristine.size();
  const std::size_t offsets[] = {5,  9,  17, 25, 33, 41, 45,
                                 49, 48 + (size - 48) / 3, size - 1};
  for (const std::size_t offset : offsets) {
    std::vector<std::uint8_t> bytes = corpus.pristine;
    bytes[offset] ^= 0x10u;
    write_file(corpus.newest, bytes);
    expect_skip_to_previous(corpus, "bit flip at " + std::to_string(offset),
                            "[bad-crc]");
  }
}

TEST(CorruptCheckpoint, StaleVersionByte) {
  Corpus corpus("corrupt_version");
  std::vector<std::uint8_t> bytes = corpus.pristine;
  bytes[4] = 0x7f;  // version -> 127
  // Recompute the header CRC so *only* the version is wrong — this is what
  // a file from a future/foreign build would look like.
  const std::uint32_t crc = common::crc32(bytes.data(), 44);
  for (int i = 0; i < 4; ++i) {
    bytes[44 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
  write_file(corpus.newest, bytes);
  expect_skip_to_previous(corpus, "stale version", "[bad-version]");
}

TEST(CorruptCheckpoint, ForeignMagic) {
  Corpus corpus("corrupt_magic");
  std::vector<std::uint8_t> bytes = corpus.pristine;
  bytes[0] = 'X';
  write_file(corpus.newest, bytes);
  expect_skip_to_previous(corpus, "foreign magic", "[bad-magic]");
}

TEST(CorruptCheckpoint, TrailingGarbage) {
  Corpus corpus("corrupt_trailing");
  std::vector<std::uint8_t> bytes = corpus.pristine;
  bytes.push_back(0xee);
  bytes.push_back(0xee);
  write_file(corpus.newest, bytes);
  expect_skip_to_previous(corpus, "trailing garbage", "[bad-payload]");
}

TEST(CheckpointListing, OrdersByNumericIntervalNotLexicographically) {
  const std::filesystem::path dir = fresh_dir("listing_numeric");
  std::filesystem::create_directories(dir);
  // An unpadded name (as a hand-renamed or foreign-tool file would have):
  // lexicographically "ckpt-5..." outranks "ckpt-00...0100...", which once
  // made recovery probe interval 5 before interval 100.
  write_file(dir / "ckpt-5.scdc", {0x01});
  write_file(dir / checkpoint_filename(100), {0x02});
  write_file(dir / checkpoint_filename(99), {0x03});
  const auto files = list_checkpoints(dir);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].filename().string(), checkpoint_filename(100));
  EXPECT_EQ(files[1].filename().string(), checkpoint_filename(99));
  EXPECT_EQ(files[2].filename().string(), "ckpt-5.scdc");
}

TEST(CheckpointListing, DuplicateIntervalTieBreaksOnFilename) {
  const std::filesystem::path dir = fresh_dir("listing_dup");
  std::filesystem::create_directories(dir);
  // Two spellings of interval 7 plus an unparsable name: the listing must be
  // one total order (interval desc, then filename asc, unparsable last) no
  // matter how the directory iterator happens to enumerate them.
  write_file(dir / "ckpt-7.scdc", {0x01});
  write_file(dir / checkpoint_filename(7), {0x02});
  write_file(dir / "ckpt-notanumber.scdc", {0x03});
  write_file(dir / checkpoint_filename(3), {0x04});
  const auto files = list_checkpoints(dir);
  ASSERT_EQ(files.size(), 4u);
  EXPECT_EQ(files[0].filename().string(), checkpoint_filename(7));
  EXPECT_EQ(files[1].filename().string(), "ckpt-7.scdc");
  EXPECT_EQ(files[2].filename().string(), checkpoint_filename(3));
  EXPECT_EQ(files[3].filename().string(), "ckpt-notanumber.scdc");
}

TEST(CorruptCheckpoint, DuplicateIntervalRecoveryIsDeterministic) {
  Corpus corpus("corrupt_dup_interval");
  // Learn the newest snapshot's interval index from a pristine recovery.
  std::uint64_t interval = 0;
  {
    core::ChangeDetectionPipeline pipeline(corpus_config());
    const RecoverResult pristine = recover(corpus.dir, pipeline);
    ASSERT_TRUE(pristine.restored);
    ASSERT_EQ(pristine.path, corpus.newest);
    interval = pristine.interval_index;
  }
  // Add a second, unpadded spelling of the SAME interval (a hand-restored
  // backup). The padded writer-produced name sorts first (filename
  // ascending within the tie), so pristine recovery still picks it...
  const std::filesystem::path duplicate =
      corpus.dir / ("ckpt-" + std::to_string(interval) + ".scdc");
  write_file(duplicate, corpus.pristine);
  {
    core::ChangeDetectionPipeline pipeline(corpus_config());
    const RecoverResult result = recover(corpus.dir, pipeline);
    ASSERT_TRUE(result.restored);
    EXPECT_EQ(result.path, corpus.newest);
    EXPECT_EQ(result.skipped, 0u);
  }
  // ...and when the padded file is damaged, recovery falls back to the
  // duplicate of the same interval — never to an older interval.
  std::vector<std::uint8_t> damaged = corpus.pristine;
  damaged.resize(damaged.size() / 2);
  write_file(corpus.newest, damaged);
  {
    core::ChangeDetectionPipeline pipeline(corpus_config());
    const RecoverResult result = recover(corpus.dir, pipeline);
    ASSERT_TRUE(result.restored);
    EXPECT_EQ(result.path, duplicate);
    EXPECT_EQ(result.interval_index, interval);
    EXPECT_EQ(result.skipped, 1u);
  }
}

TEST(CorruptCheckpoint, AllCandidatesCorruptMeansNoRestore) {
  Corpus corpus("corrupt_all");
  for (const auto& path : list_checkpoints(corpus.dir)) {
    std::vector<std::uint8_t> bytes = read_file(path);
    bytes.resize(bytes.size() / 2);
    write_file(path, bytes);
  }
  LogCapture capture;
  core::ChangeDetectionPipeline pipeline(corpus_config());
  const RecoverResult result = recover(corpus.dir, pipeline);
  EXPECT_FALSE(result.restored);
  EXPECT_GE(result.skipped, 2u);
  EXPECT_FALSE(pipeline.position().started);
}

}  // namespace
}  // namespace scd::checkpoint
