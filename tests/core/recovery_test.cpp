// RecoveryMode: sketch-only changed-key recovery through the full
// ChangeDetectionPipeline (docs/KEY_RECOVERY.md) — validation of the mode
// combinations, replay-equivalence of the invertible engine's alarms, the
// no-replay-pass guarantee, checkpoint round-trips of the vote state, and
// the config-fingerprint binding.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/random.h"
#include "core/pipeline.h"
#include "traffic/key_extract.h"

namespace scd::core {
namespace {

PipelineConfig recovery_config(RecoveryMode mode) {
  PipelineConfig config;
  config.interval_s = 10.0;
  config.h = 5;
  config.k = 4096;
  config.model.kind = forecast::ModelKind::kEwma;
  config.model.alpha = 0.5;
  config.threshold = 0.2;
  config.recovery = mode;
  return config;
}

/// Steady background plus a large spike in given intervals (mirrors
/// pipeline_test.cpp's feed_stream, with a spike big enough that every
/// recovery mode must find it).
void feed_stream(ChangeDetectionPipeline& pipeline, std::size_t intervals,
                 std::uint64_t spike_key = 0, double spike_value = 0.0,
                 std::size_t spike_from = ~0u, std::size_t spike_to = 0) {
  scd::common::Rng rng(1);
  for (std::size_t t = 0; t < intervals; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      pipeline.add(key, 100.0 + rng.uniform(-5, 5), start + 1.0);
    }
    if (t >= spike_from && t <= spike_to) {
      pipeline.add(spike_key, spike_value, start + 2.0);
    }
  }
  pipeline.flush();
}

TEST(RecoveryConfig, RejectsNextIntervalReplay) {
  auto c = recovery_config(RecoveryMode::kInvertible);
  c.replay = KeyReplayMode::kNextInterval;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(RecoveryConfig, RejectsKeySampling) {
  auto c = recovery_config(RecoveryMode::kInvertible);
  c.key_sample_rate = 0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = recovery_config(RecoveryMode::kGroupTesting);
  c.key_sample_rate = 0.5;
  EXPECT_THROW(c.validate(), std::invalid_argument);
}

TEST(RecoveryConfig, GroupTestingRequires32BitKeys) {
  auto c = recovery_config(RecoveryMode::kGroupTesting);
  c.key_kind = traffic::KeyKind::kSrcDstPair;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  // The invertible family covers 64-bit keys via the Carter-Wegman sketch.
  c = recovery_config(RecoveryMode::kInvertible);
  c.key_kind = traffic::KeyKind::kSrcDstPair;
  EXPECT_NO_THROW(c.validate());
}

TEST(RecoveryConfig, FingerprintDistinguishesModes) {
  const auto replay = recovery_config(RecoveryMode::kReplay);
  const auto invertible = recovery_config(RecoveryMode::kInvertible);
  const auto group = recovery_config(RecoveryMode::kGroupTesting);
  EXPECT_NE(config_fingerprint(replay), config_fingerprint(invertible));
  EXPECT_NE(config_fingerprint(replay), config_fingerprint(group));
  EXPECT_NE(config_fingerprint(invertible), config_fingerprint(group));
}

TEST(RecoveryPipeline, InvertibleDetectsInjectedSpike) {
  ChangeDetectionPipeline pipeline(recovery_config(RecoveryMode::kInvertible));
  feed_stream(pipeline, 10, 999, 20000.0, 6, 6);
  bool found = false;
  for (const auto& report : pipeline.reports()) {
    for (const auto& alarm : report.alarms) {
      if (alarm.key == 999) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecoveryPipeline, GroupTestingDetectsInjectedSpike) {
  ChangeDetectionPipeline pipeline(
      recovery_config(RecoveryMode::kGroupTesting));
  feed_stream(pipeline, 10, 999, 20000.0, 6, 6);
  bool found = false;
  for (const auto& report : pipeline.reports()) {
    for (const auto& alarm : report.alarms) {
      if (alarm.key == 999) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(RecoveryPipeline, InvertibleMatchesReplayAlarms) {
  // Same stream, same sketch shape/seed: the invertible engine's counters
  // equal the replay engine's, so both must flag the same spike keys. The
  // spike rides on background key 25 so current-interval replay can also
  // see the post-spike disappearance alarms (a key absent from the interval
  // is invisible to replay but not to sketch recovery — keeping the spike
  // key in every interval makes the two modes' alarm sets comparable).
  ChangeDetectionPipeline replay(recovery_config(RecoveryMode::kReplay));
  ChangeDetectionPipeline invertible(
      recovery_config(RecoveryMode::kInvertible));
  feed_stream(replay, 12, 25, 30000.0, 5, 7);
  feed_stream(invertible, 12, 25, 30000.0, 5, 7);
  ASSERT_EQ(replay.reports().size(), invertible.reports().size());
  for (std::size_t t = 0; t < replay.reports().size(); ++t) {
    std::vector<std::uint64_t> a, b;
    for (const auto& alarm : replay.reports()[t].alarms) a.push_back(alarm.key);
    for (const auto& alarm : invertible.reports()[t].alarms) {
      b.push_back(alarm.key);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "interval " << t;
  }
}

TEST(RecoveryPipeline, InvertibleNeverReplays) {
  ChangeDetectionPipeline pipeline(recovery_config(RecoveryMode::kInvertible));
  feed_stream(pipeline, 10, 999, 20000.0, 6, 6);
  const PipelineStats stats = pipeline.stats();
  EXPECT_EQ(stats.keys_replayed, 0u);  // single pass — no replay ever
  EXPECT_GT(stats.recovery_candidates, 0u);
  EXPECT_GT(stats.keys_recovered, 0u);
}

TEST(RecoveryPipeline, ReplayModeKeepsRecoveryCountersZero) {
  ChangeDetectionPipeline pipeline(recovery_config(RecoveryMode::kReplay));
  feed_stream(pipeline, 10, 999, 20000.0, 6, 6);
  const PipelineStats stats = pipeline.stats();
  EXPECT_GT(stats.keys_replayed, 0u);
  EXPECT_EQ(stats.recovery_candidates, 0u);
  EXPECT_EQ(stats.keys_recovered, 0u);
}

TEST(RecoveryPipeline, TopNCriterionRecoversNKeys) {
  auto config = recovery_config(RecoveryMode::kInvertible);
  config.criterion = DetectionCriterion::kTopN;
  config.max_alarms_per_interval = 3;
  ChangeDetectionPipeline pipeline(config);
  feed_stream(pipeline, 10, 999, 20000.0, 6, 6);
  for (const auto& report : pipeline.reports()) {
    if (!report.detection_ran) continue;
    EXPECT_LE(report.alarms.size(), 3u);
  }
}

TEST(RecoveryPipeline, CheckpointRoundTripPreservesVoteState) {
  // Save mid-stream, restore into a fresh pipeline, continue both with the
  // same records: reports (and recovered alarm keys) must match exactly.
  auto config = recovery_config(RecoveryMode::kInvertible);
  ChangeDetectionPipeline a(config);
  // Snapshot at the close of interval 6 (save_state is boundary-only).
  std::vector<std::uint8_t> snapshot;
  a.set_interval_close_callback([&a, &snapshot](std::size_t intervals) {
    if (intervals == 6) snapshot = a.save_state();
  });
  scd::common::Rng rng(2);
  for (std::size_t t = 0; t < 6; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      a.add(key, 100.0 + rng.uniform(-5, 5), start + 1.0);
    }
  }
  // Continue a through intervals 6..11 (the first t=6 record closes
  // interval 6 and captures the snapshot first), then replay the identical
  // tail into a restored pipeline.
  struct Add {
    std::uint64_t key;
    double value;
    double time_s;
  };
  std::vector<Add> tail;
  for (std::size_t t = 6; t < 12; ++t) {
    const double start = static_cast<double>(t) * 10.0;
    for (std::uint64_t key = 1; key <= 50; ++key) {
      tail.push_back({key, 100.0 + rng.uniform(-5, 5), start + 1.0});
    }
    if (t == 8) tail.push_back({4242, 25000.0, start + 2.0});
  }
  for (const Add& r : tail) a.add(r.key, r.value, r.time_s);
  a.flush();
  ASSERT_FALSE(snapshot.empty());
  ChangeDetectionPipeline b(config);
  b.restore_state(snapshot);
  for (const Add& r : tail) b.add(r.key, r.value, r.time_s);
  b.flush();
  // The restored pipeline discards pre-snapshot reports, so b's reports
  // cover intervals 6..11 only; they must reproduce a's bit-identically.
  const auto& ra = a.reports();
  const auto& rb = b.reports();
  ASSERT_EQ(ra.size(), 12u);
  ASSERT_EQ(rb.size(), 6u);
  bool saw_spike = false;
  for (std::size_t t = 6; t < ra.size(); ++t) {
    const auto& ta = ra[t];
    const auto& tb = rb[t - 6];
    EXPECT_EQ(ta.index, tb.index);
    ASSERT_EQ(ta.alarms.size(), tb.alarms.size()) << "interval " << t;
    for (std::size_t i = 0; i < ta.alarms.size(); ++i) {
      EXPECT_EQ(ta.alarms[i].key, tb.alarms[i].key);
      EXPECT_EQ(ta.alarms[i].error, tb.alarms[i].error);
      if (ta.alarms[i].key == 4242) saw_spike = true;
    }
    EXPECT_EQ(ta.estimated_error_f2, tb.estimated_error_f2);
  }
  EXPECT_TRUE(saw_spike);
  // The recovery counters survive the round trip (engine-state v3).
  EXPECT_EQ(a.stats().keys_replayed, 0u);
  EXPECT_EQ(b.stats().keys_replayed, 0u);
}

TEST(RecoveryPipeline, RestoreRejectsCrossModeSnapshots) {
  // A snapshot carries the config fingerprint; feeding a replay-mode
  // snapshot to an invertible pipeline is a typed error, not a mis-parse.
  ChangeDetectionPipeline replay(recovery_config(RecoveryMode::kReplay));
  feed_stream(replay, 4);
  const auto snapshot = replay.save_state();
  ChangeDetectionPipeline invertible(
      recovery_config(RecoveryMode::kInvertible));
  EXPECT_ANY_THROW(invertible.restore_state(snapshot));
}

TEST(RecoveryPipeline, GroupTestingCheckpointRoundTrip) {
  auto config = recovery_config(RecoveryMode::kGroupTesting);
  ChangeDetectionPipeline a(config);
  feed_stream(a, 6);
  const auto snapshot = a.save_state();
  ChangeDetectionPipeline b(config);
  EXPECT_NO_THROW(b.restore_state(snapshot));
  EXPECT_EQ(b.stats().intervals_closed, a.stats().intervals_closed);
}

}  // namespace
}  // namespace scd::core
