// Robustness/fuzz-style tests: untrusted bytes into the trace and CSV
// readers must throw or return cleanly — never crash, hang, or fabricate
// unbounded data.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/random.h"
#include "sketch/serialize.h"
#include "traffic/csv_import.h"
#include "traffic/trace_io.h"

namespace scd::traffic {
namespace {

std::string temp_file(const std::string& name, const std::string& bytes) {
  const auto dir = std::filesystem::temp_directory_path() / "scd_fuzz";
  std::filesystem::create_directories(dir);
  const auto path = (dir / name).string();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return path;
}

TEST(TraceReaderFuzz, RandomBytesNeverCrash) {
  scd::common::Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::string bytes(rng.next_below(500), '\0');
    for (auto& b : bytes) b = static_cast<char>(rng.next_below(256));
    const auto path = temp_file("rand.bin", bytes);
    try {
      TraceReader reader(path);
      FlowRecord r;
      int guard = 0;
      while (reader.next(r) && ++guard < 100000) {
      }
    } catch (const std::runtime_error&) {
      // expected for malformed headers
    }
    std::remove(path.c_str());
  }
}

TEST(TraceReaderFuzz, ValidHeaderHugeCountDoesNotFabricate) {
  // Header claims 2^40 records but the body is empty: next() must return
  // false rather than invent data.
  std::string bytes;
  const auto put32 = [&bytes](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) bytes.push_back(static_cast<char>(v >> (8 * i)));
  };
  put32(kTraceMagic);
  put32(kTraceVersion);
  for (int i = 0; i < 8; ++i) bytes.push_back(i == 5 ? '\x01' : '\0');  // 2^40
  const auto path = temp_file("huge.scdt", bytes);
  TraceReader reader(path);
  FlowRecord r;
  EXPECT_FALSE(reader.next(r));
  std::remove(path.c_str());
}

TEST(CsvFuzz, RandomTextLinesThrowOrParse) {
  scd::common::Rng rng(2);
  const char charset[] = "0123456789.,abcxyz-# \t";
  for (int trial = 0; trial < 100; ++trial) {
    std::string text;
    for (int i = 0; i < 200; ++i) {
      text.push_back(charset[rng.next_below(sizeof(charset) - 1)]);
      if (rng.bernoulli(0.05)) text.push_back('\n');
    }
    std::istringstream in(text);
    try {
      const auto records = read_flow_csv(in);
      EXPECT_LE(records.size(), 200u);
    } catch (const std::runtime_error&) {
      // expected for malformed rows after the first data line
    }
  }
}

TEST(SketchDeserializeFuzz, RandomBytesNeverCrash) {
  scd::common::Rng rng(3);
  sketch::FamilyRegistry registry;
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> bytes(rng.next_below(300));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_THROW((void)sketch::sketch_from_bytes(bytes, registry),
                 std::runtime_error);
  }
}

TEST(SketchDeserializeFuzz, CorruptedValidSketchEitherThrowsOrLoads) {
  const auto family = sketch::make_tabulation_family(1, 3);
  sketch::KarySketch original(family, 256);
  original.update(1, 5.0);
  auto bytes = sketch::sketch_to_bytes(original);
  scd::common::Rng rng(4);
  for (int trial = 0; trial < 100; ++trial) {
    auto mutated = bytes;
    mutated[rng.next_below(mutated.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
    sketch::FamilyRegistry registry;
    try {
      const auto sketch = sketch::sketch_from_bytes(mutated, registry);
      EXPECT_EQ(sketch.width() & (sketch.width() - 1), 0u);  // sane dims
    } catch (const std::runtime_error&) {
      // corrupted header detected
    }
  }
}

}  // namespace
}  // namespace scd::traffic
