// Figure 6: comparing the per-flow top-N against the sketch top-X*N
// (X in {1, 1.25, 1.5, 1.75, 2}) for the EWMA model on the large router,
// H=5, K=8192, (a) 300 s and (b) 60 s intervals.
//
// Paper shape: widening the sketch list raises the similarity markedly at
// K=8192; X ~ 1.5 already achieves very high accuracy and larger X only
// buys marginal gains (at a false-positive cost).
#include <cstdio>
#include <map>

#include "support/bench_util.h"
#include "support/experiments.h"

int main() {
  using namespace scd;
  bench::print_header(
      "Figure 6", "top-N vs top-X*N similarity (EWMA, large router, K=8192)",
      "X=1.5 recovers most of the K=8192 gap; beyond that marginal gains");

  for (const double interval : {300.0, 60.0}) {
    std::printf("\n--- interval=%.0fs ---\n", interval);
    const auto& stream = bench::stream_for("large", interval);
    const auto model = bench::cached_grid_model(
        "large", interval, forecast::ModelKind::kEwma);
    const std::size_t warmup = bench::warmup_intervals(interval);
    const auto& truth = bench::truth_for(stream, model);
    const auto sketch = bench::sketch_errors_for(stream, model, 5, 8192);
    std::map<std::pair<std::size_t, int>, double> mean_sim;  // (N, X*100)
    for (const std::size_t n : {50u, 100u, 500u}) {
      std::vector<std::pair<double, double>> points;
      for (const double x : {1.0, 1.25, 1.5, 1.75, 2.0}) {
        const auto series =
            bench::topn_similarity_series(truth, sketch, n, x, warmup);
        mean_sim[{n, static_cast<int>(x * 100)}] = series.mean;
        points.emplace_back(x, series.mean);
      }
      bench::print_series(common::str_format("N=%zu(X, mean_similarity)", n),
                          points);
    }
    for (const std::size_t n : {50u, 100u, 500u}) {
      const double s1 = mean_sim[{n, 100}];
      const double s15 = mean_sim[{n, 150}];
      const double s2 = mean_sim[{n, 200}];
      bench::check(s15 >= s1,
                   common::str_format(
                       "interval=%.0fs N=%zu: X=1.5 improves over X=1",
                       interval, n),
                   common::str_format("X1=%.3f X1.5=%.3f", s1, s15));
      bench::check(s15 > 0.9,
                   common::str_format(
                       "interval=%.0fs N=%zu: very high accuracy by X=1.5",
                       interval, n),
                   common::str_format("%.3f", s15));
      bench::check(s2 - s15 <= (s15 - s1) + 0.02,
                   common::str_format(
                       "interval=%.0fs N=%zu: gains beyond X=1.5 are marginal",
                       interval, n),
                   common::str_format("X1.5=%.3f X2=%.3f", s15, s2));
    }
  }
  return bench::finish();
}
