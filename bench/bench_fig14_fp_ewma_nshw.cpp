// Figure 14: thresholding false positives, medium router, 300 s interval,
// EWMA and non-seasonal Holt-Winters models.
#include "support/fnfp_figure.h"

int main() {
  scd::bench::run_fnfp_figure(
      "Figure 14",
      {scd::forecast::ModelKind::kEwma, scd::forecast::ModelKind::kHoltWinters},
      /*false_negatives=*/false);
  return scd::bench::finish();
}
