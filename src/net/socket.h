// Minimal blocking TCP sockets for the aggregation tier.
//
// Deliberately small: the aggregator topology is N long-lived node
// connections shipping one frame per interval, so blocking sockets with one
// reader thread per connection are simpler and easier to reason about than
// an event loop, and the frame cadence (seconds to minutes) makes syscall
// overhead irrelevant. Every failure path throws WireError(kIo) with the
// errno text; EOF is an in-band return (recv_some() == 0), not an error,
// because a node closing its connection is a normal lifecycle event the
// aggregator must handle gracefully.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "net/wire.h"

namespace scd::net {

/// RAII wrapper over one connected TCP socket (client side or an accepted
/// connection). Movable, not copyable; the destructor closes the fd.
class Socket {
 public:
  Socket() noexcept = default;
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost"). Throws
  /// WireError(kIo) on resolution or connection failure.
  [[nodiscard]] static Socket connect_tcp(const std::string& host,
                                          std::uint16_t port);

  /// Sends the whole buffer, looping over short writes. Throws
  /// WireError(kIo) when the peer is gone or the socket fails.
  void send_all(std::span<const std::uint8_t> bytes);

  /// Reads up to `capacity` bytes; returns the count, 0 on orderly EOF.
  /// Throws WireError(kIo) on socket failure.
  [[nodiscard]] std::size_t recv_some(std::uint8_t* buffer,
                                      std::size_t capacity);

  /// Arms SO_RCVTIMEO so a blocked recv_some wakes after ~`seconds` and
  /// throws WireError(kIo) — the accept/reader threads use it to notice
  /// shutdown without an extra signalling channel.
  void set_recv_timeout(double seconds);

  /// Half-closes both directions without releasing the fd: a reader thread
  /// blocked in recv_some() wakes with EOF. This is the only safe way to
  /// interrupt another thread's blocking read — close() would free the fd
  /// number for reuse while the reader still holds it.
  void shutdown_both() noexcept;

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  friend class ListenSocket;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  int fd_ = -1;
};

/// RAII listening socket. Binds with SO_REUSEADDR; port 0 binds an ephemeral
/// port whose actual number port() reports (the loopback tests depend on
/// this to avoid fixed-port collisions).
class ListenSocket {
 public:
  ListenSocket() noexcept = default;
  ~ListenSocket();
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  [[nodiscard]] static ListenSocket listen_tcp(const std::string& host,
                                               std::uint16_t port,
                                               int backlog = 16);

  /// Blocks until a connection arrives. Throws WireError(kIo) on failure —
  /// including when the listening socket is close()d from another thread,
  /// which is the accept loop's shutdown path.
  [[nodiscard]] Socket accept();

  /// The bound port (resolves port 0 to the kernel-assigned ephemeral port).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace scd::net
