// Functional tests for the four k-ary sketch operations of §3.1.
#include "sketch/kary_sketch.h"

#include <gtest/gtest.h>

#include <map>
#include <span>
#include <vector>

#include "common/random.h"

namespace scd::sketch {
namespace {

TEST(KarySketch, FreshSketchIsZero) {
  const auto family = make_tabulation_family(1, 5);
  KarySketch s(family, 1024);
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.estimate(42), 0.0);
  EXPECT_EQ(s.estimate_f2(), 0.0);
  EXPECT_EQ(s.depth(), 5u);
  EXPECT_EQ(s.width(), 1024u);
}

TEST(KarySketch, SumTracksTotalUpdateMass) {
  const auto family = make_tabulation_family(2, 5);
  KarySketch s(family, 256);
  s.update(1, 10.0);
  s.update(2, 5.0);
  s.update(1, -3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 12.0);
}

TEST(KarySketch, AllRowsCarrySameSum) {
  const auto family = make_tabulation_family(3, 9);
  KarySketch s(family, 64);
  scd::common::Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    s.update(rng.next_below(1u << 30), rng.uniform(-5, 20));
  }
  for (std::size_t i = 0; i < s.depth(); ++i) {
    double row_sum = 0.0;
    for (double v : s.row(i)) row_sum += v;
    EXPECT_NEAR(row_sum, s.sum(), 1e-6);
  }
}

TEST(KarySketch, ExactWhenKeysFewerThanBuckets) {
  // With a handful of keys and K = 4096, collisions are overwhelmingly
  // unlikely in some row, and the median-of-rows estimate is near exact.
  const auto family = make_tabulation_family(4, 5);
  KarySketch s(family, 4096);
  const std::map<std::uint64_t, double> truth{
      {10, 100.0}, {20, -50.0}, {30, 7.5}, {40, 0.25}, {50, 1e6}};
  for (const auto& [key, value] : truth) s.update(key, value);
  for (const auto& [key, value] : truth) {
    EXPECT_NEAR(s.estimate(key), value, std::abs(value) * 1e-2 + 300.0);
  }
}

TEST(KarySketch, TurnstileDeletionsCancel) {
  const auto family = make_tabulation_family(5, 5);
  KarySketch s(family, 1024);
  scd::common::Rng rng(2);
  std::vector<std::pair<std::uint64_t, double>> updates;
  for (int i = 0; i < 300; ++i) {
    updates.emplace_back(rng.next_below(1u << 31), rng.uniform(0, 100));
  }
  for (const auto& [k, v] : updates) s.update(k, v);
  for (const auto& [k, v] : updates) s.update(k, -v);  // full cancellation
  EXPECT_NEAR(s.sum(), 0.0, 1e-9);
  for (double reg : s.registers()) EXPECT_NEAR(reg, 0.0, 1e-9);
}

TEST(KarySketch, UpdateAccumulatesPerKey) {
  const auto family = make_tabulation_family(6, 5);
  KarySketch s(family, 4096);
  for (int i = 0; i < 10; ++i) s.update(77, 2.5);
  EXPECT_NEAR(s.estimate(77), 25.0, 1.0);
}

TEST(KarySketch, EstimateF2MatchesExactOnSparseInput) {
  const auto family = make_tabulation_family(7, 9);
  KarySketch s(family, 8192);
  double exact_f2 = 0.0;
  scd::common::Rng rng(3);
  for (std::uint64_t i = 0; i < 50; ++i) {
    const double v = rng.uniform(-100, 100);
    s.update(1000 + i, v);
    exact_f2 += v * v;
  }
  EXPECT_NEAR(s.estimate_f2(), exact_f2, exact_f2 * 0.05);
}

TEST(KarySketch, LinearityOfCombine) {
  const auto family = make_tabulation_family(8, 5);
  KarySketch a(family, 512), b(family, 512);
  a.update(1, 10.0);
  a.update(2, 4.0);
  b.update(1, -2.0);
  b.update(3, 6.0);
  const std::vector<double> coeffs{2.0, -1.0};
  const std::vector<const KarySketch*> parts{&a, &b};
  const KarySketch c = KarySketch::combine(coeffs, parts);
  // Register-level identity: c = 2a - b in every cell.
  for (std::size_t i = 0; i < c.registers().size(); ++i) {
    EXPECT_DOUBLE_EQ(c.registers()[i],
                     2.0 * a.registers()[i] - b.registers()[i]);
  }
  EXPECT_DOUBLE_EQ(c.sum(), 2.0 * a.sum() - b.sum());
}

TEST(KarySketch, CombineEqualsStreamOfMergedUpdates) {
  // COMBINE(1, S1, 1, S2) must equal the sketch of the concatenated stream —
  // the linearity property forecasting relies on (§3.2).
  const auto family = make_tabulation_family(9, 5);
  KarySketch s1(family, 1024), s2(family, 1024), merged(family, 1024);
  scd::common::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t key = rng.next_below(100000);
    const double v = rng.uniform(-10, 30);
    (i % 2 == 0 ? s1 : s2).update(key, v);
    merged.update(key, v);
  }
  KarySketch combined = s1;
  combined.add_scaled(s2, 1.0);
  for (std::size_t i = 0; i < merged.registers().size(); ++i) {
    EXPECT_NEAR(combined.registers()[i], merged.registers()[i], 1e-9);
  }
}

TEST(KarySketch, ScaleAndSetZero) {
  const auto family = make_tabulation_family(10, 5);
  KarySketch s(family, 256);
  s.update(5, 8.0);
  s.scale(0.5);
  EXPECT_NEAR(s.estimate(5), 4.0, 0.5);
  EXPECT_DOUBLE_EQ(s.sum(), 4.0);
  s.set_zero();
  EXPECT_EQ(s.sum(), 0.0);
  EXPECT_EQ(s.estimate_f2(), 0.0);
}

TEST(KarySketch, SumCacheInvalidatedByMutation) {
  const auto family = make_tabulation_family(11, 5);
  KarySketch s(family, 256);
  s.update(1, 3.0);
  EXPECT_DOUBLE_EQ(s.sum(), 3.0);  // populate cache
  s.update(2, 4.0);
  EXPECT_DOUBLE_EQ(s.sum(), 7.0);
  KarySketch other(family, 256);
  other.update(3, 1.0);
  s.add_scaled(other, 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 9.0);
}

TEST(KarySketch, CompatibilityRequiresSharedFamily) {
  const auto f1 = make_tabulation_family(12, 5);
  const auto f2 = make_tabulation_family(12, 5);  // same seed, distinct object
  KarySketch a(f1, 256), b(f1, 256), c(f2, 256), d(f1, 512);
  EXPECT_TRUE(a.compatible(b));
  EXPECT_FALSE(a.compatible(c));  // identity, not value, equality
  EXPECT_FALSE(a.compatible(d));
}

TEST(KarySketch, CwFamilyVariantHandles64BitKeys) {
  const auto family = make_cw_family(13, 5);
  KarySketch64 s(family, 4096);
  const std::uint64_t wide_key = 0xdeadbeefcafef00dULL;
  s.update(wide_key, 123.0);
  EXPECT_NEAR(s.estimate(wide_key), 123.0, 2.0);
  EXPECT_NEAR(s.estimate(wide_key + 1), 0.0, 2.0);
}

TEST(KarySketch, ConstructorValidatesShape) {
  const auto family = make_tabulation_family(20, 5);
  EXPECT_THROW(KarySketch(nullptr, 256), std::invalid_argument);
  EXPECT_THROW(KarySketch(family, 1000), std::invalid_argument);  // not pow2
  EXPECT_THROW(KarySketch(family, 1), std::invalid_argument);     // k < 2
  EXPECT_NO_THROW(KarySketch(family, 2));
}

TEST(KarySketch, LoadRegistersRejectsWrongSizeInAllBuildTypes) {
  // Misuse must throw, not assert: with NDEBUG (the default RelWithDebInfo
  // build) an unchecked wrong-sized span is a heap overflow.
  const auto family = make_tabulation_family(21, 5);
  KarySketch s(family, 256);
  const std::vector<double> too_small(5 * 256 - 1, 0.0);
  const std::vector<double> too_big(5 * 256 + 1, 0.0);
  EXPECT_THROW(s.load_registers(too_small), std::invalid_argument);
  EXPECT_THROW(s.load_registers(too_big), std::invalid_argument);
  const std::vector<double> right(5 * 256, 1.5);
  EXPECT_NO_THROW(s.load_registers(right));
  EXPECT_DOUBLE_EQ(s.sum(), 256.0 * 1.5);  // cache invalidated by the load
}

TEST(KarySketch, AddScaledRejectsIncompatibleSketches) {
  const auto f1 = make_tabulation_family(22, 5);
  const auto f2 = make_tabulation_family(22, 5);  // same seed, distinct object
  KarySketch a(f1, 256), other_family(f2, 256), other_width(f1, 512);
  EXPECT_THROW(a.add_scaled(other_family, 1.0), std::invalid_argument);
  EXPECT_THROW(a.add_scaled(other_width, 1.0), std::invalid_argument);
}

TEST(KarySketch, CombineRejectsMismatchedArguments) {
  const auto f1 = make_tabulation_family(23, 5);
  const auto f2 = make_tabulation_family(23, 5);
  KarySketch a(f1, 256), b(f1, 256), alien(f2, 256);
  const std::vector<const KarySketch*> parts{&a, &b};
  const std::vector<double> short_coeffs{1.0};
  EXPECT_THROW(KarySketch::combine(short_coeffs, parts),
               std::invalid_argument);
  EXPECT_THROW(
      KarySketch::combine(std::vector<double>{}, std::span<const KarySketch* const>{}),
      std::invalid_argument);
  const std::vector<const KarySketch*> mixed{&a, &alien};
  const std::vector<double> coeffs{1.0, 1.0};
  EXPECT_THROW(KarySketch::combine(coeffs, mixed), std::invalid_argument);
}

TEST(KarySketch, KeyDomainIsACompileTimeProperty) {
  // The tabulation fast path truncates keys to 32 bits; the family advertises
  // that so bindings can be checked at compile time (core/sketch_binding.h).
  static_assert(KarySketch::kKeyBits == 32);
  static_assert(KarySketch64::kKeyBits == 64);
}

TEST(KarySketch, ShardedCombineEqualsSerialStream) {
  // The parallel-ingestion invariant (src/ingest): partitioning a stream by
  // key across W shard sketches and COMBINE-merging with unit coefficients
  // reproduces the serial sketch. With integer-valued updates the registers
  // must match bit for bit — each register's multiset of addends is
  // identical, and integer sums are exact in double.
  for (const std::size_t shards : {2u, 4u, 8u}) {
    const auto family = make_tabulation_family(24, 5);
    KarySketch serial(family, 1024);
    std::vector<KarySketch> shard_sketches;
    for (std::size_t w = 0; w < shards; ++w) {
      shard_sketches.emplace_back(family, 1024);
    }
    scd::common::Rng rng(static_cast<std::uint64_t>(100 + shards));
    for (int i = 0; i < 5000; ++i) {
      const std::uint64_t key = rng.next_below(1u << 24);
      const auto value = static_cast<double>(rng.next_in(-50, 50));
      serial.update(key, value);
      shard_sketches[scd::common::mix64(key) % shards].update(key, value);
    }
    std::vector<const KarySketch*> parts;
    for (const KarySketch& s : shard_sketches) parts.push_back(&s);
    const std::vector<double> coeffs(shards, 1.0);
    const KarySketch merged = KarySketch::combine(coeffs, parts);
    ASSERT_EQ(merged.registers().size(), serial.registers().size());
    for (std::size_t r = 0; r < serial.registers().size(); ++r) {
      ASSERT_DOUBLE_EQ(merged.registers()[r], serial.registers()[r])
          << "shards=" << shards << " register=" << r;
    }
    EXPECT_DOUBLE_EQ(merged.estimate_f2(), serial.estimate_f2());
  }
}

TEST(KarySketch, EvenRowCountsEstimateThroughMedianAverage) {
  // H in {2, 4, 6} exercises the even-size median paths (average of the two
  // central per-row estimates): estimates stay near exact on sparse input.
  for (const std::size_t h : {2u, 4u, 6u}) {
    const auto family = make_tabulation_family(25 + h, h);
    KarySketch s(family, 4096);
    s.update(11, 500.0);
    s.update(22, -125.0);
    EXPECT_NEAR(s.estimate(11), 500.0, 5.0) << "h=" << h;
    EXPECT_NEAR(s.estimate(22), -125.0, 5.0) << "h=" << h;
    EXPECT_NEAR(s.estimate_f2(), 500.0 * 500.0 + 125.0 * 125.0,
                0.05 * (500.0 * 500.0 + 125.0 * 125.0))
        << "h=" << h;
  }
}

TEST(KarySketch, TableBytesReflectsDimensions) {
  const auto family = make_tabulation_family(14, 5);
  KarySketch s(family, 1024);
  EXPECT_EQ(s.table_bytes(), 5u * 1024u * sizeof(double));
}

TEST(KarySketch, MemoryIsConstantInStreamLength) {
  const auto family = make_tabulation_family(15, 5);
  KarySketch s(family, 1024);
  const std::size_t before = s.table_bytes();
  scd::common::Rng rng(5);
  for (int i = 0; i < 100000; ++i) s.update(rng.next_u64() & 0xffffffff, 1.0);
  EXPECT_EQ(s.table_bytes(), before);
}

}  // namespace
}  // namespace scd::sketch
