// Pre-registered instrument bundle for ChangeDetectionPipeline.
//
// All pipeline instances share one process-wide set of instruments (the
// Prometheus model: a process exports one `scd_pipeline_records_total`, not
// one per object). Registration happens exactly once, on first use, so the
// pipeline's hot path only ever touches stable references — no locks, no
// lookups, no allocation in add_record.
//
// Stage histograms form one family, scd_pipeline_stage_seconds{stage=...},
// mapping to the paper's module structure (§2.2):
//   sketch_update  — UPDATE(S_o, a, u) per record (sampled; see pipeline.cpp)
//   interval_close — everything done when an interval boundary passes
//   forecast       — the forecasting module's step (S_f, S_e construction)
//   estimate_f2    — ESTIMATEF2(S_e) + threshold computation (T_A)
//   key_replay     — ESTIMATE per candidate key + ranking + hysteresis
//   refit          — §6 online grid-search re-fit
#pragma once

#include "obs/metrics.h"

namespace scd::obs {

struct PipelineInstruments {
  Counter& records;                // scd_pipeline_records_total
  Counter& intervals_closed;       // scd_pipeline_intervals_closed_total
  Counter& detections;             // intervals where detection ran
  Counter& alarms_threshold;       // scd_pipeline_alarms_total{criterion=...}
  Counter& alarms_topn;
  Counter& keys_replayed;          // scd_pipeline_keys_replayed_total
  Counter& recovery_candidates;    // scd_recovery_candidates_total
  Counter& recovery_keys;          // scd_recovery_keys_total
  Counter& hysteresis_suppressed;  // flagged but below min_consecutive
  Counter& refits;                 // scd_pipeline_refits_total
  Counter& out_of_order;           // scd_pipeline_out_of_order_total

  Gauge& replay_buffer_keys;       // sampled key-set occupancy at close
  Gauge& recovery_last_keys;       // scd_recovery_last_keys
  Gauge& sketch_bytes;             // register memory of the observed sketch
  Gauge& last_alarm_threshold;     // T_A of the latest detection
  Gauge& last_error_l2;            // sqrt(max(ESTIMATEF2, 0)) of the latest

  Histogram& stage_sketch_update;
  Histogram& stage_interval_close;
  Histogram& stage_forecast;
  Histogram& stage_estimate_f2;
  Histogram& stage_key_replay;
  Histogram& stage_refit;

  /// The shared bundle, registered against MetricsRegistry::global() on
  /// first call (thread-safe via static-local initialization).
  [[nodiscard]] static PipelineInstruments& global();

  /// Registers a full bundle against `registry` (tests use private
  /// registries to assert on exposition without cross-test interference).
  [[nodiscard]] static PipelineInstruments create(MetricsRegistry& registry);
};

}  // namespace scd::obs
