// ARIMA(p, d, q) forecasting over a linear signal space (§3.2.2).
//
// Let Y(t) be the observed signal and Z(t) the d-times differenced series
// (d in {0, 1}; the paper's ARIMA0/ARIMA1). The one-step forecast is
//
//   Z_f(t) = sum_{j=1..p} AR_j * Z(t-j) + sum_{i=1..q} MA_i * e(t-i)
//   e(s)   = Z(s) - Z_f(s)
//   Y_f(t) = Z_f(t)                 (d = 0)
//   Y_f(t) = Y(t-1) + Z_f(t)        (d = 1)
//
// The constant term C is fixed at zero (see ModelConfig). Error terms that
// predate the first issued forecast are treated as zero, the standard
// conditional-sum-of-squares convention. Every operation above is a linear
// combination of past signals, which is exactly why the model runs unchanged
// on k-ary sketches (paper §3.2: sketch linearity).
#pragma once

#include <cassert>
#include <cstddef>

#include "forecast/linear_space.h"
#include "forecast/model.h"
#include "forecast/model_config.h"
#include "forecast/ring.h"

namespace scd::forecast {

template <LinearSignal V>
class ArimaModel final : public ForecastModel<V> {
 public:
  ArimaModel(const ArimaCoeffs& coeffs, const V& prototype)
      : coeffs_(coeffs),
        z_history_(static_cast<std::size_t>(coeffs.p > 0 ? coeffs.p : 1)),
        e_history_(static_cast<std::size_t>(coeffs.q > 0 ? coeffs.q : 1)),
        prev_y_(zero_like(prototype)),
        zero_(zero_like(prototype)) {
    assert(coeffs_.p >= 0 && coeffs_.p <= 2);
    assert(coeffs_.q >= 0 && coeffs_.q <= 2);
    assert(coeffs_.d == 0 || coeffs_.d == 1);
    assert(coeffs_.p + coeffs_.q >= 1);
  }

  [[nodiscard]] bool ready() const noexcept override {
    // Need all p lagged Z values (which requires p + d observations) and, for
    // d = 1, at least one observation to anchor the integration.
    const auto need =
        static_cast<std::size_t>(coeffs_.p + coeffs_.d);
    return count_ >= (need > 0 ? need : 1);
  }

  void forecast_into(V& out) const override {
    assert(ready());
    forecast_z(out);
    if (coeffs_.d == 1) out.add_scaled(prev_y_, 1.0);
  }

  void observe(const V& observed) override {
    const bool was_ready = ready();
    // Z for this interval. With d = 1 the first observation yields no Z.
    const bool have_z = coeffs_.d == 0 || count_ >= 1;
    V z = zero_;
    if (have_z) {
      z = observed;
      if (coeffs_.d == 1) z.add_scaled(prev_y_, -1.0);
    }
    // Forecast error e(t) = Z(t) - Z_f(t); zero before forecasts start.
    V err = zero_;
    if (was_ready && have_z) {
      V zf = zero_;
      forecast_z(zf);
      err = subtract(z, zf);
    }
    if (have_z) z_history_.push(z);
    e_history_.push(err);
    prev_y_ = observed;
    ++count_;
  }

  [[nodiscard]] std::size_t observed_count() const noexcept override {
    return count_;
  }

  void save_state(StateWriter<V>& out) const override {
    out.write_u64(count_);
    save_ring(out, z_history_);
    save_ring(out, e_history_);
    out.write_signal(prev_y_);
  }
  void restore_state(StateReader<V>& in) override {
    count_ = in.read_u64();
    load_ring(in, z_history_, zero_);
    load_ring(in, e_history_, zero_);
    in.read_signal(prev_y_);
  }

 private:
  /// Z_f for the next interval from the current rings (missing history = 0).
  void forecast_z(V& out) const {
    out = zero_;
    for (int j = 1; j <= coeffs_.p; ++j) {
      const auto ago = static_cast<std::size_t>(j);
      if (ago <= z_history_.size()) {
        out.add_scaled(z_history_.back(ago), coeffs_.ar[ago - 1]);
      }
    }
    for (int i = 1; i <= coeffs_.q; ++i) {
      const auto ago = static_cast<std::size_t>(i);
      if (ago <= e_history_.size()) {
        out.add_scaled(e_history_.back(ago), coeffs_.ma[ago - 1]);
      }
    }
  }

  ArimaCoeffs coeffs_;
  HistoryRing<V> z_history_;
  HistoryRing<V> e_history_;
  V prev_y_;
  V zero_;
  std::size_t count_ = 0;
};

}  // namespace scd::forecast
