// Alarm provenance: the full evidence chain behind one detected change.
//
// The paper's detector flags key `a` when the median-of-rows estimate of the
// forecast-error sketch exceeds the threshold — a single number distilled
// from H independent hash rows. When an operator asks "why did this key
// alarm?", the answer needs the intermediate values that number was distilled
// from: what was observed, what the model forecast, the per-row bucket values
// feeding each median, the threshold in force, and a fingerprint of the
// config that produced all of it. This record carries exactly that, and
// serializes to a stable JSON schema ("scd-provenance-v1") consumed by
// detect_cli --explain, online_monitor, the flight recorder, and
// scripts/trace_check.py.
//
// Row-level identity worth knowing when reading dumps: the observed sketch's
// table is elementwise forecast + error, so for every row i the observed
// estimate equals forecast_i + error_i exactly, and the reported `observed`
// is the median of those sums — bit-equal to what ESTIMATE on the observed
// sketch would have returned, even though detection only keeps the error and
// forecast sketches around.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scd::detect {

struct AlarmProvenance {
  std::uint64_t interval = 0;  // interval index the alarm fired in
  std::uint64_t key = 0;
  double observed = 0.0;       // median-of-rows observed estimate
  double forecast = 0.0;       // median-of-rows forecast estimate
  double error = 0.0;          // the alarm's error estimate (observed-forecast
                               // medians are taken per-sketch, so this is NOT
                               // simply observed - forecast)
  double threshold = 0.0;      // relative threshold from config
  double threshold_abs = 0.0;  // threshold * sqrt(F2 estimate), alarm units
  double error_f2 = 0.0;       // second moment of the error sketch
  // Per-row evidence from the error and forecast sketches: raw bucket value
  // T[i][h_i(key)] and the unbiased per-row estimate whose across-row median
  // is the headline number. All three vectors have length H.
  std::vector<double> row_error_buckets;
  std::vector<double> row_error_estimates;
  std::vector<double> row_forecast_estimates;
  std::uint64_t config_fingerprint = 0;
  std::string model;  // active forecast model name
};

/// Renders one provenance record as a single-line JSON object. Doubles use
/// %.17g (round-trip exact); NaN/Inf become null; the fingerprint is a
/// "0x%016x" hex string.
[[nodiscard]] std::string to_json(const AlarmProvenance& provenance);

}  // namespace scd::detect
