// Fuzz target: the checkpoint file parser (checkpoint/checkpoint.h).
//
// decode_checkpoint_frame is the exact validation recover() runs on
// untrusted on-disk bytes after a crash — magic, header CRC, version,
// payload kind, length, payload CRC. The only legal rejection is the typed
// CheckpointError. Accepted frames are round-tripped through
// encode_checkpoint_frame and must re-parse to the same header fields.
#include <cstddef>
#include <cstdint>
#include <vector>

#include "checkpoint/checkpoint.h"

#include "fuzz_driver.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::vector<std::uint8_t> bytes(data, data + size);
  try {
    const scd::checkpoint::CheckpointFrame frame =
        scd::checkpoint::decode_checkpoint_frame(bytes);
    const std::vector<std::uint8_t> reencoded =
        scd::checkpoint::encode_checkpoint_frame(
            frame.kind, frame.config_fingerprint, frame.interval_index,
            frame.payload);
    const scd::checkpoint::CheckpointFrame again =
        scd::checkpoint::decode_checkpoint_frame(reencoded);
    if (again.kind != frame.kind ||
        again.config_fingerprint != frame.config_fingerprint ||
        again.interval_index != frame.interval_index ||
        again.payload != frame.payload) {
      __builtin_trap();  // round-trip divergence is a parser bug
    }
  } catch (const scd::checkpoint::CheckpointError&) {
    // Typed rejection: the contract.
  }
  return 0;
}
