#include "obs/exposition.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>

#include "obs/metrics.h"

namespace scd::obs {

namespace {

const char* type_name(MetricType type) {
  switch (type) {
    case MetricType::kCounter: return "counter";
    case MetricType::kGauge: return "gauge";
    case MetricType::kHistogram: return "histogram";
  }
  return "untyped";
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Shortest round-trippable rendering; Prometheus wants plain decimals and
/// "+Inf" for the overflow bound.
std::string render_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  if (std::isnan(v)) return "NaN";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  double parsed = 0.0;
  std::sscanf(buf, "%lf", &parsed);
  for (int precision = 1; precision < 17; ++precision) {
    char shorter[64];
    std::snprintf(shorter, sizeof(shorter), "%.*g", precision, v);
    std::sscanf(shorter, "%lf", &parsed);
    if (parsed == v) return shorter;
  }
  return buf;
}

/// {a="x",b="y"} with an optional extra pair appended (histogram le).
std::string render_labels(const Labels& labels, const char* extra_key = nullptr,
                          const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out += key + "=\"" + escape(value) + "\"";
  }
  if (extra_key != nullptr) {
    if (!first) out.push_back(',');
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out.push_back('}');
  return out;
}

}  // namespace

std::string to_prometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  for (const FamilyView& family : registry.families()) {
    out << "# HELP " << family.name << ' ' << escape(family.help) << '\n';
    out << "# TYPE " << family.name << ' ' << type_name(family.type) << '\n';
    for (const MetricInstance& instance : family.instances) {
      switch (family.type) {
        case MetricType::kCounter:
          out << family.name << render_labels(instance.labels) << ' '
              << instance.counter->value() << '\n';
          break;
        case MetricType::kGauge:
          out << family.name << render_labels(instance.labels) << ' '
              << render_double(instance.gauge->value()) << '\n';
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *instance.histogram;
          std::uint64_t cumulative = 0;
          for (std::size_t i = 0; i < h.bounds().size(); ++i) {
            cumulative += h.bucket_count(i);
            out << family.name << "_bucket"
                << render_labels(instance.labels, "le",
                                 render_double(h.bounds()[i]))
                << ' ' << cumulative << '\n';
          }
          cumulative += h.bucket_count(h.bounds().size());
          out << family.name << "_bucket"
              << render_labels(instance.labels, "le", "+Inf") << ' '
              << cumulative << '\n';
          out << family.name << "_sum" << render_labels(instance.labels) << ' '
              << render_double(h.sum()) << '\n';
          out << family.name << "_count" << render_labels(instance.labels)
              << ' ' << h.count() << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

std::string to_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  out << "{\"families\":[";
  bool first_family = true;
  for (const FamilyView& family : registry.families()) {
    if (!first_family) out << ',';
    first_family = false;
    out << "{\"name\":\"" << escape(family.name) << "\",\"type\":\""
        << type_name(family.type) << "\",\"help\":\"" << escape(family.help)
        << "\",\"metrics\":[";
    bool first_instance = true;
    for (const MetricInstance& instance : family.instances) {
      if (!first_instance) out << ',';
      first_instance = false;
      out << "{\"labels\":{";
      bool first_label = true;
      for (const auto& [key, value] : instance.labels) {
        if (!first_label) out << ',';
        first_label = false;
        out << '"' << escape(key) << "\":\"" << escape(value) << '"';
      }
      out << '}';
      switch (family.type) {
        case MetricType::kCounter:
          out << ",\"value\":" << instance.counter->value();
          break;
        case MetricType::kGauge:
          out << ",\"value\":" << render_double(instance.gauge->value());
          break;
        case MetricType::kHistogram: {
          const Histogram& h = *instance.histogram;
          out << ",\"count\":" << h.count()
              << ",\"sum\":" << render_double(h.sum()) << ",\"p50\":"
              << render_double(h.quantile(0.50)) << ",\"p95\":"
              << render_double(h.quantile(0.95)) << ",\"p99\":"
              << render_double(h.quantile(0.99)) << ",\"buckets\":[";
          for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
            if (i > 0) out << ',';
            out << "{\"le\":"
                << (i < h.bounds().size()
                        ? render_double(h.bounds()[i])
                        : std::string("\"+Inf\""))
                << ",\"n\":" << h.bucket_count(i) << '}';
          }
          out << ']';
          break;
        }
      }
      out << '}';
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

PeriodicSnapshot::PeriodicSnapshot(double every_s, Format format,
                                   std::function<void(const std::string&)> emit,
                                   const MetricsRegistry& registry)
    : every_s_(every_s), format_(format), emit_(std::move(emit)),
      registry_(registry) {}

bool PeriodicSnapshot::tick(double now_s) {
  if (!armed_) {
    armed_ = true;
    next_due_s_ = now_s + every_s_;
    return false;
  }
  if (now_s < next_due_s_) return false;
  // Skip forward past any missed deadlines (idle stream gaps) rather than
  // emitting a burst of stale snapshots.
  while (next_due_s_ <= now_s) next_due_s_ += every_s_;
  if (emit_) {
    emit_(format_ == Format::kPrometheus ? to_prometheus(registry_)
                                         : to_json(registry_));
  }
  ++emitted_;
  return true;
}

}  // namespace scd::obs
