#include "detect/space_saving.h"

#include <gtest/gtest.h>

#include <unordered_map>

#include "common/random.h"

namespace scd::detect {
namespace {

TEST(SpaceSaving, ExactWhenUnderCapacity) {
  SpaceSaving ss(10);
  ss.update(1, 100.0);
  ss.update(2, 50.0);
  ss.update(1, 25.0);
  const auto top = ss.top(10);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_DOUBLE_EQ(top[0].count, 125.0);
  EXPECT_DOUBLE_EQ(top[0].error, 0.0);
  EXPECT_EQ(top[1].key, 2u);
  EXPECT_DOUBLE_EQ(ss.guaranteed(1), 125.0);
  EXPECT_DOUBLE_EQ(ss.guaranteed(99), 0.0);
}

TEST(SpaceSaving, EvictsMinimumAndInheritsError) {
  SpaceSaving ss(2);
  ss.update(1, 10.0);
  ss.update(2, 5.0);
  ss.update(3, 1.0);  // evicts key 2 (count 5), inherits error 5
  const auto top = ss.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, 1u);
  EXPECT_EQ(top[1].key, 3u);
  EXPECT_DOUBLE_EQ(top[1].count, 6.0);
  EXPECT_DOUBLE_EQ(top[1].error, 5.0);
  EXPECT_DOUBLE_EQ(ss.guaranteed(3), 1.0);
}

TEST(SpaceSaving, CountIsUpperBoundAndGuaranteedIsLowerBound) {
  scd::common::Rng rng(1);
  scd::common::ZipfDistribution zipf(2000, 1.2);
  SpaceSaving ss(64);
  std::unordered_map<std::uint64_t, double> truth;
  for (int i = 0; i < 50000; ++i) {
    const auto key = static_cast<std::uint64_t>(zipf.sample(rng));
    const double w = rng.uniform(1.0, 10.0);
    ss.update(key, w);
    truth[key] += w;
  }
  for (const auto& entry : ss.top(64)) {
    const double actual = truth[entry.key];
    EXPECT_GE(entry.count + 1e-9, actual) << entry.key;
    EXPECT_LE(entry.count - entry.error, actual + 1e-9) << entry.key;
  }
}

TEST(SpaceSaving, HeavyHittersAreAlwaysMonitored) {
  // Every key with weight > total/capacity must be present (the classic
  // Space-Saving guarantee).
  scd::common::Rng rng(2);
  scd::common::ZipfDistribution zipf(5000, 1.1);
  SpaceSaving ss(128);
  std::unordered_map<std::uint64_t, double> truth;
  for (int i = 0; i < 80000; ++i) {
    const auto key = static_cast<std::uint64_t>(zipf.sample(rng));
    ss.update(key, 1.0);
    truth[key] += 1.0;
  }
  const double bar = ss.total_weight() / static_cast<double>(ss.capacity());
  for (const auto& [key, weight] : truth) {
    if (weight > bar) {
      EXPECT_GT(ss.guaranteed(key) + ss.total_weight() * 1e-12, 0.0)
          << "heavy key " << key << " missing";
    }
  }
}

TEST(SpaceSaving, TopIsSortedDescending) {
  scd::common::Rng rng(3);
  SpaceSaving ss(32);
  for (int i = 0; i < 5000; ++i) {
    ss.update(rng.next_below(100), rng.uniform(0, 5));
  }
  const auto top = ss.top(32);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].count, top[i].count);
  }
}

TEST(SpaceSaving, ClearResets) {
  SpaceSaving ss(4);
  ss.update(1, 5.0);
  ss.clear();
  EXPECT_EQ(ss.size(), 0u);
  EXPECT_EQ(ss.total_weight(), 0.0);
  EXPECT_TRUE(ss.top(4).empty());
}

TEST(SpaceSaving, SizeNeverExceedsCapacity) {
  scd::common::Rng rng(4);
  SpaceSaving ss(16);
  for (int i = 0; i < 10000; ++i) {
    ss.update(rng.next_u64(), 1.0);
    EXPECT_LE(ss.size(), 16u);
  }
}

}  // namespace
}  // namespace scd::detect
