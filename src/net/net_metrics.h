// Instruments for the wire layer (src/net).
//
// Same model as checkpoint/checkpoint_metrics.h: registered once against
// the process-global registry, held by stable reference afterwards.
// Families (documented in docs/OBSERVABILITY.md):
//   scd_net_frames_sent_total       counter    frames written to a socket
//   scd_net_frames_received_total   counter    complete frames re-framed
//   scd_net_bytes_sent_total        counter    payload+header bytes sent
//   scd_net_bytes_received_total    counter    raw bytes fed to FrameReaders
//   scd_net_frame_rejects_total     counter    malformed frames/payloads
#pragma once

#include "obs/metrics.h"

namespace scd::net {

struct NetInstruments {
  obs::Counter& frames_sent;
  obs::Counter& frames_received;
  obs::Counter& bytes_sent;
  obs::Counter& bytes_received;
  obs::Counter& frame_rejects;

  /// Registers (or finds) the bundle in `registry`.
  [[nodiscard]] static NetInstruments create(obs::MetricsRegistry& registry);

  /// The process-wide bundle, registered on first use against
  /// MetricsRegistry::global().
  [[nodiscard]] static NetInstruments& global();
};

}  // namespace scd::net
