// Fixture: an SCD_ACQUIRED_BEFORE edge with no matching doc-table row.
#pragma once

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace scd {

struct EngineState {
  common::Mutex first_mutex SCD_ACQUIRED_BEFORE(second_mutex);
  common::Mutex second_mutex;
};

}  // namespace scd
