#include "traffic/synthetic.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <unordered_set>

#include "common/strutil.h"
#include "traffic/feistel.h"
#include "traffic/flow_record.h"

namespace scd::traffic {

const char* anomaly_kind_name(AnomalyKind kind) noexcept {
  switch (kind) {
    case AnomalyKind::kDosAttack: return "dos";
    case AnomalyKind::kFlashCrowd: return "flash-crowd";
    case AnomalyKind::kPortScan: return "port-scan";
    case AnomalyKind::kOutage: return "outage";
  }
  return "?";
}

std::string AnomalySpec::to_string() const {
  return scd::common::str_format(
      "%s[start=%.0fs dur=%.0fs mag=%.1f rank=%zu]", anomaly_kind_name(kind),
      start_s, duration_s, magnitude, target_rank);
}

namespace {
constexpr std::uint64_t kDstSalt = 0xd57a11a5ULL;
constexpr std::uint64_t kSrcSalt = 0x5ca77e12ULL;

std::uint64_t to_us(double seconds) noexcept {
  return static_cast<std::uint64_t>(seconds * 1e6);
}
}  // namespace

SyntheticTraceGenerator::SyntheticTraceGenerator(SyntheticConfig config)
    : config_(std::move(config)),
      popularity_(config_.num_hosts, config_.zipf_exponent) {
  assert(config_.duration_s > 0.0);
  assert(config_.base_rate > 0.0);
  assert(config_.num_hosts >= 1);
}

std::uint32_t SyntheticTraceGenerator::dst_ip_of_rank(
    std::size_t rank) const noexcept {
  return feistel32(static_cast<std::uint32_t>(rank), host_seed() ^ kDstSalt);
}

double SyntheticTraceGenerator::rate_at(double t) const noexcept {
  const double phase =
      2.0 * std::numbers::pi * t / config_.diurnal_period_s + config_.diurnal_phase;
  const double factor = 1.0 + config_.diurnal_amplitude * std::sin(phase);
  return config_.base_rate * std::max(factor, 0.05);
}

double SyntheticTraceGenerator::anomaly_envelope(const AnomalySpec& spec,
                                                 double t) noexcept {
  if (t < spec.start_s || t >= spec.start_s + spec.duration_s) return 0.0;
  const double rel = (t - spec.start_s) / spec.duration_s;
  switch (spec.kind) {
    case AnomalyKind::kDosAttack:
    case AnomalyKind::kPortScan:
    case AnomalyKind::kOutage:
      return 1.0;  // abrupt on/off
    case AnomalyKind::kFlashCrowd:
      // Triangular ramp: peak at the midpoint — the gradual build-up and
      // decay that distinguishes flash crowds from attacks.
      return rel < 0.5 ? 2.0 * rel : 2.0 * (1.0 - rel);
  }
  return 0.0;
}

void SyntheticTraceGenerator::emit_baseline_second(
    double t, std::vector<FlowRecord>& out, scd::common::Rng& rng) {
  const std::uint64_t n = rng.poisson(rate_at(t));
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::size_t rank = popularity_.sample(rng);
    // Outages suppress traffic to the top-ranked destinations.
    bool dropped = false;
    for (const AnomalySpec& spec : config_.anomalies) {
      if (spec.kind == AnomalyKind::kOutage &&
          anomaly_envelope(spec, t) > 0.0 && rank < spec.target_rank &&
          rng.bernoulli(spec.magnitude)) {
        dropped = true;
        break;
      }
    }
    if (dropped) continue;
    FlowRecord r;
    r.timestamp_us = to_us(t + rng.next_double());
    r.dst_ip = dst_ip_of_rank(rank);
    r.src_ip = feistel32(
        static_cast<std::uint32_t>(rng.next_below(config_.num_hosts * 4)),
        host_seed() ^ kSrcSalt);
    r.src_port = static_cast<std::uint16_t>(rng.next_in(1024, 65535));
    r.dst_port = rng.bernoulli(0.6)
                     ? static_cast<std::uint16_t>(
                           rng.bernoulli(0.7) ? 80 : 443)
                     : static_cast<std::uint16_t>(rng.next_in(1, 65535));
    r.protocol = rng.bernoulli(0.85) ? 6 : 17;  // TCP / UDP mix
    const double bytes = rng.lognormal(config_.bytes_mu, config_.bytes_sigma);
    r.bytes = std::max<std::uint64_t>(40, static_cast<std::uint64_t>(bytes));
    r.packets = static_cast<std::uint32_t>(
        std::max<std::uint64_t>(1, r.bytes / 800));
    out.push_back(r);
  }
}

void SyntheticTraceGenerator::emit_anomaly_second(
    const AnomalySpec& spec, double t, std::vector<FlowRecord>& out,
    scd::common::Rng& rng) {
  const double envelope = anomaly_envelope(spec, t);
  if (envelope <= 0.0 || spec.kind == AnomalyKind::kOutage) return;
  const std::uint64_t n = rng.poisson(spec.magnitude * envelope);
  for (std::uint64_t i = 0; i < n; ++i) {
    FlowRecord r;
    r.timestamp_us = to_us(t + rng.next_double());
    switch (spec.kind) {
      case AnomalyKind::kDosAttack:
        r.dst_ip = dst_ip_of_rank(spec.target_rank);
        // Spoofed sources drawn uniformly from the whole IPv4 space.
        r.src_ip = static_cast<std::uint32_t>(rng.next_u64());
        r.dst_port = 80;
        r.src_port = static_cast<std::uint16_t>(rng.next_in(1024, 65535));
        r.protocol = 6;
        r.bytes = static_cast<std::uint64_t>(rng.next_in(40, 120));
        r.packets = 1;
        break;
      case AnomalyKind::kFlashCrowd:
        r.dst_ip = dst_ip_of_rank(spec.target_rank);
        r.src_ip = feistel32(
            static_cast<std::uint32_t>(rng.next_below(config_.num_hosts * 16)),
            host_seed() ^ kSrcSalt);
        r.dst_port = 80;
        r.src_port = static_cast<std::uint16_t>(rng.next_in(1024, 65535));
        r.protocol = 6;
        r.bytes = std::max<std::uint64_t>(
            200, static_cast<std::uint64_t>(rng.lognormal(8.5, 1.0)));
        r.packets = static_cast<std::uint32_t>(
            std::max<std::uint64_t>(1, r.bytes / 800));
        break;
      case AnomalyKind::kPortScan: {
        // One scanner sweeping random destinations with minimal probes.
        r.src_ip = feistel32(0x5ca9, host_seed() ^ kSrcSalt);
        r.dst_ip = static_cast<std::uint32_t>(rng.next_u64());
        r.dst_port = static_cast<std::uint16_t>(rng.next_in(1, 1024));
        r.src_port = 40000;
        r.protocol = 6;
        r.bytes = 40;
        r.packets = 1;
        break;
      }
      case AnomalyKind::kOutage:
        return;  // handled in emit_baseline_second
    }
    out.push_back(r);
  }
}

std::vector<FlowRecord> SyntheticTraceGenerator::generate() {
  scd::common::Rng rng(config_.seed);
  std::vector<FlowRecord> out;
  out.reserve(static_cast<std::size_t>(config_.base_rate * config_.duration_s * 1.2));
  const auto seconds = static_cast<std::size_t>(std::ceil(config_.duration_s));
  for (std::size_t s = 0; s < seconds; ++s) {
    const auto t = static_cast<double>(s);
    emit_baseline_second(t, out, rng);
    for (const AnomalySpec& spec : config_.anomalies) {
      emit_anomaly_second(spec, t, out, rng);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              return a.timestamp_us < b.timestamp_us;
            });
  return out;
}

std::string TraceStats::to_string() const {
  return scd::common::str_format(
      "records=%llu bytes=%llu distinct_dsts=%zu duration=%.0fs",
      static_cast<unsigned long long>(records),
      static_cast<unsigned long long>(total_bytes), distinct_dsts, duration_s);
}

TraceStats summarize_trace(const std::vector<FlowRecord>& records) {
  TraceStats stats;
  stats.records = records.size();
  std::unordered_set<std::uint32_t> dsts;
  for (const FlowRecord& r : records) {
    stats.total_bytes += r.bytes;
    dsts.insert(r.dst_ip);
  }
  stats.distinct_dsts = dsts.size();
  if (!records.empty()) {
    stats.duration_s = record_time_s(records.back()) - record_time_s(records.front());
  }
  return stats;
}

}  // namespace scd::traffic
