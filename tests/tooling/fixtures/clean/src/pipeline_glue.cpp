// Fixture: would trip include-hygiene, kkeybits-binding, mutex-wrapper,
// mo-rationale and lock-order-doc, but every finding carries a waiver — the
// tree must lint clean.
// scd-lint: allow-file(kkeybits-binding)
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "traffic/key_extract.h"

namespace scd {

int route(traffic::KeyKind kind) {
  sketch::KarySketch chosen(nullptr, 5, 64);  // scd-lint: allow(include-hygiene)
  (void)chosen;
  return kind == traffic::KeyKind::kDstIp ? 1 : 0;
}

// scd-lint: allow(include-hygiene)
unsigned long weigh(const traffic::FlowRecord& record) {
  return record.bytes;
}

struct LegacyBridge {
  // A third-party callback API hands us a std::unique_lock; waived.
  std::mutex vendor_mutex;  // scd-lint: allow(mutex-wrapper)
  // An edge kept out of the doc table while the bridge is experimental.
  common::Mutex outer SCD_ACQUIRED_BEFORE(inner);  // scd-lint: allow(lock-order-doc)
  common::Mutex inner;
};

unsigned long sample(std::atomic<unsigned long>& hits) {
  // scd-lint: allow(mo-rationale)
  return hits.load(std::memory_order_relaxed);
}

}  // namespace scd
