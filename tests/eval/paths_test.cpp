// Cross-validation of the per-flow truth path and the sketch path on a
// controlled synthetic stream.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/intervalized.h"
#include "eval/metrics.h"
#include "eval/sketch_path.h"
#include "eval/truth.h"
#include "traffic/synthetic.h"

namespace scd::eval {
namespace {

std::vector<traffic::FlowRecord> small_trace() {
  traffic::SyntheticConfig config;
  config.seed = 3;
  config.duration_s = 1200.0;  // 20 intervals at 60 s
  config.base_rate = 40.0;
  config.num_hosts = 300;
  config.zipf_exponent = 1.0;
  traffic::AnomalySpec dos;
  dos.kind = traffic::AnomalyKind::kDosAttack;
  dos.start_s = 700.0;
  dos.duration_s = 120.0;
  dos.magnitude = 150.0;
  dos.target_rank = 40;
  config.anomalies.push_back(dos);
  return traffic::SyntheticTraceGenerator(config).generate();
}

forecast::ModelConfig ewma(double alpha = 0.5) {
  forecast::ModelConfig c;
  c.kind = forecast::ModelKind::kEwma;
  c.alpha = alpha;
  return c;
}

class PathsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    trace_ = new std::vector<traffic::FlowRecord>(small_trace());
    stream_ = new IntervalizedStream(*trace_, 60.0, traffic::KeyKind::kDstIp,
                                     traffic::UpdateKind::kBytes);
  }
  static void TearDownTestSuite() {
    delete stream_;
    delete trace_;
    stream_ = nullptr;
    trace_ = nullptr;
  }
  static std::vector<traffic::FlowRecord>* trace_;
  static IntervalizedStream* stream_;
};

std::vector<traffic::FlowRecord>* PathsTest::trace_ = nullptr;
IntervalizedStream* PathsTest::stream_ = nullptr;

TEST_F(PathsTest, TruthWarmupFollowsModel) {
  const auto truth = compute_perflow_truth(*stream_, ewma());
  ASSERT_EQ(truth.intervals.size(), stream_->num_intervals());
  EXPECT_FALSE(truth.intervals[0].ready);  // EWMA needs one observation
  for (std::size_t t = 1; t < truth.intervals.size(); ++t) {
    EXPECT_TRUE(truth.intervals[t].ready) << t;
  }
}

TEST_F(PathsTest, TruthF2DominatesCandidateErrors) {
  const auto truth = compute_perflow_truth(*stream_, ewma());
  for (const auto& interval : truth.intervals) {
    if (!interval.ready) continue;
    double candidate_f2 = 0.0;
    for (const auto& e : interval.ranked) candidate_f2 += e.error * e.error;
    EXPECT_GE(interval.f2 + 1e-6, candidate_f2);
  }
}

TEST_F(PathsTest, TruthRankedIsSortedDescending) {
  const auto truth = compute_perflow_truth(*stream_, ewma());
  for (const auto& interval : truth.intervals) {
    for (std::size_t i = 1; i < interval.ranked.size(); ++i) {
      EXPECT_GE(std::abs(interval.ranked[i - 1].error),
                std::abs(interval.ranked[i].error));
    }
  }
}

TEST_F(PathsTest, CollectErrorsFalseSkipsRanking) {
  const auto truth = compute_perflow_truth(*stream_, ewma(), false);
  for (const auto& interval : truth.intervals) {
    EXPECT_TRUE(interval.ranked.empty());
  }
  EXPECT_GT(truth.total_f2(2), 0.0);
}

TEST_F(PathsTest, SketchPathWithHugeKMatchesTruth) {
  const auto truth = compute_perflow_truth(*stream_, ewma());
  SketchPathOptions options;
  options.h = 5;
  options.k = 65536;  // far above distinct keys per interval
  const auto sketch = compute_sketch_errors(*stream_, ewma(), options);
  ASSERT_EQ(sketch.intervals.size(), truth.intervals.size());
  for (std::size_t t = 2; t < truth.intervals.size(); ++t) {
    ASSERT_EQ(sketch.intervals[t].ready, truth.intervals[t].ready);
    if (!truth.intervals[t].ready) continue;
    EXPECT_NEAR(sketch.intervals[t].est_f2, truth.intervals[t].f2,
                0.05 * truth.intervals[t].f2 + 1.0)
        << t;
    const double similarity = topn_similarity(truth.intervals[t].ranked,
                                              sketch.intervals[t].ranked, 50);
    EXPECT_GT(similarity, 0.9) << t;
  }
}

TEST_F(PathsTest, SmallKDegradesGracefully) {
  SketchPathOptions big, small;
  big.k = 32768;
  small.k = 64;  // heavy collisions
  const auto truth = compute_perflow_truth(*stream_, ewma());
  const auto s_big = compute_sketch_errors(*stream_, ewma(), big);
  const auto s_small = compute_sketch_errors(*stream_, ewma(), small);
  double sim_big = 0.0, sim_small = 0.0;
  int n = 0;
  for (std::size_t t = 2; t < truth.intervals.size(); ++t) {
    if (!truth.intervals[t].ready) continue;
    sim_big += topn_similarity(truth.intervals[t].ranked,
                               s_big.intervals[t].ranked, 20);
    sim_small += topn_similarity(truth.intervals[t].ranked,
                                 s_small.intervals[t].ranked, 20);
    ++n;
  }
  EXPECT_GT(sim_big / n, sim_small / n);
}

TEST_F(PathsTest, TotalEnergyRespectsWarmup) {
  const auto truth = compute_perflow_truth(*stream_, ewma());
  EXPECT_GE(truth.total_f2(0), truth.total_f2(5));
  EXPECT_DOUBLE_EQ(truth.total_energy(3), std::sqrt(truth.total_f2(3)));
}

TEST_F(PathsTest, SketchTotalEnergyTracksPerFlow) {
  const auto truth = compute_perflow_truth(*stream_, ewma(), false);
  SketchPathOptions options;
  options.k = 8192;
  options.h = 5;
  options.collect_errors = false;
  const auto sketch = compute_sketch_errors(*stream_, ewma(), options);
  const double rel = relative_difference_pct(sketch.total_energy(2),
                                             truth.total_energy(2));
  EXPECT_LT(std::abs(rel), 5.0);  // paper Fig 3: insignificant at K=8192
}

TEST_F(PathsTest, SrcDstPairKeysUseWideFamilyEndToEnd) {
  // 64-bit keys force the Carter-Wegman path through compute_sketch_errors;
  // accuracy against per-flow truth must hold just as for 32-bit keys.
  const IntervalizedStream stream(*trace_, 60.0, traffic::KeyKind::kSrcDstPair,
                                  traffic::UpdateKind::kBytes);
  const auto truth = compute_perflow_truth(stream, ewma());
  SketchPathOptions options;
  options.h = 5;
  options.k = 65536;
  const auto sketch = compute_sketch_errors(stream, ewma(), options);
  double total_similarity = 0.0;
  int n = 0;
  for (std::size_t t = 2; t < stream.num_intervals(); ++t) {
    if (!truth.intervals[t].ready) continue;
    total_similarity += topn_similarity(truth.intervals[t].ranked,
                                        sketch.intervals[t].ranked, 50);
    ++n;
  }
  ASSERT_GT(n, 0);
  EXPECT_GT(total_similarity / n, 0.85);
}

TEST_F(PathsTest, DosAnomalyIsTopRankedInBothPaths) {
  // The injected DoS (intervals ~11-13) must dominate the error ranking.
  const auto truth = compute_perflow_truth(*stream_, ewma());
  SketchPathOptions options;
  options.k = 32768;
  const auto sketch = compute_sketch_errors(*stream_, ewma(), options);
  const std::size_t t = 12;  // attack onset: 700 s / 60 s
  ASSERT_TRUE(truth.intervals[t].ready);
  ASSERT_FALSE(truth.intervals[t].ranked.empty());
  ASSERT_FALSE(sketch.intervals[t].ranked.empty());
  EXPECT_EQ(truth.intervals[t].ranked[0].key,
            sketch.intervals[t].ranked[0].key);
}

}  // namespace
}  // namespace scd::eval
